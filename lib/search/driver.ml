module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let restart_seed ~seed ~salt r = seed lxor salt lxor (r * 0x5DEECE66)

let best_of ?(on_generation = Tiling_ga.Engine.trace_generation) ~label ~params
    ~restarts ~seed ~salt ~encoding ~eval () =
  let m_restarts = Metrics.counter (label ^ ".restarts") in
  let runs =
    List.init (max 1 restarts) (fun r ->
        Span.with_ (label ^ ".restart")
          ~attrs:[ ("restart", Tiling_obs.Json.Int r) ]
          (fun () ->
            Metrics.incr m_restarts;
            let rng = Tiling_util.Prng.create ~seed:(restart_seed ~seed ~salt r) in
            let run =
              Tiling_ga.Engine.run ~params ~encoding
                ~objective:(Eval.objective eval)
                ~evaluate_all:(Eval.evaluate_all eval)
                ~on_generation ~rng ()
            in
            let hits = Eval.hits eval and fresh = Eval.fresh eval in
            let hit_rate =
              if hits + fresh = 0 then 0.
              else float_of_int hits /. float_of_int (hits + fresh)
            in
            Tiling_obs.Events.emit "search.restart"
              ~attrs:
                [
                  ("label", Tiling_obs.Json.String label);
                  ("restart", Tiling_obs.Json.Int r);
                  ("best", Tiling_obs.Json.Float run.Tiling_ga.Engine.best_objective);
                  ("generations", Tiling_obs.Json.Int run.Tiling_ga.Engine.generations);
                  ("converged", Tiling_obs.Json.Bool run.Tiling_ga.Engine.converged);
                  ("memo_hits", Tiling_obs.Json.Int hits);
                  ("memo_fresh", Tiling_obs.Json.Int fresh);
                  ("memo_hit_rate", Tiling_obs.Json.Float hit_rate);
                ];
            run))
  in
  List.fold_left
    (fun (acc : Tiling_ga.Engine.result) (run : Tiling_ga.Engine.result) ->
      if run.Tiling_ga.Engine.best_objective < acc.Tiling_ga.Engine.best_objective
      then run
      else acc)
    (List.hd runs) (List.tl runs)
