module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let restart_seed ~seed ~salt r = seed lxor salt lxor (r * 0x5DEECE66)

let best_of ?(on_generation = Tiling_ga.Engine.trace_generation) ~label ~params
    ~restarts ~seed ~salt ~encoding ~eval () =
  let m_restarts = Metrics.counter (label ^ ".restarts") in
  let runs =
    List.init (max 1 restarts) (fun r ->
        Span.with_ (label ^ ".restart")
          ~attrs:[ ("restart", Tiling_obs.Json.Int r) ]
          (fun () ->
            Metrics.incr m_restarts;
            let rng = Tiling_util.Prng.create ~seed:(restart_seed ~seed ~salt r) in
            Tiling_ga.Engine.run ~params ~encoding
              ~objective:(Eval.objective eval)
              ~evaluate_all:(Eval.evaluate_all eval)
              ~on_generation ~rng ()))
  in
  List.fold_left
    (fun (acc : Tiling_ga.Engine.result) (run : Tiling_ga.Engine.result) ->
      if run.Tiling_ga.Engine.best_objective < acc.Tiling_ga.Engine.best_objective
      then run
      else acc)
    (List.hd runs) (List.tl runs)
