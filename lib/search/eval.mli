(** The shared candidate-evaluation service.

    One of these sits between every search strategy and its cost
    {!Backend}.  It owns the single mutex-guarded objective memo (replacing
    the five ad-hoc per-strategy tables that predated it), counts hits and
    fresh evaluations in the {!Tiling_obs.Metrics} registry, and evaluates
    whole GA generations in parallel over OCaml domains with per-batch
    deduplication: each *distinct* candidate is costed once per generation,
    not once per individual.

    The service is deterministic by construction: candidates are pure
    functions of their decoded values, so the evaluated objective — and
    therefore the whole search — is byte-identical for any domain count. *)

type t

exception Cancelled
(** Raised out of {!objective} / {!evaluate_all} when the service's
    cancellation probe (see {!set_cancel}) reports true.  The check is
    cooperative: it runs before each fresh backend evaluation, so a raise
    surfaces within one candidate's cost of the probe flipping.  Memoized
    state stays consistent — everything computed before the raise is
    kept. *)

val create :
  ?backend:Backend.t ->
  ?domains:int ->
  cache:Tiling_cache.Config.t ->
  prepare:(int array -> Tiling_ir.Nest.t * int array array) ->
  unit ->
  t
(** [create ~cache ~prepare ()] builds an evaluation service.

    [prepare values] turns one decoded candidate (tile vector, padding
    amounts, permutation index, ... — whatever the strategy encodes) into
    the transformed nest plus the common sample embedded into that nest's
    coordinates.  It must be pure and safe to call concurrently: build
    fresh nests ({!Tiling_ir.Transform.tile}, {!Tiling_ir.Transform.padded},
    {!Tiling_ir.Transform.interchange}); never mutate shared state.

    [backend] defaults to {!Backend.default} (CME sampling); [domains]
    (default 1) is the number of OCaml domains used by {!evaluate_all}. *)

val objective : t -> int array -> float
(** Memoized cost of one candidate.  The reference objective for
    {!Tiling_ga.Engine.run} and for serial searches. *)

val evaluate_all : t -> int array array -> float array
(** Score one generation: pack each candidate's memo key once,
    deduplicate, cost the distinct memo-missing candidates in parallel
    over the service's domains, memoize, and serve every individual's
    value from the batch's own table (never by re-probing the shared memo,
    so concurrent memo eviction cannot crash or skew a batch).  Agrees
    with {!objective} value-for-value. *)

val backend : t -> Backend.t
val domains : t -> int

val memo : t -> float Memo.t
(** The service's objective memo — exposed so a host (the tiling daemon)
    can attach a persistent tier ({!Memo.set_tier}) before the search
    starts. *)

val set_cancel : t -> (unit -> bool) -> unit
(** Install a cancellation probe (default: never).  Must be cheap and
    thread-safe; it is polled from every domain evaluating candidates.
    When it returns true, the next fresh evaluation raises {!Cancelled} —
    the daemon uses this for per-request deadlines. *)

val distinct : t -> int
(** Distinct candidates evaluated so far (memo size). *)

val fresh : t -> int
(** Fresh backend evaluations so far (memo misses); the classic
    "evaluations" budget metric of the baseline searches. *)

val hits : t -> int
(** Memo hits so far. *)
