(** Best-of-N-restarts GA orchestration.

    Every GA consumer (tile search, padding search, joint pad+tile, loop
    order) runs the same outer loop: N independent GA runs over a shared
    {!Eval} service, best result kept.  This module owns that fold — it
    used to be copy-pasted per strategy — together with the deterministic
    per-restart seed derivation. *)

val restart_seed : seed:int -> salt:int -> int -> int
(** [restart_seed ~seed ~salt r] is the PRNG seed of restart [r]:
    [seed lxor salt lxor (r * 0x5DEECE66)].  [salt] decorrelates the
    strategies that share one user seed (each call site picks a distinct
    constant), [r] decorrelates the restarts. *)

val best_of :
  ?on_generation:(Tiling_ga.Engine.generation_stats -> unit) ->
  label:string ->
  params:Tiling_ga.Engine.params ->
  restarts:int ->
  seed:int ->
  salt:int ->
  encoding:Tiling_ga.Encoding.t ->
  eval:Eval.t ->
  unit ->
  Tiling_ga.Engine.result
(** [best_of ~label ~params ~restarts ~seed ~salt ~encoding ~eval ()] runs
    [max 1 restarts] independent GA searches (shared objective memo — later
    restarts revisit earlier candidates for free) and returns the run with
    the lowest best objective, ties to the earliest restart.

    [label] names the observability artifacts: each restart runs under a
    ["<label>.restart"] span, bumps the ["<label>.restarts"] counter, and
    emits a ["search.restart"] event through {!Tiling_obs.Events} carrying
    the restart's best objective and the eval service's cumulative memo
    hit rate.  [on_generation] defaults to
    {!Tiling_ga.Engine.trace_generation}. *)
