module Key = struct
  type t = { hash : int; values : int array }

  (* FNV-1a-style fold over the elements plus the length, strengthened
     with an avalanche step per word: decoded candidate vectors are short
     and their entries tiny (tile sizes, padding amounts), so a plain
     multiplicative fold would cluster in the low bits. *)
  let hash_values a =
    let h = ref 0x811c9dc5 in
    let mix x =
      let x = x * 0x9E3779B1 in
      let x = x lxor (x lsr 16) in
      h := (!h lxor x) * 0x100000001b3
    in
    mix (Array.length a);
    Array.iter mix a;
    !h land max_int

  let of_values values =
    (* Copy: callers reuse and mutate candidate buffers freely. *)
    let values = Array.copy values in
    { hash = hash_values values; values }

  let values k = k.values
  let hash k = k.hash

  let equal a b =
    a.hash = b.hash
    &&
    let n = Array.length a.values in
    n = Array.length b.values
    &&
    let rec go i = i = n || (a.values.(i) = b.values.(i) && go (i + 1)) in
    go 0
end

module Table = Hashtbl.Make (Key)

type 'v tier = { find : Key.t -> 'v option; save : Key.t -> 'v -> unit }

type 'v t = {
  table : 'v Table.t;
  lock : Mutex.t;
  mutable tier : 'v tier option;
}

let create ?(size = 512) () =
  { table = Table.create size; lock = Mutex.create (); tier = None }

(* [tier] is written by the daemon while other domains are already probing
   the memo (the disk store attaches once the request's fingerprint is
   known), so every access goes through [t.lock]; each operation reads the
   field exactly once and then works on its snapshot. *)
let set_tier t tier = Mutex.protect t.lock (fun () -> t.tier <- tier)

let find_opt t k =
  let hit, tier =
    Mutex.protect t.lock (fun () -> (Table.find_opt t.table k, t.tier))
  in
  match hit with
  | Some _ -> hit
  | None -> (
      match tier with
      | None -> None
      | Some tier -> (
          (* Tier lookups run outside the lock: they may do IO and must not
             stall other domains probing the in-memory table.  A promoted
             value is cached in the table but never re-saved. *)
          match tier.find k with
          | Some v as r ->
              Mutex.protect t.lock (fun () -> Table.replace t.table k v);
              r
          | None -> None))

let set t k v =
  let tier =
    Mutex.protect t.lock (fun () ->
        Table.replace t.table k v;
        t.tier)
  in
  match tier with None -> () | Some tier -> tier.save k v

let length t = Mutex.protect t.lock (fun () -> Table.length t.table)
