type ('k, 'v) t = { table : ('k, 'v) Hashtbl.t; lock : Mutex.t }

let create ?(size = 512) () = { table = Hashtbl.create size; lock = Mutex.create () }

let find_opt t k = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table k)
let set t k v = Mutex.protect t.lock (fun () -> Hashtbl.replace t.table k v)
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
