module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let m_memo_hit = Metrics.counter "search.memo.hit"
let m_memo_miss = Metrics.counter "search.memo.miss"
let m_batches = Metrics.counter "search.eval.batches"

type t = {
  backend : Backend.t;
  domains : int;
  cache : Tiling_cache.Config.t;
  prepare : int array -> Tiling_ir.Nest.t * int array array;
  memo : (int list, float) Memo.t;
  fresh : int Atomic.t;
  hits : int Atomic.t;
}

let create ?(backend = Backend.default) ?(domains = 1) ~cache ~prepare () =
  {
    backend;
    domains;
    cache;
    prepare;
    memo = Memo.create ();
    fresh = Atomic.make 0;
    hits = Atomic.make 0;
  }

let backend t = t.backend
let domains t = t.domains
let distinct t = Memo.length t.memo
let fresh t = Atomic.get t.fresh
let hits t = Atomic.get t.hits

let compute t values =
  ignore (Atomic.fetch_and_add t.fresh 1);
  Metrics.incr m_memo_miss;
  let nest, points = t.prepare values in
  t.backend.Backend.cost t.cache nest ~points

let objective t values =
  let key = Array.to_list values in
  match Memo.find_opt t.memo key with
  | Some v ->
      ignore (Atomic.fetch_and_add t.hits 1);
      Metrics.incr m_memo_hit;
      v
  | None ->
      let v = compute t values in
      Memo.set t.memo key v;
      v

let evaluate_all t candidates =
  Span.with_ "search.eval.batch"
    ~attrs:[ ("candidates", Tiling_obs.Json.Int (Array.length candidates)) ]
  @@ fun () ->
  Metrics.incr m_batches;
  (* Per-batch dedup: a GA generation revisits individuals freely, so cost
     each distinct memo-missing candidate exactly once (in first-occurrence
     order, for a deterministic work list), fan those out over domains, then
     read every individual's value back from the memo. *)
  let seen = Hashtbl.create (Array.length candidates) in
  let missing = ref [] in
  Array.iter
    (fun values ->
      let key = Array.to_list values in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        match Memo.find_opt t.memo key with
        | Some _ ->
            ignore (Atomic.fetch_and_add t.hits 1);
            Metrics.incr m_memo_hit
        | None -> missing := (key, values) :: !missing
      end
      else begin
        ignore (Atomic.fetch_and_add t.hits 1);
        Metrics.incr m_memo_hit
      end)
    candidates;
  let missing = Array.of_list (List.rev !missing) in
  let costs =
    Tiling_util.Par.map ~domains:t.domains
      (fun (_, values) -> compute t values)
      missing
  in
  Array.iteri (fun i (key, _) -> Memo.set t.memo key costs.(i)) missing;
  Array.map
    (fun values ->
      match Memo.find_opt t.memo (Array.to_list values) with
      | Some v -> v
      | None -> assert false (* every candidate was just memoized *))
    candidates
