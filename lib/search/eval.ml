module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let m_memo_hit = Metrics.counter "search.memo.hit"
let m_memo_miss = Metrics.counter "search.memo.miss"
let m_batches = Metrics.counter "search.eval.batches"

exception Cancelled

type t = {
  backend : Backend.t;
  domains : int;
  cache : Tiling_cache.Config.t;
  prepare : int array -> Tiling_ir.Nest.t * int array array;
  memo : float Memo.t;
  fresh : int Atomic.t;
  hits : int Atomic.t;
  mutable cancel : unit -> bool;
}

let create ?(backend = Backend.default) ?(domains = 1) ~cache ~prepare () =
  {
    backend;
    domains;
    cache;
    prepare;
    memo = Memo.create ();
    fresh = Atomic.make 0;
    hits = Atomic.make 0;
    cancel = (fun () -> false);
  }

let backend t = t.backend
let domains t = t.domains
let memo t = t.memo
let distinct t = Memo.length t.memo
let fresh t = Atomic.get t.fresh
let hits t = Atomic.get t.hits
let set_cancel t f = t.cancel <- f

let compute t values =
  if t.cancel () then raise Cancelled;
  ignore (Atomic.fetch_and_add t.fresh 1);
  Metrics.incr m_memo_miss;
  let nest, points = t.prepare values in
  t.backend.Backend.cost t.cache nest ~points

let hit t =
  ignore (Atomic.fetch_and_add t.hits 1);
  Metrics.incr m_memo_hit

let objective t values =
  let key = Memo.Key.of_values values in
  match Memo.find_opt t.memo key with
  | Some v ->
      hit t;
      v
  | None ->
      let v = compute t values in
      Memo.set t.memo key v;
      v

let evaluate_all t candidates =
  Span.with_ "search.eval.batch"
    ~attrs:[ ("candidates", Tiling_obs.Json.Int (Array.length candidates)) ]
  @@ fun () ->
  Metrics.incr m_batches;
  (* Per-batch dedup: a GA generation revisits individuals freely, so cost
     each distinct memo-missing candidate exactly once (in first-occurrence
     order, for a deterministic work list) and fan those out over domains.
     Every individual's value is served from the batch table built here —
     keys are packed once per individual, and the batch never re-reads the
     shared memo, so concurrent memo churn cannot invalidate a batch. *)
  let n = Array.length candidates in
  let keys = Array.map Memo.Key.of_values candidates in
  let batch : float Memo.Table.t = Memo.Table.create n in
  let missing = ref [] in
  Array.iteri
    (fun i values ->
      let key = keys.(i) in
      if Memo.Table.mem batch key then hit t
      else
        match Memo.find_opt t.memo key with
        | Some v ->
            hit t;
            Memo.Table.replace batch key v
        | None ->
            (* Placeholder so duplicates dedup (and count as hits);
               overwritten with the computed cost below. *)
            Memo.Table.replace batch key nan;
            missing := (key, values) :: !missing)
    candidates;
  let missing = Array.of_list (List.rev !missing) in
  let costs =
    Tiling_util.Par.map ~domains:t.domains
      (fun (_, values) -> compute t values)
      missing
  in
  Array.iteri
    (fun i (key, _) ->
      Memo.set t.memo key costs.(i);
      Memo.Table.replace batch key costs.(i))
    missing;
  Array.map (fun key -> Memo.Table.find batch key) keys
