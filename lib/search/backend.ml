type t = {
  name : string;
  cost :
    Tiling_cache.Config.t -> Tiling_ir.Nest.t -> points:int array array -> float;
}

let cme_sample =
  {
    name = "cme-sample";
    cost =
      (fun cache nest ~points ->
        let engine = Tiling_cme.Engine.create nest cache in
        let report = Tiling_cme.Estimator.sample_at engine points in
        float_of_int (Tiling_cme.Estimator.replacement report));
  }

let cme_exact =
  {
    name = "cme-exact";
    cost =
      (fun cache nest ~points:_ ->
        let engine = Tiling_cme.Engine.create nest cache in
        let report = Tiling_cme.Estimator.exact engine in
        float_of_int (Tiling_cme.Estimator.replacement report));
  }

let sim =
  {
    name = "sim";
    cost =
      (fun cache nest ~points:_ ->
        let report = Tiling_trace.Run.simulate nest cache in
        float_of_int (Tiling_cache.Sim.replacement report.Tiling_trace.Run.total));
  }

let default = cme_sample
let all = [ cme_sample; cme_exact; sim ]
let names = List.map (fun b -> b.name) all

let of_string s =
  match List.find_opt (fun b -> String.equal b.name s) all with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown backend %S (expected one of %s)" s
           (String.concat ", " names))
