type t = {
  name : string;
  cost :
    Tiling_cache.Config.t -> Tiling_ir.Nest.t -> points:int array array -> float;
}

let cme_sample =
  {
    name = "cme-sample";
    cost =
      (fun cache nest ~points ->
        let engine = Tiling_cme.Engine.create nest cache in
        let report = Tiling_cme.Estimator.sample_at engine points in
        float_of_int (Tiling_cme.Estimator.replacement report));
  }

let cme_exact =
  {
    name = "cme-exact";
    cost =
      (fun cache nest ~points:_ ->
        let engine = Tiling_cme.Engine.create nest cache in
        let report = Tiling_cme.Estimator.exact engine in
        float_of_int (Tiling_cme.Estimator.replacement report));
  }

let sim =
  {
    name = "sim";
    cost =
      (fun cache nest ~points:_ ->
        let report = Tiling_trace.Run.simulate nest cache in
        float_of_int (Tiling_cache.Sim.replacement report.Tiling_trace.Run.total));
  }

let m_fallbacks = Tiling_obs.Metrics.counter "symbolic.fallbacks"

(* Fallback sampling is the symbolic backend's last resort (affine-coupled
   nests); cap its point count so a fallback candidate costs a bounded
   number of classifications, like every other symbolic evaluation. *)
let fallback_sample_cap = 64

let symbolic =
  {
    name = "symbolic";
    cost =
      (fun cache nest ~points ->
        let engine = Tiling_cme.Engine.create nest cache in
        (* A search evaluates hundreds of candidates, so per-candidate
           latency must stay bounded: the bounded mode spends a fixed
           number of probe rows per evaluation (scaled by the budget)
           instead of refusing like the oracle-grade census. *)
        match
          Tiling_cme.Closed_form.estimate ~budget:150_000
            ~mode:Tiling_cme.Closed_form.Bounded engine
        with
        | Ok report ->
            float_of_int (Tiling_cme.Estimator.replacement report)
        | Error reason ->
            Tiling_obs.Metrics.incr m_fallbacks;
            Logs.debug (fun m ->
                m "symbolic backend falling back to sampling (%a) on %s"
                  Tiling_cme.Closed_form.pp_reason reason
                  nest.Tiling_ir.Nest.name);
            let points =
              if Array.length points > fallback_sample_cap then
                Array.sub points 0 fallback_sample_cap
              else points
            in
            let report = Tiling_cme.Estimator.sample_at engine points in
            (* The closed form reports whole-space counts; keep fallback
               candidates on the same scale so one search never compares
               sampled against census magnitudes. *)
            let scale =
              if report.Tiling_cme.Estimator.accesses = 0 then 0.
              else
                float_of_int
                  (Tiling_ir.Nest.trip_count nest
                  * Array.length nest.Tiling_ir.Nest.refs)
                /. float_of_int report.Tiling_cme.Estimator.accesses
            in
            float_of_int (Tiling_cme.Estimator.replacement report) *. scale);
  }

let default = cme_sample
let all = [ cme_sample; cme_exact; sim; symbolic ]
let names = List.map (fun b -> b.name) all

let of_string s =
  match List.find_opt (fun b -> String.equal b.name s) all with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown backend %S (expected one of %s)" s
           (String.concat ", " names))
