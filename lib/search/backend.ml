type t = {
  name : string;
  cost :
    Tiling_cache.Config.t -> Tiling_ir.Nest.t -> points:int array array -> float;
}

let cme_sample =
  {
    name = "cme-sample";
    cost =
      (fun cache nest ~points ->
        let engine = Tiling_cme.Engine.create nest cache in
        let report = Tiling_cme.Estimator.sample_at engine points in
        float_of_int (Tiling_cme.Estimator.replacement report));
  }

let cme_exact =
  {
    name = "cme-exact";
    cost =
      (fun cache nest ~points:_ ->
        let engine = Tiling_cme.Engine.create nest cache in
        let report = Tiling_cme.Estimator.exact engine in
        float_of_int (Tiling_cme.Estimator.replacement report));
  }

let sim =
  {
    name = "sim";
    cost =
      (fun cache nest ~points:_ ->
        let report = Tiling_trace.Run.simulate nest cache in
        float_of_int (Tiling_cache.Sim.replacement report.Tiling_trace.Run.total));
  }

let m_fallbacks = Tiling_obs.Metrics.counter "symbolic.fallbacks"

let symbolic =
  {
    name = "symbolic";
    cost =
      (fun cache nest ~points ->
        let engine = Tiling_cme.Engine.create nest cache in
        (* A search evaluates hundreds of candidates, so per-candidate
           latency must stay bounded: give the aggregator a much tighter
           work budget than the oracle default and sample when it trips. *)
        match Tiling_cme.Closed_form.estimate ~budget:150_000 engine with
        | Ok report ->
            float_of_int (Tiling_cme.Estimator.replacement report)
        | Error reason ->
            Tiling_obs.Metrics.incr m_fallbacks;
            Logs.debug (fun m ->
                m "symbolic backend falling back to sampling (%a) on %s"
                  Tiling_cme.Closed_form.pp_reason reason
                  nest.Tiling_ir.Nest.name);
            let report = Tiling_cme.Estimator.sample_at engine points in
            (* The closed form reports whole-space counts; keep fallback
               candidates on the same scale so one search never compares
               sampled against census magnitudes. *)
            let scale =
              if report.Tiling_cme.Estimator.accesses = 0 then 0.
              else
                float_of_int
                  (Tiling_ir.Nest.trip_count nest
                  * Array.length nest.Tiling_ir.Nest.refs)
                /. float_of_int report.Tiling_cme.Estimator.accesses
            in
            float_of_int (Tiling_cme.Estimator.replacement report) *. scale);
  }

let default = cme_sample
let all = [ cme_sample; cme_exact; sim; symbolic ]
let names = List.map (fun b -> b.name) all

let of_string s =
  match List.find_opt (fun b -> String.equal b.name s) all with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown backend %S (expected one of %s)" s
           (String.concat ", " names))
