(** The one thread-safe memo table of the evaluation layer.

    Before the search refactor every optimizer carried its own ad-hoc
    [Hashtbl] (five copies, only one of them mutex-protected); this module
    is the single shared implementation: a hash table behind a mutex,
    safe under {!Tiling_util.Par} domains.

    Keys are packed, immutable snapshots of a decoded candidate vector
    ({!Key.of_values}) carrying a precomputed hash.  The original [int
    list] keys were rebuilt (twice!) per candidate per batch and
    polymorphic-hashed on every probe; a packed key is allocated once per
    candidate, hashed once, and compared word-by-word. *)

module Key : sig
  type t

  val of_values : int array -> t
  (** Snapshot (copy) of [values] with its hash precomputed; safe to keep
      after the caller mutates or reuses the input buffer. *)

  val values : t -> int array
  (** The snapshot itself — do not mutate. *)

  val equal : t -> t -> bool
  val hash : t -> int
end

module Table : Hashtbl.S with type key = Key.t
(** Unsynchronised hash table over {!Key} — for single-threaded per-batch
    scratch tables (see {!Eval.evaluate_all}). *)

type 'v t

type 'v tier = { find : Key.t -> 'v option; save : Key.t -> 'v -> unit }
(** A second storage tier behind the in-memory table — typically the
    daemon's disk-backed result store ({!Tiling_server.Store}).  [find]
    and [save] must be thread-safe; both run outside the memo's lock. *)

val create : ?size:int -> unit -> 'v t
(** [size] is the initial bucket count (default 512). *)

val set_tier : 'v t -> 'v tier option -> unit
(** Attach (or detach) a backing tier.  {!find_opt} consults it on an
    in-memory miss and promotes what it finds; {!set} writes through to
    it.  Attach before sharing the memo across domains. *)

val find_opt : 'v t -> Key.t -> 'v option
(** In-memory table first; on a miss, the attached tier (if any), whose
    hits are promoted into the table.  Promotions are not re-saved. *)

val set : 'v t -> Key.t -> 'v -> unit
(** Insert or replace, writing through to the attached tier (if any). *)

val length : 'v t -> int
(** Number of distinct keys stored. *)
