(** The one thread-safe memo table of the evaluation layer.

    Before the search refactor every optimizer carried its own ad-hoc
    [Hashtbl] (five copies, only one of them mutex-protected); this module
    is the single shared implementation: a hash table behind a mutex,
    safe under {!Tiling_util.Par} domains.

    Keys are packed, immutable snapshots of a decoded candidate vector
    ({!Key.of_values}) carrying a precomputed hash.  The original [int
    list] keys were rebuilt (twice!) per candidate per batch and
    polymorphic-hashed on every probe; a packed key is allocated once per
    candidate, hashed once, and compared word-by-word. *)

module Key : sig
  type t

  val of_values : int array -> t
  (** Snapshot (copy) of [values] with its hash precomputed; safe to keep
      after the caller mutates or reuses the input buffer. *)

  val values : t -> int array
  (** The snapshot itself — do not mutate. *)

  val equal : t -> t -> bool
  val hash : t -> int
end

module Table : Hashtbl.S with type key = Key.t
(** Unsynchronised hash table over {!Key} — for single-threaded per-batch
    scratch tables (see {!Eval.evaluate_all}). *)

type 'v t

val create : ?size:int -> unit -> 'v t
(** [size] is the initial bucket count (default 512). *)

val find_opt : 'v t -> Key.t -> 'v option

val set : 'v t -> Key.t -> 'v -> unit
(** Insert or replace. *)

val length : 'v t -> int
(** Number of distinct keys stored. *)
