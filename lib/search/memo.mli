(** The one thread-safe memo table of the evaluation layer.

    Before the search refactor every optimizer carried its own ad-hoc
    [Hashtbl] (five copies, only one of them mutex-protected); this module
    is the single shared implementation.  A plain hash table behind a
    mutex: candidate evaluation dominates the runtime by orders of
    magnitude, so lock contention on lookups is irrelevant, and the mutex
    makes the table safe under {!Tiling_util.Par.map} domains. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t
(** [size] is the initial bucket count (default 512). *)

val find_opt : ('k, 'v) t -> 'k -> 'v option

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace. *)

val length : ('k, 'v) t -> int
(** Number of distinct keys stored. *)
