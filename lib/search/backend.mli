(** Pluggable cost backends: how much does a candidate cost?

    Every search strategy in this reproduction (GA tiling, padding, joint
    pad+tile, loop-order, and all the baselines) ultimately asks one
    question of a fully transformed nest: how many replacement misses does
    it suffer?  A backend answers that question.  The search layer never
    hardcodes the cost model, so swapping the CME sampler for an exact
    enumeration or for the trace-driven simulator — the ground-truth
    oracle the CMEs approximate — is a one-argument change.

    A backend receives the *prepared* candidate: the nest after tiling /
    padding / interchange has been applied, plus the common iteration-point
    sample embedded into that nest's coordinates.  Preparing candidates is
    the strategy's job (see {!Eval}); costing them is the backend's. *)

type t = {
  name : string;  (** CLI / report identifier, e.g. ["cme-sample"] *)
  cost :
    Tiling_cache.Config.t -> Tiling_ir.Nest.t -> points:int array array -> float;
      (** [cost cache nest ~points] is the candidate's objective value
          (lower is better): its replacement-miss count.  [points] is the
          embedded common sample; backends that enumerate the whole
          iteration space ignore it.  Must be pure and safe to call from
          several domains at once. *)
}

val cme_sample : t
(** The paper's objective: CME point solver over the embedded sample
    ({!Tiling_cme.Estimator.sample_at}).  Name: ["cme-sample"]. *)

val cme_exact : t
(** CME point solver over every iteration point
    ({!Tiling_cme.Estimator.exact}) — exact but only viable on small
    spaces.  Name: ["cme-exact"]. *)

val sim : t
(** Trace-driven cache simulation ({!Tiling_trace.Run.simulate}): replays
    the nest's full address trace through the LRU simulator.  The
    ground-truth oracle the CME backends are validated against.
    Name: ["sim"]. *)

val symbolic : t
(** Closed-form CME aggregation ({!Tiling_cme.Closed_form.estimate}):
    whole-space replacement counts from boundary-window classification plus
    periodic extrapolation — census accuracy without census cost.  Nests the
    closed form refuses (affine-coupled bounds, budget blowout) fall back to
    the embedded sample, scaled to whole-space magnitude so objectives stay
    comparable within one search; each fallback increments the
    [symbolic.fallbacks] metric.  Name: ["symbolic"]. *)

val default : t
(** [cme_sample]. *)

val all : t list
val names : string list

val of_string : string -> (t, string) result
(** Look a backend up by [name]; the error message lists valid names. *)
