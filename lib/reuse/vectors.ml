open Tiling_ir

type t = { delta : int array; spatial : bool; leader : int option }

let lex_sign delta =
  let rec go l =
    if l = Array.length delta then 0
    else if delta.(l) > 0 then 1
    else if delta.(l) < 0 then -1
    else go (l + 1)
  in
  go 0

(* Per-loop step, trip count and overall value span.  For a tile-element
   loop the span is the original loop's full extent: reuse may come from a
   different tile (the point solver re-derives the tile coordinates). *)
let loop_info (nest : Nest.t) =
  let slo, shi = Nest.static_bounds nest in
  Array.mapi
    (fun lvl (l : Nest.loop) ->
      match l.shape with
      | Nest.Range { lo; hi; step } ->
          let trip = Tiling_util.Intmath.range_count ~lo ~hi ~step in
          (step, trip, trip)
      | Nest.Range_affine { step; _ } ->
          (* Candidate enumeration works over the static hull; off-space
             candidates are filtered by the point solver (mem_point). *)
          let trip =
            Tiling_util.Intmath.range_count ~lo:slo.(lvl) ~hi:shi.(lvl) ~step
          in
          (step, trip, trip)
      | Nest.Tile_ctrl { lo; hi; tile } ->
          let trip = Tiling_util.Intmath.range_count ~lo ~hi ~step:tile in
          (tile, trip, trip)
      | Nest.Tile_elem { ctrl; tile; hi } ->
          let lo =
            match nest.loops.(ctrl).shape with
            | Nest.Tile_ctrl { lo; _ } -> lo
            | _ -> assert false
          in
          (1, tile, hi - lo + 1)
      | Nest.Tile_elem_affine { tile; _ } -> (1, tile, shi.(lvl) - slo.(lvl) + 1))
    nest.Nest.loops

(* Inclusive multiplier range: all k with [lo <= coeff * k <= hi], clamped
   to [-span_cap, span_cap].  Empty when [hi < lo]. *)
let mult_range ~coeff ~span_cap lo hi =
  let open Tiling_util.Intmath in
  let k_lo, k_hi =
    if coeff > 0 then (ceil_div lo coeff, floor_div hi coeff)
    else (ceil_div hi coeff, floor_div lo coeff)
  in
  (max k_lo (-span_cap), min k_hi span_cap)

let of_reference (nest : Nest.t) ~line (r : Nest.reference) =
  let d = Nest.depth nest in
  let info = loop_info nest in
  let f = Nest.address_form nest r in
  let c l = Affine.coeff f l in
  let is_ctrl l =
    match nest.Nest.loops.(l).shape with Nest.Tile_ctrl _ -> true | _ -> false
  in
  let has_tiles =
    Array.exists
      (fun (l : Nest.loop) ->
        match l.shape with
        | Nest.Tile_elem _ | Nest.Tile_elem_affine _ -> true
        | _ -> false)
      nest.Nest.loops
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let emit ?leader ~spatial delta =
    (* On tiled nests the point solver re-derives tile coordinates, so a
       lexicographically negative delta can still reach an earlier point;
       validity is then decided per point.  On plain nests the static sign
       is decisive. *)
    let valid =
      match (lex_sign delta, leader) with
      | 1, _ -> true
      | -1, _ -> has_tiles
      | 0, Some b -> b < r.ref_id (* same iteration, earlier reference *)
      | 0, None -> false
      | _ -> assert false
    in
    if valid then begin
      let key = (Array.to_list delta, spatial, leader) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := { delta; spatial; leader } :: !out
      end
    end
  in
  (* Candidate deltas bringing the source address within a cache line of
     the destination: [|gap - sum_l stride_l * k_l| < line].  Dimensions
     with a non-zero address stride are searched coarsest first; each
     level enumerates every multiplier that leaves the residual gap
     bridgeable by the remaining finer dimensions plus a sub-line
     remainder.  The enumeration is complete within the per-level span
     cap and the probe budget (guards against adversarial flat-stride
     shapes), and subsumes the 0-/1-/2-dimensional special cases —
     including dimension-seam reuse that moves three or more loop
     variables at once.  Temporal reuse is the exact case (residual 0);
     same-line spatial reuse is re-checked per point. *)
  let candidates ~leader ~gap =
    let moving =
      List.init d Fun.id
      |> List.filter_map (fun l ->
             if is_ctrl l then None
             else
               let step, _, span = info.(l) in
               let stride = c l * step in
               if stride = 0 then None else Some (l, step, stride, span))
      |> List.sort (fun (_, _, s1, _) (_, _, s2, _) -> compare (abs s2) (abs s1))
    in
    let budget = ref 20_000 in
    let delta = Array.make d 0 in
    let rec go dims residual =
      decr budget;
      if !budget >= 0 then
        match dims with
        | [] ->
            if abs residual < line then
              emit ?leader ~spatial:(residual <> 0) (Array.copy delta)
        | (l, step, stride, span) :: rest ->
            let reach_rest =
              List.fold_left
                (fun acc (_, _, s, sp) -> acc + (abs s * (sp - 1)))
                (line - 1) rest
            in
            let k_lo, k_hi =
              mult_range ~coeff:stride
                ~span_cap:(min (span - 1) 64)
                (residual - reach_rest) (residual + reach_rest)
            in
            for k = k_lo to k_hi do
              delta.(l) <- k * step;
              go rest (residual - (stride * k))
            done;
            delta.(l) <- 0
    in
    go moving gap;
    (* Dimensions absent from the address: a single +/-1 movement reaches
       an earlier iteration at the same address (temporal reuse across a
       loop the subscript ignores). *)
    for l = 0 to d - 1 do
      if (not (is_ctrl l)) && c l = 0 then begin
        let step, _, span = info.(l) in
        if span > 1 && abs gap < line then begin
          let try_k k =
            let dl = Array.make d 0 in
            dl.(l) <- k * step;
            emit ?leader ~spatial:(gap <> 0) dl
          in
          try_k 1;
          try_k (-1)
        end
      end
    done
  in
  (* Exact group deltas: for uniformly generated references the temporal
     reuse vector solves [subscript_B (p - delta) = subscript_A p] one array
     dimension at a time.  When every subscript row involves a single loop
     variable (the common Fortran case) the solution is immediate; the
     contiguous dimension may keep a sub-line remainder, yielding spatial
     variants.  This covers reuse that moves several loop variables at
     once, which 1-/2-dimensional gap bridging cannot reach. *)
  let exact_group_deltas (b : Nest.reference) =
    if b.ref_id <> r.ref_id && b.array == r.array then begin
      let uniform =
        let ok = ref true in
        Array.iteri
          (fun dim row ->
            for l = 0 to d - 1 do
              if Affine.coeff row l <> Affine.coeff b.idx.(dim) l then ok := false
            done)
          r.idx;
        !ok
      in
      if uniform then begin
        let elem = r.array.Array_decl.elem_size in
        let delta = Array.make d 0 in
        let assigned = Array.make d false in
        let feasible = ref true in
        (* Dimensions 1.. must match exactly (their strides exceed a line);
           solve them first. *)
        Array.iteri
          (fun dim (row : Affine.t) ->
            if dim > 0 && !feasible then begin
              let gd = b.idx.(dim).Affine.const - row.Affine.const in
              let vars =
                List.filter (fun l -> Affine.coeff row l <> 0) (List.init d Fun.id)
              in
              match vars with
              | [] -> if gd <> 0 then feasible := false
              | [ l ] ->
                  let cl = Affine.coeff row l in
                  if gd mod cl <> 0 then feasible := false
                  else begin
                    let q = gd / cl in
                    if assigned.(l) then begin
                      if delta.(l) <> q then feasible := false
                    end
                    else begin
                      assigned.(l) <- true;
                      delta.(l) <- q
                    end
                  end
              | _ -> feasible := false (* multi-variable subscript row *)
            end)
          r.idx;
        if !feasible then begin
          (* Dimension 0 is contiguous: besides the exact solution, any
             delta landing within a cache line of the target element is a
             spatial candidate (the per-point line check filters). *)
          let row = r.idx.(0) in
          let gd = b.idx.(0).Affine.const - row.Affine.const in
          let vars =
            List.filter (fun l -> Affine.coeff row l <> 0) (List.init d Fun.id)
          in
          match vars with
          | [] -> if gd = 0 then emit ~leader:b.ref_id ~spatial:false (Array.copy delta)
          | [ l ] ->
              let cl = Affine.coeff row l in
              let q0 = Tiling_util.Intmath.floor_div gd cl in
              let kmax =
                max 1 ((line - 1) / max 1 (abs (cl * elem)))
              in
              if assigned.(l) then begin
                (* var pinned by an outer dimension: accept if within a line *)
                let rem = gd - (cl * delta.(l)) in
                if abs (rem * elem) < line then
                  emit ~leader:b.ref_id ~spatial:(rem <> 0) (Array.copy delta)
              end
              else
                for k = -kmax to kmax do
                  let dl = q0 + k in
                  let rem = gd - (cl * dl) in
                  if abs (rem * elem) < line then begin
                    let d2 = Array.copy delta in
                    d2.(l) <- dl;
                    emit ~leader:b.ref_id ~spatial:(rem <> 0) d2
                  end
                done
          | _ -> ()
        end
      end
    end
  in
  Array.iter
    (fun (b : Nest.reference) ->
      exact_group_deltas b;
      let fb = Nest.address_form nest b in
      let same_linear =
        let ok = ref true in
        for l = 0 to d - 1 do
          if Affine.coeff fb l <> c l then ok := false
        done;
        !ok
      in
      if same_linear then begin
        let leader = if b.ref_id = r.ref_id then None else Some b.ref_id in
        candidates ~leader ~gap:(fb.Affine.const - f.Affine.const)
      end)
    nest.Nest.refs;
  (* Nearest sources first: shorter deltas are closer in execution order (a
     heuristic ordering; the hit/miss outcome does not depend on it). *)
  let magnitude v = Array.fold_left (fun acc k -> acc + abs k) 0 v.delta in
  List.sort
    (fun a b ->
      let cm = compare (magnitude a) (magnitude b) in
      if cm <> 0 then cm
      else
        let cd = Nest.lex_compare a.delta b.delta in
        if cd <> 0 then cd else compare (a.spatial, a.leader) (b.spatial, b.leader))
    !out

let of_nest nest ~line =
  Array.map (fun r -> of_reference nest ~line r) nest.Nest.refs

let pp ~names ppf t =
  ignore names;
  Fmt.pf ppf "(%a)%s%s"
    Fmt.(array ~sep:(any ",") int)
    t.delta
    (if t.spatial then "s" else "t")
    (match t.leader with None -> "" | Some b -> Printf.sprintf "<-r%d" b)
