open Tiling_util
module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let m_evaluations = Metrics.counter "ga.evaluations"
let m_generations = Metrics.counter "ga.generations"
let m_runs = Metrics.counter "ga.runs"

type params = {
  population : int;
  crossover_p : float;
  mutation_p : float;
  min_generations : int;
  max_generations : int;
  convergence_threshold : float;
  elitism : bool;
}

let default_params =
  {
    population = 30;
    crossover_p = 0.9;
    mutation_p = 0.001;
    min_generations = 15;
    max_generations = 25;
    convergence_threshold = 0.02;
    elitism = true;
  }

type generation_stats = {
  generation : int;
  best : float;
  average : float;
  distinct : int;
}

type result = {
  best_genes : int array;
  best_objective : float;
  generations : int;
  evaluations : int;
  converged : bool;
  history : generation_stats list;
}

(* Remainder stochastic selection without replacement (Goldberg): each
   individual first receives [floor expected] copies deterministically;
   the fractional remainders are then treated as Bernoulli probabilities
   *without replacement* — an individual whose fractional draw succeeds has
   its remainder consumed and cannot receive a second remainder copy.
   Individuals are visited in random order, re-shuffled each pass, until
   the new population is full.  Consequently every individual receives
   between [floor expected] and [ceil expected] copies (the defining RSS
   guarantee), except when all remainders are consumed before the
   population fills, where the shortfall is drawn uniformly. *)
let select rng pop fitness n =
  let total = Array.fold_left ( +. ) 0. fitness in
  let chosen = ref [] in
  let count = ref 0 in
  let uniform_fill () =
    while !count < n do
      chosen := pop.(Prng.int rng (Array.length pop)) :: !chosen;
      incr count
    done
  in
  if total <= 0. then
    (* Degenerate generation (all individuals equally fit): uniform draw. *)
    uniform_fill ()
  else begin
    let expected =
      Array.map (fun f -> float_of_int n *. f /. total) fitness
    in
    Array.iteri
      (fun i e ->
        for _ = 1 to int_of_float e do
          if !count < n then begin
            chosen := pop.(i) :: !chosen;
            incr count
          end
        done)
      expected;
    let fracs =
      Array.map (fun e -> e -. Float.of_int (int_of_float e)) expected
    in
    let order = Array.init (Array.length pop) Fun.id in
    (* Fractional passes.  Treating remainders this way keeps each
       individual's copy count within [floor e, ceil e]; rounding noise can
       leave every remainder effectively consumed with slots still open, in
       which case the remainder of the population is drawn uniformly. *)
    while !count < n do
      Prng.shuffle rng order;
      Array.iter
        (fun i ->
          if !count < n && fracs.(i) > 0. then
            if Prng.bernoulli rng ~p:fracs.(i) then begin
              chosen := pop.(i) :: !chosen;
              incr count;
              fracs.(i) <- 0.
            end)
        order;
      if !count < n && Array.for_all (fun f -> f <= 1e-9) fracs then
        uniform_fill ()
    done
  end;
  Array.of_list !chosen

let crossover rng p a b =
  if Array.length a <= 1 || not (Prng.bernoulli rng ~p) then
    (Array.copy a, Array.copy b)
  else begin
    let site = 1 + Prng.int rng (Array.length a - 1) in
    let child x y = Array.init (Array.length a) (fun i -> if i < site then x.(i) else y.(i)) in
    (child a b, child b a)
  end

let mutate rng p genes =
  (* Mutation flips individual bits of the 2-bit genes. *)
  Array.iteri
    (fun i g ->
      let g = if Prng.bernoulli rng ~p then g lxor 1 else g in
      let g = if Prng.bernoulli rng ~p then g lxor 2 else g in
      genes.(i) <- g)
    genes

let run ?(params = default_params) ?on_generation ?evaluate_all ~encoding
    ~objective ~rng () =
  let n = params.population in
  assert (n >= 2);
  let evaluations = ref 0 in
  let eval_population pop =
    Span.with_ "ga.evaluate"
      ~attrs:[ ("individuals", Tiling_obs.Json.Int (Array.length pop)) ]
      (fun () ->
        evaluations := !evaluations + Array.length pop;
        Metrics.add m_evaluations (Array.length pop);
        let decoded = Array.map (Encoding.decode encoding) pop in
        match evaluate_all with
        | Some f -> f decoded
        | None -> Array.map objective decoded)
  in
  let pop = ref (Array.init n (fun _ -> Encoding.random_genes encoding rng)) in
  let best_genes = ref (Array.copy !pop.(0)) in
  let best_obj = ref infinity in
  let history = ref [] in
  let generations = ref 0 in
  let converged = ref false in
  let step gen =
    Span.with_ "ga.generation" ~attrs:[ ("generation", Tiling_obs.Json.Int gen) ]
    @@ fun () ->
    Metrics.incr m_generations;
    let objs = eval_population !pop in
    let best_i = ref 0 in
    Array.iteri (fun i o -> if o < objs.(!best_i) then best_i := i) objs;
    if objs.(!best_i) < !best_obj then begin
      best_obj := objs.(!best_i);
      best_genes := Array.copy !pop.(!best_i)
    end;
    let avg = Array.fold_left ( +. ) 0. objs /. float_of_int n in
    let distinct =
      let seen = Hashtbl.create n in
      Array.iter (fun g -> Hashtbl.replace seen g ()) !pop;
      Hashtbl.length seen
    in
    let stats = { generation = gen; best = objs.(!best_i); average = avg; distinct } in
    history := stats :: !history;
    Tiling_obs.Events.emit "ga.generation"
      ~attrs:
        [
          ("generation", Tiling_obs.Json.Int gen);
          ("best", Tiling_obs.Json.Float stats.best);
          ("average", Tiling_obs.Json.Float avg);
          ("distinct", Tiling_obs.Json.Int distinct);
          ("population", Tiling_obs.Json.Int n);
        ];
    Option.iter (fun f -> f stats) on_generation;
    (* Fitness for minimisation: distance below the generation's worst,
       then Goldberg's linear scaling so the best individual receives about
       [c_mult] times the average selection pressure throughout the run
       (raw [worst - obj] is dominated by outliers early and collapses
       diversity late). *)
    let worst = Array.fold_left max neg_infinity objs in
    let raw = Array.map (fun o -> worst -. o) objs in
    let fitness =
      let favg = Array.fold_left ( +. ) 0. raw /. float_of_int n in
      let fmax = Array.fold_left max neg_infinity raw in
      let fmin = Array.fold_left min infinity raw in
      let c_mult = 2.0 in
      if fmax <= favg || favg <= 0. then raw
      else begin
        let a, b =
          if fmin > ((c_mult *. favg) -. fmax) /. (c_mult -. 1.) then
            ( (c_mult -. 1.) *. favg /. (fmax -. favg),
              favg *. (fmax -. (c_mult *. favg)) /. (fmax -. favg) )
          else (favg /. (favg -. fmin), -.fmin *. favg /. (favg -. fmin))
        in
        Array.map (fun f -> Float.max 0. ((a *. f) +. b)) raw
      end
    in
    let selected = select rng !pop fitness n in
    let next = Array.make n [||] in
    let i = ref 0 in
    while !i < n - 1 do
      let c1, c2 = crossover rng params.crossover_p selected.(!i) selected.(!i + 1) in
      next.(!i) <- c1;
      next.(!i + 1) <- c2;
      i := !i + 2
    done;
    if !i < n then next.(!i) <- Array.copy selected.(!i);
    Array.iter (mutate rng params.mutation_p) next;
    (* Optional elitism: re-insert the best individual seen so far in place
       of a random slot, guarding against losing the optimum to crossover
       or mutation. *)
    if params.elitism && !best_obj < infinity then
      next.(Prng.int rng n) <- Array.copy !best_genes;
    pop := next;
    (* Convergence: best within threshold of the population average. *)
    avg > 0. && (avg -. stats.best) /. avg <= params.convergence_threshold
    || avg = 0.
  in
  Metrics.incr m_runs;
  (* Figure 7: run min_generations unconditionally, then up to
     max_generations while not converged. *)
  let rec loop gen =
    if gen > params.max_generations then ()
    else begin
      let conv = step gen in
      generations := gen;
      if gen >= params.min_generations && conv then converged := true
      else loop (gen + 1)
    end
  in
  loop 1;
  {
    best_genes = !best_genes;
    best_objective = !best_obj;
    generations = !generations;
    evaluations = !evaluations;
    converged = !converged;
    history = List.rev !history;
  }

let trace_generation (s : generation_stats) =
  Span.instant "ga.generation.stats"
    ~attrs:
      [
        ("generation", Tiling_obs.Json.Int s.generation);
        ("best", Tiling_obs.Json.Float s.best);
        ("average", Tiling_obs.Json.Float s.average);
        ("distinct", Tiling_obs.Json.Int s.distinct);
      ]

let to_json r =
  let open Tiling_obs.Json in
  Obj
    [
      ("best_genes", List (Array.to_list (Array.map (fun g -> Int g) r.best_genes)));
      ("best_objective", Float r.best_objective);
      ("generations", Int r.generations);
      ("evaluations", Int r.evaluations);
      ("converged", Bool r.converged);
      ( "history",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("generation", Int s.generation);
                   ("best", Float s.best);
                   ("average", Float s.average);
                   ("distinct", Int s.distinct);
                 ])
             r.history) );
    ]
