(** The paper's genetic algorithm (sections 3.2–3.3, figures 4–7).

    A population of gene arrays evolves by *remainder stochastic selection
    without replacement*, single-point crossover and per-bit mutation.  The
    objective is minimised (it is a number of replacement misses); selection
    fitness is [worst - objective] within the current generation.

    Termination follows figure 7: always run [min_generations]; between
    [min_generations] and [max_generations], stop as soon as the population
    has converged — the best individual's objective is within
    [convergence_threshold] (relative) of the population average. *)

type params = {
  population : int;              (** paper: 30 *)
  crossover_p : float;           (** paper: 0.9 *)
  mutation_p : float;            (** paper: 0.001, applied per bit *)
  min_generations : int;         (** paper: 15 *)
  max_generations : int;         (** paper: 25 *)
  convergence_threshold : float; (** paper: 0.02 *)
  elitism : bool;
      (** re-insert the best-ever individual each generation; an addition
          over the paper's description that protects against losing the
          incumbent (ablated in the benches) *)
}

val default_params : params
(** The paper's values, plus elitism. *)

type generation_stats = {
  generation : int;
  best : float;     (** lowest objective in the generation *)
  average : float;  (** population average objective *)
  distinct : int;
      (** distinct genotypes in the population — a cheap diversity gauge
          (collapse toward 1 signals premature convergence) *)
}

type result = {
  best_genes : int array;
  best_objective : float;   (** best ever seen, not just final generation *)
  generations : int;        (** generations actually run *)
  evaluations : int;        (** objective calls (after caching, if any) *)
  converged : bool;         (** stopped by the convergence test *)
  history : generation_stats list;  (** oldest first *)
}

val select :
  Tiling_util.Prng.t -> 'a array -> float array -> int -> 'a array
(** [select rng pop fitness n] is Goldberg's remainder stochastic sampling
    without replacement: individual [i] with selection expectation
    [e_i = n * fitness_i / total] receives [floor e_i] copies
    deterministically plus at most one remainder copy drawn with
    probability [frac e_i], so its copy count lies in
    [\[floor e_i, ceil e_i\]].  A zero-total fitness vector degrades to a
    uniform draw.  Exposed for testing; [run] uses it internally. *)

val trace_generation : generation_stats -> unit
(** An [on_generation] hook that forwards per-generation best/average to
    the {!Tiling_obs.Span} tracer as instant events (no-op while tracing
    is disabled). *)

val to_json : result -> Tiling_obs.Json.t
(** Machine-readable rendering of a result, history included. *)

val run :
  ?params:params ->
  ?on_generation:(generation_stats -> unit) ->
  ?evaluate_all:(int array array -> float array) ->
  encoding:Encoding.t ->
  objective:(int array -> float) ->
  rng:Tiling_util.Prng.t ->
  unit ->
  result
(** [run ~encoding ~objective ~rng ()] evolves a random initial population.
    [objective] receives *decoded variable values* and must be
    deterministic (memoise externally if it is expensive).

    [evaluate_all], when given, scores a whole generation of decoded
    individuals at once (e.g. in parallel over domains); it must agree
    with [objective] value-for-value — the engine itself never mixes the
    two within a generation, but [objective] remains the reference.

    Each generation additionally emits a ["ga.generation"] event
    (best/average/distinct/population) through {!Tiling_obs.Events}, which
    is how the daemon streams search progress to clients; with the journal
    disabled and no listeners attached the emission is a few loads. *)
