open Tiling_ir

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    (String.lowercase_ascii name)

(* Byte-offset expression of an affine form over the loop variables. *)
let affine_expr ~names (f : Affine.t) =
  let buf = Buffer.create 64 in
  let first = ref true in
  let term s =
    if !first then first := false else Buffer.add_string buf " + ";
    Buffer.add_string buf s
  in
  Array.iteri
    (fun l c ->
      if c <> 0 then
        term
          (if c = 1 then Printf.sprintf "(%s)" names.(l)
           else Printf.sprintf "%d*(%s)" c names.(l)))
    f.Affine.coeffs;
  if f.Affine.const <> 0 || !first then term (string_of_int f.Affine.const);
  Buffer.contents buf

let elem_type = function
  | 8 -> "double"
  | 4 -> "float"
  | n -> Printf.sprintf "char /* %d-byte elements */" n

let access_expr ~names nest (r : Nest.reference) =
  let f = Nest.address_form nest r in
  Printf.sprintf "*(%s *)(mem + %s)"
    (elem_type r.Nest.array.Array_decl.elem_size)
    (affine_expr ~names f)

let indent out n = Buffer.add_string out (String.make (2 * n) ' ')

let emit_loops out ~names (nest : Nest.t) ~body =
  let d = Nest.depth nest in
  Array.iteri
    (fun l (loop : Nest.loop) ->
      indent out (l + 1);
      (match loop.Nest.shape with
      | Nest.Range { lo; hi; step } ->
          Buffer.add_string out
            (Printf.sprintf "for (long %s = %d; %s <= %d; %s += %d) {\n"
               loop.Nest.var lo loop.Nest.var hi loop.Nest.var step)
      | Nest.Tile_ctrl { lo; hi; tile } ->
          Buffer.add_string out
            (Printf.sprintf "for (long %s = %d; %s <= %d; %s += %d) {\n"
               loop.Nest.var lo loop.Nest.var hi loop.Nest.var tile)
      | Nest.Tile_elem { ctrl; tile; hi } ->
          let cv = names.(ctrl) in
          Buffer.add_string out
            (Printf.sprintf
               "for (long %s = %s; %s <= (%s + %d < %d ? %s + %d : %d); %s++) {\n"
               loop.Nest.var cv loop.Nest.var cv (tile - 1) hi cv (tile - 1) hi
               loop.Nest.var)
      | Nest.Range_affine { lo; hi; step } ->
          let lo = affine_expr ~names lo and hi = affine_expr ~names hi in
          Buffer.add_string out
            (Printf.sprintf "for (long %s = %s; %s <= %s; %s += %d) {\n"
               loop.Nest.var lo loop.Nest.var hi loop.Nest.var step)
      | Nest.Tile_elem_affine { ctrl; tile; lo; hi } ->
          let cv = names.(ctrl) in
          let lo = affine_expr ~names lo and hi = affine_expr ~names hi in
          Buffer.add_string out
            (Printf.sprintf
               "for (long %s = (%s > %s ? %s : %s); \
                %s <= (%s + %d < %s ? %s + %d : %s); %s++) {\n"
               loop.Nest.var cv lo cv lo loop.Nest.var cv (tile - 1) hi cv
               (tile - 1) hi loop.Nest.var)))
    nest.Nest.loops;
  body (d + 1);
  for l = d - 1 downto 0 do
    indent out (l + 1);
    Buffer.add_string out "}\n"
  done

let total_bytes (nest : Nest.t) =
  List.fold_left
    (fun acc (a : Array_decl.t) ->
      max acc (a.Array_decl.base + Array_decl.footprint a))
    0 nest.Nest.arrays

let emit_function ?name (nest : Nest.t) =
  let fname = match name with Some n -> n | None -> sanitize nest.Nest.name in
  let names = Nest.var_names nest in
  let out = Buffer.create 4096 in
  Buffer.add_string out
    (Printf.sprintf
       "/* Generated from loop nest %s.\n\
       \   Arrays (byte offsets into mem, %d bytes total):\n" nest.Nest.name
       (total_bytes nest));
  List.iter
    (fun (a : Array_decl.t) ->
      Buffer.add_string out
        (Printf.sprintf "     %-8s at %8d, layout [%s], %dB elements\n"
           a.Array_decl.name a.Array_decl.base
           (String.concat ","
              (Array.to_list (Array.map string_of_int a.Array_decl.layout)))
           a.Array_decl.elem_size))
    nest.Nest.arrays;
  Buffer.add_string out "*/\n";
  Buffer.add_string out (Printf.sprintf "void %s(char *mem)\n{\n" fname);
  Buffer.add_string out "  double acc = 0.0;\n";
  emit_loops out ~names nest ~body:(fun depth ->
      Array.iter
        (fun (r : Nest.reference) ->
          indent out depth;
          let e = access_expr ~names nest r in
          (match r.Nest.access with
          | Nest.Read -> Buffer.add_string out (Printf.sprintf "acc += %s;\n" e)
          | Nest.Write -> Buffer.add_string out (Printf.sprintf "%s = acc;\n" e)))
        nest.Nest.refs);
  Buffer.add_string out "  (void)acc;\n}\n";
  Buffer.contents out

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let hash_step h v =
  Int64.mul (Int64.logxor h (Int64.of_int v)) fnv_prime

let access_stream_hash (nest : Nest.t) =
  let forms = Array.map (Nest.address_form nest) nest.Nest.refs in
  let h = ref fnv_offset in
  Nest.iter_points nest (fun p ->
      Array.iteri
        (fun r form ->
          h := hash_step !h r;
          h := hash_step !h (Affine.eval form p))
        forms);
  !h

let emit_trace_program (nest : Nest.t) =
  let names = Nest.var_names nest in
  let out = Buffer.create 4096 in
  Buffer.add_string out "#include <stdio.h>\n#include <stdint.h>\n\n";
  Buffer.add_string out
    "/* Prints the FNV-1a hash of the (reference, byte address) access\n\
    \   stream in execution order; must match\n\
    \   Tiling_codegen.C_gen.access_stream_hash. */\n";
  Buffer.add_string out "int main(void)\n{\n";
  Buffer.add_string out "  uint64_t h = 0xCBF29CE484222325ULL;\n";
  emit_loops out ~names nest ~body:(fun depth ->
      Array.iter
        (fun (r : Nest.reference) ->
          let f = Nest.address_form nest r in
          indent out depth;
          Buffer.add_string out
            (Printf.sprintf
               "h = (h ^ (uint64_t)%d) * 0x100000001B3ULL; h = (h ^ (uint64_t)(%s)) * 0x100000001B3ULL;\n"
               r.Nest.ref_id (affine_expr ~names f)))
        nest.Nest.refs);
  Buffer.add_string out "  printf(\"%llu\\n\", (unsigned long long)h);\n";
  Buffer.add_string out "  return 0;\n}\n";
  Buffer.contents out
