open Tiling_ir

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> 'x')
    (String.lowercase_ascii name)

(* 1-based Fortran subscript of one array dimension. *)
let subscript_expr ~names (f : Affine.t) =
  let buf = Buffer.create 32 in
  let first = ref true in
  let term s =
    if !first then first := false else Buffer.add_string buf " + ";
    Buffer.add_string buf s
  in
  Array.iteri
    (fun l c ->
      if c <> 0 then
        term
          (if c = 1 then names.(l) else Printf.sprintf "%d*%s" c names.(l)))
    f.Affine.coeffs;
  let const = f.Affine.const + 1 in
  if const <> 0 || !first then term (string_of_int const);
  Buffer.contents buf

(* Loop-bound expression: a value over the loop variables, no subscript
   shift. *)
let bound_expr ~names (f : Affine.t) =
  let buf = Buffer.create 32 in
  let first = ref true in
  let term s =
    if !first then first := false else Buffer.add_string buf " + ";
    Buffer.add_string buf s
  in
  Array.iteri
    (fun l c ->
      if c <> 0 then
        term
          (if c = 1 then names.(l) else Printf.sprintf "%d*%s" c names.(l)))
    f.Affine.coeffs;
  if f.Affine.const <> 0 || !first then term (string_of_int f.Affine.const);
  Buffer.contents buf

let type_of elem = if elem = 4 then "real" else "double precision"

let emit_subroutine ?name (nest : Nest.t) =
  let fname = match name with Some n -> n | None -> sanitize nest.Nest.name in
  let names = Nest.var_names nest in
  let out = Buffer.create 4096 in
  let line s = Buffer.add_string out ("      " ^ s ^ "\n") in
  line (Printf.sprintf "subroutine %s(acc)" fname);
  line "double precision acc";
  (* Declarations with layout dimensions. *)
  List.iter
    (fun (a : Array_decl.t) ->
      line
        (Printf.sprintf "%s %s(%s)"
           (type_of a.Array_decl.elem_size)
           a.Array_decl.name
           (String.concat ","
              (Array.to_list (Array.map string_of_int a.Array_decl.layout)))))
    nest.Nest.arrays;
  (* COMMON block in placement (base address) order with explicit gap
     fillers; declaration order above is irrelevant. *)
  let by_base =
    List.sort
      (fun (a : Array_decl.t) (b : Array_decl.t) ->
        compare a.Array_decl.base b.Array_decl.base)
      nest.Nest.arrays
  in
  let commons = Buffer.create 128 in
  let next = ref 0 in
  let pads = ref [] in
  List.iteri
    (fun i (a : Array_decl.t) ->
      if a.Array_decl.base > !next then begin
        let gap = a.Array_decl.base - !next in
        let padname = Printf.sprintf "pad%d" i in
        pads := Printf.sprintf "integer*1 %s(%d)" padname gap :: !pads;
        Buffer.add_string commons (Printf.sprintf "%s, " padname)
      end;
      Buffer.add_string commons a.Array_decl.name;
      if i < List.length by_base - 1 then Buffer.add_string commons ", ";
      next := a.Array_decl.base + Array_decl.footprint a)
    by_base;
  List.iter line (List.rev !pads);
  line (Printf.sprintf "common /mem/ %s" (Buffer.contents commons));
  (* Loop variables. *)
  line
    (Printf.sprintf "integer %s"
       (String.concat ", " (Array.to_list names)));
  (* Loops. *)
  Array.iter
    (fun (loop : Nest.loop) ->
      match loop.Nest.shape with
      | Nest.Range { lo; hi; step } ->
          if step = 1 then line (Printf.sprintf "do %s = %d, %d" loop.Nest.var lo hi)
          else line (Printf.sprintf "do %s = %d, %d, %d" loop.Nest.var lo hi step)
      | Nest.Tile_ctrl { lo; hi; tile } ->
          line (Printf.sprintf "do %s = %d, %d, %d" loop.Nest.var lo hi tile)
      | Nest.Tile_elem { ctrl; tile; hi } ->
          let cv = names.(ctrl) in
          line
            (Printf.sprintf "do %s = %s, min(%s + %d, %d)" loop.Nest.var cv cv
               (tile - 1) hi)
      | Nest.Range_affine { lo; hi; step } ->
          let lo = bound_expr ~names lo and hi = bound_expr ~names hi in
          if step = 1 then line (Printf.sprintf "do %s = %s, %s" loop.Nest.var lo hi)
          else line (Printf.sprintf "do %s = %s, %s, %d" loop.Nest.var lo hi step)
      | Nest.Tile_elem_affine { ctrl; tile; lo; hi } ->
          let cv = names.(ctrl) in
          let lo = bound_expr ~names lo and hi = bound_expr ~names hi in
          line
            (Printf.sprintf "do %s = max(%s, %s), min(%s + %d, %s)" loop.Nest.var
               cv lo cv (tile - 1) hi))
    nest.Nest.loops;
  (* Body. *)
  Array.iter
    (fun (r : Nest.reference) ->
      let subs =
        String.concat ", "
          (Array.to_list (Array.map (fun f -> subscript_expr ~names f) r.Nest.idx))
      in
      let ref_str = Printf.sprintf "%s(%s)" r.Nest.array.Array_decl.name subs in
      match r.Nest.access with
      | Nest.Read -> line (Printf.sprintf "acc = acc + %s" ref_str)
      | Nest.Write -> line (Printf.sprintf "%s = acc" ref_str))
    nest.Nest.refs;
  Array.iter (fun _ -> line "enddo") nest.Nest.loops;
  line "return";
  line "end";
  Buffer.contents out
