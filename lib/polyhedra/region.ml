open Tiling_ir

let unit_coeffs ~dim l v =
  Array.init dim (fun i -> if i = l then v else 0)

(* Constraints [lo_form <= x_l] and [x_l <= hi_form] for one loop. *)
let bound_constraints ~dim l (shape : Nest.shape) =
  match shape with
  | Nest.Range { lo; hi; _ } ->
      [
        Polyhedron.ge ~coeffs:(unit_coeffs ~dim l 1) ~const:(-lo);
        Polyhedron.ge ~coeffs:(unit_coeffs ~dim l (-1)) ~const:hi;
      ]
  | Nest.Range_affine { lo; hi; _ } ->
      let lo_c =
        Array.init dim (fun i ->
            (if i = l then 1 else 0) - Affine.coeff lo i)
      in
      let hi_c =
        Array.init dim (fun i ->
            Affine.coeff hi i - if i = l then 1 else 0)
      in
      [
        Polyhedron.ge ~coeffs:lo_c ~const:(-lo.Affine.const);
        Polyhedron.ge ~coeffs:hi_c ~const:hi.Affine.const;
      ]
  | Nest.Tile_ctrl _ | Nest.Tile_elem _ | Nest.Tile_elem_affine _ ->
      assert false (* rejected by [check] below *)

let check (nest : Nest.t) =
  Array.iter
    (fun (l : Nest.loop) ->
      match l.Nest.shape with
      | Nest.Range { step; _ } | Nest.Range_affine { step; _ } ->
          if step <> 1 then
            invalid_arg "Region.of_nest: strided loops are not supported"
      | Nest.Tile_ctrl _ | Nest.Tile_elem _ | Nest.Tile_elem_affine _ ->
          invalid_arg "Region.of_nest: tiled nests are not supported")
    nest.Nest.loops

let space_of nest =
  check nest;
  let dim = Nest.depth nest in
  Polyhedron.of_constraints ~dim
    (List.concat
       (List.init dim (fun l ->
            bound_constraints ~dim l nest.Nest.loops.(l).Nest.shape)))

let of_nest (nest : Nest.t) =
  check nest;
  let dim = Nest.depth nest in
  let deps = Nest.affine_deps nest in
  let point = Array.make dim 0 in
  (* Dimensions some affine bound depends on are pinned pointwise (one
     equality per value, evaluated under the already-pinned outer deps);
     every other dimension contributes its two bound faces.  The regions
     partition the iteration space and each is convex. *)
  let rec go l cons =
    if l = dim then [ Polyhedron.of_constraints ~dim (List.rev cons) ]
    else if deps.(l) then begin
      let lo, hi, _ = Nest.bounds_at nest point l in
      let n = if hi < lo then 0 else hi - lo + 1 in
      List.concat_map
        (fun k ->
          let v = lo + k in
          point.(l) <- v;
          go (l + 1) (Polyhedron.eq ~coeffs:(unit_coeffs ~dim l 1) ~const:(-v) :: cons))
        (List.init n Fun.id)
    end
    else
      go (l + 1)
        (List.rev_append
           (bound_constraints ~dim l nest.Nest.loops.(l).Nest.shape)
           cons)
  in
  List.filter Polyhedron.has_integer_point (go 0 [])
