(** Convex-region decomposition of (possibly triangular) iteration spaces.

    Section 2.3 of the paper generates Cache Miss Equations per *convex
    region* of a non-rectangular iteration space.  This module derives
    those regions, as {!Polyhedron.t} values, straight from a nest's
    bounds: affine lower/upper bounds are linear faces, and every
    dimension that other bounds depend on is pinned pointwise (one
    equality per value) so each region is convex and the regions partition
    the space exactly.  A rectangular nest yields a single region.

    This is the reference-layer counterpart of the production path slicer
    ([Tiling_cme.Path.full_space]), which produces the same decomposition
    as lattice boxes; differential tests check both against
    [Nest.trip_count]. *)

val of_nest : Tiling_ir.Nest.t -> Polyhedron.t list
(** The convex regions of the nest's iteration space (nonempty ones only;
    together they partition the space).  Only untiled, unit-step nests are
    supported.
    @raise Invalid_argument on tiled or strided nests. *)

val space_of : Tiling_ir.Nest.t -> Polyhedron.t
(** The whole iteration space as one polyhedron — affine bounds are linear
    faces, so a perfect nest's space is always convex.  Same restrictions
    as {!of_nest}. *)
