(** Minimal fork-join parallelism over OCaml 5 domains.

    Used to fan the GA's population evaluation out over cores: each
    candidate tiling builds its own solver state, so the work units are
    independent and embarrassingly parallel.  No external dependency —
    plain [Domain.spawn] with block distribution. *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] is [Array.map f xs], computed by [domains] domains
    (the calling domain included).  [domains <= 1] degrades to the
    sequential map.  [f] must be safe to run concurrently with itself.
    Exceptions raised by [f] are re-raised in the caller.

    When the {!Tiling_obs} registry or tracer is enabled, each parallel
    chunk records its wall-clock into the [par.chunk_ns] histogram, bumps
    the [par.chunks] counter and emits a [par.chunk] span on its domain's
    track. *)

val recommended_domains : unit -> int
(** A sensible default: the machine's core count, capped at 8. *)
