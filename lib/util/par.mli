(** Minimal fork-join parallelism over OCaml 5 domains.

    Used to fan the GA's population evaluation (and the fuzzer's trial
    batches) out over cores: each work unit builds its own solver state,
    so the units are independent and embarrassingly parallel.

    Since the persistent-pool rework, [map] is a thin facade over
    {!Pool}: worker domains are spawned once per process and fed small
    self-scheduled chunks, instead of [d - 1] fresh domains being spawned
    and joined on every call.  The pre-pool behaviour is kept as the
    {!Spawn} strategy so benchmarks can measure the difference. *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] is [Array.map f xs], computed by [domains] domains
    (the calling domain included).  [domains <= 1] degrades to the
    sequential map, and a call made from inside a pool worker (a nested
    parallel map) runs sequentially on that worker.  [f] must be safe to
    run concurrently with itself.  Exceptions raised by [f] are re-raised
    in the caller once the batch has completed.

    Results are written by item index, so the output — and everything
    downstream of it — is byte-identical for any [domains] value and
    either strategy.

    When the {!Tiling_obs.Metrics} registry is enabled, each parallel
    chunk records its wall-clock into the [par.chunk_ns] histogram and
    bumps the [par.chunks] counter; when the {!Tiling_obs.Span} tracer is
    enabled, each chunk emits a [par.chunk] span on its domain's track.
    The two instrumentation paths are independent: neither pays the
    other's cost. *)

type strategy =
  | Pool  (** persistent worker-domain pool, dynamic chunking (default) *)
  | Spawn  (** legacy: spawn and join [d - 1] domains per call *)

val set_strategy : strategy -> unit
(** Select how [map] distributes batches.  [Spawn] exists for baseline
    measurements ([bench eval-throughput]) and A/B debugging; results are
    identical either way. *)

val strategy : unit -> strategy

val recommended_domains : unit -> int
(** A sensible default degree of parallelism: the [TILING_DOMAINS]
    environment variable when set (validated; see {!Pool.default_size}),
    otherwise the machine's recommended domain count capped at 8. *)
