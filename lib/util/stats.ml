(* Abramowitz & Stegun 7.1.26 rational approximation of erf; absolute error
   <= 1.5e-7, ample for choosing sample sizes. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = abs_float x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429 in
  let poly = ((((a5 *. t) +. a4) *. t +. a3) *. t +. a2) *. t +. a1 in
  sign *. (1. -. (poly *. t *. exp (-.x *. x)))

let z_for_confidence c =
  assert (c > 0. && c < 1.);
  (* Solve erf (z / sqrt 2) = c by bisection. *)
  let target = c in
  let f z = erf (z /. sqrt 2.) -. target in
  let rec bisect lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if f mid < 0. then bisect mid hi (iters - 1) else bisect lo mid (iters - 1)
  in
  bisect 0. 40. 80

let required_sample_size ~width ~confidence =
  assert (width > 0.);
  (* The paper sizes the sample with the one-sided normal quantile
     z = Phi^-1(confidence) (1.2816 at 90 %): with the worst case
     p (1 - p) = 1/4 and total interval width [width],
     n = z^2 * 1/4 / (width/2)^2 = (z/width)^2, giving the paper's
     164 points for width 0.1 at 90 % confidence. *)
  let z = z_for_confidence ((2. *. confidence) -. 1.) in
  let n = (z /. width) ** 2. in
  max 1 (int_of_float (Float.round n))

type interval = { center : float; half_width : float; confidence : float }

let proportion_interval ~hits ~n ~confidence =
  assert (n >= 0 && hits >= 0 && hits <= max n 0);
  if n = 0 then { center = 0.; half_width = 0.; confidence }
  else begin
    let p = float_of_int hits /. float_of_int n in
    let z = z_for_confidence confidence in
    let hw = z *. sqrt (p *. (1. -. p) /. float_of_int n) in
    { center = p; half_width = hw; confidence }
  end

let exact_interval ~center = { center; half_width = 0.; confidence = 1. }

type summary = { count : int; mean : float; variance : float }

let summarize obs =
  let n = Array.length obs in
  if n = 0 then { count = 0; mean = 0.; variance = 0. }
  else begin
    let mean = ref 0. and m2 = ref 0. in
    Array.iteri
      (fun i x ->
        let k = float_of_int (i + 1) in
        let d = x -. !mean in
        mean := !mean +. (d /. k);
        m2 := !m2 +. (d *. (x -. !mean)))
      obs;
    let variance = if n < 2 then 0. else !m2 /. float_of_int (n - 1) in
    { count = n; mean = !mean; variance }
  end

let mean obs =
  if Array.length obs = 0 then 0.
  else Array.fold_left ( +. ) 0. obs /. float_of_int (Array.length obs)
