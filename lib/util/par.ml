module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let chunk_ns = Metrics.histogram "par.chunk_ns"
let chunks = Metrics.counter "par.chunks"

type strategy = Pool | Spawn

let strategy_ref = Atomic.make Pool
let set_strategy s = Atomic.set strategy_ref s
let strategy () = Atomic.get strategy_ref

(* Aim for several chunks per domain so the dispenser can load-balance
   work items of uneven cost, but never less than one item per chunk. *)
let chunks_per_domain = 4

(* Per-chunk instrumentation over [lo, hi).  The metrics and span paths
   are independent: a spans-only run pays no [gettimeofday]/counter cost
   and a metrics-only run records no span. *)
let run_range f xs results failure c lo hi =
  let body () =
    try
      for i = lo to hi - 1 do
        results.(i) <- Some (f xs.(i))
      done
    with e -> ignore (Atomic.compare_and_set failure None (Some e))
  in
  let timed () =
    if Metrics.enabled () then begin
      let t0 = Unix.gettimeofday () in
      body ();
      Metrics.incr chunks;
      Metrics.observe chunk_ns
        (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
    end
    else body ()
  in
  if Span.tracing () then
    Span.with_ "par.chunk"
      ~attrs:
        [ ("chunk", Tiling_obs.Json.Int c); ("items", Tiling_obs.Json.Int (hi - lo)) ]
      timed
  else timed ()

let finish results failure =
  (match Atomic.get failure with Some e -> raise e | None -> ());
  Array.map
    (function Some v -> v | None -> assert false (* all chunks covered *))
    results

(* The pre-pool strategy, kept as the measurable baseline for
   [bench eval-throughput]: [d - 1] fresh domains spawned and joined per
   call, one static block per domain. *)
let map_spawn ~domains f xs =
  let n = Array.length xs in
  let d = min domains n in
  let results = Array.make n None in
  let failure = Atomic.make None in
  let run_block k =
    let lo = k * n / d and hi = (k + 1) * n / d in
    run_range f xs results failure k lo hi
  in
  let ctx = Span.current () in
  let workers =
    Array.init (d - 1) (fun k ->
        Domain.spawn (fun () ->
            match ctx with
            | Some _ -> Span.with_ambient ctx (fun () -> run_block (k + 1))
            | None -> run_block (k + 1)))
  in
  run_block 0;
  Array.iter Domain.join workers;
  finish results failure

let map_pool ~domains f xs =
  let n = Array.length xs in
  let chunk = max 1 (n / (domains * chunks_per_domain)) in
  let nchunks = (n + chunk - 1) / chunk in
  let results = Array.make n None in
  let failure = Atomic.make None in
  let run_chunk c =
    let lo = c * chunk in
    run_range f xs results failure c lo (min n (lo + chunk))
  in
  Pool.run ~helpers:(domains - 1) ~nchunks run_chunk;
  finish results failure

let map ~domains f xs =
  let n = Array.length xs in
  if domains <= 1 || n <= 1 || Pool.in_worker () then Array.map f xs
  else
    match Atomic.get strategy_ref with
    | Pool -> map_pool ~domains f xs
    | Spawn -> map_spawn ~domains f xs

let recommended_domains () = Pool.default_size ()
