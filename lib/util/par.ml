let chunk_ns = Tiling_obs.Metrics.histogram "par.chunk_ns"
let chunks = Tiling_obs.Metrics.counter "par.chunks"

let map ~domains f xs =
  let n = Array.length xs in
  if domains <= 1 || n <= 1 then Array.map f xs
  else begin
    let d = min domains n in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let run_chunk k =
      (* Block distribution: domain k handles [lo, hi). *)
      let lo = k * n / d and hi = (k + 1) * n / d in
      let body () =
        try
          for i = lo to hi - 1 do
            results.(i) <- Some (f xs.(i))
          done
        with e -> ignore (Atomic.compare_and_set failure None (Some e))
      in
      if Tiling_obs.Metrics.enabled () || Tiling_obs.Span.enabled () then begin
        let t0 = Unix.gettimeofday () in
        Tiling_obs.Span.with_ "par.chunk"
          ~attrs:[ ("chunk", Tiling_obs.Json.Int k); ("items", Tiling_obs.Json.Int (hi - lo)) ]
          body;
        Tiling_obs.Metrics.incr chunks;
        Tiling_obs.Metrics.observe chunk_ns
          (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
      end
      else body ()
    in
    let workers = Array.init (d - 1) (fun k -> Domain.spawn (fun () -> run_chunk (k + 1))) in
    run_chunk 0;
    Array.iter Domain.join workers;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> assert false (* all chunks covered *))
      results
  end

let recommended_domains () = min 8 (Domain.recommended_domain_count ())
