type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  let tcp host port =
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
    | _ -> Error (Printf.sprintf "bad TCP port %S in address %S" port s)
  in
  if s = "" then Error "empty address"
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | Some i ->
        tcp (String.sub rest 0 i) (String.sub rest (i + 1) (String.length rest - i - 1))
    | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" s)
  else
    (* HOST:PORT when everything after the last colon is digits and the
       prefix contains no path separator; otherwise a socket path. *)
    match String.rindex_opt s ':' with
    | Some i
      when (not (String.contains s '/'))
           && i + 1 < String.length s
           && String.for_all
                (fun c -> c >= '0' && c <= '9')
                (String.sub s (i + 1) (String.length s - i - 1)) ->
        tcp (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> Ok (Unix_sock s)

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let err_of_unix ctx = function
  | Unix.Unix_error (e, _, arg) ->
      Error
        (Printf.sprintf "%s: %s%s" ctx (Unix.error_message e)
           (if arg = "" then "" else " (" ^ arg ^ ")"))
  | e -> Error (Printf.sprintf "%s: %s" ctx (Printexc.to_string e))

let resolve host port =
  if host = "" || host = "*" then Ok Unix.inet_addr_any
  else
    match Unix.inet_addr_of_string host with
    | a -> Ok a
    | exception _ -> (
        match
          Unix.getaddrinfo host (string_of_int port)
            [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
        with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> Ok a
        | _ -> Error (Printf.sprintf "cannot resolve host %S" host))

let socket_addr = function
  | Unix_sock path -> Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
      Result.map (fun a -> Unix.ADDR_INET (a, port)) (resolve host port)

(* A Unix socket file outlives its process; rebinding requires unlinking
   it, which is only safe once nothing answers on it any more. *)
let unlink_stale path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          false
      | exception _ -> false
    in
    Unix.close probe;
    if live then Error (Printf.sprintf "socket %s is already in use" path)
    else begin
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ()
    end
  end
  else Ok ()

let listen ?(backlog = 64) addr =
  let ( let* ) = Result.bind in
  let* () = match addr with Unix_sock p -> unlink_stale p | Tcp _ -> Ok () in
  let* sockaddr = socket_addr addr in
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  match
    (match addr with
    | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix_sock _ -> ());
    Unix.bind fd sockaddr;
    Unix.listen fd backlog
  with
  | () -> Ok fd
  | exception e ->
      Unix.close fd;
      err_of_unix ("listen on " ^ addr_to_string addr) e

let connect addr =
  let ( let* ) = Result.bind in
  let* sockaddr = socket_addr addr in
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () -> Ok fd
  | exception e ->
      Unix.close fd;
      err_of_unix ("connect to " ^ addr_to_string addr) e

(* ------------------------------------------------------------------ *)
(* Bounded line IO                                                      *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;  (** next unconsumed byte *)
  mutable len : int;  (** valid bytes in [buf] *)
  acc : Buffer.t;     (** line accumulated across refills *)
}

let reader ?(buf_bytes = 8192) fd =
  { fd; buf = Bytes.create buf_bytes; pos = 0; len = 0; acc = Buffer.create 256 }

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let read_line ~max_bytes r =
  Buffer.clear r.acc;
  let rec go () =
    if r.pos >= r.len then begin
      r.pos <- 0;
      r.len <-
        (match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
        | exception
            Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
          -> -1);
      if r.len < 0 then begin
        r.len <- 0;
        `Eof
      end
      else if r.len = 0 then `Eof
      else go ()
    end
    else
      match Bytes.index_from_opt r.buf r.pos '\n' with
      | Some i when i < r.len ->
          let chunk = Bytes.sub_string r.buf r.pos (i - r.pos) in
          r.pos <- i + 1;
          if Buffer.length r.acc + String.length chunk > max_bytes then `Too_long
          else begin
            Buffer.add_string r.acc chunk;
            `Line (strip_cr (Buffer.contents r.acc))
          end
      | _ ->
          let chunk_len = r.len - r.pos in
          if Buffer.length r.acc + chunk_len > max_bytes then `Too_long
          else begin
            Buffer.add_subbytes r.acc r.buf r.pos chunk_len;
            r.pos <- r.len;
            go ()
          end
  in
  go ()

let write_all fd s =
  let payload = Bytes.unsafe_of_string s in
  let total = Bytes.length payload in
  let rec go off =
    if off >= total then Ok ()
    else
      match Unix.write fd payload off (total - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception e -> err_of_unix "write" e
  in
  go 0

let write_line fd s = write_all fd (s ^ "\n")
