(** A lazily started, process-wide pool of long-lived worker domains.

    {!Par.map} used to [Domain.spawn] and join [d - 1] fresh domains on
    every batch — once per GA generation, per restart, per fuzz batch.
    Domain creation and teardown are stop-the-world events in the OCaml
    runtime, so on the small batches that dominate a converged search the
    setup cost dwarfed the work.  This pool spawns its workers once, parks
    them on a condition variable, and feeds them jobs made of small
    self-scheduled chunks: each worker (and the submitting domain itself)
    repeatedly claims the next unclaimed chunk with an atomic counter, so
    a job whose chunks have wildly different costs no longer idles most
    workers behind the slowest statically assigned block.

    The pool is a singleton.  Concurrent {!run} calls from different
    domains serialise on a submission lock; a {!run} issued from inside a
    pool worker {e or} from a chunk executing on the submitting domain (a
    nested, reentrant parallel map) degrades to running the chunks inline
    on that domain, which keeps nesting deadlock-free and deterministic.

    Observability ({!Tiling_obs.Metrics}, all under [pool.*]):
    [pool.workers] (gauge, current worker count), [pool.tasks] (jobs
    submitted), [pool.chunks] (chunks executed), [pool.queue.depth]
    (gauge, chunks queued by the job being submitted) and
    [pool.worker.busy_ns] (histogram, per-job busy time of each
    participating domain). *)

val default_size : unit -> int
(** The pool's default total parallelism, {e including} the submitting
    domain: the value of the [TILING_DOMAINS] environment variable when
    set, otherwise the machine's recommended domain count capped at 8.

    @raise Invalid_argument if [TILING_DOMAINS] is set to anything but an
    integer in [\[1, 128\]]. *)

val usable_parallelism : unit -> int
(** The number of domains that may usefully run at once: the validated
    [TILING_DOMAINS] override when set, otherwise the machine's
    recommended domain count (uncapped).  {!run} clamps its helper count
    so the job never runs on more domains than this — in OCaml 5 every
    minor collection synchronises all running domains, so oversubscribing
    the hardware turns each GC into a scheduler round-trip and is a pure
    loss.  Setting [TILING_DOMAINS] above the core count overrides the
    clamp (useful for exercising the pool deterministically in tests). *)

val in_worker : unit -> bool
(** Whether the calling domain is one of the pool's workers. *)

val size : unit -> int
(** Current number of live worker domains (0 before first use and after
    {!shutdown}). *)

val run : helpers:int -> nchunks:int -> (int -> unit) -> unit
(** [run ~helpers ~nchunks chunk] executes [chunk 0 .. chunk (nchunks-1)],
    dynamically distributed over the calling domain plus up to [helpers]
    pool workers, and returns when every chunk has completed.  [helpers]
    is first clamped to [usable_parallelism () - 1] (see
    {!usable_parallelism}); the pool is then started (or grown) on demand
    to [max helpers (default_size () - 1)] workers.

    [chunk] must not raise — wrap the body and stash failures (see
    {!Par.map}); it must be safe to run concurrently with itself.  When
    [helpers <= 0], [nchunks <= 1] or the caller is itself a pool worker,
    the chunks run inline on the calling domain.

    If a {!Tiling_obs.Span} trace context is ambient on the submitting
    thread it is reinstalled on every helper domain for the duration of
    the job, so per-chunk spans join the submitting request's trace. *)

val shutdown : unit -> unit
(** Join every worker and return the pool to its never-started state; the
    next {!run} restarts it lazily.  Idempotent, and registered with
    [at_exit] on first start so worker domains are joined before the
    process exits.  Must not be called concurrently with {!run}. *)
