module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let m_workers = Metrics.gauge "pool.workers"
let m_tasks = Metrics.counter "pool.tasks"
let m_chunks = Metrics.counter "pool.chunks"
let m_queue_depth = Metrics.gauge "pool.queue.depth"
let m_busy_ns = Metrics.histogram "pool.worker.busy_ns"

let env_var = "TILING_DOMAINS"
let max_domains = 128

let env_override () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 && d <= max_domains -> Some d
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "%s: expected an integer in [1, %d], got %S"
               env_var max_domains s))

let default_size () =
  match env_override () with
  | Some d -> d
  | None -> min 8 (Domain.recommended_domain_count ())

(* How many domains may usefully run at once: an explicit [TILING_DOMAINS]
   wins, otherwise the hardware.  Running more mutator domains than cores
   is always a loss in OCaml 5 — every minor collection synchronises all
   running domains, so oversubscription turns each GC into a scheduler
   round-trip — hence [run] clamps its helper count to this. *)
let usable_parallelism () =
  match env_override () with
  | Some d -> d
  | None -> Domain.recommended_domain_count ()

(* One job at a time: a chunk dispenser.  [next] hands out chunk indices,
   [remaining] counts completions; the domain that finishes the last chunk
   signals [done_c]. *)
type job = {
  chunk : int -> unit; (* must not raise *)
  nchunks : int;
  next : int Atomic.t;
  remaining : int Atomic.t;
  done_m : Mutex.t;
  done_c : Condition.t;
  mutable finished : bool;
  ctx : Span.context option;
      (* submitter's ambient trace context, reinstalled on each helper
         domain so chunk spans join the submitting request's trace *)
}

type state = {
  m : Mutex.t; (* guards [job], [epoch], [quit], [workers] *)
  work : Condition.t;
  mutable job : job option;
  mutable epoch : int; (* bumped once per submitted job *)
  mutable quit : bool;
  mutable workers : unit Domain.t list;
  submit : Mutex.t; (* serialises concurrent [run] callers *)
  mutable exit_hook : bool;
}

let st =
  {
    m = Mutex.create ();
    work = Condition.create ();
    job = None;
    epoch = 0;
    quit = false;
    workers = [];
    submit = Mutex.create ();
    exit_hook = false;
  }

let worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_key

(* True while this domain is inside [run]'s submit path.  A nested [run]
   issued from a chunk executing on the submitting domain (workers have
   their own flag) must degrade to inline execution: re-entering the
   submit path would self-deadlock on [st.submit]. *)
let active_key = Domain.DLS.new_key (fun () -> false)
let size () = Mutex.protect st.m (fun () -> List.length st.workers)

(* Claim and execute chunks until the dispenser is empty.  Safe to call on
   an already-drained job: the claim just overshoots. *)
let drain job =
  let t0 = if Metrics.enabled () then Unix.gettimeofday () else 0. in
  let worked = ref false in
  let rec go () =
    let c = Atomic.fetch_and_add job.next 1 in
    if c < job.nchunks then begin
      worked := true;
      job.chunk c;
      Metrics.incr m_chunks;
      if Atomic.fetch_and_add job.remaining (-1) = 1 then begin
        Mutex.lock job.done_m;
        job.finished <- true;
        Condition.broadcast job.done_c;
        Mutex.unlock job.done_m
      end;
      go ()
    end
  in
  go ();
  if !worked && Metrics.enabled () then
    Metrics.observe m_busy_ns
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))

let rec worker_loop epoch_seen =
  Mutex.lock st.m;
  while (not st.quit) && st.epoch = epoch_seen do
    Condition.wait st.work st.m
  done;
  if st.quit then Mutex.unlock st.m
  else begin
    let epoch = st.epoch and job = st.job in
    Mutex.unlock st.m;
    (match job with
    | Some ({ ctx = Some _; _ } as j) ->
        Span.with_ambient j.ctx (fun () -> drain j)
    | Some j -> drain j
    | None -> ());
    worker_loop epoch
  end

let worker () =
  Domain.DLS.set worker_key true;
  worker_loop 0

let rec shutdown () =
  Mutex.lock st.submit;
  Mutex.lock st.m;
  let ws = st.workers in
  st.workers <- [];
  st.quit <- true;
  Condition.broadcast st.work;
  Mutex.unlock st.m;
  List.iter Domain.join ws;
  Mutex.lock st.m;
  st.quit <- false;
  st.job <- None;
  Mutex.unlock st.m;
  if Metrics.enabled () then Metrics.set m_workers 0.;
  Mutex.unlock st.submit

(* Grow-only; called with [st.submit] held.  New workers start with
   [epoch_seen = 0] and the epoch counter is never reset below its
   high-water mark while workers are live, so a freshly spawned worker can
   at worst re-drain an already-empty dispenser. *)
and ensure helpers =
  let want = min max_domains (max helpers (default_size () - 1)) in
  Mutex.lock st.m;
  let cur = List.length st.workers in
  if want > cur then begin
    if not st.exit_hook then begin
      st.exit_hook <- true;
      at_exit shutdown
    end;
    for _ = cur + 1 to want do
      st.workers <- Domain.spawn worker :: st.workers
    done;
    if Metrics.enabled () then
      Metrics.set m_workers (float_of_int (List.length st.workers))
  end;
  Mutex.unlock st.m

let run ~helpers ~nchunks chunk =
  let helpers = min helpers (usable_parallelism () - 1) in
  if nchunks <= 0 then ()
  else if
    helpers <= 0 || nchunks = 1 || in_worker () || Domain.DLS.get active_key
  then
    for c = 0 to nchunks - 1 do
      chunk c;
      Metrics.incr m_chunks
    done
  else begin
    Domain.DLS.set active_key true;
    Mutex.lock st.submit;
    Fun.protect
      ~finally:(fun () ->
        Mutex.unlock st.submit;
        Domain.DLS.set active_key false)
      (fun () ->
        ensure helpers;
        Metrics.incr m_tasks;
        if Metrics.enabled () then
          Metrics.set m_queue_depth (float_of_int nchunks);
        let job =
          {
            chunk;
            nchunks;
            next = Atomic.make 0;
            remaining = Atomic.make nchunks;
            done_m = Mutex.create ();
            done_c = Condition.create ();
            finished = false;
            ctx = Span.current ();
          }
        in
        Mutex.lock st.m;
        st.job <- Some job;
        st.epoch <- st.epoch + 1;
        Condition.broadcast st.work;
        Mutex.unlock st.m;
        drain job;
        Mutex.lock job.done_m;
        while not job.finished do
          Condition.wait job.done_c job.done_m
        done;
        Mutex.unlock job.done_m;
        (* Drop the job reference so its captured arrays can be collected
           while the pool idles. *)
        Mutex.lock st.m;
        st.job <- None;
        Mutex.unlock st.m;
        if Metrics.enabled () then Metrics.set m_queue_depth 0.)
  end
