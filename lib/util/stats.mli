(** Statistical machinery for the sampled CME solver.

    The paper estimates a reference's miss ratio by Simple Random Sampling of
    the iteration space: each sampled point is a Bernoulli experiment
    (miss / no miss), the number of misses in the sample follows a Binomial
    distribution, and a normal-approximation confidence interval transfers the
    sample ratio to the population.  With interval width 0.1 and confidence
    90 % the required sample size is 164 points (section 2.3). *)

val z_for_confidence : float -> float
(** [z_for_confidence c] is the two-sided standard-normal critical value
    [z] with [P(-z <= Z <= z) = c].  Computed by bisection on [erf]; [c]
    must lie in (0, 1). *)

val required_sample_size : width:float -> confidence:float -> int
(** [required_sample_size ~width ~confidence] is the sample size needed for
    a binomial proportion's confidence interval of total width [width] in
    the worst case (p = 1/2), using the one-sided normal quantile
    [z = Phi^-1 confidence] as the paper does: [n = (z / width)^2] rounded
    to the nearest integer.  The paper's parameters
    [~width:0.1 ~confidence:0.9] yield the paper's 164 points. *)

type interval = { center : float; half_width : float; confidence : float }
(** A symmetric confidence interval for a proportion. *)

val proportion_interval : hits:int -> n:int -> confidence:float -> interval
(** [proportion_interval ~hits ~n ~confidence] is the normal-approximation
    interval for a Binomial proportion with [hits] successes out of [n]
    trials.  [n = 0] (an empty sample carries no information) yields the
    degenerate interval [{center = 0; half_width = 0}] at the requested
    confidence; [n] must not be negative. *)

val exact_interval : center:float -> interval
(** [exact_interval ~center] is the interval of an exactly known
    proportion: zero half-width at confidence 1.  Used by census-style
    estimators that enumerate the whole population instead of sampling. *)

type summary = { count : int; mean : float; variance : float }
(** Streaming moments of a sequence of observations. *)

val summarize : float array -> summary
(** Welford single-pass mean / unbiased sample variance ([variance = 0] for
    fewer than two observations). *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)
