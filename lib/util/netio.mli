(** Socket and line-IO helpers for the tiling daemon and its client.

    The wire protocol (docs/SERVER.md) is newline-delimited JSON over a
    Unix-domain or TCP stream; this module owns the transport plumbing —
    address parsing, listener/connection setup, and bounded line reads
    that cannot be blown up by a peer that never sends a newline.  No
    threads here: blocking descriptors only, so the module stays usable
    from plain CLI code and from the daemon's per-connection threads
    alike. *)

type addr =
  | Unix_sock of string  (** path of a Unix-domain stream socket *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

val addr_of_string : string -> (addr, string) result
(** Parses ["unix:PATH"], ["tcp:HOST:PORT"], ["HOST:PORT"] (digits after
    the last colon) or a bare path (anything else). *)

val addr_to_string : addr -> string
(** Canonical rendering: ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val listen : ?backlog:int -> addr -> (Unix.file_descr, string) result
(** Bind and listen (backlog default 64).  For [Unix_sock], a stale
    socket file left by a previous process is unlinked first, but only
    after probing that nothing is accepting on it.  The descriptor has
    close-on-exec set. *)

val connect : addr -> (Unix.file_descr, string) result
(** Blocking connect; resolves TCP hosts via [getaddrinfo]. *)

(** {2 Bounded line IO}

    A {!reader} buffers reads from a descriptor and hands out one
    [\n]-terminated line at a time, refusing lines longer than the given
    cap instead of buffering without bound. *)

type reader

val reader : ?buf_bytes:int -> Unix.file_descr -> reader

val read_line :
  max_bytes:int -> reader -> [ `Line of string | `Eof | `Too_long ]
(** The next line, without its terminator (a final [\r] is stripped, so
    both [\n] and [\r\n] framing work).  [`Too_long] is returned as soon
    as [max_bytes] bytes arrive without a newline; the connection should
    be dropped — the stream can no longer be re-synchronised.  A trailing
    unterminated fragment at EOF is [`Eof]. *)

val write_line : Unix.file_descr -> string -> (unit, string) result
(** [s] plus [\n], written fully (retrying short writes).  [Error] on a
    closed or broken peer ([EPIPE] etc.) rather than an exception. *)

val write_all : Unix.file_descr -> string -> (unit, string) result
(** [s] exactly as given, written fully — for protocols that frame their
    own terminators (e.g. the HTTP metrics listener's [\r\n] headers). *)
