(** The daemon's persistent result store: a disk-backed tier for the
    {!Tiling_search.Memo} of every search the daemon runs.

    PR 4 measured that >90% of candidate evaluations inside one search
    are shared-cache hits — and a daemon sees the *same* searches again
    across requests and restarts.  The store captures each fresh
    candidate evaluation as one record in an append-only log, keyed by
    the search's {e fingerprint} (a string digesting everything that
    determines objective values: method, kernel, geometry, cache,
    backend, seed) plus the packed candidate key.  A restarted daemon
    loads the log once and then answers repeat queries without
    re-solving a single candidate.

    Properties:

    - {b append-only}: a record is one text line; writes never touch
      earlier bytes, so a crash can at worst truncate the final line;
    - {b crash-safe load}: malformed or truncated lines are counted and
      skipped, never fatal;
    - {b periodic compaction}: when enough dead lines accumulate
      (duplicate keys from concurrent same-fingerprint requests), the
      log is rewritten through a temp file and atomically renamed;
    - {b multi-process safe}: several daemons may share one log (the
      fleet's warm tier, docs/SERVER.md "Fleet mode").  All disk traffic
      happens under a cross-process advisory lock on a [<path>.lock]
      sidecar (a dedicated file because fcntl locks die with any close
      of any descriptor on the locked file, and compaction must reopen
      the log); appends are batched in memory and land as one
      [write(2)] on an [O_APPEND] descriptor, so two processes never
      interleave bytes.  {!sync} and {!refresh} fold records appended
      by sibling processes into this process's tables, and detect a
      sibling's compaction (inode change) to re-read the rewritten log
      — so compaction never drops another process's results.

    The advisory lock is fcntl-based and therefore {e per-process}: two
    {!t} values for the same path inside one process are not isolated
    from each other (and don't need to be — they already serialise on
    their own mutexes and O_APPEND).

    All operations are thread-safe.  Store traffic is counted both in
    local atomics (always on, served by [tiler request stats]) and in
    the {!Tiling_obs.Metrics} registry under [server.store.*]. *)

type t

val open_ : ?compact_min_dead:int -> path:string -> unit -> (t, string) result
(** Load (or create) the log at [path].  [compact_min_dead] is the dead-
    record count that triggers compaction at the next {!sync} (default
    1024, overridable with the [TILING_STORE_COMPACT_MIN] environment
    variable).  Fails if the file exists but does not carry the store
    header — the store never clobbers a foreign file. *)

val path : t -> string

val fingerprint :
  method_:string ->
  kernel:string ->
  n:int ->
  cache:Tiling_cache.Config.t ->
  backend:string ->
  seed:int ->
  string
(** The canonical search fingerprint, e.g.
    ["tile|mm|64|8192:32:1|cme-sample|20020815"].  Everything the
    objective value of a candidate depends on must be in here; GA
    population parameters (restarts, generation counts) must not be —
    they change which candidates are visited, never their values. *)

val find : t -> fingerprint:string -> Tiling_search.Memo.Key.t -> float option
(** Bumps the store hit/miss counters. *)

val append : t -> fingerprint:string -> Tiling_search.Memo.Key.t -> float -> unit
(** Record one evaluation (in memory immediately; on disk at the next
    {!sync} / buffered-channel flush). *)

val tier : t -> fingerprint:string -> float Tiling_search.Memo.tier
(** The {!find}/{!append} pair curried over one fingerprint, shaped for
    {!Tiling_search.Memo.set_tier}. *)

val sync : t -> unit
(** Flush buffered appends to disk, fold in records appended by other
    processes sharing the log, and compact if enough dead records
    accumulated.  The daemon calls this after every completed request.
    When nothing changed on either side, the cost is one [stat(2)]. *)

val refresh : t -> unit
(** {!sync} without the compaction trigger: reconcile with the shared
    log (flush our pending appends, fold in everyone else's).  Search
    handlers call this before starting work so a fleet worker answers
    warm even when a sibling process computed the result. *)

val close : t -> unit
(** Flush pending appends, then close the log and its lock.  The store
    must not be used after. *)

(** {2 Introspection (for [stats] and tests)} *)

val entries : t -> int  (** live records (distinct fingerprint+key pairs) *)

val records : t -> int  (** log lines, dead ones included *)

val fingerprints : t -> int

val hits : t -> int

val misses : t -> int

val appends : t -> int

val compactions : t -> int

val skipped_on_load : t -> int
(** Malformed/truncated lines tolerated by {!open_} and later
    refreshes. *)
