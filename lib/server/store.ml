module Memo = Tiling_search.Memo
module Metrics = Tiling_obs.Metrics

let m_hits = Metrics.counter "server.store.hits"
let m_misses = Metrics.counter "server.store.misses"
let m_appends = Metrics.counter "server.store.appends"
let m_compactions = Metrics.counter "server.store.compactions"
let g_entries = Metrics.gauge "server.store.entries"
let g_records = Metrics.gauge "server.store.records"

let header = "tiling-store/1"

type t = {
  path : string;
  mutable oc : out_channel;
  lock : Mutex.t;
  tables : (string, float Memo.Table.t) Hashtbl.t;
  mutable records : int;  (* data lines in the log, dead ones included *)
  mutable live : int;
  compact_min_dead : int;
  skipped_on_load : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  appends : int Atomic.t;
  compactions : int Atomic.t;
}

(* One record is one line: [r <fingerprint> <v1,v2,..> <cost>].  The
   fingerprint is percent-escaped so whitespace and newlines can never
   break framing; the cost is printed as a hex float ("%h") for exact
   binary round-tripping. *)

let escape s =
  let plain c =
    match c with ' ' | '\n' | '\r' | '\t' | '%' -> false | c -> Char.code c > 0x20
  in
  if String.for_all plain s && s <> "" then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if plain c then Buffer.add_char buf c
        else Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)))
      s;
    Buffer.contents buf
  end

let unescape s =
  if not (String.contains s '%') then Some s
  else
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let hex c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let rec go i =
      if i >= n then Some (Buffer.contents buf)
      else if s.[i] = '%' then
        if i + 3 <= n then
          match (hex s.[i + 1], hex s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
              go (i + 3)
          | _ -> None
        else None
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0

let values_to_string values =
  String.concat "," (Array.to_list (Array.map string_of_int values))

let values_of_string s =
  let parts = String.split_on_char ',' s in
  let ints = List.filter_map int_of_string_opt parts in
  if List.length ints = List.length parts && parts <> [] then
    Some (Array.of_list ints)
  else None

let record_line ~fingerprint key cost =
  Printf.sprintf "r %s %s %h" (escape fingerprint)
    (values_to_string (Memo.Key.values key))
    cost

let parse_record line =
  match String.split_on_char ' ' line with
  | [ "r"; fp; vals; cost ] -> (
      match (unescape fp, values_of_string vals, float_of_string_opt cost) with
      | Some fp, Some values, Some cost -> Some (fp, Memo.Key.of_values values, cost)
      | _ -> None)
  | _ -> None

let table_for t fingerprint =
  match Hashtbl.find_opt t.tables fingerprint with
  | Some tbl -> tbl
  | None ->
      let tbl = Memo.Table.create 256 in
      Hashtbl.add t.tables fingerprint tbl;
      tbl

let set_gauges t =
  Metrics.set g_entries (float_of_int t.live);
  Metrics.set g_records (float_of_int t.records)

let compact_min_default () =
  match Sys.getenv_opt "TILING_STORE_COMPACT_MIN" with
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> v
      | _ ->
          invalid_arg
            (Printf.sprintf "TILING_STORE_COMPACT_MIN=%S: expected a positive integer" s))
  | _ -> 1024

let open_ ?compact_min_dead ~path () =
  let compact_min_dead =
    match compact_min_dead with Some v -> v | None -> compact_min_default ()
  in
  let exists = Sys.file_exists path in
  let load () =
    let tables = Hashtbl.create 16 in
    let records = ref 0 and live = ref 0 and skipped = ref 0 in
    if exists then begin
      let ic = open_in path in
      (match input_line ic with
      | h when h = header -> ()
      | _ ->
          close_in ic;
          failwith (Printf.sprintf "%s: not a tiling store (bad header)" path)
      | exception End_of_file -> close_in ic);
      (try
         while true do
           let line = input_line ic in
           if line <> "" then begin
             incr records;
             match parse_record line with
             | Some (fp, key, cost) ->
                 let tbl =
                   match Hashtbl.find_opt tables fp with
                   | Some tbl -> tbl
                   | None ->
                       let tbl = Memo.Table.create 256 in
                       Hashtbl.add tables fp tbl;
                       tbl
                 in
                 if not (Memo.Table.mem tbl key) then incr live;
                 Memo.Table.replace tbl key cost
             | None -> incr skipped
           end
         done
       with End_of_file -> close_in ic)
    end;
    (tables, !records, !live, !skipped)
  in
  match load () with
  | exception Failure m -> Error m
  | exception Sys_error m -> Error m
  | tables, records, live, skipped ->
      let oc =
        try Ok (open_out_gen [ Open_append; Open_creat ] 0o644 path)
        with Sys_error m -> Error m
      in
      Result.map
        (fun oc ->
          if not exists then begin
            output_string oc (header ^ "\n");
            flush oc
          end;
          let t =
            {
              path;
              oc;
              lock = Mutex.create ();
              tables;
              records;
              live;
              compact_min_dead;
              skipped_on_load = skipped;
              hits = Atomic.make 0;
              misses = Atomic.make 0;
              appends = Atomic.make 0;
              compactions = Atomic.make 0;
            }
          in
          set_gauges t;
          t)
        oc

let path t = t.path

let fingerprint ~method_ ~kernel ~n ~cache ~backend ~seed =
  Printf.sprintf "%s|%s|%d|%d:%d:%d|%s|%d" method_
    (String.lowercase_ascii kernel)
    n cache.Tiling_cache.Config.size cache.Tiling_cache.Config.line
    cache.Tiling_cache.Config.assoc backend seed

let find t ~fingerprint key =
  let r =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tables fingerprint with
        | None -> None
        | Some tbl -> Memo.Table.find_opt tbl key)
  in
  (match r with
  | Some _ ->
      Atomic.incr t.hits;
      Metrics.incr m_hits
  | None ->
      Atomic.incr t.misses;
      Metrics.incr m_misses);
  r

let append t ~fingerprint key cost =
  Atomic.incr t.appends;
  Metrics.incr m_appends;
  Mutex.protect t.lock (fun () ->
      let tbl = table_for t fingerprint in
      if not (Memo.Table.mem tbl key) then t.live <- t.live + 1;
      Memo.Table.replace tbl key cost;
      t.records <- t.records + 1;
      output_string t.oc (record_line ~fingerprint key cost);
      output_char t.oc '\n')

let tier t ~fingerprint =
  {
    Memo.find = (fun key -> find t ~fingerprint key);
    Memo.save = (fun key cost -> append t ~fingerprint key cost);
  }

(* Rewrite the log from the live tables through a temp file and an atomic
   rename; callers hold [t.lock]. *)
let compact_locked t =
  let tmp = t.path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (header ^ "\n");
  Hashtbl.iter
    (fun fp tbl ->
      Memo.Table.iter
        (fun key cost ->
          output_string oc (record_line ~fingerprint:fp key cost);
          output_char oc '\n')
        tbl)
    t.tables;
  close_out oc;
  close_out t.oc;
  Sys.rename tmp t.path;
  t.oc <- open_out_gen [ Open_append ] 0o644 t.path;
  t.records <- t.live;
  Atomic.incr t.compactions;
  Metrics.incr m_compactions

let sync t =
  Mutex.protect t.lock (fun () ->
      if t.records - t.live >= t.compact_min_dead then compact_locked t
      else flush t.oc;
      set_gauges t)

let close t =
  Mutex.protect t.lock (fun () ->
      flush t.oc;
      close_out t.oc)

let entries t = Mutex.protect t.lock (fun () -> t.live)
let records t = Mutex.protect t.lock (fun () -> t.records)
let fingerprints t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tables)
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let appends t = Atomic.get t.appends
let compactions t = Atomic.get t.compactions
let skipped_on_load t = t.skipped_on_load
