module Memo = Tiling_search.Memo
module Metrics = Tiling_obs.Metrics

let m_hits = Metrics.counter "server.store.hits"
let m_misses = Metrics.counter "server.store.misses"
let m_appends = Metrics.counter "server.store.appends"
let m_compactions = Metrics.counter "server.store.compactions"
let m_refreshes = Metrics.counter "server.store.refreshes"
let g_entries = Metrics.gauge "server.store.entries"
let g_records = Metrics.gauge "server.store.records"

let header = "tiling-store/1"

type t = {
  path : string;
  mutable fd : Unix.file_descr;  (* O_APPEND writer *)
  lockfd : Unix.file_descr;
      (* [path ^ ".lock"] sidecar carrying the cross-process advisory
         lock.  A dedicated file, not the log itself: fcntl locks die
         with {e any} close of {e any} descriptor on the file within the
         process, and compaction must close/reopen the log. *)
  lock : Mutex.t;
  tables : (string, float Memo.Table.t) Hashtbl.t;
  mutable records : int;
      (* data lines in the log + pending buffer, dead ones included *)
  mutable live : int;
  mutable read_pos : int;  (* log bytes already folded into [tables] *)
  mutable stamp : int * int;  (* (st_dev, st_ino): detects log rotation *)
  pending : Buffer.t;  (* appends not yet written to disk *)
  mutable pending_records : int;
  pending_keys : (string * Memo.Key.t, unit) Hashtbl.t;
      (* keys with an update waiting in [pending].  Folding disk lines
         must never clobber these: our line lands {e after} everything
         we fold, so by the log's last-write-wins order ours is newer —
         critical when a sibling's compaction forces a full re-read of
         our own older, durable records. *)
  compact_min_dead : int;
  mutable skipped : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  appends : int Atomic.t;
  compactions : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Cross-process advisory locking.  fcntl (lockf) locks are per-process:
   this serialises daemons sharing one TILING_STORE, while in-process
   callers are already serialised by [t.lock]. *)

let with_file_lock t f =
  ignore (Unix.lseek t.lockfd 0 Unix.SEEK_SET);
  Unix.lockf t.lockfd Unix.F_LOCK 0;
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.lseek t.lockfd 0 Unix.SEEK_SET);
      try Unix.lockf t.lockfd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
    f

let rec write_sub fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_sub fd s (off + n) (len - n)
  end

let write_fully fd s = write_sub fd s 0 (String.length s)

(* One record is one line: [r <fingerprint> <v1,v2,..> <cost>].  The
   fingerprint is percent-escaped so whitespace and newlines can never
   break framing; the cost is printed as a hex float ("%h") for exact
   binary round-tripping. *)

let escape s =
  let plain c =
    match c with ' ' | '\n' | '\r' | '\t' | '%' -> false | c -> Char.code c > 0x20
  in
  if String.for_all plain s && s <> "" then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if plain c then Buffer.add_char buf c
        else Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)))
      s;
    Buffer.contents buf
  end

let unescape s =
  if not (String.contains s '%') then Some s
  else
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let hex c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let rec go i =
      if i >= n then Some (Buffer.contents buf)
      else if s.[i] = '%' then
        if i + 3 <= n then
          match (hex s.[i + 1], hex s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
              go (i + 3)
          | _ -> None
        else None
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0

let values_to_string values =
  String.concat "," (Array.to_list (Array.map string_of_int values))

let values_of_string s =
  let parts = String.split_on_char ',' s in
  let ints = List.filter_map int_of_string_opt parts in
  if List.length ints = List.length parts && parts <> [] then
    Some (Array.of_list ints)
  else None

let record_line ~fingerprint key cost =
  Printf.sprintf "r %s %s %h" (escape fingerprint)
    (values_to_string (Memo.Key.values key))
    cost

let parse_record line =
  match String.split_on_char ' ' line with
  | [ "r"; fp; vals; cost ] -> (
      match (unescape fp, values_of_string vals, float_of_string_opt cost) with
      | Some fp, Some values, Some cost -> Some (fp, Memo.Key.of_values values, cost)
      | _ -> None)
  | _ -> None

let table_for t fingerprint =
  match Hashtbl.find_opt t.tables fingerprint with
  | Some tbl -> tbl
  | None ->
      let tbl = Memo.Table.create 256 in
      Hashtbl.add t.tables fingerprint tbl;
      tbl

let set_gauges t =
  Metrics.set g_entries (float_of_int t.live);
  Metrics.set g_records (float_of_int t.records)

let compact_min_default () =
  match Sys.getenv_opt "TILING_STORE_COMPACT_MIN" with
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> v
      | _ ->
          invalid_arg
            (Printf.sprintf "TILING_STORE_COMPACT_MIN=%S: expected a positive integer" s))
  | _ -> 1024

(* ------------------------------------------------------------------ *)
(* Disk <-> tables reconciliation.  Every [_locked] function below runs
   with both [t.lock] and the cross-process file lock held. *)

let fold_line t line =
  if line <> "" && line <> header then begin
    t.records <- t.records + 1;
    match parse_record line with
    | Some (fp, key, cost) ->
        if not (Hashtbl.mem t.pending_keys (fp, key)) then begin
          let tbl = table_for t fp in
          if not (Memo.Table.mem tbl key) then t.live <- t.live + 1;
          Memo.Table.replace tbl key cost
        end
    | None -> t.skipped <- t.skipped + 1
  end

let open_writer path =
  Unix.openfile path
    [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ]
    0o644

(* Another process compacted (temp-file + rename): our descriptor points
   at the orphaned old log.  Re-open, and start folding the replacement
   from byte 0 — the rewrite may contain records we have never seen. *)
let check_rotate_locked t =
  let rotated =
    match Unix.stat t.path with
    | st -> (st.Unix.st_dev, st.Unix.st_ino) <> t.stamp
    | exception Unix.Unix_error _ -> true
  in
  if rotated then begin
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.fd <- open_writer t.path;
    let st = Unix.fstat t.fd in
    if st.Unix.st_size = 0 then write_fully t.fd (header ^ "\n");
    let st = Unix.fstat t.fd in
    t.stamp <- (st.Unix.st_dev, st.Unix.st_ino);
    t.records <- t.pending_records;
    t.read_pos <- 0
  end

(* Fold every byte appended (by anyone) since we last looked.  Writers
   append whole lines under the file lock, so the region [read_pos, EOF)
   is complete lines — except after a writer crashed mid-write, in which
   case the torn tail is skipped and terminated so the next append
   starts a fresh line. *)
let read_new_locked t =
  let data =
    let ic = open_in_bin t.path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        if t.read_pos >= len then ""
        else begin
          seek_in ic t.read_pos;
          really_input_string ic (len - t.read_pos)
        end)
  in
  let n = String.length data in
  let i = ref 0 in
  while !i < n do
    match String.index_from_opt data !i '\n' with
    | Some j ->
        fold_line t (String.sub data !i (j - !i));
        i := j + 1
    | None ->
        (* torn tail from a crashed writer *)
        t.skipped <- t.skipped + 1;
        write_fully t.fd "\n";
        i := n
  done

let write_pending_locked t =
  if Buffer.length t.pending > 0 then begin
    (* One write(2) on an O_APPEND descriptor: the kernel serialises the
       append offset, so even a writer outside our advisory lock could
       not interleave bytes inside this batch. *)
    write_fully t.fd (Buffer.contents t.pending);
    Buffer.clear t.pending;
    t.pending_records <- 0;
    Hashtbl.reset t.pending_keys
  end;
  (* Own bytes are already in [tables]; never re-read them. *)
  t.read_pos <- (Unix.fstat t.fd).Unix.st_size

(* Rewrite the log from the live tables through a temp file and an
   atomic rename.  Runs after [read_new_locked], so [tables] is a
   superset of every record any process has durably written — compaction
   never drops a sibling's results. *)
let compact_locked t =
  let tmp = t.path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (header ^ "\n");
  Hashtbl.iter
    (fun fp tbl ->
      Memo.Table.iter
        (fun key cost ->
          output_string oc (record_line ~fingerprint:fp key cost);
          output_char oc '\n')
        tbl)
    t.tables;
  close_out oc;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  Sys.rename tmp t.path;
  t.fd <- open_writer t.path;
  let st = Unix.fstat t.fd in
  t.stamp <- (st.Unix.st_dev, st.Unix.st_ino);
  t.records <- t.live;
  t.read_pos <- st.Unix.st_size;
  Atomic.incr t.compactions;
  Metrics.incr m_compactions

let disk_changed t =
  match Unix.stat t.path with
  | st ->
      (st.Unix.st_dev, st.Unix.st_ino) <> t.stamp
      || st.Unix.st_size <> t.read_pos
  | exception Unix.Unix_error _ -> true

(* The store's one reconciliation point: flush our pending appends, fold
   everyone else's, maybe compact.  The no-op fast path is a single
   stat(2), so calling this per request is cheap when nothing moved. *)
let flush_locked t ~compact =
  let compact_due () = compact && t.records - t.live >= t.compact_min_dead in
  if Buffer.length t.pending > 0 || disk_changed t || compact_due () then begin
    Metrics.incr m_refreshes;
    with_file_lock t (fun () ->
        check_rotate_locked t;
        read_new_locked t;
        write_pending_locked t;
        if compact_due () then compact_locked t)
  end

let open_ ?compact_min_dead ~path () =
  let compact_min_dead =
    match compact_min_dead with Some v -> v | None -> compact_min_default ()
  in
  let build () =
    let lockfd =
      Unix.openfile (path ^ ".lock")
        [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
        0o644
    in
    match
      (* Hold the cross-process lock for the whole load: never a torn
         read of a sibling's in-progress compaction. *)
      ignore (Unix.lseek lockfd 0 Unix.SEEK_SET);
      Unix.lockf lockfd Unix.F_LOCK 0;
      Fun.protect
        ~finally:(fun () ->
          ignore (Unix.lseek lockfd 0 Unix.SEEK_SET);
          try Unix.lockf lockfd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
        (fun () ->
          let fd = open_writer path in
          if (Unix.fstat fd).Unix.st_size = 0 then
            write_fully fd (header ^ "\n");
          let t =
            {
              path;
              fd;
              lockfd;
              lock = Mutex.create ();
              tables = Hashtbl.create 16;
              records = 0;
              live = 0;
              read_pos = 0;
              stamp = (-1, -1);
              pending = Buffer.create 4096;
              pending_records = 0;
              pending_keys = Hashtbl.create 16;
              compact_min_dead;
              skipped = 0;
              hits = Atomic.make 0;
              misses = Atomic.make 0;
              appends = Atomic.make 0;
              compactions = Atomic.make 0;
            }
          in
          let ic = open_in_bin path in
          let first = try Some (input_line ic) with End_of_file -> None in
          if first <> Some header then begin
            close_in_noerr ic;
            (try Unix.close fd with Unix.Unix_error _ -> ());
            failwith (Printf.sprintf "%s: not a tiling store (bad header)" path)
          end;
          (try
             while true do
               fold_line t (input_line ic)
             done
           with End_of_file -> close_in_noerr ic);
          let st = Unix.fstat fd in
          t.read_pos <- st.Unix.st_size;
          t.stamp <- (st.Unix.st_dev, st.Unix.st_ino);
          t)
    with
    | t -> t
    | exception e ->
        (try Unix.close lockfd with Unix.Unix_error _ -> ());
        raise e
  in
  match build () with
  | t ->
      set_gauges t;
      Ok t
  | exception Failure m -> Error m
  | exception Sys_error m -> Error m
  | exception Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))

let path t = t.path

let fingerprint ~method_ ~kernel ~n ~cache ~backend ~seed =
  Printf.sprintf "%s|%s|%d|%d:%d:%d|%s|%d" method_
    (String.lowercase_ascii kernel)
    n cache.Tiling_cache.Config.size cache.Tiling_cache.Config.line
    cache.Tiling_cache.Config.assoc backend seed

let find t ~fingerprint key =
  let r =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tables fingerprint with
        | None -> None
        | Some tbl -> Memo.Table.find_opt tbl key)
  in
  (match r with
  | Some _ ->
      Atomic.incr t.hits;
      Metrics.incr m_hits
  | None ->
      Atomic.incr t.misses;
      Metrics.incr m_misses);
  r

let append t ~fingerprint key cost =
  Atomic.incr t.appends;
  Metrics.incr m_appends;
  Mutex.protect t.lock (fun () ->
      let tbl = table_for t fingerprint in
      if not (Memo.Table.mem tbl key) then t.live <- t.live + 1;
      Memo.Table.replace tbl key cost;
      t.records <- t.records + 1;
      t.pending_records <- t.pending_records + 1;
      Hashtbl.replace t.pending_keys (fingerprint, key) ();
      Buffer.add_string t.pending (record_line ~fingerprint key cost);
      Buffer.add_char t.pending '\n')

let tier t ~fingerprint =
  {
    Memo.find = (fun key -> find t ~fingerprint key);
    Memo.save = (fun key cost -> append t ~fingerprint key cost);
  }

let sync t =
  Mutex.protect t.lock (fun () ->
      flush_locked t ~compact:true;
      set_gauges t)

let refresh t =
  Mutex.protect t.lock (fun () ->
      flush_locked t ~compact:false;
      set_gauges t)

let close t =
  Mutex.protect t.lock (fun () ->
      flush_locked t ~compact:false;
      (try Unix.close t.fd with Unix.Unix_error _ -> ());
      try Unix.close t.lockfd with Unix.Unix_error _ -> ())

let entries t = Mutex.protect t.lock (fun () -> t.live)
let records t = Mutex.protect t.lock (fun () -> t.records)
let fingerprints t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tables)
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let appends t = Atomic.get t.appends
let compactions t = Atomic.get t.compactions
let skipped_on_load t = Mutex.protect t.lock (fun () -> t.skipped)
