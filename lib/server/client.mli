(** Blocking client for the tiling daemon.

    One connection, one request in flight: {!call} writes a single
    request line and blocks until the matching response line arrives.
    (The daemon supports pipelining — responses carry the request [id]
    and may arrive out of order — but this client deliberately does not:
    every CLI and test use is call-and-wait.) *)

type t

val connect : Tiling_util.Netio.addr -> (t, string) result
val close : t -> unit

val call :
  ?on_progress:(Tiling_obs.Json.t -> unit) ->
  t ->
  meth:string ->
  params:(string * Tiling_obs.Json.t) list ->
  (Tiling_obs.Json.t, string) result
(** Send one request and read back the full response envelope
    ([{"v":1,"id":..,"status":..,..}]).  [Error] is a transport problem
    (connection closed, oversized or malformed reply) — a server-side
    error still comes back as [Ok envelope] with [status = "error"];
    interpret it with {!result_of_response}.

    When the request opted into streaming (["progress": true]) the
    daemon interleaves [status:"progress"] notification lines before the
    final envelope; each one's [event] member is handed to
    [on_progress] (and silently discarded without it) — [call] returns
    only the final envelope either way. *)

val result_of_response :
  Tiling_obs.Json.t -> (Tiling_obs.Json.t, Protocol.error) result
(** Split an envelope into its [result] payload or its decoded error. *)
