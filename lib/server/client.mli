(** Blocking client for the tiling daemon.

    {!call} writes a single request line and blocks until the matching
    response line arrives — but the connection is shared: any number of
    threads may {!call} on one {!t} concurrently, and responses are
    demultiplexed by request [id], so pipelined out-of-order replies (a
    quick [stats] overtaking a long [tile]) reach the right caller.
    Internally, exactly one of the blocked callers at a time holds the
    socket-read seat and routes whatever envelope arrives; everyone else
    parks on a condition variable.  A transport failure (EOF, oversized
    or malformed line) is sticky and fails all pending and future calls
    on the connection. *)

type t

val connect : Tiling_util.Netio.addr -> (t, string) result
val close : t -> unit

val call :
  ?on_progress:(Tiling_obs.Json.t -> unit) ->
  t ->
  meth:string ->
  params:(string * Tiling_obs.Json.t) list ->
  (Tiling_obs.Json.t, string) result
(** Send one request and read back the full response envelope
    ([{"v":1,"id":..,"status":..,..}]).  [Error] is a transport problem
    (connection closed, oversized or malformed reply) — a server-side
    error still comes back as [Ok envelope] with [status = "error"];
    interpret it with {!result_of_response}.

    When the request opted into streaming (["progress": true]) the
    daemon interleaves [status:"progress"] notification lines before the
    final envelope; each one's [event] member is handed to this
    request's [on_progress] (routed by [id]; silently discarded without
    a callback) — [call] returns only the final envelope either way. *)

val result_of_response :
  Tiling_obs.Json.t -> (Tiling_obs.Json.t, Protocol.error) result
(** Split an envelope into its [result] payload or its decoded error. *)
