(** The tiling daemon: accept loop, request handlers, and lifecycle.

    [run config] binds the configured address and serves until a
    [shutdown] request or a SIGTERM/SIGINT arrives, then drains: the
    listener closes, queued requests finish, in-flight connections are
    unblocked and joined, the result store is flushed and a Unix socket
    path is unlinked.  Malformed input — bad JSON, bad envelopes, bad
    parameters, oversized lines — is answered with a structured error (or
    at worst drops that one connection); it never takes the daemon down.

    Methods: [analyze], [tile], [pad-tile], [fuzz-case], [stats],
    [metrics], [shutdown].  The first four go through the {!Scheduler}
    (admission control, deadlines) and accept two telemetry opt-ins:
    ["trace": true] attaches the request's {!Tiling_obs.Span} tree to the
    result under ["trace"], and ["progress": true] streams the search's
    {!Tiling_obs.Events} as interleaved [status:"progress"] notifications
    ahead of the final response.  [stats], [metrics] and [shutdown] are
    answered inline so they work even when the queue is saturated.  The
    parameter schema of each method is documented in docs/SERVER.md. *)

type config = {
  addr : Tiling_util.Netio.addr;
  workers : int;        (** scheduler worker threads *)
  capacity : int;       (** admission queue slots *)
  store_path : string option;
      (** result-store log; [None] = no persistence (per-request memo only) *)
  default_deadline_s : float option;
      (** applied to requests that carry no [deadline_s] of their own *)
  domains : int;        (** OCaml domains per search ({!Tiling_util.Pool}) *)
  max_line_bytes : int; (** request-line cap (payload_too_large beyond) *)
  metrics_addr : Tiling_util.Netio.addr option;
      (** when set, an {!Http} listener serving [GET /metrics] here *)
}

val default_config : config
(** [unix:tiler.sock], 2 workers, 64 slots, no store, no deadline,
    1 domain, 1 MiB lines, no HTTP metrics listener. *)

val run : config -> (unit, string) result
(** Serve until shutdown; [Error] only for startup failures (bind or
    store open).  Installs SIGTERM/SIGINT handlers and ignores
    SIGPIPE. *)
