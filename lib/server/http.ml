module Netio = Tiling_util.Netio

let log = Logs.Src.create "tiling.http" ~doc:"Metrics HTTP listener"

module Log = (val Logs.src_log log)

type t = {
  lfd : Unix.file_descr;
  addr : Netio.addr;
  stop : bool Atomic.t;
  mutable thread : Thread.t option;
}

let max_request_line = 4096
let max_header_lines = 64

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status content_type (String.length body)
  in
  ignore (Netio.write_all fd (head ^ body))

(* One tiny blocking exchange per connection: read the request line, drain
   headers up to a cap, answer, close.  Scrapes are rare (one per Prometheus
   interval) and the body is built outside any lock, so a single service
   thread is plenty and a stalled scraper can at worst delay the next
   scrape, never the daemon. *)
let serve_conn body fd =
  let r = Netio.reader fd in
  (match Netio.read_line ~max_bytes:max_request_line r with
  | `Line line -> (
      let drain_headers () =
        let rec go n =
          if n < max_header_lines then
            match Netio.read_line ~max_bytes:max_request_line r with
            | `Line "" | `Eof | `Too_long -> ()
            | `Line _ -> go (n + 1)
        in
        go 0
      in
      match String.split_on_char ' ' line with
      | [ "GET"; path; _http ] ->
          drain_headers ();
          let path = match String.index_opt path '?' with
            | Some i -> String.sub path 0 i
            | None -> path
          in
          if path = "/metrics" then
            respond fd ~status:"200 OK"
              ~content_type:Tiling_obs.Openmetrics.content_type (body ())
          else
            respond fd ~status:"404 Not Found" ~content_type:"text/plain"
              "only /metrics lives here\n"
      | _ ->
          respond fd ~status:"400 Bad Request" ~content_type:"text/plain"
            "malformed request line\n")
  | `Eof | `Too_long -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t body () =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.lfd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.lfd with
        | fd, _ -> (
            try serve_conn body fd
            with e ->
              Log.warn (fun m ->
                  m "metrics connection failed: %s" (Printexc.to_string e));
              (try Unix.close fd with Unix.Unix_error _ -> ()))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start ~addr ~body =
  match Netio.listen addr with
  | Error m -> Error m
  | Ok lfd ->
      let t = { lfd; addr; stop = Atomic.make false; thread = None } in
      t.thread <- Some (Thread.create (accept_loop t body) ());
      Log.info (fun m -> m "metrics on http://%s/metrics" (Netio.addr_to_string addr));
      Ok t

let stop t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Option.iter Thread.join t.thread;
    (try Unix.close t.lfd with Unix.Unix_error _ -> ());
    match t.addr with
    | Netio.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Netio.Tcp _ -> ()
  end
