(** The daemon's wire protocol: newline-delimited JSON, one request and
    one response per line, over a Unix-domain or TCP stream.

    Every message is a versioned envelope.  Requests look like

    {v {"v":1, "id":7, "method":"tile", "params":{"kernel":"mm"}} v}

    and responses echo the id:

    {v {"v":1, "id":7, "status":"ok", "result":{...}}
       {"v":1, "id":7, "status":"error",
        "error":{"code":"overloaded", "message":"...", "retry_after_s":1.5}} v}

    The full reference lives in docs/SERVER.md.  This module owns the
    envelope: parsing a request out of an untrusted JSON tree, and
    building the two response shapes.  Method parameter schemas belong to
    {!Server}. *)

val version : int
(** Wire version this build speaks: [1]. *)

type request = {
  id : Tiling_obs.Json.t;
      (** echoed verbatim in the response; [String], [Int] or [Null] *)
  meth : string;
  params : Tiling_obs.Json.t;  (** an [Obj]; [Obj []] when absent *)
}

(** Error taxonomy, serialized as snake_case strings on the wire. *)
type code =
  | Bad_request         (** malformed JSON, bad envelope or bad params *)
  | Unknown_method
  | Unsupported_version
  | Overloaded          (** admission reject: queue full; retry later *)
  | Draining            (** daemon is shutting down; do not retry here *)
  | Deadline_exceeded   (** the request's deadline elapsed *)
  | Payload_too_large   (** request line exceeded the daemon's byte cap *)
  | Internal            (** the handler raised; daemon stays up *)

val code_to_string : code -> string

val code_of_string : string -> code option
(** Inverse of {!code_to_string} (used by {!Client}). *)

type error = {
  code : code;
  message : string;
  retry_after_s : float option;
      (** with [Overloaded]: a backoff hint from recent latencies *)
}

val err : ?retry_after_s:float -> code -> string -> error

val request_of_json : Tiling_obs.Json.t -> (request, error) result
(** Validates the envelope: object shape, [v] = {!version}, [method] a
    string, [params] an object when present.  The returned error carries
    whatever [id] could be salvaged (via {!error_response}'s [id]
    argument the caller still echoes it). *)

val ok_response :
  id:Tiling_obs.Json.t -> ?coalesced:bool -> Tiling_obs.Json.t -> Tiling_obs.Json.t
(** [ok_response ~id result] is the success envelope.  [coalesced]
    (default false) adds ["coalesced": true] between [status] and
    [result]: the request shared one evaluation with concurrent identical
    requests, so every envelope of the group is byte-identical modulo
    [id] (docs/SERVER.md "Fleet mode"). *)

val progress_response :
  id:Tiling_obs.Json.t -> Tiling_obs.Json.t -> Tiling_obs.Json.t
(** [progress_response ~id event] is an interim notification
    [{"v", "id", "status":"progress", "event":{...}}] — zero or more may
    precede the final ok/error response of a request that opted in with
    ["progress": true].  [event] is an {!Tiling_obs.Events.to_json}
    rendering. *)

val error_response :
  id:Tiling_obs.Json.t -> ?coalesced:bool -> error -> Tiling_obs.Json.t
(** [coalesced] as in {!ok_response}: a coalesced group that fails shares
    one error the same way it would have shared one result. *)

(** {2 Typed access to [params]}

    Each accessor returns [Ok None] when the key is absent, and a
    [Bad_request]-worthy message when it is present with the wrong
    type — so optional-with-default and required parameters are both one
    combinator away. *)

module Params : sig
  val string : Tiling_obs.Json.t -> string -> (string option, string) result
  val int : Tiling_obs.Json.t -> string -> (int option, string) result
  val float : Tiling_obs.Json.t -> string -> (float option, string) result
  val bool : Tiling_obs.Json.t -> string -> (bool option, string) result
  val int_list : Tiling_obs.Json.t -> string -> (int list option, string) result

  val obj : Tiling_obs.Json.t -> string -> (Tiling_obs.Json.t option, string) result
  (** The raw sub-object (e.g. ["cache"]). *)

  val require : (('a option, string) result) -> string -> ('a, string) result
  (** [require (string params "kernel") "kernel"] turns absence into an
      error naming the parameter. *)
end
