module Json = Tiling_obs.Json
module Netio = Tiling_util.Netio

(* One in-flight request: filled in by whichever thread happens to be
   reading when its final envelope arrives. *)
type slot = {
  mutable outcome : (Json.t, string) result option;
  on_progress : (Json.t -> unit) option;
}

type t = {
  fd : Unix.file_descr;
  r : Netio.reader;
  lock : Mutex.t;  (* guards everything mutable below *)
  turn : Condition.t;  (* "a response landed / the reader seat is free" *)
  wlock : Mutex.t;  (* one request line at a time *)
  mutable next_id : int;
  pending : (int, slot) Hashtbl.t;
  mutable reading : bool;  (* some caller currently owns the socket read *)
  mutable dead : string option;  (* sticky transport failure *)
}

let connect addr =
  Result.map
    (fun fd ->
      {
        fd;
        r = Netio.reader fd;
        lock = Mutex.create ();
        turn = Condition.create ();
        wlock = Mutex.create ();
        next_id = 1;
        pending = Hashtbl.create 4;
        reading = false;
        dead = None;
      })
    (Netio.connect addr)

let close t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  (* Unstick any caller parked in [call]: the reader among them will see
     the closed descriptor as EOF/EBADF and mark the client dead. *)
  Mutex.protect t.lock (fun () -> Condition.broadcast t.turn)

let max_reply_bytes = 8 * 1024 * 1024

(* Process one received line while holding [t.lock].  Progress
   notifications are routed by id to their request's [on_progress]; the
   callback itself runs outside the lock (returned as a thunk) so a slow
   consumer never stalls other callers' deliveries. *)
let process_line t line =
  match Json.of_string line with
  | Error m ->
      (* The stream cannot be re-synchronised after a malformed line. *)
      t.dead <- Some (Printf.sprintf "malformed reply: %s" m);
      None
  | Ok j -> (
      let rid =
        match Json.member "id" j with Some (Json.Int i) -> Some i | _ -> None
      in
      let slot = Option.bind rid (Hashtbl.find_opt t.pending) in
      match Json.member "status" j with
      | Some (Json.String "progress") -> (
          match (slot, Json.member "event" j) with
          | Some { on_progress = Some f; _ }, Some ev -> Some (fun () -> f ev)
          | _ -> None)
      | _ ->
          (match (rid, slot) with
          | Some rid, Some slot ->
              slot.outcome <- Some (Ok j);
              Hashtbl.remove t.pending rid
          | _ ->
              (* A final envelope for nobody (an unsolicited or duplicate
                 id): dropping it is the only safe move. *)
              ());
          None)

let read_one t =
  (* Socket read happens with [t.lock] released — that's the whole point
     of the reader-seat dance: exactly one thread blocks on the socket
     while the rest park on [turn]. *)
  Mutex.unlock t.lock;
  let received =
    match Netio.read_line ~max_bytes:max_reply_bytes t.r with
    | `Eof -> Error "connection closed before the reply arrived"
    | `Too_long -> Error (Printf.sprintf "reply exceeds %d bytes" max_reply_bytes)
    | `Line line -> Ok line
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  Mutex.lock t.lock;
  let notify =
    match received with
    | Error m ->
        t.dead <- Some m;
        None
    | Ok line -> process_line t line
  in
  Condition.broadcast t.turn;
  notify

let call ?on_progress t ~meth ~params =
  let id, slot =
    Mutex.protect t.lock (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let slot = { outcome = None; on_progress } in
        Hashtbl.replace t.pending id slot;
        (id, slot))
  in
  let req =
    Json.Obj
      [
        ("v", Json.Int Protocol.version);
        ("id", Json.Int id);
        ("method", Json.String meth);
        ("params", Json.Obj params);
      ]
  in
  let sent =
    Mutex.protect t.wlock (fun () ->
        match Netio.write_line t.fd (Json.to_string req) with
        | Ok () -> Ok ()
        | Error m -> Error (Printf.sprintf "cannot send request: %s" m)
        | exception Unix.Unix_error (e, _, _) ->
            Error
              (Printf.sprintf "cannot send request: %s" (Unix.error_message e)))
  in
  match sent with
  | Error m ->
      Mutex.protect t.lock (fun () -> Hashtbl.remove t.pending id);
      Error m
  | Ok () ->
      (* Await our slot.  Responses may arrive in any order (the daemon
         pipelines); whichever caller holds the reader seat demuxes by id
         and wakes everyone, so a caller can be handed its response by a
         thread that was reading for its own. *)
      let rec await () =
        match slot.outcome with
        | Some r ->
            Mutex.unlock t.lock;
            r
        | None -> (
            match t.dead with
            | Some m ->
                Hashtbl.remove t.pending id;
                Mutex.unlock t.lock;
                Error m
            | None ->
                if t.reading then begin
                  Condition.wait t.turn t.lock;
                  await ()
                end
                else begin
                  t.reading <- true;
                  let notify = read_one t in
                  t.reading <- false;
                  match notify with
                  | None -> await ()
                  | Some f ->
                      (* run the progress callback unlocked, then resume *)
                      Mutex.unlock t.lock;
                      f ();
                      Mutex.lock t.lock;
                      await ()
                end)
      in
      Mutex.lock t.lock;
      await ()

let result_of_response j =
  match Json.member "status" j with
  | Some (Json.String "ok") ->
      Ok (Option.value (Json.member "result" j) ~default:Json.Null)
  | Some (Json.String "error") ->
      let e = Option.value (Json.member "error" j) ~default:(Json.Obj []) in
      let code =
        match Json.member "code" e with
        | Some (Json.String s) ->
            Option.value (Protocol.code_of_string s) ~default:Protocol.Internal
        | _ -> Protocol.Internal
      in
      let message =
        match Json.member "message" e with
        | Some (Json.String s) -> s
        | _ -> "(no message)"
      in
      let retry_after_s =
        match Json.member "retry_after_s" e with
        | Some (Json.Float f) -> Some f
        | Some (Json.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      Error (Protocol.err ?retry_after_s code message)
  | _ ->
      Error
        (Protocol.err Protocol.Internal "malformed response: missing status")
