module Json = Tiling_obs.Json
module Netio = Tiling_util.Netio

type t = { fd : Unix.file_descr; r : Netio.reader; mutable next_id : int }

let connect addr =
  Result.map
    (fun fd -> { fd; r = Netio.reader fd; next_id = 1 })
    (Netio.connect addr)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let max_reply_bytes = 8 * 1024 * 1024

let call ?on_progress t ~meth ~params =
  let id = t.next_id in
  t.next_id <- id + 1;
  let req =
    Json.Obj
      [
        ("v", Json.Int Protocol.version);
        ("id", Json.Int id);
        ("method", Json.String meth);
        ("params", Json.Obj params);
      ]
  in
  match Netio.write_line t.fd (Json.to_string req) with
  | Error m -> Error (Printf.sprintf "cannot send request: %s" m)
  | Ok () ->
      (* Progress notifications share the reply stream: any number of
         [status:"progress"] lines precede the one final envelope. *)
      let rec read_reply () =
        match Netio.read_line ~max_bytes:max_reply_bytes t.r with
        | `Eof -> Error "connection closed before the reply arrived"
        | `Too_long ->
            Error (Printf.sprintf "reply exceeds %d bytes" max_reply_bytes)
        | `Line line -> (
            match Json.of_string line with
            | Error m -> Error (Printf.sprintf "malformed reply: %s" m)
            | Ok j -> (
                match Json.member "status" j with
                | Some (Json.String "progress") ->
                    (match (on_progress, Json.member "event" j) with
                    | Some f, Some ev -> f ev
                    | _ -> ());
                    read_reply ()
                | _ -> Ok j))
      in
      read_reply ()

let result_of_response j =
  match Json.member "status" j with
  | Some (Json.String "ok") ->
      Ok (Option.value (Json.member "result" j) ~default:Json.Null)
  | Some (Json.String "error") ->
      let e = Option.value (Json.member "error" j) ~default:(Json.Obj []) in
      let code =
        match Json.member "code" e with
        | Some (Json.String s) ->
            Option.value (Protocol.code_of_string s) ~default:Protocol.Internal
        | _ -> Protocol.Internal
      in
      let message =
        match Json.member "message" e with
        | Some (Json.String s) -> s
        | _ -> "(no message)"
      in
      let retry_after_s =
        match Json.member "retry_after_s" e with
        | Some (Json.Float f) -> Some f
        | Some (Json.Int i) -> Some (float_of_int i)
        | _ -> None
      in
      Error (Protocol.err ?retry_after_s code message)
  | _ ->
      Error
        (Protocol.err Protocol.Internal "malformed response: missing status")
