(** A minimal HTTP/1.0 listener serving [GET /metrics] as OpenMetrics
    text — the daemon's Prometheus scrape surface.

    Deliberately tiny: one service thread, blocking IO via
    {!Tiling_util.Netio}, [Connection: close] on every response, no
    keep-alive, no TLS, nothing but [/metrics] (anything else is 404).
    The listener shares nothing with the NDJSON wire socket; point
    Prometheus at it with

    {v scrape_configs:
  - job_name: tiler
    static_configs: [{targets: ["HOST:PORT"]}] v} *)

type t

val start :
  addr:Tiling_util.Netio.addr ->
  body:(unit -> string) ->
  (t, string) result
(** Bind [addr] and serve [body ()] (already-rendered OpenMetrics text,
    re-rendered per request) at [GET /metrics].  [body] runs on the
    listener thread and must not raise. *)

val stop : t -> unit
(** Stop accepting, join the service thread, close the listener (and
    unlink a Unix socket path).  Idempotent. *)
