module Json = Tiling_obs.Json

let version = 1

type request = { id : Json.t; meth : string; params : Json.t }

type code =
  | Bad_request
  | Unknown_method
  | Unsupported_version
  | Overloaded
  | Draining
  | Deadline_exceeded
  | Payload_too_large
  | Internal

let code_to_string = function
  | Bad_request -> "bad_request"
  | Unknown_method -> "unknown_method"
  | Unsupported_version -> "unsupported_version"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Deadline_exceeded -> "deadline_exceeded"
  | Payload_too_large -> "payload_too_large"
  | Internal -> "internal"

let code_of_string = function
  | "bad_request" -> Some Bad_request
  | "unknown_method" -> Some Unknown_method
  | "unsupported_version" -> Some Unsupported_version
  | "overloaded" -> Some Overloaded
  | "draining" -> Some Draining
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "payload_too_large" -> Some Payload_too_large
  | "internal" -> Some Internal
  | _ -> None

type error = { code : code; message : string; retry_after_s : float option }

let err ?retry_after_s code message = { code; message; retry_after_s }

let request_of_json j =
  match j with
  | Json.Obj _ -> (
      let id = Option.value (Json.member "id" j) ~default:Json.Null in
      match Json.member "v" j with
      | Some (Json.Int v) when v = version -> (
          match Json.member "method" j with
          | Some (Json.String meth) -> (
              match Json.member "params" j with
              | None -> Ok { id; meth; params = Json.Obj [] }
              | Some (Json.Obj _ as params) -> Ok { id; meth; params }
              | Some _ -> Error (err Bad_request "params must be an object"))
          | Some _ -> Error (err Bad_request "method must be a string")
          | None -> Error (err Bad_request "missing method"))
      | Some (Json.Int v) ->
          Error
            (err Unsupported_version
               (Printf.sprintf "wire version %d not supported (this daemon speaks %d)"
                  v version))
      | Some _ -> Error (err Bad_request "v must be an integer")
      | None -> Error (err Bad_request "missing envelope version v"))
  | _ -> Error (err Bad_request "request must be a JSON object")

(* [coalesced] marks every member of a request group that shared one
   evaluation (docs/SERVER.md "Fleet mode"): the flag sits between
   [status] and the payload so the envelopes of all members stay
   byte-identical modulo [id]. *)
let coalesced_field coalesced =
  if coalesced then [ ("coalesced", Json.Bool true) ] else []

let ok_response ~id ?(coalesced = false) result =
  Json.Obj
    ([
       ("v", Json.Int version);
       ("id", id);
       ("status", Json.String "ok");
     ]
    @ coalesced_field coalesced
    @ [ ("result", result) ])

let progress_response ~id event =
  Json.Obj
    [
      ("v", Json.Int version);
      ("id", id);
      ("status", Json.String "progress");
      ("event", event);
    ]

let error_response ~id ?(coalesced = false) e =
  let fields =
    [
      ("code", Json.String (code_to_string e.code));
      ("message", Json.String e.message);
    ]
    @
    match e.retry_after_s with
    | Some s -> [ ("retry_after_s", Json.Float s) ]
    | None -> []
  in
  Json.Obj
    ([
       ("v", Json.Int version);
       ("id", id);
       ("status", Json.String "error");
     ]
    @ coalesced_field coalesced
    @ [ ("error", Json.Obj fields) ])

module Params = struct
  let typed name conv params key =
    match Json.member key params with
    | None -> Ok None
    | Some j -> (
        match conv j with
        | Some v -> Ok (Some v)
        | None -> Error (Printf.sprintf "%s must be %s" key name))

  let string params key =
    typed "a string" (function Json.String s -> Some s | _ -> None) params key

  let int params key =
    typed "an integer" (function Json.Int i -> Some i | _ -> None) params key

  let float params key =
    typed "a number"
      (function Json.Int i -> Some (float_of_int i) | Json.Float f -> Some f | _ -> None)
      params key

  let bool params key =
    typed "a boolean" (function Json.Bool b -> Some b | _ -> None) params key

  let int_list params key =
    typed "a list of integers"
      (function
        | Json.List items ->
            let ints =
              List.filter_map (function Json.Int i -> Some i | _ -> None) items
            in
            if List.length ints = List.length items then Some ints else None
        | _ -> None)
      params key

  let obj params key =
    typed "an object" (function Json.Obj _ as o -> Some o | _ -> None) params key

  let require r key =
    match r with
    | Ok (Some v) -> Ok v
    | Ok None -> Error (Printf.sprintf "missing required parameter %s" key)
    | Error m -> Error m
end
