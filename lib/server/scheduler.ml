module Json = Tiling_obs.Json
module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let m_rejected = Metrics.counter "server.admission.rejected"
let m_ok = Metrics.counter "server.requests.ok"
let m_error = Metrics.counter "server.requests.error"
let m_timeout = Metrics.counter "server.requests.timeout"
let m_latency = Metrics.histogram "server.request_ns"
let g_depth = Metrics.gauge "server.queue.depth"

(* Shared with the fleet router's Coalesce table: the registry interns by
   name, so both layers bump the same instruments and a process hosting
   both (tests, the fanout bench) still counts each coalesce event once —
   a request group merged at the router reaches a worker as one request. *)
let m_coalesce_hits = Metrics.counter "fleet.coalesce.hits"
let g_coalesce_waiters = Metrics.gauge "fleet.coalesce.waiters"

type reject = Overloaded of float | Draining

type deliver = coalesced:bool -> (Json.t, Protocol.error) result -> unit

type job = {
  work : cancelled:(unit -> bool) -> Json.t;
  deliver : deliver;
  mutable waiters : deliver list;  (* coalesced requests; guarded by [lock] *)
  key : string option;  (* coalescing fingerprint, when dedupable *)
  deadline : float option;
  enqueued_at : float;
  label : string;
  trace : Span.context option;
  enq_us : float; (* Span.now_us at enqueue, for the queue-wait span *)
}

type inflight_entry = { i_label : string; i_started : float; i_queued_s : float }

type t = {
  queue : job Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
  mutable closed : bool;
  mutable threads : Thread.t list;
  (* latency ring, guarded by [lock] *)
  ring : float array;
  mutable ring_len : int;
  mutable ring_pos : int;
  completed : int Atomic.t;
  rejected : int Atomic.t;
  timeouts : int Atomic.t;
  coalesced : int Atomic.t;  (* requests attached as waiters, ever *)
  mutable waiting : int;  (* waiters currently attached; guarded by [lock] *)
  (* keyed jobs that are queued or running, so an identical request can
     attach instead of consuming a slot; guarded by [lock] *)
  coalescing : (string, job) Hashtbl.t;
  (* jobs currently executing on a worker, guarded by [lock] *)
  running : (int, inflight_entry) Hashtbl.t;
  next_job : int Atomic.t;
}

let past deadline =
  match deadline with Some d -> Unix.gettimeofday () > d | None -> false

let record_latency t seconds =
  Mutex.protect t.lock (fun () ->
      t.ring.(t.ring_pos) <- seconds;
      t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
      t.ring_len <- min (t.ring_len + 1) (Array.length t.ring));
  Metrics.observe m_latency (int_of_float (seconds *. 1e9))

let run_job t job =
  let started = Unix.gettimeofday () in
  let queued_s = started -. job.enqueued_at in
  (* The queue phase ends here, whoever we are about to run (or fail): a
     trace always decomposes into queue wait + run time. *)
  (match job.trace with
  | Some ctx ->
      Span.record_at ctx "request.queue" ~ts_us:job.enq_us
        ~dur_us:(Span.now_us () -. job.enq_us)
  | None -> ());
  let key = Atomic.fetch_and_add t.next_job 1 in
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.running key
        { i_label = job.label; i_started = started; i_queued_s = queued_s });
  let finish result =
    (* Detach the coalescing entry and collect the waiters under the
       lock, so no request can attach once delivery has begun: a group
       either shares this result or starts a fresh evaluation. *)
    let waiters =
      Mutex.protect t.lock (fun () ->
          Hashtbl.remove t.running key;
          (match job.key with
          | Some k -> Hashtbl.remove t.coalescing k
          | None -> ());
          let ws = job.waiters in
          job.waiters <- [];
          t.waiting <- t.waiting - List.length ws;
          Metrics.set g_coalesce_waiters (float_of_int t.waiting);
          ws)
    in
    (match result with
    | Ok _ -> Metrics.incr m_ok
    | Error { Protocol.code = Protocol.Deadline_exceeded; _ } ->
        Atomic.incr t.timeouts;
        Metrics.incr m_timeout
    | Error _ -> Metrics.incr m_error);
    Atomic.incr t.completed;
    record_latency t (Unix.gettimeofday () -. job.enqueued_at);
    (* Every member of a coalesced group is flagged — the leader included —
       so the group's envelopes are byte-identical modulo request id. *)
    job.deliver ~coalesced:(waiters <> []) result;
    List.iter (fun d -> d ~coalesced:true result) (List.rev waiters)
  in
  if past job.deadline then
    finish
      (Error
         (Protocol.err Protocol.Deadline_exceeded
            "deadline expired while the request was queued"))
  else
    let execute () =
      match job.trace with
      | Some ctx ->
          Span.with_ambient (Some ctx) (fun () ->
              Span.with_ "request.run" (fun () ->
                  job.work ~cancelled:(fun () -> past job.deadline)))
      | None -> job.work ~cancelled:(fun () -> past job.deadline)
    in
    match execute () with
    | result -> finish (Ok result)
    | exception Tiling_search.Eval.Cancelled ->
        finish
          (Error (Protocol.err Protocol.Deadline_exceeded "deadline exceeded"))
    | exception e ->
        finish
          (Error
             (Protocol.err Protocol.Internal
                (Printf.sprintf "request handler failed: %s" (Printexc.to_string e))))

let worker t () =
  let rec loop () =
    let job =
      Mutex.protect t.lock (fun () ->
          let rec await () =
            if not (Queue.is_empty t.queue) then begin
              let job = Queue.pop t.queue in
              Metrics.set g_depth (float_of_int (Queue.length t.queue));
              Some job
            end
            else if t.closed then None
            else begin
              Condition.wait t.nonempty t.lock;
              await ()
            end
          in
          await ())
    in
    match job with
    | Some job ->
        run_job t job;
        loop ()
    | None -> ()
  in
  loop ()

let create ?(workers = 2) ?(capacity = 64) () =
  let workers = max 1 workers and capacity = max 1 capacity in
  let t =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      capacity;
      closed = false;
      threads = [];
      ring = Array.make 1024 0.;
      ring_len = 0;
      ring_pos = 0;
      completed = Atomic.make 0;
      rejected = Atomic.make 0;
      timeouts = Atomic.make 0;
      coalesced = Atomic.make 0;
      waiting = 0;
      coalescing = Hashtbl.create 16;
      running = Hashtbl.create 8;
      next_job = Atomic.make 0;
    }
  in
  t.threads <- List.init workers (fun _ -> Thread.create (worker t) ());
  t

(* Backoff hint for a rejected client: the queue's expected service time
   from recent latencies (median x queued-ahead / workers), clamped to a
   sane range.  Uses the live queue depth, not the configured capacity, so
   the hint shrinks as the backlog drains.  With no history yet, one
   second.  Runs lock-free: [submit] calls it with [t.lock] already held,
   and a racy external read only skews an advisory hint. *)
let retry_after t =
  let p50, _, samples =
    (* inlined below to avoid forward reference *)
    let sorted = Array.sub t.ring 0 t.ring_len in
    Array.sort compare sorted;
    if t.ring_len = 0 then (0., 0., 0)
    else
      ( sorted.(t.ring_len / 2),
        sorted.(min (t.ring_len - 1) (t.ring_len * 95 / 100)),
        t.ring_len )
  in
  if samples = 0 then 1.0
  else
    let nworkers = max 1 (List.length t.threads) in
    let queued_ahead = Queue.length t.queue in
    Float.min 60.
      (Float.max 0.1
         (p50 *. float_of_int (queued_ahead + 1) /. float_of_int nworkers))

let submit t ?deadline_s ?(label = "?") ?trace ?key ~work ~deliver () =
  Mutex.protect t.lock (fun () ->
      if t.closed then Error Draining
      else
        match Option.bind key (Hashtbl.find_opt t.coalescing) with
        | Some leader ->
            (* Identical request already queued or running: share its
               result instead of evaluating again or taking a slot. *)
            leader.waiters <- deliver :: leader.waiters;
            Atomic.incr t.coalesced;
            Metrics.incr m_coalesce_hits;
            t.waiting <- t.waiting + 1;
            Metrics.set g_coalesce_waiters (float_of_int t.waiting);
            Ok ()
        | None ->
            if Queue.length t.queue >= t.capacity then begin
              Atomic.incr t.rejected;
              Metrics.incr m_rejected;
              Error (Overloaded (retry_after t))
            end
            else begin
              let job =
                {
                  work;
                  deliver;
                  waiters = [];
                  key;
                  deadline = deadline_s;
                  enqueued_at = Unix.gettimeofday ();
                  label;
                  trace;
                  enq_us = Span.now_us ();
                }
              in
              Queue.push job t.queue;
              Option.iter (fun k -> Hashtbl.replace t.coalescing k job) key;
              Metrics.set g_depth (float_of_int (Queue.length t.queue));
              Condition.signal t.nonempty;
              Ok ()
            end)

let depth t = Mutex.protect t.lock (fun () -> Queue.length t.queue)

let inflight t =
  let now = Unix.gettimeofday () in
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun _ e acc -> (e.i_label, e.i_queued_s, now -. e.i_started) :: acc)
        t.running [])
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

let latency_histogram () = Metrics.histogram_snapshot m_latency
let capacity t = t.capacity
let workers t = List.length t.threads
let completed t = Atomic.get t.completed
let rejected t = Atomic.get t.rejected
let timeouts t = Atomic.get t.timeouts
let coalesced t = Atomic.get t.coalesced
let waiting t = Mutex.protect t.lock (fun () -> t.waiting)

let latency_ms t =
  Mutex.protect t.lock (fun () ->
      if t.ring_len = 0 then (0., 0., 0)
      else begin
        let sorted = Array.sub t.ring 0 t.ring_len in
        Array.sort compare sorted;
        let pick q = sorted.(min (t.ring_len - 1) (t.ring_len * q / 100)) in
        (pick 50 *. 1e3, pick 95 *. 1e3, t.ring_len)
      end)

let drain t =
  let threads =
    Mutex.protect t.lock (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          Condition.broadcast t.nonempty;
          let ts = t.threads in
          t.threads <- [];
          ts
        end)
  in
  List.iter Thread.join threads
