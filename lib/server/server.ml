module Json = Tiling_obs.Json
module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span
module Events = Tiling_obs.Events
module Netio = Tiling_util.Netio
module Eval = Tiling_search.Eval
module Memo = Tiling_search.Memo

let m_accepted = Metrics.counter "server.connections.accepted"
let m_bad_lines = Metrics.counter "server.protocol.bad_lines"
let m_scrapes = Metrics.counter "server.metrics.scrapes"
let m_progress = Metrics.counter "server.progress.sent"
let g_connections = Metrics.gauge "server.connections"

let log = Logs.Src.create "tiling.server" ~doc:"tiling daemon"

module Log = (val Logs.src_log log)

type config = {
  addr : Netio.addr;
  workers : int;
  capacity : int;
  store_path : string option;
  default_deadline_s : float option;
  domains : int;
  max_line_bytes : int;
  metrics_addr : Netio.addr option;
}

let default_config =
  {
    addr = Netio.Unix_sock "tiler.sock";
    workers = 2;
    capacity = 64;
    store_path = None;
    default_deadline_s = None;
    domains = 1;
    max_line_bytes = 1 lsl 20;
    metrics_addr = None;
  }

(* JSON nesting in requests never legitimately exceeds a handful of
   levels; a tight cap shuts the deep-nesting parser-recursion vector. *)
let max_request_depth = 64

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;  (* one response line at a time *)
  plock : Mutex.t;  (* guards [pending] *)
  idle : Condition.t;
  mutable pending : int;  (* scheduler jobs that will still write to [fd] *)
}

type state = {
  cfg : config;
  sched : Scheduler.t;
  store : Store.t option;
  started_at : float;
  stop : bool Atomic.t;
  clock : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  mutable conn_threads : Thread.t list;
}

(* ------------------------------------------------------------------ *)
(* Connection bookkeeping                                               *)

let reply conn j =
  Mutex.protect conn.wlock (fun () ->
      match Netio.write_line conn.fd (Json.to_string j) with
      | Ok () -> ()
      | Error m -> Log.debug (fun f -> f "dropping reply: %s" m))

let conn_begin c = Mutex.protect c.plock (fun () -> c.pending <- c.pending + 1)

let conn_end c =
  Mutex.protect c.plock (fun () ->
      c.pending <- c.pending - 1;
      if c.pending = 0 then Condition.broadcast c.idle)

let conn_wait_idle c =
  Mutex.protect c.plock (fun () ->
      while c.pending > 0 do
        Condition.wait c.idle c.plock
      done)

(* ------------------------------------------------------------------ *)
(* Handlers.  Each handler validates [params] on the connection thread
   and returns the actual work as a closure — parameter mistakes are
   answered immediately and never consume a queue slot — plus, for the
   searching methods, the {!Store.fingerprint} that keys in-flight
   coalescing: the fingerprint pins every input that changes the answer
   (kernel, n, cache geometry, backend, seed), so two requests with the
   same key can share one evaluation and one response body. *)

let ( let* ) = Result.bind

module P = Protocol.Params

let kernel_setup params =
  let* kernel = P.require (P.string params "kernel") "kernel" in
  let* n = P.int params "n" in
  let* size = P.int params "cache_size" in
  let* line = P.int params "line" in
  let* assoc = P.int params "assoc" in
  let size = Option.value size ~default:8192
  and line = Option.value line ~default:32
  and assoc = Option.value assoc ~default:1 in
  match Tiling_kernels.Kernels.find kernel with
  | exception Not_found -> Error (Printf.sprintf "unknown kernel %S" kernel)
  | spec -> (
      let n = match n with Some n -> n | None -> List.hd spec.sizes in
      match Tiling_cache.Config.make ~size ~line ~assoc () with
      | exception Invalid_argument m -> Error m
      | cache ->
          if n < 1 then Error "n must be >= 1"
          else Ok (spec, n, spec.build n, cache))

let search_opts params =
  let* seed = P.int params "seed" in
  let seed = Option.value seed ~default:20020815 in
  let* backend = P.string params "backend" in
  let* backend =
    match backend with
    | None -> Ok Tiling_search.Backend.default
    | Some s -> Tiling_search.Backend.of_string s
  in
  Ok (seed, backend)

(* The daemon's two hooks into a search, delivered through [on_eval]:
   the request deadline becomes the evaluation service's cancellation
   probe, and the persistent store becomes its memo's backing tier. *)
let attach st ~fingerprint ~cancelled eval =
  Eval.set_cancel eval cancelled;
  Option.iter
    (fun store ->
      Memo.set_tier (Eval.memo eval) (Some (Store.tier store ~fingerprint)))
    st.store

(* Fold appends from other daemons sharing this store file into our
   tables before a search starts, so a fleet worker answers a repeat
   search warm even when a sibling process computed it. *)
let refresh_store st = Option.iter Store.refresh st.store

(* Per-phase memo/store effectiveness, recorded into the request's trace
   so `tiler request --trace` can print hit rates next to the flame. *)
let eval_stats_instant ~phase eval =
  if Span.tracing () then
    Span.instant "request.eval.stats"
      ~attrs:
        [
          ("phase", Json.String phase);
          ("memo_hits", Json.Int (Eval.hits eval));
          ("fresh", Json.Int (Eval.fresh eval));
          ("distinct", Json.Int (Eval.distinct eval));
        ]

let sync_store st = Option.iter Store.sync st.store

let setup_json (spec : Tiling_kernels.Kernels.spec) n
    (cache : Tiling_cache.Config.t) =
  [
    ("kernel", Json.String spec.name);
    ("n", Json.Int n);
    ( "cache",
      Json.Obj
        [
          ("size", Json.Int cache.Tiling_cache.Config.size);
          ("line", Json.Int cache.Tiling_cache.Config.line);
          ("assoc", Json.Int cache.Tiling_cache.Config.assoc);
        ] );
  ]

let handle_analyze _st params =
  let* spec, n, nest, cache = kernel_setup params in
  let* tiles = P.int_list params "tiles" in
  let* exact = P.bool params "exact" in
  let* seed = P.int params "seed" in
  let exact = Option.value exact ~default:false
  and seed = Option.value seed ~default:20020815 in
  Ok
    ( (fun ~cancelled:_ ->
        let nest =
          match tiles with
          | None -> nest
          | Some tiles -> Tiling_ir.Transform.tile nest (Array.of_list tiles)
        in
        let engine = Tiling_cme.Engine.create nest cache in
        let report =
          if exact then Tiling_cme.Estimator.exact engine
          else Tiling_cme.Estimator.sample ~seed engine
        in
        Json.Obj
          (setup_json spec n cache
          @ [ ("report", Tiling_cme.Estimator.to_json report) ])),
      None )

let handle_tile st params =
  let* spec, n, nest, cache = kernel_setup params in
  let* seed, backend = search_opts params in
  let fingerprint =
    Store.fingerprint ~method_:"tile" ~kernel:spec.name ~n ~cache
      ~backend:backend.Tiling_search.Backend.name ~seed
  in
  Ok
    ( (fun ~cancelled ->
        refresh_store st;
        let evals = ref [] in
        let opts =
          {
            Tiling_core.Tiler.default_opts with
            seed;
            domains = st.cfg.domains;
            backend;
            on_eval =
              (fun eval ->
                evals := eval :: !evals;
                attach st ~fingerprint ~cancelled eval);
          }
        in
        let o = Tiling_core.Tiler.optimize ~opts nest cache in
        List.iter (eval_stats_instant ~phase:"tile") !evals;
        sync_store st;
        Json.Obj
          (setup_json spec n cache @ [ ("outcome", Tiling_core.Tiler.to_json o) ])),
      Some fingerprint )

let handle_pad_tile st params =
  let* spec, n, nest, cache = kernel_setup params in
  let* seed, backend = search_opts params in
  (* Two search phases, two fingerprints: candidate values in the
     tile phase depend on the padding chosen, but that padding is
     itself a deterministic function of the fingerprinted inputs. *)
  let fp phase =
    Store.fingerprint
      ~method_:("pad-tile." ^ phase)
      ~kernel:spec.name ~n ~cache
      ~backend:backend.Tiling_search.Backend.name ~seed
  in
  Ok
    ( (fun ~cancelled ->
        refresh_store st;
        let pad_evals = ref [] and tile_evals = ref [] in
        let popts =
          {
            Tiling_core.Padder.default_opts with
            seed;
            domains = st.cfg.domains;
            backend;
            on_eval =
              (fun eval ->
                pad_evals := eval :: !pad_evals;
                attach st ~fingerprint:(fp "pad") ~cancelled eval);
          }
        in
        let topts =
          {
            Tiling_core.Tiler.default_opts with
            seed;
            domains = st.cfg.domains;
            backend;
            on_eval =
              (fun eval ->
                tile_evals := eval :: !tile_evals;
                attach st ~fingerprint:(fp "tile") ~cancelled eval);
          }
        in
        let o = Tiling_core.Optimizer.pad_then_tile ~topts ~popts nest cache in
        List.iter (eval_stats_instant ~phase:"pad") !pad_evals;
        List.iter (eval_stats_instant ~phase:"tile") !tile_evals;
        sync_store st;
        Json.Obj
          (setup_json spec n cache
          @ [ ("outcome", Tiling_core.Optimizer.combined_to_json o) ])),
      (* The whole combined request is the coalescible unit; its key must
         differ from a plain "tile" of the same setup, hence the method
         prefix carried by the phase fingerprints. *)
      Some (fp "pad") )

let handle_fuzz_case _st params =
  let* line = P.require (P.string params "case") "case" in
  let* case = Tiling_fuzz.Case.of_string line in
  Ok
    ( (fun ~cancelled:_ ->
      let r = Tiling_fuzz.Oracle.check_case case in
      let triple (a, m, c) = Json.List [ Json.Int a; Json.Int m; Json.Int c ] in
      let delta (d : Tiling_fuzz.Oracle.ref_delta) =
        Json.Obj
          [
            ("ref", Json.Int d.ref_id);
            ("cme", triple d.cme);
            ("sim", triple d.sim);
          ]
      in
      let verdict, deltas =
        match r.verdict with
        | Tiling_fuzz.Oracle.Agree -> ("agree", [])
        | Tiling_fuzz.Oracle.Mismatch ds -> ("mismatch", ds)
        | Tiling_fuzz.Oracle.Inconclusive ds -> ("inconclusive", ds)
      in
      Json.Obj
        [
          ("case", Json.String (Tiling_fuzz.Case.to_string case));
          ("verdict", Json.String verdict);
          ("deltas", Json.List (List.map delta deltas));
          ("fallbacks", Json.Int r.fallbacks);
          ("points", Json.Int r.points);
          ("accesses", Json.Int r.accesses);
        ]),
      None )

let stats_json ?(events = 0) st =
  let p50, p95, samples = Scheduler.latency_ms st.sched in
  let inflight =
    List.map
      (fun (label, queued_s, running_s) ->
        Json.Obj
          [
            ("method", Json.String label);
            ("queued_s", Json.Float queued_s);
            ("running_s", Json.Float running_s);
          ])
      (Scheduler.inflight st.sched)
  in
  let store =
    match st.store with
    | None -> Json.Null
    | Some s ->
        Json.Obj
          [
            ("path", Json.String (Store.path s));
            ("entries", Json.Int (Store.entries s));
            ("records", Json.Int (Store.records s));
            ("fingerprints", Json.Int (Store.fingerprints s));
            ("hits", Json.Int (Store.hits s));
            ("misses", Json.Int (Store.misses s));
            ("appends", Json.Int (Store.appends s));
            ("compactions", Json.Int (Store.compactions s));
            ("skipped_on_load", Json.Int (Store.skipped_on_load s));
          ]
  in
  Json.Obj
    ([
      ("pid", Json.Int (Unix.getpid ()));
      ("version", Json.Int Protocol.version);
      ("uptime_s", Json.Float (Unix.gettimeofday () -. st.started_at));
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Scheduler.depth st.sched));
            ("capacity", Json.Int (Scheduler.capacity st.sched));
            ("workers", Json.Int (Scheduler.workers st.sched));
          ] );
      ( "requests",
        Json.Obj
          [
            ("completed", Json.Int (Scheduler.completed st.sched));
            ("rejected", Json.Int (Scheduler.rejected st.sched));
            ("timeouts", Json.Int (Scheduler.timeouts st.sched));
            ("coalesced", Json.Int (Scheduler.coalesced st.sched));
            ("waiting", Json.Int (Scheduler.waiting st.sched));
          ] );
      ( "latency_ms",
        Json.Obj
          [
            ("p50", Json.Float p50);
            ("p95", Json.Float p95);
            ("samples", Json.Int samples);
          ] );
      ("latency_ns_histogram", Scheduler.latency_histogram ());
      ("inflight", Json.List inflight);
      ("connections", Json.Int (Mutex.protect st.clock (fun () -> Hashtbl.length st.conns)));
      ("store", store);
    ]
    @
    if events <= 0 then []
    else
      [
        ( "events",
          Json.List (List.map Events.to_json (Events.recent ~limit:events ())) );
      ])

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)

let handler_for = function
  | "analyze" -> Some handle_analyze
  | "tile" -> Some handle_tile
  | "pad-tile" -> Some handle_pad_tile
  | "fuzz-case" -> Some handle_fuzz_case
  | _ -> None

let dispatch st conn (req : Protocol.request) =
  match req.meth with
  | "stats" -> (
      match P.int req.params "events" with
      | Error m ->
          reply conn
            (Protocol.error_response ~id:req.id (Protocol.err Protocol.Bad_request m))
      | Ok events ->
          let events = Option.value events ~default:0 in
          reply conn (Protocol.ok_response ~id:req.id (stats_json ~events st)))
  | "metrics" -> (
      Metrics.incr m_scrapes;
      match P.string req.params "format" with
      | Error m ->
          reply conn
            (Protocol.error_response ~id:req.id (Protocol.err Protocol.Bad_request m))
      | Ok (Some "json") ->
          reply conn
            (Protocol.ok_response ~id:req.id
               (Json.Obj
                  [
                    ("format", Json.String "json");
                    ("snapshot", Metrics.snapshot ());
                  ]))
      | Ok (None | Some "openmetrics") ->
          reply conn
            (Protocol.ok_response ~id:req.id
               (Json.Obj
                  [
                    ("format", Json.String "openmetrics");
                    ("body", Json.String (Tiling_obs.Openmetrics.render ()));
                  ]))
      | Ok (Some other) ->
          reply conn
            (Protocol.error_response ~id:req.id
               (Protocol.err Protocol.Bad_request
                  (Printf.sprintf
                     "unknown format %S (expected openmetrics or json)" other))))
  | "shutdown" ->
      reply conn
        (Protocol.ok_response ~id:req.id
           (Json.Obj [ ("stopping", Json.Bool true) ]));
      Log.info (fun f -> f "shutdown requested over the wire");
      Atomic.set st.stop true
  | meth -> (
      match handler_for meth with
      | None ->
          reply conn
            (Protocol.error_response ~id:req.id
               (Protocol.err Protocol.Unknown_method
                  (Printf.sprintf "unknown method %S" meth)))
      | Some handler -> (
          let rel_deadline =
            match P.float req.params "deadline_s" with
            | Error _ as e -> e
            | Ok rel -> (
                match (rel, st.cfg.default_deadline_s) with
                | None, None -> Ok None
                | (Some _ as r), _ | None, (Some _ as r) -> Ok r)
          in
          match
            let* work, key = handler st req.params in
            let* rel = rel_deadline in
            let* trace = P.bool req.params "trace" in
            let* progress = P.bool req.params "progress" in
            Ok
              ( work,
                key,
                rel,
                Option.value trace ~default:false,
                Option.value progress ~default:false )
          with
          | Error m ->
              reply conn
                (Protocol.error_response ~id:req.id
                   (Protocol.err Protocol.Bad_request m))
          | Ok (work, key, rel_deadline, trace, progress) -> (
              let deadline_s =
                Option.map (fun d -> Unix.gettimeofday () +. d) rel_deadline
              in
              (* Coalescing is off for traced / progress-streaming
                 requests (a waiter's envelope would carry someone else's
                 trace, and progress frames are per-subscription), and
                 requests only share a slot when their deadline budgets
                 match — a tight-deadline request must not inherit a
                 result computed under a laxer one being cancelled late,
                 nor vice versa. *)
              let key =
                if trace || progress then None
                else
                  Option.map
                    (fun k ->
                      match rel_deadline with
                      | None -> k
                      | Some d -> Printf.sprintf "%s|dl%g" k d)
                    key
              in
              let id = req.id in
              (* One root context serves both opt-ins: spans accumulate in
                 its buffer for the ["trace"] field, and its trace id is the
                 routing key that picks this request's events out of the
                 process-wide journal. *)
              let tctx =
                if trace || progress then Some (Span.start_trace ()) else None
              in
              let received_us = Span.now_us () in
              conn_begin conn;
              let subscription =
                match (tctx, progress) with
                | Some ctx, true ->
                    let tid = ctx.Span.trace_id in
                    Some
                      (Events.subscribe (fun ev ->
                           if ev.Events.trace_id = Some tid then begin
                             Metrics.incr m_progress;
                             reply conn
                               (Protocol.progress_response ~id
                                  (Events.to_json ev))
                           end))
                | _ -> None
              in
              let close_trace result =
                match tctx with
                | None -> result
                | Some ctx -> (
                    match result with
                    | Ok (Json.Obj fields) when trace ->
                        let total_us = Span.now_us () -. received_us in
                        let tree = Span.finish_trace ctx in
                        let tree =
                          match tree with
                          | Json.Obj tfields ->
                              Json.Obj
                                (tfields @ [ ("total_us", Json.Float total_us) ])
                          | other -> other
                        in
                        Ok (Json.Obj (fields @ [ ("trace", tree) ]))
                    | result ->
                        Span.discard_trace ctx;
                        result)
              in
              let deliver ~coalesced result =
                Option.iter Events.unsubscribe subscription;
                (match close_trace result with
                | Ok r -> reply conn (Protocol.ok_response ~id ~coalesced r)
                | Error e ->
                    reply conn (Protocol.error_response ~id ~coalesced e));
                conn_end conn
              in
              let abandon () =
                Option.iter Events.unsubscribe subscription;
                Option.iter Span.discard_trace tctx;
                conn_end conn
              in
              match
                Scheduler.submit st.sched ?deadline_s ~label:req.meth
                  ?trace:tctx ?key ~work ~deliver ()
              with
              | Ok () -> ()
              | Error (Scheduler.Overloaded retry_after_s) ->
                  abandon ();
                  reply conn
                    (Protocol.error_response ~id
                       (Protocol.err ~retry_after_s Protocol.Overloaded
                          "admission queue is full"))
              | Error Scheduler.Draining ->
                  abandon ();
                  reply conn
                    (Protocol.error_response ~id
                       (Protocol.err Protocol.Draining
                          "daemon is draining; connect elsewhere")))))

(* ------------------------------------------------------------------ *)
(* Per-connection read loop                                             *)

let salvage_id j = Option.value (Json.member "id" j) ~default:Json.Null

let serve_conn st conn =
  let r = Netio.reader conn.fd in
  let rec loop () =
    match Netio.read_line ~max_bytes:st.cfg.max_line_bytes r with
    | `Eof -> ()
    | `Too_long ->
        (* The stream cannot be re-synchronised: answer and hang up. *)
        Metrics.incr m_bad_lines;
        reply conn
          (Protocol.error_response ~id:Json.Null
             (Protocol.err Protocol.Payload_too_large
                (Printf.sprintf "request line exceeds %d bytes"
                   st.cfg.max_line_bytes)))
    | `Line line ->
        if String.trim line = "" then loop ()
        else begin
          (match
             Json.of_string ~max_depth:max_request_depth
               ~max_size:st.cfg.max_line_bytes line
           with
          | Error m ->
              Metrics.incr m_bad_lines;
              reply conn
                (Protocol.error_response ~id:Json.Null
                   (Protocol.err Protocol.Bad_request ("invalid JSON: " ^ m)))
          | Ok j -> (
              match Protocol.request_of_json j with
              | Error e ->
                  Metrics.incr m_bad_lines;
                  reply conn (Protocol.error_response ~id:(salvage_id j) e)
              | Ok req -> dispatch st conn req));
          loop ()
        end
  in
  (try loop ()
   with e ->
     Log.err (fun f -> f "connection loop died: %s" (Printexc.to_string e)));
  (* Jobs already admitted will still write here; wait them out so the
     descriptor is never closed (and possibly reused) under them. *)
  conn_wait_idle conn;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)

let install_signals stop =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  List.iter
    (fun s ->
      try
        Sys.set_signal s
          (Sys.Signal_handle (fun _ -> Atomic.set stop true))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ]

let run cfg =
  match Netio.listen cfg.addr with
  | Error m -> Error (Printf.sprintf "cannot listen on %s: %s" (Netio.addr_to_string cfg.addr) m)
  | Ok lfd -> (
      let store =
        match cfg.store_path with
        | None -> Ok None
        | Some path -> Result.map Option.some (Store.open_ ~path ())
      in
      match store with
      | Error m ->
          (try Unix.close lfd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "cannot open store: %s" m)
      | Ok store -> (
          let http =
            match cfg.metrics_addr with
            | None -> Ok None
            | Some addr ->
                Result.map Option.some
                  (Http.start ~addr ~body:(fun () ->
                       Metrics.incr m_scrapes;
                       Tiling_obs.Openmetrics.render ()))
          in
          match http with
          | Error m ->
              (try Unix.close lfd with Unix.Unix_error _ -> ());
              Option.iter Store.close store;
              Error (Printf.sprintf "cannot start metrics listener: %s" m)
          | Ok http ->
          let stop = Atomic.make false in
          install_signals stop;
          let st =
            {
              cfg;
              sched = Scheduler.create ~workers:cfg.workers ~capacity:cfg.capacity ();
              store;
              started_at = Unix.gettimeofday ();
              stop;
              clock = Mutex.create ();
              conns = Hashtbl.create 16;
              conn_threads = [];
            }
          in
          Log.app (fun f ->
              f "serving on %s (pid %d, %d workers, %d slots%s)"
                (Netio.addr_to_string cfg.addr)
                (Unix.getpid ()) cfg.workers cfg.capacity
                (match cfg.store_path with
                | Some p -> Printf.sprintf ", store %s" p
                | None -> ", no store"));
          let next = ref 0 in
          while not (Atomic.get st.stop) do
            match Unix.select [ lfd ] [] [] 0.2 with
            | [], _, _ -> ()
            | _ -> (
                match Unix.accept ~cloexec:true lfd with
                | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.ECONNABORTED), _, _) -> ()
                | fd, _ ->
                    Metrics.incr m_accepted;
                    let conn =
                      {
                        fd;
                        wlock = Mutex.create ();
                        plock = Mutex.create ();
                        idle = Condition.create ();
                        pending = 0;
                      }
                    in
                    let key = incr next; !next in
                    Mutex.protect st.clock (fun () ->
                        Hashtbl.replace st.conns key conn;
                        Metrics.set g_connections
                          (float_of_int (Hashtbl.length st.conns)));
                    let t =
                      Thread.create
                        (fun () ->
                          serve_conn st conn;
                          Mutex.protect st.clock (fun () ->
                              Hashtbl.remove st.conns key;
                              Metrics.set g_connections
                                (float_of_int (Hashtbl.length st.conns))))
                        ()
                    in
                    st.conn_threads <- t :: st.conn_threads)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          done;
          (* Graceful drain: no new connections, no new admissions, let
             everything already admitted finish, then unblock readers. *)
          Log.app (fun f -> f "draining");
          (try Unix.close lfd with Unix.Unix_error _ -> ());
          Option.iter Http.stop http;
          Scheduler.drain st.sched;
          Mutex.protect st.clock (fun () ->
              Hashtbl.iter
                (fun _ c ->
                  try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
                  with Unix.Unix_error _ -> ())
                st.conns);
          List.iter Thread.join st.conn_threads;
          Option.iter
            (fun s ->
              Store.sync s;
              Store.close s)
            store;
          (match cfg.addr with
          | Netio.Unix_sock p -> ( try Sys.remove p with Sys_error _ -> ())
          | Netio.Tcp _ -> ());
          Log.app (fun f -> f "stopped");
          Ok ()))
