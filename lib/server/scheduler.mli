(** The daemon's request scheduler: a bounded admission queue in front of
    a fixed crew of worker threads.

    Admission control is the contract that keeps the daemon stable under
    overload: a request either gets a queue slot immediately or is
    rejected immediately ([`Overloaded`] with a [retry_after_s] hint
    derived from recent service times) — the queue never grows without
    bound and a saturated daemon keeps answering in constant time.

    Workers are OS threads, not domains: heavy requests parallelise
    {e internally} over the process-wide {!Tiling_util.Pool} domains (the
    PR-4 evaluation path), so worker threads exist to overlap requests
    and keep admission/IO responsive, and the worker count stays small.

    Deadlines are cooperative.  Each job's [cancelled] probe flips once
    the deadline passes; handlers poll it (the search layer polls it
    before every fresh candidate evaluation, see
    {!Tiling_search.Eval.set_cancel}) and abandon work by raising
    {!Tiling_search.Eval.Cancelled}, which the scheduler maps to a
    [Deadline_exceeded] wire error.  A job whose deadline passed while it
    was still queued is failed without running at all.

    In-flight coalescing (docs/SERVER.md "Fleet mode"): a request
    submitted with a [key] — the {!Store.fingerprint} of a searching
    request — attaches as a {e waiter} to an already queued or running
    job with the same key instead of consuming a queue slot.  The group
    evaluates once and every member's [deliver] receives the same result
    with [coalesced = true], so the daemon answers N identical concurrent
    searches with one evaluation.

    Metrics ([server.*] and [fleet.*]): [server.queue.depth] gauge,
    [server.admission.rejected], [server.requests.ok] /
    [.error] / [.timeout] counters, the [server.request_ns]
    histogram of end-to-end (enqueue-to-finish) latency, plus
    [fleet.coalesce.hits] (requests attached as waiters) and the
    [fleet.coalesce.waiters] gauge (waiters attached right now). *)

type t

type reject =
  | Overloaded of float  (** queue full; suggested retry backoff, seconds *)
  | Draining             (** {!drain} has begun; no new work accepted *)

type deliver = coalesced:bool -> (Tiling_obs.Json.t, Protocol.error) result -> unit
(** Result sink for one request.  [coalesced] is true for {e every}
    member of a request group that shared one evaluation — the leader
    included — so the group's response envelopes stay byte-identical
    modulo request id.  A request that ran alone gets [coalesced:false]. *)

val create : ?workers:int -> ?capacity:int -> unit -> t
(** [workers] executor threads (default 2, min 1) over a queue of
    [capacity] slots (default 64, min 1). *)

val submit :
  t ->
  ?deadline_s:float ->
  ?label:string ->
  ?trace:Tiling_obs.Span.context ->
  ?key:string ->
  work:(cancelled:(unit -> bool) -> Tiling_obs.Json.t) ->
  deliver:deliver ->
  unit ->
  (unit, reject) result
(** Enqueue [work].  [deadline_s] is absolute (Unix time).  [deliver] is
    called exactly once, from a worker thread, with the work's result —
    or with [Deadline_exceeded] (queued past its deadline, or the work
    raised {!Tiling_search.Eval.Cancelled}) or [Internal] (any other
    exception; the daemon survives).  [deliver] must not raise.

    [key], when given, makes the request coalescible: if a job with the
    same key is queued or running, this request's [deliver] is attached
    to it as a waiter and [Ok ()] is returned without consuming a queue
    slot — no second evaluation happens, and the shared result (success
    {e or} failure) reaches every waiter with [coalesced:true].  Callers
    must fold anything that changes the answer or the response shape
    (deadline, trace/progress opt-ins) into the key — or pass no key at
    all — so only requests that can share an envelope verbatim coalesce.

    [label] (typically the wire method) names the job in {!inflight}.
    [trace], when given, is the request's root trace context: the worker
    records the queue wait as a ["request.queue"] span, then runs [work]
    under the context with a ["request.run"] span around it, so every span
    and {!Tiling_obs.Events} emission inside the handler joins the
    request's trace. *)

val depth : t -> int
val capacity : t -> int

val workers : t -> int
(** Live worker threads: the configured count until {!drain}, 0 after
    (the drain joins the crew and clears the roster). *)

val retry_after : t -> float
(** The backoff hint attached to [Overloaded] rejects: median recent
    service time times the requests queued ahead, divided by the worker
    count, clamped to [0.1, 60] seconds (1s before any completion).  The
    hint tracks the live queue depth, so it shrinks as the backlog
    drains. *)

val completed : t -> int
(** Jobs delivered (ok, failed and timed out alike). *)

val rejected : t -> int
(** Admission rejects since creation. *)

val timeouts : t -> int

val coalesced : t -> int
(** Requests ever attached as waiters to another job ([fleet.coalesce.hits]
    seen by this scheduler).  A group of N identical requests counts
    N-1 here and 1 in {!completed}. *)

val waiting : t -> int
(** Waiters attached to queued or running jobs right now. *)

val latency_ms : t -> float * float * int
(** [(p50, p95, samples)] over a ring of the most recent request
    latencies (milliseconds, enqueue to delivery); [(0., 0., 0)] before
    the first completion. *)

val inflight : t -> (string * float * float) list
(** The jobs executing right now as [(label, queued_s, running_s)],
    longest-running first. *)

val latency_histogram : unit -> Tiling_obs.Json.t
(** The full [server.request_ns] histogram in {!Tiling_obs.Metrics}
    snapshot shape ([{"count", "sum", "buckets": [{"le", "count"}...]}]) —
    percentiles beyond the ring's p50/p95 are computable from it without
    an OpenMetrics scrape.  Stable all-zero shape when the metrics
    registry is disabled or nothing completed yet. *)

val drain : t -> unit
(** Stop admitting ({!submit} returns [Draining]), let the workers
    finish everything already queued, and join them.  The thread roster
    is cleared under the lock before joining, so {!workers} and
    {!retry_after} never report a crew that is shutting down.
    Idempotent. *)
