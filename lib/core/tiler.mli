(** Near-optimal loop tiling: the paper's headline algorithm (section 3).

    The tile-size vector [T_1 .. T_k], [1 <= T_i <= U_i], is searched with
    the genetic algorithm of section 3.3; each candidate's objective is the
    number of replacement misses in the common iteration-point sample, as
    predicted by the CME solver on the tiled nest.  Compulsory misses are
    invariant under tiling, so minimising replacement misses minimises all
    misses the transformation can affect. *)

type opts = {
  ga : Tiling_ga.Engine.params;
  seed : int;             (** drives sampling and all GA randomness *)
  sample_points : int option;
      (** sample size; [None] = the paper's 164-point rule *)
  restarts : int;
      (** independent GA runs (best kept); 1 reproduces the paper's single
          run, the default 3 makes results robust to unlucky initial
          populations *)
  domains : int;
      (** OCaml domains used to score each GA generation in parallel
          (candidate evaluations are independent); 1 = sequential.  The
          search result is identical for any value. *)
  backend : Tiling_search.Backend.t;
      (** cost backend scoring each candidate — CME sampling by default;
          see {!Tiling_search.Backend} for the alternatives (exact CME
          enumeration, trace-driven cache simulation) *)
  on_eval : Tiling_search.Eval.t -> unit;
      (** called with the freshly created evaluation service before the
          search starts — the daemon's hook for attaching a persistent
          memo tier ({!Tiling_search.Memo.set_tier}) and a deadline probe
          ({!Tiling_search.Eval.set_cancel}); default [ignore] *)
}

val default_opts : opts

type outcome = {
  tiles : int array;              (** best tile vector found *)
  before : Tiling_cme.Estimator.report;  (** original nest on the sample *)
  after : Tiling_cme.Estimator.report;   (** tiled nest on the same sample *)
  ga : Tiling_ga.Engine.result;   (** the best of the restarted runs *)
  distinct_candidates : int;      (** distinct tile vectors evaluated *)
}

val objective_on :
  Sample.t -> Tiling_ir.Nest.t -> Tiling_cache.Config.t -> int array -> float
(** [objective_on sample nest cache tiles] is the replacement-miss count of
    [Transform.tile nest tiles] over the embedded sample — the GA's raw
    objective, exposed for baselines so every search method optimises the
    identical function. *)

val optimize :
  ?opts:opts -> Tiling_ir.Nest.t -> Tiling_cache.Config.t -> outcome
(** [optimize nest cache] runs the full pipeline on an untiled nest:
    sample, GA search, and before/after reports on the common sample. *)

val pp_outcome : outcome Fmt.t

val to_json : outcome -> Tiling_obs.Json.t
(** Machine-readable outcome (tiles, both reports, GA summary). *)

(** {2 Extension: searching the loop order together with tile sizes}

    The paper fixes the loop order and searches tile sizes; since
    interchange is legal on these rectangular nests, the GA can also pick
    the permutation.  One extra chromosome encodes the Lehmer index of the
    loop order; the tile chromosome is interpreted in the permuted order. *)

type order_outcome = {
  order : int array;   (** new position [p] holds original loop [order.(p)] *)
  otiles : int array;  (** tile sizes, one per loop of the permuted nest *)
  obefore : Tiling_cme.Estimator.report;  (** original nest, original order *)
  oafter : Tiling_cme.Estimator.report;   (** permuted and tiled *)
  oga : Tiling_ga.Engine.result;
}

val optimize_with_order :
  ?opts:opts -> Tiling_ir.Nest.t -> Tiling_cache.Config.t -> order_outcome

val pp_order_outcome : order_outcome Fmt.t

val order_to_json : order_outcome -> Tiling_obs.Json.t
