(** Combined transformations: the paper's padding-then-tiling pipeline
    (table 3): padding parameters are searched first on the original nest,
    then tile sizes are searched on the padded layout. *)

type combined = {
  padding : Tiling_ir.Transform.padding;
  tiles : int array;
  original : Tiling_cme.Estimator.report;      (** no padding, no tiling *)
  padded : Tiling_cme.Estimator.report;        (** padding only *)
  padded_tiled : Tiling_cme.Estimator.report;  (** padding then tiling *)
}

val pad_then_tile :
  ?topts:Tiler.opts ->
  ?popts:Padder.opts ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  combined
(** The nest's arrays are restored to their canonical placement on
    return. *)

type joint = {
  padding : Tiling_ir.Transform.padding;
  tiles : int array;
  original : Tiling_cme.Estimator.report;
  optimized : Tiling_cme.Estimator.report;  (** padding and tiling together *)
  ga : Tiling_ga.Engine.result;
}

val pad_and_tile :
  ?topts:Tiler.opts -> ?popts:Padder.opts -> Tiling_ir.Nest.t ->
  Tiling_cache.Config.t -> joint
(** The paper's stated future work (section 4.3): search padding and tile
    parameters *in a single step* — one chromosome holds the tile vector
    and all padding amounts, so the GA can exploit their interaction.  GA
    parameters and search spaces are taken from [topts] / [popts]
    respectively ([popts]'s sample/seed settings are ignored; [topts]'s are
    used).  Arrays are restored to canonical placement on return. *)

val pp_combined : combined Fmt.t
val pp_joint : joint Fmt.t

val combined_to_json : combined -> Tiling_obs.Json.t
val joint_to_json : joint -> Tiling_obs.Json.t
