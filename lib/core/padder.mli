(** Near-optimal padding (section 4.3, after Vera/González/Llosa [28]).

    For kernels whose post-tiling misses are conflict-dominated (ADD, BTRIX,
    VPENTA, ADI in the paper), tiling alone cannot help: the conflicts come
    from the data layout.  Padding parameters — extra elements on each
    array's leading dimension (intra) and gaps between consecutive arrays
    (inter) — are introduced into the CMEs and searched with the same
    genetic algorithm as tile sizes. *)

type opts = {
  ga : Tiling_ga.Engine.params;
  seed : int;
  sample_points : int option;
  max_intra : int;  (** max extra elements on the leading dimension *)
  max_inter : int;  (** max gap elements before each array *)
  restarts : int;   (** independent GA runs, best kept *)
  domains : int;
      (** OCaml domains scoring each generation in parallel; padding
          candidates are evaluated on fresh nest clones, so results are
          identical for any value *)
  backend : Tiling_search.Backend.t;  (** candidate cost backend *)
  on_eval : Tiling_search.Eval.t -> unit;
      (** hook over the fresh evaluation service (persistent memo tier,
          deadline probe); default [ignore] — see {!Tiler.opts} *)
}

val default_opts : opts
(** GA parameters as in the paper; padding spaces of 16 elements each. *)

type outcome = {
  padding : Tiling_ir.Transform.padding;
  before : Tiling_cme.Estimator.report;  (** unpadded *)
  after : Tiling_cme.Estimator.report;   (** best padding applied *)
  ga : Tiling_ga.Engine.result;
  distinct_candidates : int;
}

val with_padding :
  Tiling_ir.Nest.t -> Tiling_ir.Transform.padding -> (unit -> 'a) -> 'a
(** [with_padding nest pad f] runs [f] with the padding applied to the
    nest's arrays and always restores the canonical (packed, unpadded)
    placement afterwards. *)

val optimize :
  ?opts:opts ->
  ?tiles:int array ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  outcome
(** [optimize nest cache] searches padding for the untiled nest ([tiles]
    evaluates every candidate under that fixed tiling instead).  The nest's
    arrays are left in their canonical unpadded placement on return; use
    {!with_padding} to apply the winner. *)

val pp_outcome : outcome Fmt.t

val json_of_padding : Tiling_ir.Transform.padding -> Tiling_obs.Json.t

val to_json : outcome -> Tiling_obs.Json.t
(** Machine-readable outcome (padding vectors, both reports, GA summary). *)
