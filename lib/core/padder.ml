open Tiling_ir
module Span = Tiling_obs.Span

type opts = {
  ga : Tiling_ga.Engine.params;
  seed : int;
  sample_points : int option;
  max_intra : int;
  max_inter : int;
  restarts : int;
  domains : int;
  backend : Tiling_search.Backend.t;
  on_eval : Tiling_search.Eval.t -> unit;
}

let default_opts =
  {
    ga = Tiling_ga.Engine.default_params;
    seed = 20020815;
    sample_points = None;
    max_intra = 16;
    max_inter = 16;
    restarts = 3;
    domains = 1;
    backend = Tiling_search.Backend.default;
    on_eval = ignore;
  }

type outcome = {
  padding : Transform.padding;
  before : Tiling_cme.Estimator.report;
  after : Tiling_cme.Estimator.report;
  ga : Tiling_ga.Engine.result;
  distinct_candidates : int;
}

let with_padding nest pad f =
  Transform.apply_padding nest pad;
  Fun.protect ~finally:(fun () -> Transform.clear_padding nest) f

let optimize ?(opts = default_opts) ?tiles nest cache =
  Span.with_ "padder.optimize"
    ~attrs:[ ("nest", Tiling_obs.Json.String nest.Nest.name) ]
  @@ fun () ->
  let narrays = List.length nest.Nest.arrays in
  let sample = Sample.create ?n:opts.sample_points ~seed:opts.seed nest in
  let eval_current () =
    (* Address forms are rebuilt here, so the arrays' current layout and
       bases are what gets analysed. *)
    match tiles with
    | None ->
        let engine = Tiling_cme.Engine.create nest cache in
        Tiling_cme.Estimator.sample_at engine (Sample.points sample)
    | Some tiles ->
        let tiled = Transform.tile nest tiles in
        let engine = Tiling_cme.Engine.create tiled cache in
        Tiling_cme.Estimator.sample_at engine (Sample.embed sample ~tiles)
  in
  let pad_of_values values =
    let inter = Array.make narrays 0 and intra = Array.make narrays 0 in
    let elem_sizes =
      Array.of_list
        (List.map (fun (a : Array_decl.t) -> a.Array_decl.elem_size) nest.Nest.arrays)
    in
    for k = 0 to narrays - 1 do
      intra.(k) <- values.(2 * k) - 1;
      inter.(k) <- (values.((2 * k) + 1) - 1) * elem_sizes.(k)
    done;
    { Transform.inter; intra }
  in
  (* One (intra, inter) variable pair per array. *)
  let uppers =
    Array.init (2 * narrays) (fun i ->
        if i land 1 = 0 then opts.max_intra + 1 else opts.max_inter + 1)
  in
  let encoding = Tiling_ga.Encoding.make uppers in
  (* Candidate preparation pads a fresh clone ([Transform.padded]) instead
     of mutating [nest] in place, so the evaluation service may fan whole
     generations out over domains. *)
  let eval =
    Tiling_search.Eval.create ~backend:opts.backend ~domains:opts.domains
      ~cache
      ~prepare:(fun values ->
        let padded = Transform.padded nest (pad_of_values values) in
        match tiles with
        | None -> (padded, Sample.points sample)
        | Some tiles -> (Transform.tile padded tiles, Sample.embed sample ~tiles))
      ()
  in
  opts.on_eval eval;
  let before = eval_current () in
  let ga =
    Tiling_search.Driver.best_of ~label:"padder" ~params:opts.ga
      ~restarts:opts.restarts ~seed:opts.seed ~salt:0x9AD ~encoding ~eval ()
  in
  let padding =
    pad_of_values (Tiling_ga.Encoding.decode encoding ga.Tiling_ga.Engine.best_genes)
  in
  let after = with_padding nest padding eval_current in
  { padding; before; after; ga; distinct_candidates = Tiling_search.Eval.distinct eval }

let json_of_padding (p : Transform.padding) =
  let arr a =
    Tiling_obs.Json.List
      (Array.to_list (Array.map (fun i -> Tiling_obs.Json.Int i) a))
  in
  Tiling_obs.Json.Obj
    [ ("intra", arr p.Transform.intra); ("inter", arr p.Transform.inter) ]

let to_json o =
  let open Tiling_obs.Json in
  Obj
    [
      ("padding", json_of_padding o.padding);
      ("before", Tiling_cme.Estimator.to_json o.before);
      ("after", Tiling_cme.Estimator.to_json o.after);
      ("ga", Tiling_ga.Engine.to_json o.ga);
      ("distinct_candidates", Int o.distinct_candidates);
    ]

let pp_outcome ppf o =
  Fmt.pf ppf "padding: intra=[%a] inter=[%a]@ before: %a@ after: %a"
    Fmt.(array ~sep:(any ",") int)
    o.padding.Transform.intra
    Fmt.(array ~sep:(any ",") int)
    o.padding.Transform.inter Tiling_cme.Estimator.pp o.before
    Tiling_cme.Estimator.pp o.after
