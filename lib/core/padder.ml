open Tiling_ir
module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let m_memo_hit = Metrics.counter "padder.memo.hit"
let m_memo_miss = Metrics.counter "padder.memo.miss"
let m_restarts = Metrics.counter "padder.restarts"

type opts = {
  ga : Tiling_ga.Engine.params;
  seed : int;
  sample_points : int option;
  max_intra : int;
  max_inter : int;
  restarts : int;
}

let default_opts =
  {
    ga = Tiling_ga.Engine.default_params;
    seed = 20020815;
    sample_points = None;
    max_intra = 16;
    max_inter = 16;
    restarts = 3;
  }

type outcome = {
  padding : Transform.padding;
  before : Tiling_cme.Estimator.report;
  after : Tiling_cme.Estimator.report;
  ga : Tiling_ga.Engine.result;
  distinct_candidates : int;
}

let with_padding nest pad f =
  Transform.apply_padding nest pad;
  Fun.protect ~finally:(fun () -> Transform.clear_padding nest) f

let optimize ?(opts = default_opts) ?tiles nest cache =
  Span.with_ "padder.optimize"
    ~attrs:[ ("nest", Tiling_obs.Json.String nest.Nest.name) ]
  @@ fun () ->
  let narrays = List.length nest.Nest.arrays in
  let sample = Sample.create ?n:opts.sample_points ~seed:opts.seed nest in
  let eval_current () =
    (* Address forms are rebuilt here, so the arrays' current layout and
       bases are what gets analysed. *)
    match tiles with
    | None ->
        let engine = Tiling_cme.Engine.create nest cache in
        Tiling_cme.Estimator.sample_at engine (Sample.points sample)
    | Some tiles ->
        let tiled = Transform.tile nest tiles in
        let engine = Tiling_cme.Engine.create tiled cache in
        Tiling_cme.Estimator.sample_at engine (Sample.embed sample ~tiles)
  in
  let pad_of_values values =
    let inter = Array.make narrays 0 and intra = Array.make narrays 0 in
    let elem_sizes =
      Array.of_list
        (List.map (fun (a : Array_decl.t) -> a.Array_decl.elem_size) nest.Nest.arrays)
    in
    for k = 0 to narrays - 1 do
      intra.(k) <- values.(2 * k) - 1;
      inter.(k) <- (values.((2 * k) + 1) - 1) * elem_sizes.(k)
    done;
    { Transform.inter; intra }
  in
  (* One (intra, inter) variable pair per array. *)
  let uppers =
    Array.init (2 * narrays) (fun i ->
        if i land 1 = 0 then opts.max_intra + 1 else opts.max_inter + 1)
  in
  let encoding = Tiling_ga.Encoding.make uppers in
  let memo : (int list, float) Hashtbl.t = Hashtbl.create 512 in
  let objective values =
    let key = Array.to_list values in
    match Hashtbl.find_opt memo key with
    | Some v ->
        Metrics.incr m_memo_hit;
        v
    | None ->
        Metrics.incr m_memo_miss;
        let pad = pad_of_values values in
        let v =
          with_padding nest pad (fun () ->
              float_of_int (Tiling_cme.Estimator.replacement (eval_current ())))
        in
        Hashtbl.replace memo key v;
        v
  in
  let before = eval_current () in
  let runs =
    List.init (max 1 opts.restarts) (fun r ->
        Span.with_ "padder.restart" ~attrs:[ ("restart", Tiling_obs.Json.Int r) ]
          (fun () ->
            Metrics.incr m_restarts;
            let rng = Tiling_util.Prng.create ~seed:(opts.seed lxor 0x9AD lxor (r * 0x5DEECE66)) in
            Tiling_ga.Engine.run ~params:opts.ga ~encoding ~objective
              ~on_generation:Tiling_ga.Engine.trace_generation ~rng ()))
  in
  let ga =
    List.fold_left
      (fun acc (run : Tiling_ga.Engine.result) ->
        if run.Tiling_ga.Engine.best_objective
           < acc.Tiling_ga.Engine.best_objective
        then run
        else acc)
      (List.hd runs) (List.tl runs)
  in
  let padding =
    pad_of_values (Tiling_ga.Encoding.decode encoding ga.Tiling_ga.Engine.best_genes)
  in
  let after = with_padding nest padding eval_current in
  { padding; before; after; ga; distinct_candidates = Hashtbl.length memo }

let json_of_padding (p : Transform.padding) =
  let arr a =
    Tiling_obs.Json.List
      (Array.to_list (Array.map (fun i -> Tiling_obs.Json.Int i) a))
  in
  Tiling_obs.Json.Obj
    [ ("intra", arr p.Transform.intra); ("inter", arr p.Transform.inter) ]

let to_json o =
  let open Tiling_obs.Json in
  Obj
    [
      ("padding", json_of_padding o.padding);
      ("before", Tiling_cme.Estimator.to_json o.before);
      ("after", Tiling_cme.Estimator.to_json o.after);
      ("ga", Tiling_ga.Engine.to_json o.ga);
      ("distinct_candidates", Int o.distinct_candidates);
    ]

let pp_outcome ppf o =
  Fmt.pf ppf "padding: intra=[%a] inter=[%a]@ before: %a@ after: %a"
    Fmt.(array ~sep:(any ",") int)
    o.padding.Transform.intra
    Fmt.(array ~sep:(any ",") int)
    o.padding.Transform.inter Tiling_cme.Estimator.pp o.before
    Tiling_cme.Estimator.pp o.after
