open Tiling_ir

type t = { nest : Nest.t; points : int array array; los : int array }

let create ?n ~seed nest =
  let n = match n with Some n -> n | None -> Tiling_cme.Estimator.default_points () in
  let rng = Tiling_util.Prng.create ~seed in
  Array.iter
    (fun (l : Nest.loop) ->
      match l.shape with
      | Nest.Range _ | Nest.Range_affine _ -> ()
      | Nest.Tile_ctrl _ | Nest.Tile_elem _ | Nest.Tile_elem_affine _ ->
          invalid_arg "Sample.create: nest must be untiled")
    nest.Nest.loops;
  (* Tile-control lattices anchor at the static lower bound (what
     [Transform.tile] uses for affine loops too), so [embed] snaps each
     sampled point to its control coordinates with these. *)
  let los, _ = Nest.static_bounds nest in
  let points = Array.init n (fun _ -> Nest.random_point nest rng) in
  { nest; points; los }

let points t = t.points

let size t = Array.length t.points

let embed t ~tiles =
  let d = Nest.depth t.nest in
  assert (Array.length tiles = d);
  Array.map
    (fun p ->
      let q = Array.make (2 * d) 0 in
      for l = 0 to d - 1 do
        q.(l) <- t.los.(l) + ((p.(l) - t.los.(l)) / tiles.(l) * tiles.(l));
        q.(d + l) <- p.(l)
      done;
      q)
    t.points
