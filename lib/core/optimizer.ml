type combined = {
  padding : Tiling_ir.Transform.padding;
  tiles : int array;
  original : Tiling_cme.Estimator.report;
  padded : Tiling_cme.Estimator.report;
  padded_tiled : Tiling_cme.Estimator.report;
}

let pad_then_tile ?(topts = Tiler.default_opts) ?(popts = Padder.default_opts)
    nest cache =
  Tiling_obs.Span.with_ "optimizer.pad_then_tile"
    ~attrs:[ ("nest", Tiling_obs.Json.String nest.Tiling_ir.Nest.name) ]
  @@ fun () ->
  let pad_outcome = Padder.optimize ~opts:popts nest cache in
  let padding = pad_outcome.Padder.padding in
  let tile_outcome =
    Padder.with_padding nest padding (fun () ->
        Tiler.optimize ~opts:topts nest cache)
  in
  {
    padding;
    tiles = tile_outcome.Tiler.tiles;
    original = pad_outcome.Padder.before;
    padded = pad_outcome.Padder.after;
    padded_tiled = tile_outcome.Tiler.after;
  }

type joint = {
  padding : Tiling_ir.Transform.padding;
  tiles : int array;
  original : Tiling_cme.Estimator.report;
  optimized : Tiling_cme.Estimator.report;
  ga : Tiling_ga.Engine.result;
}

let pad_and_tile ?(topts = Tiler.default_opts) ?(popts = Padder.default_opts)
    nest cache =
  Tiling_obs.Span.with_ "optimizer.pad_and_tile"
    ~attrs:[ ("nest", Tiling_obs.Json.String nest.Tiling_ir.Nest.name) ]
  @@ fun () ->
  let open Tiling_ir in
  let narrays = List.length nest.Nest.arrays in
  let k = Nest.depth nest in
  let sample = Sample.create ?n:topts.Tiler.sample_points ~seed:topts.Tiler.seed nest in
  let spans = Transform.tile_spans nest in
  (* Chromosomes: k tile sizes, then (intra, inter) per array. *)
  let uppers =
    Array.init
      (k + (2 * narrays))
      (fun i ->
        if i < k then spans.(i)
        else if (i - k) land 1 = 0 then popts.Padder.max_intra + 1
        else popts.Padder.max_inter + 1)
  in
  let elem_sizes =
    Array.of_list
      (List.map (fun (a : Array_decl.t) -> a.Array_decl.elem_size) nest.Nest.arrays)
  in
  let split values =
    let tiles = Array.sub values 0 k in
    let inter = Array.make narrays 0 and intra = Array.make narrays 0 in
    for a = 0 to narrays - 1 do
      intra.(a) <- values.(k + (2 * a)) - 1;
      inter.(a) <- (values.(k + (2 * a) + 1) - 1) * elem_sizes.(a)
    done;
    (tiles, { Transform.inter; intra })
  in
  let evaluate tiles =
    let tiled = Transform.tile nest tiles in
    let engine = Tiling_cme.Engine.create tiled cache in
    Tiling_cme.Estimator.sample_at engine (Sample.embed sample ~tiles)
  in
  (* Joint candidates pad a fresh clone and tile it — pure preparation, so
     generations parallelise over domains like the single-variable
     searches. *)
  let eval =
    Tiling_search.Eval.create ~backend:topts.Tiler.backend
      ~domains:topts.Tiler.domains ~cache
      ~prepare:(fun values ->
        let tiles, padding = split values in
        let padded = Transform.padded nest padding in
        (Transform.tile padded tiles, Sample.embed sample ~tiles))
      ()
  in
  topts.Tiler.on_eval eval;
  let encoding = Tiling_ga.Encoding.make uppers in
  let ga =
    Tiling_search.Driver.best_of ~label:"optimizer" ~params:topts.Tiler.ga
      ~restarts:topts.Tiler.restarts ~seed:topts.Tiler.seed ~salt:0x71F
      ~encoding ~eval ()
  in
  let tiles, padding =
    split (Tiling_ga.Encoding.decode encoding ga.Tiling_ga.Engine.best_genes)
  in
  let original =
    let engine = Tiling_cme.Engine.create nest cache in
    Tiling_cme.Estimator.sample_at engine (Sample.points sample)
  in
  let optimized = Padder.with_padding nest padding (fun () -> evaluate tiles) in
  { padding; tiles; original; optimized; ga }

let json_of_int_array a =
  Tiling_obs.Json.List (Array.to_list (Array.map (fun i -> Tiling_obs.Json.Int i) a))

let combined_to_json (c : combined) =
  let open Tiling_obs.Json in
  Obj
    [
      ("padding", Padder.json_of_padding c.padding);
      ("tiles", json_of_int_array c.tiles);
      ("original", Tiling_cme.Estimator.to_json c.original);
      ("padded", Tiling_cme.Estimator.to_json c.padded);
      ("padded_tiled", Tiling_cme.Estimator.to_json c.padded_tiled);
    ]

let joint_to_json (j : joint) =
  let open Tiling_obs.Json in
  Obj
    [
      ("padding", Padder.json_of_padding j.padding);
      ("tiles", json_of_int_array j.tiles);
      ("original", Tiling_cme.Estimator.to_json j.original);
      ("optimized", Tiling_cme.Estimator.to_json j.optimized);
      ("ga", Tiling_ga.Engine.to_json j.ga);
    ]

let pp_joint ppf j =
  Fmt.pf ppf
    "joint search: tiles=[%a] intra=[%a] inter=[%a]@ original:  %a@ optimized: %a"
    Fmt.(array ~sep:(any ",") int)
    j.tiles
    Fmt.(array ~sep:(any ",") int)
    j.padding.Tiling_ir.Transform.intra
    Fmt.(array ~sep:(any ",") int)
    j.padding.Tiling_ir.Transform.inter Tiling_cme.Estimator.pp j.original
    Tiling_cme.Estimator.pp j.optimized

let pp_combined ppf (c : combined) =
  Fmt.pf ppf
    "padding intra=[%a] inter=[%a], tiles=[%a]@ original:     %a@ padded:       \
     %a@ padded+tiled: %a"
    Fmt.(array ~sep:(any ",") int)
    c.padding.Tiling_ir.Transform.intra
    Fmt.(array ~sep:(any ",") int)
    c.padding.Tiling_ir.Transform.inter
    Fmt.(array ~sep:(any ",") int)
    c.tiles Tiling_cme.Estimator.pp c.original Tiling_cme.Estimator.pp c.padded
    Tiling_cme.Estimator.pp c.padded_tiled
