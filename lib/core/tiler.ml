open Tiling_ir

let log_src = Logs.Src.create "tiling.core" ~doc:"GA tile/padding search"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Span = Tiling_obs.Span

type opts = {
  ga : Tiling_ga.Engine.params;
  seed : int;
  sample_points : int option;
  restarts : int;
  domains : int;
  backend : Tiling_search.Backend.t;
  on_eval : Tiling_search.Eval.t -> unit;
}

let default_opts =
  {
    ga = Tiling_ga.Engine.default_params;
    seed = 20020815;
    sample_points = None;
    restarts = 3;
    domains = 1;
    backend = Tiling_search.Backend.default;
    on_eval = ignore;
  }

type outcome = {
  tiles : int array;
  before : Tiling_cme.Estimator.report;
  after : Tiling_cme.Estimator.report;
  ga : Tiling_ga.Engine.result;
  distinct_candidates : int;
}

let report_for sample nest cache tiles =
  let tiled = Transform.tile nest tiles in
  let engine = Tiling_cme.Engine.create tiled cache in
  Tiling_cme.Estimator.sample_at engine (Sample.embed sample ~tiles)

let objective_on sample nest cache tiles =
  Tiling_search.Backend.(cme_sample.cost) cache (Transform.tile nest tiles)
    ~points:(Sample.embed sample ~tiles)

let optimize ?(opts = default_opts) nest cache =
  Span.with_ "tiler.optimize"
    ~attrs:[ ("nest", Tiling_obs.Json.String nest.Nest.name) ]
  @@ fun () ->
  let sample = Sample.create ?n:opts.sample_points ~seed:opts.seed nest in
  let uppers = Transform.tile_spans nest in
  let encoding = Tiling_ga.Encoding.make uppers in
  (* Tile evaluation never mutates shared state (tiling builds a fresh
     nest; padding is not involved), so the evaluation service can score
     whole generations in parallel over domains. *)
  let eval =
    Tiling_search.Eval.create ~backend:opts.backend ~domains:opts.domains
      ~cache
      ~prepare:(fun tiles -> (Transform.tile nest tiles, Sample.embed sample ~tiles))
      ()
  in
  opts.on_eval eval;
  (* Independent GA restarts (objective cache shared): our exact
     conflict-aware objective is rougher than the paper's, so a single
     population occasionally converges into a poor basin.  Keep the best
     run. *)
  let ga =
    Tiling_search.Driver.best_of ~label:"tiler" ~params:opts.ga
      ~restarts:opts.restarts ~seed:opts.seed ~salt:0x6A5 ~encoding ~eval ()
  in
  let tiles = Tiling_ga.Encoding.decode encoding ga.Tiling_ga.Engine.best_genes in
  Log.info (fun m ->
      m "%s: GA chose tiles [%s] after %d evaluations (%d distinct), best %g"
        nest.Nest.name
        (String.concat "," (Array.to_list (Array.map string_of_int tiles)))
        ga.Tiling_ga.Engine.evaluations
        (Tiling_search.Eval.distinct eval)
        ga.Tiling_ga.Engine.best_objective);
  let before =
    Span.with_ "tiler.report.before" (fun () ->
        let engine = Tiling_cme.Engine.create nest cache in
        Tiling_cme.Estimator.sample_at engine (Sample.points sample))
  in
  let after =
    Span.with_ "tiler.report.after" (fun () -> report_for sample nest cache tiles)
  in
  { tiles; before; after; ga; distinct_candidates = Tiling_search.Eval.distinct eval }

let json_of_int_array a =
  Tiling_obs.Json.List (Array.to_list (Array.map (fun i -> Tiling_obs.Json.Int i) a))

let to_json o =
  let open Tiling_obs.Json in
  Obj
    [
      ("tiles", json_of_int_array o.tiles);
      ("before", Tiling_cme.Estimator.to_json o.before);
      ("after", Tiling_cme.Estimator.to_json o.after);
      ("ga", Tiling_ga.Engine.to_json o.ga);
      ("distinct_candidates", Int o.distinct_candidates);
    ]

let pp_outcome ppf o =
  Fmt.pf ppf
    "tiles=[%a]@ before: %a@ after: %a@ ga: %d generations, %d evaluations \
     (%d distinct)%s"
    Fmt.(array ~sep:(any ",") int)
    o.tiles Tiling_cme.Estimator.pp o.before Tiling_cme.Estimator.pp o.after
    o.ga.Tiling_ga.Engine.generations o.ga.Tiling_ga.Engine.evaluations
    o.distinct_candidates
    (if o.ga.Tiling_ga.Engine.converged then ", converged" else "")

(* ------------------------------------------------------------------ *)
(* Extension: loop order x tile sizes.                                  *)

type order_outcome = {
  order : int array;
  otiles : int array;
  obefore : Tiling_cme.Estimator.report;
  oafter : Tiling_cme.Estimator.report;
  oga : Tiling_ga.Engine.result;
}

let factorial n =
  let rec go acc n = if n <= 1 then acc else go (acc * n) (n - 1) in
  go 1 n

(* The [i]-th permutation of [0 .. d-1] in Lehmer-code order. *)
let permutation_of_index d i =
  let avail = ref (List.init d Fun.id) in
  let perm = Array.make d 0 in
  let rem = ref i in
  for p = 0 to d - 1 do
    let f = factorial (d - 1 - p) in
    let k = !rem / f in
    rem := !rem mod f;
    perm.(p) <- List.nth !avail k;
    avail := List.filteri (fun j _ -> j <> k) !avail
  done;
  perm

let optimize_with_order ?(opts = default_opts) nest cache =
  Span.with_ "tiler.optimize_with_order"
    ~attrs:[ ("nest", Tiling_obs.Json.String nest.Nest.name) ]
  @@ fun () ->
  let d = Tiling_ir.Nest.depth nest in
  let sample = Sample.create ?n:opts.sample_points ~seed:opts.seed nest in
  let spans = Transform.tile_spans nest in
  let nperms = factorial d in
  (* Permuted nests and their reordered samples, one per *legal*
     permutation: interchange rejects reorderings that would move an
     affine-bounded loop above a loop its bounds depend on, so triangular
     nests search a restricted order space.  Built eagerly (interchange is
     cheap next to one candidate evaluation) so candidate preparation is a
     read-only lookup — safe from any domain. *)
  let permuted =
    List.init nperms (fun idx ->
        let perm = permutation_of_index d idx in
        match Transform.interchange nest perm with
        | pnest ->
            (* the sample's points, reordered to the permuted loop order *)
            let pts =
              Array.map
                (fun p -> Array.init d (fun i -> p.(perm.(i))))
                (Sample.points sample)
            in
            Some (perm, pnest, pts)
        | exception Transform.Illegal _ -> None)
    |> List.filter_map Fun.id |> Array.of_list
  in
  let nlegal = Array.length permuted in
  let nest_for idx = permuted.(idx) in
  let embed_tiled pnest pts tiles =
    (* static lower bounds: the anchors [Transform.tile] gives the
       control lattices, for affine loops too *)
    let los, _ = Tiling_ir.Nest.static_bounds pnest in
    Array.map
      (fun p ->
        let q = Array.make (2 * d) 0 in
        for l = 0 to d - 1 do
          q.(l) <- los.(l) + ((p.(l) - los.(l)) / tiles.(l) * tiles.(l));
          q.(d + l) <- p.(l)
        done;
        q)
      pts
  in
  (* Chromosomes: permutation index, then d tile sizes (permuted order,
     conservatively bounded by the largest span). *)
  let max_span = Array.fold_left max 1 spans in
  let uppers = Array.append [| nlegal |] (Array.make d max_span) in
  let encoding = Tiling_ga.Encoding.make uppers in
  let prepared idx tiles =
    let _, pnest, pts = nest_for idx in
    let pspans = Transform.tile_spans pnest in
    let tiles = Array.mapi (fun l t -> min t pspans.(l)) tiles in
    (pnest, pts, tiles)
  in
  let eval =
    Tiling_search.Eval.create ~backend:opts.backend ~domains:opts.domains
      ~cache
      ~prepare:(fun values ->
        let pnest, pts, tiles = prepared (values.(0) - 1) (Array.sub values 1 d) in
        (Transform.tile pnest tiles, embed_tiled pnest pts tiles))
      ()
  in
  opts.on_eval eval;
  let ga =
    Tiling_search.Driver.best_of ~label:"tiler" ~params:opts.ga
      ~restarts:opts.restarts ~seed:opts.seed ~salt:0x2E7 ~encoding ~eval ()
  in
  let values = Tiling_ga.Encoding.decode encoding ga.Tiling_ga.Engine.best_genes in
  let idx = values.(0) - 1 in
  let perm, _, _ = nest_for idx in
  let pnest, pts, otiles = prepared idx (Array.sub values 1 d) in
  let obefore =
    let engine = Tiling_cme.Engine.create nest cache in
    Tiling_cme.Estimator.sample_at engine (Sample.points sample)
  in
  let oafter =
    (* The outcome's report stays on the CME sample regardless of the
       search backend, so before/after are always directly comparable. *)
    let tiled = Transform.tile pnest otiles in
    let engine = Tiling_cme.Engine.create tiled cache in
    Tiling_cme.Estimator.sample_at engine (embed_tiled pnest pts otiles)
  in
  { order = perm; otiles; obefore; oafter; oga = ga }

let order_to_json o =
  let open Tiling_obs.Json in
  Obj
    [
      ("order", json_of_int_array o.order);
      ("tiles", json_of_int_array o.otiles);
      ("before", Tiling_cme.Estimator.to_json o.obefore);
      ("after", Tiling_cme.Estimator.to_json o.oafter);
      ("ga", Tiling_ga.Engine.to_json o.oga);
    ]

let pp_order_outcome ppf o =
  Fmt.pf ppf "order=[%a] tiles=[%a]@ before: %a@ after: %a"
    Fmt.(array ~sep:(any ",") int)
    o.order
    Fmt.(array ~sep:(any ",") int)
    o.otiles Tiling_cme.Estimator.pp o.obefore Tiling_cme.Estimator.pp o.oafter
