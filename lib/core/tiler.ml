open Tiling_ir

let log_src = Logs.Src.create "tiling.core" ~doc:"GA tile/padding search"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let m_memo_hit = Metrics.counter "tiler.memo.hit"
let m_memo_miss = Metrics.counter "tiler.memo.miss"
let m_restarts = Metrics.counter "tiler.restarts"

type opts = {
  ga : Tiling_ga.Engine.params;
  seed : int;
  sample_points : int option;
  restarts : int;
  domains : int;
}

let default_opts =
  {
    ga = Tiling_ga.Engine.default_params;
    seed = 20020815;
    sample_points = None;
    restarts = 3;
    domains = 1;
  }

type outcome = {
  tiles : int array;
  before : Tiling_cme.Estimator.report;
  after : Tiling_cme.Estimator.report;
  ga : Tiling_ga.Engine.result;
  distinct_candidates : int;
}

let report_for sample nest cache tiles =
  let tiled = Transform.tile nest tiles in
  let engine = Tiling_cme.Engine.create tiled cache in
  Tiling_cme.Estimator.sample_at engine (Sample.embed sample ~tiles)

let objective_on sample nest cache tiles =
  let r = report_for sample nest cache tiles in
  float_of_int (Tiling_cme.Estimator.replacement r)

let optimize ?(opts = default_opts) nest cache =
  Span.with_ "tiler.optimize"
    ~attrs:[ ("nest", Tiling_obs.Json.String nest.Nest.name) ]
  @@ fun () ->
  let sample = Sample.create ?n:opts.sample_points ~seed:opts.seed nest in
  let uppers = Transform.tile_spans nest in
  let encoding = Tiling_ga.Encoding.make uppers in
  (* The GA revisits individuals; cache the expensive objective per tile
     vector.  Tile evaluation never mutates shared state (tiling builds a
     fresh nest; padding is not involved), so whole generations can be
     scored in parallel over domains, with the memo behind a mutex. *)
  let memo : (int list, float) Hashtbl.t = Hashtbl.create 512 in
  let memo_lock = Mutex.create () in
  let lookup key = Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo key) in
  let store key v = Mutex.protect memo_lock (fun () -> Hashtbl.replace memo key v) in
  let objective tiles =
    let key = Array.to_list tiles in
    match lookup key with
    | Some v ->
        Metrics.incr m_memo_hit;
        v
    | None ->
        Metrics.incr m_memo_miss;
        let v = objective_on sample nest cache tiles in
        store key v;
        v
  in
  let evaluate_all =
    if opts.domains <= 1 then None
    else
      Some
        (fun decoded ->
          Tiling_util.Par.map ~domains:opts.domains objective decoded)
  in
  (* Independent GA restarts (objective cache shared): our exact
     conflict-aware objective is rougher than the paper's, so a single
     population occasionally converges into a poor basin.  Keep the best
     run. *)
  let runs =
    List.init (max 1 opts.restarts) (fun r ->
        Span.with_ "tiler.restart" ~attrs:[ ("restart", Tiling_obs.Json.Int r) ]
          (fun () ->
            Metrics.incr m_restarts;
            let rng = Tiling_util.Prng.create ~seed:(opts.seed lxor 0x6A5 lxor (r * 0x5DEECE66)) in
            Tiling_ga.Engine.run ?evaluate_all ~params:opts.ga ~encoding
              ~objective ~on_generation:Tiling_ga.Engine.trace_generation ~rng ()))
  in
  let ga =
    List.fold_left
      (fun acc (run : Tiling_ga.Engine.result) ->
        if run.Tiling_ga.Engine.best_objective
           < acc.Tiling_ga.Engine.best_objective
        then run
        else acc)
      (List.hd runs) (List.tl runs)
  in
  let tiles = Tiling_ga.Encoding.decode encoding ga.Tiling_ga.Engine.best_genes in
  Log.info (fun m ->
      m "%s: GA chose tiles [%s] after %d evaluations (%d distinct), best %g"
        nest.Nest.name
        (String.concat "," (Array.to_list (Array.map string_of_int tiles)))
        ga.Tiling_ga.Engine.evaluations (Hashtbl.length memo)
        ga.Tiling_ga.Engine.best_objective);
  let before =
    Span.with_ "tiler.report.before" (fun () ->
        let engine = Tiling_cme.Engine.create nest cache in
        Tiling_cme.Estimator.sample_at engine (Sample.points sample))
  in
  let after =
    Span.with_ "tiler.report.after" (fun () -> report_for sample nest cache tiles)
  in
  { tiles; before; after; ga; distinct_candidates = Hashtbl.length memo }

let json_of_int_array a =
  Tiling_obs.Json.List (Array.to_list (Array.map (fun i -> Tiling_obs.Json.Int i) a))

let to_json o =
  let open Tiling_obs.Json in
  Obj
    [
      ("tiles", json_of_int_array o.tiles);
      ("before", Tiling_cme.Estimator.to_json o.before);
      ("after", Tiling_cme.Estimator.to_json o.after);
      ("ga", Tiling_ga.Engine.to_json o.ga);
      ("distinct_candidates", Int o.distinct_candidates);
    ]

let pp_outcome ppf o =
  Fmt.pf ppf
    "tiles=[%a]@ before: %a@ after: %a@ ga: %d generations, %d evaluations \
     (%d distinct)%s"
    Fmt.(array ~sep:(any ",") int)
    o.tiles Tiling_cme.Estimator.pp o.before Tiling_cme.Estimator.pp o.after
    o.ga.Tiling_ga.Engine.generations o.ga.Tiling_ga.Engine.evaluations
    o.distinct_candidates
    (if o.ga.Tiling_ga.Engine.converged then ", converged" else "")

(* ------------------------------------------------------------------ *)
(* Extension: loop order x tile sizes.                                  *)

type order_outcome = {
  order : int array;
  otiles : int array;
  obefore : Tiling_cme.Estimator.report;
  oafter : Tiling_cme.Estimator.report;
  oga : Tiling_ga.Engine.result;
}

let factorial n =
  let rec go acc n = if n <= 1 then acc else go (acc * n) (n - 1) in
  go 1 n

(* The [i]-th permutation of [0 .. d-1] in Lehmer-code order. *)
let permutation_of_index d i =
  let avail = ref (List.init d Fun.id) in
  let perm = Array.make d 0 in
  let rem = ref i in
  for p = 0 to d - 1 do
    let f = factorial (d - 1 - p) in
    let k = !rem / f in
    rem := !rem mod f;
    perm.(p) <- List.nth !avail k;
    avail := List.filteri (fun j _ -> j <> k) !avail
  done;
  perm

let optimize_with_order ?(opts = default_opts) nest cache =
  Span.with_ "tiler.optimize_with_order"
    ~attrs:[ ("nest", Tiling_obs.Json.String nest.Nest.name) ]
  @@ fun () ->
  let d = Tiling_ir.Nest.depth nest in
  let sample = Sample.create ?n:opts.sample_points ~seed:opts.seed nest in
  let spans = Transform.tile_spans nest in
  let nperms = factorial d in
  (* Permuted nests and their samples are built once per permutation. *)
  let permuted = Hashtbl.create nperms in
  let nest_for idx =
    match Hashtbl.find_opt permuted idx with
    | Some v -> v
    | None ->
        let perm = permutation_of_index d idx in
        let pnest = Transform.interchange nest perm in
        (* the sample's points, reordered to the permuted loop order *)
        let pts =
          Array.map
            (fun p -> Array.init d (fun i -> p.(perm.(i))))
            (Sample.points sample)
        in
        let v = (perm, pnest, pts) in
        Hashtbl.replace permuted idx v;
        v
  in
  let embed_tiled pnest pts tiles =
    let los =
      Array.map
        (fun (l : Tiling_ir.Nest.loop) ->
          match l.Tiling_ir.Nest.shape with
          | Tiling_ir.Nest.Range { lo; _ } -> lo
          | _ -> assert false)
        pnest.Tiling_ir.Nest.loops
    in
    Array.map
      (fun p ->
        let q = Array.make (2 * d) 0 in
        for l = 0 to d - 1 do
          q.(l) <- los.(l) + ((p.(l) - los.(l)) / tiles.(l) * tiles.(l));
          q.(d + l) <- p.(l)
        done;
        q)
      pts
  in
  (* Chromosomes: permutation index, then d tile sizes (permuted order,
     conservatively bounded by the largest span). *)
  let max_span = Array.fold_left max 1 spans in
  let uppers = Array.append [| nperms |] (Array.make d max_span) in
  let encoding = Tiling_ga.Encoding.make uppers in
  let memo : (int list, float) Hashtbl.t = Hashtbl.create 1024 in
  let evaluate idx tiles =
    let _, pnest, pts = nest_for idx in
    let pspans = Transform.tile_spans pnest in
    let tiles = Array.mapi (fun l t -> min t pspans.(l)) tiles in
    let tiled = Transform.tile pnest tiles in
    let engine = Tiling_cme.Engine.create tiled cache in
    Tiling_cme.Estimator.sample_at engine (embed_tiled pnest pts tiles)
  in
  let objective values =
    let key = Array.to_list values in
    match Hashtbl.find_opt memo key with
    | Some v ->
        Metrics.incr m_memo_hit;
        v
    | None ->
        Metrics.incr m_memo_miss;
        let idx = values.(0) - 1 in
        let tiles = Array.sub values 1 d in
        let v =
          float_of_int (Tiling_cme.Estimator.replacement (evaluate idx tiles))
        in
        Hashtbl.replace memo key v;
        v
  in
  let runs =
    List.init (max 1 opts.restarts) (fun r ->
        Span.with_ "tiler.restart" ~attrs:[ ("restart", Tiling_obs.Json.Int r) ]
          (fun () ->
            Metrics.incr m_restarts;
            let rng =
              Tiling_util.Prng.create
                ~seed:(opts.seed lxor 0x2E7 lxor (r * 0x5DEECE66))
            in
            Tiling_ga.Engine.run ~params:opts.ga ~encoding ~objective
              ~on_generation:Tiling_ga.Engine.trace_generation ~rng ()))
  in
  let ga =
    List.fold_left
      (fun acc (run : Tiling_ga.Engine.result) ->
        if run.Tiling_ga.Engine.best_objective < acc.Tiling_ga.Engine.best_objective
        then run
        else acc)
      (List.hd runs) (List.tl runs)
  in
  let values = Tiling_ga.Encoding.decode encoding ga.Tiling_ga.Engine.best_genes in
  let idx = values.(0) - 1 in
  let perm, pnest, _ = nest_for idx in
  let pspans = Transform.tile_spans pnest in
  let otiles = Array.mapi (fun l t -> min t pspans.(l)) (Array.sub values 1 d) in
  let obefore =
    let engine = Tiling_cme.Engine.create nest cache in
    Tiling_cme.Estimator.sample_at engine (Sample.points sample)
  in
  let oafter = evaluate idx otiles in
  { order = perm; otiles; obefore; oafter; oga = ga }

let order_to_json o =
  let open Tiling_obs.Json in
  Obj
    [
      ("order", json_of_int_array o.order);
      ("tiles", json_of_int_array o.otiles);
      ("before", Tiling_cme.Estimator.to_json o.obefore);
      ("after", Tiling_cme.Estimator.to_json o.oafter);
      ("ga", Tiling_ga.Engine.to_json o.oga);
    ]

let pp_order_outcome ppf o =
  Fmt.pf ppf "order=[%a] tiles=[%a]@ before: %a@ after: %a"
    Fmt.(array ~sep:(any ",") int)
    o.order
    Fmt.(array ~sep:(any ",") int)
    o.otiles Tiling_cme.Estimator.pp o.obefore Tiling_cme.Estimator.pp o.oafter
