(** The benchmark kernels of Table 1.

    Every kernel builder returns a fresh, perfectly nested affine loop nest
    with its arrays placed consecutively in memory (Fortran static
    allocation), double-precision (8-byte) elements throughout.

    Provenance notes:

    - T2D, T3DJIK, T3DIKJ, MM, MATMUL and JACOBI3D are fully specified by
      the paper (figure 1 and table 1) or are textbook kernels;
    - ADI follows the Livermore loop 8 access pattern (2D ADI integration,
      three sweep arrays);
    - ADD, BTRIX, VPENTA1 and VPENTA2 reproduce the NAS kernels'
      characteristic layouts: power-of-two leading dimensions and many
      same-shape arrays whose columns fall on identical cache sets, which
      is what makes them conflict-dominated (table 3 of the paper);
    - DPSSB, DPSSF, DRADBG1/2 and DRADFG1/2 stand in for the BIHAR FFT
      loops: radix butterfly passes over power-of-two-sized planes with the
      half- and quarter-plane strides that cause their replacement misses.
      The exact BIHAR sources are not in the paper; these are documented
      affine equivalents (see DESIGN.md). *)

type spec = {
  name : string;            (** as in the paper's figures, e.g. "MM" *)
  description : string;
  loops : int;              (** nesting depth (table 1) *)
  sizes : int list;         (** problem sizes used in figures 8 and 9 *)
  build : int -> Tiling_ir.Nest.t;
}

val all : spec list
(** The seventeen kernels of table 1, in the paper's order.  This list is
    frozen to the paper's kernel set: reproduction experiments (figures 8
    and 9) iterate [all] and must keep matching the paper's tables. *)

val extras : spec list
(** Additional workloads beyond the paper's table: SOR (the 5-point stencil
    of the wider CME literature) and the triangular kernels LU, CHOLESKY and
    SYRK (affine loop bounds, section 2.3).  Kept separate so [all] stays
    exactly the paper's set; anything that should exercise the full system —
    fuzzing, benchmarks, the CLI oracle — uses {!rotation} instead. *)

val rotation : spec list
(** [all @ extras]: the default kernel rotation for fuzz/bench/oracle runs.
    New kernels join the rotation by being added to [extras]. *)

val find : string -> spec
(** Lookup by (case-insensitive) name across the whole {!rotation}.
    @raise Not_found. *)

(** Individual builders (size = matrix order / plane size). *)

val t2d : int -> Tiling_ir.Nest.t
val t3djik : int -> Tiling_ir.Nest.t
val t3dikj : int -> Tiling_ir.Nest.t
val jacobi3d : int -> Tiling_ir.Nest.t
val matmul : int -> Tiling_ir.Nest.t
val mm : int -> Tiling_ir.Nest.t
val adi : int -> Tiling_ir.Nest.t
val add : int -> Tiling_ir.Nest.t
val btrix : int -> Tiling_ir.Nest.t
val vpenta1 : int -> Tiling_ir.Nest.t
val vpenta2 : int -> Tiling_ir.Nest.t
val dpssb : int -> Tiling_ir.Nest.t
val dpssf : int -> Tiling_ir.Nest.t
val dradbg1 : int -> Tiling_ir.Nest.t
val dradbg2 : int -> Tiling_ir.Nest.t
val dradfg1 : int -> Tiling_ir.Nest.t
val dradfg2 : int -> Tiling_ir.Nest.t
val sor : int -> Tiling_ir.Nest.t
val lu : int -> Tiling_ir.Nest.t
val cholesky : int -> Tiling_ir.Nest.t
val syrk : int -> Tiling_ir.Nest.t
