open Tiling_ir

let arr = Array_decl.create

(* ------------------------------------------------------------------ *)
(* Transpositions                                                       *)

let t2d n =
  let a = arr "a" [| n; n |] and b = arr "b" [| n; n |] in
  Array_decl.place [ a; b ];
  Dsl.(
    nest ~name:"T2D"
      ~loops:[ ("i", 1, n); ("j", 1, n) ]
      ~body:[ load b [ v "i"; v "j" ]; store a [ v "j"; v "i" ] ]
      ())

let t3djik n =
  let a = arr "a" [| n; n; n |] and b = arr "b" [| n; n; n |] in
  Array_decl.place [ a; b ];
  Dsl.(
    nest ~name:"T3DJIK"
      ~loops:[ ("j", 1, n); ("i", 1, n); ("k", 1, n) ]
      ~body:[ load b [ v "j"; v "i"; v "k" ]; store a [ v "k"; v "j"; v "i" ] ]
      ())

let t3dikj n =
  (* Same store as T3DJIK but the source is read as b(i,k,j): with the
     (j,i,k) loop order the source sweeps with a middle-dimension stride,
     whose line footprint fits the cache — mostly compulsory misses before
     tiling (table 2: 34.6 % total, 7.0 % replacement). *)
  let a = arr "a" [| n; n; n |] and b = arr "b" [| n; n; n |] in
  Array_decl.place [ a; b ];
  Dsl.(
    nest ~name:"T3DIKJ"
      ~loops:[ ("j", 1, n); ("i", 1, n); ("k", 1, n) ]
      ~body:[ load b [ v "i"; v "k"; v "j" ]; store a [ v "k"; v "j"; v "i" ] ]
      ())

(* ------------------------------------------------------------------ *)
(* Stencils and dense algebra                                           *)

let jacobi3d n =
  (* 7-point Jacobi relaxation in Fortran order (unit-stride innermost).
     The k +/- 1 neighbours carry whole-plane reuse distances, so before
     tiling they miss; tiling i and j shrinks the live working set to a
     few tile-wide plane strips and recovers that reuse. *)
  let a = arr "a" [| n; n; n |] and b = arr "b" [| n; n; n |] in
  Array_decl.place [ a; b ];
  let m = n - 1 in
  Dsl.(
    nest ~name:"JACOBI3D"
      ~loops:[ ("k", 2, m); ("j", 2, m); ("i", 2, m) ]
      ~body:
        [
          load b [ v "i" -! i 1; v "j"; v "k" ];
          load b [ v "i" +! i 1; v "j"; v "k" ];
          load b [ v "i"; v "j" -! i 1; v "k" ];
          load b [ v "i"; v "j" +! i 1; v "k" ];
          load b [ v "i"; v "j"; v "k" -! i 1 ];
          load b [ v "i"; v "j"; v "k" +! i 1 ];
          store a [ v "i"; v "j"; v "k" ];
        ]
      ())

let matmul n =
  (* Table 1 lists MATMUL as matrix-by-vector multiplication in a 3-deep
     nest: an outer repetition loop around the classic two-deep kernel. *)
  let y = arr "y" [| n |] and m = arr "m" [| n; n |] and x = arr "x" [| n |] in
  Array_decl.place [ y; m; x ];
  Dsl.(
    nest ~name:"MATMUL"
      ~loops:[ ("r", 1, 4); ("i", 1, n); ("k", 1, n) ]
      ~body:
        [
          load y [ v "i" ];
          load m [ v "i"; v "k" ];
          load x [ v "k" ];
          store y [ v "i" ];
        ]
      ())

let mm n =
  (* Figure 1 of the paper. *)
  let a = arr "a" [| n; n |] and b = arr "b" [| n; n |] and c = arr "c" [| n; n |] in
  Array_decl.place [ a; b; c ];
  Dsl.(
    nest ~name:"MM"
      ~loops:[ ("i", 1, n); ("j", 1, n); ("k", 1, n) ]
      ~body:
        [
          load a [ v "i"; v "j" ];
          load b [ v "i"; v "k" ];
          load c [ v "k"; v "j" ];
          store a [ v "i"; v "j" ];
        ]
      ())

let adi n =
  (* Livermore loop 8 flavour: 2D ADI integration.  Six planes are read
     with a cross-column stencil on za; at large n the combined column
     working set exceeds the cache and the cross-column reuse turns into
     capacity misses (the paper sees 26 % replacement at n = 1000+). *)
  let za = arr "za" [| n; n |] and zr = arr "zr" [| n; n |] in
  let zu = arr "zu" [| n; n |] and zv = arr "zv" [| n; n |] in
  let zz = arr "zz" [| n; n |] and zb = arr "zb" [| n; n |] in
  Array_decl.place [ za; zr; zu; zv; zz; zb ];
  let m = n - 1 in
  Dsl.(
    nest ~name:"ADI"
      ~loops:[ ("k", 2, m); ("j", 2, m) ]
      ~body:
        [
          load za [ v "j" +! i 1; v "k" ];
          load zr [ v "j"; v "k" ];
          load za [ v "j" -! i 1; v "k" ];
          load zu [ v "j"; v "k" ];
          load za [ v "j"; v "k" +! i 1 ];
          load zv [ v "j"; v "k" ];
          load za [ v "j"; v "k" -! i 1 ];
          load zz [ v "j"; v "k" ];
          store zb [ v "j"; v "k" ];
        ]
      ())

(* ------------------------------------------------------------------ *)
(* NAS kernels: conflict-dominated layouts                              *)

let add n =
  (* NAS BT "add": u += rhs over a 4-deep (m, i, j, k) sweep of
     5 x n x n x n solution arrays.  The two arrays have identical shapes,
     so with packed placement their elements collide in the cache when the
     plane size is a multiple of the cache size. *)
  let u = arr "u" [| 5; n; n; n |] and rhs = arr "rhs" [| 5; n; n; n |] in
  Array_decl.place [ u; rhs ];
  Dsl.(
    nest ~name:"ADD"
      ~loops:[ ("k", 1, n); ("j", 1, n); ("i", 1, n); ("m", 1, 5) ]
      ~body:
        [
          load u [ v "m"; v "i"; v "j"; v "k" ];
          load rhs [ v "m"; v "i"; v "j"; v "k" ];
          store u [ v "m"; v "i"; v "j"; v "k" ];
        ]
      ())

let btrix n =
  (* NAS BTRIX, backward block sweep: the 5 x 5 block structure is folded
     into the leading dimensions; the j-plane stride is a power of two
     (n = 128 in NASKER), so successive k accesses conflict. *)
  let s = arr "s" [| n; n; 5 |] and a = arr "a" [| n; n; 5 |] in
  let b = arr "b" [| n; n; 5 |] in
  Array_decl.place [ s; a; b ];
  let m = n - 1 in
  Dsl.(
    nest ~name:"BTRIX"
      ~loops:[ ("m", 1, 5); ("j", 1, n); ("k", 1, m) ]
      ~body:
        [
          load s [ v "j"; v "k" +! i 1; v "m" ];
          load a [ v "j"; v "k"; v "m" ];
          load b [ v "j"; v "k"; v "m" ];
          load s [ v "j"; v "k"; v "m" ];
          store s [ v "j"; v "k"; v "m" ];
        ]
      ())

let vpenta_arrays n =
  (* NASKER VPENTA: many same-shape (n x n, n = 128) planes; packed
     placement puts all of them a multiple of the cache size apart, the
     canonical cross-interference pathology. *)
  let names = [ "a"; "b"; "c"; "d"; "e"; "f"; "x"; "y" ] in
  let arrays = List.map (fun nm -> arr nm [| n; n |]) names in
  Array_decl.place arrays;
  arrays

let vpenta1 n =
  match vpenta_arrays n with
  | [ a; b; c; d; e; f; x; _y ] as arrays ->
      Dsl.(
        nest ~name:"VPENTA1" ~arrays
          ~loops:[ ("j", 1, n); ("i", 3, n - 2) ]
          ~body:
            [
              load a [ v "i"; v "j" ];
              load b [ v "i"; v "j" ];
              load c [ v "i"; v "j" ];
              load d [ v "i"; v "j" ];
              load e [ v "i"; v "j" ];
              load f [ v "i"; v "j" ];
              store x [ v "i"; v "j" ];
            ]
          ())
  | _ -> assert false

let vpenta2 n =
  match vpenta_arrays n with
  | [ _a; _b; _c; d; e; f; x; y ] as arrays ->
      Dsl.(
        nest ~name:"VPENTA2" ~arrays
          ~loops:[ ("j", 1, n); ("i", 1, n - 2) ]
          ~body:
            [
              load f [ v "i"; v "j" ];
              load d [ v "i"; v "j" ];
              load x [ v "i" +! i 1; v "j" ];
              load e [ v "i"; v "j" ];
              load x [ v "i" +! i 2; v "j" ];
              store y [ v "i"; v "j" ];
            ]
          ())
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* BIHAR FFT stand-ins: butterfly passes over power-of-two planes.      *)

let butterfly ~name ~half_stride n =
  (* One radix-2 pass over an n x n plane of complex pairs, repeated by an
     outer pass loop: reads two strided halves, writes a packed result.
     [half_stride] distinguishes the forward (gather) and backward
     (scatter) directions of the transform. *)
  let x = arr "x" [| n; n |] and y = arr "y" [| n; n |] in
  Array_decl.place [ x; y ];
  let half = n / 2 in
  Dsl.(
    let gather =
      [
        load x [ (2 *! v "k") -! i 1; v "j" ];
        load x [ 2 *! v "k"; v "j" ];
        store y [ v "k"; v "j" ];
        store y [ v "k" +! i half; v "j" ];
      ]
    and scatter =
      [
        load x [ v "k"; v "j" ];
        load x [ v "k" +! i half; v "j" ];
        store y [ (2 *! v "k") -! i 1; v "j" ];
        store y [ 2 *! v "k"; v "j" ];
      ]
    in
    nest ~name
      ~loops:[ ("p", 1, 4); ("j", 1, n); ("k", 1, half) ]
      ~body:(if half_stride then gather else scatter)
      ())

let radix4 ~name ~forward n =
  (* A radix-4 flavoured pass: quarter-plane strides instead of halves,
     standing in for the general-radix real transforms (DRADBG / DRADFG). *)
  let c = arr "c" [| n; n |] and ch = arr "ch" [| n; n |] in
  Array_decl.place [ c; ch ];
  let q = n / 4 in
  Dsl.(
    let fwd =
      [
        load c [ v "k"; v "j" ];
        load c [ v "k" +! i q; v "j" ];
        load c [ v "k" +! i (2 * q); v "j" ];
        load c [ v "k" +! i (3 * q); v "j" ];
        store ch [ (4 *! v "k") -! i 3; v "j" ];
        store ch [ (4 *! v "k") -! i 1; v "j" ];
      ]
    and bwd =
      [
        load c [ (4 *! v "k") -! i 3; v "j" ];
        load c [ (4 *! v "k") -! i 2; v "j" ];
        load c [ (4 *! v "k") -! i 1; v "j" ];
        load c [ 4 *! v "k"; v "j" ];
        store ch [ v "k"; v "j" ];
        store ch [ v "k" +! i (2 * q); v "j" ];
      ]
    in
    nest ~name
      ~loops:[ ("p", 1, 4); ("j", 1, n); ("k", 1, q) ]
      ~body:(if forward then fwd else bwd)
      ())

let dradfg ~name ~loop2 n =
  (* Forward real transform: mixed unit/quarter strides with a plane-offset
     twiddle read; loop 2 shifts the write pattern to the odd positions. *)
  let c = arr "c" [| n; n |] and ch = arr "ch" [| n; n |] in
  let wa = arr "wa" [| n |] in
  Array_decl.place [ c; ch; wa ];
  let q = n / 4 in
  Dsl.(
    let body1 =
      [
        load c [ v "k"; v "j" ];
        load c [ v "k" +! i (2 * q); v "j" ];
        load wa [ v "k" ];
        store ch [ (2 *! v "k") -! i 1; v "j" ];
        store ch [ 2 *! v "k"; v "j" ];
      ]
    and body2 =
      [
        load c [ (2 *! v "k") -! i 1; v "j" ];
        load c [ (2 *! v "k") +! i (2 * q); v "j" ];
        load wa [ v "k" +! i q ];
        store ch [ (4 *! v "k") -! i 2; v "j" ];
        store ch [ 4 *! v "k"; v "j" ];
      ]
    in
    nest ~name
      ~loops:[ ("p", 1, 4); ("j", 1, n); ("k", 1, q) ]
      ~body:(if loop2 then body2 else body1)
      ())

let dpssb n = butterfly ~name:"DPSSB" ~half_stride:false n
let dpssf n = butterfly ~name:"DPSSF" ~half_stride:true n
let dradbg1 n = radix4 ~name:"DRADBG1" ~forward:false n
let dradbg2 n = radix4 ~name:"DRADBG2" ~forward:true n
let dradfg1 n = dradfg ~name:"DRADFG1" ~loop2:false n
let dradfg2 n = dradfg ~name:"DRADFG2" ~loop2:true n

(* ------------------------------------------------------------------ *)
(* Extra workloads beyond the paper's table 1                           *)

let sor n =
  (* 2D successive over-relaxation, 5-point stencil: the classic tiling
     workload of the CME literature (Ghosh et al. use it alongside MM).
     Three rows are live at once; once 3n elements exceed the cache the
     vertical reuse turns into capacity/conflict misses, which tiling the
     j loop restores. *)
  let a = arr "a" [| n; n |] in
  Array_decl.place [ a ];
  let m = n - 1 in
  Dsl.(
    nest ~name:"SOR"
      ~loops:[ ("i", 2, m); ("j", 2, m) ]
      ~body:
        [
          load a [ v "i" -! i 1; v "j" ];
          load a [ v "i" +! i 1; v "j" ];
          load a [ v "i"; v "j" -! i 1 ];
          load a [ v "i"; v "j" +! i 1 ];
          load a [ v "i"; v "j" ];
          store a [ v "i"; v "j" ];
        ]
      ())

(* ------------------------------------------------------------------ *)
(* Triangular kernels: affine loop bounds (section 2.3 of the paper).   *)

let lu n =
  (* Right-looking LU elimination updates, the canonical triangular nest:
     both inner loops start past the pivot row/column, so each outer step
     shrinks the trailing submatrix being updated. *)
  let a = arr "a" [| n; n |] in
  Array_decl.place [ a ];
  Dsl.(
    nest_affine ~name:"LU"
      ~loops:
        [ ("k", i 1, i (n - 1));
          ("i", v "k" +! i 1, i n);
          ("j", v "k" +! i 1, i n) ]
      ~body:
        [
          load a [ v "i"; v "k" ];
          load a [ v "k"; v "j" ];
          load a [ v "i"; v "j" ];
          store a [ v "i"; v "j" ];
        ]
      ())

let cholesky n =
  (* Cholesky trailing-matrix updates: a two-level dependence chain
     (j starts past k, i starts at j), exercising trapezoidal regions. *)
  let a = arr "a" [| n; n |] in
  Array_decl.place [ a ];
  Dsl.(
    nest_affine ~name:"CHOLESKY"
      ~loops:
        [ ("k", i 1, i (n - 1));
          ("j", v "k" +! i 1, i n);
          ("i", v "j", i n) ]
      ~body:
        [
          load a [ v "i"; v "k" ];
          load a [ v "j"; v "k" ];
          load a [ v "i"; v "j" ];
          store a [ v "i"; v "j" ];
        ]
      ())

let syrk n =
  (* Symmetric rank-k update on the lower triangle: only j <= i is
     touched, halving the iteration space of MM. *)
  let c = arr "c" [| n; n |] and a = arr "a" [| n; n |] in
  Array_decl.place [ c; a ];
  Dsl.(
    nest_affine ~name:"SYRK"
      ~loops:[ ("i", i 1, i n); ("j", i 1, v "i"); ("k", i 1, i n) ]
      ~body:
        [
          load c [ v "i"; v "j" ];
          load a [ v "i"; v "k" ];
          load a [ v "j"; v "k" ];
          store c [ v "i"; v "j" ];
        ]
      ())

(* ------------------------------------------------------------------ *)

type spec = {
  name : string;
  description : string;
  loops : int;
  sizes : int list;
  build : int -> Nest.t;
}

let all =
  [
    { name = "T2D"; description = "2D matrix transposition"; loops = 2;
      sizes = [ 100; 500; 2000 ]; build = t2d };
    { name = "T3DJIK"; description = "3D matrix transposition a(k,j,i)=b(j,i,k)";
      loops = 3; sizes = [ 20; 100; 200 ]; build = t3djik };
    { name = "T3DIKJ"; description = "3D matrix transposition a(k,j,i)=b(i,k,j)";
      loops = 3; sizes = [ 20; 100; 200 ]; build = t3dikj };
    { name = "JACOBI3D"; description = "partial differential equations solver";
      loops = 3; sizes = [ 20; 100; 200 ]; build = jacobi3d };
    { name = "MATMUL"; description = "matrix by vector multiplication";
      loops = 3; sizes = [ 100; 500; 2000 ]; build = matmul };
    { name = "MM"; description = "matrix multiplication (Livermore)";
      loops = 3; sizes = [ 100; 500; 2000 ]; build = mm };
    { name = "ADI"; description = "2D ADI integration (Livermore)";
      loops = 2; sizes = [ 100; 500; 2000 ]; build = adi };
    { name = "ADD"; description = "addition of update to a matrix (NAS)";
      loops = 4; sizes = [ 32 ]; build = add };
    { name = "BTRIX"; description = "block tri-diagonal solver, backward sweep (NAS)";
      loops = 3; sizes = [ 128 ]; build = btrix };
    { name = "VPENTA1"; description = "invert 3 pentadiagonals, loop 1 (NAS)";
      loops = 2; sizes = [ 128 ]; build = vpenta1 };
    { name = "VPENTA2"; description = "invert 3 pentadiagonals, loop 2 (NAS)";
      loops = 2; sizes = [ 128 ]; build = vpenta2 };
    { name = "DPSSB"; description = "inverse transform of a complex periodic sequence (BIHAR)";
      loops = 3; sizes = [ 128 ]; build = dpssb };
    { name = "DPSSF"; description = "forward transform of a complex periodic sequence (BIHAR)";
      loops = 3; sizes = [ 128 ]; build = dpssf };
    { name = "DRADBG1"; description = "backward transform of a real coefficient array, loop 1 (BIHAR)";
      loops = 3; sizes = [ 128 ]; build = dradbg1 };
    { name = "DRADBG2"; description = "backward transform of a real coefficient array, loop 2 (BIHAR)";
      loops = 3; sizes = [ 128 ]; build = dradbg2 };
    { name = "DRADFG1"; description = "forward transform of a real periodic sequence, loop 1 (BIHAR)";
      loops = 3; sizes = [ 128 ]; build = dradfg1 };
    { name = "DRADFG2"; description = "forward transform of a real periodic sequence, loop 2 (BIHAR)";
      loops = 3; sizes = [ 128 ]; build = dradfg2 };
  ]

let extras =
  [
    { name = "SOR"; description = "2D successive over-relaxation, 5-point stencil";
      loops = 2; sizes = [ 100; 500; 2000 ]; build = sor };
    { name = "LU"; description = "LU elimination updates (triangular bounds)";
      loops = 3; sizes = [ 16; 64; 200 ]; build = lu };
    { name = "CHOLESKY"; description = "Cholesky trailing-matrix updates (triangular bounds)";
      loops = 3; sizes = [ 16; 64; 200 ]; build = cholesky };
    { name = "SYRK"; description = "symmetric rank-k update, lower triangle";
      loops = 3; sizes = [ 16; 64; 200 ]; build = syrk };
  ]

let rotation = all @ extras

let find name =
  let target = String.lowercase_ascii name in
  List.find (fun s -> String.lowercase_ascii s.name = target) rotation
