(** Random affine kernels inside the CME framework's domain.

    Generates perfectly nested loops over a handful of arrays whose
    references are uniformly generated (identical linear subscripts per
    array, constant offsets differ) — the class of programs both the paper
    and this library analyse.  Used by the differential fuzzer
    ({!Tiling_fuzz}) to cross-validate the solver against the simulator,
    and useful for benchmarking tile search on programs with no hand-tuned
    structure. *)

type spec = {
  depth : int;          (** loop nesting depth, >= 1 *)
  extents : int array;  (** per-loop trip count, one entry per loop *)
  steps : int array;    (** per-loop step, one entry per loop, >= 1 *)
  narrays : int;        (** number of arrays, >= 1 *)
  nrefs : int;          (** number of references, >= 1 *)
  max_offset : int;     (** subscript offsets drawn from [-max..max] *)
  max_coeff : int;      (** subscript coefficients drawn from [1..max] *)
  write_ratio : float;  (** probability a reference is a store, in [0,1] *)
  align : int;          (** array base alignment in bytes (1 = packed) *)
  tri_ratio : float;
      (** probability each non-outermost unit-step loop couples a bound to
          an outer variable (triangular/trapezoidal shape), in [0,1].
          With probability 1/2 the lower bound becomes [v_q + c0]
          ([c0 in {0,1}], the upper bound shifted so the window keeps the
          loop's trip count at [v_q]'s maximum), else the upper bound
          becomes [v_q].  Both choices keep every dynamic range nonempty.
          [0.] draws nothing and reproduces the historical rectangular
          stream byte for byte. *)
}

val default_spec : spec
(** depth 3, trip count 12 per loop, unit steps and coefficients, 2 arrays,
    4 references, offsets within 1, balanced loads/stores, packed
    placement, rectangular bounds ([tri_ratio = 0.]). *)

val uniform : ?spec:spec -> extent:int -> unit -> spec
(** [uniform ~extent ()] is [spec] with every loop's trip count set to
    [extent] and unit steps — the shape of the pre-fuzzing generator. *)

val generate : ?spec:spec -> seed:int -> unit -> Tiling_ir.Nest.t
(** A fresh nest (arrays placed consecutively, each base rounded up to
    [spec.align]).  Deterministic in [seed].
    @raise Invalid_argument on a malformed spec. *)
