open Tiling_ir

type spec = {
  depth : int;
  extents : int array;
  steps : int array;
  narrays : int;
  nrefs : int;
  max_offset : int;
  max_coeff : int;
  write_ratio : float;
  align : int;
  tri_ratio : float;
}

let default_spec =
  {
    depth = 3;
    extents = [| 12; 12; 12 |];
    steps = [| 1; 1; 1 |];
    narrays = 2;
    nrefs = 4;
    max_offset = 1;
    max_coeff = 1;
    write_ratio = 0.5;
    align = 1;
    tri_ratio = 0.;
  }

let uniform ?(spec = default_spec) ~extent () =
  {
    spec with
    extents = Array.make spec.depth extent;
    steps = Array.make spec.depth 1;
  }

let validate spec =
  if spec.depth < 1 then invalid_arg "Random_kernel: depth must be >= 1";
  if Array.length spec.extents <> spec.depth then
    invalid_arg "Random_kernel: extents must have one entry per loop";
  if Array.length spec.steps <> spec.depth then
    invalid_arg "Random_kernel: steps must have one entry per loop";
  Array.iter
    (fun e -> if e < 1 then invalid_arg "Random_kernel: extents must be >= 1")
    spec.extents;
  Array.iter
    (fun s -> if s < 1 then invalid_arg "Random_kernel: steps must be >= 1")
    spec.steps;
  if spec.narrays < 1 then invalid_arg "Random_kernel: narrays must be >= 1";
  if spec.nrefs < 1 then invalid_arg "Random_kernel: nrefs must be >= 1";
  if spec.max_offset < 0 then invalid_arg "Random_kernel: max_offset must be >= 0";
  if spec.max_coeff < 1 then invalid_arg "Random_kernel: max_coeff must be >= 1";
  if not (spec.write_ratio >= 0. && spec.write_ratio <= 1.) then
    invalid_arg "Random_kernel: write_ratio must lie in [0, 1]";
  if spec.align < 1 then invalid_arg "Random_kernel: align must be >= 1";
  if not (spec.tri_ratio >= 0. && spec.tri_ratio <= 1.) then
    invalid_arg "Random_kernel: tri_ratio must lie in [0, 1]"

let generate ?(spec = default_spec) ~seed () =
  validate spec;
  let rng = Tiling_util.Prng.create ~seed in
  let var_names = Array.init spec.depth (fun l -> Printf.sprintf "v%d" l) in
  (* Every loop starts at [1 + max_offset] so any subscript [c*v + off] with
     [c >= 1] stays 1-based; the upper bound realises the requested trip
     count under the requested step. *)
  let lo = 1 + spec.max_offset in
  let his =
    Array.init spec.depth (fun d -> lo + ((spec.extents.(d) - 1) * spec.steps.(d)))
  in
  (* Triangular/trapezoidal shape choices.  Each non-outermost unit-step
     loop may, with probability [tri_ratio], couple one bound to a random
     outer variable [q]: either [lo = v_q + c0] (the upper bound then
     shifts so the window keeps the requested trip count at [v_q]'s top —
     nonempty for every outer value), or [hi = v_q] (nonempty because all
     loops share the same static lower bound).  Nothing is drawn when
     [tri_ratio = 0], so rectangular streams are byte-identical to
     historical ones. *)
  let tri = Array.make spec.depth `Rect in
  if spec.tri_ratio > 0. then
    for l = 1 to spec.depth - 1 do
      if spec.steps.(l) = 1 && Tiling_util.Prng.bernoulli rng ~p:spec.tri_ratio
      then begin
        let q = Tiling_util.Prng.int rng l in
        if Tiling_util.Prng.bool rng then
          tri.(l) <- `Lo_dep (q, Tiling_util.Prng.int rng 2)
        else tri.(l) <- `Hi_dep q
      end
    done;
  (* Effective static upper bounds, outermost first (dependence chains
     resolve because [q < l]); arrays are sized against these. *)
  let shi = Array.make spec.depth 0 in
  for l = 0 to spec.depth - 1 do
    shi.(l) <-
      (match tri.(l) with
      | `Rect -> his.(l)
      | `Lo_dep (q, c0) -> shi.(q) + c0 + spec.extents.(l) - 1
      | `Hi_dep q -> shi.(q))
  done;
  let loops =
    Array.to_list
      (Array.mapi
         (fun d name ->
           match tri.(d) with
           | `Rect -> (name, Dsl.i lo, Dsl.i his.(d))
           | `Lo_dep (q, c0) ->
               (name, Dsl.(v var_names.(q) +! i c0), Dsl.i shi.(d))
           | `Hi_dep q -> (name, Dsl.i lo, Dsl.v var_names.(q)))
         var_names)
  in
  let steps =
    Array.to_list (Array.mapi (fun d v -> (v, spec.steps.(d))) var_names)
  in
  (* One subscript permutation and one coefficient vector per array: all
     references to an array share the linear part (uniformly generated),
     only the constant offsets differ. *)
  let shapes =
    List.init spec.narrays (fun _ ->
        let order = Array.init spec.depth Fun.id in
        Tiling_util.Prng.shuffle rng order;
        let coeffs =
          Array.init spec.depth (fun _ ->
              if spec.max_coeff = 1 then 1
              else Tiling_util.Prng.int_in rng ~lo:1 ~hi:spec.max_coeff)
        in
        (order, coeffs))
  in
  let arrays =
    List.mapi
      (fun i (order, coeffs) ->
        let dims =
          Array.init spec.depth (fun d ->
              (coeffs.(d) * shi.(order.(d))) + spec.max_offset)
        in
        Array_decl.create (Printf.sprintf "arr%d" i) dims)
      shapes
  in
  Array_decl.place ~align:spec.align arrays;
  let body =
    List.init spec.nrefs (fun _ ->
        let ai = Tiling_util.Prng.int rng spec.narrays in
        let a = List.nth arrays ai in
        let order, coeffs = List.nth shapes ai in
        let subs =
          List.init spec.depth (fun d ->
              let off =
                if spec.max_offset = 0 then 0
                else
                  Tiling_util.Prng.int_in rng ~lo:(-spec.max_offset)
                    ~hi:spec.max_offset
              in
              Dsl.(coeffs.(d) *! v var_names.(order.(d)) +! i off))
        in
        if Tiling_util.Prng.bernoulli rng ~p:spec.write_ratio then
          Dsl.store a subs
        else Dsl.load a subs)
  in
  Dsl.nest_affine ~name:(Printf.sprintf "random_%d" seed) ~loops ~steps ~body ()
