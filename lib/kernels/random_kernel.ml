open Tiling_ir

type spec = {
  depth : int;
  extents : int array;
  steps : int array;
  narrays : int;
  nrefs : int;
  max_offset : int;
  max_coeff : int;
  write_ratio : float;
  align : int;
}

let default_spec =
  {
    depth = 3;
    extents = [| 12; 12; 12 |];
    steps = [| 1; 1; 1 |];
    narrays = 2;
    nrefs = 4;
    max_offset = 1;
    max_coeff = 1;
    write_ratio = 0.5;
    align = 1;
  }

let uniform ?(spec = default_spec) ~extent () =
  {
    spec with
    extents = Array.make spec.depth extent;
    steps = Array.make spec.depth 1;
  }

let validate spec =
  if spec.depth < 1 then invalid_arg "Random_kernel: depth must be >= 1";
  if Array.length spec.extents <> spec.depth then
    invalid_arg "Random_kernel: extents must have one entry per loop";
  if Array.length spec.steps <> spec.depth then
    invalid_arg "Random_kernel: steps must have one entry per loop";
  Array.iter
    (fun e -> if e < 1 then invalid_arg "Random_kernel: extents must be >= 1")
    spec.extents;
  Array.iter
    (fun s -> if s < 1 then invalid_arg "Random_kernel: steps must be >= 1")
    spec.steps;
  if spec.narrays < 1 then invalid_arg "Random_kernel: narrays must be >= 1";
  if spec.nrefs < 1 then invalid_arg "Random_kernel: nrefs must be >= 1";
  if spec.max_offset < 0 then invalid_arg "Random_kernel: max_offset must be >= 0";
  if spec.max_coeff < 1 then invalid_arg "Random_kernel: max_coeff must be >= 1";
  if not (spec.write_ratio >= 0. && spec.write_ratio <= 1.) then
    invalid_arg "Random_kernel: write_ratio must lie in [0, 1]";
  if spec.align < 1 then invalid_arg "Random_kernel: align must be >= 1"

let generate ?(spec = default_spec) ~seed () =
  validate spec;
  let rng = Tiling_util.Prng.create ~seed in
  let var_names = Array.init spec.depth (fun l -> Printf.sprintf "v%d" l) in
  (* Every loop starts at [1 + max_offset] so any subscript [c*v + off] with
     [c >= 1] stays 1-based; the upper bound realises the requested trip
     count under the requested step. *)
  let lo = 1 + spec.max_offset in
  let his =
    Array.init spec.depth (fun d -> lo + ((spec.extents.(d) - 1) * spec.steps.(d)))
  in
  let loops =
    Array.to_list (Array.mapi (fun d v -> (v, lo, his.(d))) var_names)
  in
  let steps =
    Array.to_list (Array.mapi (fun d v -> (v, spec.steps.(d))) var_names)
  in
  (* One subscript permutation and one coefficient vector per array: all
     references to an array share the linear part (uniformly generated),
     only the constant offsets differ. *)
  let shapes =
    List.init spec.narrays (fun _ ->
        let order = Array.init spec.depth Fun.id in
        Tiling_util.Prng.shuffle rng order;
        let coeffs =
          Array.init spec.depth (fun _ ->
              if spec.max_coeff = 1 then 1
              else Tiling_util.Prng.int_in rng ~lo:1 ~hi:spec.max_coeff)
        in
        (order, coeffs))
  in
  let arrays =
    List.mapi
      (fun i (order, coeffs) ->
        let dims =
          Array.init spec.depth (fun d ->
              (coeffs.(d) * his.(order.(d))) + spec.max_offset)
        in
        Array_decl.create (Printf.sprintf "arr%d" i) dims)
      shapes
  in
  Array_decl.place ~align:spec.align arrays;
  let body =
    List.init spec.nrefs (fun _ ->
        let ai = Tiling_util.Prng.int rng spec.narrays in
        let a = List.nth arrays ai in
        let order, coeffs = List.nth shapes ai in
        let subs =
          List.init spec.depth (fun d ->
              let off =
                if spec.max_offset = 0 then 0
                else
                  Tiling_util.Prng.int_in rng ~lo:(-spec.max_offset)
                    ~hi:spec.max_offset
              in
              Dsl.(coeffs.(d) *! v var_names.(order.(d)) +! i off))
        in
        if Tiling_util.Prng.bernoulli rng ~p:spec.write_ratio then
          Dsl.store a subs
        else Dsl.load a subs)
  in
  Dsl.nest ~name:(Printf.sprintf "random_%d" seed) ~loops ~steps ~body ()
