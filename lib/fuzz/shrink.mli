(** Delta-debugging minimizer for oracle mismatches.

    Greedy descent over spec and geometry reductions: drop references and
    arrays, shrink extents, offsets, coefficients and steps toward
    {!Tiling_kernels.Random_kernel.default_spec}'s trivial values, and
    halve the cache geometry.  A reduction is kept iff the reduced case
    still produces a fallback-free {!Oracle.Mismatch} — any mismatch, not
    necessarily the original one: every fixpoint is a minimal failing
    input, which is what a bug report needs.

    Kernel regeneration is seed-driven, so a spec reduction yields a
    *different* (smaller) kernel; this is the standard trade-off of
    shrinking through a generator and is why the corpus stores the seed
    and the full spec. *)

val minimize :
  ?max_checks:int ->
  ?mode:[ `Exact | `Closed_form ] ->
  Case.t ->
  Case.t * int
(** [minimize case] is [(smallest, checks)] where [checks] counts the
    oracle runs spent (also accumulated in the [fuzz.shrink.steps]
    metric).  [case] itself need not mismatch; then it is returned
    unchanged with [checks = 0].  Default [max_checks] is 400.  [mode] is
    the oracle mode reductions are re-checked under (default [`Exact]). *)
