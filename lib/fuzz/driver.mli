(** The fuzzing loop: draw random cases, run the oracle, shrink failures.

    Trials are deterministic in [(seed, index)] — every trial derives its
    own generator from the master seed and its index, so a run is
    reproducible regardless of how many trials a time budget allowed, and
    any single trial can be replayed in isolation.

    Observability: the run emits [fuzz.trials], [fuzz.agree],
    [fuzz.inconclusive] and [fuzz.mismatches] counters (plus
    [fuzz.shrink.steps] from the shrinker) and wraps itself in a
    [fuzz.run] span. *)

type knobs = {
  max_depth : int;    (** loop depth drawn from [1, max_depth] *)
  min_extent : int;   (** per-loop trip count lower bound *)
  max_extent : int;   (** per-loop trip count upper bound *)
  max_narrays : int;  (** arrays drawn from [1, max_narrays] *)
  max_nrefs : int;    (** references drawn from [1, max_nrefs] *)
  max_offset : int;   (** subscript offset bound drawn from [0, max_offset] *)
  max_coeff : int;    (** subscript coefficient bound drawn from [1, max_coeff] *)
  max_step : int;     (** loop step drawn from [1, max_step] *)
  max_sets : int;     (** sets = 2^k up to this (power of two); 1 = fully assoc. *)
  max_assoc : int;    (** associativity = 2^k up to this (power of two) *)
  lines : int list;   (** line sizes to draw from (powers of two) *)
  max_tri_pct : int;
      (** [tri_ratio] drawn from [0, max_tri_pct] percent; [0] (the
          default) draws nothing, keeping rectangular case streams
          byte-identical to pre-triangular runs *)
}

val default_knobs : knobs
(** depth <= 3, extents 2..10, <= 3 arrays, <= 5 refs, offsets <= 3,
    coefficients <= 3, steps <= 3, sets <= 32, assoc <= 8, lines
    {8, 16, 32, 64} — sweeping direct-mapped through fully-associative
    geometries.  Rectangular only ([max_tri_pct = 0]); pass [tri=...] to
    {!knobs_of_string} to mix in triangular shapes. *)

val knobs_of_string : string -> (knobs, string) result
(** Comma-separated [key=value] overrides of {!default_knobs}: [depth],
    [extent] (max trip count), [arrays], [refs], [offset], [coeff],
    [step], [sets], [assoc], [line] (pin a single line size), [tri]
    (max triangular probability, percent 0-100).  Example:
    ["depth=2,extent=8,line=32,tri=60"]. *)

val draw_case : knobs -> Tiling_util.Prng.t -> Case.t
(** One random case under the knobs (exposed for tests).  Array bases are
    aligned to the drawn line size, keeping distinct arrays off shared
    cache lines — the regime the CME reuse model describes. *)

type mismatch = {
  trial : int;              (** trial index that found it *)
  raw : Case.t;             (** as drawn *)
  shrunk : Case.t;          (** after delta-debugging *)
  shrink_checks : int;      (** oracle runs the shrinker spent *)
  result : Oracle.result;   (** oracle output for [shrunk] *)
}

type outcome = {
  trials_run : int;
  agreed : int;
  inconclusive : int;       (** disagreements masked by solver fallbacks *)
  fallback_trials : int;    (** trials with >= 1 fallback (any verdict) *)
  mismatches : mismatch list;
  accesses : int;           (** total accesses compared across all trials *)
  wall_s : float;
}

val run :
  ?knobs:knobs ->
  ?time_budget:float ->
  ?on_trial:(int -> Case.t -> Oracle.result -> unit) ->
  ?domains:int ->
  ?mode:[ `Exact | `Closed_form ] ->
  trials:int ->
  seed:int ->
  unit ->
  outcome
(** Runs up to [trials] trials (stopping early once [time_budget] seconds
    of wall clock have elapsed, if given) and minimizes every mismatch.
    [on_trial] observes each trial as it completes (progress reporting).

    [domains] (default 1) fans the oracle checks out over the domain pool
    in batches of [domains * 4] trials; accounting, shrinking and
    [on_trial] still run sequentially in trial-index order, so the outcome
    is byte-identical to a sequential run.  The time budget is tested
    between batches rather than between trials.

    [mode] (default [`Exact]) is passed through to {!Oracle.check} and the
    shrinker, so a [`Closed_form] run differentially fuzzes the
    extrapolating solver against the simulator. *)

val load_corpus : string -> (Case.t list, string) result
(** Parses a corpus file: one {!Case.to_string} line per entry, blank
    lines and [#] comments ignored.  The error names the offending line
    number. *)
