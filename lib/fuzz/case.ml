open Tiling_kernels

type t = {
  spec : Random_kernel.spec;
  seed : int;
  sets : int;
  assoc : int;
  line : int;
}

let cache t =
  Tiling_cache.Config.make ~size:(t.sets * t.assoc * t.line) ~line:t.line
    ~assoc:t.assoc ()

let nest t = Random_kernel.generate ~spec:t.spec ~seed:t.seed ()

let points t = Tiling_ir.Nest.trip_count (nest t)

let ints_to_string a =
  String.concat "," (List.map string_of_int (Array.to_list a))

let to_string t =
  let s = t.spec in
  Printf.sprintf
    "seed=%d depth=%d extents=%s steps=%s narrays=%d nrefs=%d max_offset=%d \
     max_coeff=%d write_ratio=%g align=%d tri=%g sets=%d assoc=%d line=%d"
    t.seed s.Random_kernel.depth
    (ints_to_string s.Random_kernel.extents)
    (ints_to_string s.Random_kernel.steps)
    s.Random_kernel.narrays s.Random_kernel.nrefs s.Random_kernel.max_offset
    s.Random_kernel.max_coeff s.Random_kernel.write_ratio s.Random_kernel.align
    s.Random_kernel.tri_ratio t.sets t.assoc t.line

let pp ppf t = Fmt.string ppf (to_string t)

let of_string line =
  let tbl = Hashtbl.create 16 in
  let malformed = ref None in
  String.split_on_char ' ' line
  |> List.iter (fun tok ->
         if tok <> "" then
           match String.index_opt tok '=' with
           | None -> malformed := Some (Printf.sprintf "token %S has no '='" tok)
           | Some i ->
               Hashtbl.replace tbl
                 (String.sub tok 0 i)
                 (String.sub tok (i + 1) (String.length tok - i - 1)));
  match !malformed with
  | Some m -> Error m
  | None -> (
      let int k =
        match Hashtbl.find_opt tbl k with
        | None -> Error (Printf.sprintf "missing field %s" k)
        | Some v -> (
            match int_of_string_opt v with
            | Some i -> Ok i
            | None -> Error (Printf.sprintf "field %s: bad int %S" k v))
      in
      let ints k =
        match Hashtbl.find_opt tbl k with
        | None -> Error (Printf.sprintf "missing field %s" k)
        | Some v -> (
            let parts = String.split_on_char ',' v in
            match
              List.map int_of_string_opt parts |> fun l ->
              if List.exists Option.is_none l then None
              else Some (Array.of_list (List.map Option.get l))
            with
            | Some a -> Ok a
            | None -> Error (Printf.sprintf "field %s: bad int list %S" k v))
      in
      let float_def k d =
        match Hashtbl.find_opt tbl k with
        | None -> Ok d
        | Some v -> (
            match float_of_string_opt v with
            | Some f -> Ok f
            | None -> Error (Printf.sprintf "field %s: bad float %S" k v))
      in
      let ( let* ) = Result.bind in
      let* seed = int "seed" in
      let* depth = int "depth" in
      let* extents = ints "extents" in
      let* steps = ints "steps" in
      let* narrays = int "narrays" in
      let* nrefs = int "nrefs" in
      let* max_offset = int "max_offset" in
      let* max_coeff = int "max_coeff" in
      let* write_ratio = float_def "write_ratio" 0.5 in
      (* absent in pre-triangular corpora: default keeps old lines valid *)
      let* tri_ratio = float_def "tri" 0. in
      let* sets = int "sets" in
      let* assoc = int "assoc" in
      let* line = int "line" in
      let* align =
        match Hashtbl.find_opt tbl "align" with
        | None -> Ok line
        | Some _ -> int "align"
      in
      let spec =
        {
          Random_kernel.depth;
          extents;
          steps;
          narrays;
          nrefs;
          max_offset;
          max_coeff;
          write_ratio;
          align;
          tri_ratio;
        }
      in
      let case = { spec; seed; sets; assoc; line } in
      (* Surface malformed specs/geometries as parse errors, not exceptions
         deep inside a replay. *)
      match cache case with
      | (_ : Tiling_cache.Config.t) -> (
          match nest case with
          | (_ : Tiling_ir.Nest.t) -> Ok case
          | exception Invalid_argument m -> Error m)
      | exception Invalid_argument m -> Error m)
