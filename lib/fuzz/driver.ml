open Tiling_util
open Tiling_kernels

let log_src = Logs.Src.create "tiling.fuzz" ~doc:"Differential fuzzer"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Metrics = Tiling_obs.Metrics

let m_trials = Metrics.counter "fuzz.trials"
let m_agree = Metrics.counter "fuzz.agree"
let m_inconclusive = Metrics.counter "fuzz.inconclusive"
let m_mismatches = Metrics.counter "fuzz.mismatches"

type knobs = {
  max_depth : int;
  min_extent : int;
  max_extent : int;
  max_narrays : int;
  max_nrefs : int;
  max_offset : int;
  max_coeff : int;
  max_step : int;
  max_sets : int;
  max_assoc : int;
  lines : int list;
  max_tri_pct : int;
}

let default_knobs =
  {
    max_depth = 3;
    min_extent = 2;
    max_extent = 10;
    max_narrays = 3;
    max_nrefs = 5;
    max_offset = 3;
    max_coeff = 3;
    max_step = 3;
    max_sets = 32;
    max_assoc = 8;
    lines = [ 8; 16; 32; 64 ];
    max_tri_pct = 0;
  }

let knobs_of_string s =
  let ( let* ) = Result.bind in
  let pos_pow2 k v =
    if Intmath.is_pow2 v then Ok v
    else Error (Printf.sprintf "%s must be a positive power of two, got %d" k v)
  in
  String.split_on_char ',' s
  |> List.fold_left
       (fun acc tok ->
         let* k = acc in
         if tok = "" then Ok k
         else
           match String.index_opt tok '=' with
           | None -> Error (Printf.sprintf "override %S has no '='" tok)
           | Some i -> (
               let key = String.sub tok 0 i in
               let v = String.sub tok (i + 1) (String.length tok - i - 1) in
               match int_of_string_opt v with
               | None -> Error (Printf.sprintf "override %s: bad int %S" key v)
               | Some v -> (
                   let pos name =
                     if v >= 1 then Ok v
                     else Error (Printf.sprintf "%s must be >= 1" name)
                   in
                   match key with
                   | "depth" ->
                       let* v = pos "depth" in
                       Ok { k with max_depth = v }
                   | "extent" ->
                       let* v = pos "extent" in
                       Ok { k with max_extent = v; min_extent = min k.min_extent v }
                   | "arrays" ->
                       let* v = pos "arrays" in
                       Ok { k with max_narrays = v }
                   | "refs" ->
                       let* v = pos "refs" in
                       Ok { k with max_nrefs = v }
                   | "offset" ->
                       if v >= 0 then Ok { k with max_offset = v }
                       else Error "offset must be >= 0"
                   | "coeff" ->
                       let* v = pos "coeff" in
                       Ok { k with max_coeff = v }
                   | "step" ->
                       let* v = pos "step" in
                       Ok { k with max_step = v }
                   | "sets" ->
                       let* v = pos_pow2 "sets" v in
                       Ok { k with max_sets = v }
                   | "assoc" ->
                       let* v = pos_pow2 "assoc" v in
                       Ok { k with max_assoc = v }
                   | "line" ->
                       let* v = pos_pow2 "line" v in
                       Ok { k with lines = [ v ] }
                   | "tri" ->
                       if v >= 0 && v <= 100 then Ok { k with max_tri_pct = v }
                       else Error "tri must lie in [0, 100] (percent)"
                   | other ->
                       Error
                         (Printf.sprintf
                            "unknown knob %S (depth, extent, arrays, refs, \
                             offset, coeff, step, sets, assoc, line, tri)"
                            other))))
       (Ok default_knobs)

let pow2_upto rng max_v =
  1 lsl Prng.int_in rng ~lo:0 ~hi:(Intmath.ceil_log2 max_v)

let draw_case knobs rng =
  let depth = Prng.int_in rng ~lo:1 ~hi:knobs.max_depth in
  let extents =
    Array.init depth (fun _ ->
        Prng.int_in rng ~lo:knobs.min_extent ~hi:knobs.max_extent)
  in
  let steps =
    Array.init depth (fun _ ->
        (* bias to unit strides: they are the common case and keep half of
           the corpus within the paper's original domain *)
        if Prng.bool rng then 1 else Prng.int_in rng ~lo:1 ~hi:knobs.max_step)
  in
  let narrays = Prng.int_in rng ~lo:1 ~hi:knobs.max_narrays in
  let nrefs = Prng.int_in rng ~lo:1 ~hi:knobs.max_nrefs in
  let max_offset = Prng.int_in rng ~lo:0 ~hi:knobs.max_offset in
  let max_coeff =
    if Prng.bool rng then 1 else Prng.int_in rng ~lo:1 ~hi:knobs.max_coeff
  in
  let write_ratio = [| 0.; 0.25; 0.5; 0.75; 1. |].(Prng.int rng 5) in
  (* Drawn only when the knob is on, so rectangular streams are unchanged
     and corpora recorded before triangular shapes existed still replay. *)
  let tri_ratio =
    if knobs.max_tri_pct = 0 then 0.
    else float_of_int (Prng.int_in rng ~lo:0 ~hi:knobs.max_tri_pct) /. 100.
  in
  let line = List.nth knobs.lines (Prng.int rng (List.length knobs.lines)) in
  let sets = pow2_upto rng knobs.max_sets in
  let assoc = pow2_upto rng knobs.max_assoc in
  let seed = Prng.int rng 1_000_000_000 in
  {
    Case.spec =
      {
        Random_kernel.depth;
        extents;
        steps;
        narrays;
        nrefs;
        max_offset;
        max_coeff;
        write_ratio;
        align = line;
        tri_ratio;
      };
    seed;
    sets;
    assoc;
    line;
  }

type mismatch = {
  trial : int;
  raw : Case.t;
  shrunk : Case.t;
  shrink_checks : int;
  result : Oracle.result;
}

type outcome = {
  trials_run : int;
  agreed : int;
  inconclusive : int;
  fallback_trials : int;
  mismatches : mismatch list;
  accesses : int;
  wall_s : float;
}

(* Each trial's generator depends only on (seed, index): replayable in
   isolation, stable under time-budget truncation. *)
let trial_rng ~seed index = Prng.create ~seed:(seed lxor ((index + 1) * 0x9E3779B9))

let run ?(knobs = default_knobs) ?time_budget ?on_trial ?(domains = 1)
    ?(mode = `Exact) ~trials ~seed () =
  Tiling_obs.Span.with_ "fuzz.run"
    ~attrs:
      [
        ("trials", Tiling_obs.Json.Int trials);
        ("seed", Tiling_obs.Json.Int seed);
        ("domains", Tiling_obs.Json.Int domains);
      ]
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let agreed = ref 0
      and inconclusive = ref 0
      and fallback_trials = ref 0
      and accesses = ref 0
      and mismatches = ref []
      and ran = ref 0 in
      let out_of_time () =
        match time_budget with
        | None -> false
        | Some b -> Unix.gettimeofday () -. t0 >= b
      in
      (* Trials are checked in batches: the oracle runs for a whole batch in
         parallel (each trial is independent — its generator depends only on
         (seed, index)), then accounting, shrinking and [on_trial] replay
         sequentially in index order, so the outcome is byte-identical to a
         [domains = 1] run.  The time budget is tested between batches. *)
      let batch = if domains > 1 then domains * 4 else 1 in
      let account (index, case, result) =
        incr ran;
        Metrics.incr m_trials;
        accesses := !accesses + result.Oracle.accesses;
        if result.Oracle.fallbacks > 0 then incr fallback_trials;
        (match result.Oracle.verdict with
        | Oracle.Agree ->
            incr agreed;
            Metrics.incr m_agree
        | Oracle.Inconclusive _ ->
            incr inconclusive;
            Metrics.incr m_inconclusive
        | Oracle.Mismatch _ ->
            Metrics.incr m_mismatches;
            Log.warn (fun m ->
                m "trial %d mismatched: %s — shrinking" index
                  (Case.to_string case));
            let shrunk, shrink_checks = Shrink.minimize ~mode case in
            mismatches :=
              {
                trial = index;
                raw = case;
                shrunk;
                shrink_checks;
                result = Oracle.check_case ~mode shrunk;
              }
              :: !mismatches);
        Option.iter (fun f -> f index case result) on_trial;
        if (index + 1) mod 50 = 0 then
          Log.info (fun m ->
              m "%d/%d trials: %d agree, %d inconclusive, %d mismatches"
                (index + 1) trials !agreed !inconclusive
                (List.length !mismatches))
      in
      let i = ref 0 in
      while !i < trials && not (out_of_time ()) do
        let lo = !i in
        let hi = min trials (lo + batch) in
        Array.init (hi - lo) (fun k -> lo + k)
        |> Par.map ~domains (fun index ->
               let case = draw_case knobs (trial_rng ~seed index) in
               (index, case, Oracle.check_case ~mode case))
        |> Array.iter account;
        i := hi
      done;
      {
        trials_run = !ran;
        agreed = !agreed;
        inconclusive = !inconclusive;
        fallback_trials = !fallback_trials;
        mismatches = List.rev !mismatches;
        accesses = !accesses;
        wall_s = Unix.gettimeofday () -. t0;
      })

let load_corpus path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go n acc =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | line ->
                let t = String.trim line in
                if t = "" || t.[0] = '#' then go (n + 1) acc
                else
                  match Case.of_string t with
                  | Ok case -> go (n + 1) (case :: acc)
                  | Error m -> Error (Printf.sprintf "line %d: %s" n m)
          in
          go 1 [])
