(** The differential oracle: the CME point solver, driven through
    {!Tiling_cme.Estimator.exact}, must assign every reference the same
    access, miss and compulsory-miss counts as the trace-driven
    set-associative LRU simulator ({!Tiling_cache.Sim} fed by
    {!Tiling_trace}).

    Conservative solver answers (window-cap fallbacks) are legitimate
    over-approximations, not model bugs; a disagreeing run whose engine
    fell back at least once is therefore reported as {!Inconclusive}
    rather than {!Mismatch}. *)

type ref_delta = {
  ref_id : int;
  cme : int * int * int;  (** (accesses, misses, compulsory) per the solver *)
  sim : int * int * int;  (** the same triple per the simulator *)
}

type verdict =
  | Agree
  | Mismatch of ref_delta list      (** fallback-free disagreement: a bug *)
  | Inconclusive of ref_delta list  (** disagreement under >= 1 fallback *)

type result = {
  verdict : verdict;
  fallbacks : int;  (** conservative solver answers during the run *)
  points : int;     (** iteration points classified *)
  accesses : int;   (** total accesses compared *)
}

val check :
  ?mode:[ `Exact | `Closed_form ] ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  result
(** Runs both sides on the same nest and geometry and compares per-ref.
    [mode] selects the CME side: [`Exact] (default) classifies every point
    through {!Tiling_cme.Estimator.exact}; [`Closed_form] aggregates through
    {!Tiling_cme.Closed_form.estimate}, so a run differentially validates
    the extrapolating solver itself.  A closed-form refusal (affine nest,
    budget) is reported as [Inconclusive []] — outside the regime, not a
    disagreement. *)

val check_case : ?mode:[ `Exact | `Closed_form ] -> Case.t -> result
(** {!check} on a regenerated case. *)

val pp_result : result Fmt.t
(** Human-readable verdict with per-reference deltas on disagreement. *)
