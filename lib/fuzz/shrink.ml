open Tiling_kernels

let m_steps = Tiling_obs.Metrics.counter "fuzz.shrink.steps"

let still_fails ?mode case =
  match (Oracle.check_case ?mode case).Oracle.verdict with
  | Oracle.Mismatch _ -> true
  | Oracle.Agree | Oracle.Inconclusive _ -> false

(* Candidate reductions of one case, most aggressive first.  Geometry
   halving keeps the array alignment glued to the line size so the reduced
   case stays inside the fuzzer's domain (arrays never share a line). *)
let candidates (c : Case.t) =
  let s = c.spec in
  let with_spec spec = { c with Case.spec } in
  let out = ref [] in
  let add cand = out := cand :: !out in
  (* Geometry: halve sets, associativity, line (line floor 8 keeps one
     8-byte element per line at most). *)
  if c.line > 8 then begin
    let line = c.line / 2 in
    add
      {
        c with
        Case.line;
        spec = { s with Random_kernel.align = min s.Random_kernel.align line };
      }
  end;
  if c.assoc > 1 then add { c with Case.assoc = c.assoc / 2 };
  if c.sets > 1 then add { c with Case.sets = c.sets / 2 };
  (* Drop references and arrays. *)
  let nrefs = s.Random_kernel.nrefs in
  if nrefs > 2 then add (with_spec { s with Random_kernel.nrefs = nrefs / 2 });
  if nrefs > 1 then add (with_spec { s with Random_kernel.nrefs = nrefs - 1 });
  let narrays = s.Random_kernel.narrays in
  if narrays > 1 then
    add (with_spec { s with Random_kernel.narrays = narrays - 1 });
  (* Drop the innermost loop dimension. *)
  let depth = s.Random_kernel.depth in
  if depth > 1 then begin
    let chop a = Array.sub a 0 (depth - 1) in
    add
      (with_spec
         {
           s with
           Random_kernel.depth = depth - 1;
           extents = chop s.Random_kernel.extents;
           steps = chop s.Random_kernel.steps;
         })
  end;
  (* Shrink extents (halve, then decrement) and flatten steps. *)
  Array.iteri
    (fun d e ->
      let set v =
        let extents = Array.copy s.Random_kernel.extents in
        extents.(d) <- v;
        add (with_spec { s with Random_kernel.extents })
      in
      if e > 3 then set (e / 2);
      if e > 1 then set (e - 1))
    s.Random_kernel.extents;
  Array.iteri
    (fun d st ->
      if st > 1 then begin
        let steps = Array.copy s.Random_kernel.steps in
        steps.(d) <- 1;
        add (with_spec { s with Random_kernel.steps })
      end)
    s.Random_kernel.steps;
  (* Simplify subscripts and the access mix. *)
  if s.Random_kernel.max_coeff > 1 then
    add
      (with_spec
         { s with Random_kernel.max_coeff = s.Random_kernel.max_coeff - 1 });
  if s.Random_kernel.max_offset > 0 then
    add
      (with_spec
         { s with Random_kernel.max_offset = s.Random_kernel.max_offset - 1 });
  if s.Random_kernel.write_ratio <> 0. then
    add (with_spec { s with Random_kernel.write_ratio = 0. });
  (* Straighten triangular bounds back to rectangles. *)
  if s.Random_kernel.tri_ratio <> 0. then
    add (with_spec { s with Random_kernel.tri_ratio = 0. });
  List.rev !out

let minimize ?(max_checks = 400) ?mode case =
  Tiling_obs.Span.with_ "fuzz.shrink" (fun () ->
      let checks = ref 0 in
      let run c =
        incr checks;
        Tiling_obs.Metrics.incr m_steps;
        still_fails ?mode c
      in
      if not (run case) then (case, !checks)
      else begin
        let current = ref case in
        let progress = ref true in
        while !progress && !checks < max_checks do
          progress := false;
          let rec try_cands = function
            | [] -> ()
            | cand :: rest ->
                if !checks >= max_checks then ()
                else if run cand then begin
                  current := cand;
                  progress := true
                end
                else try_cands rest
          in
          try_cands (candidates !current)
        done;
        (!current, !checks)
      end)
