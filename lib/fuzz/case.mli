(** One differential-testing case: a random-kernel spec, the kernel seed,
    and a cache geometry.  A case is everything needed to reproduce an
    oracle run, and it serializes to a single self-describing line — the
    format of the checked-in corpus (test/fuzz_corpus.txt) and of the
    repro lines [tiler fuzz] prints on a mismatch. *)

type t = {
  spec : Tiling_kernels.Random_kernel.spec;
  seed : int;   (** kernel seed fed to {!Tiling_kernels.Random_kernel.generate} *)
  sets : int;   (** cache sets (power of two) *)
  assoc : int;  (** associativity (power of two; 1 = direct-mapped) *)
  line : int;   (** line size in bytes (power of two) *)
}

val cache : t -> Tiling_cache.Config.t
(** The geometry as a config ([size = sets * assoc * line]). *)

val nest : t -> Tiling_ir.Nest.t
(** The kernel, regenerated deterministically from [spec] and [seed]. *)

val points : t -> int
(** Iteration points of the kernel (trial cost indicator). *)

val to_string : t -> string
(** One-line [key=value] rendering, e.g.
    [seed=7 depth=2 extents=8,4 steps=1,2 narrays=1 nrefs=2 max_offset=1
     max_coeff=2 write_ratio=0.5 align=32 sets=4 assoc=1 line=32]. *)

val of_string : string -> (t, string) result
(** Parses {!to_string}'s format (fields in any order; all required except
    [write_ratio] and [align], which default to [0.5] and [line]). *)

val pp : t Fmt.t
