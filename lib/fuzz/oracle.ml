type ref_delta = {
  ref_id : int;
  cme : int * int * int;
  sim : int * int * int;
}

type verdict =
  | Agree
  | Mismatch of ref_delta list
  | Inconclusive of ref_delta list

type result = {
  verdict : verdict;
  fallbacks : int;
  points : int;
  accesses : int;
}

let check ?(mode = `Exact) nest cache =
  Tiling_obs.Span.with_ "fuzz.oracle.check"
    ~attrs:[ ("nest", Tiling_obs.Json.String nest.Tiling_ir.Nest.name) ]
    (fun () ->
      let engine = Tiling_cme.Engine.create nest cache in
      match
        match mode with
        | `Exact -> Ok (Tiling_cme.Estimator.exact engine)
        | `Closed_form -> Tiling_cme.Closed_form.estimate engine
      with
      | Error reason ->
          (* A refusal is not a model bug: the nest is simply outside the
             closed form's regime. *)
          Logs.debug (fun m ->
              m "oracle: closed form refused %s (%a)"
                nest.Tiling_ir.Nest.name Tiling_cme.Closed_form.pp_reason
                reason);
          { verdict = Inconclusive []; fallbacks = 0; points = 0; accesses = 0 }
      | Ok est ->
      let sim = Tiling_trace.Run.simulate nest cache in
      let deltas = ref [] in
      Array.iteri
        (fun i (c : Tiling_cme.Estimator.ref_counts) ->
          let s = sim.Tiling_trace.Run.per_ref.(i) in
          let cme =
            ( c.Tiling_cme.Estimator.r_accesses,
              c.Tiling_cme.Estimator.r_misses,
              c.Tiling_cme.Estimator.r_compulsory )
          in
          let sm =
            ( s.Tiling_cache.Sim.accesses,
              s.Tiling_cache.Sim.misses,
              s.Tiling_cache.Sim.compulsory )
          in
          if cme <> sm then deltas := { ref_id = i; cme; sim = sm } :: !deltas)
        est.Tiling_cme.Estimator.per_ref;
      let fallbacks = est.Tiling_cme.Estimator.fallbacks in
      let verdict =
        match List.rev !deltas with
        | [] -> Agree
        | ds -> if fallbacks > 0 then Inconclusive ds else Mismatch ds
      in
      {
        verdict;
        fallbacks;
        points = est.Tiling_cme.Estimator.points;
        accesses = est.Tiling_cme.Estimator.accesses;
      })

let check_case ?mode case = check ?mode (Case.nest case) (Case.cache case)

let pp_delta ppf d =
  let pr (a, m, c) = Printf.sprintf "acc=%d miss=%d comp=%d" a m c in
  Fmt.pf ppf "ref %d: cme{%s} sim{%s}" d.ref_id (pr d.cme) (pr d.sim)

let pp_result ppf r =
  match r.verdict with
  | Agree ->
      Fmt.pf ppf "agree (%d points, %d accesses, %d fallbacks)" r.points
        r.accesses r.fallbacks
  | Mismatch ds ->
      Fmt.pf ppf "MISMATCH (%d points, fallback-free):@.%a" r.points
        Fmt.(list ~sep:(any "@.") pp_delta)
        ds
  | Inconclusive ds ->
      Fmt.pf ppf "inconclusive (%d fallbacks):@.%a" r.fallbacks
        Fmt.(list ~sep:(any "@.") pp_delta)
        ds
