let valid_name s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '.')
       s

(* The inventory is the single audit surface for instrument names: every
   instrument registered by the libraries must appear here (enforced by
   test/test_obs.ml), and the encoder sources its HELP text from it.
   Keep it sorted by name within each group. *)
let inventory =
  [
    (* cme.* — analytical model *)
    ("cme.classify.compulsory", "Reuse vectors classified as compulsory misses");
    ("cme.classify.hit", "Reuse vectors classified as cache hits");
    ("cme.classify.replacement", "Reuse vectors classified as replacement misses");
    ("cme.engines.created", "CME engine instances constructed");
    ("cme.fallbacks", "CME evaluations that fell back to the simulator");
    ("cme.residues.memo.hit", "Residue-set memo hits (per engine)");
    ("cme.residues.memo.miss", "Residue-set memo misses (per engine)");
    ("cme.residues.shared.evictions", "Entries evicted from the shared residue cache");
    ("cme.residues.shared.hit", "Shared residue cache hits");
    ("cme.residues.shared.miss", "Shared residue cache misses");
    (* symbolic.* — closed-form CME backend *)
    ("symbolic.fallbacks", "Symbolic-backend evaluations that fell back to sampling");
    ("symbolic.points.classified", "Point classifications spent by the closed-form solver");
    ("symbolic.rows", "Iteration-space rows visited by the closed-form solver");
    ("symbolic.rows.extrapolated", "References whose row middle was extrapolated from a validated period");
    ("symbolic.rows.memo.hit", "Rows answered from the row-signature memo");
    ("symbolic.rows.parallel", "Rows walked by pool-parallel census chunks");
    ("symbolic.rows.probed", "Stratified probe rows classified by the bounded mode");
    ("symbolic.rows.ref_exhaustive", "References classified exhaustively after a failed period validation");
    (* ga.* — genetic algorithm engine *)
    ("ga.evaluations", "Objective evaluations performed by the GA");
    ("ga.generations", "GA generations stepped");
    ("ga.runs", "Complete GA runs");
    (* search.* — evaluation service *)
    ("search.eval.batches", "Deduplicated candidate batches evaluated");
    ("search.memo.hit", "Candidate objective memo hits");
    ("search.memo.miss", "Candidate objective memo misses");
    (* driver restart counters, one per optimizer entry point *)
    ("optimizer.restarts", "GA restarts performed by the joint optimizer");
    ("padder.restarts", "GA restarts performed by the pad searcher");
    ("tiler.restarts", "GA restarts performed by the tiler");
    (* par.* / pool.* — parallel runtime *)
    ("par.chunk_ns", "Per-chunk wall time of parallel map chunks (ns)");
    ("par.chunks", "Parallel map chunks executed");
    ("pool.chunks", "Chunks executed by the domain pool");
    ("pool.queue.depth", "Chunks queued by the job currently submitting");
    ("pool.tasks", "Jobs submitted to the domain pool");
    ("pool.worker.busy_ns", "Per-job busy time of each participating domain (ns)");
    ("pool.workers", "Live pool worker domains");
    (* fuzz.* — differential fuzzing harness *)
    ("fuzz.agree", "Fuzz trials where CME and simulator agreed");
    ("fuzz.inconclusive", "Fuzz trials outside the comparable regime");
    ("fuzz.mismatches", "Fuzz trials that found a disagreement");
    ("fuzz.shrink.steps", "Shrinking steps taken on failing fuzz cases");
    ("fuzz.trials", "Differential fuzz trials executed");
    (* server.* — daemon *)
    ("server.admission.rejected", "Requests rejected at admission (queue full)");
    ("server.connections", "Currently open client connections");
    ("server.connections.accepted", "Client connections accepted");
    ("server.metrics.scrapes", "Metrics exports served (wire method + HTTP)");
    ("server.progress.sent", "Progress notifications written to clients");
    ("server.protocol.bad_lines", "Received lines that were not valid requests");
    ("server.queue.depth", "Requests queued awaiting a scheduler worker");
    ("server.request_ns", "End-to-end request service time (ns)");
    ("server.requests.error", "Requests completed with an error response");
    ("server.requests.ok", "Requests completed successfully");
    ("server.requests.timeout", "Requests that exceeded their deadline");
    ("server.store.appends", "Results appended to the persistent store");
    ("server.store.compactions", "Store compactions performed");
    ("server.store.entries", "Distinct fingerprints in the persistent store");
    ("server.store.hits", "Requests answered from the persistent store");
    ("server.store.misses", "Store lookups that missed");
    ("server.store.records", "Records in the store file (including superseded)");
    ("server.store.refreshes", "Store reconciliations with the shared log");
    (* fleet.* — coalescing, router, worker health (docs/SERVER.md) *)
    ("fleet.coalesce.hits", "Requests attached to an identical in-flight request");
    ("fleet.coalesce.waiters", "Requests currently waiting on a coalesced evaluation");
    ("fleet.health.checks", "Worker health probes performed by the router");
    ("fleet.health.failures", "Worker health probes or forwards that failed");
    ("fleet.router.backpressure", "Worker overloaded/draining responses relayed upstream");
    ("fleet.router.failed", "Requests that exhausted every worker");
    ("fleet.router.forwarded", "Requests forwarded to a worker and answered");
    ("fleet.router.requests", "Requests received by the router");
    ("fleet.router.retries", "Failovers to the next worker after a transport failure");
    ("fleet.workers.up", "Workers currently passing health checks");
  ]

let help_of name =
  match List.assoc_opt name inventory with
  | Some h -> h
  | None -> "(undocumented; add to Tiling_obs.Openmetrics.inventory)"

(* "server.request_ns" -> "tiling_server_request_ns".  Registered names
   match [a-z0-9_.]+ (enforced by the hygiene test), so mangling dots is
   the only transformation ever needed. *)
let sample_name name =
  "tiling_" ^ String.map (fun c -> if c = '.' then '_' else c) name

let fmt_value = function
  | Json.Int i -> string_of_int i
  | Json.Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.17g" f
  | _ -> "0"

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b {|\\|}
      | '\n' -> Buffer.add_string b {|\n|}
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let header b name typ =
  Buffer.add_string b
    (Printf.sprintf "# HELP %s %s\n" (sample_name name) (escape_help (help_of name)));
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" (sample_name name) typ)

let obj_bindings = function Json.Obj kvs -> kvs | _ -> []

let encode snapshot =
  let b = Buffer.create 4096 in
  let section key = Option.value (Json.member key snapshot) ~default:(Json.Obj []) in
  List.iter
    (fun (name, v) ->
      header b name "counter";
      Buffer.add_string b
        (Printf.sprintf "%s_total %s\n" (sample_name name) (fmt_value v)))
    (obj_bindings (section "counters"));
  List.iter
    (fun (name, v) ->
      header b name "gauge";
      Buffer.add_string b
        (Printf.sprintf "%s %s\n" (sample_name name) (fmt_value v)))
    (obj_bindings (section "gauges"));
  List.iter
    (fun (name, h) ->
      header b name "histogram";
      let sname = sample_name name in
      let count =
        match Json.member "count" h with Some (Json.Int c) -> c | _ -> 0
      in
      let sum = match Json.member "sum" h with Some (Json.Int s) -> s | _ -> 0 in
      let buckets =
        match Json.member "buckets" h with Some (Json.List l) -> l | _ -> []
      in
      (* snapshot buckets are ascending by [le]; accumulate for the
         cumulative semantics OpenMetrics requires *)
      let cum = ref 0 in
      List.iter
        (fun bucket ->
          let le =
            match Json.member "le" bucket with Some (Json.Int v) -> v | _ -> 0
          in
          let c =
            match Json.member "count" bucket with Some (Json.Int v) -> v | _ -> 0
          in
          cum := !cum + c;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" sname le !cum))
        buckets;
      Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" sname count);
      Buffer.add_string b (Printf.sprintf "%s_sum %d\n" sname sum);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" sname count))
    (obj_bindings (section "histograms"));
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let render () = encode (Metrics.snapshot ())

let content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"
