(** Process-wide metrics registry: named counters, gauges and log-scale
    histograms.

    The registry is disabled by default, and a disabled registry is free up
    to one branch per call site: [incr]/[add]/[observe]/[set] test a single
    boolean and return.  Enabled updates are lock-free [Atomic] operations,
    safe under {!Tiling_util.Par} domains.

    Instruments are created once (typically at module initialisation) and
    looked up by name; creating the same name twice returns the same
    underlying cells, so counters survive module re-entry and tests can
    reach instruments registered deep inside the libraries. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
(** Turn recording on or off globally.  Off by default. *)

val enabled : unit -> bool

val counter : string -> counter
(** Monotone integer, e.g. ["cme.classify.hit"]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
(** Last-write-wins float, e.g. a final population size. *)

val set : gauge -> float -> unit

val histogram : string -> histogram
(** Power-of-two buckets over non-negative integer observations (typically
    nanoseconds): an observation [v] lands in bucket [ceil(log2 (v+1))].
    Tracks total count and sum alongside the buckets. *)

val observe : histogram -> int -> unit

val reset : unit -> unit
(** Zero every registered instrument (the registry itself is kept). *)

val snapshot : unit -> Json.t
(** The current state of every registered instrument, sorted by name:
    [{"counters": {name: int, ...},
      "gauges": {name: float, ...},
      "histograms": {name: {"count": int, "sum": int,
                            "buckets": [{"le": int, "count": int}, ...]}}}].
    A bucket's ["le"] is the inclusive upper bound [2^k - 1]; only occupied
    buckets are listed.  Values are read whether or not recording is
    enabled, so a registry that was never enabled snapshots to a stable
    all-zero shape. *)

val histogram_snapshot : histogram -> Json.t
(** One histogram in the same shape as its {!snapshot} entry:
    [{"count", "sum", "buckets": [{"le", "count"}...]}] with buckets in
    ascending ["le"] order — lets a single instrument (e.g. the server's
    request-latency histogram) be exported without a full snapshot. *)

val names : unit -> (string * [ `Counter | `Gauge | `Histogram ]) list
(** Every registered instrument name with its kind, sorted.  Instrument
    names follow the [\[a-z0-9_.\]+] convention (dot-separated lowercase
    segments); {!Tiling_obs.Openmetrics} relies on it. *)
