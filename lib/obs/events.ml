type event = {
  seq : int;
  ts_us : float;
  kind : string;
  trace_id : int option;
  attrs : (string * Json.t) list;
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let lock = Mutex.create ()

(* Circular buffer: event with sequence number [s] (1-based) lives at
   index [(s - 1) mod capacity] until overwritten. *)
let buf = ref (Array.make 1024 None)
let total = ref 0 (* last sequence number handed out *)

let set_capacity n =
  let n = max 16 n in
  Mutex.protect lock (fun () ->
      buf := Array.make n None;
      total := !total)

let clear () =
  Mutex.protect lock (fun () ->
      Array.fill !buf 0 (Array.length !buf) None)

let last_seq () = Mutex.protect lock (fun () -> !total)

(* Subscribers are called synchronously on the emitting thread, outside the
   ring lock; [subs_count] keeps the no-listener fast path allocation-free. *)
let subs : (int * (event -> unit)) list ref = ref []
let next_sub = ref 0
let subs_count = Atomic.make 0

let subscribe f =
  Mutex.protect lock (fun () ->
      incr next_sub;
      subs := (!next_sub, f) :: !subs;
      Atomic.set subs_count (List.length !subs);
      !next_sub)

let unsubscribe id =
  Mutex.protect lock (fun () ->
      subs := List.filter (fun (i, _) -> i <> id) !subs;
      Atomic.set subs_count (List.length !subs))

let to_json ev =
  Json.Obj
    ([
       ("seq", Json.Int ev.seq);
       ("ts_us", Json.Float ev.ts_us);
       ("kind", Json.String ev.kind);
     ]
    @ (match ev.trace_id with
      | Some t -> [ ("trace_id", Json.Int t) ]
      | None -> [])
    @ if ev.attrs = [] then [] else [ ("attrs", Json.Obj ev.attrs) ])

(* Optional NDJSON sink: one [to_json] line per event, flushed per write so
   a [tail -f] follows the search live. *)
let sink : out_channel option ref = ref None
let sink_active = ref false

let open_sink path =
  match open_out path with
  | oc ->
      Mutex.protect lock (fun () ->
          (match !sink with Some old -> close_out_noerr old | None -> ());
          sink := Some oc;
          sink_active := true);
      Ok ()
  | exception Sys_error m -> Error m

let close_sink () =
  Mutex.protect lock (fun () ->
      (match !sink with Some oc -> close_out_noerr oc | None -> ());
      sink := None;
      sink_active := false)

let emit ?(attrs = []) kind =
  if !enabled_flag || !sink_active || Atomic.get subs_count > 0 then begin
    let trace_id =
      match Span.current () with
      | Some c -> Some c.Span.trace_id
      | None -> None
    in
    let ev, listeners =
      Mutex.protect lock (fun () ->
          incr total;
          let ev = { seq = !total; ts_us = Span.now_us (); kind; trace_id; attrs } in
          if !enabled_flag then begin
            let a = !buf in
            a.((!total - 1) mod Array.length a) <- Some ev
          end;
          (match !sink with
          | Some oc ->
              output_string oc (Json.to_string (to_json ev));
              output_char oc '\n';
              flush oc
          | None -> ());
          (ev, !subs))
    in
    List.iter (fun (_, f) -> try f ev with _ -> ()) listeners
  end

let recent ?(since = 0) ?limit () =
  let evs =
    Mutex.protect lock (fun () ->
        let a = !buf in
        let cap = Array.length a in
        let lo = max since (!total - cap) in
        let out = ref [] in
        for s = !total downto lo + 1 do
          match a.((s - 1) mod cap) with
          | Some ev when ev.seq = s -> out := ev :: !out
          | _ -> ()
        done;
        !out)
  in
  match limit with
  | None -> evs
  | Some k when k >= List.length evs -> evs
  | Some k ->
      (* keep the newest k *)
      let drop = List.length evs - k in
      List.filteri (fun i _ -> i >= drop) evs
