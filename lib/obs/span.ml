type context = { trace_id : int; span_id : int; depth : int }

type event = {
  name : string;
  ph : string; (* "X" complete, "i" instant *)
  ts : float; (* microseconds since [origin] *)
  dur : float; (* microseconds; 0 for instants *)
  tid : int;
  attrs : (string * Json.t) list;
  trace : (int * int * int) option; (* trace id, span id, parent span id *)
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let lock = Mutex.create ()
let capacity = ref 65536
let buffer : event list ref = ref [] (* newest first *)
let count = ref 0
let dropped = ref 0

(* Timestamps are relative to process start so traces from consecutive runs
   line up near zero in the viewer. *)
let origin = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. origin) *. 1e6

let set_capacity n =
  Mutex.protect lock (fun () -> capacity := max 1 n)

let clear () =
  Mutex.protect lock (fun () ->
      buffer := [];
      count := 0;
      dropped := 0)

let record ev =
  Mutex.protect lock (fun () ->
      if !count >= !capacity then incr dropped
      else begin
        buffer := ev :: !buffer;
        incr count
      end)

let tid () = (Domain.self () :> int)

(* ------------------------------------------------------------------ *)
(* Request-scoped trace contexts.

   A trace is a process-local tree of spans rooted at a context handed out
   by [start_trace].  Contexts are propagated two ways: explicitly (stored
   in a job record and reinstalled on the executing thread) and ambiently
   (a per-(domain, thread) table consulted by [with_]/[instant], so every
   existing span call site joins an active trace without signature
   changes).  Scheduler workers are systhreads sharing domain 0, so the
   ambient key must include the thread id — [Domain.DLS] alone would make
   all workers share one slot. *)

let next_trace_id = Atomic.make 1
let next_span_id = Atomic.make 1

type trace_buf = {
  mutable t_events : event list; (* newest first *)
  mutable t_count : int;
  mutable t_dropped : int;
}

let trace_lock = Mutex.create ()
let traces : (int, trace_buf) Hashtbl.t = Hashtbl.create 8

(* Fast-path guard: when zero traces are live and global recording is off,
   [with_] is one Atomic.get + one branch. *)
let traces_active = Atomic.make 0
let trace_capacity = ref 8192
let set_trace_capacity n = trace_capacity := max 16 n

(* Once a trace buffer is full, spans at or above this depth are dropped
   (and counted) while shallow structural spans are still kept, so the
   tree returned on the wire keeps its skeleton under event storms. *)
let keep_depth = 4

let ambient : (int * int, context) Hashtbl.t = Hashtbl.create 16
let ambient_lock = Mutex.create ()
let self_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let current () =
  if Atomic.get traces_active = 0 then None
  else
    let k = self_key () in
    Mutex.protect ambient_lock (fun () -> Hashtbl.find_opt ambient k)

let tracing () = !enabled_flag || current () <> None

let with_ambient ctx f =
  let k = self_key () in
  let swap v =
    Mutex.protect ambient_lock (fun () ->
        let prev = Hashtbl.find_opt ambient k in
        (match v with
        | Some c -> Hashtbl.replace ambient k c
        | None -> Hashtbl.remove ambient k);
        prev)
  in
  let prev = swap ctx in
  Fun.protect ~finally:(fun () -> ignore (swap prev)) f

let start_trace () =
  let id = Atomic.fetch_and_add next_trace_id 1 in
  Mutex.protect trace_lock (fun () ->
      Hashtbl.replace traces id { t_events = []; t_count = 0; t_dropped = 0 });
  Atomic.incr traces_active;
  { trace_id = id; span_id = 0; depth = 0 }

let trace_record trace_id depth ev =
  Mutex.protect trace_lock (fun () ->
      match Hashtbl.find_opt traces trace_id with
      | None -> () (* trace already finished or discarded: drop silently *)
      | Some b ->
          if b.t_count < !trace_capacity || depth <= keep_depth then begin
            b.t_events <- ev :: b.t_events;
            b.t_count <- b.t_count + 1
          end
          else b.t_dropped <- b.t_dropped + 1)

let remove_trace id =
  Mutex.protect trace_lock (fun () ->
      match Hashtbl.find_opt traces id with
      | None -> None
      | Some b ->
          Hashtbl.remove traces id;
          Atomic.decr traces_active;
          Some b)

let discard_trace ctx = ignore (remove_trace ctx.trace_id)

let span_json_tree b =
  let evs = List.rev b.t_events in
  let ids = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev.trace with
      | Some (_, sid, _) -> Hashtbl.replace ids sid ()
      | None -> ())
    evs;
  let children : (int, event list) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun ev ->
      match ev.trace with
      | None -> ()
      | Some (_, _, parent) ->
          (* Orphans (parent span not recorded, e.g. dropped) surface as
             roots rather than vanishing. *)
          if parent <> 0 && Hashtbl.mem ids parent then
            Hashtbl.replace children parent
              (ev :: (Option.value (Hashtbl.find_opt children parent) ~default:[]))
          else roots := ev :: !roots)
    evs;
  let by_ts l = List.sort (fun a b -> compare a.ts b.ts) l in
  let rec node ev =
    let sid = match ev.trace with Some (_, s, _) -> s | None -> 0 in
    let kids =
      by_ts (List.rev (Option.value (Hashtbl.find_opt children sid) ~default:[]))
    in
    Json.Obj
      ([
         ("name", Json.String ev.name);
         ("ts_us", Json.Float ev.ts);
         ("dur_us", Json.Float ev.dur);
       ]
      @ (if ev.attrs = [] then [] else [ ("attrs", Json.Obj ev.attrs) ])
      @
      if kids = [] then [] else [ ("children", Json.List (List.map node kids)) ])
  in
  List.map node (by_ts (List.rev !roots))

let finish_trace ctx =
  match remove_trace ctx.trace_id with
  | None ->
      Json.Obj
        [
          ("trace_id", Json.Int ctx.trace_id);
          ("dropped", Json.Int 0);
          ("spans", Json.List []);
        ]
  | Some b ->
      Json.Obj
        [
          ("trace_id", Json.Int ctx.trace_id);
          ("dropped", Json.Int b.t_dropped);
          ("spans", Json.List (span_json_tree b));
        ]

let record_at ?(attrs = []) ctx name ~ts_us ~dur_us =
  let sid = Atomic.fetch_and_add next_span_id 1 in
  let ev =
    {
      name;
      ph = "X";
      ts = ts_us;
      dur = dur_us;
      tid = tid ();
      attrs;
      trace = Some (ctx.trace_id, sid, ctx.span_id);
    }
  in
  trace_record ctx.trace_id (ctx.depth + 1) ev;
  if !enabled_flag then record ev

(* ------------------------------------------------------------------ *)

let with_ ?(attrs = []) name f =
  let amb = current () in
  if (not !enabled_flag) && amb = None then f ()
  else begin
    let t0 = now_us () in
    let child =
      Option.map
        (fun c ->
          {
            trace_id = c.trace_id;
            span_id = Atomic.fetch_and_add next_span_id 1;
            depth = c.depth + 1;
          })
        amb
    in
    let finish () =
      let t1 = now_us () in
      let trace =
        match (amb, child) with
        | Some p, Some c -> Some (c.trace_id, c.span_id, p.span_id)
        | _ -> None
      in
      let ev = { name; ph = "X"; ts = t0; dur = t1 -. t0; tid = tid (); attrs; trace } in
      if !enabled_flag then record ev;
      match child with
      | Some c -> trace_record c.trace_id c.depth ev
      | None -> ()
    in
    let run () =
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt
    in
    match child with Some _ -> with_ambient child run | None -> run ()
  end

let instant ?(attrs = []) name =
  let amb = current () in
  if !enabled_flag || amb <> None then begin
    let trace, depth =
      match amb with
      | Some c ->
          ( Some (c.trace_id, Atomic.fetch_and_add next_span_id 1, c.span_id),
            c.depth + 1 )
      | None -> (None, 0)
    in
    let ev = { name; ph = "i"; ts = now_us (); dur = 0.; tid = tid (); attrs; trace } in
    if !enabled_flag then record ev;
    match amb with Some c -> trace_record c.trace_id depth ev | None -> ()
  end

let events_recorded () = Mutex.protect lock (fun () -> !count)

let event_json ev =
  let base =
    [
      ("name", Json.String ev.name);
      ("cat", Json.String "tiling");
      ("ph", Json.String ev.ph);
      ("ts", Json.Float ev.ts);
      ("pid", Json.Int (Unix.getpid ()));
      ("tid", Json.Int ev.tid);
    ]
  in
  let dur = if ev.ph = "X" then [ ("dur", Json.Float ev.dur) ] else [] in
  let scope = if ev.ph = "i" then [ ("s", Json.String "t") ] else [] in
  let attrs =
    match ev.trace with
    | None -> ev.attrs
    | Some (t, s, p) ->
        ev.attrs
        @ [
            ("trace_id", Json.Int t);
            ("span_id", Json.Int s);
            ("parent_span_id", Json.Int p);
          ]
  in
  let args = if attrs = [] then [] else [ ("args", Json.Obj attrs) ] in
  Json.Obj (base @ dur @ scope @ args)

let to_chrome_json () =
  let evs, n_dropped =
    Mutex.protect lock (fun () -> (List.rev !buffer, !dropped))
  in
  let events = List.map event_json evs in
  let events =
    if n_dropped = 0 then events
    else
      events
      @ [
          Json.Obj
            [
              ("name", Json.String "tiling.trace.dropped");
              ("cat", Json.String "tiling");
              ("ph", Json.String "i");
              ("ts", Json.Float (now_us ()));
              ("pid", Json.Int (Unix.getpid ()));
              ("tid", Json.Int 0);
              ("s", Json.String "g");
              ("args", Json.Obj [ ("dropped", Json.Int n_dropped) ]);
            ];
        ]
  in
  Json.Obj
    [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]

let write_chrome file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_chrome_json ())))
