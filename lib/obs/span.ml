type event = {
  name : string;
  ph : string; (* "X" complete, "i" instant *)
  ts : float; (* microseconds since [origin] *)
  dur : float; (* microseconds; 0 for instants *)
  tid : int;
  attrs : (string * Json.t) list;
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let lock = Mutex.create ()
let capacity = ref 65536
let buffer : event list ref = ref [] (* newest first *)
let count = ref 0
let dropped = ref 0

(* Timestamps are relative to process start so traces from consecutive runs
   line up near zero in the viewer. *)
let origin = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. origin) *. 1e6

let set_capacity n =
  Mutex.protect lock (fun () -> capacity := max 1 n)

let clear () =
  Mutex.protect lock (fun () ->
      buffer := [];
      count := 0;
      dropped := 0)

let record ev =
  Mutex.protect lock (fun () ->
      if !count >= !capacity then incr dropped
      else begin
        buffer := ev :: !buffer;
        incr count
      end)

let tid () = (Domain.self () :> int)

let with_ ?(attrs = []) name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now_us () in
    let finish () =
      let t1 = now_us () in
      record { name; ph = "X"; ts = t0; dur = t1 -. t0; tid = tid (); attrs }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let instant ?(attrs = []) name =
  if !enabled_flag then
    record { name; ph = "i"; ts = now_us (); dur = 0.; tid = tid (); attrs }

let events_recorded () = Mutex.protect lock (fun () -> !count)

let event_json ev =
  let base =
    [
      ("name", Json.String ev.name);
      ("cat", Json.String "tiling");
      ("ph", Json.String ev.ph);
      ("ts", Json.Float ev.ts);
      ("pid", Json.Int (Unix.getpid ()));
      ("tid", Json.Int ev.tid);
    ]
  in
  let dur = if ev.ph = "X" then [ ("dur", Json.Float ev.dur) ] else [] in
  let scope = if ev.ph = "i" then [ ("s", Json.String "t") ] else [] in
  let args = if ev.attrs = [] then [] else [ ("args", Json.Obj ev.attrs) ] in
  Json.Obj (base @ dur @ scope @ args)

let to_chrome_json () =
  let evs, n_dropped =
    Mutex.protect lock (fun () -> (List.rev !buffer, !dropped))
  in
  let events = List.map event_json evs in
  let events =
    if n_dropped = 0 then events
    else
      events
      @ [
          Json.Obj
            [
              ("name", Json.String "tiling.trace.dropped");
              ("cat", Json.String "tiling");
              ("ph", Json.String "i");
              ("ts", Json.Float (now_us ()));
              ("pid", Json.Int (Unix.getpid ()));
              ("tid", Json.Int 0);
              ("s", Json.String "g");
              ("args", Json.Obj [ ("dropped", Json.Int n_dropped) ]);
            ];
        ]
  in
  Json.Obj
    [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]

let write_chrome file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_chrome_json ())))
