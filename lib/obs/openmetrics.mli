(** Dependency-free OpenMetrics (Prometheus text exposition) encoder over
    {!Metrics.snapshot}.

    Instrument names are mangled [.] -> [_] and prefixed with [tiling_]
    (["server.request_ns"] -> [tiling_server_request_ns]); counters gain
    the conventional [_total] suffix.  Histograms are emitted with
    cumulative [le] buckets (upper bounds [2^k - 1], matching the
    registry's power-of-two bucketing), a [+Inf] bucket equal to the total
    count, and [_sum]/[_count] samples.  Output terminates with [# EOF]. *)

val valid_name : string -> bool
(** Whether [s] matches the documented instrument-name convention
    [\[a-z0-9_.\]+] — names the encoder can mangle without escaping. *)

val inventory : (string * string) list
(** The audit table of every instrument name registered by the libraries,
    with its HELP text.  [test/test_obs.ml] asserts the registry and this
    table agree; keep both in sync when adding instruments. *)

val help_of : string -> string
(** HELP text for [name], with a loud placeholder for names missing from
    {!inventory}. *)

val sample_name : string -> string
(** The mangled, prefixed sample name ([tiling_] + dots to underscores). *)

val encode : Json.t -> string
(** Render a {!Metrics.snapshot}-shaped document as OpenMetrics text. *)

val render : unit -> string
(** [encode (Metrics.snapshot ())]. *)

val content_type : string
(** The OpenMetrics HTTP [Content-Type] value. *)
