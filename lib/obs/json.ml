type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else
    (* Shortest representation that round-trips, kept JSON-valid (always
       with a '.' or exponent so it re-parses as a float). *)
    let s = Printf.sprintf "%.17g" f in
    let s =
      let shorter = Printf.sprintf "%.12g" f in
      if float_of_string shorter = f then shorter else s
    in
    Some (if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0")

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
      match float_repr f with
      | None -> Buffer.add_string buf "null"
      | Some s -> Buffer.add_string buf s)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> (
      match float_repr f with None -> Fmt.string ppf "null" | Some s -> Fmt.string ppf s)
  | String s ->
      let buf = Buffer.create (String.length s + 2) in
      escape buf s;
      Fmt.string ppf (Buffer.contents buf)
  | List [] -> Fmt.string ppf "[]"
  | List xs ->
      Fmt.pf ppf "@[<v 2>[@,%a@;<0 -2>]@]" Fmt.(list ~sep:(any ",@,") pp) xs
  | Obj [] -> Fmt.string ppf "{}"
  | Obj kvs ->
      let pp_field ppf (k, v) =
        let buf = Buffer.create (String.length k + 2) in
        escape buf k;
        Fmt.pf ppf "@[<hov 2>%s:@ %a@]" (Buffer.contents buf) pp v
      in
      Fmt.pf ppf "@[<v 2>{@,%a@;<0 -2>}@]"
        (Fmt.list ~sep:(Fmt.any ",@,") pp_field)
        kvs

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)

exception Parse_error of string

let default_max_depth = 512
let default_max_size = 64 * 1024 * 1024

let of_string ?(max_depth = default_max_depth) ?(max_size = default_max_size) s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  if n > max_size then
    Error (Printf.sprintf "input too large (%d bytes, limit %d)" n max_size)
  else
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error "expected %c at offset %d, found %c" c !pos c'
    | None -> error "expected %c at offset %d, found end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error "invalid literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then error "truncated \\u escape";
              let hex c =
                match c with
                | '0' .. '9' -> Char.code c - Char.code '0'
                | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                | _ -> error "bad \\u escape at offset %d" !pos
              in
              let code =
                (hex s.[!pos] lsl 12)
                lor (hex s.[!pos + 1] lsl 8)
                lor (hex s.[!pos + 2] lsl 4)
                lor hex s.[!pos + 3]
              in
              pos := !pos + 4;
              (* Basic-multilingual-plane code points only; encode UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> error "bad escape at offset %d" !pos)
      | Some c when Char.code c < 0x20 ->
          error "unescaped control character 0x%02x in string at offset %d"
            (Char.code c) !pos
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error "bad number %S at offset %d" tok start
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> error "bad number %S at offset %d" tok start
  in
  let rec parse_value depth =
    if depth >= max_depth then
      error "nesting deeper than %d at offset %d" max_depth !pos;
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | _ -> expect '}'
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | _ -> expect ']'
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then error "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
