(** A process-wide journal of discrete progress events (GA generations,
    search restarts, store compactions): a bounded ring for polling
    consumers ([tiler top], the [stats] wire method), synchronous
    subscribers for streaming consumers (the daemon's [progress]
    notifications), and an optional NDJSON sink for offline analysis.

    Emission is guarded the same way as {!Metrics}: with the journal
    disabled, no sink open and no subscribers, {!emit} is a few loads and a
    branch.  Events emitted while a {!Span} trace context is ambient carry
    that trace's id, which is how the daemon routes a search's progress to
    the connection that requested it. *)

type event = {
  seq : int;  (** 1-based, process-wide, monotone *)
  ts_us : float;  (** microseconds since {!Span.now_us}'s origin *)
  kind : string;  (** e.g. ["ga.generation"], ["search.restart"] *)
  trace_id : int option;  (** ambient {!Span} trace at emission time *)
  attrs : (string * Json.t) list;
}

val set_enabled : bool -> unit
(** Turn ring recording on or off (off by default).  Subscribers and the
    sink receive events regardless — attaching one is already opt-in. *)

val enabled : unit -> bool

val set_capacity : int -> unit
(** Resize the ring (default 1024, minimum 16).  Resizing drops buffered
    events but preserves sequence numbering. *)

val clear : unit -> unit
(** Drop buffered events.  Sequence numbers keep counting. *)

val emit : ?attrs:(string * Json.t) list -> string -> unit
(** Record an event and deliver it to every subscriber (synchronously, on
    the calling thread; subscriber exceptions are swallowed) and to the
    sink if open. *)

val recent : ?since:int -> ?limit:int -> unit -> event list
(** Buffered events with [seq > since], oldest first, capped to the newest
    [limit] when given.  Events that have been overwritten are silently
    absent — compare [seq] gaps to detect loss. *)

val last_seq : unit -> int
(** The most recently assigned sequence number (0 if none yet). *)

val subscribe : (event -> unit) -> int
(** Register a callback; returns a token for {!unsubscribe}. *)

val unsubscribe : int -> unit

val open_sink : string -> (unit, string) result
(** Start appending one NDJSON line per event to [path] (truncating any
    existing file); replaces a previously open sink. *)

val close_sink : unit -> unit

val to_json : event -> Json.t
(** [{"seq", "ts_us", "kind", "trace_id"?, "attrs"?}]. *)
