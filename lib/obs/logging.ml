let level_of_string s =
  match String.lowercase_ascii s with
  | "off" | "quiet" -> Ok None
  | "error" -> Ok (Some Logs.Error)
  | "warn" | "warning" -> Ok (Some Logs.Warning)
  | "info" -> Ok (Some Logs.Info)
  | "debug" -> Ok (Some Logs.Debug)
  | _ -> Error (Printf.sprintf "unknown log level %S" s)

let level_names = [ "off"; "error"; "warn"; "info"; "debug" ]

let start = Unix.gettimeofday ()

let reporter () =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf (fun ?header:_ ?tags:_ fmt ->
        let dt = Unix.gettimeofday () -. start in
        Format.kfprintf k Format.err_formatter
          ("[%8.3f] %s %s @[" ^^ fmt ^^ "@]@.")
          dt
          (match level with
          | Logs.App -> "app"
          | Logs.Error -> "ERROR"
          | Logs.Warning -> "WARN "
          | Logs.Info -> "info "
          | Logs.Debug -> "debug")
          (Logs.Src.name src))
  in
  { Logs.report }

let setup level =
  match level with
  | None -> ()
  | Some _ ->
      Logs.set_reporter (reporter ());
      Logs.set_level ~all:true level
