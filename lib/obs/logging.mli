(** Leveled stderr logging for the CLI and experiments.

    The libraries already log through {!Logs} sources ([tiling.cme],
    [tiling.core], ...); with no reporter installed those messages go
    nowhere, which is the default.  [setup] installs an [Fmt]-based
    reporter on stderr and sets the global level, turning them on. *)

val level_of_string : string -> (Logs.level option, string) result
(** Accepts [off], [error], [warn] / [warning], [info], [debug]. *)

val level_names : string list
(** The accepted spellings, for CLI documentation. *)

val setup : Logs.level option -> unit
(** Install a stderr reporter (timestamps relative to process start, source
    and level tags) and set the global log level.  [None] means logging
    stays off and no reporter is installed. *)
