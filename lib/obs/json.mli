(** A minimal JSON tree: enough to serialize metrics snapshots, Chrome
    traces and CLI results, and to parse them back in tests.  No external
    dependency — the toolchain here has no yojson. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats become [null];
    floats print with enough digits to round-trip. *)

val pp : t Fmt.t
(** Indented, human-oriented rendering of the same tree. *)

val of_string : string -> (t, string) result
(** Recursive-descent parser for the subset [to_string] emits (all of
    JSON minus surrogate-pair escapes).  Numbers with a [.], [e] or [E]
    parse as [Float], others as [Int]. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value bound to [k], if any; [None] on
    non-objects. *)

val to_float : t -> float option
(** Numeric value of an [Int] or [Float] node. *)
