(** A minimal JSON tree: enough to serialize metrics snapshots, Chrome
    traces and CLI results, and to parse them back in tests.  No external
    dependency — the toolchain here has no yojson. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats become [null];
    floats print with enough digits to round-trip. *)

val pp : t Fmt.t
(** Indented, human-oriented rendering of the same tree. *)

val default_max_depth : int
(** 512 — see {!of_string}. *)

val default_max_size : int
(** 64 MiB — see {!of_string}. *)

val of_string : ?max_depth:int -> ?max_size:int -> string -> (t, string) result
(** Recursive-descent parser for all of JSON minus surrogate-pair
    escapes.  Numbers with a [.], [e] or [E] parse as [Float], others as
    [Int].

    Hardened against hostile input — it never raises, whatever the bytes:
    unterminated strings, objects and arrays, truncated or non-hex [\u]
    escapes, bad literals and trailing garbage all return [Error] with an
    offset-carrying message.  [max_depth] (default {!default_max_depth})
    bounds bracket nesting so a ["[[[[..."] bomb cannot overflow the
    stack; [max_size] (default {!default_max_size}) rejects oversized
    payloads before any parsing work.  Servers reading untrusted bytes
    should pass limits sized to their message budget (the tiling daemon
    uses 1 MiB / depth 64, see docs/SERVER.md). *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value bound to [k], if any; [None] on
    non-objects. *)

val to_float : t -> float option
(** Numeric value of an [Int] or [Float] node. *)
