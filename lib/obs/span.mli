(** Timed scopes recorded into a bounded in-memory buffer, exportable as
    Chrome [trace_event] JSON (open the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}), plus request-scoped trace
    contexts whose span trees can be returned on the daemon wire.

    Tracing is disabled by default; with no live trace contexts a disabled
    [with_] is one atomic load, one branch and the call to the wrapped
    function.  The buffers are mutex-protected, so spans may be recorded
    from any {!Tiling_util.Par} domain; each event carries its domain id as
    the Chrome [tid], which lays parallel work out on separate tracks.

    The two recording surfaces are independent: the global Chrome buffer
    captures everything while {!set_enabled}[ true]; a trace context
    captures only the spans of threads it is ambient on, whether or not
    global recording is enabled. *)

val set_enabled : bool -> unit
(** Turn global recording on or off.  Off by default. *)

val enabled : unit -> bool

val tracing : unit -> bool
(** Whether any span recorded right now would be kept: global recording is
    on {e or} a trace context is ambient on the calling thread.  Use this
    to guard optional instrumentation work (e.g. per-chunk spans). *)

val set_capacity : int -> unit
(** Maximum retained events (default 65536).  Once full, further events are
    dropped and counted; {!to_chrome_json} reports the drop count under a
    final metadata event. *)

val clear : unit -> unit
(** Drop all recorded events and reset the drop counter (global buffer
    only; live trace contexts are unaffected). *)

val with_ : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_ name f] times [f ()] and records a complete ("ph":"X") event.
    The scope is recorded even when [f] raises.  Nesting is expressed by
    containment of time ranges, which is how the Chrome viewer stacks
    slices on a track.  If a trace context is ambient on the calling
    thread, the span also joins that trace as a child of the innermost
    enclosing span, and the context seen by [f] is the new child (so
    nested [with_] calls build a tree). *)

val instant : ?attrs:(string * Json.t) list -> string -> unit
(** A zero-duration ("ph":"i") marker, e.g. per-generation GA statistics.
    Joins the ambient trace like {!with_}. *)

val events_recorded : unit -> int
(** Events currently buffered (metadata events excluded). *)

val to_chrome_json : unit -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] with events in
    recording order; timestamps are microseconds since an arbitrary
    process-local origin. *)

val write_chrome : string -> unit
(** Serialize {!to_chrome_json} to a file. *)

(** {1 Request-scoped trace contexts} *)

type context = private { trace_id : int; span_id : int; depth : int }
(** A position in a trace: the trace's id, the id of the innermost open
    span (0 at the root) and its depth.  Values are created by
    {!start_trace} and derived internally by {!with_}; they are cheap,
    immutable and safe to send across threads and domains. *)

val start_trace : unit -> context
(** Open a new trace and return its root context.  The trace accumulates
    events in its own bounded buffer (see {!set_trace_capacity}) until
    {!finish_trace} or {!discard_trace}; every trace opened must be closed
    by one of the two, or its buffer leaks. *)

val finish_trace : context -> Json.t
(** Close the trace and return its span tree:
    [{"trace_id": int, "dropped": int, "spans": [span...]}] where each span
    is [{"name", "ts_us", "dur_us", "attrs"?, "children"?}], children
    sorted by start time.  Spans whose parent was dropped surface as extra
    roots.  Calling it twice returns an empty tree the second time. *)

val discard_trace : context -> unit
(** Close the trace and drop its events. *)

val current : unit -> context option
(** The context ambient on the calling thread, if any.  O(1) when no trace
    is live anywhere in the process. *)

val with_ambient : context option -> (unit -> 'a) -> 'a
(** [with_ambient ctx f] runs [f] with [ctx] installed as the calling
    thread's ambient context ([None] clears it), restoring the previous
    binding afterwards, raise or return.  Use this to carry a context
    across an explicit thread or domain hop (scheduler worker, pool
    chunk). *)

val record_at :
  ?attrs:(string * Json.t) list ->
  context ->
  string ->
  ts_us:float ->
  dur_us:float ->
  unit
(** Record a completed span with explicit timestamps as a child of [ctx] —
    for phases measured outside any call scope, e.g. the time a job spent
    queued before a worker picked it up. *)

val set_trace_capacity : int -> unit
(** Maximum events retained per trace (default 8192).  A full trace keeps
    recording shallow spans (depth <= 4) so the returned tree keeps its
    skeleton; deeper events are dropped and counted. *)

val now_us : unit -> float
(** Microseconds since the process-local origin shared by all spans. *)
