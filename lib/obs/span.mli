(** Timed scopes recorded into a bounded in-memory buffer, exportable as
    Chrome [trace_event] JSON (open the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}).

    Tracing is disabled by default; a disabled [with_] is one branch plus
    the call to the wrapped function.  The buffer is mutex-protected, so
    spans may be recorded from any {!Tiling_util.Par} domain; each event
    carries its domain id as the Chrome [tid], which lays parallel work out
    on separate tracks. *)

val set_enabled : bool -> unit
(** Turn recording on or off.  Off by default. *)

val enabled : unit -> bool

val set_capacity : int -> unit
(** Maximum retained events (default 65536).  Once full, further events are
    dropped and counted; {!to_chrome_json} reports the drop count under a
    final metadata event. *)

val clear : unit -> unit
(** Drop all recorded events and reset the drop counter. *)

val with_ : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_ name f] times [f ()] and records a complete ("ph":"X") event.
    The scope is recorded even when [f] raises.  Nesting is expressed by
    containment of time ranges, which is how the Chrome viewer stacks
    slices on a track. *)

val instant : ?attrs:(string * Json.t) list -> string -> unit
(** A zero-duration ("ph":"i") marker, e.g. per-generation GA statistics. *)

val events_recorded : unit -> int
(** Events currently buffered (metadata events excluded). *)

val to_chrome_json : unit -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] with events in
    recording order; timestamps are microseconds since an arbitrary
    process-local origin. *)

val write_chrome : string -> unit
(** Serialize {!to_chrome_json} to a file. *)
