(* The enabled flag is a plain ref: racy reads of an immediate are harmless
   in OCaml's memory model, and a mutex or Atomic here would tax every
   disabled call site for no benefit. *)
let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

type counter = int Atomic.t
type gauge = float Atomic.t

let hist_buckets = 63 (* bucket k holds observations with bit length k *)

type histogram = {
  buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
}

(* Registration is rare (module initialisation); a single mutex over the
   name tables is plenty.  Updates never take it. *)
let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let intern table make name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some v -> v
      | None ->
          let v = make () in
          Hashtbl.replace table name v;
          v)

let counter name = intern counters (fun () -> Atomic.make 0) name
let gauge name = intern gauges (fun () -> Atomic.make 0.) name

let histogram name =
  intern histograms
    (fun () ->
      {
        buckets = Array.init hist_buckets (fun _ -> Atomic.make 0);
        h_count = Atomic.make 0;
        h_sum = Atomic.make 0;
      })
    name

let incr c = if !enabled_flag then ignore (Atomic.fetch_and_add c 1)
let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c
let set g v = if !enabled_flag then Atomic.set g v

let bucket_of v =
  (* Bit length of [max v 0]: 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ... *)
  let v = max v 0 in
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  min (hist_buckets - 1) (go 0 v)

let observe h v =
  if !enabled_flag then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    ignore (Atomic.fetch_and_add h.h_sum (max v 0))
  end

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g 0.) gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0)
        histograms)

let sorted_bindings table =
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  List.sort (fun (a, _) (b, _) -> compare a b) all

let histogram_snapshot h =
  let buckets =
    Array.to_list h.buckets
    |> List.mapi (fun i b -> (i, Atomic.get b))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (i, c) ->
           Json.Obj [ ("le", Json.Int ((1 lsl i) - 1)); ("count", Json.Int c) ])
  in
  Json.Obj
    [
      ("count", Json.Int (Atomic.get h.h_count));
      ("sum", Json.Int (Atomic.get h.h_sum));
      ("buckets", Json.List buckets);
    ]

let names () =
  Mutex.protect registry_lock (fun () ->
      let of_table kind table =
        Hashtbl.fold (fun k _ acc -> (k, kind) :: acc) table []
      in
      List.sort compare
        (of_table `Counter counters
        @ of_table `Gauge gauges
        @ of_table `Histogram histograms))

let snapshot () =
  Mutex.protect registry_lock (fun () ->
      let counters_json =
        List.map (fun (k, c) -> (k, Json.Int (Atomic.get c))) (sorted_bindings counters)
      in
      let gauges_json =
        List.map (fun (k, g) -> (k, Json.Float (Atomic.get g))) (sorted_bindings gauges)
      in
      let hist_json =
        List.map (fun (k, h) -> (k, histogram_snapshot h)) (sorted_bindings histograms)
      in
      Json.Obj
        [
          ("counters", Json.Obj counters_json);
          ("gauges", Json.Obj gauges_json);
          ("histograms", Json.Obj hist_json);
        ])
