type t = { size : int; line : int; assoc : int; sets : int }

let make ~size ~line ?(assoc = 1) () =
  if not (Tiling_util.Intmath.is_pow2 size) then invalid_arg "cache size must be a power of two";
  if not (Tiling_util.Intmath.is_pow2 line) then invalid_arg "line size must be a power of two";
  if line > size then invalid_arg "line larger than cache";
  if assoc < 1 then invalid_arg "associativity must be >= 1";
  if size mod (line * assoc) <> 0 then invalid_arg "size not divisible by line * assoc";
  { size; line; assoc; sets = size / (line * assoc) }

let dm1k = make ~size:1024 ~line:32 ()
let dm8k = make ~size:8192 ~line:32 ()
let dm32k = make ~size:32768 ~line:32 ()

let line_of t addr = Tiling_util.Intmath.floor_div addr t.line
let set_of_line t l = Tiling_util.Intmath.pos_mod l t.sets
let set_of t addr = set_of_line t (line_of t addr)

let pp ppf t =
  Fmt.pf ppf "%dKB %s, %dB lines"
    (t.size / 1024)
    (if t.assoc = 1 then "direct-mapped" else Printf.sprintf "%d-way" t.assoc)
    t.line
