(** Cache geometry.

    The paper evaluates direct-mapped 8 KB and 32 KB caches with 32-byte
    lines; the model here also supports k-way set-associative LRU caches
    (CMEs handle those by counting k distinct contentions, section 2.2). *)

type t = private {
  size : int;   (** total capacity in bytes (power of two) *)
  line : int;   (** line size in bytes (power of two) *)
  assoc : int;  (** associativity; 1 = direct-mapped *)
  sets : int;   (** derived: [size / (line * assoc)] *)
}

val make : size:int -> line:int -> ?assoc:int -> unit -> t
(** @raise Invalid_argument unless [line] and [size] are powers of two,
    [line <= size], [assoc >= 1] and [assoc * line] divides [size]. *)

val dm1k : t
(** 1 KB direct-mapped, 32-byte lines — a small-modulus configuration
    ([sets * line = 1024]) whose outcome periods are short enough for the
    closed-form census to validate cheaply; used by benches and CI
    smokes. *)

val dm8k : t
(** 8 KB direct-mapped, 32-byte lines — the paper's primary configuration. *)

val dm32k : t
(** 32 KB direct-mapped, 32-byte lines — the paper's second configuration. *)

val line_of : t -> int -> int
(** Memory-line number of a byte address. *)

val set_of : t -> int -> int
(** Cache set of a byte address. *)

val set_of_line : t -> int -> int

val pp : t Fmt.t
