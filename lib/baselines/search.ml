open Tiling_ir

type result = { tiles : int array; objective : float; evaluations : int }

(* All baselines score candidates through the shared evaluation service:
   same memo, same backends, same parallel batching as the GA searches. *)
let make_eval ?backend ?domains sample nest cache =
  Tiling_search.Eval.create ?backend ?domains ~cache
    ~prepare:(fun tiles ->
      (Transform.tile nest tiles, Tiling_core.Sample.embed sample ~tiles))
    ()

let candidates_per_dim ~per_dim span =
  if span <= per_dim then List.init span (fun i -> i + 1)
  else if per_dim <= 1 then [ 1; span ]
    (* degenerate budget on a wide span: extremes only (a lattice step of
       [(span - 1) / (per_dim - 1)] would divide by zero) *)
  else begin
    (* Even lattice including the extremes. *)
    let xs = List.init per_dim (fun i -> 1 + (i * (span - 1) / (per_dim - 1))) in
    List.sort_uniq compare xs
  end

let exhaustive ?(per_dim = 32) ?backend ?domains sample nest cache =
  let spans = Transform.tile_spans nest in
  let eval = make_eval ?backend ?domains sample nest cache in
  let dims = Array.map (candidates_per_dim ~per_dim) spans in
  let d = Array.length spans in
  (* Enumerate the grid up front (in the classic lexicographic order, with
     the full-span vector first) so the service can score it in one
     deduplicated parallel batch. *)
  let grid = ref [ Array.copy spans ] in
  let current = Array.make d 1 in
  let rec go l =
    if l = d then grid := Array.copy current :: !grid
    else
      List.iter
        (fun t ->
          current.(l) <- t;
          go (l + 1))
        dims.(l)
  in
  go 0;
  let candidates = Array.of_list (List.rev !grid) in
  let costs = Tiling_search.Eval.evaluate_all eval candidates in
  let best = ref 0 in
  Array.iteri (fun i o -> if o < costs.(!best) then best := i) costs;
  {
    tiles = candidates.(!best);
    objective = costs.(!best);
    evaluations = Tiling_search.Eval.fresh eval;
  }

let random ?backend ~evals ~seed sample nest cache =
  let spans = Transform.tile_spans nest in
  let service = make_eval ?backend sample nest cache in
  let eval = Tiling_search.Eval.objective service in
  let fresh () = Tiling_search.Eval.fresh service in
  let rng = Tiling_util.Prng.create ~seed in
  let best = ref (Array.copy spans) in
  let best_obj = ref (eval !best) in
  (* Only fresh evaluations consume the budget (memoised repeats are free),
     so on a tiny tile space the budget can be unreachable: bound the number
     of draws as well to guarantee termination. *)
  let draws = ref 0 in
  while fresh () < evals && !draws < 4 * evals do
    incr draws;
    let t = Array.map (fun s -> 1 + Tiling_util.Prng.int rng s) spans in
    let o = eval t in
    if o < !best_obj then begin
      best_obj := o;
      best := t
    end
  done;
  { tiles = !best; objective = !best_obj; evaluations = fresh () }

let hill_climb ?backend ~evals ~seed sample nest cache =
  let spans = Transform.tile_spans nest in
  let service = make_eval ?backend sample nest cache in
  let eval = Tiling_search.Eval.objective service in
  let fresh () = Tiling_search.Eval.fresh service in
  let rng = Tiling_util.Prng.create ~seed in
  let d = Array.length spans in
  let best = ref (Array.copy spans) in
  let best_obj = ref (eval !best) in
  let neighbours t =
    List.concat
      (List.init d (fun l ->
           List.filter_map
             (fun dlt ->
               let v = Tiling_util.Intmath.clamp ~lo:1 ~hi:spans.(l) (t.(l) + dlt) in
               if v = t.(l) then None
               else begin
                 let t' = Array.copy t in
                 t'.(l) <- v;
                 Some t'
               end)
             [ -1; 1; -(max 1 (t.(l) / 4)); max 1 (t.(l) / 4) ]))
  in
  (* Memoised re-visits are free, so also bound the number of restarts to
     guarantee termination. *)
  let starts = ref 0 in
  while fresh () < evals && !starts < 4 * evals do
    incr starts;
    (* One multi-start descent. *)
    let here = ref (Array.map (fun s -> 1 + Tiling_util.Prng.int rng s) spans) in
    let here_obj = ref (eval !here) in
    let improved = ref true in
    while !improved && fresh () < evals do
      improved := false;
      let cands = neighbours !here in
      List.iter
        (fun t ->
          if fresh () < evals then begin
            let o = eval t in
            if o < !here_obj then begin
              here_obj := o;
              here := t;
              improved := true
            end
          end)
        cands
    done;
    if !here_obj < !best_obj then begin
      best_obj := !here_obj;
      best := !here
    end
  done;
  { tiles = !best; objective = !best_obj; evaluations = fresh () }
