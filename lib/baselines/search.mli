(** Search baselines for tile-size selection.

    All searches optimise exactly the same objective as the genetic
    algorithm — a {!Tiling_search.Backend} cost over a shared sample,
    memoised by a shared {!Tiling_search.Eval} service — so comparisons
    isolate the *search strategy* (section 5 of the paper explains why the
    authors could not compare against other published selectors on an equal
    footing; sharing the objective is how we can). *)

type result = {
  tiles : int array;
  objective : float;   (** replacement misses over the common sample *)
  evaluations : int;   (** fresh (memo-missing) objective calls spent *)
}

val make_eval :
  ?backend:Tiling_search.Backend.t ->
  ?domains:int ->
  Tiling_core.Sample.t ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  Tiling_search.Eval.t
(** The evaluation service every baseline scores candidates through:
    [prepare tiles] is the tiled nest plus the sample embedded under that
    tiling, exactly the GA's candidate preparation. *)

val candidates_per_dim : per_dim:int -> int -> int list
(** [candidates_per_dim ~per_dim span] is the sorted candidate tile sizes
    tried along one dimension by {!exhaustive}: all of [1..span] when the
    span fits the budget, otherwise an even lattice of [per_dim] values
    including both extremes.  A degenerate budget ([per_dim <= 1]) on a
    wide span yields the extremes [\[1; span\]].  Exposed for testing. *)

val exhaustive :
  ?per_dim:int ->
  ?backend:Tiling_search.Backend.t ->
  ?domains:int ->
  Tiling_core.Sample.t ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  result
(** Grid enumeration of the tile space.  [per_dim] (default 32) bounds the
    values tried per dimension (see {!candidates_per_dim}).  With small
    spans this is the true optimum (the paper's "optimal" reference).  The
    grid is scored as one deduplicated batch, so [domains > 1] evaluates it
    in parallel. *)

val random :
  ?backend:Tiling_search.Backend.t ->
  evals:int ->
  seed:int ->
  Tiling_core.Sample.t ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  result
(** Uniform random tile vectors, best kept.  Terminates even when the tile
    space holds fewer than [evals] distinct candidates (draws are bounded
    at [4 * evals]). *)

val hill_climb :
  ?backend:Tiling_search.Backend.t ->
  evals:int ->
  seed:int ->
  Tiling_core.Sample.t ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  result
(** Multi-start steepest-descent: from random starts, repeatedly move to
    the best of the (+/- 1, +/- 25 %) per-dimension neighbours until no
    neighbour improves or the budget runs out. *)
