(** Recursive cache-oblivious tiling baseline (Frigo et al.; PCOT is the
    modern loop-nest incarnation).

    A cache-oblivious divide-and-conquer knows nothing about the cache: it
    halves the longest dimension of the iteration space and recurses until
    the subproblem fits whatever cache it happens to run on.  Because the
    halving sequence is independent of position, all base-case boxes share
    one shape — so on a fixed cache the recursion behaves exactly like a
    loop tiling with that base-case shape.  This module computes that
    implied tile vector: it lets the cache-aware searches (GA, exhaustive,
    analytic selectors) be compared against the cache-oblivious strategy on
    the same objective, with the same evaluator.

    The working-set model is the shared footprint estimate
    ({!Analytic.footprint_lines}, summed over all references, 8-byte
    elements) — capacity only, no conflict awareness, which is precisely
    the gap a CME-driven search can exploit. *)

type t = {
  tiles : int array;   (** base-case extents, one per loop *)
  splits : int;        (** halvings performed before the base case fit *)
  working_set : int;   (** bytes the base case touches under the model *)
}

val plan : Tiling_ir.Nest.t -> Tiling_cache.Config.t -> t
(** Halve the longest remaining dimension (ties to the outermost) until
    the footprint fits the cache or every dimension has collapsed to 1.
    Affine-bounded nests use their static spans — the recursion subdivides
    the bounding box, as PCOT does for triangular spaces. *)

val tile_vector : Tiling_ir.Nest.t -> Tiling_cache.Config.t -> int array
(** [(plan nest cache).tiles], shaped like the other baseline selectors. *)
