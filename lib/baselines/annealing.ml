open Tiling_ir
open Tiling_util

type params = { evals : int; initial_temp : float; cooling : float }

let default_params = { evals = 750; initial_temp = -1.; cooling = 0.995 }

let neighbour rng spans t =
  let d = Array.length t in
  let t' = Array.copy t in
  let l = Prng.int rng d in
  (if Prng.bernoulli rng ~p:0.1 then
     (* occasional uniform restart of one coordinate *)
     t'.(l) <- 1 + Prng.int rng spans.(l)
   else begin
     let step =
       match Prng.int rng 4 with
       | 0 -> 1
       | 1 -> -1
       | 2 -> max 1 (t.(l) / 4)
       | _ -> -max 1 (t.(l) / 4)
     in
     t'.(l) <- Intmath.clamp ~lo:1 ~hi:spans.(l) (t.(l) + step)
   end);
  t'

let simulated_annealing ?(params = default_params) ?backend ~seed sample nest
    cache =
  let spans = Transform.tile_spans nest in
  let rng = Prng.create ~seed in
  let service = Search.make_eval ?backend sample nest cache in
  let eval = Tiling_search.Eval.objective service in
  let fresh () = Tiling_search.Eval.fresh service in
  let current = ref (Array.map (fun s -> 1 + Prng.int rng s) spans) in
  let current_obj = ref (eval !current) in
  let best = ref (Array.copy !current) and best_obj = ref !current_obj in
  let temp =
    ref
      (if params.initial_temp > 0. then params.initial_temp
       else Float.max 1. (!current_obj /. 2.))
  in
  (* Bound the number of steps as well as fresh evaluations: on a tiny tile
     space the walk cycles inside memoised territory and the budget would
     never be consumed. *)
  let steps = ref 0 in
  while fresh () < params.evals && !steps < 4 * params.evals do
    incr steps;
    let cand = neighbour rng spans !current in
    let obj = eval cand in
    let accept =
      obj <= !current_obj
      || Prng.float rng < exp (-.(obj -. !current_obj) /. Float.max 1e-9 !temp)
    in
    if accept then begin
      current := cand;
      current_obj := obj;
      if obj < !best_obj then begin
        best_obj := obj;
        best := Array.copy cand
      end
    end;
    temp := !temp *. params.cooling
  done;
  { Search.tiles = !best; objective = !best_obj; evaluations = fresh () }

type tabu_params = { tabu_evals : int; tenure : int }

let default_tabu_params = { tabu_evals = 750; tenure = 12 }

let tabu ?(params = default_tabu_params) ?backend ~seed sample nest cache =
  let spans = Transform.tile_spans nest in
  let d = Array.length spans in
  let rng = Prng.create ~seed in
  let service = Search.make_eval ?backend sample nest cache in
  let eval = Tiling_search.Eval.objective service in
  let fresh () = Tiling_search.Eval.fresh service in
  let tabu_until : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let iter = ref 0 in
  let current = ref (Array.map (fun s -> 1 + Prng.int rng s) spans) in
  let best = ref (Array.copy !current) and best_obj = ref (eval !current) in
  (* The memo makes revisited neighbourhoods free, so bound the number of
     iterations as well as the number of fresh evaluations: a deterministic
     walk cycling inside memoised territory must still terminate. *)
  while fresh () < params.tabu_evals && !iter < 4 * params.tabu_evals do
    incr iter;
    (* All (dimension, value) moves in the +/-1 / +/-25% neighbourhood. *)
    let moves =
      List.concat
        (List.init d (fun l ->
             List.filter_map
               (fun dlt ->
                 let v = Intmath.clamp ~lo:1 ~hi:spans.(l) (!current.(l) + dlt) in
                 if v = !current.(l) then None else Some (l, v))
               [ -1; 1; -max 1 (!current.(l) / 4); max 1 (!current.(l) / 4) ]))
    in
    let scored =
      List.filter_map
        (fun (l, v) ->
          if fresh () >= params.tabu_evals then None
          else begin
            let t = Array.copy !current in
            t.(l) <- v;
            let obj = eval t in
            let is_tabu =
              match Hashtbl.find_opt tabu_until (l, v) with
              | Some until -> !iter < until
              | None -> false
            in
            (* aspiration: a tabu move that beats the best is admissible *)
            if is_tabu && obj >= !best_obj then None else Some (obj, l, v, t)
          end)
        moves
    in
    match List.sort compare scored with
    | [] ->
        (* fully tabu neighbourhood: random restart *)
        current := Array.map (fun s -> 1 + Prng.int rng s) spans
    | (obj, l, _v, t) :: _ ->
        (* forbid undoing this move for [tenure] iterations *)
        Hashtbl.replace tabu_until (l, !current.(l)) (!iter + params.tenure);
        current := t;
        if obj < !best_obj then begin
          best_obj := obj;
          best := Array.copy t
        end
  done;
  { Search.tiles = !best; objective = !best_obj; evaluations = fresh () }
