(** Simulated annealing and tabu search over tile vectors.

    Section 3.1 of the paper surveys global optimisers for the nonlinear
    integer program: "simulated annealing and genetic algorithms have been
    used for years with very good results", while "tabu search obtains
    promising theoretical results, but only partial implementations have
    been reported".  Both are implemented here on exactly the GA's
    objective, so the three stochastic searches can be compared eval for
    eval. *)

type params = {
  evals : int;          (** objective budget (the GA uses 450-750) *)
  initial_temp : float; (** in objective units; default scales from the start *)
  cooling : float;      (** geometric factor per step, e.g. 0.995 *)
}

val default_params : params

val simulated_annealing :
  ?params:params ->
  ?backend:Tiling_search.Backend.t ->
  seed:int ->
  Tiling_core.Sample.t ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  Search.result
(** Metropolis acceptance over a random-neighbour walk (one tile moved by
    +/-1 or +/-25 %, occasionally resampled uniformly).  Steps are bounded
    at [4 * evals] so tiny tile spaces terminate. *)

type tabu_params = {
  tabu_evals : int;
  tenure : int;  (** iterations a reversed move stays forbidden *)
}

val default_tabu_params : tabu_params

val tabu :
  ?params:tabu_params ->
  ?backend:Tiling_search.Backend.t ->
  seed:int ->
  Tiling_core.Sample.t ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  Search.result
(** Best-admissible-neighbour descent with a recency-based tabu list over
    (dimension, new value) moves and aspiration by best-so-far. *)
