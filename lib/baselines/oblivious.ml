open Tiling_ir

type t = { tiles : int array; splits : int; working_set : int }

let working_set ~line ~elem forms tiles =
  Array.fold_left
    (fun acc form -> acc + (line * Analytic.footprint_lines ~line form ~elem tiles))
    0 forms

let plan (nest : Nest.t) (cache : Tiling_cache.Config.t) =
  let spans = Transform.tile_spans nest in
  let line = cache.Tiling_cache.Config.line in
  let cache_bytes = cache.Tiling_cache.Config.size in
  let elem = 8 in
  let forms = Array.map (fun r -> Nest.address_form nest r) nest.Nest.refs in
  let tiles = Array.copy spans in
  let splits = ref 0 in
  (* The cache-oblivious recursion halves the longest extent of the current
     sub-box and recurses into both halves; the base case is the first box
     whose working set fits the cache.  Every base-case box reached this way
     has the same shape (halving is oblivious to position), so the recursion
     is equivalent to tiling with that base-case shape — which is the vector
     we emit.  Ties go to the outermost dimension, matching the canonical
     presentation (split the slowest-varying loop first). *)
  let longest () =
    let best = ref (-1) in
    Array.iteri
      (fun l t -> if t > 1 && (!best < 0 || t > tiles.(!best)) then best := l)
      tiles;
    !best
  in
  let rec go () =
    if working_set ~line ~elem forms tiles > cache_bytes then begin
      let l = longest () in
      if l >= 0 then begin
        tiles.(l) <- (tiles.(l) + 1) / 2;
        incr splits;
        go ()
      end
    end
  in
  go ();
  {
    tiles;
    splits = !splits;
    working_set = working_set ~line ~elem forms tiles;
  }

let tile_vector nest cache = (plan nest cache).tiles
