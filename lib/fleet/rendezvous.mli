(** Rendezvous (highest-random-weight) hashing: deterministic key-to-node
    placement with minimal reshuffle on membership change.

    Every (node, key) pair is scored independently (FNV-1a 64 of
    [node ^ "\000" ^ key], finalized with splitmix64); a key belongs to
    its highest-scoring node.  Because scores don't depend on the member
    set, losing a node re-homes only that node's keys — the failover
    property the fleet router relies on: a worker crash reshuffles
    nothing on the survivors, and the crashed worker's keys fall to
    their (already determined) second choice. *)

val score : node:string -> key:string -> int64
(** The pair's score — compared {e unsigned}. Exposed for tests. *)

val rank : nodes:string list -> key:string -> string list
(** All [nodes] ordered best-first for [key] (ties, improbable, broken
    by node name).  The head is the owner; the tail is the retry order
    on failure. *)

val owner : nodes:string list -> key:string -> string option
(** [None] only when [nodes] is empty. *)
