(** One worker daemon as the router sees it: an address plus live health
    state.

    Health is probed with a [stats] round trip under a socket receive
    timeout ({!check}), and updated opportunistically by the forwarding
    path ({!mark_up} on a served response, {!mark_down} on a transport
    failure) — a crash is usually noticed by the request that hit it,
    not by the next periodic sweep.  A down worker stays in the
    rendezvous node set (placement must not reshuffle) but is skipped in
    the retry order until a probe succeeds.

    Metrics: [fleet.health.checks], [fleet.health.failures]. *)

type t

val make : Tiling_util.Netio.addr -> t
(** Starts optimistically [up] so a router booted moments before its
    workers doesn't fail its first requests. *)

val addr : t -> Tiling_util.Netio.addr

val name : t -> string
(** Canonical address string — the node id fed to {!Rendezvous}. *)

val up : t -> bool
val failures : t -> int
val forwards : t -> int
val last_ok_at : t -> float  (** 0. before the first success *)

val mark_up : t -> unit
val mark_down : t -> unit
val count_forward : t -> unit

val dial : ?timeout_s:float -> t -> (Unix.file_descr, string) result
(** Connect; with [timeout_s], arm [SO_RCVTIMEO]/[SO_SNDTIMEO] so a hung
    peer cannot wedge the caller (used by health checks — the forward
    path runs untimed and relies on EOF from a dead peer). *)

val check : ?timeout_s:float -> t -> bool
(** Probe and update health; [true] when the worker answered. *)

val to_json : t -> Tiling_obs.Json.t
(** Health snapshot for the router's [stats] response. *)
