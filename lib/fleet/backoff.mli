(** Jittered exponential backoff for clients retrying an [overloaded]
    daemon.

    The wait before attempt [k] (0-based) targets [base * 2^k], capped at
    [cap] — unless the server supplied a [retry_after_s] hint, which
    takes precedence (the daemon computes it from its live queue and
    recent service times, so it beats any client-side guess).  Either
    way the actual sleep is jittered uniformly into [0.5, 1.0] x target,
    de-synchronising a herd of rejected clients without ever sleeping
    less than half the server's ask. *)

type t

val create : ?base:float -> ?cap:float -> ?seed:int -> unit -> t
(** [base] defaults to 0.5s, [cap] to 30s.  [seed] pins the jitter
    stream for tests; without it the state is self-initialised. *)

val next : ?hint:float -> t -> float
(** The next sleep in seconds (advances the attempt counter).  [hint] is
    the server's [retry_after_s] when the reject carried one; values
    [<= 0.] are ignored. *)

val reset : t -> unit
(** Back to attempt 0 — call after a success. *)

val attempts : t -> int
