module Metrics = Tiling_obs.Metrics

(* Same instrument names as lib/server's Scheduler: the registry interns
   by name, and a process never double-counts — a group merged here
   reaches the worker daemon as a single request. *)
let m_hits = Metrics.counter "fleet.coalesce.hits"
let g_waiters = Metrics.gauge "fleet.coalesce.waiters"

type 'a waiter = coalesced:bool -> 'a -> unit

type 'a group = { mutable members : 'a waiter list (* reverse join order *) }

type 'a t = {
  lock : Mutex.t;
  groups : (string, 'a group) Hashtbl.t;
  hits : int Atomic.t;
  mutable waiting : int;
}

let create () =
  {
    lock = Mutex.create ();
    groups = Hashtbl.create 16;
    hits = Atomic.make 0;
    waiting = 0;
  }

let join t ~key waiter =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.groups key with
      | None ->
          Hashtbl.add t.groups key { members = [ waiter ] };
          `Leader
      | Some g ->
          g.members <- waiter :: g.members;
          Atomic.incr t.hits;
          Metrics.incr m_hits;
          t.waiting <- t.waiting + 1;
          Metrics.set g_waiters (float_of_int t.waiting);
          `Attached)

let settle t ~key v =
  let members =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.groups key with
        | None -> []
        | Some g ->
            Hashtbl.remove t.groups key;
            let ms = List.rev g.members in
            t.waiting <- t.waiting - (List.length ms - 1);
            Metrics.set g_waiters (float_of_int t.waiting);
            ms)
  in
  match members with
  | [] -> 0
  | leader :: rest ->
      let coalesced = rest <> [] in
      leader ~coalesced v;
      List.iter (fun w -> w ~coalesced:true v) rest;
      List.length members

let inflight t = Mutex.protect t.lock (fun () -> Hashtbl.length t.groups)
let hits t = Atomic.get t.hits
let waiting t = Mutex.protect t.lock (fun () -> t.waiting)
