type t = {
  base : float;
  cap : float;
  rng : Random.State.t;
  mutable attempt : int;
}

let create ?(base = 0.5) ?(cap = 30.) ?seed () =
  let rng =
    match seed with
    | Some s -> Random.State.make [| s |]
    | None -> Random.State.make_self_init ()
  in
  { base = Float.max 0.001 base; cap = Float.max 0.001 cap; rng; attempt = 0 }

let next ?hint t =
  let target =
    match hint with
    | Some h when h > 0. -> h
    | _ -> t.base *. (2. ** float_of_int t.attempt)
  in
  let target = Float.min t.cap target in
  t.attempt <- t.attempt + 1;
  (* Full jitter would allow near-zero sleeps that defeat the server's
     hint; half jitter keeps the herd spread while honoring at least
     half the suggested wait. *)
  target *. (0.5 +. Random.State.float t.rng 0.5)

let reset t = t.attempt <- 0
let attempts t = t.attempt
