(** In-flight request coalescing: a keyed table of request groups where
    the first joiner (the {e leader}) does the work and everyone who
    joins before it finishes shares the result.

    The router keys groups by {!Key.coalesce_key}; the single-daemon
    equivalent lives inside [Tiling_server.Scheduler] (waiter lists on
    queued jobs) — both bump the same [fleet.coalesce.hits] counter and
    [fleet.coalesce.waiters] gauge, which is safe because the metrics
    registry interns instruments by name and a group merged at the
    router arrives downstream as one request. *)

type 'a waiter = coalesced:bool -> 'a -> unit
(** Delivery callback.  [coalesced] is true for {e every} member of a
    group that ended up sharing (leader included), false for a group of
    one. *)

type 'a t

val create : unit -> 'a t

val join : 'a t -> key:string -> 'a waiter -> [ `Leader | `Attached ]
(** [`Leader]: a new group was opened — the caller must perform the work
    and {!settle} the key (on success {e and} on failure, or the group
    leaks and later joiners hang).  [`Attached]: the waiter was added to
    an existing group and will be called from the leader's {!settle}. *)

val settle : 'a t -> key:string -> 'a -> int
(** Close the group and deliver [v] to every member in join order,
    leader first.  Returns the group size (0 if the key was not open —
    e.g. settled twice).  Waiters run on the caller's thread and must
    not raise. *)

val inflight : 'a t -> int  (** open groups *)

val hits : 'a t -> int  (** joins that attached rather than led *)

val waiting : 'a t -> int  (** waiters currently attached *)
