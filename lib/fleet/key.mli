(** Canonical request keys for the router.

    Both keys canonicalise the request (recursively sorted object
    fields) so that field order on the wire never splits identical
    requests, then differ in what they keep:

    - the {e shard key} drops pure delivery options ([trace],
      [progress], [deadline_s]) — they don't change the answer, so they
      must not change the owning worker;
    - the {e coalesce key} keeps every parameter — two requests may
      share one evaluation only when their response envelopes can be
      byte-identical, and a different deadline or trace opt-in breaks
      that.  Progress-streaming requests never coalesce at all (frames
      are per-subscription). *)

val canon : Tiling_obs.Json.t -> Tiling_obs.Json.t
(** Sort object fields recursively; leaves and list order untouched. *)

val shard_key : meth:string -> params:Tiling_obs.Json.t -> string
(** Rendezvous-hash input for worker selection. *)

val coalesce_key : meth:string -> params:Tiling_obs.Json.t -> string option
(** In-flight dedup key; [None] when the request must not coalesce. *)
