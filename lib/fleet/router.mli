(** The fleet front door: an NDJSON daemon that owns no scheduler and no
    evaluations — it shards searching requests across worker daemons and
    coalesces identical ones in flight.

    Topology and semantics (docs/SERVER.md "Fleet mode"):

    - {b placement} — each request's {!Key.shard_key} picks a worker by
      {!Rendezvous} hashing, so the same search always lands on the same
      node (warm store locality) and a worker loss re-homes only that
      worker's keys;
    - {b coalescing} — concurrent identical requests
      ({!Key.coalesce_key}) forward once; every member's envelope is the
      worker's response with its own id swapped in and
      ["coalesced": true] raised;
    - {b failover} — a transport failure (connection refused, EOF from a
      killed worker) marks the node down and replays the request on the
      next node in rendezvous order; the client sees one successful
      response, never the crash.  Server-side errors — including
      [overloaded]/[draining] backpressure with their [retry_after_s]
      hints — propagate upstream verbatim: a saturated owner is the
      client's cue to back off, not a reason to wreck another node's
      locality;
    - {b health} — a background thread [stats]-probes every worker each
      [health_period_s] under [io_timeout_s]; the forward path also
      updates health opportunistically.

    [stats], [metrics] and [shutdown] are answered by the router itself
    ([stats] carries ["role": "router"], per-worker health and
    forwarding counters).  Unknown methods are forwarded: the worker's
    own [unknown_method] reply keeps router and worker decoupled.

    Metrics: [fleet.router.requests] / [.forwarded] / [.retries] /
    [.backpressure] / [.failed], the [fleet.workers.up] gauge, plus
    [fleet.coalesce.*] from {!Coalesce}. *)

type config = {
  addr : Tiling_util.Netio.addr;
  workers : Tiling_util.Netio.addr list;
  health_period_s : float;
  io_timeout_s : float;  (** health-probe dial/read timeout *)
  max_line_bytes : int;
  metrics_addr : Tiling_util.Netio.addr option;
}

val default_config : config
(** No workers (a router refuses to start without at least one), 2s
    health period, 2s probe timeout, 1 MiB line cap. *)

val run : config -> (unit, string) result
(** Serve until SIGTERM/SIGINT or a [shutdown] request, then drain:
    stop accepting, let in-flight forwards finish, join every thread.
    [Error] covers setup failures (bind, metrics listener, empty worker
    list). *)
