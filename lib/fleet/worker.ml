module Json = Tiling_obs.Json
module Metrics = Tiling_obs.Metrics
module Netio = Tiling_util.Netio
module Protocol = Tiling_server.Protocol

let m_checks = Metrics.counter "fleet.health.checks"
let m_failures = Metrics.counter "fleet.health.failures"

type t = {
  addr : Netio.addr;
  name : string;  (* canonical addr string: the rendezvous node id *)
  lock : Mutex.t;
  mutable up : bool;
  mutable failures : int;
  mutable last_ok_at : float;
  mutable forwards : int;
}

let make addr =
  {
    addr;
    name = Netio.addr_to_string addr;
    lock = Mutex.create ();
    (* Optimistic until the first health sweep: a router booted moments
       before its workers shouldn't fail its first requests. *)
    up = true;
    failures = 0;
    last_ok_at = 0.;
    forwards = 0;
  }

let addr t = t.addr
let name t = t.name
let up t = Mutex.protect t.lock (fun () -> t.up)
let failures t = Mutex.protect t.lock (fun () -> t.failures)
let forwards t = Mutex.protect t.lock (fun () -> t.forwards)
let last_ok_at t = Mutex.protect t.lock (fun () -> t.last_ok_at)

let mark_up t =
  Mutex.protect t.lock (fun () ->
      t.up <- true;
      t.last_ok_at <- Unix.gettimeofday ())

let mark_down t =
  Mutex.protect t.lock (fun () ->
      t.up <- false;
      t.failures <- t.failures + 1);
  Metrics.incr m_failures

let count_forward t = Mutex.protect t.lock (fun () -> t.forwards <- t.forwards + 1)

let dial ?timeout_s t =
  match Netio.connect t.addr with
  | Error _ as e -> e
  | Ok fd ->
      (match timeout_s with
      | Some s when s > 0. -> (
          try
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
            Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
          with Unix.Unix_error _ -> ())
      | _ -> ());
      Ok fd

let max_stats_bytes = 1 lsl 20

(* One [stats] round trip under a receive timeout: proves the daemon is
   not just accepting but answering. *)
let check ?(timeout_s = 2.0) t =
  Metrics.incr m_checks;
  let probe () =
    match dial ~timeout_s t with
    | Error m -> Error m
    | Ok fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let req =
              Json.Obj
                [
                  ("v", Json.Int Protocol.version);
                  ("id", Json.Int 0);
                  ("method", Json.String "stats");
                ]
            in
            match Netio.write_line fd (Json.to_string req) with
            | Error m -> Error m
            | Ok () -> (
                match
                  Netio.read_line ~max_bytes:max_stats_bytes (Netio.reader fd)
                with
                | `Line _ -> Ok ()
                | `Eof -> Error "closed during health check"
                | `Too_long -> Error "oversized stats reply"
                | exception Unix.Unix_error (e, _, _) ->
                    Error (Unix.error_message e)))
  in
  match probe () with
  | Ok () ->
      mark_up t;
      true
  | Error _ ->
      mark_down t;
      false

let to_json t =
  Mutex.protect t.lock (fun () ->
      Json.Obj
        [
          ("addr", Json.String t.name);
          ("up", Json.Bool t.up);
          ("failures", Json.Int t.failures);
          ("forwards", Json.Int t.forwards);
          ( "last_ok_s_ago",
            if t.last_ok_at = 0. then Json.Null
            else Json.Float (Unix.gettimeofday () -. t.last_ok_at) );
        ])
