module Json = Tiling_obs.Json
module Metrics = Tiling_obs.Metrics
module Netio = Tiling_util.Netio
module Protocol = Tiling_server.Protocol
module Http = Tiling_server.Http

let m_requests = Metrics.counter "fleet.router.requests"
let m_forwarded = Metrics.counter "fleet.router.forwarded"
let m_retries = Metrics.counter "fleet.router.retries"
let m_backpressure = Metrics.counter "fleet.router.backpressure"
let m_failed = Metrics.counter "fleet.router.failed"
let g_workers_up = Metrics.gauge "fleet.workers.up"

let log = Logs.Src.create "tiling.router" ~doc:"tiling fleet router"

module Log = (val Logs.src_log log)

type config = {
  addr : Netio.addr;
  workers : Netio.addr list;
  health_period_s : float;
  io_timeout_s : float;
  max_line_bytes : int;
  metrics_addr : Netio.addr option;
}

let default_config =
  {
    addr = Netio.Unix_sock "tiler-router.sock";
    workers = [];
    health_period_s = 2.0;
    io_timeout_s = 2.0;
    max_line_bytes = 1 lsl 20;
    metrics_addr = None;
  }

let max_request_depth = 64

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;  (* one response line at a time *)
  plock : Mutex.t;  (* guards [pending] *)
  idle : Condition.t;
  mutable pending : int;  (* request threads that will still write to [fd] *)
}

type state = {
  cfg : config;
  workers : Worker.t list;
  coalesce : Json.t Coalesce.t;
  started_at : float;
  stop : bool Atomic.t;
  clock : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  mutable conn_threads : Thread.t list;
  received : int Atomic.t;
  forwarded : int Atomic.t;
  retried : int Atomic.t;
  backpressure : int Atomic.t;
  failed : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Connection bookkeeping (same discipline as Tiling_server.Server)      *)

let reply conn j =
  Mutex.protect conn.wlock (fun () ->
      match Netio.write_line conn.fd (Json.to_string j) with
      | Ok () -> ()
      | Error m -> Log.debug (fun f -> f "dropping reply: %s" m))

let conn_begin c = Mutex.protect c.plock (fun () -> c.pending <- c.pending + 1)

let conn_end c =
  Mutex.protect c.plock (fun () ->
      c.pending <- c.pending - 1;
      if c.pending = 0 then Condition.broadcast c.idle)

let conn_wait_idle c =
  Mutex.protect c.plock (fun () ->
      while c.pending > 0 do
        Condition.wait c.idle c.plock
      done)

(* ------------------------------------------------------------------ *)
(* Envelope surgery                                                     *)

(* A downstream response becomes each group member's response: swap in
   the member's id and, for a group that actually shared, raise the
   [coalesced] flag (idempotent — the worker may have set it already
   when the group ALSO coalesced scheduler-side).  Field order matches
   {!Protocol.ok_response}, so the group's envelopes stay byte-identical
   modulo id. *)
let rewrite_envelope ~id ~coalesced j =
  match j with
  | Json.Obj fields ->
      let fields = List.map (fun (k, v) -> if k = "id" then (k, id) else (k, v)) fields in
      let fields =
        if coalesced && not (List.mem_assoc "coalesced" fields) then
          List.concat_map
            (fun (k, v) ->
              if k = "status" then [ (k, v); ("coalesced", Json.Bool true) ]
              else [ (k, v) ])
            fields
        else fields
      in
      Json.Obj fields
  | other -> other

let response_code j =
  match Json.member "error" j with
  | Some e -> (
      match Json.member "code" e with
      | Some (Json.String s) -> Protocol.code_of_string s
      | _ -> None)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Forwarding                                                           *)

let worker_by_name st name =
  List.find_opt (fun w -> Worker.name w = name) st.workers

(* All workers in rendezvous order for [key], the live ones first.  Down
   workers stay as a last resort: health state may be stale, and a
   request that would otherwise fail outright is worth one optimistic
   dial. *)
let candidates st ~key =
  let ranked =
    Rendezvous.rank ~nodes:(List.map Worker.name st.workers) ~key
    |> List.filter_map (worker_by_name st)
  in
  let up, down = List.partition Worker.up ranked in
  up @ down

(* Forward [req] to [w] and relay until the final envelope.  Progress
   frames are relayed upstream as they arrive, with the id rewritten
   (progress-streaming requests never coalesce, so the group is always
   just this caller).  [Error] means a transport-level failure — the
   worker died or spoke garbage — and the caller should retry elsewhere;
   a server-side error envelope is a successful forward. *)
let forward_once st conn ~(req : Protocol.request) w =
  match Worker.dial w with
  | Error m -> Error m
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let downstream =
            Json.Obj
              [
                ("v", Json.Int Protocol.version);
                ("id", Json.Int 1);
                ("method", Json.String req.meth);
                ("params", req.params);
              ]
          in
          match Netio.write_line fd (Json.to_string downstream) with
          | Error m -> Error m
          | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
          | Ok () ->
              let r = Netio.reader fd in
              let rec relay () =
                match Netio.read_line ~max_bytes:st.cfg.max_line_bytes r with
                | `Eof -> Error "worker closed mid-request"
                | `Too_long ->
                    Error
                      (Printf.sprintf "worker reply exceeds %d bytes"
                         st.cfg.max_line_bytes)
                | exception Unix.Unix_error (e, _, _) ->
                    Error (Unix.error_message e)
                | `Line line -> (
                    match
                      Json.of_string ~max_depth:max_request_depth
                        ~max_size:st.cfg.max_line_bytes line
                    with
                    | Error m -> Error ("malformed worker reply: " ^ m)
                    | Ok j -> (
                        match Json.member "status" j with
                        | Some (Json.String "progress") ->
                            reply conn
                              (rewrite_envelope ~id:req.id ~coalesced:false j);
                            relay ()
                        | _ -> Ok j))
              in
              relay ())

let no_live_worker =
  Protocol.err Protocol.Internal "no live worker could serve the request"

(* The leader's job: walk the candidate list until a worker answers.
   Transport failures mark the worker down and move on (a retried
   request may replay progress frames already relayed — documented in
   docs/SERVER.md); backpressure and every other server-side error
   propagate as-is, because the rendezvous owner being saturated is a
   signal for the CLIENT to back off, not for the router to pile the
   same key onto a second node and wreck its warm locality. *)
let forward st conn ~(req : Protocol.request) ~key =
  let rec go = function
    | [] ->
        Atomic.incr st.failed;
        Metrics.incr m_failed;
        Protocol.error_response ~id:req.id no_live_worker
    | w :: rest -> (
        match forward_once st conn ~req w with
        | Error m ->
            Log.info (fun f ->
                f "worker %s failed (%s); retrying on the next node"
                  (Worker.name w) m);
            Worker.mark_down w;
            if rest <> [] then begin
              Atomic.incr st.retried;
              Metrics.incr m_retries
            end;
            go rest
        | Ok envelope ->
            Worker.mark_up w;
            Worker.count_forward w;
            Atomic.incr st.forwarded;
            Metrics.incr m_forwarded;
            (match response_code envelope with
            | Some (Protocol.Overloaded | Protocol.Draining) ->
                Atomic.incr st.backpressure;
                Metrics.incr m_backpressure
            | _ -> ());
            envelope)
  in
  go (candidates st ~key)

(* ------------------------------------------------------------------ *)
(* Local methods                                                        *)

let stats_json st =
  Json.Obj
    [
      ("pid", Json.Int (Unix.getpid ()));
      ("version", Json.Int Protocol.version);
      ("role", Json.String "router");
      ("uptime_s", Json.Float (Unix.gettimeofday () -. st.started_at));
      ("workers", Json.List (List.map Worker.to_json st.workers));
      ( "requests",
        Json.Obj
          [
            ("received", Json.Int (Atomic.get st.received));
            ("forwarded", Json.Int (Atomic.get st.forwarded));
            ("retried", Json.Int (Atomic.get st.retried));
            ("backpressure", Json.Int (Atomic.get st.backpressure));
            ("failed", Json.Int (Atomic.get st.failed));
            ("coalesced", Json.Int (Coalesce.hits st.coalesce));
          ] );
      ( "coalesce",
        Json.Obj
          [
            ("inflight", Json.Int (Coalesce.inflight st.coalesce));
            ("waiting", Json.Int (Coalesce.waiting st.coalesce));
            ("hits", Json.Int (Coalesce.hits st.coalesce));
          ] );
      ( "connections",
        Json.Int (Mutex.protect st.clock (fun () -> Hashtbl.length st.conns)) );
    ]

let handle_metrics conn (req : Protocol.request) =
  match Protocol.Params.string req.params "format" with
  | Error m ->
      reply conn
        (Protocol.error_response ~id:req.id (Protocol.err Protocol.Bad_request m))
  | Ok (Some "json") ->
      reply conn
        (Protocol.ok_response ~id:req.id
           (Json.Obj
              [ ("format", Json.String "json"); ("snapshot", Metrics.snapshot ()) ]))
  | Ok (None | Some "openmetrics") ->
      reply conn
        (Protocol.ok_response ~id:req.id
           (Json.Obj
              [
                ("format", Json.String "openmetrics");
                ("body", Json.String (Tiling_obs.Openmetrics.render ()));
              ]))
  | Ok (Some other) ->
      reply conn
        (Protocol.error_response ~id:req.id
           (Protocol.err Protocol.Bad_request
              (Printf.sprintf "unknown format %S (expected openmetrics or json)"
                 other)))

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)

let dispatch st conn (req : Protocol.request) =
  Atomic.incr st.received;
  Metrics.incr m_requests;
  match req.meth with
  | "stats" -> reply conn (Protocol.ok_response ~id:req.id (stats_json st))
  | "metrics" -> handle_metrics conn req
  | "shutdown" ->
      reply conn
        (Protocol.ok_response ~id:req.id (Json.Obj [ ("stopping", Json.Bool true) ]));
      Log.info (fun f -> f "shutdown requested over the wire");
      Atomic.set st.stop true
  | meth ->
      (* Everything else belongs to a worker.  The router does not know
         the method table — an unknown method comes back from the worker
         as its own [unknown_method] error, which keeps router and
         worker versions decoupled. *)
      let skey = Key.shard_key ~meth ~params:req.params in
      conn_begin conn;
      let serve () =
        Fun.protect
          ~finally:(fun () -> conn_end conn)
          (fun () ->
            match Key.coalesce_key ~meth ~params:req.params with
            | None ->
                let envelope = forward st conn ~req ~key:skey in
                reply conn
                  (rewrite_envelope ~id:req.id ~coalesced:false envelope)
            | Some ckey -> (
                let waiter ~coalesced envelope =
                  reply conn (rewrite_envelope ~id:req.id ~coalesced envelope)
                in
                match Coalesce.join st.coalesce ~key:ckey waiter with
                | `Attached -> ()
                | `Leader ->
                    let envelope =
                      try forward st conn ~req ~key:skey
                      with e ->
                        Protocol.error_response ~id:req.id
                          (Protocol.err Protocol.Internal
                             (Printexc.to_string e))
                    in
                    ignore (Coalesce.settle st.coalesce ~key:ckey envelope)))
      in
      (* One thread per forwarded request: the connection read loop stays
         free to accept pipelined requests while this one blocks on a
         worker, and an attached waiter costs no thread at all once the
         join returns. *)
      ignore (Thread.create serve ())

(* ------------------------------------------------------------------ *)
(* Per-connection read loop                                             *)

let salvage_id j = Option.value (Json.member "id" j) ~default:Json.Null

let serve_conn st conn =
  let r = Netio.reader conn.fd in
  let rec loop () =
    match Netio.read_line ~max_bytes:st.cfg.max_line_bytes r with
    | `Eof -> ()
    | `Too_long ->
        reply conn
          (Protocol.error_response ~id:Json.Null
             (Protocol.err Protocol.Payload_too_large
                (Printf.sprintf "request line exceeds %d bytes"
                   st.cfg.max_line_bytes)))
    | `Line line ->
        if String.trim line = "" then loop ()
        else begin
          (match
             Json.of_string ~max_depth:max_request_depth
               ~max_size:st.cfg.max_line_bytes line
           with
          | Error m ->
              reply conn
                (Protocol.error_response ~id:Json.Null
                   (Protocol.err Protocol.Bad_request ("invalid JSON: " ^ m)))
          | Ok j -> (
              match Protocol.request_of_json j with
              | Error e -> reply conn (Protocol.error_response ~id:(salvage_id j) e)
              | Ok req -> dispatch st conn req));
          loop ()
        end
  in
  (try loop ()
   with e ->
     Log.err (fun f -> f "connection loop died: %s" (Printexc.to_string e)));
  conn_wait_idle conn;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Health sweeping                                                      *)

let set_up_gauge st =
  let up = List.length (List.filter Worker.up st.workers) in
  Metrics.set g_workers_up (float_of_int up)

let health_thread st () =
  (* First sweep immediately: the optimistic initial [up] should meet
     reality before the first health period elapses. *)
  let sweep () =
    List.iter
      (fun w ->
        if not (Atomic.get st.stop) then
          ignore (Worker.check ~timeout_s:st.cfg.io_timeout_s w))
      st.workers;
    set_up_gauge st
  in
  sweep ();
  while not (Atomic.get st.stop) do
    let slept = ref 0. in
    while (not (Atomic.get st.stop)) && !slept < st.cfg.health_period_s do
      Thread.delay 0.2;
      slept := !slept +. 0.2
    done;
    if not (Atomic.get st.stop) then sweep ()
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)

let install_signals stop =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set stop true))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ]

let run (cfg : config) =
  if cfg.workers = [] then Error "a router needs at least one --worker address"
  else
    match Netio.listen cfg.addr with
    | Error m ->
        Error
          (Printf.sprintf "cannot listen on %s: %s"
             (Netio.addr_to_string cfg.addr) m)
    | Ok lfd -> (
        let http =
          match cfg.metrics_addr with
          | None -> Ok None
          | Some addr ->
              Result.map Option.some
                (Http.start ~addr ~body:(fun () -> Tiling_obs.Openmetrics.render ()))
        in
        match http with
        | Error m ->
            (try Unix.close lfd with Unix.Unix_error _ -> ());
            Error (Printf.sprintf "cannot start metrics listener: %s" m)
        | Ok http ->
            let stop = Atomic.make false in
            install_signals stop;
            let st =
              {
                cfg;
                workers = List.map Worker.make cfg.workers;
                coalesce = Coalesce.create ();
                started_at = Unix.gettimeofday ();
                stop;
                clock = Mutex.create ();
                conns = Hashtbl.create 16;
                conn_threads = [];
                received = Atomic.make 0;
                forwarded = Atomic.make 0;
                retried = Atomic.make 0;
                backpressure = Atomic.make 0;
                failed = Atomic.make 0;
              }
            in
            set_up_gauge st;
            let health = Thread.create (health_thread st) () in
            Log.app (fun f ->
                f "routing on %s for %d workers (pid %d)"
                  (Netio.addr_to_string cfg.addr)
                  (List.length st.workers) (Unix.getpid ()));
            let next = ref 0 in
            while not (Atomic.get st.stop) do
              match Unix.select [ lfd ] [] [] 0.2 with
              | [], _, _ -> ()
              | _ -> (
                  match Unix.accept ~cloexec:true lfd with
                  | exception
                      Unix.Unix_error
                        ((Unix.EINTR | Unix.EAGAIN | Unix.ECONNABORTED), _, _) ->
                      ()
                  | fd, _ ->
                      let conn =
                        {
                          fd;
                          wlock = Mutex.create ();
                          plock = Mutex.create ();
                          idle = Condition.create ();
                          pending = 0;
                        }
                      in
                      let key =
                        incr next;
                        !next
                      in
                      Mutex.protect st.clock (fun () ->
                          Hashtbl.replace st.conns key conn);
                      let t =
                        Thread.create
                          (fun () ->
                            serve_conn st conn;
                            Mutex.protect st.clock (fun () ->
                                Hashtbl.remove st.conns key))
                          ()
                      in
                      st.conn_threads <- t :: st.conn_threads)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            done;
            Log.app (fun f -> f "draining");
            (try Unix.close lfd with Unix.Unix_error _ -> ());
            Option.iter Http.stop http;
            Mutex.protect st.clock (fun () ->
                Hashtbl.iter
                  (fun _ c ->
                    try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
                    with Unix.Unix_error _ -> ())
                  st.conns);
            List.iter Thread.join st.conn_threads;
            Thread.join health;
            (match cfg.addr with
            | Netio.Unix_sock p -> ( try Sys.remove p with Sys_error _ -> ())
            | Netio.Tcp _ -> ());
            Log.app (fun f -> f "stopped");
            Ok ())
