(* Rendezvous (highest-random-weight) hashing over node name strings.

   Each (node, key) pair gets a pseudo-random 64-bit score; a key's owner
   is the highest-scoring node.  Removing a node only re-homes the keys
   it owned (their other scores are untouched), and adding one only
   steals the keys it now wins — the minimal-reshuffle property the
   router's failover leans on, with no ring state to maintain. *)

let fnv_offset_basis = -3750763034362895579L (* 14695981039346656037 *)
let fnv_prime = 1099511628211L

let fnv1a64 s =
  let h = ref fnv_offset_basis in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* FNV is fast but its low bits mix poorly; push the hash through the
   splitmix64 finalizer so score comparisons see avalanche-quality bits. *)
let splitmix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let score ~node ~key = splitmix64 (fnv1a64 (node ^ "\000" ^ key))

let rank ~nodes ~key =
  nodes
  |> List.map (fun node -> (score ~node ~key, node))
  |> List.sort (fun (sa, na) (sb, nb) ->
         match Int64.unsigned_compare sb sa with
         | 0 -> String.compare na nb
         | c -> c)
  |> List.map snd

let owner ~nodes ~key =
  match rank ~nodes ~key with [] -> None | n :: _ -> Some n
