module Json = Tiling_obs.Json

let rec canon j =
  match j with
  | Json.Obj fields ->
      Json.Obj
        (List.sort
           (fun (a, _) (b, _) -> String.compare a b)
           (List.map (fun (k, v) -> (k, canon v)) fields))
  | Json.List items -> Json.List (List.map canon items)
  | other -> other

let strip keys j =
  match j with
  | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> not (List.mem k keys)) fields)
  | other -> other

(* Delivery options don't change which worker should own the search:
   stripping them keeps a traced request and its plain twin on the same
   node, where the second one hits the warm store. *)
let routing_noise = [ "trace"; "progress"; "deadline_s" ]

let shard_key ~meth ~params =
  meth ^ " " ^ Json.to_string (canon (strip routing_noise params))

let coalesce_key ~meth ~params =
  match Json.member "progress" params with
  | Some (Json.Bool true) -> None
  | _ -> Some (meth ^ " " ^ Json.to_string (canon params))
