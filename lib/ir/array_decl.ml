type t = {
  name : string;
  extents : int array;
  mutable layout : int array;
  elem_size : int;
  mutable base : int;
}

let create ?(elem_size = 8) name extents =
  assert (Array.length extents > 0);
  Array.iter (fun e -> assert (e >= 1)) extents;
  assert (elem_size >= 1);
  { name; extents; layout = Array.copy extents; elem_size; base = 0 }

let copy t = { t with layout = Array.copy t.layout }

let rank t = Array.length t.extents

let strides t =
  let d = rank t in
  let s = Array.make d t.elem_size in
  for k = 1 to d - 1 do
    s.(k) <- s.(k - 1) * t.layout.(k - 1)
  done;
  s

let footprint t = Array.fold_left ( * ) t.elem_size t.layout

let set_base t base = t.base <- base

let set_layout t layout =
  assert (Array.length layout = rank t);
  Array.iteri (fun k l -> assert (l >= t.extents.(k))) layout;
  t.layout <- Array.copy layout

let reset_padding t = t.layout <- Array.copy t.extents

let place ?(gap = fun _ -> 0) ?(align = 1) arrays =
  assert (align >= 1);
  let round_up v = (v + align - 1) / align * align in
  let next = ref 0 in
  List.iter
    (fun a ->
      a.base <- round_up (!next + gap a);
      next := a.base + footprint a)
    arrays

let pp ppf t =
  Fmt.pf ppf "%s(%a)@%d" t.name
    Fmt.(array ~sep:(any ",") int)
    t.extents t.base
