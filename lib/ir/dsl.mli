(** Concise builders for Fortran-style kernels.

    Index expressions are written 1-based, as in Fortran source; the builder
    shifts them to the 0-based subscripts the IR stores.  Example (matrix
    multiply):

    {[
      let a = Array_decl.create "a" [| n; n |] in
      let b = Array_decl.create "b" [| n; n |] in
      let c = Array_decl.create "c" [| n; n |] in
      Array_decl.place [ a; b; c ];
      Dsl.(
        nest ~name:"MM"
          ~loops:[ ("i", 1, n); ("j", 1, n); ("k", 1, n) ]
          ~body:
            [
              load a [ v "i"; v "j" ];
              load b [ v "i"; v "k" ];
              load c [ v "k"; v "j" ];
              store a [ v "i"; v "j" ];
            ])
    ]} *)

type ix
(** A 1-based index expression. *)

val v : string -> ix
(** A loop variable by name. *)

val i : int -> ix
(** An integer literal. *)

val ( +! ) : ix -> ix -> ix
val ( -! ) : ix -> ix -> ix
val ( *! ) : int -> ix -> ix
(** Scalar multiple: [3 * v "i"]. *)

type stmt
(** One array reference of the loop body. *)

val load : Array_decl.t -> ix list -> stmt
val store : Array_decl.t -> ix list -> stmt

val nest :
  name:string ->
  loops:(string * int * int) list ->
  ?steps:(string * int) list ->
  ?arrays:Array_decl.t list ->
  body:stmt list ->
  unit ->
  Nest.t
(** Builds and validates the nest.  [loops] lists [(var, lo, hi)] outermost
    first; [steps] optionally overrides the default unit step.  The nest's
    arrays default to those referenced by the body, in order of first use;
    pass [arrays] to also own co-allocated arrays the body never touches
    (their placement still shapes the address space, e.g. padding moves
    them). @raise Invalid_argument on unknown variables or rank
    mismatches. *)

val nest_affine :
  name:string ->
  loops:(string * ix * ix) list ->
  ?steps:(string * int) list ->
  ?arrays:Array_decl.t list ->
  body:stmt list ->
  unit ->
  Nest.t
(** Like {!nest}, but bounds are index expressions over outer loop
    variables, so triangular/trapezoidal nests read like the source:

    {[
      (* LU elimination updates *)
      nest_affine ~name:"LU"
        ~loops:
          [ ("k", i 1, i (n - 1));
            ("i", v "k" +! i 1, i n);
            ("j", v "k" +! i 1, i n) ]
        ~body:...
    ]}

    Bounds are loop *values* (no 1-based subscript shift applies); a loop
    whose two bounds are constant folds to a plain [Range].  Validation is
    {!Nest.make}'s: bounds may only reference strictly outer variables. *)
