type illegal = { transform : string; reason : string }

exception Illegal of illegal

let illegal transform reason = raise (Illegal { transform; reason })

let () =
  Printexc.register_printer (function
    | Illegal { transform; reason } ->
        Some (Printf.sprintf "Transform.Illegal(%s: %s)" transform reason)
    | _ -> None)

let remap_refs refs ~new_depth ~remap =
  Array.map
    (fun (r : Nest.reference) ->
      (r.Nest.array, Array.map (fun f -> Affine.extend f ~new_depth ~remap) r.Nest.idx,
       r.Nest.access))
    refs

(* Re-express a shape in a renumbered nest: control indices and the loop
   variables of affine bounds both move through [remap]. *)
let remap_shape shape ~new_depth ~remap =
  match shape with
  | Nest.Range _ | Nest.Tile_ctrl _ -> shape
  | Nest.Range_affine { lo; hi; step } ->
      Nest.Range_affine
        { lo = Affine.extend lo ~new_depth ~remap;
          hi = Affine.extend hi ~new_depth ~remap;
          step }
  | Nest.Tile_elem t -> Nest.Tile_elem { t with ctrl = remap t.ctrl }
  | Nest.Tile_elem_affine { ctrl; tile; lo; hi } ->
      Nest.Tile_elem_affine
        { ctrl = remap ctrl;
          tile;
          lo = Affine.extend lo ~new_depth ~remap;
          hi = Affine.extend hi ~new_depth ~remap }

(* Dimensions the affine bounds of [shape] depend on (before remapping). *)
let shape_deps shape =
  match shape with
  | Nest.Range _ | Nest.Tile_ctrl _ | Nest.Tile_elem _ -> []
  | Nest.Range_affine { lo; hi; _ } | Nest.Tile_elem_affine { lo; hi; _ } ->
      let deps = ref [] in
      let mark (f : Affine.t) =
        Array.iteri (fun q c -> if c <> 0 && not (List.mem q !deps) then deps := q :: !deps)
          f.Affine.coeffs
      in
      mark lo;
      mark hi;
      !deps

let strip_mine (nest : Nest.t) ~loop ~tile =
  let d = Nest.depth nest in
  if loop < 0 || loop >= d then invalid_arg "strip_mine: bad loop index";
  let slo, shi = Nest.static_bounds nest in
  let span =
    match nest.loops.(loop).shape with
    | Nest.Range { lo; hi; step = 1 } -> hi - lo + 1
    | Nest.Range_affine { step = 1; _ } -> shi.(loop) - slo.(loop) + 1
    | _ -> invalid_arg "strip_mine: loop must be a unit-step range"
  in
  if tile < 1 || tile > span then invalid_arg "strip_mine: bad tile size";
  let remap l = if l >= loop then l + 1 else l in
  let reshape (l : Nest.loop) =
    { l with shape = remap_shape l.shape ~new_depth:(d + 1) ~remap }
  in
  let old_loop = nest.loops.(loop) in
  let ctrl =
    { Nest.var = old_loop.var ^ old_loop.var;
      shape = Nest.Tile_ctrl { lo = slo.(loop); hi = shi.(loop); tile } }
  in
  let elem =
    { old_loop with
      shape =
        (match old_loop.shape with
        | Nest.Range { hi; _ } -> Nest.Tile_elem { ctrl = loop; tile; hi }
        | Nest.Range_affine { lo; hi; _ } ->
            Nest.Tile_elem_affine
              { ctrl = loop;
                tile;
                lo = Affine.extend lo ~new_depth:(d + 1) ~remap;
                hi = Affine.extend hi ~new_depth:(d + 1) ~remap }
        | _ -> assert false) }
  in
  let loops =
    Array.concat
      [ Array.map reshape (Array.sub nest.loops 0 loop);
        [| ctrl; elem |];
        Array.map reshape (Array.sub nest.loops (loop + 1) (d - loop - 1)) ]
  in
  Nest.make ~name:nest.name ~loops
    ~refs:(remap_refs nest.refs ~new_depth:(d + 1) ~remap)
    ~arrays:nest.arrays

let interchange (nest : Nest.t) perm =
  let d = Nest.depth nest in
  if Array.length perm <> d then invalid_arg "interchange: bad permutation length";
  let inv = Array.make d (-1) in
  Array.iteri
    (fun p l ->
      if l < 0 || l >= d || inv.(l) <> -1 then invalid_arg "interchange: not a permutation";
      inv.(l) <- p)
    perm;
  let names = Nest.var_names nest in
  let loops =
    Array.map
      (fun l ->
        let loop = nest.loops.(l) in
        (* Dependent bounds pin an order: every loop a bound references must
           stay strictly outside the loop it bounds, and element loops must
           stay after their control loop.  Violations are rejected up front —
           silently permuting would change the iteration space. *)
        List.iter
          (fun q ->
            if inv.(q) >= inv.(l) then
              illegal "interchange"
                (Printf.sprintf "bound of %s depends on %s, which would no longer be outer"
                   loop.Nest.var names.(q)))
          (shape_deps loop.Nest.shape);
        (match loop.Nest.shape with
        | Nest.Tile_elem { ctrl; _ } | Nest.Tile_elem_affine { ctrl; _ } ->
            if inv.(ctrl) >= inv.(l) then
              illegal "interchange"
                (Printf.sprintf "element loop %s moved before its control loop %s"
                   loop.Nest.var names.(ctrl))
        | Nest.Range _ | Nest.Range_affine _ | Nest.Tile_ctrl _ -> ());
        { loop with
          Nest.shape = remap_shape loop.Nest.shape ~new_depth:d ~remap:(fun q -> inv.(q)) })
      perm
  in
  Nest.make ~name:nest.name ~loops
    ~refs:(remap_refs nest.refs ~new_depth:d ~remap:(fun l -> inv.(l)))
    ~arrays:nest.arrays

let tile_spans (nest : Nest.t) =
  let slo, shi = Nest.static_bounds nest in
  Array.mapi
    (fun l (loop : Nest.loop) ->
      match loop.Nest.shape with
      | Nest.Range { lo; hi; step = 1 } -> hi - lo + 1
      | Nest.Range_affine { step = 1; _ } ->
          (* Tile windows run over the static interval hull; a tile of the
             full static span leaves the loop effectively untiled. *)
          shi.(l) - slo.(l) + 1
      | _ -> invalid_arg "tile: nest must consist of unit-step range loops")
    nest.loops

let tile (nest : Nest.t) tiles =
  let d = Nest.depth nest in
  if Array.length tiles <> d then invalid_arg "tile: bad tile vector length";
  let spans = tile_spans nest in
  Array.iteri
    (fun l t ->
      if t < 1 || t > spans.(l) then
        invalid_arg
          (Printf.sprintf "tile: tile %d for loop %d out of [1, %d]" t l spans.(l)))
    tiles;
  let slo, shi = Nest.static_bounds nest in
  let remap l = d + l in
  let ctrl_loops =
    Array.mapi
      (fun l (loop : Nest.loop) ->
        match loop.shape with
        | Nest.Range { lo; hi; step = _ } ->
            { Nest.var = loop.var ^ loop.var;
              shape = Nest.Tile_ctrl { lo; hi; tile = tiles.(l) } }
        | Nest.Range_affine _ ->
            { Nest.var = loop.var ^ loop.var;
              shape = Nest.Tile_ctrl { lo = slo.(l); hi = shi.(l); tile = tiles.(l) } }
        | _ -> assert false)
      nest.loops
  in
  let elem_loops =
    Array.mapi
      (fun l (loop : Nest.loop) ->
        match loop.shape with
        | Nest.Range { lo = _; hi; step = _ } ->
            { loop with Nest.shape = Nest.Tile_elem { ctrl = l; tile = tiles.(l); hi } }
        | Nest.Range_affine { lo; hi; step = _ } ->
            { loop with
              Nest.shape =
                Nest.Tile_elem_affine
                  { ctrl = l;
                    tile = tiles.(l);
                    lo = Affine.extend lo ~new_depth:(2 * d) ~remap;
                    hi = Affine.extend hi ~new_depth:(2 * d) ~remap } }
        | _ -> assert false)
      nest.loops
  in
  let loops = Array.append ctrl_loops elem_loops in
  Nest.make
    ~name:(nest.name ^ "_tiled")
    ~loops
    ~refs:(remap_refs nest.refs ~new_depth:(2 * d) ~remap)
    ~arrays:nest.arrays

type padding = { inter : int array; intra : int array }

let no_padding (nest : Nest.t) =
  let n = List.length nest.arrays in
  { inter = Array.make n 0; intra = Array.make n 0 }

let apply_padding (nest : Nest.t) pad =
  let n = List.length nest.arrays in
  if Array.length pad.inter <> n || Array.length pad.intra <> n then
    invalid_arg "apply_padding: wrong arity";
  List.iteri
    (fun k (a : Array_decl.t) ->
      let layout = Array.copy a.Array_decl.extents in
      layout.(0) <- layout.(0) + pad.intra.(k);
      Array_decl.set_layout a layout)
    nest.arrays;
  let gaps = Hashtbl.create n in
  List.iteri (fun k (a : Array_decl.t) -> Hashtbl.replace gaps a.Array_decl.name pad.inter.(k)) nest.arrays;
  Array_decl.place ~gap:(fun a -> Hashtbl.find gaps a.Array_decl.name) nest.arrays

let padded (nest : Nest.t) pad =
  let clone = Nest.clone nest in
  apply_padding clone pad;
  clone

let clear_padding (nest : Nest.t) =
  List.iter Array_decl.reset_padding nest.arrays;
  Array_decl.place nest.arrays
