let remap_refs refs ~new_depth ~remap =
  Array.map
    (fun (r : Nest.reference) ->
      (r.Nest.array, Array.map (fun f -> Affine.extend f ~new_depth ~remap) r.Nest.idx,
       r.Nest.access))
    refs

let strip_mine (nest : Nest.t) ~loop ~tile =
  let d = Nest.depth nest in
  if loop < 0 || loop >= d then invalid_arg "strip_mine: bad loop index";
  let lo, hi =
    match nest.loops.(loop).shape with
    | Nest.Range { lo; hi; step = 1 } -> (lo, hi)
    | _ -> invalid_arg "strip_mine: loop must be a unit-step Range"
  in
  if tile < 1 || tile > hi - lo + 1 then invalid_arg "strip_mine: bad tile size";
  let shift_ctrl c = if c >= loop then c + 1 else c in
  let reshape (l : Nest.loop) =
    match l.shape with
    | Nest.Tile_elem t -> { l with shape = Nest.Tile_elem { t with ctrl = shift_ctrl t.ctrl } }
    | Nest.Range _ | Nest.Tile_ctrl _ -> l
  in
  let old_loop = nest.loops.(loop) in
  let ctrl =
    { Nest.var = old_loop.var ^ old_loop.var; shape = Nest.Tile_ctrl { lo; hi; tile } }
  in
  let elem = { old_loop with shape = Nest.Tile_elem { ctrl = loop; tile; hi } } in
  let loops =
    Array.concat
      [ Array.map reshape (Array.sub nest.loops 0 loop);
        [| ctrl; elem |];
        Array.map reshape (Array.sub nest.loops (loop + 1) (d - loop - 1)) ]
  in
  let remap l = if l >= loop then l + 1 else l in
  Nest.make ~name:nest.name ~loops
    ~refs:(remap_refs nest.refs ~new_depth:(d + 1) ~remap)
    ~arrays:nest.arrays

let interchange (nest : Nest.t) perm =
  let d = Nest.depth nest in
  if Array.length perm <> d then invalid_arg "interchange: bad permutation length";
  let inv = Array.make d (-1) in
  Array.iteri
    (fun p l ->
      if l < 0 || l >= d || inv.(l) <> -1 then invalid_arg "interchange: not a permutation";
      inv.(l) <- p)
    perm;
  let loops =
    Array.map
      (fun l ->
        let loop = nest.loops.(l) in
        match loop.Nest.shape with
        | Nest.Tile_elem t ->
            let ctrl = inv.(t.ctrl) in
            if ctrl >= inv.(l) then
              invalid_arg "interchange: element loop moved before its control loop";
            { loop with Nest.shape = Nest.Tile_elem { t with ctrl } }
        | Nest.Range _ | Nest.Tile_ctrl _ -> loop)
      perm
  in
  Nest.make ~name:nest.name ~loops
    ~refs:(remap_refs nest.refs ~new_depth:d ~remap:(fun l -> inv.(l)))
    ~arrays:nest.arrays

let tile_spans (nest : Nest.t) =
  Array.map
    (fun (l : Nest.loop) ->
      match l.Nest.shape with
      | Nest.Range { lo; hi; step = 1 } -> hi - lo + 1
      | _ -> invalid_arg "tile: nest must consist of unit-step Range loops")
    nest.loops

let tile (nest : Nest.t) tiles =
  let d = Nest.depth nest in
  if Array.length tiles <> d then invalid_arg "tile: bad tile vector length";
  let spans = tile_spans nest in
  Array.iteri
    (fun l t ->
      if t < 1 || t > spans.(l) then
        invalid_arg
          (Printf.sprintf "tile: tile %d for loop %d out of [1, %d]" t l spans.(l)))
    tiles;
  let ctrl_loops =
    Array.mapi
      (fun l (loop : Nest.loop) ->
        match loop.shape with
        | Nest.Range { lo; hi; step = _ } ->
            { Nest.var = loop.var ^ loop.var;
              shape = Nest.Tile_ctrl { lo; hi; tile = tiles.(l) } }
        | _ -> assert false)
      nest.loops
  in
  let elem_loops =
    Array.mapi
      (fun l (loop : Nest.loop) ->
        match loop.shape with
        | Nest.Range { lo = _; hi; step = _ } ->
            { loop with Nest.shape = Nest.Tile_elem { ctrl = l; tile = tiles.(l); hi } }
        | _ -> assert false)
      nest.loops
  in
  let loops = Array.append ctrl_loops elem_loops in
  Nest.make
    ~name:(nest.name ^ "_tiled")
    ~loops
    ~refs:(remap_refs nest.refs ~new_depth:(2 * d) ~remap:(fun l -> d + l))
    ~arrays:nest.arrays

type padding = { inter : int array; intra : int array }

let no_padding (nest : Nest.t) =
  let n = List.length nest.arrays in
  { inter = Array.make n 0; intra = Array.make n 0 }

let apply_padding (nest : Nest.t) pad =
  let n = List.length nest.arrays in
  if Array.length pad.inter <> n || Array.length pad.intra <> n then
    invalid_arg "apply_padding: wrong arity";
  List.iteri
    (fun k (a : Array_decl.t) ->
      let layout = Array.copy a.Array_decl.extents in
      layout.(0) <- layout.(0) + pad.intra.(k);
      Array_decl.set_layout a layout)
    nest.arrays;
  let gaps = Hashtbl.create n in
  List.iteri (fun k (a : Array_decl.t) -> Hashtbl.replace gaps a.Array_decl.name pad.inter.(k)) nest.arrays;
  Array_decl.place ~gap:(fun a -> Hashtbl.find gaps a.Array_decl.name) nest.arrays

let padded (nest : Nest.t) pad =
  let clone = Nest.clone nest in
  apply_padding clone pad;
  clone

let clear_padding (nest : Nest.t) =
  List.iter Array_decl.reset_padding nest.arrays;
  Array_decl.place nest.arrays
