(** Array declarations: logical extents, memory layout and base addresses.

    Arrays are laid out Fortran-style (column-major): the first dimension is
    contiguous.  Padding is expressed by a [layout] that may exceed the
    logical [extents] (intra-array padding of the leading dimensions) and by
    shifting [base] (inter-array padding).  The address model is byte-exact:
    element [(s_0, ..., s_{d-1})] (0-based subscripts) of array [a] lives at
    [a.base + elem_size * sum_k s_k * prod_{j<k} layout_j]. *)

type t = private {
  name : string;
  extents : int array;        (** logical extent of each dimension, >= 1 *)
  mutable layout : int array; (** allocated extent of each dimension, >= extents *)
  elem_size : int;            (** bytes per element, e.g. 8 for REAL*8 *)
  mutable base : int;         (** byte address of element (0, ..., 0) *)
}

val create : ?elem_size:int -> string -> int array -> t
(** [create name extents] declares an array with [layout = extents] and
    [base = 0] (bases are assigned later by {!place}).  Default [elem_size]
    is 8 (double-precision REAL). *)

val copy : t -> t
(** An independent declaration with the same name, extents, layout and
    base.  Mutating the copy's layout or base leaves the original (and any
    nest referring to it) untouched. *)

val rank : t -> int

val strides : t -> int array
(** Byte stride of each dimension under the current layout. *)

val footprint : t -> int
(** Allocated size in bytes under the current layout. *)

val set_base : t -> int -> unit

val set_layout : t -> int array -> unit
(** Replaces the layout; each entry must be at least the logical extent. *)

val reset_padding : t -> unit
(** Restores [layout = extents] (bases are left untouched). *)

val place : ?gap:(t -> int) -> ?align:int -> t list -> unit
(** [place arrays] assigns consecutive base addresses in list order, each
    array starting right after the previous one's footprint plus
    [gap a] bytes (default 0), rounded up to a multiple of [align] bytes
    (default 1 = packed).  This mimics Fortran static allocation, which
    is what makes cross-interference patterns deterministic; aligning to
    the cache-line size keeps distinct arrays off shared lines, the
    regime the CME reuse model describes. *)

val pp : t Fmt.t
