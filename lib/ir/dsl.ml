type ix = { vars : (string * int) list; const : int }
(* Sparse affine form over named variables, 1-based as written in source. *)

let v name = { vars = [ (name, 1) ]; const = 0 }
let i n = { vars = []; const = n }

let merge a b =
  List.fold_left
    (fun acc (name, c) ->
      match List.assoc_opt name acc with
      | None -> (name, c) :: acc
      | Some c0 -> (name, c0 + c) :: List.remove_assoc name acc)
    a b

let ( +! ) a b = { vars = merge a.vars b.vars; const = a.const + b.const }

let ( *! ) k a =
  { vars = List.map (fun (n, c) -> (n, k * c)) a.vars; const = k * a.const }

let ( -! ) a b = a +! (-1 *! b)

type stmt = { array : Array_decl.t; subs : ix list; access : Nest.access }

let load array subs = { array; subs; access = Nest.Read }
let store array subs = { array; subs; access = Nest.Write }

let index_of ~name names var =
  let rec find l = function
    | [] -> invalid_arg (Printf.sprintf "%s: unknown loop variable %s" name var)
    | n :: rest -> if String.equal n var then l else find (l + 1) rest
  in
  find 0 (Array.to_list names)

(* [shift] separates the two uses of an [ix]: subscripts shift 1-based source
   indices to the 0-based subscripts the IR stores ([shift = -1]); loop
   bounds are values, not subscripts, and keep their constant ([shift = 0]). *)
let ix_to_affine ~name ~names ~shift ix =
  let d = Array.length names in
  let coeffs = Array.make d 0 in
  List.iter
    (fun (var, c) ->
      let l = index_of ~name names var in
      coeffs.(l) <- coeffs.(l) + c)
    ix.vars;
  Affine.make ~const:(ix.const + shift) coeffs

let body_refs ~name ~names body =
  Array.of_list
    (List.map
       (fun s ->
         (s.array,
          Array.of_list (List.map (ix_to_affine ~name ~names ~shift:(-1)) s.subs),
          s.access))
       body)

let resolve_arrays ~name ?arrays body =
  match arrays with
  | Some arrays ->
      List.iter
        (fun s ->
          if not (List.memq s.array arrays) then
            invalid_arg (name ^ ": referenced array not in ~arrays"))
        body;
      arrays
  | None ->
      List.rev
        (List.fold_left
           (fun acc s -> if List.memq s.array acc then acc else s.array :: acc)
           [] body)

let nest ~name ~loops ?(steps = []) ?arrays ~body () =
  let names = Array.of_list (List.map (fun (n, _, _) -> n) loops) in
  let loop_arr =
    Array.of_list
      (List.map
         (fun (var, lo, hi) ->
           let step =
             match List.assoc_opt var steps with Some s -> s | None -> 1
           in
           { Nest.var; shape = Nest.Range { lo; hi; step } })
         loops)
  in
  Nest.make ~name ~loops:loop_arr ~refs:(body_refs ~name ~names body)
    ~arrays:(resolve_arrays ~name ?arrays body)

let nest_affine ~name ~loops ?(steps = []) ?arrays ~body () =
  let names = Array.of_list (List.map (fun (n, _, _) -> n) loops) in
  let bound = ix_to_affine ~name ~names ~shift:0 in
  let loop_arr =
    Array.of_list
      (List.map
         (fun (var, lo, hi) ->
           let step =
             match List.assoc_opt var steps with Some s -> s | None -> 1
           in
           let lo = bound lo and hi = bound hi in
           let shape =
             if Affine.is_const lo && Affine.is_const hi then
               Nest.Range { lo = lo.Affine.const; hi = hi.Affine.const; step }
             else Nest.Range_affine { lo; hi; step }
           in
           { Nest.var; shape })
         loops)
  in
  Nest.make ~name ~loops:loop_arr ~refs:(body_refs ~name ~names body)
    ~arrays:(resolve_arrays ~name ?arrays body)
