(** Perfectly nested affine loop nests.

    A nest is an ordered sequence of loops (outermost first) and a body that
    is a straight-line sequence of array references executed once per
    iteration point, in program order.  Loop bounds come in the shapes the
    paper's framework needs:

    - [Range]: constant bounds with a positive step (original loops);
    - [Range_affine]: bounds that are affine functions of strictly outer
      loop variables (triangular/trapezoidal loops such as LU or Cholesky);
    - [Tile_ctrl]: a tile-controlling loop stepping by the tile size;
    - [Tile_elem]: the matching element loop
      [do i = ii, min (ii + tile - 1, hi)];
    - [Tile_elem_affine]: the element loop of a tiled affine loop,
      [do i = max (ii, lo(outer)), min (ii + tile - 1, hi(outer))].

    Iteration points are integer vectors holding the value of every loop
    variable, outermost first; execution order is exactly lexicographic
    order on these vectors because all steps are positive.  Affine bounds
    may reference only strictly outer, non-control loops, so triangular
    legality is a per-loop property checked by {!make}. *)

type shape =
  | Range of { lo : int; hi : int; step : int }
  | Range_affine of { lo : Affine.t; hi : Affine.t; step : int }
      (** Bounds evaluated at the current outer-loop values.  The dynamic
          range may be empty for some outer values (the loop body is then
          skipped), but {!make} rejects nests that are empty everywhere. *)
  | Tile_ctrl of { lo : int; hi : int; tile : int }
  | Tile_elem of { ctrl : int; tile : int; hi : int }
      (** [ctrl] is the index of the matching [Tile_ctrl] loop. *)
  | Tile_elem_affine of { ctrl : int; tile : int; lo : Affine.t; hi : Affine.t }
      (** Element loop of a tiled affine range: iterates the intersection of
          the control window [ [ii, ii + tile - 1] ] with the dynamic range
          [ [lo(outer), hi(outer)] ].  The control loop spans the static
          bounding interval of the affine range, so the windows cover every
          dynamic range; empty intersections are simply skipped. *)

type loop = { var : string; shape : shape }

type access = Read | Write

type reference = {
  ref_id : int;  (** position in the body; program order within an iteration *)
  array : Array_decl.t;
  idx : Affine.t array;  (** 0-based subscript per array dimension *)
  access : access;
}

type t = private {
  name : string;
  loops : loop array;
  refs : reference array;
  arrays : Array_decl.t list;
}

val make :
  name:string ->
  loops:loop array ->
  refs:(Array_decl.t * Affine.t array * access) array ->
  arrays:Array_decl.t list ->
  t
(** Validates shapes (constant bounds non-empty, affine bounds referencing
    only strictly outer non-control loops and leaving at least one iteration
    point, [Tile_elem.ctrl] well-formed and covering, subscript depth/rank
    agreement) and numbers the references. *)

val depth : t -> int
val var_names : t -> string array

val has_affine : t -> bool
(** Whether any loop has affine ([Range_affine]/[Tile_elem_affine]) bounds.
    Rectangular nests take fast paths that are byte-identical to the
    pre-affine implementation. *)

val static_bounds : t -> int array * int array
(** Per-dimension constant bounding interval [(lo, hi)] of the loop values.
    Exact for rectangular nests; for affine bounds it is the interval hull
    (computed outermost-first), so it over-approximates triangular spaces. *)

val affine_deps : t -> bool array
(** [affine_deps t] marks the dimensions that some affine bound depends on.
    Region decomposition must enumerate these dimensions pointwise because
    their values pin the bounds of deeper loops. *)

val clone : t -> t
(** A structurally identical nest whose array declarations are independent
    copies: layout/base mutations (padding) on the clone never touch the
    original, so clones can be transformed and analysed concurrently. *)

val bounds_at : t -> int array -> int -> int * int * int
(** [bounds_at nest point l] is [(lo, hi, step)] of loop [l] when the outer
    loops take the values in [point] (entries at positions >= l are
    ignored). *)

val mem_point : t -> int array -> bool
(** Whether the vector is an iteration point of the nest (each coordinate
    within bounds and on-step). *)

val lex_compare : int array -> int array -> int
(** Lexicographic (= execution) order on points. *)

val trip_count : t -> int
(** Total number of iteration points.  Tiled loop pairs contribute the span
    of the original loop, by construction of {!Transform.tile}.  Dimensions
    that affine bounds depend on are summed pointwise, so the count is exact
    for triangular/trapezoidal nests as well. *)

val iter_points : t -> (int array -> unit) -> unit
(** Enumerates all iteration points in execution order.  The same array is
    reused between callbacks; copy it if you keep it. *)

val random_point : t -> Tiling_util.Prng.t -> int array
(** A uniformly distributed iteration point.  Uniformity over tiled pairs is
    obtained by sampling the original loop value and deriving the tile
    coordinate.  Affine nests are sampled by rejection from the static
    bounding box (uniformity is preserved; rectangular nests keep the exact
    historical draw stream). *)

val random_point_into : t -> Tiling_util.Prng.t -> int array -> unit
(** [random_point_into t rng point] is {!random_point} written into the
    caller-provided buffer [point] (length {!depth}), drawing exactly the
    same values from [rng]: sampling loops reuse one scratch buffer
    instead of allocating a fresh array per point.
    @raise Invalid_argument on a length mismatch. *)

val address_form : t -> reference -> Affine.t
(** Flattened byte-address function of a reference under the *current*
    layout and base of its array: an affine form over the nest's loop
    variables.  Recompute after padding changes. *)

val touched_bytes : t -> int
(** Total allocated bytes of all arrays (footprint of the data set). *)

val pp : t Fmt.t
(** Fortran-flavoured pretty printer (for docs, examples and debugging). *)
