(** Loop transformations: strip-mining, interchange, tiling, padding.

    Tiling here is the paper's transformation (figure 3): every original
    loop [i_l] with constant bounds [\[lo_l, hi_l\]] and tile size [T_l]
    becomes a control loop [ii_l] (outermost block, stepping by [T_l])
    followed by the element loops
    [do i_l = ii_l, min (ii_l + T_l - 1, hi_l)].  Choosing
    [T_l = hi_l - lo_l + 1] leaves loop [l] effectively untiled (a single
    tile).  Tiling preserves the set of iteration points, hence compulsory
    misses; only the traversal order changes.

    Affine ([Range_affine]) loops tile the same way, except the control loop
    runs over the *static* interval hull of the dynamic range and the element
    loop intersects its window with the dynamic bounds
    ([Tile_elem_affine]) — windows outside the dynamic range are empty and
    simply skipped, so the iteration-point set is still preserved. *)

type illegal = { transform : string; reason : string }
(** A transformation that would change the iteration space. *)

exception Illegal of illegal
(** Raised (instead of silently producing a wrong nest) when a requested
    reordering breaks a dependence between bounds: moving a loop inside one
    whose bound references it, or an element loop before its control loop.
    Distinct from [Invalid_argument], which still signals malformed input
    (non-permutations, out-of-range tiles, ...). *)

val strip_mine : Nest.t -> loop:int -> tile:int -> Nest.t
(** [strip_mine nest ~loop ~tile] splits one unit-step [Range] or
    [Range_affine] loop into a control/element pair at the same position.
    Subscripts and the affine bounds of every other loop are rewritten for
    the deeper nest. *)

val interchange : Nest.t -> int array -> Nest.t
(** [interchange nest perm] reorders loops so that new position [p] holds
    old loop [perm.(p)].  [perm] must be a permutation; it must keep every
    element loop after its control loop and every affine-bounded loop inside
    all the loops its bounds reference.
    @raise Illegal when the reordering breaks one of those dependences. *)

val tile : Nest.t -> int array -> Nest.t
(** [tile nest tiles] applies the full tiling of the paper: all control
    loops first (in original loop order), then all element loops.
    [tiles.(l)] must lie in [\[1, span_l\]]; every loop of [nest] must be a
    unit-step [Range] or [Range_affine].  [tile nest] on an already-tiled
    nest is rejected. *)

val tile_spans : Nest.t -> int array
(** [tile_spans nest] is the search-space upper bound [U_l] for each loop:
    the trip count of each unit-step loop ([Range_affine] loops use the
    static span of their interval hull). *)

type padding = { inter : int array; intra : int array }
(** Padding parameters: [inter.(k)] extra bytes inserted before the [k]-th
    array (in [nest.arrays] order); [intra.(k)] extra elements added to the
    leading dimension of the [k]-th array. *)

val no_padding : Nest.t -> padding

val apply_padding : Nest.t -> padding -> unit
(** Mutates the arrays' layout and bases: leading dimensions grow by
    [intra], then bases are re-assigned consecutively with the [inter]
    gaps.  Call {!clear_padding} to restore the canonical placement. *)

val padded : Nest.t -> padding -> Nest.t
(** [padded nest pad] is a clone of [nest] (fresh array declarations, see
    {!Nest.clone}) with the padding applied.  The original nest is left
    untouched, so padded clones are safe to build and analyse from several
    domains concurrently — this is what lets padding searches evaluate
    whole GA generations in parallel. *)

val clear_padding : Nest.t -> unit
(** Resets layouts to the logical extents and re-places arrays with no
    gaps. *)
