type shape =
  | Range of { lo : int; hi : int; step : int }
  | Tile_ctrl of { lo : int; hi : int; tile : int }
  | Tile_elem of { ctrl : int; tile : int; hi : int }

type loop = { var : string; shape : shape }

type access = Read | Write

type reference = {
  ref_id : int;
  array : Array_decl.t;
  idx : Affine.t array;
  access : access;
}

type t = {
  name : string;
  loops : loop array;
  refs : reference array;
  arrays : Array_decl.t list;
}

let depth t = Array.length t.loops

let var_names t = Array.map (fun l -> l.var) t.loops

let validate name loops refs =
  let d = Array.length loops in
  if d = 0 then invalid_arg (name ^ ": empty nest");
  let names = Array.map (fun l -> l.var) loops in
  Array.iteri
    (fun i v ->
      for j = i + 1 to d - 1 do
        if String.equal v names.(j) then
          invalid_arg (Printf.sprintf "%s: duplicate loop variable %s" name v)
      done)
    names;
  Array.iteri
    (fun l loop ->
      match loop.shape with
      | Range { lo; hi; step } ->
          if step <= 0 || hi < lo then
            invalid_arg (Printf.sprintf "%s: loop %s has empty range" name loop.var)
      | Tile_ctrl { lo; hi; tile } ->
          if tile <= 0 || hi < lo then
            invalid_arg (Printf.sprintf "%s: bad tile loop %s" name loop.var)
      | Tile_elem { ctrl; tile; hi = _ } ->
          if ctrl < 0 || ctrl >= l then
            invalid_arg (Printf.sprintf "%s: %s references bad ctrl loop" name loop.var);
          (match loops.(ctrl).shape with
          | Tile_ctrl c when c.tile = tile -> ()
          | _ -> invalid_arg (Printf.sprintf "%s: %s ctrl mismatch" name loop.var)))
    loops;
  Array.iter
    (fun (arr, idx, _) ->
      if Array.length idx <> Array_decl.rank arr then
        invalid_arg (Printf.sprintf "%s: subscript rank mismatch on %s" name arr.Array_decl.name);
      Array.iter (fun f -> if Affine.depth f <> d then invalid_arg (name ^ ": subscript depth")) idx)
    refs

let make ~name ~loops ~refs ~arrays =
  validate name loops refs;
  let refs =
    Array.mapi (fun i (array, idx, access) -> { ref_id = i; array; idx; access }) refs
  in
  { name; loops; refs; arrays }

let clone t =
  (* Fresh array declarations (layout and base are mutable under padding),
     with every reference re-bound to its array's copy by physical
     identity. *)
  let fresh = List.map (fun a -> (a, Array_decl.copy a)) t.arrays in
  let swap a = match List.assq_opt a fresh with Some a' -> a' | None -> a in
  {
    t with
    refs = Array.map (fun r -> { r with array = swap r.array }) t.refs;
    arrays = List.map snd fresh;
  }

let bounds_at t point l =
  match t.loops.(l).shape with
  | Range { lo; hi; step } -> (lo, hi, step)
  | Tile_ctrl { lo; hi; tile } -> (lo, hi, tile)
  | Tile_elem { ctrl; tile; hi } ->
      let base = point.(ctrl) in
      (base, min (base + tile - 1) hi, 1)

let mem_point t point =
  Array.length point = depth t
  && begin
       let ok = ref true in
       for l = 0 to depth t - 1 do
         let lo, hi, step = bounds_at t point l in
         let v = point.(l) in
         if v < lo || v > hi || (v - lo) mod step <> 0 then ok := false
       done;
       !ok
     end

let lex_compare a b =
  let n = Array.length a in
  assert (Array.length b = n);
  let rec loop l =
    if l = n then 0
    else
      let c = compare a.(l) b.(l) in
      if c <> 0 then c else loop (l + 1)
  in
  loop 0

let trip_count t =
  (* Tile pairs partition the original span, so a (ctrl, elem) pair
     contributes exactly the original trip count regardless of divisibility. *)
  let total = ref 1 in
  Array.iter
    (fun loop ->
      match loop.shape with
      | Range { lo; hi; step } -> total := !total * Tiling_util.Intmath.range_count ~lo ~hi ~step
      | Tile_ctrl _ -> ()
      | Tile_elem { ctrl; tile = _; hi } ->
          (match t.loops.(ctrl).shape with
          | Tile_ctrl { lo; hi = chi; tile = _ } ->
              (* elem covers [ctrl, min(ctrl+T-1, hi)]; summed over ctrl values
                 this is [lo, min(hi, chi-part)]; in well-formed tilings the
                 ctrl hi equals the elem hi. *)
              ignore chi;
              total := !total * (hi - lo + 1)
          | _ -> assert false))
    t.loops;
  !total

let iter_points t f =
  let d = depth t in
  let point = Array.make d 0 in
  let rec go l =
    if l = d then f point
    else begin
      let lo, hi, step = bounds_at t point l in
      let v = ref lo in
      while !v <= hi do
        point.(l) <- !v;
        go (l + 1);
        v := !v + step
      done
    end
  in
  go 0

let random_point_into t rng point =
  let d = depth t in
  if Array.length point <> d then invalid_arg "random_point_into: depth mismatch";
  for l = 0 to d - 1 do
    match t.loops.(l).shape with
    | Range { lo; hi; step } ->
        let n = Tiling_util.Intmath.range_count ~lo ~hi ~step in
        point.(l) <- lo + (step * Tiling_util.Prng.int rng n)
    | Tile_ctrl _ -> () (* set below, jointly with the matching elem loop *)
    | Tile_elem { ctrl; tile; hi } ->
        (* Sample the original loop value uniformly and derive the tile it
           falls into: this keeps the joint (ctrl, elem) pair uniform over
           the original span even when the last tile is partial. *)
        (match t.loops.(ctrl).shape with
        | Tile_ctrl { lo; hi = _; tile = _ } ->
            let v = Tiling_util.Prng.int_in rng ~lo ~hi in
            point.(ctrl) <- lo + ((v - lo) / tile * tile);
            point.(l) <- v
        | _ -> assert false)
  done

let random_point t rng =
  let point = Array.make (depth t) 0 in
  random_point_into t rng point;
  point

let address_form t r =
  let d = depth t in
  let strides = Array_decl.strides r.array in
  let acc = ref (Affine.const ~depth:d r.array.Array_decl.base) in
  Array.iteri
    (fun k f -> acc := Affine.add !acc (Affine.scale strides.(k) f))
    r.idx;
  !acc

let touched_bytes t =
  List.fold_left (fun acc a -> acc + Array_decl.footprint a) 0 t.arrays

let pp ppf t =
  let names = var_names t in
  let indent l = String.make (2 * l) ' ' in
  Fmt.pf ppf "! nest %s@." t.name;
  Array.iteri
    (fun l loop ->
      match loop.shape with
      | Range { lo; hi; step } ->
          if step = 1 then Fmt.pf ppf "%sdo %s = %d, %d@." (indent l) loop.var lo hi
          else Fmt.pf ppf "%sdo %s = %d, %d, %d@." (indent l) loop.var lo hi step
      | Tile_ctrl { lo; hi; tile } ->
          Fmt.pf ppf "%sdo %s = %d, %d, %d@." (indent l) loop.var lo hi tile
      | Tile_elem { ctrl; tile; hi } ->
          Fmt.pf ppf "%sdo %s = %s, min(%s+%d, %d)@." (indent l) loop.var
            t.loops.(ctrl).var t.loops.(ctrl).var (tile - 1) hi)
    t.loops;
  let d = depth t in
  Array.iter
    (fun r ->
      Fmt.pf ppf "%s%s %s(%a)@." (indent d)
        (match r.access with Read -> "load " | Write -> "store")
        r.array.Array_decl.name
        Fmt.(array ~sep:(any ", ") (fun ppf f -> Affine.pp ~names ppf (Affine.shift f 1)))
        r.idx)
    t.refs;
  Array.iteri
    (fun l loop ->
      ignore loop;
      Fmt.pf ppf "%senddo@." (indent (d - 1 - l)))
    t.loops
