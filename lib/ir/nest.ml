type shape =
  | Range of { lo : int; hi : int; step : int }
  | Range_affine of { lo : Affine.t; hi : Affine.t; step : int }
  | Tile_ctrl of { lo : int; hi : int; tile : int }
  | Tile_elem of { ctrl : int; tile : int; hi : int }
  | Tile_elem_affine of { ctrl : int; tile : int; lo : Affine.t; hi : Affine.t }

type loop = { var : string; shape : shape }

type access = Read | Write

type reference = {
  ref_id : int;
  array : Array_decl.t;
  idx : Affine.t array;
  access : access;
}

type t = {
  name : string;
  loops : loop array;
  refs : reference array;
  arrays : Array_decl.t list;
}

let depth t = Array.length t.loops

let var_names t = Array.map (fun l -> l.var) t.loops

let is_affine_shape = function
  | Range_affine _ | Tile_elem_affine _ -> true
  | Range _ | Tile_ctrl _ | Tile_elem _ -> false

let has_affine t = Array.exists (fun l -> is_affine_shape l.shape) t.loops

(* Static (constant) bounding box of the loop values, computed
   outermost-first: affine bounds are widened over the boxes of the outer
   dimensions ([Affine.range_over]), so the box over-approximates triangular
   spaces but is exact for rectangular nests. *)
let static_bounds_of loops =
  let d = Array.length loops in
  let slo = Array.make d 0 and shi = Array.make d 0 in
  Array.iteri
    (fun l loop ->
      let mn, mx =
        match loop.shape with
        | Range { lo; hi; _ } -> (lo, hi)
        | Tile_ctrl { lo; hi; _ } -> (lo, hi)
        | Tile_elem { ctrl; hi; _ } -> (slo.(ctrl), hi)
        | Range_affine { lo; hi; _ } | Tile_elem_affine { lo; hi; _ } ->
            let mn, _ = Affine.range_over lo ~lo:slo ~hi:shi in
            let _, mx = Affine.range_over hi ~lo:slo ~hi:shi in
            (mn, mx)
      in
      slo.(l) <- mn;
      shi.(l) <- mx)
    loops;
  (slo, shi)

let static_bounds t = static_bounds_of t.loops

(* Dimensions some affine bound depends on.  Those dimensions cannot stay
   symbolic when decomposing the space into constant-shape regions: their
   values pin the bounds of the deeper loops. *)
let affine_deps t =
  let d = depth t in
  let dep = Array.make d false in
  let mark (f : Affine.t) =
    Array.iteri (fun q c -> if c <> 0 then dep.(q) <- true) f.Affine.coeffs
  in
  Array.iter
    (fun loop ->
      match loop.shape with
      | Range_affine { lo; hi; _ } | Tile_elem_affine { lo; hi; _ } ->
          mark lo;
          mark hi
      | Range _ | Tile_ctrl _ | Tile_elem _ -> ())
    t.loops;
  dep

let validate name loops refs =
  let d = Array.length loops in
  if d = 0 then invalid_arg (name ^ ": empty nest");
  let names = Array.map (fun l -> l.var) loops in
  Array.iteri
    (fun i v ->
      for j = i + 1 to d - 1 do
        if String.equal v names.(j) then
          invalid_arg (Printf.sprintf "%s: duplicate loop variable %s" name v)
      done)
    names;
  (* Affine bounds may only reference strictly outer, non-control loop
     variables: execution order stays lexicographic and control coordinates
     remain derivable from element coordinates. *)
  let check_form l (f : Affine.t) =
    if Affine.depth f <> d then
      invalid_arg (Printf.sprintf "%s: bound depth mismatch on %s" name loops.(l).var);
    Array.iteri
      (fun q c ->
        if c <> 0 then begin
          if q >= l then
            invalid_arg
              (Printf.sprintf "%s: %s bound depends on non-outer loop %s" name
                 loops.(l).var names.(q));
          match loops.(q).shape with
          | Tile_ctrl _ ->
              invalid_arg
                (Printf.sprintf "%s: %s bound depends on control loop %s" name
                   loops.(l).var names.(q))
          | _ -> ()
        end)
      f.Affine.coeffs
  in
  let slo, shi = static_bounds_of loops in
  Array.iteri
    (fun l loop ->
      match loop.shape with
      | Range { lo; hi; step } ->
          if step <= 0 || hi < lo then
            invalid_arg (Printf.sprintf "%s: loop %s has empty range" name loop.var)
      | Range_affine { lo; hi; step } ->
          (* Dependent ranges may be empty for some outer values; only the
             step is unconditionally constrained. *)
          if step <= 0 then
            invalid_arg (Printf.sprintf "%s: loop %s has bad step" name loop.var);
          check_form l lo;
          check_form l hi
      | Tile_ctrl { lo; hi; tile } ->
          if tile <= 0 || hi < lo then
            invalid_arg (Printf.sprintf "%s: bad tile loop %s" name loop.var)
      | Tile_elem { ctrl; tile; hi = _ } ->
          if ctrl < 0 || ctrl >= l then
            invalid_arg (Printf.sprintf "%s: %s references bad ctrl loop" name loop.var);
          (match loops.(ctrl).shape with
          | Tile_ctrl c when c.tile = tile -> ()
          | _ -> invalid_arg (Printf.sprintf "%s: %s ctrl mismatch" name loop.var))
      | Tile_elem_affine { ctrl; tile; lo; hi } ->
          if ctrl < 0 || ctrl >= l then
            invalid_arg (Printf.sprintf "%s: %s references bad ctrl loop" name loop.var);
          check_form l lo;
          check_form l hi;
          (match loops.(ctrl).shape with
          | Tile_ctrl c when c.tile = tile ->
              (* The control loop's windows must cover the whole affine
                 range, or tiling would drop iteration points. *)
              if c.lo > slo.(l) || c.hi + tile - 1 < shi.(l) then
                invalid_arg
                  (Printf.sprintf "%s: %s ctrl does not cover its affine range"
                     name loop.var)
          | _ -> invalid_arg (Printf.sprintf "%s: %s ctrl mismatch" name loop.var)))
    loops;
  Array.iter
    (fun (arr, idx, _) ->
      if Array.length idx <> Array_decl.rank arr then
        invalid_arg (Printf.sprintf "%s: subscript rank mismatch on %s" name arr.Array_decl.name);
      Array.iter (fun f -> if Affine.depth f <> d then invalid_arg (name ^ ": subscript depth")) idx)
    refs

let bounds_at t point l =
  match t.loops.(l).shape with
  | Range { lo; hi; step } -> (lo, hi, step)
  | Range_affine { lo; hi; step } -> (Affine.eval lo point, Affine.eval hi point, step)
  | Tile_ctrl { lo; hi; tile } -> (lo, hi, tile)
  | Tile_elem { ctrl; tile; hi } ->
      let base = point.(ctrl) in
      (base, min (base + tile - 1) hi, 1)
  | Tile_elem_affine { ctrl; tile; lo; hi } ->
      let base = point.(ctrl) in
      (max base (Affine.eval lo point), min (base + tile - 1) (Affine.eval hi point), 1)

let mem_point t point =
  Array.length point = depth t
  && begin
       let ok = ref true in
       for l = 0 to depth t - 1 do
         let lo, hi, step = bounds_at t point l in
         let v = point.(l) in
         if v < lo || v > hi || (v - lo) mod step <> 0 then ok := false
       done;
       !ok
     end

let lex_compare a b =
  let n = Array.length a in
  assert (Array.length b = n);
  let rec loop l =
    if l = n then 0
    else
      let c = compare a.(l) b.(l) in
      if c <> 0 then c else loop (l + 1)
  in
  loop 0

(* Per-dimension count contribution: control loops contribute nothing (the
   matching element loop spans the original loop, since tile windows
   partition it), element loops count their original span. *)
let count_span t point l =
  match t.loops.(l).shape with
  | Tile_ctrl _ -> None
  | Range { lo; hi; step } -> Some (lo, hi, step)
  | Range_affine { lo; hi; step } ->
      Some (Affine.eval lo point, Affine.eval hi point, step)
  | Tile_elem { ctrl; tile = _; hi } ->
      (match t.loops.(ctrl).shape with
      | Tile_ctrl { lo; _ } -> Some (lo, hi, 1)
      | _ -> assert false)
  | Tile_elem_affine { lo; hi; _ } ->
      Some (Affine.eval lo point, Affine.eval hi point, 1)

let trip_count t =
  let d = depth t in
  let dep = affine_deps t in
  let point = Array.make d 0 in
  (* Dimensions no deeper bound depends on contribute a product factor;
     the others are summed over pointwise.  For rectangular nests this
     degenerates to the familiar product of trip counts. *)
  let rec go l =
    if l = d then 1
    else
      match count_span t point l with
      | None -> go (l + 1)
      | Some (lo, hi, step) ->
          if hi < lo then 0
          else if dep.(l) then begin
            let acc = ref 0 in
            let v = ref lo in
            while !v <= hi do
              point.(l) <- !v;
              acc := !acc + go (l + 1);
              v := !v + step
            done;
            !acc
          end
          else Tiling_util.Intmath.range_count ~lo ~hi ~step * go (l + 1)
  in
  go 0

let make ~name ~loops ~refs ~arrays =
  validate name loops refs;
  let refs =
    Array.mapi (fun i (array, idx, access) -> { ref_id = i; array; idx; access }) refs
  in
  let t = { name; loops; refs; arrays } in
  if Array.exists (fun l -> is_affine_shape l.shape) loops && trip_count t = 0 then
    invalid_arg (name ^ ": affine bounds leave the nest empty");
  t

let clone t =
  (* Fresh array declarations (layout and base are mutable under padding),
     with every reference re-bound to its array's copy by physical
     identity. *)
  let fresh = List.map (fun a -> (a, Array_decl.copy a)) t.arrays in
  let swap a = match List.assq_opt a fresh with Some a' -> a' | None -> a in
  {
    t with
    refs = Array.map (fun r -> { r with array = swap r.array }) t.refs;
    arrays = List.map snd fresh;
  }

let iter_points t f =
  let d = depth t in
  let point = Array.make d 0 in
  let rec go l =
    if l = d then f point
    else begin
      let lo, hi, step = bounds_at t point l in
      let v = ref lo in
      while !v <= hi do
        point.(l) <- !v;
        go (l + 1);
        v := !v + step
      done
    end
  in
  go 0

(* One draw of every coordinate from the static box.  For affine
   dimensions the draw is uniform over the whole integer interval (not a
   lattice: the dynamic lattice is anchored at the dynamic lower bound);
   the caller rejects invalid points. *)
let draw_box t rng point slo shi =
  let d = depth t in
  for l = 0 to d - 1 do
    match t.loops.(l).shape with
    | Range { lo; hi; step } ->
        let n = Tiling_util.Intmath.range_count ~lo ~hi ~step in
        point.(l) <- lo + (step * Tiling_util.Prng.int rng n)
    | Range_affine _ ->
        point.(l) <- Tiling_util.Prng.int_in rng ~lo:slo.(l) ~hi:shi.(l)
    | Tile_ctrl _ -> () (* set below, jointly with the matching elem loop *)
    | Tile_elem { ctrl; tile; hi = _ } ->
        (match t.loops.(ctrl).shape with
        | Tile_ctrl { lo; hi = _; tile = _ } ->
            let v = Tiling_util.Prng.int_in rng ~lo ~hi:shi.(l) in
            point.(ctrl) <- lo + ((v - lo) / tile * tile);
            point.(l) <- v
        | _ -> assert false)
    | Tile_elem_affine { ctrl; tile; _ } ->
        (match t.loops.(ctrl).shape with
        | Tile_ctrl { lo; _ } ->
            let v = Tiling_util.Prng.int_in rng ~lo:slo.(l) ~hi:shi.(l) in
            point.(ctrl) <- lo + ((v - lo) / tile * tile);
            point.(l) <- v
        | _ -> assert false)
  done

let random_point_into t rng point =
  let d = depth t in
  if Array.length point <> d then invalid_arg "random_point_into: depth mismatch";
  if not (has_affine t) then
    (* Rectangular fast path, drawing exactly the historical rng stream. *)
    for l = 0 to d - 1 do
      match t.loops.(l).shape with
      | Range { lo; hi; step } ->
          let n = Tiling_util.Intmath.range_count ~lo ~hi ~step in
          point.(l) <- lo + (step * Tiling_util.Prng.int rng n)
      | Tile_ctrl _ -> ()
      | Tile_elem { ctrl; tile; hi } ->
          (* Sample the original loop value uniformly and derive the tile it
             falls into: this keeps the joint (ctrl, elem) pair uniform over
             the original span even when the last tile is partial. *)
          (match t.loops.(ctrl).shape with
          | Tile_ctrl { lo; hi = _; tile = _ } ->
              let v = Tiling_util.Prng.int_in rng ~lo ~hi in
              point.(ctrl) <- lo + ((v - lo) / tile * tile);
              point.(l) <- v
          | _ -> assert false)
      | Range_affine _ | Tile_elem_affine _ -> assert false
    done
  else begin
    (* Rejection sampling over the static box: every valid point is equally
       likely.  [make] guarantees the space is non-empty, so acceptance is
       bounded below by 1/box-to-space ratio. *)
    let slo, shi = static_bounds t in
    let accepted = ref false in
    let tries = ref 0 in
    while not !accepted do
      draw_box t rng point slo shi;
      if mem_point t point then accepted := true
      else begin
        incr tries;
        if !tries > 1_000_000 then
          failwith "random_point_into: rejection sampling failed to converge"
      end
    done
  end

let random_point t rng =
  let point = Array.make (depth t) 0 in
  random_point_into t rng point;
  point

let address_form t r =
  let d = depth t in
  let strides = Array_decl.strides r.array in
  let acc = ref (Affine.const ~depth:d r.array.Array_decl.base) in
  Array.iteri
    (fun k f -> acc := Affine.add !acc (Affine.scale strides.(k) f))
    r.idx;
  !acc

let touched_bytes t =
  List.fold_left (fun acc a -> acc + Array_decl.footprint a) 0 t.arrays

let pp ppf t =
  let names = var_names t in
  let indent l = String.make (2 * l) ' ' in
  let aff ppf f = Affine.pp ~names ppf f in
  Fmt.pf ppf "! nest %s@." t.name;
  Array.iteri
    (fun l loop ->
      match loop.shape with
      | Range { lo; hi; step } ->
          if step = 1 then Fmt.pf ppf "%sdo %s = %d, %d@." (indent l) loop.var lo hi
          else Fmt.pf ppf "%sdo %s = %d, %d, %d@." (indent l) loop.var lo hi step
      | Range_affine { lo; hi; step } ->
          if step = 1 then
            Fmt.pf ppf "%sdo %s = %a, %a@." (indent l) loop.var aff lo aff hi
          else Fmt.pf ppf "%sdo %s = %a, %a, %d@." (indent l) loop.var aff lo aff hi step
      | Tile_ctrl { lo; hi; tile } ->
          Fmt.pf ppf "%sdo %s = %d, %d, %d@." (indent l) loop.var lo hi tile
      | Tile_elem { ctrl; tile; hi } ->
          Fmt.pf ppf "%sdo %s = %s, min(%s+%d, %d)@." (indent l) loop.var
            t.loops.(ctrl).var t.loops.(ctrl).var (tile - 1) hi
      | Tile_elem_affine { ctrl; tile; lo; hi } ->
          Fmt.pf ppf "%sdo %s = max(%s, %a), min(%s+%d, %a)@." (indent l) loop.var
            t.loops.(ctrl).var aff lo t.loops.(ctrl).var (tile - 1) aff hi)
    t.loops;
  let d = depth t in
  Array.iter
    (fun r ->
      Fmt.pf ppf "%s%s %s(%a)@." (indent d)
        (match r.access with Read -> "load " | Write -> "store")
        r.array.Array_decl.name
        Fmt.(array ~sep:(any ", ") (fun ppf f -> Affine.pp ~names ppf (Affine.shift f 1)))
        r.idx)
    t.refs;
  Array.iteri
    (fun l loop ->
      ignore loop;
      Fmt.pf ppf "%senddo@." (indent (d - 1 - l)))
    t.loops
