(** Cache Miss Equations materialised as integer polyhedra.

    This is the paper's section 2.1/2.2 taken literally: for a reference
    [R_A], a reuse vector [r] and a destination iteration point, the

    - *compulsory equation* holds when the source [p - r] falls outside the
      iteration space (no earlier access to reuse from), and the
    - *replacement equations*, one per interfering reference [R_B] and per
      convex region of the reuse path, are diophantine systems over the
      path's iteration variables plus one auxiliary "cache wrap" variable
      [w]: [Addr_B(j) = set(A) * L + w * (S * L) + t], [0 <= t < L],
      excluding [R_A]'s own memory line.

    Deciding a miss means deciding whether any such polyhedron has an
    integer solution ("the resulting polyhedron is non-empty", section
    2.2); this module does exactly that with the general Fourier–Motzkin /
    enumeration machinery of {!Tiling_polyhedra.Polyhedron}.  It is
    exponential and only usable on small kernels — which is the paper's
    motivation for the fast solver ({!Engine}); the test suite checks that
    both agree point by point.

    Set-associative caches go through the associativity lattice: the wrap
    variable [w] of each integer solution names the interfering memory
    line [set + w * sets], so the distinct [w] values across an edge's
    polyhedra are exactly the lattice collisions in the destination's set,
    and a k-way LRU cache evicts the reused line iff at least [k] of them
    occur ({!distinct_interfering_lines}).  [assoc = 1] degenerates to the
    paper's direct-mapped emptiness test. *)

type outcome = Hit | Compulsory_miss | Replacement_miss

val classify :
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  int array ->
  int ->
  outcome
(** [classify nest cache point ref_id] decides the access outcome by
    building and solving the equations: the access hits iff some reuse
    source's edge has fewer than [cache.assoc] distinct interfering lines.
    Uses the same reuse vectors and source normalisation as {!Engine}, so
    discrepancies with it isolate the replacement-query machinery. *)

val distinct_interfering_lines :
  ?cap:int ->
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  src:int array ->
  src_ref:int ->
  dst:int array ->
  dst_ref:int ->
  int
(** Distinct interfering memory lines on one reuse edge, counted as the
    distinct wrap values across the edge's replacement polyhedra (the
    associativity-lattice construction).  Counting stops at [cap]
    (default unbounded); callers deciding a k-way miss pass [~cap:assoc].
    The destination's own line never counts. *)

val replacement_polyhedra :
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  src:int array ->
  src_ref:int ->
  dst:int array ->
  dst_ref:int ->
  Tiling_polyhedra.Polyhedron.t list
(** The replacement-equation polyhedra for one reuse edge: one polyhedron
    per (interfering reference, path box, above/below-line half), each over
    [box entry coordinates + 1] variables (the last is the wrap variable).
    The edge misses iff any of them has an integer point. *)

val count_interference_points :
  Tiling_ir.Nest.t ->
  Tiling_cache.Config.t ->
  src:int array ->
  src_ref:int ->
  dst:int array ->
  dst_ref:int ->
  int
(** Total integer points of {!replacement_polyhedra} — the quantity whose
    counting cost the paper's section 2.2 analyses.  Small kernels only. *)
