(** The fast CME point solver (sections 2.2–2.4 of the paper).

    [classify] decides, for one iteration point and one reference, whether
    the access hits or misses, and classifies the miss:

    - for every reuse vector of the reference, the potential source access
      is [point - delta]; the *compulsory equations* correspond to the
      source falling outside the iteration space (or on a different memory
      line, for spatial reuse);
    - the *replacement equations* correspond to some access between source
      and destination mapping to the same cache set with a different memory
      line; in a k-way cache, [k] distinct such lines are needed (§2.2).

    The access hits iff at least one reuse vector has an in-space, same-line
    source with fewer than [assoc] distinct interfering lines on its path
    (i.e. the point solves none of that vector's equations); it is a
    compulsory miss iff no reuse vector has a same-line in-space source.

    Replacement queries are answered analytically: the image of a
    reference's address function over a path box is a small set of
    generators (steps and counts); its residues modulo [sets * line] are
    computed once per generator signature (memoised) and probed against the
    window of the destination's cache set, and distinct interfering lines
    are identified by exact interval queries with gcd/denseness shortcuts.
    Queries that exceed the window/recursion budget fall back to a
    conservative answer and are counted in {!fallback_count}. *)

type outcome = Hit | Compulsory_miss | Replacement_miss

type t

val create :
  ?window_cap:int -> Tiling_ir.Nest.t -> Tiling_cache.Config.t -> t
(** Builds the solver context: address forms, reuse vectors, memo tables.
    [window_cap] bounds the per-segment exact window enumeration (default
    512). *)

val nest : t -> Tiling_ir.Nest.t
val cache : t -> Tiling_cache.Config.t

val window_cap : t -> int
(** The per-segment window bound this engine was created with (so helpers
    can build sibling engines with identical conservative behaviour). *)

val reuse_vectors : t -> Tiling_reuse.Vectors.t list array
(** The reuse vectors the solver uses, per reference. *)

val classify : t -> int array -> int -> outcome
(** [classify t point ref_id] decides the outcome of reference [ref_id] at
    [point].  [point] must be an iteration point of the nest. *)

val reuse_sources : t -> int array -> int -> (int array * int) list
(** [reuse_sources t point ref_id] lists the valid same-line reuse sources
    of the access — each an earlier (point, reference) pair, already
    normalised to the latest realisation (see the module comment).  Besides
    the static reuse vectors, earlier same-iteration references and every
    reference of the execution predecessor are always considered, which
    captures streaming reuse whose memory line wraps across several layout
    dimensions between consecutive iterations.  Empty means the access is a
    compulsory miss; the access hits iff at least one source's path is
    interference-free.  Exposed for the symbolic solver and for tests. *)

val fallback_count : t -> int
(** Number of replacement queries answered conservatively so far. *)

val memo_size : t -> int
(** Number of distinct residue images in this engine's private table
    (ablation metric). *)

(** {2 Cross-engine residue cache}

    Canonical generator signatures recur across the hundreds of engines a
    GA run creates (the modulus is fixed by the cache configuration and
    nearby tile vectors share generators), so residue images are also
    cached in a process-wide, sharded, mutex-protected table keyed by
    [(modulus, canonical generators)].  Each engine's private table acts
    as an L1 in front of it.  The shared cache is bounded and evicts in
    FIFO insertion order; eviction only ever costs a recompute, never
    correctness.  Hits, misses and evictions are counted in the
    [cme.residues.shared.{hit,miss,evictions}] metrics. *)

val set_shared_residue_capacity : int -> unit
(** Bound the shared cache to roughly [n] entries (rounded up to at least
    one entry per shard; default 4096), evicting immediately if the new
    bound is tighter.  @raise Invalid_argument if [n < 0]. *)

val clear_shared_residues : unit -> unit
(** Empty the shared cache (benchmarks use this to measure cold-cache
    evaluation; engines remain valid, their private tables untouched). *)

val shared_residue_size : unit -> int
(** Number of residue images currently in the shared cache. *)
