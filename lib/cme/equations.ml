type summary = {
  regions : int;
  references : int;
  reuse_vectors : int;
  compulsory_equations : int;
  replacement_equations : int;
}

let summarize nest ~line =
  Tiling_obs.Span.with_ "cme.equations.summarize"
    ~attrs:[ ("nest", Tiling_obs.Json.String nest.Tiling_ir.Nest.name) ]
    (fun () ->
      let regions = List.length (Path.full_space nest) in
      let reuse = Tiling_reuse.Vectors.of_nest nest ~line in
      let references = Array.length nest.Tiling_ir.Nest.refs in
      let reuse_vectors =
        Array.fold_left (fun acc l -> acc + List.length l) 0 reuse
      in
      {
        regions;
        references;
        reuse_vectors;
        compulsory_equations = reuse_vectors * regions;
        replacement_equations = reuse_vectors * references * regions * regions;
      })

let pp ppf s =
  Fmt.pf ppf "regions=%d refs=%d reuse=%d compulsory_eqs=%d replacement_eqs=%d"
    s.regions s.references s.reuse_vectors s.compulsory_equations
    s.replacement_equations
