open Tiling_ir
open Tiling_util

let log_src = Logs.Src.create "tiling.cme" ~doc:"CME point solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Metrics = Tiling_obs.Metrics

let m_hit = Metrics.counter "cme.classify.hit"
let m_replacement = Metrics.counter "cme.classify.replacement"
let m_compulsory = Metrics.counter "cme.classify.compulsory"
let m_fallbacks = Metrics.counter "cme.fallbacks"
let m_memo_hit = Metrics.counter "cme.residues.memo.hit"
let m_memo_miss = Metrics.counter "cme.residues.memo.miss"
let m_engines = Metrics.counter "cme.engines.created"

(* ------------------------------------------------------------------ *)
(* Cross-engine residue cache.

   Residue images are keyed by canonical generator signatures, and those
   signatures recur massively across the hundreds of engines a GA run
   creates: the modulus is fixed by the cache configuration, and nearby
   tile vectors produce overlapping generator sets.  Each engine keeps its
   private (lock-free) table as an L1, but misses consult this shared,
   sharded, bounded cache before recomputing.  Entries are immutable
   [Residue_set.t] values, so sharing them across domains is safe; the
   shards are mutex-protected and evict in FIFO insertion order, which
   keeps long fuzz runs (thousands of distinct moduli and signatures) from
   growing without bound.  Eviction only ever costs a recompute. *)

module Shared_residues = struct
  type key = int * (int * int) list (* modulus, canonical generators *)

  type shard = {
    lock : Mutex.t;
    table : (key, Residue_set.t) Hashtbl.t;
    order : key Queue.t; (* insertion order, for FIFO eviction *)
  }

  let shard_count = 16 (* power of two; low-bit mask below *)
  let default_capacity = 4096
  let capacity = Atomic.make default_capacity

  let shards =
    Array.init shard_count (fun _ ->
        {
          lock = Mutex.create ();
          table = Hashtbl.create 64;
          order = Queue.create ();
        })

  let m_hit = Metrics.counter "cme.residues.shared.hit"
  let m_miss = Metrics.counter "cme.residues.shared.miss"
  let m_evict = Metrics.counter "cme.residues.shared.evictions"

  let shard_of key = shards.(Hashtbl.hash key land (shard_count - 1))

  let per_shard_cap () = max 1 (Atomic.get capacity / shard_count)

  let find key =
    let s = shard_of key in
    Mutex.protect s.lock (fun () ->
        match Hashtbl.find_opt s.table key with
        | Some _ as r ->
            Metrics.incr m_hit;
            r
        | None ->
            Metrics.incr m_miss;
            None)

  let evict_to s cap =
    while Hashtbl.length s.table > cap do
      let victim = Queue.pop s.order in
      Hashtbl.remove s.table victim;
      Metrics.incr m_evict
    done

  let add key value =
    let s = shard_of key in
    Mutex.protect s.lock (fun () ->
        if not (Hashtbl.mem s.table key) then begin
          Hashtbl.replace s.table key value;
          Queue.push key s.order;
          evict_to s (per_shard_cap ())
        end)

  let set_capacity n =
    if n < 0 then invalid_arg "Shared_residues.set_capacity";
    Atomic.set capacity n;
    let cap = per_shard_cap () in
    Array.iter
      (fun s -> Mutex.protect s.lock (fun () -> evict_to s cap))
      shards

  let clear () =
    Array.iter
      (fun s ->
        Mutex.protect s.lock (fun () ->
            Hashtbl.reset s.table;
            Queue.clear s.order))
      shards

  let length () =
    Array.fold_left
      (fun acc s -> acc + Mutex.protect s.lock (fun () -> Hashtbl.length s.table))
      0 shards
end

let set_shared_residue_capacity = Shared_residues.set_capacity
let clear_shared_residues = Shared_residues.clear
let shared_residue_size = Shared_residues.length

type outcome = Hit | Compulsory_miss | Replacement_miss

type t = {
  nest : Nest.t;
  cache : Tiling_cache.Config.t;
  forms : Affine.t array;
  reuse : Tiling_reuse.Vectors.t list array;
  modulus : int;  (* sets * line: addresses congruent mod this share a set *)
  tile_pairs : (int * int * int * int) array;
      (* (elem dim, ctrl dim, lower bound, tile) for every tiled loop pair *)
  affine : bool;
      (* any affine-bounded loop: reuse sources come from the exact
         latest-source search; rectangular nests keep the vector path *)
  memo : ((int * int) list, Residue_set.t) Hashtbl.t;
  window_cap : int;
  mutable fallbacks : int;
}

let tile_pairs_of nest =
  let pairs = ref [] in
  Array.iteri
    (fun e (loop : Nest.loop) ->
      match loop.Nest.shape with
      | Nest.Tile_elem { ctrl; tile; _ } | Nest.Tile_elem_affine { ctrl; tile; _ }
        ->
          (match nest.Nest.loops.(ctrl).Nest.shape with
          | Nest.Tile_ctrl { lo; _ } -> pairs := (e, ctrl, lo, tile) :: !pairs
          | _ -> assert false)
      | Nest.Range _ | Nest.Range_affine _ | Nest.Tile_ctrl _ -> ())
    nest.Nest.loops;
  Array.of_list !pairs

let create ?(window_cap = 512) nest cache =
  Tiling_obs.Span.with_ "cme.engine.create"
    ~attrs:
      [
        ("nest", Tiling_obs.Json.String nest.Nest.name);
        ("refs", Tiling_obs.Json.Int (Array.length nest.Nest.refs));
      ]
    (fun () ->
      Metrics.incr m_engines;
      let line = cache.Tiling_cache.Config.line in
      {
        nest;
        cache;
        forms = Array.map (fun r -> Nest.address_form nest r) nest.Nest.refs;
        reuse = Tiling_reuse.Vectors.of_nest nest ~line;
        modulus = cache.Tiling_cache.Config.sets * line;
        tile_pairs = tile_pairs_of nest;
        affine = Nest.has_affine nest;
        memo = Hashtbl.create 256;
        window_cap;
        fallbacks = 0;
      })

let nest t = t.nest
let cache t = t.cache
let window_cap t = t.window_cap
let reuse_vectors t = t.reuse
let fallback_count t = t.fallbacks
let memo_size t = Hashtbl.length t.memo

(* ------------------------------------------------------------------ *)
(* Residue images, memoised by generator signature.                    *)

let canonical_gens t gens =
  let m = t.modulus in
  let norm =
    List.filter_map
      (fun (step, count) ->
        let s = Intmath.pos_mod step m in
        if s = 0 then None
        else
          let period = m / Intmath.gcd s m in
          Some (s, min count period))
      gens
  in
  List.sort compare norm

let residues t gens =
  let key = canonical_gens t gens in
  match Hashtbl.find_opt t.memo key with
  | Some r ->
      Metrics.incr m_memo_hit;
      r
  | None ->
      Metrics.incr m_memo_miss;
      let skey = (t.modulus, key) in
      let r =
        match Shared_residues.find skey with
        | Some r -> r
        | None ->
            let r =
              List.fold_left
                (fun acc (step, count) ->
                  Residue_set.sum_progression acc ~step ~count)
                (Residue_set.singleton t.modulus 0)
                key
            in
            Shared_residues.add skey r;
            r
      in
      Hashtbl.replace t.memo key r;
      r

(* ------------------------------------------------------------------ *)
(* Denseness analysis: when the image of the generators is every value
   congruent to the constant modulo [g] within [min, max], window queries
   are O(1).  Sufficient conditions, adding a step-[s] count-[count]
   progression to a set dense modulo [g] over a span: with [g' =
   gcd(g, s)] and [period = g / g'], the translates' residue classes
   modulo [g] repeat with [period], so (a) at least [period] translates
   are needed to reach every class at all ([count >= period] — e.g.
   {48 x 3} + {112 x 2} refines the gcd to 16 on paper yet only reaches
   residues {0, 16} mod 48), and (b) same-class translates sit
   [period * s] apart, so their spans must chain contiguously
   ([period * s <= span + g] — e.g. {216 x 5} + {936 x 4} covers every
   class but each one only inside its own disjoint window).  Rejecting a
   dense set costs only the exact fallback query, never correctness.    *)

let dense_and_gcd gens =
  let sorted = List.sort (fun (a, _) (b, _) -> compare (abs a) (abs b)) gens in
  List.fold_left
    (fun (dense, g, span) (step, count) ->
      let s = abs step in
      let g' = Intmath.gcd g s in
      let ok =
        g = 0
        ||
        let period = g / g' in
        count >= period && period * s <= span + g
      in
      ((dense && ok), g', span + (s * (count - 1))))
    (true, 0, 0) sorted

(* Does a value congruent to [c] modulo [g] exist in [a, b]?  [g = 0]
   degenerates to the single value [c]. *)
let lattice_hits ~c ~g a b =
  if b < a then false
  else if g = 0 then a <= c && c <= b
  else Intmath.multiples_in ~lo:(a - c) ~hi:(b - c) g > 0

(* Exact query: does the image of [const + generators] intersect [a, b]?
   [fuel] bounds the recursion; on exhaustion we answer with the dense
   approximation (and the caller counts a fallback via the return flag). *)
let rec hits_interval ~fuel const gens a b =
  let mn, mx = Box.value_range const gens in
  if mx < a || mn > b then (false, true)
  else if mn >= a && mx <= b then (true, true)
  else
    let dense, g, _ = dense_and_gcd gens in
    if dense then (lattice_hits ~c:const ~g (max a mn) (min b mx), true)
    else if !fuel <= 0 then (lattice_hits ~c:const ~g (max a mn) (min b mx), false)
    else begin
      decr fuel;
      (* Branch on the coarsest generator; only the steps whose translate of
         the remaining sub-image can reach [a, b] are explored. *)
      let (step, count), rest =
        match
          List.stable_sort (fun (x, _) (y, _) -> compare (abs y) (abs x)) gens
        with
        | [] -> assert false
        | hd :: tl -> (hd, tl)
      in
      let rmn, rmx = Box.value_range const rest in
      (* Need step * k in [a - rmx, b - rmn]. *)
      let lo_n = a - rmx and hi_n = b - rmn in
      let k_lo, k_hi =
        if step > 0 then (Intmath.ceil_div lo_n step, Intmath.floor_div hi_n step)
        else (Intmath.ceil_div hi_n step, Intmath.floor_div lo_n step)
      in
      let k_lo = max k_lo 0 and k_hi = min k_hi (count - 1) in
      let result = ref false and exact = ref true in
      let k = ref k_lo in
      while (not !result) && !k <= k_hi do
        let hit, ex = hits_interval ~fuel (const + (step * !k)) rest a b in
        if hit then result := true;
        if not ex then exact := false;
        incr k
      done;
      (!result, !result || !exact)
    end

(* ------------------------------------------------------------------ *)
(* Interference counting.                                               *)

(* A segment is the image of one reference over one path box (or a single
   endpoint access): a constant plus generators. *)
type segment = { const : int; gens : (int * int) list }

(* Count distinct memory lines, different from [line_a], mapping to cache
   set [set], touched by the segments; counting stops at [cap].  Lines in
   set [set] are exactly [set + m * sets] for integer [m]; a value [v]
   belongs to that line's window iff [v in [set*L + m*M, set*L + m*M + L)]
   with [M = sets * L]. *)
let count_interfering t ~set ~line_a ~cap segments =
  let cfg = t.cache in
  let l_bytes = cfg.Tiling_cache.Config.line in
  let sets = cfg.Tiling_cache.Config.sets in
  let m_big = t.modulus in
  let m0 = (line_a - set) / sets in (* line_a's own window index *)
  let found : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let base = set * l_bytes in
  let consider seg =
    if Hashtbl.length found >= cap then ()
    else begin
      match seg.gens with
      | [] ->
          (* Single access. *)
          let v = seg.const in
          if Intmath.pos_mod (v - base) m_big < l_bytes then begin
            let m = Intmath.floor_div (v - base) m_big in
            if m <> m0 then Hashtbl.replace found m ()
          end
      | gens ->
          let rs = residues t gens in
          (* The image residues are those of the generators shifted by
             const; probe the set window accordingly. *)
          if Residue_set.hits_window rs ~lo:(base - seg.const) ~len:l_bytes then begin
            let mn, mx = Box.value_range seg.const gens in
            let m_lo = Intmath.floor_div (mn - base) m_big in
            let m_hi = Intmath.floor_div (mx - base) m_big in
            let dense, g, _ = dense_and_gcd gens in
            if dense then begin
              (* O(1) per window. *)
              let m = ref m_lo in
              while Hashtbl.length found < cap && !m <= m_hi do
                if !m <> m0 then begin
                  let a = base + (!m * m_big) and b = base + (!m * m_big) + l_bytes - 1 in
                  if lattice_hits ~c:seg.const ~g (max a mn) (min b mx) then
                    Hashtbl.replace found !m ()
                end;
                incr m
              done
            end
            else if m_hi - m_lo + 1 > t.window_cap then begin
              (* Too many windows for exact enumeration of a non-dense
                 image: conservatively saturate. *)
              t.fallbacks <- t.fallbacks + 1;
              Metrics.incr m_fallbacks;
              if t.fallbacks = 1 then
                Log.debug (fun m ->
                    m "window enumeration saturated (%d windows > cap %d); \
                       counting conservatively"
                      (m_hi - m_lo + 1) t.window_cap);
              for m = m_lo to m_lo + cap do
                if m <> m0 then Hashtbl.replace found m ()
              done
            end
            else begin
              let fuel = ref 4096 in
              let m = ref m_lo in
              while Hashtbl.length found < cap && !m <= m_hi do
                if !m <> m0 then begin
                  let a = base + (!m * m_big) in
                  let hit, exact = hits_interval ~fuel seg.const gens a (a + l_bytes - 1) in
                  if not exact then begin
                    t.fallbacks <- t.fallbacks + 1;
                    Metrics.incr m_fallbacks
                  end;
                  if hit then Hashtbl.replace found !m ()
                end;
                incr m
              done
            end
          end
    end
  in
  List.iter consider segments;
  Hashtbl.length found

(* ------------------------------------------------------------------ *)
(* Path segments for one reuse edge.                                    *)

let segments_for_path t ~src ~src_ref ~dst ~dst_ref =
  let nrefs = Array.length t.forms in
  let boxes = Path.between t.nest ~src ~dst in
  let segs = ref [] in
  (* All references over the strictly-between boxes. *)
  List.iter
    (fun box ->
      for b = 0 to nrefs - 1 do
        let const, gens = Box.eval_form t.forms.(b) box in
        segs := { const; gens } :: !segs
      done)
    boxes;
  (* References after [src_ref] at the source point. *)
  let same_point = Nest.lex_compare src dst = 0 in
  let upto = if same_point then dst_ref else nrefs in
  for b = src_ref + 1 to upto - 1 do
    segs := { const = Affine.eval t.forms.(b) src; gens = [] } :: !segs
  done;
  (* References before [dst_ref] at the destination point. *)
  if not same_point then
    for b = 0 to dst_ref - 1 do
      segs := { const = Affine.eval t.forms.(b) dst; gens = [] } :: !segs
    done;
  !segs

(* ------------------------------------------------------------------ *)
(* Source normalisation.  A reuse vector only hints at *a* previous access
   of the line; the realised reuse is from the *latest* one, which shortens
   the interference path.  Starting from [src = point - delta] (already
   checked to be in space and on the same line), we push the source as late
   as possible without leaving the line or overtaking the destination:

   - loop variables the source reference's address does not depend on are
     raised to their upper bound (a tile-control variable whose element
     variable is address-relevant is instead pinned to the element's tile);
   - the innermost variable with a sub-line stride slides forward within
     the memory line.

   Only dimensions after the vector's leading component move, so the
   source stays lexicographically before the destination. *)

let normalise_source t ~src_form ~line_a src ~dest ~first_nz =
  let nest = t.nest in
  let d = Nest.depth nest in
  let l_bytes = t.cache.Tiling_cache.Config.line in
  let coeff q = Affine.coeff src_form q in
  for q = first_nz + 1 to d - 1 do
    if coeff q = 0 then begin
      match nest.Nest.loops.(q).shape with
      | Nest.Tile_ctrl { lo; hi = _; tile } ->
          (* Find the element dim; if its value is pinned by the address,
             the control variable must stay on that element's tile. *)
          let elem = ref (-1) in
          Array.iteri
            (fun e (loop : Nest.loop) ->
              match loop.shape with
              | Nest.Tile_elem te when te.ctrl = q -> elem := e
              | _ -> ())
            nest.Nest.loops;
          let e = !elem in
          if e >= 0 && coeff e <> 0 then
            src.(q) <- lo + ((src.(e) - lo) / tile * tile)
          else begin
            let lo', hi', step = Nest.bounds_at nest src q in
            src.(q) <- lo' + ((hi' - lo') / step * step)
          end
      | Nest.Range _ | Nest.Tile_elem _ ->
          let lo', hi', step = Nest.bounds_at nest src q in
          src.(q) <- lo' + ((hi' - lo') / step * step)
      | Nest.Range_affine _ | Nest.Tile_elem_affine _ ->
          assert false (* affine nests take the latest-source search *)
    end
  done;
  (* Slide the innermost sub-line-stride dimension within the line.  When
     that dimension is the vector's leading one, cap the slide so the source
     stays strictly before the destination. *)
  let rec find_slide q =
    if q < first_nz then None
    else
      let c = coeff q in
      if c <> 0 && abs c < l_bytes then Some (q, c) else find_slide (q - 1)
  in
  (match find_slide (d - 1) with
  | None -> ()
  | Some (q, c) ->
      let addr = Affine.eval src_form src in
      let line_end = ((line_a + 1) * l_bytes) - 1 in
      let line_start = line_a * l_bytes in
      let dv =
        if c > 0 then (line_end - addr) / c else (addr - line_start) / -c
      in
      let _, hi, step = Nest.bounds_at t.nest src q in
      let hi = if q = first_nz then min hi (dest.(q) - 1) else hi in
      (* Slide along the loop's own lattice only: whole steps forward,
         never past the loop bound nor (for the leading dimension) the
         destination — an off-lattice source would fabricate a phantom
         iteration and corrupt the interference path. *)
      let target =
        min
          (src.(q) + (dv / step * step))
          (src.(q) + (Intmath.floor_div (hi - src.(q)) step * step))
      in
      if target > src.(q) then src.(q) <- target)

(* Lexicographic (execution-order) predecessor of a point, or [None] at
   the very first iteration: decrement the deepest decrementable loop and
   reset everything deeper to its upper bound under the new prefix.  Under
   affine bounds a new prefix can leave an inner range empty; filling then
   fails and the decrement continues (backtracking outward as needed). *)
let exec_pred nest point =
  let d = Nest.depth nest in
  let p = Array.copy point in
  let fill q0 =
    let ok = ref true in
    let q = ref q0 in
    while !ok && !q < d do
      let lo, hi, step = Nest.bounds_at nest p !q in
      if hi < lo then ok := false
      else begin
        p.(!q) <- lo + ((hi - lo) / step * step);
        incr q
      end
    done;
    !ok
  in
  let rec try_dim l =
    if l < 0 then None
    else begin
      let lo, _, step = Nest.bounds_at nest p l in
      if p.(l) - step >= lo then begin
        p.(l) <- p.(l) - step;
        if fill (l + 1) then Some p else try_dim l
      end
      else try_dim (l - 1)
    end
  in
  try_dim (d - 1)

(* ------------------------------------------------------------------ *)
(* Exact latest-source search for affine nests.

   Triangular kernels reuse the same array through references that are not
   uniformly generated — LU touches [a] both as [a(i,k)] and [a(i,j)] — so
   no constant reuse vector reaches the cross-iteration source.  For affine
   nests the static vector machinery is replaced by an exact per-point
   search: candidate source points are enumerated in descending execution
   order (outermost dimension first, each walking its dynamic lattice
   downward), pruning any partial assignment whose address image cannot
   reach the destination's memory line for any reference.  The first
   complete point found carries the latest previous access to the line —
   exactly the reuse source the CMEs want.  Any previous same-line access
   makes the Hit test sound (LRU residency is measured from the access
   itself); the latest one makes it exact.

   Dimensions that influence neither any address nor any deeper bound are
   collapsed to one representative value per subtree, since all their
   values are equivalent.  The search is budgeted; exhaustion counts a
   fallback and conservatively reports no source. *)

exception Found_src of int array * int
exception Budget

let latest_source t ~dst ~line_a =
  let nest = t.nest in
  let d = Nest.depth nest in
  let l_bytes = t.cache.Tiling_cache.Config.line in
  let lo_addr = line_a * l_bytes in
  let hi_addr = lo_addr + l_bytes - 1 in
  let nrefs = Array.length t.forms in
  let slo, shi = Nest.static_bounds nest in
  let deps = Nest.affine_deps nest in
  let influences =
    (* value changes some deeper bound: affine dependence or tile window *)
    Array.init d (fun l ->
        deps.(l)
        ||
        match nest.Nest.loops.(l).Nest.shape with
        | Nest.Tile_ctrl _ -> true
        | _ -> false)
  in
  let addr_relevant =
    Array.init d (fun l -> Array.exists (fun f -> Affine.coeff f l <> 0) t.forms)
  in
  (* Extreme contribution of dims [>= l] to each form over the static hull,
     for pruning partial assignments. *)
  let rem_lo = Array.make_matrix nrefs (d + 1) 0 in
  let rem_hi = Array.make_matrix nrefs (d + 1) 0 in
  for b = 0 to nrefs - 1 do
    for l = d - 1 downto 0 do
      let c = Affine.coeff t.forms.(b) l in
      let x = c * slo.(l) and y = c * shi.(l) in
      rem_lo.(b).(l) <- rem_lo.(b).(l + 1) + min x y;
      rem_hi.(b).(l) <- rem_hi.(b).(l + 1) + max x y
    done
  done;
  let partial = Array.init nrefs (fun b -> t.forms.(b).Affine.const) in
  let feasible l =
    let ok = ref false in
    for b = 0 to nrefs - 1 do
      if
        (not !ok)
        && partial.(b) + rem_lo.(b).(l) <= hi_addr
        && partial.(b) + rem_hi.(b).(l) >= lo_addr
      then ok := true
    done;
    !ok
  in
  let src = Array.make d 0 in
  let budget = ref 200_000 in
  let rec go l tight =
    decr budget;
    if !budget <= 0 then raise Budget;
    if l = d then begin
      (* A tight leaf is [dst] itself; same-point earlier references are
         covered by the predecessor probe in [reuse_sources]. *)
      if not tight then
        for b = nrefs - 1 downto 0 do
          if partial.(b) >= lo_addr && partial.(b) <= hi_addr then
            raise (Found_src (Array.copy src, b))
        done
    end
    else begin
      let lo, hi, step = Nest.bounds_at nest src l in
      if hi >= lo then begin
        let top = lo + ((hi - lo) / step * step) in
        let start = if tight then min top dst.(l) else top in
        let collapse = (not influences.(l)) && not addr_relevant.(l) in
        let v = ref start in
        let continue_ = ref true in
        while !continue_ && !v >= lo do
          src.(l) <- !v;
          for b = 0 to nrefs - 1 do
            partial.(b) <- partial.(b) + (Affine.coeff t.forms.(b) l * !v)
          done;
          let tight' = tight && !v = dst.(l) in
          if feasible (l + 1) then go (l + 1) tight';
          for b = 0 to nrefs - 1 do
            partial.(b) <- partial.(b) - (Affine.coeff t.forms.(b) l * !v)
          done;
          (* A collapsed dimension needs at most one tight and one
             non-tight representative. *)
          if collapse && not tight' then continue_ := false else v := !v - step
        done
      end
    end
  in
  match go 0 true with
  | () -> None
  | exception Found_src (p, b) -> Some (p, b)
  | exception Budget ->
      t.fallbacks <- t.fallbacks + 1;
      Metrics.incr m_fallbacks;
      None

let reuse_sources t point ref_id =
  let cfg = t.cache in
  let l_bytes = cfg.Tiling_cache.Config.line in
  let addr = Affine.eval t.forms.(ref_id) point in
  let line_a = Intmath.floor_div addr l_bytes in
  let d = Nest.depth t.nest in
  (* Universal nearest candidates: every reference at the execution
     predecessor (and, for later references of the same iteration, at the
     point itself).  This catches same-line reuse that no static vector
     expresses, e.g. a streaming sweep whose line wraps across several
     layout dimensions at once. *)
  let pred_sources =
    let at_point p limit =
      List.filter_map
        (fun b ->
          if Intmath.floor_div (Affine.eval t.forms.(b) p) l_bytes = line_a
          then Some (Array.copy p, b)
          else None)
        (List.init limit Fun.id)
    in
    at_point point ref_id
    @ (match exec_pred t.nest point with
      | Some p -> at_point p (Array.length t.forms)
      | None -> [])
  in
  if t.affine then
    pred_sources
    @ (match latest_source t ~dst:point ~line_a with
      | Some (p, b) -> [ (p, b) ]
      | None -> [])
  else
  let src = Array.make d 0 in
  pred_sources
  @ List.filter_map
    (fun (v : Tiling_reuse.Vectors.t) ->
      for l = 0 to d - 1 do
        src.(l) <- point.(l) - v.delta.(l)
      done;
      (* Tile-control coordinates follow from the element coordinates. *)
      Array.iter
        (fun (e, ctrl, lo, tile) ->
          src.(ctrl) <- lo + (Intmath.floor_div (src.(e) - lo) tile * tile))
        t.tile_pairs;
      let zero_delta = Array.for_all (fun k -> k = 0) v.delta in
      if not (Nest.mem_point t.nest src) then None
      else if (not zero_delta) && Nest.lex_compare src point >= 0 then None
      else begin
        let src_ref = match v.leader with Some b -> b | None -> ref_id in
        let src_addr = Affine.eval t.forms.(src_ref) src in
        if Intmath.floor_div src_addr l_bytes <> line_a then None
        else begin
          let first_diff =
            let rec go l = if l = d || src.(l) <> point.(l) then l else go (l + 1) in
            go 0
          in
          if first_diff < d then
            normalise_source t ~src_form:t.forms.(src_ref) ~line_a src
              ~dest:point ~first_nz:first_diff;
          Some (Array.copy src, src_ref)
        end
      end)
    t.reuse.(ref_id)

let classify t point ref_id =
  let cfg = t.cache in
  let l_bytes = cfg.Tiling_cache.Config.line in
  let sets = cfg.Tiling_cache.Config.sets in
  let assoc = cfg.Tiling_cache.Config.assoc in
  let addr = Affine.eval t.forms.(ref_id) point in
  let line_a = Intmath.floor_div addr l_bytes in
  let set = Intmath.pos_mod line_a sets in
  let sources = reuse_sources t point ref_id in
  let outcome =
    if sources = [] then Compulsory_miss
    else if
      List.exists
        (fun (src, src_ref) ->
          let segments =
            segments_for_path t ~src ~src_ref ~dst:point ~dst_ref:ref_id
          in
          count_interfering t ~set ~line_a ~cap:assoc segments < assoc)
        sources
    then Hit
    else Replacement_miss
  in
  (match outcome with
  | Hit -> Metrics.incr m_hit
  | Compulsory_miss -> Metrics.incr m_compulsory
  | Replacement_miss -> Metrics.incr m_replacement);
  outcome
