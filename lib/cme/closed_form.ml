open Tiling_ir
open Tiling_util

module Metrics = Tiling_obs.Metrics

let m_rows = Metrics.counter "symbolic.rows"
let m_row_memo_hit = Metrics.counter "symbolic.rows.memo.hit"
let m_extrapolated = Metrics.counter "symbolic.rows.extrapolated"
let m_classified = Metrics.counter "symbolic.points.classified"

type reason = [ `Affine | `Budget ]

let pp_reason ppf = function
  | `Affine -> Fmt.string ppf "affine-coupled loop bounds"
  | `Budget -> Fmt.string ppf "classification budget exhausted"

exception Out_of_budget

(* Packed per-row outcome counts: for each reference, misses and
   compulsory misses summed over the row's points. *)
type row_counts = { rc_m : int array; rc_c : int array }

let add_row_counts ~into:(m, c) rc =
  Array.iteri (fun r x -> m.(r) <- m.(r) + x) rc.rc_m;
  Array.iteri (fun r x -> c.(r) <- c.(r) + x) rc.rc_c

(* The address step of reference [r] along one box entry: moving the
   entry's counter by 1 moves every target variable by its increment. *)
let entry_step form (e : Box.entry) =
  List.fold_left
    (fun acc (var, inc) -> acc + (Affine.coeff form var * inc))
    0 e.Box.targets

(* Outcome period of a box entry: the smallest counter shift that moves
   every reference's address by a multiple of the cache modulus.  Each
   per-reference period divides the modulus, so the lcm does too. *)
let entry_period forms modulus (e : Box.entry) =
  Array.fold_left
    (fun acc form ->
      let s = Intmath.pos_mod (entry_step form e) modulus in
      if s = 0 then acc else Intmath.lcm acc (modulus / Intmath.gcd s modulus))
    1 forms

(* How far (in entry counters) a reuse source can sit from its destination
   along this entry: bounds the boundary zone where sources fall out of
   the iteration space and the outcome pattern is not yet periodic. *)
let entry_reach reuse (e : Box.entry) =
  Array.fold_left
    (fun acc vs ->
      List.fold_left
        (fun acc (v : Tiling_reuse.Vectors.t) ->
          List.fold_left
            (fun acc (var, inc) ->
              if v.delta.(var) = 0 then acc
              else max acc (Intmath.ceil_div (abs v.delta.(var)) (max 1 (abs inc))))
            acc e.Box.targets)
        acc vs)
    1 reuse

type ctx = {
  engine : Engine.t;
  nrefs : int;
  forms : Affine.t array;
  modulus : int;
  budget : int ref; (* remaining (point, ref) classifications *)
}

(* Classify one point (all references) into [m]/[c], charging the budget. *)
let classify_point ctx point (m, c) =
  if !(ctx.budget) < ctx.nrefs then raise Out_of_budget;
  ctx.budget := !(ctx.budget) - ctx.nrefs;
  Metrics.add m_classified ctx.nrefs;
  for r = 0 to ctx.nrefs - 1 do
    match Engine.classify ctx.engine point r with
    | Engine.Hit -> ()
    | Engine.Replacement_miss -> m.(r) <- m.(r) + 1
    | Engine.Compulsory_miss ->
        m.(r) <- m.(r) + 1;
        c.(r) <- c.(r) + 1
  done

(* Classify point and record the per-ref outcome triple into [out] at
   index [t] (2 bits per outcome, packed as an int array row). *)
let classify_into ctx point outcomes t (m, c) =
  if !(ctx.budget) < ctx.nrefs then raise Out_of_budget;
  ctx.budget := !(ctx.budget) - ctx.nrefs;
  Metrics.add m_classified ctx.nrefs;
  let row = outcomes.(t) in
  for r = 0 to ctx.nrefs - 1 do
    let o = Engine.classify ctx.engine point r in
    (match o with
    | Engine.Hit -> ()
    | Engine.Replacement_miss -> m.(r) <- m.(r) + 1
    | Engine.Compulsory_miss ->
        m.(r) <- m.(r) + 1;
        c.(r) <- c.(r) + 1);
    row.(r) <- (match o with Engine.Hit -> 0 | Engine.Replacement_miss -> 1 | Engine.Compulsory_miss -> 2)
  done

(* One row: the innermost entry of a box swept over [0, n) with every
   outer entry pinned.  [base] is the row's origin iteration point.
   Short rows are classified exhaustively (exact).  Long rows classify a
   prefix and a suffix window of [w] points each and extrapolate the
   middle from the prefix's trailing pattern of period [pi], provided the
   pattern is self-consistent across both windows; otherwise the row is
   classified exhaustively.  The windows cover the source reach, so at
   validated sizes the middle is in the periodic interior regime. *)
let row_counts ctx ~base ~(inner : Box.entry) ~pi ~reach =
  let n = inner.Box.count in
  let m = Array.make ctx.nrefs 0 and c = Array.make ctx.nrefs 0 in
  let point = Array.copy base in
  let set_point t =
    Array.blit base 0 point 0 (Array.length base);
    List.iter
      (fun (var, inc) -> point.(var) <- point.(var) + (inc * t))
      inner.Box.targets
  in
  let w = (2 * pi) + reach + 4 in
  if n <= (2 * w) + pi then begin
    (* Exhaustive (and exact): the whole row fits in the windows. *)
    for t = 0 to n - 1 do
      set_point t;
      classify_point ctx point (m, c)
    done;
    { rc_m = m; rc_c = c }
  end
  else begin
    let outcomes = Array.init n (fun _ -> [||]) in
    let classify_range a b =
      for t = a to b - 1 do
        if outcomes.(t) = [||] then begin
          outcomes.(t) <- Array.make ctx.nrefs 0;
          set_point t;
          classify_into ctx point outcomes t (m, c)
        end
      done
    in
    classify_range 0 w;
    classify_range (n - w) n;
    (* Pattern base: the last [pi] outcomes of the prefix window. *)
    let pat_base = w - pi in
    let pat t = outcomes.(pat_base + Intmath.pos_mod (t - pat_base) pi) in
    let consistent =
      (* Prefix must already be periodic over its last 2*pi, and the
         suffix window's leading 2*pi must continue the same pattern. *)
      let ok = ref true in
      for t = w - (2 * pi) to w - 1 do
        if outcomes.(t) <> pat t then ok := false
      done;
      for t = n - w to min (n - 1) (n - w + (2 * pi) - 1) do
        if outcomes.(t) <> pat t then ok := false
      done;
      !ok
    in
    if consistent then begin
      Metrics.incr m_extrapolated;
      (* Middle [w, n - w): per pattern slot, closed-form occurrence
         count times the slot's outcome. *)
      for s = 0 to pi - 1 do
        (* Occurrences of slot [s] (offset from pat_base mod pi) among
           t in [w, n - w). *)
        let first =
          let d = Intmath.pos_mod (pat_base + s - w) pi in
          w + d
        in
        if first < n - w then begin
          let occ = ((n - w - 1 - first) / pi) + 1 in
          let row = outcomes.(pat_base + s) in
          for r = 0 to ctx.nrefs - 1 do
            match row.(r) with
            | 0 -> ()
            | 1 -> m.(r) <- m.(r) + occ
            | _ ->
                m.(r) <- m.(r) + occ;
                c.(r) <- c.(r) + occ
          done
        end
      done;
      { rc_m = m; rc_c = c }
    end
    else begin
      (* The row is not in the periodic regime: classify what is left. *)
      classify_range w (n - w);
      { rc_m = m; rc_c = c }
    end
  end

(* Row signature for the cross-row memo: two rows whose references start
   at the same addresses modulo the cache modulus and whose outer
   counters sit at the same (period-capped) distances from their entry
   bounds classify identically — path generator counts beyond an entry's
   period only grow residue images that are already saturated.  Distances
   below the cap are kept exact, so small spaces never share falsely. *)
let row_signature ctx ~base ~outer_ts ~outer_caps =
  let sig_ = ref [] in
  for r = ctx.nrefs - 1 downto 0 do
    sig_ := Intmath.pos_mod (Affine.eval ctx.forms.(r) base) ctx.modulus :: !sig_
  done;
  List.iteri
    (fun i (t, n) ->
      let cap = outer_caps.(i) in
      sig_ := min t cap :: min (n - 1 - t) cap :: !sig_)
    outer_ts;
  !sig_

let estimate ?(budget = 2_000_000) engine =
  let nest = Engine.nest engine in
  let cache = Engine.cache engine in
  if Nest.has_affine nest then Error `Affine
  else begin
    let nrefs = Array.length nest.Nest.refs in
    let forms = Array.map (Nest.address_form nest) nest.Nest.refs in
    let modulus =
      cache.Tiling_cache.Config.sets * cache.Tiling_cache.Config.line
    in
    let reuse = Engine.reuse_vectors engine in
    let ctx =
      {
        engine;
        nrefs;
        forms;
        modulus;
        budget = ref budget;
      }
    in
    let boxes = Path.full_space nest in
    let total_points =
      List.fold_left (fun acc b -> acc + Box.points b) 0 boxes
    in
    (* Visiting a row costs real work (a signature and a memo probe) even
       when its classification is shared, so a space whose row count alone
       rivals the budget can never come in under it — refuse upfront
       instead of grinding to the same answer. *)
    let total_rows =
      List.fold_left
        (fun acc (b : Box.t) ->
          match List.rev b.Box.entries with
          | [] -> acc + 1
          | inner :: _ -> acc + (Box.points b / max 1 inner.Box.count))
        0 boxes
    in
    if total_rows > budget / 4 then Error `Budget
    else begin
    let m = Array.make nrefs 0 and c = Array.make nrefs 0 in
    let fallbacks_before = Engine.fallback_count engine in
    match
      List.iter
        (fun (box : Box.t) ->
          match List.rev box.Box.entries with
          | [] ->
              (* Degenerate box: a single iteration point. *)
              Metrics.incr m_rows;
              classify_point ctx box.Box.origin (m, c)
          | inner :: outers_rev ->
              let outers = Array.of_list (List.rev outers_rev) in
              let pi = entry_period forms modulus inner in
              let reach =
                List.fold_left
                  (fun acc (e : Box.entry) -> max acc (entry_reach reuse e))
                  1
                  (inner :: Array.to_list outers)
              in
              let outer_caps =
                Array.map
                  (fun e -> entry_period forms modulus e + reach + 4)
                  outers
              in
              let memo : (int list, row_counts) Hashtbl.t =
                Hashtbl.create 64
              in
              let base = Array.copy box.Box.origin in
              let ts = Array.make (Array.length outers) 0 in
              (* A variable may be moved by several entries (a tile-control
                 counter and the element counter both shift the element
                 variable), so the row base is origin plus the sum of every
                 outer entry's contribution — never a per-entry reset. *)
              let set_base () =
                Array.blit box.Box.origin 0 base 0 (Array.length base);
                Array.iteri
                  (fun j (e : Box.entry) ->
                    List.iter
                      (fun (var, inc) ->
                        base.(var) <- base.(var) + (inc * ts.(j)))
                      e.Box.targets)
                  outers
              in
              let rec rows i =
                if i = Array.length outers then begin
                  Metrics.incr m_rows;
                  set_base ();
                  let outer_ts =
                    List.init (Array.length outers) (fun j ->
                        (ts.(j), outers.(j).Box.count))
                  in
                  let key = row_signature ctx ~base ~outer_ts ~outer_caps in
                  let rc =
                    match Hashtbl.find_opt memo key with
                    | Some rc ->
                        Metrics.incr m_row_memo_hit;
                        rc
                    | None ->
                        let rc = row_counts ctx ~base ~inner ~pi ~reach in
                        Hashtbl.replace memo key rc;
                        rc
                  in
                  add_row_counts ~into:(m, c) rc
                end
                else
                  for t = 0 to outers.(i).Box.count - 1 do
                    ts.(i) <- t;
                    rows (i + 1)
                  done
              in
              rows 0)
        boxes
    with
    | () ->
        let per_ref =
          Array.init nrefs (fun r ->
              {
                Estimator.r_accesses = total_points;
                r_misses = m.(r);
                r_compulsory = c.(r);
              })
        in
        Ok
          (Estimator.census_report ~points:total_points ~per_ref
             ~fallbacks:(Engine.fallback_count engine - fallbacks_before))
    | exception Out_of_budget -> Error `Budget
    end
  end
