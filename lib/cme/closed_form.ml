open Tiling_ir
open Tiling_util

module Metrics = Tiling_obs.Metrics

let m_rows = Metrics.counter "symbolic.rows"
let m_row_memo_hit = Metrics.counter "symbolic.rows.memo.hit"
let m_extrapolated = Metrics.counter "symbolic.rows.extrapolated"
let m_classified = Metrics.counter "symbolic.points.classified"
let m_parallel = Metrics.counter "symbolic.rows.parallel"
let m_probed = Metrics.counter "symbolic.rows.probed"
let m_ref_exhaustive = Metrics.counter "symbolic.rows.ref_exhaustive"

type reason = [ `Affine | `Budget ]
type mode = Census | Bounded

let pp_reason ppf = function
  | `Affine -> Fmt.string ppf "affine-coupled loop bounds"
  | `Budget -> Fmt.string ppf "classification budget exhausted"

exception Out_of_budget

(* Tuning constants.  [census_period_cap] bounds the sound per-row period
   the Census mode will extrapolate from: entries whose residue period
   exceeds it are classified exhaustively (windows wide enough to prove
   the period would rival the rows themselves).  The [bounded_*] constants
   shape the search backend's probe mode: a handful of stratified rows per
   box, each classified over a short prefix and extrapolated from its
   trailing pattern. *)
let census_period_cap = 32
let bounded_row_points = 8
let bounded_period_cap = 4
let bounded_exact_points = 512
let bounded_exact_rows = 512
let parallel_min_rows = 128

(* Packed per-row outcome counts: for each reference, misses and
   compulsory misses summed over the row's points. *)
type row_counts = { rc_m : int array; rc_c : int array }

let add_row_counts ~into:(m, c) rc =
  Array.iteri (fun r x -> m.(r) <- m.(r) + x) rc.rc_m;
  Array.iteri (fun r x -> c.(r) <- c.(r) + x) rc.rc_c

let add_row_counts_scaled ~into:(m, c) rc occ =
  Array.iteri (fun r x -> m.(r) <- m.(r) + (x * occ)) rc.rc_m;
  Array.iteri (fun r x -> c.(r) <- c.(r) + (x * occ)) rc.rc_c

(* The address step of reference [r] along one box entry: moving the
   entry's counter by 1 moves every target variable by its increment. *)
let entry_step form (e : Box.entry) =
  List.fold_left
    (fun acc (var, inc) -> acc + (Affine.coeff form var * inc))
    0 e.Box.targets

(* Residue period of a box entry: the smallest counter shift that moves
   every reference's address by a multiple of the cache modulus [M = sets
   * line].  Shifting by it leaves every set index, every line offset and
   every interference residue unchanged, so past the reuse reach the
   outcome vector of the row is provably periodic with this period.  Note
   the set-space collapse for line-aligned steps: when [s = k * line],
   [M / gcd (s, M) = sets / gcd (k, sets)] — the line-offset component
   divides out and the byte-space period already *is* the set-space
   period, at most [sets] instead of [sets * line]. *)
let entry_period forms modulus (e : Box.entry) =
  Array.fold_left
    (fun acc form ->
      let s = Intmath.pos_mod (entry_step form e) modulus in
      if s = 0 then acc else Intmath.lcm acc (modulus / Intmath.gcd s modulus))
    1 forms

(* Set-space period candidate of a single reference along an entry: its
   line offset cycles with [line / gcd (s, line)] while its set index (for
   line-aligned steps) cycles with the full byte period.  The minimum is
   the natural first guess for the reference's *observed* outcome period —
   interference from the other references can stretch it, so the bounded
   probe mode only uses it as a ladder candidate to be validated against
   classified points, never as a proof. *)
let ref_period ~modulus ~line step =
  let s = Intmath.pos_mod step modulus in
  if s = 0 then 1
  else
    let byte = modulus / Intmath.gcd s modulus in
    if s mod line = 0 then byte
    else min byte (line / Intmath.gcd s line)

(* Per-variable reach of the reuse sources: the farthest (in iterations of
   that variable) any reuse vector displaces its source.  Hoisted out of
   the per-entry fold so [entry_reach_of] touches each entry target once
   instead of re-walking every reference's vector list per target. *)
let max_deltas depth reuse =
  let d = Array.make (max 1 depth) 0 in
  Array.iter
    (fun vs ->
      List.iter
        (fun (v : Tiling_reuse.Vectors.t) ->
          Array.iteri (fun i x -> if abs x > d.(i) then d.(i) <- abs x) v.delta)
        vs)
    reuse;
  d

(* How far (in entry counters) a reuse source can sit from its destination
   along this entry: bounds the boundary zone where sources fall out of
   the iteration space and the outcome pattern is not yet periodic. *)
let entry_reach_of ~max_deltas (e : Box.entry) =
  List.fold_left
    (fun acc (var, inc) ->
      if var >= Array.length max_deltas || max_deltas.(var) = 0 then acc
      else max acc (Intmath.ceil_div max_deltas.(var) (max 1 (abs inc))))
    1 e.Box.targets

let entry_reach reuse (e : Box.entry) =
  (* Exposed for tests; [estimate] hoists [max_deltas] once per call. *)
  let depth =
    Array.fold_left
      (fun acc vs ->
        List.fold_left
          (fun acc (v : Tiling_reuse.Vectors.t) ->
            max acc (Array.length v.delta))
          acc vs)
      0 reuse
  in
  entry_reach_of ~max_deltas:(max_deltas depth reuse) e

type ctx = {
  engine : Engine.t;
  nrefs : int;
  forms : Affine.t array;
  modulus : int;
  line : int;
  budget : int Atomic.t;
      (* remaining (point, ref) classifications, shared across domains *)
}

let charge ctx =
  Metrics.incr m_classified;
  if Atomic.fetch_and_add ctx.budget (-1) < 1 then raise Out_of_budget

let code_of = function
  | Engine.Hit -> 0
  | Engine.Replacement_miss -> 1
  | Engine.Compulsory_miss -> 2

(* Classify one point (all references) into [m]/[c], charging the budget. *)
let classify_point ctx point (m, c) =
  for r = 0 to ctx.nrefs - 1 do
    charge ctx;
    match Engine.classify ctx.engine point r with
    | Engine.Hit -> ()
    | Engine.Replacement_miss -> m.(r) <- m.(r) + 1
    | Engine.Compulsory_miss ->
        m.(r) <- m.(r) + 1;
        c.(r) <- c.(r) + 1
  done

(* ------------------------------------------------------------------ *)
(* One row: the innermost entry of a box swept over [0, n) with every
   outer entry pinned, classified independently per reference.

   Census rows with a provable period [pi <= census_period_cap] classify
   a prefix and a suffix window of [w = 2*pi + reach + 4] points and, per
   reference, extrapolate the middle from the smallest period the full
   verified span supports.  Soundness: past the reach the outcome
   sequence is pi-periodic (the residue argument above), and observing
   p-periodicity over a span of length [2*pi >= pi + p] inside the
   windows pins every middle outcome to a window slot through the
   pi-translates.  The period ladder is per reference — one reference
   with a long observed period no longer forces the others (or the whole
   row) through the exhaustive path.  Entries whose period exceeds the
   cap are classified exhaustively, so the census stays exact always.

   Probe rows (the bounded backend mode) classify only a short prefix and
   extrapolate the rest of the row from the prefix's trailing pattern —
   deterministic, structurally bounded at [bounded_row_points]
   classifications per reference, and approximate by design (the ladder
   is seeded with the reference's set-space period candidate). *)
let row_counts ctx ~row_mode ~base ~(inner : Box.entry) ~pi ~reach =
  let n = inner.Box.count in
  let nrefs = ctx.nrefs in
  let m = Array.make nrefs 0 and c = Array.make nrefs 0 in
  let point = Array.copy base in
  let set_point t =
    Array.blit base 0 point 0 (Array.length base);
    List.iter
      (fun (var, inc) -> point.(var) <- point.(var) + (inc * t))
      inner.Box.targets
  in
  let codes = Array.make_matrix n nrefs (-1) in
  let get t r =
    let v = codes.(t).(r) in
    if v >= 0 then v
    else begin
      charge ctx;
      set_point t;
      let v = code_of (Engine.classify ctx.engine point r) in
      codes.(t).(r) <- v;
      v
    end
  in
  let add r v occ =
    match v with
    | 0 -> ()
    | 1 -> m.(r) <- m.(r) + occ
    | _ ->
        m.(r) <- m.(r) + occ;
        c.(r) <- c.(r) + occ
  in
  let sum_range r a b =
    for t = a to b - 1 do
      add r (get t r) 1
    done
  in
  (* Is reference [r]'s classified outcome sequence [p]-periodic over
     [a, b)?  Pattern slots are anchored at [pat_base = anchor - p], so
     checks on disjoint windows stay phase-aligned across the gap. *)
  let matches_pattern r ~anchor ~p a b =
    let pat_base = anchor - p in
    let ok = ref true in
    let t = ref a in
    while !ok && !t < b do
      if
        codes.(!t).(r)
        <> codes.(pat_base + Intmath.pos_mod (!t - pat_base) p).(r)
      then ok := false;
      incr t
    done;
    !ok
  in
  (* Closed-form occurrence extrapolation of pattern slot outcomes over
     [lo, hi), pattern anchored before [anchor]. *)
  let extrapolate r ~anchor ~p ~lo ~hi =
    let pat_base = anchor - p in
    for s = 0 to p - 1 do
      let first = lo + Intmath.pos_mod (pat_base + s - lo) p in
      if first < hi then begin
        let occ = ((hi - 1 - first) / p) + 1 in
        add r codes.(pat_base + s).(r) occ
      end
    done
  in
  (match row_mode with
  | `Census ->
      let w = (2 * pi) + reach + 4 in
      if pi > census_period_cap || n <= (2 * w) + 2 then
        (* Exhaustive (and exact): no coverable period, or the whole row
           fits in the windows anyway. *)
        for r = 0 to nrefs - 1 do
          sum_range r 0 n
        done
      else
        for r = 0 to nrefs - 1 do
          for t = 0 to w - 1 do
            ignore (get t r)
          done;
          for t = n - w to n - 1 do
            ignore (get t r)
          done;
          sum_range r 0 w;
          sum_range r (n - w) n;
          (* Per-reference period ladder: the smallest p whose pattern the
             full [2*pi] verified span exhibits (that span length is what
             makes the extrapolation sound, see above).  The suffix-head
             check is belt and braces against an underestimated reach. *)
          let rec find p =
            if p > pi then None
            else if
              matches_pattern r ~anchor:w ~p (w - (2 * pi)) w
              && matches_pattern r ~anchor:w ~p (n - w)
                   (min n (n - w + (2 * p)))
            then Some p
            else find (p + 1)
          in
          match find 1 with
          | Some p ->
              Metrics.incr m_extrapolated;
              extrapolate r ~anchor:w ~p ~lo:w ~hi:(n - w)
          | None ->
              (* Inconsistent windows (reach underestimate): classify this
                 reference (alone) exhaustively, keeping the census
                 exact. *)
              Metrics.incr m_ref_exhaustive;
              sum_range r w (n - w)
        done
  | `Probe ->
      let wp = bounded_row_points in
      for r = 0 to nrefs - 1 do
        if n <= wp then sum_range r 0 n
        else begin
          sum_range r 0 wp;
          (* Best-effort period from the prefix tail alone, seeding the
             ladder with the reference's set-space candidate; the default
             (the full trailing window) keeps the fill deterministic when
             no shorter period shows. *)
          let cand =
            ref_period ~modulus:ctx.modulus ~line:ctx.line
              (entry_step ctx.forms.(r) inner)
          in
          let try_p p =
            2 * p <= wp && matches_pattern r ~anchor:wp ~p (wp - (2 * p)) wp
          in
          let rec find p =
            if p > bounded_period_cap then
              if cand > bounded_period_cap && try_p cand then cand
              else bounded_period_cap
            else if try_p p then p
            else find (p + 1)
          in
          let p = find 1 in
          extrapolate r ~anchor:wp ~p ~lo:wp ~hi:n
        end
      done);
  { rc_m = m; rc_c = c }

(* Row signature for the cross-row memo: two rows whose references start
   at the same addresses modulo the cache modulus and whose outer
   counters sit at the same (period-capped) distances from their entry
   bounds classify identically — path generator counts beyond an entry's
   period only grow residue images that are already saturated.  Distances
   below the cap are kept exact, so small spaces never share falsely. *)
let row_signature ctx ~base ~outer_ts ~outer_caps =
  let sig_ = ref [] in
  for r = ctx.nrefs - 1 downto 0 do
    sig_ :=
      Intmath.pos_mod (Affine.eval ctx.forms.(r) base) ctx.modulus :: !sig_
  done;
  List.iteri
    (fun i (t, n) ->
      let cap = outer_caps.(i) in
      sig_ := min t cap :: min (n - 1 - t) cap :: !sig_)
    outer_ts;
  !sig_

(* ------------------------------------------------------------------ *)
(* Box walkers.                                                        *)

(* Static per-box analysis shared by the walkers. *)
type box_plan = {
  box : Box.t;
  inner : Box.entry option;
  outers : Box.entry array;
  pi : int; (* residue period of the inner entry *)
  reach : int;
  outer_caps : int array;
  rows : int; (* product of outer entry counts *)
}

let plan_box forms modulus reuse_max_deltas (box : Box.t) =
  match List.rev box.Box.entries with
  | [] ->
      {
        box;
        inner = None;
        outers = [||];
        pi = 1;
        reach = 1;
        outer_caps = [||];
        rows = 1;
      }
  | inner :: outers_rev ->
      let outers = Array.of_list (List.rev outers_rev) in
      let pi = entry_period forms modulus inner in
      let reach =
        Array.fold_left
          (fun acc e -> max acc (entry_reach_of ~max_deltas:reuse_max_deltas e))
          (entry_reach_of ~max_deltas:reuse_max_deltas inner)
          outers
      in
      let outer_caps =
        Array.map (fun e -> entry_period forms modulus e + reach + 4) outers
      in
      let rows =
        Array.fold_left (fun acc (e : Box.entry) -> acc * e.Box.count) 1 outers
      in
      { box; inner = Some inner; outers; pi; reach; outer_caps; rows }

(* Minimal classification cost of one row of this plan (used by the
   upfront budget guard, before any classification work). *)
let plan_row_cost plan =
  match plan.inner with
  | None -> 1
  | Some inner ->
      let n = inner.Box.count in
      if plan.pi > census_period_cap then n
      else
        let w = (2 * plan.pi) + plan.reach + 4 in
        min n ((2 * w) + 2)

(* Row base: origin plus the sum of every outer entry's contribution.  A
   variable may be moved by several entries (a tile-control counter and
   the element counter both shift the element variable), so this is never
   a per-entry reset. *)
let base_of plan ts =
  let base = Array.copy plan.box.Box.origin in
  Array.iteri
    (fun j (e : Box.entry) ->
      List.iter
        (fun (var, inc) -> base.(var) <- base.(var) + (inc * ts.(j)))
        e.Box.targets)
    plan.outers;
  base

(* Census walk of one box, outer counters of the outermost entry
   restricted to [lo, hi) (the parallel unit of work).  The memo is
   per-invocation: parallel chunks keep private shards and merge counts,
   never memo entries, so sharing is an optimisation that cannot change
   the sums. *)
let census_walk_range ctx plan ~memo ~counts ~lo ~hi =
  match plan.inner with
  | None ->
      Metrics.incr m_rows;
      classify_point ctx plan.box.Box.origin counts
  | Some inner ->
      let nout = Array.length plan.outers in
      let ts = Array.make nout 0 in
      let rec rows i =
        if i = nout then begin
          Metrics.incr m_rows;
          let base = base_of plan ts in
          let outer_ts =
            List.init nout (fun j -> (ts.(j), plan.outers.(j).Box.count))
          in
          let key =
            row_signature ctx ~base ~outer_ts ~outer_caps:plan.outer_caps
          in
          let rc =
            match Hashtbl.find_opt memo key with
            | Some rc ->
                Metrics.incr m_row_memo_hit;
                rc
            | None ->
                let rc =
                  row_counts ctx ~row_mode:`Census ~base ~inner ~pi:plan.pi
                    ~reach:plan.reach
                in
                Hashtbl.replace memo key rc;
                rc
          in
          add_row_counts ~into:counts rc
        end
        else begin
          let l = if i = 0 then lo else 0
          and h = if i = 0 then hi else plan.outers.(i).Box.count in
          for t = l to h - 1 do
            ts.(i) <- t;
            rows (i + 1)
          done
        end
      in
      rows 0

(* ------------------------------------------------------------------ *)
(* Estimation drivers.                                                 *)

let census_estimate ~budget ~domains engine plans ~nrefs ~forms ~modulus ~line
    ~total_points =
  (* Visiting a row costs real work (a signature and a memo probe) even
     when its classification is shared, so a space whose row count alone
     rivals the budget can never come in under it — refuse upfront
     instead of grinding to the same answer. *)
  let total_rows = List.fold_left (fun acc p -> acc + p.rows) 0 plans in
  if total_rows > budget / 4 then Error `Budget
  else begin
    (* Second upfront guard, still before any classification: even with
       perfect memo sharing, at least one row per distinct residue tuple
       must be classified, and each costs at least its boundary windows
       (or the whole row, when no coverable period exists).  The
       distinct-row count is estimated per entry as min (count, residue
       period); entries that move the same variables can overlap, so
       sharing-rich tiled nests may be overestimated — the guard only
       refuses when even this floor exceeds the budget, where grinding
       was hopeless anyway. *)
    let min_cost =
      List.fold_left
        (fun acc p ->
          let distinct =
            Array.fold_left
              (fun acc (e : Box.entry) ->
                acc * min e.Box.count (entry_period forms modulus e))
              1 p.outers
          in
          acc + (distinct * nrefs * plan_row_cost p))
        0 plans
    in
    if min_cost > budget then Error `Budget
    else begin
      let nest = Engine.nest engine in
      let cache = Engine.cache engine in
      let shared_budget = Atomic.make budget in
      let main_ctx =
        { engine; nrefs; forms; modulus; line; budget = shared_budget }
      in
      let m = Array.make nrefs 0 and c = Array.make nrefs 0 in
      let fallbacks_before = Engine.fallback_count engine in
      let extra_fallbacks = ref 0 in
      let walk_box plan =
        let n0 =
          if Array.length plan.outers = 0 then 1
          else plan.outers.(0).Box.count
        in
        let want_parallel =
          domains > 1 && n0 >= 2 && plan.rows >= parallel_min_rows
        in
        if not want_parallel then begin
          let memo = Hashtbl.create 64 in
          census_walk_range main_ctx plan ~memo ~counts:(m, c) ~lo:0 ~hi:n0
        end
        else begin
          (* Parallel row walks: chunk the outermost entry over the pool.
             Each chunk classifies with its own engine (engines keep
             private memo tables and are not shared across domains) and
             its own memo shard and accumulators; the shared budget is the
             only cross-domain state.  Counts are integers, so merging in
             chunk order makes the census byte-identical to the
             sequential walk whenever the budget does not trip. *)
          let nchunks = min n0 (domains * 4) in
          let chunk_m = Array.init nchunks (fun _ -> Array.make nrefs 0) in
          let chunk_c = Array.init nchunks (fun _ -> Array.make nrefs 0) in
          let chunk_fb = Array.make nchunks 0 in
          let chunk_exn : exn option array = Array.make nchunks None in
          Metrics.add m_parallel plan.rows;
          Tiling_util.Pool.run ~helpers:(domains - 1) ~nchunks (fun i ->
              try
                let lo = i * n0 / nchunks and hi = (i + 1) * n0 / nchunks in
                if lo < hi then begin
                  let eng =
                    Engine.create ~window_cap:(Engine.window_cap engine) nest
                      cache
                  in
                  let ctx =
                    {
                      engine = eng;
                      nrefs;
                      forms;
                      modulus;
                      line;
                      budget = shared_budget;
                    }
                  in
                  let memo = Hashtbl.create 64 in
                  census_walk_range ctx plan ~memo
                    ~counts:(chunk_m.(i), chunk_c.(i))
                    ~lo ~hi;
                  chunk_fb.(i) <- Engine.fallback_count eng
                end
              with e -> chunk_exn.(i) <- Some e);
          Array.iter (function Some e -> raise e | None -> ()) chunk_exn;
          for i = 0 to nchunks - 1 do
            add_row_counts ~into:(m, c)
              { rc_m = chunk_m.(i); rc_c = chunk_c.(i) };
            extra_fallbacks := !extra_fallbacks + chunk_fb.(i)
          done
        end
      in
      match List.iter walk_box plans with
      | () ->
          let per_ref =
            Array.init nrefs (fun r ->
                {
                  Estimator.r_accesses = total_points;
                  r_misses = m.(r);
                  r_compulsory = c.(r);
                })
          in
          Ok
            (Estimator.census_report ~points:total_points ~per_ref
               ~fallbacks:
                 (Engine.fallback_count engine - fallbacks_before
                 + !extra_fallbacks))
      | exception Out_of_budget -> Error `Budget
    end
  end

let bounded_estimate ~budget engine plans ~nrefs ~forms ~modulus ~line
    ~total_points =
  (* The bounded mode never refuses for cost: its work is structurally
     bounded (a handful of probe rows, each classifying a short prefix),
     so the internal budget is effectively unlimited. *)
  let ctx =
    { engine; nrefs; forms; modulus; line; budget = Atomic.make max_int }
  in
  let k_total = max 1 (min 16 (budget / 75_000)) in
  let m = Array.make nrefs 0 and c = Array.make nrefs 0 in
  let fallbacks_before = Engine.fallback_count engine in
  (* Boxes carrying a sliver of the space (partial-tile remainders) are
     not worth their own probe rows: they are handled in a second pass by
     applying the per-reference miss rates observed on the probed boxes.
     Points covered by real walks in the first pass are tracked so the
     rates have a denominator. *)
  let sliver_cutoff =
    (* Only spaces big enough that exactness was never on the table get
       the sliver shortcut; small spaces walk every box for real. *)
    if total_points > 65_536 then total_points / 16 else 0
  in
  let covered = ref 0 in
  let slivers = ref [] in
  let walk_plan plan =
    let points = Box.points plan.box in
    covered := !covered + points;
    match plan.inner with
    | None ->
        Metrics.incr m_rows;
        classify_point ctx plan.box.Box.origin (m, c)
    | Some inner ->
        if points <= bounded_exact_points && plan.rows <= bounded_exact_rows
        then begin
          (* Small boxes are censused exactly, so the backend stays
             equal to cme-exact on every test-sized kernel. *)
          let memo = Hashtbl.create 64 in
          let n0 =
            if Array.length plan.outers = 0 then 1
            else plan.outers.(0).Box.count
          in
          census_walk_range ctx plan ~memo ~counts:(m, c) ~lo:0 ~hi:n0
        end
        else begin
          (* Stratified diagonal probe rows: probe [i] pins every outer
             counter to the midpoint of its [i]-th stratum, so a few
             rows sweep the interior of every outer dimension at once.
             Each probe stands for an equal share of the box's rows; the
             remainder rows go to the earliest probes, keeping the
             weights (and the estimate) deterministic. *)
          let kb =
            max 1 (min plan.rows (k_total * points / max 1 total_points))
          in
          let nout = Array.length plan.outers in
          for i = 0 to kb - 1 do
            Metrics.incr m_rows;
            Metrics.incr m_probed;
            let ts =
              Array.init nout (fun j ->
                  let n = plan.outers.(j).Box.count in
                  ((2 * i) + 1) * n / (2 * kb))
            in
            let base = base_of plan ts in
            let rc =
              row_counts ctx ~row_mode:`Probe ~base ~inner ~pi:plan.pi
                ~reach:plan.reach
            in
            let occ =
              (plan.rows / kb) + (if i < plan.rows mod kb then 1 else 0)
            in
            add_row_counts_scaled ~into:(m, c) rc occ
          done
        end
  in
  List.iter
    (fun plan ->
      let points = Box.points plan.box in
      if points < sliver_cutoff then slivers := (plan, points) :: !slivers
      else walk_plan plan)
    plans;
  (match !slivers with
  | [] -> ()
  | slivers ->
      if !covered = 0 then
        (* Nothing big enough to probe (a space made only of slivers):
           walk them all for real. *)
        List.iter (fun (plan, _) -> walk_plan plan) slivers
      else begin
        let rep = !covered in
        let base_m = Array.copy m and base_c = Array.copy c in
        List.iter
          (fun (_, points) ->
            for r = 0 to nrefs - 1 do
              m.(r) <- m.(r) + (((base_m.(r) * points) + (rep / 2)) / rep);
              c.(r) <- c.(r) + (((base_c.(r) * points) + (rep / 2)) / rep)
            done)
          slivers
      end);
  let per_ref =
    Array.init nrefs (fun r ->
        {
          Estimator.r_accesses = total_points;
          r_misses = m.(r);
          r_compulsory = c.(r);
        })
  in
  Ok
    (Estimator.census_report ~points:total_points ~per_ref
       ~fallbacks:(Engine.fallback_count engine - fallbacks_before))

let estimate ?(budget = 2_000_000) ?(mode = Census) ?(domains = 1) engine =
  let nest = Engine.nest engine in
  let cache = Engine.cache engine in
  if Nest.has_affine nest then Error `Affine
  else begin
    let nrefs = Array.length nest.Nest.refs in
    let forms = Array.map (Nest.address_form nest) nest.Nest.refs in
    let line = cache.Tiling_cache.Config.line in
    let modulus = cache.Tiling_cache.Config.sets * line in
    let reuse = Engine.reuse_vectors engine in
    let reuse_max_deltas = max_deltas (Nest.depth nest) reuse in
    let boxes = Path.full_space nest in
    let plans = List.map (plan_box forms modulus reuse_max_deltas) boxes in
    let total_points =
      List.fold_left (fun acc b -> acc + Box.points b) 0 boxes
    in
    match mode with
    | Census ->
        census_estimate ~budget ~domains engine plans ~nrefs ~forms ~modulus
          ~line ~total_points
    | Bounded ->
        bounded_estimate ~budget engine plans ~nrefs ~forms ~modulus ~line
          ~total_points
  end
