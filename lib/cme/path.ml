open Tiling_ir

let lattice_top ~lo ~hi ~step = lo + ((hi - lo) / step * step)

(* During construction a box variant is an (origin, entries) pair; free
   tiled dimensions fork the variant list into full-tile and partial-tile
   regions, and dimensions that affine bounds depend on fork into one
   variant per value (pointwise pinning keeps the decomposition exact on
   triangular spaces). *)
type variant = { origin : int array; entries : Box.entry list }

let finish v = { Box.origin = v.origin; entries = List.rev v.entries }

let add_entry v targets count =
  if count <= 0 then None
  else if count = 1 then Some v
  else Some { v with entries = { Box.targets; count } :: v.entries }

let set_origin v var value =
  let origin = Array.copy v.origin in
  origin.(var) <- value;
  { v with origin }

let values ~lo ~hi ~step =
  let n = if hi < lo then 0 else ((hi - lo) / step) + 1 in
  List.init n (fun k -> lo + (k * step))

let find_elem (nest : Nest.t) ctrl =
  let elem = ref (-1) in
  Array.iteri
    (fun e (loop : Nest.loop) ->
      match loop.shape with
      | Nest.Tile_elem t when t.ctrl = ctrl -> elem := e
      | Nest.Tile_elem_affine t when t.ctrl = ctrl -> elem := e
      | _ -> ())
    nest.loops;
  assert (!elem >= 0);
  !elem

(* Whether a control loop and its element loop decompose with the
   rectangular full/partial-tile fork.  Affine element bounds or an element
   dimension that deeper bounds depend on force pointwise enumeration. *)
let rect_pair (nest : Nest.t) ~deps ctrl =
  let el = find_elem nest ctrl in
  match nest.loops.(el).shape with
  | Nest.Tile_elem _ -> not deps.(el)
  | _ -> false

(* Pin dimension [l] of variant [v].  All dimensions its bounds depend on
   are already pinned in [v.origin] (deps are strictly outer and processed
   first), so [Nest.bounds_at] evaluates them exactly.  A dimension deeper
   bounds depend on is forked pointwise; otherwise it becomes one box
   entry.  Empty dynamic ranges drop the variant. *)
let expand_dim (nest : Nest.t) ~deps l v =
  let lo, hi, step = Nest.bounds_at nest v.origin l in
  if hi < lo then []
  else if deps.(l) then
    List.map (fun value -> set_origin v l value) (values ~lo ~hi ~step)
  else
    Option.to_list
      (add_entry (set_origin v l lo) [ (l, step) ]
         (Tiling_util.Intmath.range_count ~lo ~hi ~step))

(* Extend every variant with the free dimension [l] covering its full
   range.  Rectangular Tile_ctrl dims are handled together with their
   element dim; a Tile_ctrl whose element window is affine (or feeds
   deeper affine bounds) is pinned pointwise on its own, and the element
   is expanded at its own level — its bounds may read dims *between* the
   control and the element (tiled LU's element [i] depends on element
   [k]), which are only pinned by then.  [fixed] tells whether a
   dimension's value is already pinned by the variant's origin. *)
let rec add_free_dims (nest : Nest.t) ~deps ~fixed l variants =
  let d = Nest.depth nest in
  if l >= d then variants
  else
    let next = add_free_dims nest ~deps ~fixed (l + 1) in
    match nest.loops.(l).shape with
    | _ when fixed.(l) -> next variants
    | Nest.Range { lo; hi; step } when not deps.(l) ->
        let count = Tiling_util.Intmath.range_count ~lo ~hi ~step in
        next
          (List.filter_map
             (fun v -> add_entry (set_origin v l lo) [ (l, step) ] count)
             variants)
    | Nest.Tile_ctrl { lo; hi; tile } when rect_pair nest ~deps l ->
        let el = find_elem nest l in
        fixed.(el) <- true;
        let span = hi - lo + 1 in
        let ntiles = Tiling_util.Intmath.ceil_div span tile in
        let rem = span - ((ntiles - 1) * tile) in
        let full_tiles = if rem = tile then ntiles else ntiles - 1 in
        let variants' =
          List.concat_map
            (fun v ->
              let full =
                if full_tiles = 0 then None
                else
                  let v = set_origin (set_origin v l lo) el lo in
                  Option.bind
                    (add_entry v [ (l, tile); (el, tile) ] full_tiles)
                    (fun v -> add_entry v [ (el, 1) ] tile)
              in
              let partial =
                if rem = tile then None
                else
                  let start = lo + ((ntiles - 1) * tile) in
                  let v = set_origin (set_origin v l start) el start in
                  add_entry v [ (el, 1) ] rem
              in
              List.filter_map Fun.id [ full; partial ])
            variants
        in
        let result = next variants' in
        fixed.(el) <- false;
        result
    | Nest.Tile_ctrl { lo; hi; tile } ->
        fixed.(l) <- true;
        let cs = values ~lo ~hi ~step:tile in
        let variants' =
          List.concat_map
            (fun v -> List.map (set_origin v l) cs)
            variants
        in
        let result = next variants' in
        fixed.(l) <- false;
        result
    | (Nest.Tile_elem { ctrl; _ } | Nest.Tile_elem_affine { ctrl; _ })
      when not fixed.(ctrl) ->
        next variants (* covered at the ctrl dim *)
    | Nest.Range _ | Nest.Range_affine _ | Nest.Tile_elem _ | Nest.Tile_elem_affine _
      ->
        next (List.concat_map (expand_dim nest ~deps l) variants)

(* Boxes with dims [< level] pinned to [prefix], dim [level] ranging over
   the lattice interval [iv_lo, iv_hi] (inclusive, on-step), dims beyond
   free.  [iv_lo] must be lattice-aligned for the dim. *)
let boxes_with_bounded_dim (nest : Nest.t) ~prefix ~level ~iv_lo ~iv_hi =
  let d = Nest.depth nest in
  if iv_hi < iv_lo then []
  else begin
    let deps = Nest.affine_deps nest in
    let fixed = Array.init d (fun l -> l < level) in
    let origin = Array.make d 0 in
    Array.blit prefix 0 origin 0 level;
    let base = { origin; entries = [] } in
    let variants =
      match nest.loops.(level).shape with
      | (Nest.Range { step; _ } | Nest.Range_affine { step; _ }) when not deps.(level)
        ->
          fixed.(level) <- true;
          let count = Tiling_util.Intmath.range_count ~lo:iv_lo ~hi:iv_hi ~step in
          Option.to_list (add_entry (set_origin base level iv_lo) [ (level, step) ] count)
      | (Nest.Tile_elem _ | Nest.Tile_elem_affine _) when not deps.(level) ->
          fixed.(level) <- true;
          let count = iv_hi - iv_lo + 1 in
          Option.to_list (add_entry (set_origin base level iv_lo) [ (level, 1) ] count)
      | Nest.Range { step; _ } | Nest.Range_affine { step; _ } ->
          fixed.(level) <- true;
          List.map
            (fun value -> set_origin base level value)
            (values ~lo:iv_lo ~hi:iv_hi ~step)
      | Nest.Tile_elem _ | Nest.Tile_elem_affine _ ->
          fixed.(level) <- true;
          List.map
            (fun value -> set_origin base level value)
            (values ~lo:iv_lo ~hi:iv_hi ~step:1)
      | Nest.Tile_ctrl { lo; hi; tile } when rect_pair nest ~deps level ->
          fixed.(level) <- true;
          (* Locate the element dim; tiles in the interval split into full
             tiles and (possibly) the loop's final partial tile. *)
          let el = find_elem nest level in
          fixed.(el) <- true;
          let span = hi - lo + 1 in
          let rem = span mod tile in
          let partial_start = if rem = 0 then max_int else lo + (span - rem) in
          let full_hi = min iv_hi (partial_start - tile) in
          let full =
            if full_hi < iv_lo then None
            else
              let count = ((full_hi - iv_lo) / tile) + 1 in
              let v = set_origin (set_origin base level iv_lo) el iv_lo in
              Option.bind
                (add_entry v [ (level, tile); (el, tile) ] count)
                (fun v -> add_entry v [ (el, 1) ] tile)
          in
          let partial =
            if partial_start < iv_lo || partial_start > iv_hi then None
            else
              let v = set_origin (set_origin base level partial_start) el partial_start in
              add_entry v [ (el, 1) ] rem
          in
          List.filter_map Fun.id [ full; partial ]
      | Nest.Tile_ctrl { tile; _ } ->
          (* Pointwise control values; the element expands at its own
             level once the dims its window reads are pinned. *)
          fixed.(level) <- true;
          List.map (set_origin base level) (values ~lo:iv_lo ~hi:iv_hi ~step:tile)
    in
    List.map finish (add_free_dims nest ~deps ~fixed 0 variants)
  end

let dim_step (nest : Nest.t) l =
  match nest.loops.(l).shape with
  | Nest.Range { step; _ } | Nest.Range_affine { step; _ } -> step
  | Nest.Tile_ctrl { tile; _ } -> tile
  | Nest.Tile_elem _ | Nest.Tile_elem_affine _ -> 1

let dim_bounds_at (nest : Nest.t) point l =
  let lo, hi, step = Nest.bounds_at nest point l in
  (lo, lattice_top ~lo ~hi ~step, step)

let between (nest : Nest.t) ~src ~dst =
  let d = Nest.depth nest in
  let cmp = Nest.lex_compare src dst in
  assert (cmp <= 0);
  if cmp = 0 then []
  else begin
    let m =
      let rec first l = if src.(l) <> dst.(l) then l else first (l + 1) in
      first 0
    in
    let acc = ref [] in
    let push bs = acc := bs :: !acc in
    (* Middle band: common prefix, dim m strictly between. *)
    let step_m = dim_step nest m in
    push
      (boxes_with_bounded_dim nest ~prefix:src ~level:m ~iv_lo:(src.(m) + step_m)
         ~iv_hi:(dst.(m) - step_m));
    (* Left slices: extend src's prefix, dim j above src.(j). *)
    for j = m + 1 to d - 1 do
      let _, top, step = dim_bounds_at nest src j in
      push
        (boxes_with_bounded_dim nest ~prefix:src ~level:j ~iv_lo:(src.(j) + step)
           ~iv_hi:top)
    done;
    (* Right slices: extend dst's prefix, dim j below dst.(j). *)
    for j = m + 1 to d - 1 do
      let lo, _, step = dim_bounds_at nest dst j in
      push
        (boxes_with_bounded_dim nest ~prefix:dst ~level:j ~iv_lo:lo
           ~iv_hi:(dst.(j) - step))
    done;
    List.concat (List.rev !acc)
  end

let full_space (nest : Nest.t) =
  let d = Nest.depth nest in
  let deps = Nest.affine_deps nest in
  let fixed = Array.make d false in
  let base = { origin = Array.make d 0; entries = [] } in
  List.map finish (add_free_dims nest ~deps ~fixed 0 [ base ])
