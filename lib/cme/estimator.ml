open Tiling_util

type ref_counts = { r_accesses : int; r_misses : int; r_compulsory : int }

type report = {
  points : int;
  accesses : int;
  misses : int;
  compulsory : int;
  per_ref : ref_counts array;
  miss_ratio : Stats.interval;
  replacement_ratio : Stats.interval;
  fallbacks : int;
}

let replacement r = r.misses - r.compulsory

let default_confidence = 0.9
let default_width = 0.1

let default_points () =
  Stats.required_sample_size ~width:default_width ~confidence:default_confidence

(* [interval ~hits ~n] turns raw counts into a confidence interval; the
   sampled drivers bind it to [Stats.proportion_interval] at the requested
   confidence, [exact] to the degenerate exact interval. *)
let report_of ~interval ~points ~accesses ~misses ~compulsory ~per_ref
    ~fallbacks =
  {
    points;
    accesses;
    misses;
    compulsory;
    per_ref;
    miss_ratio = interval ~hits:misses ~n:accesses;
    replacement_ratio = interval ~hits:(misses - compulsory) ~n:accesses;
    fallbacks;
  }

let sampled_interval ~confidence ~hits ~n =
  Stats.proportion_interval ~hits ~n ~confidence

let census_interval ~hits ~n =
  Stats.exact_interval
    ~center:(if n = 0 then 0. else float_of_int hits /. float_of_int n)

(* Per-reference accumulators: (accesses, misses, compulsory) triples. *)
type acc = { mutable a : int; mutable m : int; mutable c : int }

let make_accs engine =
  Array.init
    (Array.length (Engine.nest engine).Tiling_ir.Nest.refs)
    (fun _ -> { a = 0; m = 0; c = 0 })

(* A plain loop: the per-point closure an [Array.iteri] would allocate
   here sat directly on the hot path (once per sampled point). *)
let classify_point engine point accs =
  for r = 0 to Array.length accs - 1 do
    let acc = accs.(r) in
    acc.a <- acc.a + 1;
    match Engine.classify engine point r with
    | Engine.Hit -> ()
    | Engine.Replacement_miss -> acc.m <- acc.m + 1
    | Engine.Compulsory_miss ->
        acc.m <- acc.m + 1;
        acc.c <- acc.c + 1
  done

(* Census reports assembled from externally aggregated per-reference
   counts: the closed-form solver counts whole residue classes at once and
   never drives [classify_all], but its reports must look exactly like an
   [exact] census (degenerate intervals, accesses = points * nrefs). *)
let census_report ~points ~per_ref ~fallbacks =
  let misses = Array.fold_left (fun s c -> s + c.r_misses) 0 per_ref in
  let compulsory = Array.fold_left (fun s c -> s + c.r_compulsory) 0 per_ref in
  report_of ~interval:census_interval ~points
    ~accesses:(points * Array.length per_ref)
    ~misses ~compulsory ~per_ref ~fallbacks

let totals accs =
  let misses = Array.fold_left (fun s x -> s + x.m) 0 accs in
  let compulsory = Array.fold_left (fun s x -> s + x.c) 0 accs in
  let per_ref =
    Array.map (fun x -> { r_accesses = x.a; r_misses = x.m; r_compulsory = x.c }) accs
  in
  (misses, compulsory, per_ref)

(* Shared classification driver for [exact] and [sample_at].  [iterate]
   enumerates the points to classify; the report's [fallbacks] field is the
   number of conservative solver answers *during this call* (the engine's
   own counter is cumulative across its lifetime), measured as a delta
   around the iteration. *)
let classify_all engine ~interval iterate =
  let nest = Engine.nest engine in
  let nrefs = Array.length nest.Tiling_ir.Nest.refs in
  let accs = make_accs engine in
  let points = ref 0 in
  let fallbacks_before = Engine.fallback_count engine in
  iterate (fun point ->
      incr points;
      classify_point engine point accs);
  let misses, compulsory, per_ref = totals accs in
  report_of ~interval ~points:!points ~accesses:(!points * nrefs) ~misses
    ~compulsory ~per_ref
    ~fallbacks:(Engine.fallback_count engine - fallbacks_before)

let exact engine =
  Tiling_obs.Span.with_ "cme.estimator.exact"
    ~attrs:
      [ ("nest", Tiling_obs.Json.String (Engine.nest engine).Tiling_ir.Nest.name) ]
    (fun () ->
      (* A census has a degenerate interval: known center, confidence 1. *)
      classify_all engine ~interval:census_interval (fun visit ->
          Tiling_ir.Nest.iter_points (Engine.nest engine) visit))

let exact_by_region engine =
  Tiling_obs.Span.with_ "cme.estimator.exact_by_region"
    ~attrs:
      [ ("nest", Tiling_obs.Json.String (Engine.nest engine).Tiling_ir.Nest.name) ]
    (fun () ->
      let regions = Path.full_space (Engine.nest engine) in
      List.map
        (fun box ->
          ( box,
            classify_all engine ~interval:census_interval (fun visit ->
                Box.iter_points box visit) ))
        regions)

let sample_at ?(confidence = default_confidence) engine pts =
  Tiling_obs.Span.with_ "cme.estimator.sample_at"
    ~attrs:[ ("points", Tiling_obs.Json.Int (Array.length pts)) ]
    (fun () ->
      classify_all engine
        ~interval:(sampled_interval ~confidence)
        (fun visit -> Array.iter visit pts))

let sample ?(width = default_width) ?(confidence = default_confidence) ~seed engine =
  let n = Stats.required_sample_size ~width ~confidence in
  let rng = Prng.create ~seed in
  let nest = Engine.nest engine in
  (* One scratch buffer for every sampled point: the classification path
     never retains the point (sources are copied), so there is no need to
     materialise n fresh arrays.  The rng draws are identical to building
     the points up front, point by point in order. *)
  let scratch = Array.make (Tiling_ir.Nest.depth nest) 0 in
  Tiling_obs.Span.with_ "cme.estimator.sample"
    ~attrs:[ ("points", Tiling_obs.Json.Int n) ]
    (fun () ->
      classify_all engine
        ~interval:(sampled_interval ~confidence)
        (fun visit ->
          for _ = 1 to n do
            Tiling_ir.Nest.random_point_into nest rng scratch;
            visit scratch
          done))

let json_of_interval (i : Stats.interval) =
  Tiling_obs.Json.Obj
    [
      ("center", Tiling_obs.Json.Float i.Stats.center);
      ("half_width", Tiling_obs.Json.Float i.Stats.half_width);
      ("confidence", Tiling_obs.Json.Float i.Stats.confidence);
    ]

let to_json r =
  let open Tiling_obs.Json in
  Obj
    [
      ("points", Int r.points);
      ("accesses", Int r.accesses);
      ("misses", Int r.misses);
      ("compulsory", Int r.compulsory);
      ("replacement", Int (replacement r));
      ("miss_ratio", json_of_interval r.miss_ratio);
      ("replacement_ratio", json_of_interval r.replacement_ratio);
      ("fallbacks", Int r.fallbacks);
      ( "per_ref",
        List
          (Array.to_list
             (Array.map
                (fun c ->
                  Obj
                    [
                      ("accesses", Int c.r_accesses);
                      ("misses", Int c.r_misses);
                      ("compulsory", Int c.r_compulsory);
                    ])
                r.per_ref)) );
    ]

let pp ppf r =
  Fmt.pf ppf
    "points=%d accesses=%d miss=%.2f%%(±%.2f) repl=%.2f%%(±%.2f) compulsory=%d fallbacks=%d"
    r.points r.accesses
    (100. *. r.miss_ratio.Stats.center)
    (100. *. r.miss_ratio.Stats.half_width)
    (100. *. r.replacement_ratio.Stats.center)
    (100. *. r.replacement_ratio.Stats.half_width)
    r.compulsory r.fallbacks

let pp_per_ref nest ppf r =
  Array.iteri
    (fun i (c : ref_counts) ->
      let rf = (nest.Tiling_ir.Nest.refs).(i) in
      let pct num den =
        if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den
      in
      Fmt.pf ppf "  ref %d %-5s %-8s miss %5.1f%% repl %5.1f%% (of %d)@." i
        (match rf.Tiling_ir.Nest.access with
        | Tiling_ir.Nest.Read -> "load"
        | Tiling_ir.Nest.Write -> "store")
        rf.Tiling_ir.Nest.array.Tiling_ir.Array_decl.name
        (pct c.r_misses c.r_accesses)
        (pct (c.r_misses - c.r_compulsory) c.r_accesses)
        c.r_accesses)
    r.per_ref
