(** Miss-ratio estimation from the CME point solver.

    Two drivers: [exact] visits every iteration point (only viable for tiny
    spaces; used by tests and the optimality oracle), and [sample]
    implements the paper's Simple Random Sampling scheme — a fixed number of
    points chosen uniformly, each access classified independently, and the
    population miss ratio inferred through a binomial confidence interval
    (width 0.1 at 90 % confidence needs 164 points, section 2.3). *)

type ref_counts = { r_accesses : int; r_misses : int; r_compulsory : int }
(** Per-reference classification totals (the CME property that "each memory
    reference can be studied independently of the others", section 2.3). *)

type report = {
  points : int;        (** iteration points examined *)
  accesses : int;      (** [points * number of references] *)
  misses : int;
  compulsory : int;
  per_ref : ref_counts array;  (** indexed by [ref_id] *)
  miss_ratio : Tiling_util.Stats.interval;
  replacement_ratio : Tiling_util.Stats.interval;
  fallbacks : int;     (** conservative solver answers during this run *)
}

val replacement : report -> int
(** Replacement (capacity + conflict) misses observed. *)

val exact : Engine.t -> report
(** Classify every access of the nest. *)

val exact_by_region : Engine.t -> (Box.t * report) list
(** Like {!exact}, but one report per convex region of the iteration space
    (the path slicer's [full_space] decomposition, which pins dimensions
    that affine bounds depend on pointwise).  The regions partition the
    space, so the per-region counts sum to {!exact}'s totals; triangular
    nests expose per-region cost this way (section 2.3). *)

val sample : ?width:float -> ?confidence:float -> seed:int -> Engine.t -> report
(** Paper defaults: [width = 0.1], [confidence = 0.9] (164 points).  The
    sample size and the reported intervals both honour the requested
    [confidence]: the half-width is the [confidence]-level normal quantile
    around the sampled ratio, not a relabelled default. *)

val sample_at : ?confidence:float -> Engine.t -> int array array -> report
(** Classify exactly the given points (common-random-number evaluation: the
    genetic algorithm passes the same underlying sample to every candidate
    tiling to make objective values comparable).  Intervals are computed at
    [confidence] (default 0.9); an empty point set yields degenerate
    zero-width intervals. *)

val default_points : unit -> int
(** The paper's sample size: [required_sample_size ~width:0.1
    ~confidence:0.9] = 164. *)

val census_report :
  points:int -> per_ref:ref_counts array -> fallbacks:int -> report
(** Assemble a census-shaped report (degenerate exact intervals,
    [accesses = points * Array.length per_ref]) from per-reference counts
    aggregated elsewhere — the closed-form solver builds its reports this
    way.  Every reference must have been charged one access per point. *)

val to_json : report -> Tiling_obs.Json.t
(** Machine-readable rendering of a report: totals, both confidence
    intervals, the per-call fallback delta and per-reference counts. *)

val pp : report Fmt.t

val pp_per_ref : Tiling_ir.Nest.t -> report Fmt.t
(** One line per reference: array name, access kind, miss/replacement
    ratios. *)
