(** Closed-form aggregation of the Cache Miss Equations.

    Where {!Estimator.exact} classifies every iteration point and
    {!Estimator.sample} classifies a 164-point random sample, this solver
    aggregates whole-space replacement counts analytically.  The iteration
    space is sliced into the path slicer's convex boxes ({!Path.full_space});
    inside a box every reference's address is affine in the box's lattice
    coordinates, so along the innermost entry the per-point outcome vector is
    eventually periodic with period dividing

      [pi = lcm over refs of M / gcd(step_r, M)],   [M = sets * line]

    (shifting the counter by [pi] moves every address by a multiple of the
    cache modulus, leaving every interference residue — and hence every
    replacement-polyhedron emptiness answer — unchanged).  Each row therefore
    needs only a prefix and a suffix window of real {!Engine.classify} calls,
    wide enough to absorb boundary effects (reuse-source reach); the middle
    is extrapolated as closed-form occurrence counts of the validated
    pattern, and the extrapolation is only applied when the observed windows
    actually exhibit the period (otherwise the row is classified
    exhaustively, keeping the result a true census).  Rows whose reference
    addresses agree modulo [M] and whose outer counters sit at the same
    period-capped boundary distances share one classification through a
    per-box memo, collapsing the outer dimensions the same way.

    Set-associative caches need no special casing here: periodicity is a
    property of the address lattice, not of the eviction rule, so the same
    argument covers the engine's k-way distinct-line counting.

    The solver refuses (rather than degrades) when its premises fail:
    [`Affine] for nests with affine-coupled loop bounds (row shape varies
    pointwise, the box decomposition pins dimensions and the row lattice
    argument no longer amortises), [`Budget] when the number of real
    classifications exceeds the budget (degenerate geometries where the
    period is as long as the rows).  The [symbolic] search backend catches
    both and falls back to sampling, counting [symbolic.fallbacks]. *)

type reason = [ `Affine | `Budget ]

val pp_reason : reason Fmt.t

val estimate :
  ?budget:int -> Engine.t -> (Estimator.report, reason) result
(** Whole-space census of the nest: identical totals to {!Estimator.exact}
    wherever the periodicity validation accepts, at a cost proportional to
    boundary windows instead of the full trip count.  [budget] caps the
    number of (point, reference) classifications spent (default 2e6);
    exceeding it returns [Error `Budget].  The report's [fallbacks] field
    counts the engine's conservative answers during this call, exactly as
    the sampling estimators do. *)
