(** Closed-form aggregation of the Cache Miss Equations.

    Where {!Estimator.exact} classifies every iteration point and
    {!Estimator.sample} classifies a small random sample, this solver
    aggregates whole-space replacement counts analytically.  The iteration
    space is sliced into the path slicer's convex boxes ({!Path.full_space});
    inside a box every reference's address is affine in the box's lattice
    coordinates, so along the innermost entry the per-point outcome vector is
    eventually periodic with period dividing

      [pi = lcm over refs of M / gcd(step_r, M)],   [M = sets * line]

    (shifting the counter by [pi] moves every address by a multiple of the
    cache modulus, leaving every interference residue — and hence every
    replacement answer — unchanged).  For a line-aligned step
    [s = k * line] the per-reference factor collapses into *set space*:
    [M / gcd(s, M) = sets / gcd(k, sets)] — at most [sets], the line-offset
    component divides out.  Two estimation modes share the row machinery:

    {b Census} (the default, used by the oracle, the fuzzer and tests) is
    exact-or-refuse.  When [pi] is small enough for boundary windows of
    [2*pi] points to be affordable, each row classifies a prefix and a
    suffix window and extrapolates the middle per reference from the
    smallest period the verified [2*pi] span supports (a span of
    [pi + p] points of observed p-periodicity pins the whole pi-periodic
    middle, so the extrapolation is sound); references whose observed
    period defeats the ladder are classified exhaustively on their own,
    without dragging the other references along.  When [pi] exceeds the
    cap the row is classified exhaustively, so the census is always equal
    to {!Estimator.exact}.  Rows whose reference addresses agree modulo
    [M] and whose outer counters sit at the same period-capped boundary
    distances share one classification through a per-box memo; with
    [domains > 1] the outermost entry is additionally chunked over the
    process pool ({!Tiling_util.Pool}), each chunk classifying through its
    own engine and memo shard — counts are merged as integer sums in chunk
    order, so the parallel census is byte-identical to the sequential one.

    {b Bounded} (used by the [symbolic] search backend) trades exactness
    for a structurally bounded cost: boxes small enough are censused
    exactly (so backend costs equal [cme-exact] on test-sized kernels),
    larger boxes are represented by a fixed number of stratified probe
    rows, each classified over a short prefix and extrapolated from the
    prefix's trailing pattern (the period ladder is seeded with the
    reference's set-space candidate [line / gcd(step, line)]).  The result
    is a deterministic whole-space *estimate* on census scale; it never
    refuses for budget, only for [`Affine] nests.

    Set-associative caches need no special casing here: periodicity is a
    property of the address lattice, not of the eviction rule, so the same
    argument covers the engine's k-way distinct-line counting (the
    wrap-variable lattice of {!Symbolic.distinct_interfering_lines}).

    The solver refuses (rather than degrades) when its premises fail:
    [`Affine] for nests with affine-coupled loop bounds (row shape varies
    pointwise, the box decomposition pins dimensions and the row lattice
    argument no longer amortises), and — in Census mode only — [`Budget]
    when the classification work cannot fit the budget.  Both budget
    guards fire {e upfront}, before any classification: one on the raw row
    count, one on a lower bound of the classification cost (distinct
    residue rows times their minimal window cost), so hopeless geometries
    refuse in microseconds instead of grinding to the same answer.  The
    [symbolic] search backend catches refusals and falls back to sampling,
    counting [symbolic.fallbacks]. *)

type reason = [ `Affine | `Budget ]

val pp_reason : reason Fmt.t

type mode =
  | Census  (** exact-or-refuse whole-space census (oracle/fuzzer grade) *)
  | Bounded
      (** deterministic bounded-cost estimate on census scale (search
          backend grade); never refuses for budget *)

val entry_reach : Tiling_reuse.Vectors.t list array -> Box.entry -> int
(** How far (in counters of the given box entry) a reuse source can sit
    from its destination: bounds the boundary zone a row window must
    absorb before the periodic regime starts.  Exposed for tests pinning
    the reach values the window sizing depends on. *)

val estimate :
  ?budget:int ->
  ?mode:mode ->
  ?domains:int ->
  Engine.t ->
  (Estimator.report, reason) result
(** Whole-space census (or bounded estimate, per [mode]) of the nest.  In
    [Census] mode the totals are identical to {!Estimator.exact};
    [budget] caps the number of (point, reference) classifications spent
    (default 2e6) and exceeding it — decided upfront where possible —
    returns [Error `Budget].  In [Bounded] mode [budget] only scales the
    number of probe rows and the call always succeeds on non-affine
    nests.  [domains > 1] parallelises Census row walks over the process
    pool without changing any count.  The report's [fallbacks] field
    counts the engine's conservative answers during this call, exactly as
    the sampling estimators do. *)
