open Tiling_ir
open Tiling_polyhedra

type outcome = Hit | Compulsory_miss | Replacement_miss

(* Build the polyhedra for one segment (the image of reference [b_form]
   over [box]) against cache set [set], excluding memory line [line_a].
   Variables: one per box generator, plus the wrap variable [w] last. *)
let segment_polyhedra ~cache ~set ~line_a ~const ~gens =
  let l_bytes = cache.Tiling_cache.Config.line in
  let m_big = cache.Tiling_cache.Config.sets * l_bytes in
  let nvars = List.length gens + 1 in
  let w = nvars - 1 in
  let addr_coeffs =
    (* address = const + sum step_g * t_g *)
    let c = Array.make nvars 0 in
    List.iteri (fun g (step, _) -> c.(g) <- step) gens;
    c
  in
  let base = set * l_bytes in
  (* ranges of the generator variables *)
  let range_cons =
    List.concat
      (List.mapi
         (fun g (_, count) ->
           let unit k =
             let c = Array.make nvars 0 in
             c.(g) <- k;
             c
           in
           [ Polyhedron.ge ~coeffs:(unit 1) ~const:0;
             Polyhedron.ge ~coeffs:(unit (-1)) ~const:(count - 1) ])
         gens)
  in
  (* set membership: 0 <= addr - base - w*M <= L-1 *)
  let with_w k =
    let c = Array.copy addr_coeffs in
    c.(w) <- -m_big;
    Array.map (fun x -> k * x) c
  in
  let set_cons =
    [ Polyhedron.ge ~coeffs:(with_w 1) ~const:(const - base);
      Polyhedron.ge ~coeffs:(with_w (-1)) ~const:(base + l_bytes - 1 - const) ]
  in
  (* exclusion of line_a: addr <= line_a*L - 1  OR  addr >= (line_a+1)*L *)
  let below =
    Polyhedron.ge
      ~coeffs:(Array.map (fun x -> -x) addr_coeffs)
      ~const:((line_a * l_bytes) - 1 - const)
  in
  let above =
    Polyhedron.ge ~coeffs:addr_coeffs ~const:(const - ((line_a + 1) * l_bytes))
  in
  List.map
    (fun half ->
      Polyhedron.of_constraints ~dim:nvars (half :: (set_cons @ range_cons)))
    [ below; above ]

let replacement_polyhedra nest cache ~src ~src_ref ~dst ~dst_ref =
  let forms = Array.map (Nest.address_form nest) nest.Nest.refs in
  let nrefs = Array.length forms in
  let l_bytes = cache.Tiling_cache.Config.line in
  let sets = cache.Tiling_cache.Config.sets in
  let addr = Affine.eval forms.(dst_ref) dst in
  let line_a = Tiling_util.Intmath.floor_div addr l_bytes in
  let set = Tiling_util.Intmath.pos_mod line_a sets in
  let acc = ref [] in
  let consider ~const ~gens =
    acc := segment_polyhedra ~cache ~set ~line_a ~const ~gens @ !acc
  in
  List.iter
    (fun box ->
      for b = 0 to nrefs - 1 do
        let const, gens = Box.eval_form forms.(b) box in
        consider ~const ~gens
      done)
    (Path.between nest ~src ~dst);
  let same_point = Nest.lex_compare src dst = 0 in
  let upto = if same_point then dst_ref else nrefs in
  for b = src_ref + 1 to upto - 1 do
    consider ~const:(Affine.eval forms.(b) src) ~gens:[]
  done;
  if not same_point then
    for b = 0 to dst_ref - 1 do
      consider ~const:(Affine.eval forms.(b) dst) ~gens:[]
    done;
  !acc

let count_interference_points nest cache ~src ~src_ref ~dst ~dst_ref =
  List.fold_left
    (fun acc p -> acc + Polyhedron.count_integer_points p)
    0
    (replacement_polyhedra nest cache ~src ~src_ref ~dst ~dst_ref)

(* Associativity lattice: every integer point of a replacement polyhedron
   carries a wrap value [w], and the interfering memory line it witnesses
   is exactly [set + w * sets] — the lattice of same-set addresses stacked
   by [w].  Distinct interfering lines on the edge are therefore the
   distinct [w] values across all polyhedra (the destination's own line is
   already carved out by the below/above halves), and a k-way cache evicts
   the reused line iff at least [k] of them collide in the set.  Counting
   stops at [cap]: one collision beyond [assoc - 1] already decides the
   miss. *)
let distinct_interfering_lines ?(cap = max_int) nest cache ~src ~src_ref ~dst
    ~dst_ref =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (p : Polyhedron.t) ->
      let w = p.Polyhedron.dim - 1 in
      if Hashtbl.length seen < cap then
        List.iter
          (fun pt -> Hashtbl.replace seen pt.(w) ())
          (Polyhedron.integer_points p))
    (replacement_polyhedra nest cache ~src ~src_ref ~dst ~dst_ref);
  min cap (Hashtbl.length seen)

let classify nest cache point ref_id =
  let assoc = cache.Tiling_cache.Config.assoc in
  (* Reuse the engine's vector generation and source normalisation so any
     disagreement isolates the replacement-query machinery. *)
  let engine = Engine.create nest cache in
  let sources = Engine.reuse_sources engine point ref_id in
  if sources = [] then Compulsory_miss
  else if
    List.exists
      (fun (src, src_ref) ->
        distinct_interfering_lines ~cap:assoc nest cache ~src ~src_ref
          ~dst:point ~dst_ref:ref_id
        < assoc)
      sources
  then Hit
  else Replacement_miss
