(* Bechamel micro- and macro-benchmarks.  One Test.make per reproduced
   table/figure (scaled-down inputs so each measured run stays in the
   millisecond range), plus micro-benchmarks of the solver's moving parts. *)

open Bechamel
open Toolkit

let seed = 20020815

(* Scaled-down experiment bodies: same code paths as the full tables, with
   smaller problem sizes and a reduced GA so Bechamel can repeat them. *)

let small_ga =
  {
    Tiling_ga.Engine.default_params with
    Tiling_ga.Engine.min_generations = 4;
    max_generations = 6;
    population = 10;
  }

let small_opts =
  {
    Tiling_core.Tiler.ga = small_ga;
    seed;
    sample_points = Some 32;
    restarts = 1;
    domains = 1;
    backend = Tiling_search.Backend.default;
    on_eval = ignore;
  }

let build name n = (Tiling_kernels.Kernels.find name).Tiling_kernels.Kernels.build n

let bench_table2 =
  Test.make ~name:"table2 (scaled: T2D_200 tile search)"
    (Staged.stage (fun () ->
         ignore
           (Tiling_core.Tiler.optimize ~opts:small_opts (build "T2D" 200)
              Tiling_cache.Config.dm8k)))

let bench_fig8 =
  Test.make ~name:"fig8 (scaled: MM_100 tile search, 8KB)"
    (Staged.stage (fun () ->
         ignore
           (Tiling_core.Tiler.optimize ~opts:small_opts (build "MM" 100)
              Tiling_cache.Config.dm8k)))

let bench_fig9 =
  Test.make ~name:"fig9 (scaled: MM_100 tile search, 32KB)"
    (Staged.stage (fun () ->
         ignore
           (Tiling_core.Tiler.optimize ~opts:small_opts (build "MM" 100)
              Tiling_cache.Config.dm32k)))

let bench_table3 =
  Test.make ~name:"table3 (scaled: VPENTA2 padding search)"
    (Staged.stage (fun () ->
         let popts =
           {
             Tiling_core.Padder.ga = small_ga;
             seed;
             sample_points = Some 32;
             max_intra = 8;
             max_inter = 8;
             restarts = 1;
             domains = 1;
             backend = Tiling_search.Backend.default;
             on_eval = ignore;
           }
         in
         ignore
           (Tiling_core.Padder.optimize ~opts:popts (build "VPENTA2" 128)
              Tiling_cache.Config.dm8k)))

let bench_table4 =
  Test.make ~name:"table4 (scaled: classify one sampled kernel)"
    (Staged.stage (fun () ->
         let e = Tiling_cme.Engine.create (build "T3DIKJ" 100) Tiling_cache.Config.dm8k in
         ignore (Tiling_cme.Estimator.sample ~seed e)))

(* Micro-benchmarks of the solver substrate. *)

let bench_simulator =
  let nest = build "MM" 20 in
  Test.make ~name:"simulator: MM_20 full trace (32k accesses)"
    (Staged.stage (fun () ->
         ignore (Tiling_trace.Run.simulate nest Tiling_cache.Config.dm8k)))

let bench_classify =
  let nest = Tiling_ir.Transform.tile (build "MM" 500) [| 40; 8; 64 |] in
  let engine = Tiling_cme.Engine.create nest Tiling_cache.Config.dm8k in
  let rng = Tiling_util.Prng.create ~seed in
  let points =
    Array.init 64 (fun _ -> Tiling_ir.Nest.random_point nest rng)
  in
  let i = ref 0 in
  Test.make ~name:"CME classify: one access (tiled MM_500)"
    (Staged.stage (fun () ->
         let p = points.(!i land 63) in
         incr i;
         ignore (Tiling_cme.Engine.classify engine p (!i land 3))))

let bench_residue =
  Test.make ~name:"residue image: 3 generators mod 8192"
    (Staged.stage (fun () ->
         let open Tiling_util.Residue_set in
         let s = singleton 8192 0 in
         let s = sum_progression s ~step:8 ~count:64 in
         let s = sum_progression s ~step:4000 ~count:50 in
         ignore (sum_progression s ~step:160 ~count:12)))

let bench_path =
  let nest = Tiling_ir.Transform.tile (build "MM" 500) [| 40; 8; 64 |] in
  Test.make ~name:"path decomposition: far reuse pair"
    (Staged.stage (fun () ->
         ignore
           (Tiling_cme.Path.between nest ~src:[| 1; 1; 1; 3; 2; 10 |]
              ~dst:[| 41; 9; 65; 42; 12; 70 |])))

let bench_ga_generation =
  let encoding = Tiling_ga.Encoding.make [| 500; 500; 500 |] in
  Test.make ~name:"GA: full run on a cheap objective"
    (Staged.stage (fun () ->
         let rng = Tiling_util.Prng.create ~seed in
         ignore
           (Tiling_ga.Engine.run ~params:small_ga ~encoding
              ~objective:(fun v ->
                Float.of_int (abs (v.(0) - 40) + abs (v.(1) - 8) + abs (v.(2) - 64)))
              ~rng ())))

let bench_trace_gen =
  let nest = build "T2D" 100 in
  Test.make ~name:"trace generation: T2D_100 (20k events)"
    (Staged.stage (fun () -> Tiling_trace.Gen.iter nest (fun _ -> ())))

let all_tests =
  [
    bench_table2; bench_fig8; bench_fig9; bench_table3; bench_table4;
    bench_simulator; bench_classify; bench_residue; bench_path;
    bench_ga_generation; bench_trace_gen;
  ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Fmt.pr "%-48s %12.1f ns/run@." name est
          | _ -> Fmt.pr "%-48s (no estimate)@." name)
        results)
    all_tests
