(* serve-latency: end-to-end request latency against a live daemon.

   Boots the daemon in-process on a throwaway Unix socket with a fresh
   result store, then times [tile] requests for MM through the real wire
   path (client -> NDJSON -> scheduler -> search -> response) in two
   phases: store-cold (every request a distinct seed, so every candidate
   evaluation reaches the backend) and store-warm (the same requests
   again, answered out of the persistent store).  p50/p95 per phase land
   in BENCH_results.json under "serve_latency". *)

module Json = Tiling_obs.Json
module Server = Tiling_server.Server
module Client = Tiling_server.Client
module Netio = Tiling_util.Netio

type row = {
  s_kernel : string;
  s_n : int;
  s_phase : string; (* "cold" | "warm" *)
  s_requests : int;
  s_p50_ms : float;
  s_p95_ms : float;
  s_wall_s : float;
}

let rows : row list ref = ref []

let json_of_row r =
  Json.Obj
    [
      ("kernel", Json.String r.s_kernel);
      ("n", Json.Int r.s_n);
      ("phase", Json.String r.s_phase);
      ("requests", Json.Int r.s_requests);
      ("p50_ms", Json.Float r.s_p50_ms);
      ("p95_ms", Json.Float r.s_p95_ms);
      ("wall_s", Json.Float r.s_wall_s);
    ]

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (n * q / 100))

let temp_path suffix =
  let f = Filename.temp_file "tiling_bench_serve" suffix in
  Sys.remove f;
  f

let run () =
  Fmt.pr "@.== serve-latency: daemon round-trip, store-cold vs store-warm ==@.";
  let quick = Experiments.bench_quick () in
  let kernel = "MM" in
  let n = if quick then 12 else 32 in
  let requests = if quick then 3 else 8 in
  let sock = temp_path ".sock" and store = temp_path ".store" in
  let cfg =
    {
      Server.default_config with
      addr = Netio.Unix_sock sock;
      store_path = Some store;
      workers = 2;
    }
  in
  let server = Thread.create (fun () -> ignore (Server.run cfg)) () in
  let rec await tries =
    if Sys.file_exists sock then ()
    else if tries = 0 then failwith "daemon never bound its socket"
    else (
      Thread.delay 0.05;
      await (tries - 1))
  in
  await 100;
  let client =
    match Client.connect (Netio.Unix_sock sock) with
    | Ok c -> c
    | Error m -> failwith m
  in
  let one seed =
    let params =
      [
        ("kernel", Json.String kernel);
        ("n", Json.Int n);
        ("seed", Json.Int seed);
      ]
    in
    let t0 = Unix.gettimeofday () in
    (match Client.call client ~meth:"tile" ~params with
    | Ok envelope -> (
        match Client.result_of_response envelope with
        | Ok _ -> ()
        | Error e -> failwith e.Tiling_server.Protocol.message)
    | Error m -> failwith m);
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  let phase name =
    let t0 = Unix.gettimeofday () in
    let lats = Array.init requests (fun i -> one (100 + i)) in
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lats;
    let p50 = percentile lats 50 and p95 = percentile lats 95 in
    Fmt.pr "%-4s n=%-3d %-5s %2d requests  p50 %8.1f ms  p95 %8.1f ms@." kernel
      n name requests p50 p95;
    rows :=
      {
        s_kernel = kernel;
        s_n = n;
        s_phase = name;
        s_requests = requests;
        s_p50_ms = p50;
        s_p95_ms = p95;
        s_wall_s = wall;
      }
      :: !rows
  in
  phase "cold";
  phase "warm";
  (match Client.call client ~meth:"shutdown" ~params:[] with
  | Ok _ -> ()
  | Error m -> Fmt.epr "shutdown: %s@." m);
  Client.close client;
  Thread.join server;
  if Sys.file_exists store then Sys.remove store;
  if Sys.file_exists sock then Sys.remove sock

(* serve-telemetry: what does the PR-6 telemetry stack cost?

   Same in-process daemon and the same warm MM requests (store seeded by a
   first pass), measured twice: with the metrics/events registries disabled
   and no trace requested, then with both registries live and every request
   carrying ["trace": true] — per-request span trees, progress
   subscription plumbing and counters all engaged.  The two rows land in
   "serve_latency" (phases "telemetry-off" / "telemetry-on"); the target
   is a p50 regression under a few percent. *)
let run_telemetry () =
  Fmt.pr "@.== serve-telemetry: warm request latency, telemetry off vs on ==@.";
  let quick = Experiments.bench_quick () in
  let kernel = "MM" in
  let n = if quick then 12 else 32 in
  let requests = if quick then 8 else 40 in
  let sock = temp_path ".sock" and store = temp_path ".store" in
  let cfg =
    {
      Server.default_config with
      addr = Netio.Unix_sock sock;
      store_path = Some store;
      workers = 2;
    }
  in
  let server = Thread.create (fun () -> ignore (Server.run cfg)) () in
  let rec await tries =
    if Sys.file_exists sock then ()
    else if tries = 0 then failwith "daemon never bound its socket"
    else (
      Thread.delay 0.05;
      await (tries - 1))
  in
  await 100;
  let client =
    match Client.connect (Netio.Unix_sock sock) with
    | Ok c -> c
    | Error m -> failwith m
  in
  let one ~trace seed =
    let params =
      [
        ("kernel", Json.String kernel);
        ("n", Json.Int n);
        ("seed", Json.Int seed);
      ]
      @ if trace then [ ("trace", Json.Bool true) ] else []
    in
    let t0 = Unix.gettimeofday () in
    (match Client.call client ~meth:"tile" ~params with
    | Ok envelope -> (
        match Client.result_of_response envelope with
        | Ok _ -> ()
        | Error e -> failwith e.Tiling_server.Protocol.message)
    | Error m -> failwith m);
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  (* Seed the store once so both measured phases run warm. *)
  for i = 1 to requests do
    ignore (one ~trace:false (100 + i))
  done;
  let phase name ~trace =
    let t0 = Unix.gettimeofday () in
    let lats = Array.init requests (fun i -> one ~trace (100 + 1 + i)) in
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lats;
    let p50 = percentile lats 50 and p95 = percentile lats 95 in
    Fmt.pr "%-4s n=%-3d %-13s %3d requests  p50 %7.2f ms  p95 %7.2f ms@."
      kernel n name requests p50 p95;
    rows :=
      {
        s_kernel = kernel;
        s_n = n;
        s_phase = name;
        s_requests = requests;
        s_p50_ms = p50;
        s_p95_ms = p95;
        s_wall_s = wall;
      }
      :: !rows;
    p50
  in
  Tiling_obs.Metrics.set_enabled false;
  Tiling_obs.Events.set_enabled false;
  let off = phase "telemetry-off" ~trace:false in
  Tiling_obs.Metrics.set_enabled true;
  Tiling_obs.Events.set_enabled true;
  let on = phase "telemetry-on" ~trace:false in
  let traced = phase "telemetry-trace" ~trace:true in
  Tiling_obs.Metrics.set_enabled false;
  Tiling_obs.Events.set_enabled false;
  if off > 0. then begin
    (* The always-on cost (what `serve` pays unconditionally) vs the
       per-request cost of asking for a full span tree. *)
    Fmt.pr "metrics+events p50 overhead: %+.1f%% (target < 3%%)@."
      (100. *. (on -. off) /. off);
    Fmt.pr "per-request --trace p50 overhead: %+.1f%%@."
      (100. *. (traced -. off) /. off)
  end;
  (match Client.call client ~meth:"shutdown" ~params:[] with
  | Ok _ -> ()
  | Error m -> Fmt.epr "shutdown: %s@." m);
  Client.close client;
  Thread.join server;
  if Sys.file_exists store then Sys.remove store;
  if Sys.file_exists sock then Sys.remove sock
