(* serve-latency: end-to-end request latency against a live daemon.

   Boots the daemon in-process on a throwaway Unix socket with a fresh
   result store, then times [tile] requests for MM through the real wire
   path (client -> NDJSON -> scheduler -> search -> response) in two
   phases: store-cold (every request a distinct seed, so every candidate
   evaluation reaches the backend) and store-warm (the same requests
   again, answered out of the persistent store).  p50/p95 per phase land
   in BENCH_results.json under "serve_latency". *)

module Json = Tiling_obs.Json
module Server = Tiling_server.Server
module Client = Tiling_server.Client
module Netio = Tiling_util.Netio

type row = {
  s_kernel : string;
  s_n : int;
  s_phase : string; (* "cold" | "warm" *)
  s_requests : int;
  s_p50_ms : float;
  s_p95_ms : float;
  s_wall_s : float;
}

let rows : row list ref = ref []

let json_of_row r =
  Json.Obj
    [
      ("kernel", Json.String r.s_kernel);
      ("n", Json.Int r.s_n);
      ("phase", Json.String r.s_phase);
      ("requests", Json.Int r.s_requests);
      ("p50_ms", Json.Float r.s_p50_ms);
      ("p95_ms", Json.Float r.s_p95_ms);
      ("wall_s", Json.Float r.s_wall_s);
    ]

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (n * q / 100))

let temp_path suffix =
  let f = Filename.temp_file "tiling_bench_serve" suffix in
  Sys.remove f;
  f

let run () =
  Fmt.pr "@.== serve-latency: daemon round-trip, store-cold vs store-warm ==@.";
  let quick = Experiments.bench_quick () in
  let kernel = "MM" in
  let n = if quick then 12 else 32 in
  let requests = if quick then 3 else 8 in
  let sock = temp_path ".sock" and store = temp_path ".store" in
  let cfg =
    {
      Server.default_config with
      addr = Netio.Unix_sock sock;
      store_path = Some store;
      workers = 2;
    }
  in
  let server = Thread.create (fun () -> ignore (Server.run cfg)) () in
  let rec await tries =
    if Sys.file_exists sock then ()
    else if tries = 0 then failwith "daemon never bound its socket"
    else (
      Thread.delay 0.05;
      await (tries - 1))
  in
  await 100;
  let client =
    match Client.connect (Netio.Unix_sock sock) with
    | Ok c -> c
    | Error m -> failwith m
  in
  let one seed =
    let params =
      [
        ("kernel", Json.String kernel);
        ("n", Json.Int n);
        ("seed", Json.Int seed);
      ]
    in
    let t0 = Unix.gettimeofday () in
    (match Client.call client ~meth:"tile" ~params with
    | Ok envelope -> (
        match Client.result_of_response envelope with
        | Ok _ -> ()
        | Error e -> failwith e.Tiling_server.Protocol.message)
    | Error m -> failwith m);
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  let phase name =
    let t0 = Unix.gettimeofday () in
    let lats = Array.init requests (fun i -> one (100 + i)) in
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lats;
    let p50 = percentile lats 50 and p95 = percentile lats 95 in
    Fmt.pr "%-4s n=%-3d %-5s %2d requests  p50 %8.1f ms  p95 %8.1f ms@." kernel
      n name requests p50 p95;
    rows :=
      {
        s_kernel = kernel;
        s_n = n;
        s_phase = name;
        s_requests = requests;
        s_p50_ms = p50;
        s_p95_ms = p95;
        s_wall_s = wall;
      }
      :: !rows
  in
  phase "cold";
  phase "warm";
  (match Client.call client ~meth:"shutdown" ~params:[] with
  | Ok _ -> ()
  | Error m -> Fmt.epr "shutdown: %s@." m);
  Client.close client;
  Thread.join server;
  if Sys.file_exists store then Sys.remove store;
  if Sys.file_exists sock then Sys.remove sock
