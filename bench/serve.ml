(* serve-latency: end-to-end request latency against a live daemon.

   Boots the daemon in-process on a throwaway Unix socket with a fresh
   result store, then times [tile] requests for MM through the real wire
   path (client -> NDJSON -> scheduler -> search -> response) in two
   phases: store-cold (every request a distinct seed, so every candidate
   evaluation reaches the backend) and store-warm (the same requests
   again, answered out of the persistent store).  p50/p95 per phase land
   in BENCH_results.json under "serve_latency". *)

module Json = Tiling_obs.Json
module Server = Tiling_server.Server
module Client = Tiling_server.Client
module Netio = Tiling_util.Netio

type row = {
  s_kernel : string;
  s_n : int;
  s_phase : string; (* "cold" | "warm" *)
  s_requests : int;
  s_p50_ms : float;
  s_p95_ms : float;
  s_wall_s : float;
}

let rows : row list ref = ref []

let json_of_row r =
  Json.Obj
    [
      ("kernel", Json.String r.s_kernel);
      ("n", Json.Int r.s_n);
      ("phase", Json.String r.s_phase);
      ("requests", Json.Int r.s_requests);
      ("p50_ms", Json.Float r.s_p50_ms);
      ("p95_ms", Json.Float r.s_p95_ms);
      ("wall_s", Json.Float r.s_wall_s);
    ]

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (n * q / 100))

let temp_path suffix =
  let f = Filename.temp_file "tiling_bench_serve" suffix in
  Sys.remove f;
  f

let run () =
  Fmt.pr "@.== serve-latency: daemon round-trip, store-cold vs store-warm ==@.";
  let quick = Experiments.bench_quick () in
  let kernel = "MM" in
  let n = if quick then 12 else 32 in
  let requests = if quick then 3 else 8 in
  let sock = temp_path ".sock" and store = temp_path ".store" in
  let cfg =
    {
      Server.default_config with
      addr = Netio.Unix_sock sock;
      store_path = Some store;
      workers = 2;
    }
  in
  let server = Thread.create (fun () -> ignore (Server.run cfg)) () in
  let rec await tries =
    if Sys.file_exists sock then ()
    else if tries = 0 then failwith "daemon never bound its socket"
    else (
      Thread.delay 0.05;
      await (tries - 1))
  in
  await 100;
  let client =
    match Client.connect (Netio.Unix_sock sock) with
    | Ok c -> c
    | Error m -> failwith m
  in
  let one seed =
    let params =
      [
        ("kernel", Json.String kernel);
        ("n", Json.Int n);
        ("seed", Json.Int seed);
      ]
    in
    let t0 = Unix.gettimeofday () in
    (match Client.call client ~meth:"tile" ~params with
    | Ok envelope -> (
        match Client.result_of_response envelope with
        | Ok _ -> ()
        | Error e -> failwith e.Tiling_server.Protocol.message)
    | Error m -> failwith m);
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  let phase name =
    let t0 = Unix.gettimeofday () in
    let lats = Array.init requests (fun i -> one (100 + i)) in
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lats;
    let p50 = percentile lats 50 and p95 = percentile lats 95 in
    Fmt.pr "%-4s n=%-3d %-5s %2d requests  p50 %8.1f ms  p95 %8.1f ms@." kernel
      n name requests p50 p95;
    rows :=
      {
        s_kernel = kernel;
        s_n = n;
        s_phase = name;
        s_requests = requests;
        s_p50_ms = p50;
        s_p95_ms = p95;
        s_wall_s = wall;
      }
      :: !rows
  in
  phase "cold";
  phase "warm";
  (match Client.call client ~meth:"shutdown" ~params:[] with
  | Ok _ -> ()
  | Error m -> Fmt.epr "shutdown: %s@." m);
  Client.close client;
  Thread.join server;
  if Sys.file_exists store then Sys.remove store;
  if Sys.file_exists sock then Sys.remove sock

(* serve-telemetry: what does the PR-6 telemetry stack cost?

   Same in-process daemon and the same warm MM requests (store seeded by a
   first pass), measured twice: with the metrics/events registries disabled
   and no trace requested, then with both registries live and every request
   carrying ["trace": true] — per-request span trees, progress
   subscription plumbing and counters all engaged.  The two rows land in
   "serve_latency" (phases "telemetry-off" / "telemetry-on"); the target
   is a p50 regression under a few percent. *)
let run_telemetry () =
  Fmt.pr "@.== serve-telemetry: warm request latency, telemetry off vs on ==@.";
  let quick = Experiments.bench_quick () in
  let kernel = "MM" in
  let n = if quick then 12 else 32 in
  let requests = if quick then 8 else 40 in
  let sock = temp_path ".sock" and store = temp_path ".store" in
  let cfg =
    {
      Server.default_config with
      addr = Netio.Unix_sock sock;
      store_path = Some store;
      workers = 2;
    }
  in
  let server = Thread.create (fun () -> ignore (Server.run cfg)) () in
  let rec await tries =
    if Sys.file_exists sock then ()
    else if tries = 0 then failwith "daemon never bound its socket"
    else (
      Thread.delay 0.05;
      await (tries - 1))
  in
  await 100;
  let client =
    match Client.connect (Netio.Unix_sock sock) with
    | Ok c -> c
    | Error m -> failwith m
  in
  let one ~trace seed =
    let params =
      [
        ("kernel", Json.String kernel);
        ("n", Json.Int n);
        ("seed", Json.Int seed);
      ]
      @ if trace then [ ("trace", Json.Bool true) ] else []
    in
    let t0 = Unix.gettimeofday () in
    (match Client.call client ~meth:"tile" ~params with
    | Ok envelope -> (
        match Client.result_of_response envelope with
        | Ok _ -> ()
        | Error e -> failwith e.Tiling_server.Protocol.message)
    | Error m -> failwith m);
    (Unix.gettimeofday () -. t0) *. 1e3
  in
  (* Seed the store once so both measured phases run warm. *)
  for i = 1 to requests do
    ignore (one ~trace:false (100 + i))
  done;
  let phase name ~trace =
    let t0 = Unix.gettimeofday () in
    let lats = Array.init requests (fun i -> one ~trace (100 + 1 + i)) in
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lats;
    let p50 = percentile lats 50 and p95 = percentile lats 95 in
    Fmt.pr "%-4s n=%-3d %-13s %3d requests  p50 %7.2f ms  p95 %7.2f ms@."
      kernel n name requests p50 p95;
    rows :=
      {
        s_kernel = kernel;
        s_n = n;
        s_phase = name;
        s_requests = requests;
        s_p50_ms = p50;
        s_p95_ms = p95;
        s_wall_s = wall;
      }
      :: !rows;
    p50
  in
  Tiling_obs.Metrics.set_enabled false;
  Tiling_obs.Events.set_enabled false;
  let off = phase "telemetry-off" ~trace:false in
  Tiling_obs.Metrics.set_enabled true;
  Tiling_obs.Events.set_enabled true;
  let on = phase "telemetry-on" ~trace:false in
  let traced = phase "telemetry-trace" ~trace:true in
  Tiling_obs.Metrics.set_enabled false;
  Tiling_obs.Events.set_enabled false;
  if off > 0. then begin
    (* The always-on cost (what `serve` pays unconditionally) vs the
       per-request cost of asking for a full span tree. *)
    Fmt.pr "metrics+events p50 overhead: %+.1f%% (target < 3%%)@."
      (100. *. (on -. off) /. off);
    Fmt.pr "per-request --trace p50 overhead: %+.1f%%@."
      (100. *. (traced -. off) /. off)
  end;
  (match Client.call client ~meth:"shutdown" ~params:[] with
  | Ok _ -> ()
  | Error m -> Fmt.epr "shutdown: %s@." m);
  Client.close client;
  Thread.join server;
  if Sys.file_exists store then Sys.remove store;
  if Sys.file_exists sock then Sys.remove sock

(* serve-fanout: the PR-10 fleet under concurrent clients.

   Three topologies — one daemon, a router over two workers and (full
   mode) a router over four — each take the same load: N client
   connections issuing tile requests concurrently.  Phases per topology:
   store-cold (distinct seeds), store-warm (the same seeds again,
   answered out of the shared store), and coalesce (every client sends
   the {e same} request at once, so the fleet must evaluate it exactly
   once).  In full mode the router topologies add a failover phase that
   SIGKILLs one worker mid-stream; every request must still answer.
   Rows land in BENCH_results.json under "serve_fanout"; the headline
   check is router+2 warm p50 within 2x of the single daemon's. *)

module Router = Tiling_fleet.Router

type fan_row = {
  f_topology : string; (* "single" | "router+2" | "router+4" *)
  f_phase : string; (* "cold" | "warm" | "coalesce" | "failover" *)
  f_clients : int;
  f_requests : int; (* total across all clients *)
  f_p50_ms : float;
  f_p95_ms : float;
  f_coalesce_hits : int; (* fleet-wide shared answers during the phase *)
  f_wall_s : float;
}

let fanout_rows : fan_row list ref = ref []

let json_of_fan_row r =
  Json.Obj
    [
      ("topology", Json.String r.f_topology);
      ("phase", Json.String r.f_phase);
      ("clients", Json.Int r.f_clients);
      ("requests", Json.Int r.f_requests);
      ("p50_ms", Json.Float r.f_p50_ms);
      ("p95_ms", Json.Float r.f_p95_ms);
      ("coalesce_hits", Json.Int r.f_coalesce_hits);
      ("wall_s", Json.Float r.f_wall_s);
    ]

let tiler_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/tiler.exe"

let spawn_worker ~sock ~store =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close null)
    (fun () ->
      Unix.create_process tiler_exe
        [|
          tiler_exe; "serve";
          "--socket"; "unix:" ^ sock;
          "--store"; store;
          "--workers"; "2";
          "--queue"; "64";
        |]
        Unix.stdin null null)

let connect sock =
  match Client.connect (Netio.Unix_sock sock) with
  | Ok c -> c
  | Error m -> failwith m

let await_socket sock =
  let rec await tries =
    if Sys.file_exists sock then ()
    else if tries = 0 then failwith "daemon never bound its socket"
    else (
      Thread.delay 0.05;
      await (tries - 1))
  in
  await 200

(* Run [f front pids] with the topology up: [workers = 0] is the plain
   in-process daemon, otherwise [workers] tiler subprocesses behind an
   in-process router.  [f] gets the front socket plus the worker pids
   (for the failover phase); teardown drains the whole tree. *)
let with_topology ~workers f =
  let store = temp_path ".store" in
  let rm_store () =
    if Sys.file_exists store then Sys.remove store;
    if Sys.file_exists (store ^ ".lock") then Sys.remove (store ^ ".lock")
  in
  if workers = 0 then begin
    let sock = temp_path ".sock" in
    let cfg =
      {
        Server.default_config with
        addr = Netio.Unix_sock sock;
        store_path = Some store;
        workers = 2;
        capacity = 256;
      }
    in
    let server = Thread.create (fun () -> ignore (Server.run cfg)) () in
    await_socket sock;
    Fun.protect
      ~finally:(fun () ->
        Thread.join server;
        rm_store ();
        if Sys.file_exists sock then Sys.remove sock)
      (fun () ->
        f sock [||];
        let c = connect sock in
        ignore (Client.call c ~meth:"shutdown" ~params:[]);
        Client.close c)
  end
  else begin
    if not (Sys.file_exists tiler_exe) then
      failwith ("serve-fanout needs " ^ tiler_exe ^ "; run dune build first");
    let wsocks =
      Array.init workers (fun i -> temp_path (Fmt.str ".w%d.sock" i))
    in
    let pids = Array.map (fun sock -> spawn_worker ~sock ~store) wsocks in
    let rsock = temp_path ".router.sock" in
    Array.iter await_socket wsocks;
    let router =
      Thread.create
        (fun () ->
          match
            Router.run
              {
                Router.addr = Netio.Unix_sock rsock;
                workers =
                  Array.to_list (Array.map (fun s -> Netio.Unix_sock s) wsocks);
                health_period_s = 2.0;
                io_timeout_s = 2.0;
                max_line_bytes = 1 lsl 20;
                metrics_addr = None;
              }
          with
          | Ok () -> ()
          | Error m -> Fmt.epr "router: %s@." m)
        ()
    in
    await_socket rsock;
    let reap pid =
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
    in
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun pid ->
            try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
          pids;
        Array.iter reap pids;
        Thread.join router;
        rm_store ();
        Array.iter (fun s -> if Sys.file_exists s then Sys.remove s) wsocks;
        if Sys.file_exists rsock then Sys.remove rsock)
      (fun () ->
        f rsock pids;
        let c = connect rsock in
        ignore (Client.call c ~meth:"shutdown" ~params:[]);
        Client.close c)
  end

let run_fanout () =
  Fmt.pr "@.== serve-fanout: concurrent clients, one daemon vs a fleet ==@.";
  let quick = Experiments.bench_quick () in
  let clients = if quick then 4 else 8 in
  let per_client = if quick then 2 else 4 in
  let n = if quick then 12 else 24 in
  let warm_p50 : (string, float) Hashtbl.t = Hashtbl.create 4 in
  let coalesced_total sock =
    (* requests.coalesced from whoever fronts the topology: the daemon's
       scheduler counter or the router's shared-forward counter *)
    let c = connect sock in
    let v =
      match Client.call c ~meth:"stats" ~params:[] with
      | Ok e -> (
          match Client.result_of_response e with
          | Ok r -> (
              match Json.member "requests" r with
              | Some req -> (
                  match Json.member "coalesced" req with
                  | Some (Json.Int i) -> i
                  | _ -> 0)
              | None -> 0)
          | Error _ -> 0)
      | Error _ -> 0
    in
    Client.close c;
    v
  in
  let measure ~topology ~phase ~sock ~seed_of ~requests_per_client () =
    let before = coalesced_total sock in
    let lats = Array.make (clients * requests_per_client) 0. in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init clients (fun c ->
          Thread.create
            (fun c ->
              let client = connect sock in
              for i = 0 to requests_per_client - 1 do
                let params =
                  [
                    ("kernel", Json.String "mm");
                    ("n", Json.Int n);
                    ("seed", Json.Int (seed_of c i));
                  ]
                in
                let s0 = Unix.gettimeofday () in
                (match Client.call client ~meth:"tile" ~params with
                | Ok envelope -> (
                    match Client.result_of_response envelope with
                    | Ok _ -> ()
                    | Error e -> failwith e.Tiling_server.Protocol.message)
                | Error m -> failwith m);
                lats.((c * requests_per_client) + i) <-
                  (Unix.gettimeofday () -. s0) *. 1e3
              done;
              Client.close client)
            c)
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let hits = max 0 (coalesced_total sock - before) in
    Array.sort compare lats;
    let p50 = percentile lats 50 and p95 = percentile lats 95 in
    Fmt.pr
      "%-9s %-8s %d clients x %d  p50 %8.1f ms  p95 %8.1f ms  shared %d@."
      topology phase clients requests_per_client p50 p95 hits;
    if phase = "warm" then Hashtbl.replace warm_p50 topology p50;
    fanout_rows :=
      {
        f_topology = topology;
        f_phase = phase;
        f_clients = clients;
        f_requests = clients * requests_per_client;
        f_p50_ms = p50;
        f_p95_ms = p95;
        f_coalesce_hits = hits;
        f_wall_s = wall;
      }
      :: !fanout_rows
  in
  let topo_phases topology sock (pids : int array) =
    (* distinct seeds per (client, slot): every evaluation is fresh *)
    measure ~topology ~phase:"cold" ~sock
      ~seed_of:(fun c i -> 1000 + (c * per_client) + i)
      ~requests_per_client:per_client ();
    (* the same seeds again: answered out of the shared store *)
    measure ~topology ~phase:"warm" ~sock
      ~seed_of:(fun c i -> 1000 + (c * per_client) + i)
      ~requests_per_client:per_client ();
    (* every client asks for the same fresh search at once: the fleet
       must evaluate once and share the answer *)
    measure ~topology ~phase:"coalesce" ~sock
      ~seed_of:(fun _ _ -> 777777)
      ~requests_per_client:1 ();
    if (not quick) && Array.length pids > 0 then begin
      (* fresh seeds again, and one worker dies mid-stream: the router
         must re-home its keys with no client-visible error *)
      let killer =
        Thread.create
          (fun () ->
            Thread.delay 0.2;
            try Unix.kill pids.(0) Sys.sigkill with Unix.Unix_error _ -> ())
          ()
      in
      measure ~topology ~phase:"failover" ~sock
        ~seed_of:(fun c i -> 5000 + (c * per_client) + i)
        ~requests_per_client:per_client ();
      Thread.join killer
    end
  in
  with_topology ~workers:0 (topo_phases "single");
  with_topology ~workers:2 (topo_phases "router+2");
  if not quick then with_topology ~workers:4 (topo_phases "router+4");
  match
    (Hashtbl.find_opt warm_p50 "single", Hashtbl.find_opt warm_p50 "router+2")
  with
  | Some s, Some r when s > 0. ->
      Fmt.pr "router+2 warm p50 / single warm p50 = %.2fx (target <= 2x)@."
        (r /. s)
  | _ -> ()
