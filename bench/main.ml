(* Benchmark and experiment driver.

     dune exec bench/main.exe            -- regenerate every table and figure
     dune exec bench/main.exe -- TARGET  -- one of: table2 fig8 fig9 table3
                                            table4 ga-convergence
                                            solver-accuracy equations
                                            throughput timing serve-latency
                                            serve-telemetry serve-fanout

   Besides the human-readable tables on stdout, every run writes
   BENCH_results.json in the current directory: a machine-readable record
   of what ran, how long each target took, and the tiling results
   accumulated in [Experiments.tile_cache].  Schema (see
   docs/OBSERVABILITY.md):

     { "schema": "tiling-bench/1",
       "targets": [ { "name": str, "wall_s": float }, ... ],
       "tilings": [ { "kernel": str, "n": int, "cache_size": int,
                      "tiles": [int], "before_miss_pct": float,
                      "after_miss_pct": float, "before_repl_pct": float,
                      "after_repl_pct": float, "generations": int,
                      "converged": bool }, ... ],
       "search_throughput":
                  [ { "kernel": str, "n": int, "domains": int,
                      "evals": int, "wall_s": float,
                      "evals_per_s": float }, ...
                    (* eval-throughput rows additionally carry *)
                    { "target": "eval-throughput", "backend": str,
                      "mode": "pool"|"spawn",
                      "shared_residues": "cold"|"warm", ... } ],
       "serve_latency":
                  [ { "kernel": str, "n": int, "phase": "cold"|"warm",
                      "requests": int, "p50_ms": float, "p95_ms": float,
                      "wall_s": float }, ... ],
       "serve_fanout":
                  [ { "topology": "single"|"router+2"|"router+4",
                      "phase": "cold"|"warm"|"coalesce"|"failover",
                      "clients": int, "requests": int, "p50_ms": float,
                      "p95_ms": float, "coalesce_hits": int,
                      "wall_s": float }, ... ] }

   Partial runs merge into the existing file rather than replacing it:
   sections (and the per-target partitions of "search_throughput") keep
   their previous rows unless this run re-measured them. *)

let targets : (string * (unit -> unit)) list =
  [
    ("table2", Experiments.table2);
    ("fig8", Experiments.fig8);
    ("fig9", Experiments.fig9);
    ("table3", Experiments.table3);
    ("table4", Experiments.table4);
    ("joint", Experiments.joint);
    ("order", Experiments.order);
    ("assoc", Experiments.associativity);
    ("ga-convergence", Experiments.ga_convergence);
    ("solver-accuracy", Experiments.solver_accuracy);
    ("equations", Experiments.equations);
    ("throughput", Experiments.throughput);
    ("eval-throughput", Experiments.eval_throughput);
    ("fuzz-throughput", Experiments.fuzz_throughput);
    ("timing", Timing.run);
    ("serve-latency", Serve.run);
    ("serve-telemetry", Serve.run_telemetry);
    ("serve-fanout", Serve.run_fanout);
  ]

let timed_run name f =
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  Tiling_obs.Json.Obj
    [ ("name", Tiling_obs.Json.String name); ("wall_s", Tiling_obs.Json.Float wall) ]

let json_of_tiling (r : Experiments.tiling_result) cache_size =
  let open Tiling_obs.Json in
  Obj
    [
      ("kernel", String r.Experiments.kernel);
      ("n", Int r.Experiments.size);
      ("cache_size", Int cache_size);
      ( "tiles",
        List (Array.to_list (Array.map (fun t -> Int t) r.Experiments.tiles)) );
      ("before_miss_pct", Float r.Experiments.before_total);
      ("after_miss_pct", Float r.Experiments.after_total);
      ("before_repl_pct", Float r.Experiments.before_repl);
      ("after_repl_pct", Float r.Experiments.after_repl);
      ("generations", Int r.Experiments.generations);
      ("converged", Bool r.Experiments.converged);
    ]

let json_of_fuzz (r : Experiments.fuzz_row) =
  let open Tiling_obs.Json in
  Obj
    [
      ("trials", Int r.Experiments.f_trials);
      ("accesses", Int r.Experiments.f_accesses);
      ("wall_s", Float r.Experiments.f_wall_s);
      ("trials_per_s", Float r.Experiments.f_trials_per_s);
    ]

let json_of_throughput (r : Experiments.throughput_row) =
  let open Tiling_obs.Json in
  Obj
    [
      ("kernel", String r.Experiments.t_kernel);
      ("n", Int r.Experiments.t_size);
      ("domains", Int r.Experiments.t_domains);
      ("evals", Int r.Experiments.t_evals);
      ("wall_s", Float r.Experiments.t_wall_s);
      ("evals_per_s", Float r.Experiments.t_evals_per_s);
    ]

let json_of_eval_row (r : Experiments.eval_row) =
  let open Tiling_obs.Json in
  Obj
    [
      ("target", String "eval-throughput");
      ("kernel", String r.Experiments.e_kernel);
      ("n", Int r.Experiments.e_size);
      ("cache_size", Int r.Experiments.e_cache_size);
      ("backend", String r.Experiments.e_backend);
      ("mode", String r.Experiments.e_mode);
      ("shared_residues", String r.Experiments.e_residues);
      ("domains", Int r.Experiments.e_domains);
      ("evals", Int r.Experiments.e_evals);
      ("wall_s", Float r.Experiments.e_wall_s);
      ("evals_per_s", Float r.Experiments.e_evals_per_s);
      ("fallbacks", Int r.Experiments.e_fallbacks);
    ]

(* A partial run (e.g. `bench/main.exe -- serve-latency`) must not wipe
   the series other targets produced on earlier runs, so writing merges
   with the previous BENCH_results.json: a section (or, for the shared
   [search_throughput] array, a target-tagged partition of it) is only
   replaced when the current run produced rows for it; [targets] and
   [tilings] merge row-wise by key, newest wins. *)
let read_previous () =
  match open_in_bin "BENCH_results.json" with
  | exception Sys_error _ -> None
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      (match Tiling_obs.Json.of_string s with
      | Ok doc -> Some doc
      | Error msg ->
          Fmt.epr "ignoring unreadable BENCH_results.json (%s)@." msg;
          None)

let prev_section prev key =
  match prev with
  | None -> []
  | Some doc -> (
      match Tiling_obs.Json.member key doc with
      | Some (Tiling_obs.Json.List rows) -> rows
      | _ -> [])

let str_member k row =
  match Tiling_obs.Json.member k row with
  | Some (Tiling_obs.Json.String s) -> Some s
  | _ -> None

(* Old rows not superseded by a new row with the same key, then the new
   rows: series keep their history across partial runs. *)
let merge_rows ~key old_rows new_rows =
  let new_keys = List.map key new_rows in
  List.filter (fun r -> not (List.mem (key r) new_keys)) old_rows @ new_rows

let write_results timed =
  let open Tiling_obs.Json in
  let prev = read_previous () in
  let keep_unless_empty key fresh =
    if fresh = [] then prev_section prev key else fresh
  in
  let tilings =
    Hashtbl.fold
      (fun (_, _, cache_size) r acc -> json_of_tiling r cache_size :: acc)
      Experiments.tile_cache []
    |> List.sort compare
  in
  let tilings =
    merge_rows
      ~key:(fun r ->
        (str_member "kernel" r, member "n" r, member "cache_size" r))
      (prev_section prev "tilings") tilings
  in
  let targets =
    merge_rows ~key:(str_member "name") (prev_section prev "targets")
      (List.rev timed)
  in
  (* search_throughput holds two series distinguished by the "target"
     tag; each is replaced only when this run re-measured it. *)
  let eval_tagged r = str_member "target" r = Some "eval-throughput" in
  let old_plain, old_eval =
    List.partition (fun r -> not (eval_tagged r)) (prev_section prev "search_throughput")
  in
  let throughput =
    (match List.rev_map json_of_throughput !Experiments.throughput_rows with
    | [] -> old_plain
    | fresh -> fresh)
    @
    match List.rev_map json_of_eval_row !Experiments.eval_rows with
    | [] -> old_eval
    | fresh -> fresh
  in
  let fuzz =
    keep_unless_empty "fuzz_throughput"
      (List.rev_map json_of_fuzz !Experiments.fuzz_rows)
  in
  let serve =
    keep_unless_empty "serve_latency"
      (List.rev_map Serve.json_of_row !Serve.rows)
  in
  let fanout =
    keep_unless_empty "serve_fanout"
      (List.rev_map Serve.json_of_fan_row !Serve.fanout_rows)
  in
  let doc =
    Obj
      [
        ("schema", String "tiling-bench/1");
        ("targets", List targets);
        ("tilings", List tilings);
        ("search_throughput", List throughput);
        ("fuzz_throughput", List fuzz);
        ("serve_latency", List serve);
        ("serve_fanout", List fanout);
      ]
  in
  let oc = open_out "BENCH_results.json" in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote BENCH_results.json (%d targets, %d tilings)@."
    (List.length targets) (List.length tilings)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let timed = ref [] in
  let run name f = timed := timed_run name f :: !timed in
  (match args with
  | [] ->
      Fmt.pr "Reproducing every table and figure (see EXPERIMENTS.md).@.";
      List.iter (fun (name, f) -> run name f) targets
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name targets with
          | Some f -> run name f
          | None ->
              Fmt.epr "unknown target %s; available: %s@." name
                (String.concat " " (List.map fst targets));
              exit 1)
        names);
  write_results !timed
