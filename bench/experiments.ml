(* Experiment regeneration: every table and figure of the paper's
   evaluation (section 4), printed in the paper's layout with the paper's
   reference numbers alongside.  See EXPERIMENTS.md for the recorded
   comparison. *)

open Tiling_core

let pct r = 100. *. r.Tiling_util.Stats.center

let repl (r : Tiling_cme.Estimator.report) = pct r.Tiling_cme.Estimator.replacement_ratio
let total (r : Tiling_cme.Estimator.report) = pct r.Tiling_cme.Estimator.miss_ratio

let seed = 20020815

let tiler_opts = { Tiler.default_opts with seed }
let padder_opts = { Padder.default_opts with seed }

let build name n = (Tiling_kernels.Kernels.find name).Tiling_kernels.Kernels.build n

(* Results are cached across experiments (table 4 aggregates figures 8/9). *)
type tiling_result = {
  kernel : string;
  size : int;
  before_repl : float;
  after_repl : float;
  before_total : float;
  after_total : float;
  tiles : int array;
  generations : int;
  converged : bool;
}

let tile_cache : (string * int * int, tiling_result) Hashtbl.t = Hashtbl.create 64

let optimize_kernel name n (cache : Tiling_cache.Config.t) =
  let key = (name, n, cache.Tiling_cache.Config.size) in
  match Hashtbl.find_opt tile_cache key with
  | Some r -> r
  | None ->
      let nest = build name n in
      let o = Tiler.optimize ~opts:tiler_opts nest cache in
      let r =
        {
          kernel = name;
          size = n;
          before_repl = repl o.Tiler.before;
          after_repl = repl o.Tiler.after;
          before_total = total o.Tiler.before;
          after_total = total o.Tiler.after;
          tiles = o.Tiler.tiles;
          generations = o.Tiler.ga.Tiling_ga.Engine.generations;
          converged = o.Tiler.ga.Tiling_ga.Engine.converged;
        }
      in
      Hashtbl.replace tile_cache key r;
      r

(* ------------------------------------------------------------------ *)
(* Table 2: miss ratios for some kernels, 8KB direct-mapped, 32B lines  *)

let table2 () =
  Fmt.pr "@.== Table 2: miss ratios before/after tiling (8KB DM, 32B lines) ==@.";
  Fmt.pr "%-10s %-6s | %21s | %21s | %s@." "Kernel" "N" "no tiling (tot/repl)"
    "tiling (tot/repl)" "paper (tot/repl -> tot/repl)";
  let paper =
    [
      ("T2D", 2000, (63.3, 36.4, 27.7, 0.9));
      ("T3DJIK", 200, (63.4, 36.7, 30.2, 3.6));
      ("T3DIKJ", 200, (34.6, 7.0, 27.9, 0.3));
      ("JACOBI3D", 200, (25.6, 7.2, 19.8, 1.3));
    ]
  in
  List.iter
    (fun (name, n, (pt, pr, pt', pr')) ->
      let r = optimize_kernel name n Tiling_cache.Config.dm8k in
      Fmt.pr "%-10s %-6d | %9.1f%% /%8.1f%% | %9.1f%% /%8.1f%% | %.1f/%.1f -> %.1f/%.1f@."
        name n r.before_total r.before_repl r.after_total r.after_repl pt pr pt' pr')
    paper

(* ------------------------------------------------------------------ *)
(* Figures 8 and 9: replacement miss ratio for every kernel and size    *)

let figure_kernels =
  (* The bar labels of figures 8 and 9. *)
  [
    ("T2D", [ 100; 500; 2000 ]);
    ("T3DJIK", [ 20; 100; 200 ]);
    ("T3DIKJ", [ 20; 100; 200 ]);
    ("JACOBI3D", [ 20; 100; 200 ]);
    ("MATMUL", [ 100; 500; 2000 ]);
    ("MM", [ 100; 500; 2000 ]);
    ("ADI", [ 100; 500; 2000 ]);
    ("ADD", [ 32 ]);
    ("BTRIX", [ 128 ]);
    ("VPENTA2", [ 128 ]);
    ("DPSSB", [ 128 ]);
    ("DRADBG1", [ 128 ]);
    ("DRADFG1", [ 128 ]);
  ]

let figure cache label =
  Fmt.pr "@.== %s: replacement miss ratio, no-tiling vs tiling (%a) ==@." label
    Tiling_cache.Config.pp cache;
  Fmt.pr "%-14s %10s %10s   %s@." "Kernel_N" "no-tiling" "tiling" "tiles";
  let results = ref [] in
  List.iter
    (fun (name, sizes) ->
      List.iter
        (fun n ->
          let r = optimize_kernel name n cache in
          results := r :: !results;
          Fmt.pr "%-14s %9.1f%% %9.1f%%   [%a]@."
            (Printf.sprintf "%s_%d" name n)
            r.before_repl r.after_repl
            Fmt.(array ~sep:(any ",") int)
            r.tiles)
        sizes)
    figure_kernels;
  List.rev !results

let fig8 () = ignore (figure Tiling_cache.Config.dm8k "Figure 8")
let fig9 () = ignore (figure Tiling_cache.Config.dm32k "Figure 9")

(* ------------------------------------------------------------------ *)
(* Table 3: padding, then padding + tiling, for the conflict kernels    *)

let table3_row name n cache =
  let nest = build name n in
  let c = Optimizer.pad_then_tile ~topts:tiler_opts ~popts:padder_opts nest cache in
  (repl c.Optimizer.original, repl c.Optimizer.padded, repl c.Optimizer.padded_tiled)

let table3 () =
  Fmt.pr "@.== Table 3: conflict kernels — original / padding / padding+tiling ==@.";
  let run cache_label cache rows =
    Fmt.pr "--- %s ---@." cache_label;
    Fmt.pr "%-12s %10s %10s %16s | %s@." "Kernel" "original" "padding"
      "padding+tiling" "paper";
    List.iter
      (fun (name, n, (po, pp_, ppt)) ->
        let o, p, pt = table3_row name n cache in
        Fmt.pr "%-12s %9.1f%% %9.1f%% %15.1f%% | %.1f / %.1f / %.1f@."
          (if n > 200 then Printf.sprintf "%s %d" name n else name)
          o p pt po pp_ ppt)
      rows
  in
  run "8KB" Tiling_cache.Config.dm8k
    [
      ("ADD", 32, (60.2, 59.8, 0.5));
      ("BTRIX", 128, (50.1, 0.2, 0.2));
      ("VPENTA1", 128, (78.3, 52.4, 0.0));
      ("VPENTA2", 128, (86.0, 11.9, 0.0));
      ("ADI", 1000, (26.2, 12.3, 4.1));
      ("ADI", 2000, (25.7, 12.4, 3.4));
    ];
  run "32KB" Tiling_cache.Config.dm32k
    [
      ("ADD", 32, (60.2, 59.8, 0.0));
      ("BTRIX", 128, (34.1, 0.0, 0.0));
      ("VPENTA1", 128, (78.1, 32.9, 0.0));
      ("VPENTA2", 128, (86.0, 11.3, 0.0));
    ]

let joint () =
  Fmt.pr "@.== Future work (section 4.3): sequential vs joint padding+tiling ==@.";
  Fmt.pr "%-12s %10s %18s %14s@." "Kernel" "original" "pad-then-tile" "joint GA";
  List.iter
    (fun (name, n) ->
      let cache = Tiling_cache.Config.dm8k in
      let seq =
        let nest = build name n in
        let c = Optimizer.pad_then_tile ~topts:tiler_opts ~popts:padder_opts nest cache in
        (repl c.Optimizer.original, repl c.Optimizer.padded_tiled)
      in
      let jnt =
        let nest = build name n in
        let j = Optimizer.pad_and_tile ~topts:tiler_opts ~popts:padder_opts nest cache in
        repl j.Optimizer.optimized
      in
      Fmt.pr "%-12s %9.1f%% %17.1f%% %13.1f%%@."
        (if n > 200 then Printf.sprintf "%s %d" name n else name)
        (fst seq) (snd seq) jnt)
    [ ("ADD", 32); ("VPENTA1", 128); ("VPENTA2", 128); ("ADI", 1000) ]

let order () =
  Fmt.pr "@.== Extension: loop order searched together with tile sizes ==@.";
  Fmt.pr "%-14s %12s %14s %18s@." "Kernel_N" "untiled" "tiles only"
    "order + tiles";
  List.iter
    (fun (name, n) ->
      let nest = build name n in
      let cache = Tiling_cache.Config.dm8k in
      let t = Tiler.optimize ~opts:tiler_opts nest cache in
      let w = Tiler.optimize_with_order ~opts:tiler_opts nest cache in
      Fmt.pr "%-14s %11.1f%% %13.1f%% %13.1f%% [%a]@."
        (Printf.sprintf "%s_%d" name n)
        (repl t.Tiler.before) (repl t.Tiler.after) (repl w.Tiler.oafter)
        Fmt.(array ~sep:(any ",") int)
        w.Tiler.order)
    [ ("T3DJIK", 100); ("T3DIKJ", 100); ("MM", 500); ("MATMUL", 500) ]

let associativity () =
  Fmt.pr "@.== Extension: set-associative caches (beyond the paper's DM evaluation) ==@.";
  Fmt.pr "%-14s %12s %12s %12s@." "Kernel_N" "8KB DM" "8KB 2-way" "8KB 4-way";
  List.iter
    (fun (name, n) ->
      let row =
        List.map
          (fun assoc ->
            let cache = Tiling_cache.Config.make ~size:8192 ~line:32 ~assoc () in
            let nest = build name n in
            let o = Tiler.optimize ~opts:tiler_opts nest cache in
            (repl o.Tiler.before, repl o.Tiler.after))
          [ 1; 2; 4 ]
      in
      Fmt.pr "%-14s %s@."
        (Printf.sprintf "%s_%d" name n)
        (String.concat " "
           (List.map (fun (b, a) -> Printf.sprintf "%5.1f->%4.1f%%" b a) row)))
    [ ("T2D", 500); ("MM", 500); ("T3DJIK", 100); ("VPENTA2", 128) ]

(* ------------------------------------------------------------------ *)
(* Table 4: fraction of kernels below replacement thresholds            *)

let table4 () =
  Fmt.pr "@.== Table 4: %% of kernels with post-tiling replacement below thresholds ==@.";
  Fmt.pr "(excluding the table 3 kernels: ADD, BTRIX, VPENTA, large ADI)@.";
  let excluded r =
    List.mem r.kernel [ "ADD"; "BTRIX"; "VPENTA1"; "VPENTA2" ]
    || (r.kernel = "ADI" && r.size >= 1000)
  in
  let for_cache cache =
    let rs =
      List.concat_map
        (fun (name, sizes) ->
          List.map (fun n -> optimize_kernel name n cache) sizes)
        figure_kernels
    in
    List.filter (fun r -> not (excluded r)) rs
  in
  Fmt.pr "%-8s %8s %8s %8s | %s@." "Cache" "<1%" "<2%" "<5%" "paper (<1/<2/<5)";
  List.iter
    (fun (label, cache, (p1, p2, p5)) ->
      let rs = for_cache cache in
      let n = float_of_int (List.length rs) in
      let frac thr =
        100.
        *. float_of_int (List.length (List.filter (fun r -> r.after_repl < thr) rs))
        /. n
      in
      Fmt.pr "%-8s %7.1f%% %7.1f%% %7.1f%% | %.1f / %.1f / %.1f@." label (frac 1.)
        (frac 2.) (frac 5.) p1 p2 p5)
    [
      ("8KB", Tiling_cache.Config.dm8k, (56.4, 79.5, 100.0));
      ("32KB", Tiling_cache.Config.dm32k, (90.2, 97.6, 100.0));
    ]

(* ------------------------------------------------------------------ *)
(* GA behaviour: convergence generations, quality vs baselines          *)

let ga_convergence () =
  Fmt.pr "@.== GA convergence (section 3.3) ==@.";
  Fmt.pr "Paper: near-optimal after 15 generations in most cases, 15-25 otherwise.@.";
  Fmt.pr "%-14s %11s %9s %9s@." "Kernel_N" "generations" "converged" "objective";
  let gens = ref [] in
  List.iter
    (fun (name, n) ->
      let nest = build name n in
      let opts = { tiler_opts with Tiler.restarts = 1 } in
      let o = Tiler.optimize ~opts nest Tiling_cache.Config.dm8k in
      gens := o.Tiler.ga.Tiling_ga.Engine.generations :: !gens;
      Fmt.pr "%-14s %11d %9b %9.0f@."
        (Printf.sprintf "%s_%d" name n)
        o.Tiler.ga.Tiling_ga.Engine.generations
        o.Tiler.ga.Tiling_ga.Engine.converged
        o.Tiler.ga.Tiling_ga.Engine.best_objective)
    [
      ("T2D", 500); ("T2D", 2000); ("T3DJIK", 100); ("T3DIKJ", 100);
      ("JACOBI3D", 100); ("MM", 500); ("MATMUL", 500); ("ADI", 500);
      ("DPSSB", 128); ("DRADFG1", 128);
    ];
  let at15 = List.length (List.filter (fun g -> g <= 15) !gens) in
  Fmt.pr "converged at the 15-generation minimum: %d/%d@." at15 (List.length !gens);

  Fmt.pr "@.-- GA vs exhaustive optimum (small spaces, same objective) --@.";
  Fmt.pr "%-10s %12s %12s %12s@." "Kernel" "exhaustive" "GA" "GA/opt";
  List.iter
    (fun (name, n) ->
      let nest = build name n in
      let cache = Tiling_cache.Config.make ~size:2048 ~line:32 () in
      let sample = Sample.create ~seed nest in
      let spans = Tiling_ir.Transform.tile_spans nest in
      let per_dim = Array.fold_left max 1 spans in
      let ex = Tiling_baselines.Search.exhaustive ~per_dim sample nest cache in
      let o = Tiler.optimize ~opts:tiler_opts nest cache in
      let ga_obj = o.Tiler.ga.Tiling_ga.Engine.best_objective in
      let ratio =
        if ex.Tiling_baselines.Search.objective = 0. then
          if ga_obj = 0. then 1. else infinity
        else ga_obj /. ex.Tiling_baselines.Search.objective
      in
      Fmt.pr "%-10s %12.0f %12.0f %12.2f@."
        (Printf.sprintf "%s_%d" name n)
        ex.Tiling_baselines.Search.objective ga_obj ratio)
    [ ("T2D", 48); ("T2D", 64); ("ADI", 48) ];

  Fmt.pr "@.-- search and analytic baselines (MM_500, 8KB; objective: repl misses in sample) --@.";
  let nest = build "MM" 500 in
  let cache = Tiling_cache.Config.dm8k in
  let sample = Sample.create ~seed nest in
  let eval t = Tiler.objective_on sample nest cache t in
  let show label tiles obj =
    Fmt.pr "%-18s [%-12s] %8.0f@." label
      (String.concat "," (Array.to_list (Array.map string_of_int tiles)))
      obj
  in
  let o = Tiler.optimize ~opts:tiler_opts nest cache in
  show "GA+CME (paper)" o.Tiler.tiles o.Tiler.ga.Tiling_ga.Engine.best_objective;
  let r = Tiling_baselines.Search.random ~evals:1350 ~seed sample nest cache in
  show "random (same #evals)" r.Tiling_baselines.Search.tiles
    r.Tiling_baselines.Search.objective;
  let h = Tiling_baselines.Search.hill_climb ~evals:1350 ~seed sample nest cache in
  show "hill-climb" h.Tiling_baselines.Search.tiles
    h.Tiling_baselines.Search.objective;
  let sa =
    Tiling_baselines.Annealing.simulated_annealing
      ~params:{ Tiling_baselines.Annealing.default_params with evals = 1350 }
      ~seed sample nest cache
  in
  show "simulated annealing" sa.Tiling_baselines.Search.tiles
    sa.Tiling_baselines.Search.objective;
  let tb =
    Tiling_baselines.Annealing.tabu
      ~params:{ Tiling_baselines.Annealing.default_tabu_params with tabu_evals = 1350 }
      ~seed sample nest cache
  in
  show "tabu search" tb.Tiling_baselines.Search.tiles
    tb.Tiling_baselines.Search.objective;
  List.iter
    (fun (label, tiles) -> show label tiles (eval tiles))
    [
      ("LRW (ESS)", Tiling_baselines.Analytic.lrw nest cache);
      ("Coleman-McKinley", Tiling_baselines.Analytic.coleman_mckinley nest cache);
      ("Sarkar-Megiddo", Tiling_baselines.Analytic.sarkar_megiddo nest cache);
      ("untiled", Tiling_ir.Transform.tile_spans nest);
    ];

  Fmt.pr "@.-- GA design ablation (MM_500, 8KB; restarts=1, seeds 1..5) --@.";
  let variants =
    [
      ("paper+scaling+elitism", Tiling_ga.Engine.default_params);
      ("no elitism",
       { Tiling_ga.Engine.default_params with Tiling_ga.Engine.elitism = false });
    ]
  in
  List.iter
    (fun (label, params) ->
      let objs =
        List.map
          (fun s ->
            let opts = { tiler_opts with Tiler.restarts = 1; seed = s; ga = params } in
            (Tiler.optimize ~opts nest cache).Tiler.ga.Tiling_ga.Engine.best_objective)
          [ 1; 2; 3; 4; 5 ]
      in
      Fmt.pr "%-24s best objectives: %a@." label
        Fmt.(list ~sep:(any " ") (fmt "%.0f"))
        objs)
    variants

(* ------------------------------------------------------------------ *)
(* Solver accuracy: CME vs simulator vs sampling (section 2.3)          *)

let solver_accuracy () =
  Fmt.pr "@.== Solver accuracy: CME exact vs simulator vs 164-point sampling ==@.";
  Fmt.pr "%-22s %9s %9s %9s %9s@." "Config" "sim miss" "cme miss" "sampled"
    "CI halfw";
  let cache = Tiling_cache.Config.make ~size:1024 ~line:32 () in
  List.iter
    (fun (label, nest) ->
      let sim = Tiling_trace.Run.simulate nest cache in
      let exact = Tiling_cme.Estimator.exact (Tiling_cme.Engine.create nest cache) in
      let sampled =
        Tiling_cme.Estimator.sample ~seed (Tiling_cme.Engine.create nest cache)
      in
      Fmt.pr "%-22s %8.2f%% %8.2f%% %8.2f%% %8.2f%%@." label
        (100. *. Tiling_cache.Sim.miss_ratio sim.Tiling_trace.Run.total)
        (total exact) (total sampled)
        (100. *. sampled.Tiling_cme.Estimator.miss_ratio.Tiling_util.Stats.half_width))
    [
      ("MM_24", build "MM" 24);
      ("MM_24 t=6,4,8", Tiling_ir.Transform.tile (build "MM" 24) [| 6; 4; 8 |]);
      ("T2D_32", build "T2D" 32);
      ("T2D_32 t=8,8", Tiling_ir.Transform.tile (build "T2D" 32) [| 8; 8 |]);
      ("T3DJIK_14", build "T3DJIK" 14);
      ("JACOBI3D_12", build "JACOBI3D" 12);
      ("MATMUL_24", build "MATMUL" 24);
    ];
  Fmt.pr "@.-- sampling against exact CME on a large kernel (MM_500, 8KB) --@.";
  let nest = build "MM" 500 in
  let tiled = Tiling_ir.Transform.tile nest [| 500; 12; 24 |] in
  List.iter
    (fun (label, nest) ->
      let engine = Tiling_cme.Engine.create nest Tiling_cache.Config.dm8k in
      let reports =
        List.map (fun s -> Tiling_cme.Estimator.sample ~seed:s engine) [ 1; 2; 3; 4; 5 ]
      in
      let centers =
        List.map (fun (r : Tiling_cme.Estimator.report) -> total r) reports
      in
      Fmt.pr "%-18s five seeds: %a  (spread %.1f pp)@." label
        Fmt.(list ~sep:(any " ") (fmt "%.1f"))
        centers
        (List.fold_left max neg_infinity centers
        -. List.fold_left min infinity centers))
    [ ("MM_500 untiled", nest); ("MM_500 tiled", tiled) ];
  Fmt.pr "@.-- solver internals (ablation of the fast paths) --@.";
  let tiled_engine cap =
    let e = Tiling_cme.Engine.create ~window_cap:cap tiled Tiling_cache.Config.dm8k in
    let t0 = Unix.gettimeofday () in
    let r = Tiling_cme.Estimator.sample ~seed e in
    ( total r,
      Tiling_cme.Engine.fallback_count e,
      Tiling_cme.Engine.memo_size e,
      Unix.gettimeofday () -. t0 )
  in
  List.iter
    (fun cap ->
      let miss, fb, memo, dt = tiled_engine cap in
      Fmt.pr "window_cap=%-5d miss=%.2f%% fallbacks=%d memoised_images=%d time=%.3fs@."
        cap miss fb memo dt)
    [ 1; 8; 512 ]

(* ------------------------------------------------------------------ *)
(* Search throughput: the evaluation layer's parallel speedup           *)

type throughput_row = {
  t_kernel : string;
  t_size : int;
  t_domains : int;
  t_evals : int;        (* fresh (distinct) candidate evaluations *)
  t_wall_s : float;
  t_evals_per_s : float;
}

let throughput_rows : throughput_row list ref = ref []

let throughput () =
  Fmt.pr "@.== Search throughput: GA tile search, fresh evals/sec by domains ==@.";
  Fmt.pr "%-14s %8s %8s %10s %12s@." "Kernel_N" "domains" "evals" "wall (s)"
    "evals/sec";
  let domain_counts =
    match Tiling_util.Par.recommended_domains () with
    | 1 -> [ 1 ]
    | d -> [ 1; d ]
  in
  List.iter
    (fun (name, n) ->
      List.iter
        (fun domains ->
          let nest = build name n in
          let opts = { tiler_opts with Tiler.restarts = 1; domains } in
          let t0 = Unix.gettimeofday () in
          let o = Tiler.optimize ~opts nest Tiling_cache.Config.dm8k in
          let wall = Unix.gettimeofday () -. t0 in
          let evals = o.Tiler.distinct_candidates in
          let rate = float_of_int evals /. Float.max 1e-9 wall in
          throughput_rows :=
            {
              t_kernel = name;
              t_size = n;
              t_domains = domains;
              t_evals = evals;
              t_wall_s = wall;
              t_evals_per_s = rate;
            }
            :: !throughput_rows;
          Fmt.pr "%-14s %8d %8d %10.2f %12.0f@."
            (Printf.sprintf "%s_%d" name n)
            domains evals wall rate)
        domain_counts)
    [ ("T2D", 500); ("MM", 200) ]

(* ------------------------------------------------------------------ *)
(* Candidate-evaluation throughput: the hot path end-to-end             *)

(* Measures Eval.evaluate_all itself — backend cost, memoisation, batch
   plumbing and domain fan-out — on synthetic GA generations of fresh
   candidates, for the pool strategy against the pre-PR spawn-per-batch
   baseline, with the shared residue cache cold and warm.  Batches are
   deliberately small (a converged GA's generations mostly hit the memo,
   so the work lists that reach Par.map are short); that is exactly the
   regime where per-batch domain spawns dominated. *)

type eval_row = {
  e_kernel : string;
  e_size : int;
  e_cache_size : int; (* cache capacity in bytes *)
  e_backend : string;
  e_mode : string; (* "pool" | "spawn" *)
  e_residues : string; (* "cold" | "warm" *)
  e_domains : int;
  e_evals : int;
  e_wall_s : float;
  e_evals_per_s : float;
  e_fallbacks : int;
      (* symbolic-backend evaluations that fell back to sampling during
         this run (0 for every other backend) *)
}

let eval_rows : eval_row list ref = ref []

let bench_quick () =
  match Sys.getenv_opt "TILING_BENCH_QUICK" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

(* Deterministic stream of distinct tile-vector candidates, chopped into
   GA-generation-sized batches.  Distinct by construction (an increasing
   hidden counter folded into each vector) so every candidate misses the
   memo and reaches the backend. *)
let candidate_batches ~spans ~batches ~batch_size ~seed =
  let rng = Tiling_util.Prng.create ~seed in
  let d = Array.length spans in
  let counter = ref 0 in
  Array.init batches (fun _ ->
      Array.init batch_size (fun _ ->
          incr counter;
          Array.init d (fun l ->
              if l = 0 then 1 + (!counter mod spans.(0))
              else 1 + Tiling_util.Prng.int rng spans.(l))))

let eval_throughput () =
  Fmt.pr "@.== Eval throughput: evaluate_all evals/sec, pool vs spawn ==@.";
  Fmt.pr "%-10s %-10s %-5s %-4s %7s %8s %10s %12s %5s@." "Kernel_N" "backend"
    "mode" "res" "domains" "evals" "wall (s)" "evals/sec" "fb";
  let quick = bench_quick () in
  let domain_counts = if quick then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let batches = if quick then 8 else 24 in
  let batch_size = 4 in
  let sample_points = 32 in
  (* sim replays the full iteration space per candidate, so it gets small
     problem sizes; cme-sample scales with the sample, not the space. *)
  let dm8k = Tiling_cache.Config.dm8k in
  let dm1k = Tiling_cache.Config.dm1k in
  let configs =
    [
      ("MM", 200, Tiling_search.Backend.cme_sample, batches, dm8k);
      ("SOR", 500, Tiling_search.Backend.cme_sample, batches, dm8k);
      (* Triangular datapoint: the affine latest-source path instead of the
         reuse-vector machinery — the throughput cost of exactness on
         non-rectangular spaces. *)
      ("LU", 100, Tiling_search.Backend.cme_sample, batches, dm8k);
      (* Same-series baseline for the symbolic MM_64 rows below. *)
      ("MM", 64, Tiling_search.Backend.cme_sample, batches, dm8k);
      ("MM", 24, Tiling_search.Backend.sim, batches, dm8k);
      ("SOR", 48, Tiling_search.Backend.sim, batches, dm8k);
      ("LU", 24, Tiling_search.Backend.sim, batches, dm8k);
      (* Closed-form backend: bounded-mode estimates; MM exercises the
         probe-row aggregator on the paper's primary kernel (rectangular =>
         zero fallbacks, enforced below in quick mode), LU is the
         guaranteed fallback-rate datapoint (triangular => every eval
         samples).  The dm1k rows are the small-modulus series the CI
         smoke gates on. *)
      ("MM", 200, Tiling_search.Backend.symbolic, 2, dm8k);
      ("MM", 64, Tiling_search.Backend.symbolic, 2, dm8k);
      ("MM", 64, Tiling_search.Backend.symbolic, 2, dm1k);
      ("LU", 100, Tiling_search.Backend.symbolic, 2, dm8k);
    ]
  in
  let fallback_counter = Tiling_obs.Metrics.counter "symbolic.fallbacks" in
  let metrics_were = Tiling_obs.Metrics.enabled () in
  Tiling_obs.Metrics.set_enabled true;
  let rows_before = !eval_rows in
  List.iter
    (fun (name, n, backend, batches, cache) ->
      let nest = build name n in
      let sample = Tiling_core.Sample.create ~n:sample_points ~seed nest in
      let spans = Tiling_ir.Transform.tile_spans nest in
      let all_batches =
        candidate_batches ~spans ~batches ~batch_size ~seed:(seed + n)
      in
      let measure ~mode ~residues ~domains =
        Tiling_util.Par.set_strategy
          (match mode with
          | "spawn" -> Tiling_util.Par.Spawn
          | _ -> Tiling_util.Par.Pool);
        if residues = "cold" then Tiling_cme.Engine.clear_shared_residues ();
        (* A fresh service per run: an empty objective memo means every
           candidate reaches the backend; "warm" refers only to the shared
           residue cache primed by the previous pass. *)
        let eval =
          Tiling_search.Eval.create ~backend ~domains ~cache
            ~prepare:(fun tiles ->
              ( Tiling_ir.Transform.tile nest tiles,
                Tiling_core.Sample.embed sample ~tiles ))
            ()
        in
        let fb0 = Tiling_obs.Metrics.counter_value fallback_counter in
        let t0 = Unix.gettimeofday () in
        Array.iter
          (fun batch -> ignore (Tiling_search.Eval.evaluate_all eval batch))
          all_batches;
        let wall = Unix.gettimeofday () -. t0 in
        Tiling_util.Par.set_strategy Tiling_util.Par.Pool;
        let evals = Tiling_search.Eval.fresh eval in
        let fallbacks =
          Tiling_obs.Metrics.counter_value fallback_counter - fb0
        in
        let rate = float_of_int evals /. Float.max 1e-9 wall in
        eval_rows :=
          {
            e_kernel = name;
            e_size = n;
            e_cache_size = cache.Tiling_cache.Config.size;
            e_backend = backend.Tiling_search.Backend.name;
            e_mode = mode;
            e_residues = residues;
            e_domains = domains;
            e_evals = evals;
            e_wall_s = wall;
            e_evals_per_s = rate;
            e_fallbacks = fallbacks;
          }
          :: !eval_rows;
        Fmt.pr "%-10s %-10s %-5s %-4s %7d %8d %10.3f %12.0f %5d@."
          (Printf.sprintf "%s_%d/%dk" name n (cache.Tiling_cache.Config.size / 1024))
          backend.Tiling_search.Backend.name mode residues domains evals wall
          rate fallbacks
      in
      List.iter
        (fun domains ->
          (* cold then warm for the pool path; the spawn baseline runs on
             the warm cache so the comparison isolates the batch plumbing. *)
          measure ~mode:"pool" ~residues:"cold" ~domains;
          measure ~mode:"pool" ~residues:"warm" ~domains;
          if domains > 1 then measure ~mode:"spawn" ~residues:"warm" ~domains)
        domain_counts)
    configs;
  Tiling_obs.Metrics.set_enabled metrics_were;
  (* Quick mode doubles as the CI smoke, so it gates two regressions the
     human-readable table would merely display: the symbolic backend must
     never fall back on rectangular MM candidates (the bounded mode only
     errors on affine nests), and per-evaluation latency must stay within
     an order of magnitude of the measured envelope — a refusal or probe
     regression shows up as a 100-1000x blowup, far outside machine
     noise. *)
  if quick then begin
    let this_run =
      let before = rows_before in
      List.filteri (fun i _ -> i < List.length !eval_rows - List.length before)
        !eval_rows
    in
    List.iter
      (fun r ->
        if r.e_backend = "symbolic" then begin
          if r.e_kernel = "MM" && r.e_fallbacks > 0 then
            failwith
              (Printf.sprintf
                 "eval-throughput gate: symbolic backend fell back %d times \
                  on MM_%d (expected 0 on rectangular nests)"
                 r.e_fallbacks r.e_size);
          let per_eval = r.e_wall_s /. float_of_int (max 1 r.e_evals) in
          let bound = if r.e_kernel = "LU" then 0.25 else 0.10 in
          if per_eval > bound then
            failwith
              (Printf.sprintf
                 "eval-throughput gate: symbolic %s_%d spent %.3f s/eval \
                  (bound %.2f): refusal path or probe budget regressed"
                 r.e_kernel r.e_size per_eval bound)
        end)
      this_run
  end

(* ------------------------------------------------------------------ *)
(* Differential fuzzer throughput: oracle trials per second             *)

type fuzz_row = {
  f_trials : int;
  f_accesses : int;
  f_wall_s : float;
  f_trials_per_s : float;
}

let fuzz_rows : fuzz_row list ref = ref []

let fuzz_throughput () =
  Fmt.pr "@.== Fuzz throughput: CME-vs-simulator oracle trials/sec ==@.";
  let trials = 300 in
  let o = Tiling_fuzz.Driver.run ~trials ~seed:1 () in
  let open Tiling_fuzz.Driver in
  if o.mismatches <> [] then
    Fmt.pr "WARNING: %d oracle mismatches during the bench run@."
      (List.length o.mismatches);
  let rate = float_of_int o.trials_run /. Float.max 1e-9 o.wall_s in
  fuzz_rows :=
    {
      f_trials = o.trials_run;
      f_accesses = o.accesses;
      f_wall_s = o.wall_s;
      f_trials_per_s = rate;
    }
    :: !fuzz_rows;
  Fmt.pr "%d trials (%d accesses compared) in %.2f s: %.0f trials/sec@."
    o.trials_run o.accesses o.wall_s rate

(* ------------------------------------------------------------------ *)
(* Equation census: the section 2.4 size explosion                      *)

let equations () =
  Fmt.pr "@.== CME census: convex regions and equation counts (section 2.4) ==@.";
  Fmt.pr "%-26s %8s %8s %12s %12s@." "Nest" "regions" "reuse" "compulsory"
    "replacement";
  let show label nest =
    let s = Tiling_cme.Equations.summarize nest ~line:32 in
    Fmt.pr "%-26s %8d %8d %12d %12d@." label s.Tiling_cme.Equations.regions
      s.Tiling_cme.Equations.reuse_vectors
      s.Tiling_cme.Equations.compulsory_equations
      s.Tiling_cme.Equations.replacement_equations
  in
  let nest = build "MM" 100 in
  show "MM_100" nest;
  show "MM_100 tiles 10,10,10" (Tiling_ir.Transform.tile nest [| 10; 10; 10 |]);
  show "MM_100 tiles 7,9,11" (Tiling_ir.Transform.tile nest [| 7; 9; 11 |]);
  let t2d = build "T2D" 100 in
  show "T2D_100" t2d;
  show "T2D_100 tiles 7,9" (Tiling_ir.Transform.tile t2d [| 7; 9 |])
