open Tiling_ir

let qcheck = QCheck_alcotest.to_alcotest

(* The sorted multiset of addresses a nest touches; tiling and interchange
   must preserve it exactly (they only reorder execution). *)
let address_multiset nest =
  let acc = ref [] in
  Tiling_trace.Gen.iter nest (fun ev -> acc := ev.Tiling_trace.Gen.addr :: !acc);
  List.sort compare !acc

let test_tile_preserves_addresses () =
  let nest = Tiling_kernels.Kernels.mm 7 in
  let want = address_multiset nest in
  List.iter
    (fun tiles ->
      Alcotest.(check (list int))
        (Printf.sprintf "tiles %s"
           (String.concat "," (List.map string_of_int (Array.to_list tiles))))
        want
        (address_multiset (Transform.tile nest tiles)))
    [ [| 1; 1; 1 |]; [| 7; 7; 7 |]; [| 2; 3; 4 |]; [| 5; 7; 6 |] ]

let test_tile_validation () =
  let nest = Tiling_kernels.Kernels.mm 7 in
  List.iter
    (fun tiles ->
      try
        ignore (Transform.tile nest tiles);
        Alcotest.fail "invalid tile vector accepted"
      with Invalid_argument _ -> ())
    [ [| 0; 1; 1 |]; [| 8; 1; 1 |]; [| 1; 1 |] ];
  (* tiling twice is rejected: ctrl loops are not unit-step ranges *)
  let tiled = Transform.tile nest [| 2; 2; 2 |] in
  try
    ignore (Transform.tile tiled [| 1; 1; 1; 1; 1; 1 |]);
    Alcotest.fail "re-tiling accepted"
  with Invalid_argument _ -> ()

let test_tile_spans () =
  let nest = Tiling_kernels.Kernels.jacobi3d 10 in
  Alcotest.(check (array int)) "spans" [| 8; 8; 8 |] (Transform.tile_spans nest)

let test_strip_mine () =
  let nest = Tiling_kernels.Kernels.mm 6 in
  let sm = Transform.strip_mine nest ~loop:1 ~tile:4 in
  Alcotest.(check int) "depth + 1" 4 (Nest.depth sm);
  Alcotest.(check (list int)) "addresses preserved" (address_multiset nest)
    (address_multiset sm);
  Alcotest.(check (array string)) "names" [| "i"; "jj"; "j"; "k" |]
    (Nest.var_names sm)

let test_interchange () =
  let nest = Tiling_kernels.Kernels.mm 6 in
  let sw = Transform.interchange nest [| 2; 0; 1 |] in
  Alcotest.(check (array string)) "permuted names" [| "k"; "i"; "j" |]
    (Nest.var_names sw);
  Alcotest.(check (list int)) "addresses preserved" (address_multiset nest)
    (address_multiset sw);
  (* identity permutation round-trips the traversal order too *)
  let id = Transform.interchange nest [| 0; 1; 2 |] in
  let order nest =
    let acc = ref [] in
    Tiling_trace.Gen.iter nest (fun ev -> acc := ev.Tiling_trace.Gen.addr :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "identity keeps order" (order nest) (order id)

let test_interchange_validation () =
  let nest = Tiling_kernels.Kernels.mm 6 in
  (try
     ignore (Transform.interchange nest [| 0; 0; 1 |]);
     Alcotest.fail "non-permutation accepted"
   with Invalid_argument _ -> ());
  let tiled = Transform.tile nest [| 2; 2; 2 |] in
  (* moving an element loop before its control loop must fail, with the
     typed error naming the transform *)
  try
    ignore (Transform.interchange tiled [| 3; 0; 1; 2; 4; 5 |]);
    Alcotest.fail "elem before ctrl accepted"
  with Transform.Illegal { transform = "interchange"; _ } -> ()

let test_interchange_tiled_ok () =
  (* The canonical tiled order (all ctrl, all elem) can be legally permuted
     as long as ctrl stays before its elem. *)
  let nest = Tiling_kernels.Kernels.mm 6 in
  let tiled = Transform.tile nest [| 2; 3; 2 |] in
  let sw = Transform.interchange tiled [| 1; 0; 2; 3; 4; 5 |] in
  Alcotest.(check (list int)) "addresses preserved" (address_multiset tiled)
    (address_multiset sw)

let test_padding_roundtrip () =
  let nest = Tiling_kernels.Kernels.mm 6 in
  let before = address_multiset nest in
  let bases_before =
    List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest.Nest.arrays
  in
  let pad =
    { Transform.inter = [| 32; 0; 64 |]; intra = [| 2; 0; 1 |] }
  in
  Transform.apply_padding nest pad;
  let during = address_multiset nest in
  Alcotest.(check bool) "padding changes addresses" true (before <> during);
  Alcotest.(check int) "first base shifted by inter gap" 32
    (List.hd (List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest.Nest.arrays));
  Transform.clear_padding nest;
  Alcotest.(check (list int)) "addresses restored" before (address_multiset nest);
  Alcotest.(check (list int)) "bases restored" bases_before
    (List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest.Nest.arrays)

let test_padding_arity_checked () =
  let nest = Tiling_kernels.Kernels.mm 6 in
  try
    Transform.apply_padding nest { Transform.inter = [| 0 |]; intra = [| 0 |] };
    Alcotest.fail "wrong arity accepted"
  with Invalid_argument _ -> ()

let prop_tile_preserves_multiset =
  QCheck.Test.make ~name:"random tiles preserve the address multiset" ~count:40
    QCheck.(triple (int_range 1 8) (int_range 1 8) (int_range 1 8))
    (fun (t1, t2, t3) ->
      let nest = Tiling_kernels.Kernels.mm 8 in
      address_multiset nest = address_multiset (Transform.tile nest [| t1; t2; t3 |]))

let prop_tile_compulsory_invariant =
  (* Section 3.1: the number of compulsory misses is invariant under
     tiling (simulator ground truth). *)
  QCheck.Test.make ~name:"compulsory misses invariant under tiling" ~count:15
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (t1, t2) ->
      let nest = Tiling_kernels.Kernels.t2d 8 in
      let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
      let c nest =
        (Tiling_trace.Run.simulate nest cache).Tiling_trace.Run.total
          .Tiling_cache.Sim.compulsory
      in
      c nest = c (Transform.tile nest [| t1; t2 |]))

let suite =
  [
    Alcotest.test_case "tile preserves addresses" `Quick test_tile_preserves_addresses;
    Alcotest.test_case "tile validation" `Quick test_tile_validation;
    Alcotest.test_case "tile spans" `Quick test_tile_spans;
    Alcotest.test_case "strip mine" `Quick test_strip_mine;
    Alcotest.test_case "interchange" `Quick test_interchange;
    Alcotest.test_case "interchange validation" `Quick test_interchange_validation;
    Alcotest.test_case "interchange tiled" `Quick test_interchange_tiled_ok;
    Alcotest.test_case "padding roundtrip" `Quick test_padding_roundtrip;
    Alcotest.test_case "padding arity" `Quick test_padding_arity_checked;
    qcheck prop_tile_preserves_multiset;
    qcheck prop_tile_compulsory_invariant;
  ]
