let () =
  (* Re-entrant hook for the fleet suite's two-process store torture
     test: with this variable set, the binary is one raw store writer,
     not the test runner. *)
  match Sys.getenv_opt "TILING_STORE_TORTURE" with
  | Some spec -> Test_fleet.store_torture_child spec
  | None ->
  Alcotest.run "tiling"
    [
      ("intmath", Test_intmath.suite);
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("residue_set", Test_residue.suite);
      ("affine", Test_affine.suite);
      ("array_decl", Test_array_decl.suite);
      ("nest", Test_nest.suite);
      ("dsl", Test_dsl.suite);
      ("transform", Test_transform.suite);
      ("cache", Test_cache.suite);
      ("trace", Test_trace.suite);
      ("reuse", Test_reuse.suite);
      ("box", Test_box.suite);
      ("path", Test_path.suite);
      ("engine", Test_engine.suite);
      ("estimator", Test_estimator.suite);
      ("equations", Test_equations.suite);
      ("encoding", Test_encoding.suite);
      ("ga", Test_ga.suite);
      ("sample", Test_sample.suite);
      ("search", Test_search.suite);
      ("tiler", Test_tiler.suite);
      ("padder", Test_padder.suite);
      ("baselines", Test_baselines.suite);
      ("kernels", Test_kernels.suite);
      ("random_kernels", Test_random_kernels.suite);
      ("polyhedra", Test_polyhedra.suite);
      ("symbolic", Test_symbolic.suite);
      ("closed_form", Test_closed_form.suite);
      ("codegen", Test_codegen.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("order", Test_order.suite);
      ("par", Test_par.suite);
      ("amat", Test_amat.suite);
      ("obs", Test_obs.suite);
      ("fuzz", Test_fuzz.suite);
      ("server", Test_server.suite);
      ("fleet", Test_fleet.suite);
    ]
