let () =
  Alcotest.run "tiling"
    [
      ("intmath", Test_intmath.suite);
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("residue_set", Test_residue.suite);
      ("affine", Test_affine.suite);
      ("array_decl", Test_array_decl.suite);
      ("nest", Test_nest.suite);
      ("dsl", Test_dsl.suite);
      ("transform", Test_transform.suite);
      ("cache", Test_cache.suite);
      ("trace", Test_trace.suite);
      ("reuse", Test_reuse.suite);
      ("box", Test_box.suite);
      ("path", Test_path.suite);
      ("engine", Test_engine.suite);
      ("estimator", Test_estimator.suite);
      ("equations", Test_equations.suite);
      ("encoding", Test_encoding.suite);
      ("ga", Test_ga.suite);
      ("sample", Test_sample.suite);
      ("search", Test_search.suite);
      ("tiler", Test_tiler.suite);
      ("padder", Test_padder.suite);
      ("baselines", Test_baselines.suite);
      ("kernels", Test_kernels.suite);
      ("random_kernels", Test_random_kernels.suite);
      ("polyhedra", Test_polyhedra.suite);
      ("symbolic", Test_symbolic.suite);
      ("codegen", Test_codegen.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("order", Test_order.suite);
      ("par", Test_par.suite);
      ("amat", Test_amat.suite);
      ("obs", Test_obs.suite);
    ]
