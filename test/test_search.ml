(* The unified evaluation layer: backends, the shared memo service, and
   domain-count invariance of every search built on it. *)

open Tiling_search

let small_cache = Tiling_cache.Config.make ~size:256 ~line:32 ()

let test_backend_of_string () =
  List.iter
    (fun (b : Backend.t) ->
      match Backend.of_string b.Backend.name with
      | Ok b' ->
          Alcotest.(check string) "round-trip" b.Backend.name b'.Backend.name
      | Error m -> Alcotest.failf "lookup of %s failed: %s" b.Backend.name m)
    Backend.all;
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (match Backend.of_string "nope" with
  | Ok _ -> Alcotest.fail "unknown backend accepted"
  | Error m ->
      Alcotest.(check bool) "error lists names" true
        (List.for_all (contains m) Backend.names));
  Alcotest.(check string) "default is the paper's sampler" "cme-sample"
    Backend.default.Backend.name

let test_sim_agrees_with_exact_cme () =
  (* Satellite: the trace-driven simulator and the exact CME enumeration
     must assign identical replacement-miss costs to small candidates —
     the cross-validation that makes `--backend sim` a trustworthy
     oracle. *)
  let base = Tiling_kernels.Kernels.t2d 16 in
  List.iter
    (fun tiles ->
      let nest = Tiling_ir.Transform.tile base tiles in
      let s = Backend.(sim.cost) small_cache nest ~points:[||] in
      let e = Backend.(cme_exact.cost) small_cache nest ~points:[||] in
      Alcotest.(check (float 0.))
        (Fmt.str "tiles [%a]" Fmt.(array ~sep:(any ",") int) tiles)
        e s)
    [ [| 1; 1 |]; [| 5; 4 |]; [| 16; 16 |]; [| 7; 3 |]; [| 2; 13 |] ]

let test_eval_memo_and_dedup () =
  let nest = Tiling_kernels.Kernels.t2d 16 in
  let sample = Tiling_core.Sample.create ~n:16 ~seed:11 nest in
  let prepared = ref 0 in
  let eval =
    Eval.create ~cache:small_cache
      ~prepare:(fun tiles ->
        incr prepared;
        ( Tiling_ir.Transform.tile nest tiles,
          Tiling_core.Sample.embed sample ~tiles ))
      ()
  in
  let batch = [| [| 4; 4 |]; [| 2; 8 |]; [| 4; 4 |]; [| 2; 8 |]; [| 4; 4 |] |] in
  let costs = Eval.evaluate_all eval batch in
  Alcotest.(check int) "one backend call per distinct candidate" 2 !prepared;
  Alcotest.(check int) "fresh" 2 (Eval.fresh eval);
  Alcotest.(check int) "distinct" 2 (Eval.distinct eval);
  Alcotest.(check int) "duplicates were memo hits" 3 (Eval.hits eval);
  Alcotest.(check (float 0.)) "duplicates share values" costs.(0) costs.(2);
  Alcotest.(check (float 0.)) "duplicates share values" costs.(1) costs.(3);
  (* objective agrees with evaluate_all and hits the memo. *)
  Alcotest.(check (float 0.)) "objective = batch value" costs.(0)
    (Eval.objective eval [| 4; 4 |]);
  Alcotest.(check int) "no extra backend call" 2 (Eval.fresh eval)

let test_restart_seed_is_stable () =
  (* The per-restart seed derivation is load-bearing for reproducibility:
     pin it. *)
  Alcotest.(check int) "restart 0" (42 lxor 0x6A5)
    (Driver.restart_seed ~seed:42 ~salt:0x6A5 0);
  Alcotest.(check int) "restart 2"
    (42 lxor 0x6A5 lxor (2 * 0x5DEECE66))
    (Driver.restart_seed ~seed:42 ~salt:0x6A5 2)

let fast_tiler_opts seed =
  {
    Tiling_core.Tiler.default_opts with
    ga =
      {
        Tiling_ga.Engine.default_params with
        Tiling_ga.Engine.min_generations = 6;
        max_generations = 8;
      };
    seed;
    sample_points = Some 48;
    restarts = 2;
  }

let test_order_domains_equivalence () =
  (* Same seed, domains 1 vs 4: the order search must be byte-identical. *)
  let nest = Tiling_kernels.Kernels.t2d 60 in
  let cache = Tiling_cache.Config.make ~size:2048 ~line:32 () in
  let run domains =
    let opts = { (fast_tiler_opts 13) with domains } in
    Tiling_core.Tiler.optimize_with_order ~opts nest cache
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check (array int)) "order" a.Tiling_core.Tiler.order
    b.Tiling_core.Tiler.order;
  Alcotest.(check (array int)) "tiles" a.Tiling_core.Tiler.otiles
    b.Tiling_core.Tiler.otiles;
  Alcotest.(check (float 0.)) "objective"
    a.Tiling_core.Tiler.oga.Tiling_ga.Engine.best_objective
    b.Tiling_core.Tiler.oga.Tiling_ga.Engine.best_objective

let test_joint_domains_equivalence () =
  (* Same seed, domains 1 vs 4: the joint pad+tile GA must be
     byte-identical (padding candidates clone the nest, so parallel
     preparation is safe). *)
  let nest = Tiling_kernels.Kernels.t2d 40 in
  let cache = Tiling_cache.Config.make ~size:1024 ~line:32 () in
  let run domains =
    let topts = { (fast_tiler_opts 17) with domains } in
    let popts =
      { Tiling_core.Padder.default_opts with seed = 17; max_intra = 4; max_inter = 4 }
    in
    Tiling_core.Optimizer.pad_and_tile ~topts ~popts nest cache
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check (array int)) "tiles" a.Tiling_core.Optimizer.tiles
    b.Tiling_core.Optimizer.tiles;
  Alcotest.(check (array int)) "intra padding"
    a.Tiling_core.Optimizer.padding.Tiling_ir.Transform.intra
    b.Tiling_core.Optimizer.padding.Tiling_ir.Transform.intra;
  Alcotest.(check (array int)) "inter padding"
    a.Tiling_core.Optimizer.padding.Tiling_ir.Transform.inter
    b.Tiling_core.Optimizer.padding.Tiling_ir.Transform.inter;
  Alcotest.(check (float 0.)) "objective"
    a.Tiling_core.Optimizer.ga.Tiling_ga.Engine.best_objective
    b.Tiling_core.Optimizer.ga.Tiling_ga.Engine.best_objective

let test_sim_backend_search () =
  (* A full GA search driven by the simulator backend finds tiles no worse
     than untiled, and its objective matches the backend's own cost for the
     chosen tiles. *)
  let nest = Tiling_kernels.Kernels.t2d 16 in
  let opts =
    { (fast_tiler_opts 5) with restarts = 1; backend = Backend.sim }
  in
  let o = Tiling_core.Tiler.optimize ~opts nest small_cache in
  let spans = Tiling_ir.Transform.tile_spans nest in
  Array.iteri
    (fun l t ->
      if t < 1 || t > spans.(l) then Alcotest.failf "invalid tile %d" t)
    o.Tiling_core.Tiler.tiles;
  let cost =
    Backend.(sim.cost) small_cache
      (Tiling_ir.Transform.tile nest o.Tiling_core.Tiler.tiles)
      ~points:[||]
  in
  Alcotest.(check (float 0.)) "objective is the sim cost" cost
    o.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective;
  let untiled = Backend.(sim.cost) small_cache nest ~points:[||] in
  Alcotest.(check bool) "no worse than untiled" true
    (o.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective <= untiled)

let test_exact_and_sim_backends_search_identically () =
  (* Because the two backends assign equal costs on this kernel, the whole
     search trajectory — every selection decision — must coincide. *)
  let nest = Tiling_kernels.Kernels.t2d 16 in
  let run backend =
    let opts = { (fast_tiler_opts 23) with restarts = 1; backend } in
    Tiling_core.Tiler.optimize ~opts nest small_cache
  in
  let e = run Backend.cme_exact and s = run Backend.sim in
  Alcotest.(check (array int)) "same tiles" e.Tiling_core.Tiler.tiles
    s.Tiling_core.Tiler.tiles;
  Alcotest.(check (float 0.)) "same objective"
    e.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective
    s.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective

let test_triangular_sim_agrees_with_exact_cme () =
  (* The affine generalization's acceptance gate: on the non-rectangular
     kernels the exact CME enumeration must reproduce the simulator's cost
     bit for bit, untiled and tiled, at more than one geometry (the reuse
     structure changes completely between direct-mapped and 2-way). *)
  let geometries =
    [
      Tiling_cache.Config.make ~size:512 ~line:32 ();
      Tiling_cache.Config.make ~size:1024 ~line:32 ~assoc:2 ();
    ]
  in
  List.iter
    (fun (name, build) ->
      let base = build 10 in
      List.iter
        (fun cache ->
          List.iter
            (fun tiles ->
              let nest =
                match tiles with
                | None -> base
                | Some t -> Tiling_ir.Transform.tile base t
              in
              let s = Backend.(sim.cost) cache nest ~points:[||] in
              let e = Backend.(cme_exact.cost) cache nest ~points:[||] in
              Alcotest.(check (float 0.))
                (Fmt.str "%s %s on %a" name
                   (match tiles with
                   | None -> "untiled"
                   | Some t -> Fmt.str "tiles [%a]" Fmt.(array ~sep:(any ",") int) t)
                   Tiling_cache.Config.pp cache)
                e s)
            [ None; Some [| 4; 4; 4 |]; Some [| 3; 5; 2 |] ])
        geometries)
    [
      ("lu", Tiling_kernels.Kernels.lu);
      ("cholesky", Tiling_kernels.Kernels.cholesky);
      ("syrk", Tiling_kernels.Kernels.syrk);
    ]

let suite =
  [
    Alcotest.test_case "backend lookup" `Quick test_backend_of_string;
    Alcotest.test_case "sim = exact CME on small kernel" `Quick
      test_sim_agrees_with_exact_cme;
    Alcotest.test_case "sim = exact CME on triangular kernels" `Quick
      test_triangular_sim_agrees_with_exact_cme;
    Alcotest.test_case "eval memo & batch dedup" `Quick test_eval_memo_and_dedup;
    Alcotest.test_case "restart seed derivation" `Quick test_restart_seed_is_stable;
    Alcotest.test_case "order search domain invariance" `Slow
      test_order_domains_equivalence;
    Alcotest.test_case "joint search domain invariance" `Slow
      test_joint_domains_equivalence;
    Alcotest.test_case "sim-backend GA search" `Quick test_sim_backend_search;
    Alcotest.test_case "exact and sim backends search identically" `Quick
      test_exact_and_sim_backends_search_identically;
  ]
