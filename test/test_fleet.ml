(* Fleet mode: rendezvous placement, client backoff, request keys, the
   coalescing table, scheduler-level coalescing, the shared warm tier
   under concurrent writer processes, pipelined client demux, and the
   router's coalesce/failover path against live worker daemons. *)

module Json = Tiling_obs.Json
module Netio = Tiling_util.Netio
module Protocol = Tiling_server.Protocol
module Scheduler = Tiling_server.Scheduler
module Server = Tiling_server.Server
module Store = Tiling_server.Store
module Client = Tiling_server.Client
module Memo = Tiling_search.Memo
module Rendezvous = Tiling_fleet.Rendezvous
module Backoff = Tiling_fleet.Backoff
module Key = Tiling_fleet.Key
module Coalesce = Tiling_fleet.Coalesce
module Router = Tiling_fleet.Router

let get path json =
  List.fold_left
    (fun acc key -> match acc with Some j -> Json.member key j | None -> None)
    (Some json) path

let get_int path json =
  match get path json with
  | Some (Json.Int i) -> i
  | _ -> Alcotest.failf "missing int at %s" (String.concat "." path)

let temp_path suffix =
  let f = Filename.temp_file "tiling_fleet_test" suffix in
  Sys.remove f;
  f

let mkey values = Memo.Key.of_values values

let rm_f path = try Sys.remove path with Sys_error _ -> ()

(* The store keeps a lock sidecar next to the log; tests clean up both. *)
let rm_store path =
  rm_f path;
  rm_f (path ^ ".lock")

(* ------------------------------------------------------------------ *)
(* Rendezvous hashing                                                   *)

let test_rendezvous () =
  let nodes = [ "unix:/w1.sock"; "unix:/w2.sock"; "unix:/w3.sock"; "unix:/w4.sock" ] in
  let keys =
    List.init 400 (fun i ->
        Printf.sprintf "tile {\"kernel\":\"mm\",\"n\":%d,\"seed\":%d}"
          (8 + (i mod 56)) i)
  in
  let owner ~nodes key =
    match Rendezvous.owner ~nodes ~key with
    | Some o -> o
    | None -> Alcotest.fail "no owner for a non-empty node set"
  in
  (* deterministic, and [rank] is a permutation with the owner at head *)
  List.iter
    (fun key ->
      let r = Rendezvous.rank ~nodes ~key in
      Alcotest.(check (list string))
        "rank permutes the node set" (List.sort compare nodes)
        (List.sort compare r);
      Alcotest.(check string) "owner is the head of rank" (owner ~nodes key)
        (List.hd r))
    keys;
  (* no node starves: the hash spreads keys over every member *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (n ^ " owns a share of the keys")
        true
        (List.exists (fun k -> owner ~nodes k = n) keys))
    nodes;
  (* minimal reshuffle: dropping one node re-homes only its keys, and
     each orphan lands on its (already determined) second choice *)
  let dead = "unix:/w2.sock" in
  let survivors = List.filter (fun n -> n <> dead) nodes in
  let moved = ref 0 in
  List.iter
    (fun key ->
      let before = Rendezvous.rank ~nodes ~key in
      let after = owner ~nodes:survivors key in
      if List.hd before = dead then begin
        incr moved;
        Alcotest.(check string) "orphan falls to its second choice"
          (List.nth before 1) after
      end
      else
        Alcotest.(check string) "survivor keys never move" (List.hd before)
          after)
    keys;
  Alcotest.(check bool) "the dead node owned something" true (!moved > 0);
  Alcotest.(check bool) "empty node set has no owner" true
    (Rendezvous.owner ~nodes:[] ~key:"k" = None)

(* ------------------------------------------------------------------ *)
(* Backoff                                                              *)

let test_backoff () =
  let b = Backoff.create ~base:0.5 ~cap:30. ~seed:7 () in
  (* attempt k targets base * 2^k, jittered into [0.5, 1.0] x target *)
  for k = 0 to 9 do
    let d = Backoff.next b in
    let target = Float.min 30. (0.5 *. (2. ** float_of_int k)) in
    if d < (0.5 *. target) -. 1e-9 || d > target +. 1e-9 then
      Alcotest.failf "attempt %d slept %.3fs outside [%.3f, %.3f]" k d
        (0.5 *. target) target
  done;
  Alcotest.(check int) "attempt counter advanced" 10 (Backoff.attempts b);
  (* a positive server hint replaces the schedule, still never sleeping
     under half the ask... *)
  let d = Backoff.next ~hint:4.0 b in
  Alcotest.(check bool) "hint honored within [2, 4]" true (d >= 2.0 && d <= 4.0);
  (* ...a nonsense hint is ignored (attempt 11 targets the 30s cap) *)
  let d = Backoff.next ~hint:(-1.) b in
  Alcotest.(check bool) "negative hint falls back to the schedule" true
    (d >= 15.0 && d <= 30.0);
  Backoff.reset b;
  Alcotest.(check int) "reset rewinds to attempt 0" 0 (Backoff.attempts b);
  let d = Backoff.next b in
  Alcotest.(check bool) "back to the base delay" true (d >= 0.25 && d <= 0.5)

(* ------------------------------------------------------------------ *)
(* Request keys                                                         *)

let test_keys () =
  let params order =
    Json.Obj
      (if order then
         [ ("kernel", Json.String "mm"); ("n", Json.Int 16); ("seed", Json.Int 3) ]
       else
         [ ("seed", Json.Int 3); ("n", Json.Int 16); ("kernel", Json.String "mm") ])
  in
  Alcotest.(check string) "field order never splits the shard key"
    (Key.shard_key ~meth:"tile" ~params:(params true))
    (Key.shard_key ~meth:"tile" ~params:(params false));
  Alcotest.(check bool) "field order never splits the coalesce key" true
    (Key.coalesce_key ~meth:"tile" ~params:(params true)
    = Key.coalesce_key ~meth:"tile" ~params:(params false));
  (* delivery options are invisible to placement but split coalescing *)
  let traced =
    Json.Obj
      [
        ("trace", Json.Bool true);
        ("deadline_s", Json.Float 5.);
        ("kernel", Json.String "mm");
        ("n", Json.Int 16);
        ("seed", Json.Int 3);
      ]
  in
  Alcotest.(check string) "a traced twin keeps the same owner"
    (Key.shard_key ~meth:"tile" ~params:(params true))
    (Key.shard_key ~meth:"tile" ~params:traced);
  Alcotest.(check bool) "a traced twin never shares an envelope" true
    (Key.coalesce_key ~meth:"tile" ~params:traced
    <> Key.coalesce_key ~meth:"tile" ~params:(params true));
  let progressive =
    Json.Obj
      [ ("progress", Json.Bool true); ("kernel", Json.String "mm"); ("n", Json.Int 16) ]
  in
  Alcotest.(check bool) "progress streams never coalesce" true
    (Key.coalesce_key ~meth:"tile" ~params:progressive = None);
  Alcotest.(check bool) "the method is part of the key" true
    (Key.shard_key ~meth:"tile" ~params:(params true)
    <> Key.shard_key ~meth:"pad-tile" ~params:(params true));
  (* canonicalisation sorts objects recursively, leaves list order alone *)
  let nested =
    Json.Obj
      [
        ("b", Json.Obj [ ("y", Json.Int 1); ("x", Json.Int 2) ]);
        ("a", Json.List [ Json.Int 2; Json.Int 1 ]);
      ]
  in
  Alcotest.(check string) "recursive canonicalisation"
    {|{"a":[2,1],"b":{"x":2,"y":1}}|}
    (Json.to_string (Key.canon nested))

(* ------------------------------------------------------------------ *)
(* The coalescing table                                                 *)

let test_coalesce_table () =
  let t = Coalesce.create () in
  let log = ref [] in
  let w name ~coalesced v = log := (name, coalesced, v) :: !log in
  Alcotest.(check bool) "first join leads" true
    (Coalesce.join t ~key:"k" (w "leader") = `Leader);
  Alcotest.(check bool) "second join attaches" true
    (Coalesce.join t ~key:"k" (w "w1") = `Attached);
  Alcotest.(check bool) "third join attaches" true
    (Coalesce.join t ~key:"k" (w "w2") = `Attached);
  Alcotest.(check bool) "a distinct key opens its own group" true
    (Coalesce.join t ~key:"solo" (w "solo") = `Leader);
  Alcotest.(check int) "two open groups" 2 (Coalesce.inflight t);
  Alcotest.(check int) "two waiters attached" 2 (Coalesce.waiting t);
  Alcotest.(check int) "the group of three settles together" 3
    (Coalesce.settle t ~key:"k" 42);
  Alcotest.(check (list (triple string bool int)))
    "join order, leader first, every member flagged"
    [ ("leader", true, 42); ("w1", true, 42); ("w2", true, 42) ]
    (List.rev !log);
  log := [];
  Alcotest.(check int) "a group of one settles alone" 1
    (Coalesce.settle t ~key:"solo" 7);
  Alcotest.(check (list (triple string bool int)))
    "a lone leader is not flagged"
    [ ("solo", false, 7) ]
    (List.rev !log);
  Alcotest.(check int) "settling twice is a no-op" 0 (Coalesce.settle t ~key:"k" 0);
  Alcotest.(check int) "two attach hits counted" 2 (Coalesce.hits t);
  Alcotest.(check int) "no open groups left" 0 (Coalesce.inflight t);
  Alcotest.(check int) "no waiters left" 0 (Coalesce.waiting t)

(* ------------------------------------------------------------------ *)
(* Scheduler-level coalescing                                           *)

let test_scheduler_coalescing () =
  let sched = Scheduler.create ~workers:1 ~capacity:8 () in
  let release = Atomic.make false in
  let started = Atomic.make false in
  let blocker ~cancelled:_ =
    Atomic.set started true;
    while not (Atomic.get release) do
      Thread.yield ()
    done;
    Json.Null
  in
  (match
     Scheduler.submit sched ~label:"blocker" ~work:blocker
       ~deliver:(fun ~coalesced:_ _ -> ())
       ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "blocker rejected");
  let rec await tries =
    if (not (Atomic.get started)) && tries > 0 then (
      Thread.delay 0.01;
      await (tries - 1))
  in
  await 500;
  Alcotest.(check bool) "the single worker is occupied" true (Atomic.get started);
  (* eight identical keyed requests: the first queues as the group
     leader, the other seven attach without consuming a slot *)
  let evaluations = Atomic.make 0 in
  let results = ref [] in
  let work ~cancelled:_ =
    Atomic.incr evaluations;
    Json.Int 42
  in
  let deliver who ~coalesced r =
    (* deliveries all happen on the one worker thread, in order *)
    let v = match r with Ok (Json.Int v) -> v | _ -> -1 in
    results := (who, coalesced, v) :: !results
  in
  let fp = "tile|mm|16|8192:32:1|cme-sample|7" in
  for i = 1 to 8 do
    let who = Printf.sprintf "r%d" i in
    match
      Scheduler.submit sched ~label:"tile" ~key:fp ~work ~deliver:(deliver who) ()
    with
    | Ok () -> ()
    | Error _ -> Alcotest.failf "%s rejected" who
  done;
  Alcotest.(check int) "seven waiters attached" 7 (Scheduler.waiting sched);
  Alcotest.(check int) "seven coalesce hits" 7 (Scheduler.coalesced sched);
  Alcotest.(check int) "one queue slot for the whole group" 1
    (Scheduler.depth sched);
  (* telemetry stays coherent with waiters attached: in-flight shows the
     one running job, and the backpressure hint stays in its clamp *)
  (match Scheduler.inflight sched with
  | [ (label, _, _) ] ->
      Alcotest.(check string) "only the blocker is executing" "blocker" label
  | l -> Alcotest.failf "expected 1 in-flight job, got %d" (List.length l));
  let hint = Scheduler.retry_after sched in
  Alcotest.(check bool) "retry hint sane with waiters attached" true
    (hint >= 0.1 && hint <= 60.);
  Atomic.set release true;
  Scheduler.drain sched;
  Alcotest.(check int) "one evaluation served eight requests" 1
    (Atomic.get evaluations);
  let rs = List.rev !results in
  Alcotest.(check int) "eight deliveries" 8 (List.length rs);
  Alcotest.(check (list string)) "leader first, waiters in join order"
    (List.init 8 (fun i -> Printf.sprintf "r%d" (i + 1)))
    (List.map (fun (w, _, _) -> w) rs);
  List.iter
    (fun (who, coalesced, v) ->
      Alcotest.(check bool) (who ^ " flagged coalesced") true coalesced;
      Alcotest.(check int) (who ^ " got the shared result") 42 v)
    rs;
  Alcotest.(check int) "blocker + one group leader completed" 2
    (Scheduler.completed sched);
  Alcotest.(check int) "no waiters left after delivery" 0
    (Scheduler.waiting sched)

(* ------------------------------------------------------------------ *)
(* The shared warm tier, in-process: two handles on one log             *)

let test_store_shared_log () =
  let path = temp_path ".store" in
  let open_handle ?compact_min_dead () =
    match Store.open_ ?compact_min_dead ~path () with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let a = open_handle ~compact_min_dead:2 () in
  let b = open_handle () in
  Fun.protect ~finally:(fun () -> rm_store path) @@ fun () ->
  (* a's append becomes visible to b on refresh, without b writing *)
  Store.append a ~fingerprint:"shared" (mkey [| 1 |]) 1.0;
  Store.sync a;
  Alcotest.(check (option (float 0.))) "b cannot see unflushed siblings yet"
    None
    (Store.find b ~fingerprint:"shared" (mkey [| 1 |]));
  Store.refresh b;
  Alcotest.(check (option (float 0.))) "b folds a's append on refresh"
    (Some 1.0)
    (Store.find b ~fingerprint:"shared" (mkey [| 1 |]));
  (* and the other direction *)
  Store.append b ~fingerprint:"shared" (mkey [| 2 |]) 2.0;
  Store.sync b;
  Store.refresh a;
  Alcotest.(check (option (float 0.))) "a folds b's append"
    (Some 2.0)
    (Store.find a ~fingerprint:"shared" (mkey [| 2 |]));
  (* a sibling's compaction rotates the file under b: supersede key 1
     until a's dead-record threshold trips, then make sure b both
     survives the inode swap and still sees everything *)
  Store.append a ~fingerprint:"shared" (mkey [| 1 |]) 1.5;
  Store.sync a;
  Store.append a ~fingerprint:"shared" (mkey [| 1 |]) 1.75;
  Store.sync a;
  Alcotest.(check bool) "a compacted the log" true (Store.compactions a > 0);
  Store.refresh b;
  Alcotest.(check (option (float 0.))) "b re-reads the rewritten log"
    (Some 1.75)
    (Store.find b ~fingerprint:"shared" (mkey [| 1 |]));
  Alcotest.(check (option (float 0.))) "b's own record survived the rotation"
    (Some 2.0)
    (Store.find b ~fingerprint:"shared" (mkey [| 2 |]));
  (* b keeps writing through its reopened descriptor *)
  Store.append b ~fingerprint:"shared" (mkey [| 3 |]) 3.0;
  Store.sync b;
  Store.refresh a;
  Alcotest.(check (option (float 0.))) "post-rotation appends flow back"
    (Some 3.0)
    (Store.find a ~fingerprint:"shared" (mkey [| 3 |]));
  Store.close a;
  Store.close b;
  match Store.open_ ~path () with
  | Error m -> Alcotest.fail m
  | Ok s ->
      Alcotest.(check int) "the shared log reloads clean" 0
        (Store.skipped_on_load s);
      Alcotest.(check int) "all three keys live" 3 (Store.entries s);
      Store.close s

(* ------------------------------------------------------------------ *)
(* The shared warm tier, cross-process: a two-writer torture test        *)

(* Re-entrant writer body: test/main.ml calls this (and exits) when
   TILING_STORE_TORTURE="path|id|n" is set, so each writer is a real
   separate process and the advisory file lock actually arbitrates. *)
let store_torture_child spec =
  match String.split_on_char '|' spec with
  | [ path; id; n ] -> (
      let id = int_of_string id and n = int_of_string n in
      match Store.open_ ~compact_min_dead:8 ~path () with
      | Error m ->
          prerr_endline ("torture writer: " ^ m);
          exit 1
      | Ok s ->
          let fp = Printf.sprintf "torture|w%d" id in
          for i = 0 to n - 1 do
            Store.append s ~fingerprint:fp (mkey [| id; i |]) (float_of_int i);
            if i mod 5 = id then Store.sync s
          done;
          (* supersede every key so compactions fire while the sibling
             is mid-write *)
          for i = 0 to n - 1 do
            Store.append s ~fingerprint:fp
              (mkey [| id; i |])
              (float_of_int (i + 1000));
            if i mod 3 = id then Store.sync s
          done;
          Store.close s;
          exit 0)
  | _ -> exit 2

let test_store_two_writer_processes () =
  let path = temp_path ".store" in
  let n = 40 in
  let spawn id =
    let env =
      Array.append (Unix.environment ())
        [| Printf.sprintf "TILING_STORE_TORTURE=%s|%d|%d" path id n |]
    in
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect ~finally:(fun () -> rm_store path) @@ fun () ->
  let pids = [ spawn 1; spawn 2 ] in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.fail "a writer process failed")
    pids;
  match Store.open_ ~path () with
  | Error m -> Alcotest.fail m
  | Ok s ->
      Alcotest.(check int) "no torn or interleaved lines" 0
        (Store.skipped_on_load s);
      Alcotest.(check int) "every key from both writers survived" (2 * n)
        (Store.entries s);
      for i = 0 to n - 1 do
        List.iter
          (fun id ->
            let fp = Printf.sprintf "torture|w%d" id in
            match Store.find s ~fingerprint:fp (mkey [| id; i |]) with
            | Some v when v = float_of_int (i + 1000) -> ()
            | Some v -> Alcotest.failf "w%d key %d: stale value %g" id i v
            | None -> Alcotest.failf "w%d key %d lost" id i)
          [ 1; 2 ]
      done;
      Store.close s

(* ------------------------------------------------------------------ *)
(* Daemon helpers                                                       *)

let await_socket sock =
  let rec go tries =
    if Sys.file_exists sock then ()
    else if tries = 0 then Alcotest.fail "daemon never bound its socket"
    else (
      Thread.delay 0.05;
      go (tries - 1))
  in
  go 200

let connect sock =
  match Client.connect (Netio.Unix_sock sock) with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let call_ok client ~meth ~params =
  match Client.call client ~meth ~params with
  | Error m -> Alcotest.failf "%s: transport error: %s" meth m
  | Ok envelope -> (
      match Client.result_of_response envelope with
      | Ok result -> result
      | Error e ->
          Alcotest.failf "%s: server error %s: %s" meth
            (Protocol.code_to_string e.Protocol.code)
            e.Protocol.message)

let strip_id = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "id") fields)
  | other -> other

(* The test binary lives at _build/default/test/main.exe and the CLI at
   _build/default/bin/tiler.exe; resolving relative to the executable
   works from both `dune runtest` and `dune exec` cwds. *)
let tiler_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/tiler.exe"

(* ------------------------------------------------------------------ *)
(* Pipelined client demux                                               *)

let test_client_pipelining () =
  let sock = temp_path ".sock" in
  let cfg =
    { Server.default_config with addr = Netio.Unix_sock sock; workers = 2 }
  in
  let server = Thread.create (fun () -> Server.run cfg) () in
  await_socket sock;
  let client = connect sock in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      Thread.join server)
  @@ fun () ->
  (* a slow tile and a quick stats share one connection: the stats
     submitter must get its (out-of-order) envelope while the tile
     caller is parked on the same socket *)
  let tile_done = Atomic.make false in
  let tile_result = ref None in
  let tile_thread =
    Thread.create
      (fun () ->
        tile_result :=
          Some
            (Client.call client ~meth:"tile"
               ~params:
                 [
                   ("kernel", Json.String "mm");
                   ("n", Json.Int 24);
                   ("seed", Json.Int 41);
                   ("deadline_s", Json.Float 0.8);
                 ]);
        Atomic.set tile_done true)
      ()
  in
  Thread.delay 0.15;
  let stats = call_ok client ~meth:"stats" ~params:[] in
  Alcotest.(check bool) "stats overtook the slow tile on one socket" true
    (not (Atomic.get tile_done));
  Alcotest.(check bool) "the stats envelope routed to its submitter" true
    (get [ "queue"; "capacity" ] stats <> None);
  Thread.join tile_thread;
  (match !tile_result with
  | Some (Ok envelope) -> (
      match Client.result_of_response envelope with
      | Ok _ -> ()
      | Error { Protocol.code = Protocol.Deadline_exceeded; _ } -> ()
      | Error e -> Alcotest.failf "tile failed oddly: %s" e.Protocol.message)
  | Some (Error m) -> Alcotest.failf "tile transport error: %s" m
  | None -> Alcotest.fail "tile never delivered");
  ignore (call_ok client ~meth:"shutdown" ~params:[])

(* ------------------------------------------------------------------ *)
(* Eight identical requests, one daemon, one evaluation                 *)

let test_daemon_coalescing_e2e () =
  let sock = temp_path ".sock" and store = temp_path ".store" in
  let cfg =
    {
      Server.default_config with
      addr = Netio.Unix_sock sock;
      store_path = Some store;
      workers = 1;
    }
  in
  let server = Thread.create (fun () -> Server.run cfg) () in
  await_socket sock;
  let client = connect sock in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      Thread.join server;
      rm_store store)
  @@ fun () ->
  (* occupy the single worker so the identical burst below overlaps the
     same in-flight window deterministically *)
  let blocker =
    Thread.create
      (fun () ->
        ignore
          (Client.call client ~meth:"tile"
             ~params:
               [
                 ("kernel", Json.String "mm");
                 ("n", Json.Int 16);
                 ("seed", Json.Int 99);
                 ("deadline_s", Json.Float 1.0);
               ]))
      ()
  in
  let rec await_busy tries =
    if tries = 0 then Alcotest.fail "blocker never started running";
    let stats = call_ok client ~meth:"stats" ~params:[] in
    match get [ "inflight" ] stats with
    | Some (Json.List (_ :: _)) -> ()
    | _ ->
        Thread.delay 0.02;
        await_busy (tries - 1)
  in
  await_busy 200;
  let params =
    [ ("kernel", Json.String "mm"); ("n", Json.Int 12); ("seed", Json.Int 11) ]
  in
  let results = Array.make 8 None in
  let threads =
    List.init 8 (fun i ->
        Thread.create (fun i -> results.(i) <- Some (Client.call client ~meth:"tile" ~params)) i)
  in
  List.iter Thread.join threads;
  let envelopes =
    Array.to_list results
    |> List.map (function
         | Some (Ok e) -> e
         | Some (Error m) -> Alcotest.failf "burst transport error: %s" m
         | None -> Alcotest.fail "a burst request never returned")
  in
  List.iter
    (fun e ->
      (match Client.result_of_response e with
      | Ok _ -> ()
      | Error err ->
          Alcotest.failf "burst server error: %s" err.Protocol.message);
      Alcotest.(check bool) "every group member is flagged coalesced" true
        (Json.member "coalesced" e = Some (Json.Bool true)))
    envelopes;
  (match envelopes with
  | first :: rest ->
      let bytes e = Json.to_string (strip_id e) in
      List.iter
        (fun e ->
          Alcotest.(check string) "byte-identical modulo request id"
            (bytes first) (bytes e))
        rest
  | [] -> assert false);
  Thread.join blocker;
  let stats = call_ok client ~meth:"stats" ~params:[] in
  Alcotest.(check int) "blocker + exactly one shared evaluation" 2
    (get_int [ "requests"; "completed" ] stats);
  Alcotest.(check int) "seven requests coalesced" 7
    (get_int [ "requests"; "coalesced" ] stats);
  Alcotest.(check int) "no waiters left attached" 0
    (get_int [ "requests"; "waiting" ] stats);
  ignore (call_ok client ~meth:"shutdown" ~params:[])

(* ------------------------------------------------------------------ *)
(* Router end-to-end: coalescing, crash failover, drain                 *)

let spawn_worker ~sock ~store =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close null) @@ fun () ->
  Unix.create_process tiler_exe
    [|
      tiler_exe; "serve";
      "--socket"; "unix:" ^ sock;
      "--store"; store;
      "--workers"; "2";
      "--queue"; "32";
    |]
    Unix.stdin null null

let test_router_e2e () =
  let w1 = temp_path ".w1.sock"
  and w2 = temp_path ".w2.sock"
  and rsock = temp_path ".router.sock"
  and store = temp_path ".store" in
  let pid1 = spawn_worker ~sock:w1 ~store in
  let pid2 = spawn_worker ~sock:w2 ~store in
  await_socket w1;
  await_socket w2;
  let router_result = ref (Ok ()) in
  let router =
    Thread.create
      (fun () ->
        router_result :=
          Router.run
            {
              Router.addr = Netio.Unix_sock rsock;
              workers = [ Netio.Unix_sock w1; Netio.Unix_sock w2 ];
              health_period_s = 60.;
              io_timeout_s = 2.0;
              max_line_bytes = 1 lsl 20;
              metrics_addr = None;
            })
      ()
  in
  await_socket rsock;
  let client = connect rsock in
  let workers = [ (pid1, Netio.addr_to_string (Netio.Unix_sock w1));
                  (pid2, Netio.addr_to_string (Netio.Unix_sock w2)) ] in
  let owner_of params =
    let skey = Key.shard_key ~meth:"tile" ~params:(Json.Obj params) in
    match Rendezvous.owner ~nodes:(List.map snd workers) ~key:skey with
    | Some o -> o
    | None -> assert false
  in
  let tile_params seed n =
    [ ("kernel", Json.String "mm"); ("n", Json.Int n); ("seed", Json.Int seed) ]
  in
  let reap pid = ignore (Unix.waitpid [] pid) in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      (try Unix.kill pid1 Sys.sigkill with Unix.Unix_error _ -> ());
      (try Unix.kill pid2 Sys.sigkill with Unix.Unix_error _ -> ());
      (try reap pid1 with Unix.Unix_error _ -> ());
      (try reap pid2 with Unix.Unix_error _ -> ());
      Thread.join router;
      rm_store store;
      List.iter rm_f [ w1; w2; rsock ])
  @@ fun () ->
  (* a plain forward answers through whichever worker owns the key *)
  let first = call_ok client ~meth:"tile" ~params:(tile_params 21 12) in
  Alcotest.(check bool) "forwarded tile carries tiles" true
    (get [ "outcome"; "tiles" ] first <> None);
  (* duplicate concurrent requests coalesce at the router: one forward,
     every sharing member flagged *)
  let params = tile_params 22 12 in
  let results = Array.make 4 None in
  let threads =
    List.init 4 (fun i ->
        Thread.create (fun i -> results.(i) <- Some (Client.call client ~meth:"tile" ~params)) i)
  in
  List.iter Thread.join threads;
  let envelopes =
    Array.to_list results
    |> List.map (function
         | Some (Ok e) -> e
         | Some (Error m) -> Alcotest.failf "coalesce burst transport: %s" m
         | None -> Alcotest.fail "a coalesced request never returned")
  in
  let tiles e =
    match Client.result_of_response e with
    | Ok r -> Json.to_string (Option.value (get [ "outcome"; "tiles" ] r) ~default:Json.Null)
    | Error err -> Alcotest.failf "coalesce burst server error: %s" err.Protocol.message
  in
  (match envelopes with
  | first :: rest ->
      List.iter
        (fun e ->
          Alcotest.(check string) "all four answers agree" (tiles first) (tiles e))
        rest
  | [] -> assert false);
  let flagged =
    List.length
      (List.filter
         (fun e -> Json.member "coalesced" e = Some (Json.Bool true))
         envelopes)
  in
  Alcotest.(check bool) "at least one group shared a forward" true (flagged >= 2);
  let stats = call_ok client ~meth:"stats" ~params:[] in
  Alcotest.(check string) "the router answers stats itself" "router"
    (match get [ "role" ] stats with
    | Some (Json.String r) -> r
    | _ -> "?");
  Alcotest.(check bool) "coalesce hits recorded" true
    (get_int [ "requests"; "coalesced" ] stats >= 1);
  (* kill a worker mid-request: the router must re-answer from the
     survivor with no client-visible error *)
  let mid_params = tile_params 23 16 in
  let victim_name = owner_of mid_params in
  let victim_pid = fst (List.find (fun (_, n) -> n = victim_name) workers) in
  let mid_result = ref None in
  let mid =
    Thread.create
      (fun () -> mid_result := Some (Client.call client ~meth:"tile" ~params:mid_params))
      ()
  in
  Thread.delay 0.3;
  Unix.kill victim_pid Sys.sigkill;
  reap victim_pid;
  Thread.join mid;
  (match !mid_result with
  | Some (Ok e) -> (
      match Client.result_of_response e with
      | Ok _ -> ()
      | Error err ->
          Alcotest.failf "mid-flight kill leaked an error: %s" err.Protocol.message)
  | Some (Error m) -> Alcotest.failf "mid-flight kill broke transport: %s" m
  | None -> Alcotest.fail "mid-flight request never returned");
  (* a key owned by the dead worker fails over to the survivor *)
  let rec owned_by_victim seed =
    if seed > 400 then Alcotest.fail "no seed owned by the dead worker"
    else if owner_of (tile_params seed 12) = victim_name then seed
    else owned_by_victim (seed + 1)
  in
  let seed = owned_by_victim 100 in
  let r = call_ok client ~meth:"tile" ~params:(tile_params seed 12) in
  Alcotest.(check bool) "the survivor answered the orphaned key" true
    (get [ "outcome"; "tiles" ] r <> None);
  let stats = call_ok client ~meth:"stats" ~params:[] in
  Alcotest.(check bool) "the failover was a retry, not an error" true
    (get_int [ "requests"; "retried" ] stats >= 1);
  Alcotest.(check int) "no request exhausted the fleet" 0
    (get_int [ "requests"; "failed" ] stats);
  (* clean drain: wire shutdown stops the router; SIGTERM drains the
     surviving worker to exit 0 *)
  ignore (call_ok client ~meth:"shutdown" ~params:[]);
  Thread.join router;
  (match !router_result with
  | Ok () -> ()
  | Error m -> Alcotest.failf "router exited with: %s" m);
  Alcotest.(check bool) "router socket unlinked on drain" false
    (Sys.file_exists rsock);
  let survivor_pid = if victim_pid = pid1 then pid2 else pid1 in
  Unix.kill survivor_pid Sys.sigterm;
  match Unix.waitpid [] survivor_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "surviving worker did not drain cleanly"

(* ------------------------------------------------------------------ *)
(* tiler request --retries against a saturated daemon                   *)

let test_cli_request_retries () =
  let sock = temp_path ".sock" in
  let cfg =
    {
      Server.default_config with
      addr = Netio.Unix_sock sock;
      workers = 1;
      capacity = 1;
    }
  in
  let server = Thread.create (fun () -> Server.run cfg) () in
  await_socket sock;
  let client = connect sock in
  let blockers = ref [] in
  Fun.protect
    ~finally:(fun () ->
      (* shutdown here, not in the body: an assertion failure above must
         still drain the daemon or [Thread.join server] never returns *)
      (try ignore (Client.call client ~meth:"shutdown" ~params:[])
       with _ -> ());
      List.iter Thread.join !blockers;
      Client.close client;
      Thread.join server)
  @@ fun () ->
  let blocker seed =
    Thread.create
      (fun () ->
        ignore
          (Client.call client ~meth:"tile"
             ~params:
               [
                 ("kernel", Json.String "mm");
                 ("n", Json.Int 24);
                 ("seed", Json.Int seed);
                 ("deadline_s", Json.Float 2.0);
               ]))
      ()
  in
  (* one blocker on the worker, one in the single queue slot *)
  let b1 = blocker 31 in
  blockers := [ b1 ];
  let rec await_running tries =
    if tries = 0 then Alcotest.fail "first blocker never started";
    let stats = call_ok client ~meth:"stats" ~params:[] in
    match get [ "inflight" ] stats with
    | Some (Json.List (_ :: _)) -> ()
    | _ ->
        Thread.delay 0.02;
        await_running (tries - 1)
  in
  await_running 200;
  let b2 = blocker 32 in
  blockers := b2 :: !blockers;
  let rec await_queued tries =
    if tries = 0 then Alcotest.fail "second blocker never queued";
    let stats = call_ok client ~meth:"stats" ~params:[] in
    if get_int [ "queue"; "depth" ] stats < 1 then (
      Thread.delay 0.02;
      await_queued (tries - 1))
  in
  await_queued 200;
  (* the daemon is saturated: a --retries client must back off on the
     overloaded reject (printing its retry line) and still exit 0 once
     the blockers expire *)
  let errfile = temp_path ".stderr" in
  let out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let err =
    Unix.openfile errfile [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let pid =
    Unix.create_process tiler_exe
      [|
        tiler_exe; "request"; "tile";
        "--kernel"; "mm";
        "--size"; "8";
        "--seed"; "34";
        "--retries"; "8";
        "--socket"; "unix:" ^ sock;
      |]
      Unix.stdin out err
  in
  Unix.close out;
  Unix.close err;
  let _, status = Unix.waitpid [] pid in
  let stderr_text =
    let ic = open_in_bin errfile in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove errfile;
    text
  in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c ->
      Alcotest.failf "request --retries exited %d; stderr:\n%s" c stderr_text
  | _ -> Alcotest.failf "request --retries killed; stderr:\n%s" stderr_text);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "the client backed off at least once" true
    (contains stderr_text "retrying")

let suite =
  [
    Alcotest.test_case "rendezvous: deterministic, minimal reshuffle" `Quick
      test_rendezvous;
    Alcotest.test_case "backoff: schedule, hints, jitter bounds" `Quick
      test_backoff;
    Alcotest.test_case "request keys: canonical, delivery-option aware" `Quick
      test_keys;
    Alcotest.test_case "coalesce table: groups, order, flags" `Quick
      test_coalesce_table;
    Alcotest.test_case "scheduler coalesces identical in-flight requests"
      `Quick test_scheduler_coalescing;
    Alcotest.test_case "store: two handles share one log" `Quick
      test_store_shared_log;
    Alcotest.test_case "store: two writer processes, locked log" `Quick
      test_store_two_writer_processes;
    Alcotest.test_case "client demuxes pipelined out-of-order replies" `Quick
      test_client_pipelining;
    Alcotest.test_case "daemon: 8 identical requests, 1 evaluation" `Quick
      test_daemon_coalescing_e2e;
    Alcotest.test_case "router: coalesce, kill-one-worker failover, drain"
      `Quick test_router_e2e;
    Alcotest.test_case "tiler request --retries rides out overload" `Quick
      test_cli_request_retries;
  ]
