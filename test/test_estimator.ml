open Tiling_ir
open Tiling_cme

let test_default_points () =
  Alcotest.(check int) "paper's 164" 164 (Estimator.default_points ())

let test_exact_totals () =
  let nest = Tiling_kernels.Kernels.mm 10 in
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  let r = Estimator.exact (Engine.create nest cache) in
  Alcotest.(check int) "points" 1000 r.Estimator.points;
  Alcotest.(check int) "accesses" 4000 r.Estimator.accesses;
  Alcotest.(check bool) "misses within accesses" true
    (r.Estimator.misses <= r.Estimator.accesses);
  Alcotest.(check bool) "compulsory within misses" true
    (r.Estimator.compulsory <= r.Estimator.misses);
  Alcotest.(check int) "replacement consistency"
    (r.Estimator.misses - r.Estimator.compulsory)
    (Estimator.replacement r)

let test_sample_size_default () =
  let nest = Tiling_kernels.Kernels.mm 30 in
  let cache = Tiling_cache.Config.make ~size:1024 ~line:32 () in
  let r = Estimator.sample ~seed:3 (Engine.create nest cache) in
  Alcotest.(check int) "164 points" 164 r.Estimator.points;
  Alcotest.(check int) "points * refs accesses" (164 * 4) r.Estimator.accesses

let test_sample_custom_width () =
  let nest = Tiling_kernels.Kernels.mm 30 in
  let cache = Tiling_cache.Config.make ~size:1024 ~line:32 () in
  let r = Estimator.sample ~width:0.2 ~confidence:0.9 ~seed:3 (Engine.create nest cache) in
  Alcotest.(check int) "width 0.2 needs 41 points" 41 r.Estimator.points

let test_sample_within_interval_of_exact () =
  (* With the default 90 % / 0.1-wide interval, the exact ratio should fall
     inside the sampled interval (checked on a seed where it does — the
     guarantee is probabilistic). *)
  let nest = Tiling_kernels.Kernels.mm 20 in
  let cache = Tiling_cache.Config.make ~size:1024 ~line:32 () in
  let exact = Estimator.exact (Engine.create nest cache) in
  let sample = Estimator.sample ~seed:1 (Engine.create nest cache) in
  let diff =
    abs_float
      (exact.Estimator.miss_ratio.Tiling_util.Stats.center
      -. sample.Estimator.miss_ratio.Tiling_util.Stats.center)
  in
  Alcotest.(check bool) "sampled close to exact" true
    (diff <= sample.Estimator.miss_ratio.Tiling_util.Stats.half_width +. 0.05)

let test_sample_deterministic () =
  let nest = Tiling_kernels.Kernels.t2d 50 in
  let cache = Tiling_cache.Config.dm8k in
  let r1 = Estimator.sample ~seed:9 (Engine.create nest cache) in
  let r2 = Estimator.sample ~seed:9 (Engine.create nest cache) in
  Alcotest.(check int) "same seed, same misses" r1.Estimator.misses r2.Estimator.misses;
  let r3 = Estimator.sample ~seed:10 (Engine.create nest cache) in
  Alcotest.(check bool) "estimates in the same ballpark" true
    (abs_float
       (Tiling_util.Stats.(r1.Estimator.miss_ratio.center)
       -. Tiling_util.Stats.(r3.Estimator.miss_ratio.center))
    < 0.2)

let test_sample_at_given_points () =
  let nest = Tiling_kernels.Kernels.mm 10 in
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  let pts = [| [| 1; 1; 1 |]; [| 5; 5; 5 |] |] in
  let r = Estimator.sample_at (Engine.create nest cache) pts in
  Alcotest.(check int) "two points" 2 r.Estimator.points;
  Alcotest.(check int) "eight accesses" 8 r.Estimator.accesses

let test_exact_equals_simulator_aggregate () =
  let nest = Transform.tile (Tiling_kernels.Kernels.t2d 16) [| 5; 4 |] in
  let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
  let sim = Tiling_trace.Run.simulate nest cache in
  let est = Estimator.exact (Engine.create nest cache) in
  Alcotest.(check int) "misses equal"
    sim.Tiling_trace.Run.total.Tiling_cache.Sim.misses est.Estimator.misses

let test_exact_by_region_sums_to_exact () =
  (* The regions partition the iteration space, so the per-region reports
     must sum to the whole-space census — on a triangular kernel, where the
     decomposition is nontrivial (one region per pinned outer value). *)
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  List.iter
    (fun (name, nest) ->
      let engine = Engine.create nest cache in
      let whole = Estimator.exact engine in
      let parts = Estimator.exact_by_region engine in
      let sum f = List.fold_left (fun s (_, r) -> s + f r) 0 parts in
      Alcotest.(check int) (name ^ ": points") whole.Estimator.points
        (sum (fun r -> r.Estimator.points));
      Alcotest.(check int) (name ^ ": misses") whole.Estimator.misses
        (sum (fun r -> r.Estimator.misses));
      Alcotest.(check int) (name ^ ": compulsory") whole.Estimator.compulsory
        (sum (fun r -> r.Estimator.compulsory)))
    [
      ("lu", Tiling_kernels.Kernels.lu 9);
      ("cholesky", Tiling_kernels.Kernels.cholesky 9);
      ("mm", Tiling_kernels.Kernels.mm 8);
    ]

let suite =
  [
    Alcotest.test_case "default points = 164" `Quick test_default_points;
    Alcotest.test_case "exact totals" `Quick test_exact_totals;
    Alcotest.test_case "sample size default" `Quick test_sample_size_default;
    Alcotest.test_case "sample size custom" `Quick test_sample_custom_width;
    Alcotest.test_case "sample near exact" `Quick test_sample_within_interval_of_exact;
    Alcotest.test_case "sample deterministic" `Quick test_sample_deterministic;
    Alcotest.test_case "sample at given points" `Quick test_sample_at_given_points;
    Alcotest.test_case "exact equals simulator" `Quick
      test_exact_equals_simulator_aggregate;
    Alcotest.test_case "exact-by-region sums to exact" `Quick
      test_exact_by_region_sums_to_exact;
  ]

let test_per_ref_sums () =
  let nest = Tiling_kernels.Kernels.mm 10 in
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  let r = Estimator.exact (Engine.create nest cache) in
  let sum f = Array.fold_left (fun s c -> s + f c) 0 r.Estimator.per_ref in
  Alcotest.(check int) "per-ref accesses sum" r.Estimator.accesses
    (sum (fun c -> c.Estimator.r_accesses));
  Alcotest.(check int) "per-ref misses sum" r.Estimator.misses
    (sum (fun c -> c.Estimator.r_misses));
  Alcotest.(check int) "per-ref compulsory sum" r.Estimator.compulsory
    (sum (fun c -> c.Estimator.r_compulsory))

let test_per_ref_matches_simulator () =
  let nest = Tiling_kernels.Kernels.mm 12 in
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  let est = Estimator.exact (Engine.create nest cache) in
  let sim = Tiling_trace.Run.simulate nest cache in
  Array.iteri
    (fun i (c : Estimator.ref_counts) ->
      let s = sim.Tiling_trace.Run.per_ref.(i) in
      Alcotest.(check int)
        (Printf.sprintf "ref %d misses" i)
        s.Tiling_cache.Sim.misses c.Estimator.r_misses)
    est.Estimator.per_ref

let test_fallbacks_are_per_call_deltas () =
  (* [report.fallbacks] must count only the fallbacks of that call, even
     though the engine accumulates them for its whole lifetime — and both
     [exact] and [sample_at] must agree on that convention.  A tiny
     [window_cap] forces the solver onto its sampling fallback. *)
  let nest = Transform.tile (Tiling_kernels.Kernels.mm 12) [| 5; 4; 3 |] in
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  let engine = Engine.create ~window_cap:2 nest cache in
  let r1 = Estimator.exact engine in
  Alcotest.(check bool) "window cap of 2 forces fallbacks" true
    (r1.Estimator.fallbacks > 0);
  let r2 = Estimator.exact engine in
  Alcotest.(check int) "second exact call reports the same delta"
    r1.Estimator.fallbacks r2.Estimator.fallbacks;
  let pts =
    let acc = ref [] and k = ref 0 in
    (try
       Nest.iter_points nest (fun p ->
           if !k >= 3 then raise Exit;
           incr k;
           acc := Array.copy p :: !acc)
     with Exit -> ());
    Array.of_list (List.rev !acc)
  in
  let s1 = Estimator.sample_at engine pts in
  let s2 = Estimator.sample_at engine pts in
  Alcotest.(check int) "sample_at reports a per-call delta too"
    s1.Estimator.fallbacks s2.Estimator.fallbacks;
  Alcotest.(check int) "engine accumulates the lifetime total"
    (r1.Estimator.fallbacks + r2.Estimator.fallbacks + s1.Estimator.fallbacks
   + s2.Estimator.fallbacks)
    (Engine.fallback_count engine)

let test_report_to_json_round_trips () =
  let nest = Tiling_kernels.Kernels.mm 10 in
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  let r = Estimator.exact (Engine.create nest cache) in
  let json = Estimator.to_json r in
  match Tiling_obs.Json.of_string (Tiling_obs.Json.to_string json) with
  | Error m -> Alcotest.fail ("report JSON did not reparse: " ^ m)
  | Ok doc ->
      let open Tiling_obs.Json in
      Alcotest.(check bool) "misses field" true
        (member "misses" doc = Some (Int r.Estimator.misses));
      let center =
        match Option.bind (member "miss_ratio" doc) (member "center") with
        | Some j -> to_float j
        | None -> None
      in
      Alcotest.(check (option (float 1e-12)))
        "miss ratio center survives"
        (Some r.Estimator.miss_ratio.Tiling_util.Stats.center)
        center

let suite =
  suite
  @ [
      Alcotest.test_case "per-ref sums to totals" `Quick test_per_ref_sums;
      Alcotest.test_case "per-ref matches simulator" `Quick
        test_per_ref_matches_simulator;
      Alcotest.test_case "fallbacks are per-call deltas" `Quick
        test_fallbacks_are_per_call_deltas;
      Alcotest.test_case "report JSON round-trips" `Quick
        test_report_to_json_round_trips;
    ]
