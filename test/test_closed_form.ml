(* The closed-form aggregator must be a census: identical totals to
   Estimator.exact wherever it accepts, refusal (never silent degradation)
   where its periodicity premises fail.  The backend built on it must agree
   with cme-exact and the simulator on the rectangular rotation kernels. *)

open Tiling_cme

let check_census name nest cache =
  let exact = Estimator.exact (Engine.create nest cache) in
  match Closed_form.estimate (Engine.create nest cache) with
  | Error reason ->
      Alcotest.failf "%s: closed form refused (%a)" name Closed_form.pp_reason
        reason
  | Ok r ->
      Alcotest.(check int)
        (name ^ ": points") exact.Estimator.points r.Estimator.points;
      Alcotest.(check int)
        (name ^ ": accesses") exact.Estimator.accesses r.Estimator.accesses;
      Alcotest.(check int)
        (name ^ ": misses") exact.Estimator.misses r.Estimator.misses;
      Alcotest.(check int)
        (name ^ ": compulsory") exact.Estimator.compulsory
        r.Estimator.compulsory;
      Array.iteri
        (fun i (c : Estimator.ref_counts) ->
          let c' = r.Estimator.per_ref.(i) in
          Alcotest.(check int)
            (Printf.sprintf "%s: ref %d misses" name i)
            c.Estimator.r_misses c'.Estimator.r_misses)
        exact.Estimator.per_ref

let geometries =
  [
    ("dm256", Tiling_cache.Config.make ~size:256 ~line:32 ());
    ("dm1k", Tiling_cache.Config.make ~size:1024 ~line:32 ());
  ]

let test_census_matches_exact () =
  List.iter
    (fun (cname, cache) ->
      List.iter
        (fun (kname, nest) ->
          check_census (kname ^ "/" ^ cname) nest cache)
        [
          ("mm8", Tiling_kernels.Kernels.mm 8);
          ("mm12", Tiling_kernels.Kernels.mm 12);
          ("t2d16", Tiling_kernels.Kernels.t2d 16);
          ("jacobi3d8", Tiling_kernels.Kernels.jacobi3d 8);
        ])
    geometries

let test_census_matches_exact_tiled () =
  (* Three tilings per geometry, including a ragged one: tiled nests have
     multi-entry boxes and exercise the outer-dimension memo. *)
  List.iter
    (fun (cname, cache) ->
      List.iter
        (fun tiles ->
          let nest = Tiling_ir.Transform.tile (Tiling_kernels.Kernels.mm 8) tiles in
          check_census
            (Printf.sprintf "mm8[%d,%d,%d]/%s" tiles.(0) tiles.(1) tiles.(2)
               cname)
            nest cache)
        [ [| 2; 2; 8 |]; [| 4; 8; 4 |]; [| 3; 5; 7 |] ])
    geometries

let test_census_associative () =
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 ~assoc:2 () in
  check_census "mm8/2-way" (Tiling_kernels.Kernels.mm 8) cache

let test_census_larger_than_exhaustive_window () =
  (* Size chosen so rows are long enough that the middle is genuinely
     extrapolated (n >> 2w + pi for this geometry), not just re-censused. *)
  let cache = Tiling_cache.Config.make ~size:256 ~line:16 () in
  check_census "t2d96" (Tiling_kernels.Kernels.t2d 96) cache

let test_refuses_affine () =
  (* Triangular nests carry affine-coupled bounds: the closed form must
     refuse them, which is what trips the backend's sampling fallback. *)
  let nest = Tiling_kernels.Kernels.lu 12 in
  let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
  match Closed_form.estimate (Engine.create nest cache) with
  | Error `Affine -> ()
  | Error `Budget -> Alcotest.fail "expected `Affine, got `Budget"
  | Ok _ -> Alcotest.fail "closed form accepted a triangular nest"

let test_refuses_budget () =
  let nest = Tiling_kernels.Kernels.mm 8 in
  let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
  match Closed_form.estimate ~budget:10 (Engine.create nest cache) with
  | Error `Budget -> ()
  | Error `Affine -> Alcotest.fail "expected `Budget, got `Affine"
  | Ok _ -> Alcotest.fail "budget of 10 classifications was not exhausted"

let test_backend_registered () =
  (match Tiling_search.Backend.of_string "symbolic" with
  | Ok b ->
      Alcotest.(check string) "name" "symbolic" b.Tiling_search.Backend.name
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool)
    "listed" true
    (List.mem "symbolic" Tiling_search.Backend.names)

let test_backend_matches_exact () =
  (* Rectangular rotation kernels at 2 geometries x 3 tilings: the symbolic
     backend's objective equals cme-exact's (both whole-space censuses). *)
  let symbolic = Tiling_search.Backend.symbolic in
  let exact = Tiling_search.Backend.cme_exact in
  List.iter
    (fun (_, cache) ->
      List.iter
        (fun tiles ->
          let nest =
            Tiling_ir.Transform.tile (Tiling_kernels.Kernels.t2d 16) tiles
          in
          let cs = symbolic.Tiling_search.Backend.cost cache nest ~points:[||] in
          let ce = exact.Tiling_search.Backend.cost cache nest ~points:[||] in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "t2d16[%d,%d]" tiles.(0) tiles.(1))
            ce cs)
        [ [| 4; 4 |]; [| 8; 2 |]; [| 5; 7 |] ])
    geometries

let test_backend_fallback_on_triangular () =
  (* On a triangular nest the backend must fall back to sampling (finite
     cost from the embedded sample) and bump symbolic.fallbacks. *)
  let nest = Tiling_kernels.Kernels.lu 12 in
  let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
  let points =
    Array.init 64 (fun i ->
        let rng = Tiling_util.Prng.create ~seed:(1000 + i) in
        Tiling_ir.Nest.random_point nest rng)
  in
  let fallbacks = Tiling_obs.Metrics.counter "symbolic.fallbacks" in
  Tiling_obs.Metrics.set_enabled true;
  let before = Tiling_obs.Metrics.counter_value fallbacks in
  let cost =
    Fun.protect
      ~finally:(fun () -> Tiling_obs.Metrics.set_enabled false)
      (fun () ->
        Tiling_search.Backend.symbolic.Tiling_search.Backend.cost cache nest
          ~points)
  in
  let after = Tiling_obs.Metrics.counter_value fallbacks in
  Alcotest.(check bool) "fallback counted" true (after > before);
  Alcotest.(check bool) "finite cost" true (Float.is_finite cost);
  (* Whole-space scaling: the fallback cost must be on census magnitude,
     i.e. bounded by total accesses. *)
  let total =
    float_of_int
      (Tiling_ir.Nest.trip_count nest * Array.length nest.Tiling_ir.Nest.refs)
  in
  Alcotest.(check bool) "census-scale" true (cost >= 0. && cost <= total)

let test_entry_reach_pinned () =
  (* The reach values drive window sizing (hoisted to one per-nest pass
     over the reuse vectors); pin them so a hoisting or reuse-analysis
     change that silently widens or narrows boundary windows is caught. *)
  let reaches nest =
    let engine = Engine.create nest Tiling_cache.Config.dm8k in
    let reuse = Engine.reuse_vectors engine in
    List.map
      (fun box ->
        List.map (Closed_form.entry_reach reuse) box.Box.entries)
      (Path.full_space (Engine.nest engine))
  in
  Alcotest.(check (list (list int)))
    "mm8" [ [ 7; 1; 7 ] ]
    (reaches (Tiling_kernels.Kernels.mm 8));
  Alcotest.(check (list (list int)))
    "jacobi3d8" [ [ 2; 5; 5 ] ]
    (reaches (Tiling_kernels.Kernels.jacobi3d 8));
  Alcotest.(check (list (list int)))
    "mm8 tiled [2,2,8]"
    [ [ 4; 7; 1; 1; 7 ] ]
    (reaches
       (Tiling_ir.Transform.tile (Tiling_kernels.Kernels.mm 8) [| 2; 2; 8 |]))

let test_census_dm8k_matches_exact () =
  (* Flagship geometry: at dm8k the inner-row period lcm is 1024, far past
     the extrapolation cap, so the census must degrade to an exhaustive
     (still exact) walk — per reference — without a single fallback. *)
  let cache = Tiling_cache.Config.dm8k in
  let nest = Tiling_kernels.Kernels.mm 20 in
  let fallbacks = Tiling_obs.Metrics.counter "symbolic.fallbacks" in
  Tiling_obs.Metrics.set_enabled true;
  let before = Tiling_obs.Metrics.counter_value fallbacks in
  Fun.protect
    ~finally:(fun () -> Tiling_obs.Metrics.set_enabled false)
    (fun () -> check_census "mm20/dm8k" nest cache);
  Alcotest.(check int)
    "symbolic.fallbacks unchanged" before
    (Tiling_obs.Metrics.counter_value fallbacks)

let test_census_parallel_identical () =
  (* Pool-parallel row walks must be byte-identical to the sequential
     census: every field of the report, not just the totals. *)
  let cache = Tiling_cache.Config.dm8k in
  let nest = Tiling_kernels.Kernels.mm 32 in
  let run domains =
    match Closed_form.estimate ~domains (Engine.create nest cache) with
    | Error reason ->
        Alcotest.failf "domains=%d refused (%a)" domains Closed_form.pp_reason
          reason
    | Ok r -> r
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check int) "points" seq.Estimator.points par.Estimator.points;
  Alcotest.(check int) "accesses" seq.Estimator.accesses par.Estimator.accesses;
  Alcotest.(check int) "misses" seq.Estimator.misses par.Estimator.misses;
  Alcotest.(check int)
    "compulsory" seq.Estimator.compulsory par.Estimator.compulsory;
  Alcotest.(check int)
    "fallbacks" seq.Estimator.fallbacks par.Estimator.fallbacks;
  Array.iteri
    (fun i (c : Estimator.ref_counts) ->
      let c' = par.Estimator.per_ref.(i) in
      Alcotest.(check int)
        (Printf.sprintf "ref %d misses" i)
        c.Estimator.r_misses c'.Estimator.r_misses;
      Alcotest.(check int)
        (Printf.sprintf "ref %d compulsory" i)
        c.Estimator.r_compulsory c'.Estimator.r_compulsory)
    seq.Estimator.per_ref

let suite =
  [
    Alcotest.test_case "census = exact (rect kernels)" `Slow
      test_census_matches_exact;
    Alcotest.test_case "census = exact (tiled)" `Slow
      test_census_matches_exact_tiled;
    Alcotest.test_case "census = exact (2-way)" `Slow test_census_associative;
    Alcotest.test_case "census = exact (extrapolated rows)" `Slow
      test_census_larger_than_exhaustive_window;
    Alcotest.test_case "refuses affine nests" `Quick test_refuses_affine;
    Alcotest.test_case "refuses on budget" `Quick test_refuses_budget;
    Alcotest.test_case "backend registered" `Quick test_backend_registered;
    Alcotest.test_case "backend = cme-exact on rotation" `Slow
      test_backend_matches_exact;
    Alcotest.test_case "backend falls back on triangular" `Quick
      test_backend_fallback_on_triangular;
    Alcotest.test_case "entry reach pinned" `Quick test_entry_reach_pinned;
    Alcotest.test_case "census = exact at dm8k, no fallback" `Slow
      test_census_dm8k_matches_exact;
    Alcotest.test_case "parallel census identical" `Slow
      test_census_parallel_identical;
  ]
