(* The closed-form aggregator must be a census: identical totals to
   Estimator.exact wherever it accepts, refusal (never silent degradation)
   where its periodicity premises fail.  The backend built on it must agree
   with cme-exact and the simulator on the rectangular rotation kernels. *)

open Tiling_cme

let check_census name nest cache =
  let exact = Estimator.exact (Engine.create nest cache) in
  match Closed_form.estimate (Engine.create nest cache) with
  | Error reason ->
      Alcotest.failf "%s: closed form refused (%a)" name Closed_form.pp_reason
        reason
  | Ok r ->
      Alcotest.(check int)
        (name ^ ": points") exact.Estimator.points r.Estimator.points;
      Alcotest.(check int)
        (name ^ ": accesses") exact.Estimator.accesses r.Estimator.accesses;
      Alcotest.(check int)
        (name ^ ": misses") exact.Estimator.misses r.Estimator.misses;
      Alcotest.(check int)
        (name ^ ": compulsory") exact.Estimator.compulsory
        r.Estimator.compulsory;
      Array.iteri
        (fun i (c : Estimator.ref_counts) ->
          let c' = r.Estimator.per_ref.(i) in
          Alcotest.(check int)
            (Printf.sprintf "%s: ref %d misses" name i)
            c.Estimator.r_misses c'.Estimator.r_misses)
        exact.Estimator.per_ref

let geometries =
  [
    ("dm256", Tiling_cache.Config.make ~size:256 ~line:32 ());
    ("dm1k", Tiling_cache.Config.make ~size:1024 ~line:32 ());
  ]

let test_census_matches_exact () =
  List.iter
    (fun (cname, cache) ->
      List.iter
        (fun (kname, nest) ->
          check_census (kname ^ "/" ^ cname) nest cache)
        [
          ("mm8", Tiling_kernels.Kernels.mm 8);
          ("mm12", Tiling_kernels.Kernels.mm 12);
          ("t2d16", Tiling_kernels.Kernels.t2d 16);
          ("jacobi3d8", Tiling_kernels.Kernels.jacobi3d 8);
        ])
    geometries

let test_census_matches_exact_tiled () =
  (* Three tilings per geometry, including a ragged one: tiled nests have
     multi-entry boxes and exercise the outer-dimension memo. *)
  List.iter
    (fun (cname, cache) ->
      List.iter
        (fun tiles ->
          let nest = Tiling_ir.Transform.tile (Tiling_kernels.Kernels.mm 8) tiles in
          check_census
            (Printf.sprintf "mm8[%d,%d,%d]/%s" tiles.(0) tiles.(1) tiles.(2)
               cname)
            nest cache)
        [ [| 2; 2; 8 |]; [| 4; 8; 4 |]; [| 3; 5; 7 |] ])
    geometries

let test_census_associative () =
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 ~assoc:2 () in
  check_census "mm8/2-way" (Tiling_kernels.Kernels.mm 8) cache

let test_census_larger_than_exhaustive_window () =
  (* Size chosen so rows are long enough that the middle is genuinely
     extrapolated (n >> 2w + pi for this geometry), not just re-censused. *)
  let cache = Tiling_cache.Config.make ~size:256 ~line:16 () in
  check_census "t2d96" (Tiling_kernels.Kernels.t2d 96) cache

let test_refuses_affine () =
  (* Triangular nests carry affine-coupled bounds: the closed form must
     refuse them, which is what trips the backend's sampling fallback. *)
  let nest = Tiling_kernels.Kernels.lu 12 in
  let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
  match Closed_form.estimate (Engine.create nest cache) with
  | Error `Affine -> ()
  | Error `Budget -> Alcotest.fail "expected `Affine, got `Budget"
  | Ok _ -> Alcotest.fail "closed form accepted a triangular nest"

let test_refuses_budget () =
  let nest = Tiling_kernels.Kernels.mm 8 in
  let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
  match Closed_form.estimate ~budget:10 (Engine.create nest cache) with
  | Error `Budget -> ()
  | Error `Affine -> Alcotest.fail "expected `Budget, got `Affine"
  | Ok _ -> Alcotest.fail "budget of 10 classifications was not exhausted"

let test_backend_registered () =
  (match Tiling_search.Backend.of_string "symbolic" with
  | Ok b ->
      Alcotest.(check string) "name" "symbolic" b.Tiling_search.Backend.name
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool)
    "listed" true
    (List.mem "symbolic" Tiling_search.Backend.names)

let test_backend_matches_exact () =
  (* Rectangular rotation kernels at 2 geometries x 3 tilings: the symbolic
     backend's objective equals cme-exact's (both whole-space censuses). *)
  let symbolic = Tiling_search.Backend.symbolic in
  let exact = Tiling_search.Backend.cme_exact in
  List.iter
    (fun (_, cache) ->
      List.iter
        (fun tiles ->
          let nest =
            Tiling_ir.Transform.tile (Tiling_kernels.Kernels.t2d 16) tiles
          in
          let cs = symbolic.Tiling_search.Backend.cost cache nest ~points:[||] in
          let ce = exact.Tiling_search.Backend.cost cache nest ~points:[||] in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "t2d16[%d,%d]" tiles.(0) tiles.(1))
            ce cs)
        [ [| 4; 4 |]; [| 8; 2 |]; [| 5; 7 |] ])
    geometries

let test_backend_fallback_on_triangular () =
  (* On a triangular nest the backend must fall back to sampling (finite
     cost from the embedded sample) and bump symbolic.fallbacks. *)
  let nest = Tiling_kernels.Kernels.lu 12 in
  let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
  let points =
    Array.init 64 (fun i ->
        let rng = Tiling_util.Prng.create ~seed:(1000 + i) in
        Tiling_ir.Nest.random_point nest rng)
  in
  let fallbacks = Tiling_obs.Metrics.counter "symbolic.fallbacks" in
  Tiling_obs.Metrics.set_enabled true;
  let before = Tiling_obs.Metrics.counter_value fallbacks in
  let cost =
    Fun.protect
      ~finally:(fun () -> Tiling_obs.Metrics.set_enabled false)
      (fun () ->
        Tiling_search.Backend.symbolic.Tiling_search.Backend.cost cache nest
          ~points)
  in
  let after = Tiling_obs.Metrics.counter_value fallbacks in
  Alcotest.(check bool) "fallback counted" true (after > before);
  Alcotest.(check bool) "finite cost" true (Float.is_finite cost);
  (* Whole-space scaling: the fallback cost must be on census magnitude,
     i.e. bounded by total accesses. *)
  let total =
    float_of_int
      (Tiling_ir.Nest.trip_count nest * Array.length nest.Tiling_ir.Nest.refs)
  in
  Alcotest.(check bool) "census-scale" true (cost >= 0. && cost <= total)

let suite =
  [
    Alcotest.test_case "census = exact (rect kernels)" `Slow
      test_census_matches_exact;
    Alcotest.test_case "census = exact (tiled)" `Slow
      test_census_matches_exact_tiled;
    Alcotest.test_case "census = exact (2-way)" `Slow test_census_associative;
    Alcotest.test_case "census = exact (extrapolated rows)" `Slow
      test_census_larger_than_exhaustive_window;
    Alcotest.test_case "refuses affine nests" `Quick test_refuses_affine;
    Alcotest.test_case "refuses on budget" `Quick test_refuses_budget;
    Alcotest.test_case "backend registered" `Quick test_backend_registered;
    Alcotest.test_case "backend = cme-exact on rotation" `Slow
      test_backend_matches_exact;
    Alcotest.test_case "backend falls back on triangular" `Quick
      test_backend_fallback_on_triangular;
  ]
