open Tiling_ir

let qcheck = QCheck_alcotest.to_alcotest

(* Differential validation against the trace-driven simulator: exact CME
   classification aggregated over the whole space must closely match the
   simulator's counts (they agreed exactly on every hand-checked kernel;
   we allow a tiny tolerance for residual model mismatches on random
   configurations). *)
let compare_with_sim ?(tol = 0.005) nest cache =
  let sim = Tiling_trace.Run.simulate nest cache in
  let engine = Tiling_cme.Engine.create nest cache in
  let est = Tiling_cme.Estimator.exact engine in
  let sim_miss = Tiling_cache.Sim.miss_ratio sim.Tiling_trace.Run.total in
  let sim_repl = Tiling_cache.Sim.replacement_ratio sim.Tiling_trace.Run.total in
  let cme_miss = est.Tiling_cme.Estimator.miss_ratio.Tiling_util.Stats.center in
  let cme_repl =
    est.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center
  in
  if abs_float (sim_miss -. cme_miss) > tol then
    Alcotest.failf "%s: miss ratio sim %.4f vs cme %.4f" nest.Nest.name sim_miss
      cme_miss;
  if abs_float (sim_repl -. cme_repl) > tol then
    Alcotest.failf "%s: repl ratio sim %.4f vs cme %.4f" nest.Nest.name sim_repl
      cme_repl

let cache1k = Tiling_cache.Config.make ~size:1024 ~line:32 ()

let test_mm_exact () =
  compare_with_sim ~tol:1e-9 (Tiling_kernels.Kernels.mm 16) cache1k;
  compare_with_sim ~tol:1e-9
    (Transform.tile (Tiling_kernels.Kernels.mm 16) [| 4; 4; 4 |])
    cache1k;
  compare_with_sim ~tol:1e-9
    (Transform.tile (Tiling_kernels.Kernels.mm 16) [| 16; 6; 5 |])
    cache1k

let test_t2d_exact () =
  compare_with_sim ~tol:1e-9 (Tiling_kernels.Kernels.t2d 20) cache1k;
  compare_with_sim ~tol:1e-9
    (Transform.tile (Tiling_kernels.Kernels.t2d 20) [| 7; 5 |])
    cache1k

let test_transposes () =
  compare_with_sim (Tiling_kernels.Kernels.t3djik 12) cache1k;
  compare_with_sim (Tiling_kernels.Kernels.t3dikj 12) cache1k;
  compare_with_sim
    (Transform.tile (Tiling_kernels.Kernels.t3djik 14) [| 7; 2; 5 |])
    cache1k

let test_stencil () =
  compare_with_sim (Tiling_kernels.Kernels.jacobi3d 10) cache1k;
  compare_with_sim
    (Transform.tile (Tiling_kernels.Kernels.jacobi3d 10) [| 4; 3; 8 |])
    cache1k

let test_associative () =
  let c2 = Tiling_cache.Config.make ~size:1024 ~line:32 ~assoc:2 () in
  let c4 = Tiling_cache.Config.make ~size:2048 ~line:16 ~assoc:4 () in
  compare_with_sim (Tiling_kernels.Kernels.mm 14) c2;
  compare_with_sim (Tiling_kernels.Kernels.t3djik 14) c2;
  compare_with_sim (Tiling_kernels.Kernels.t3djik 14) c4;
  compare_with_sim
    (Transform.tile (Tiling_kernels.Kernels.t3djik 14) [| 5; 5; 5 |])
    c2

let test_matvec () =
  compare_with_sim (Tiling_kernels.Kernels.matmul 24) cache1k;
  compare_with_sim ~tol:0.002
    (Transform.tile (Tiling_kernels.Kernels.matmul 24) [| 4; 6; 10 |])
    cache1k

let test_compulsory_matches_lines () =
  (* CME compulsory misses = first touches = distinct lines (simulator). *)
  let nest = Tiling_kernels.Kernels.mm 16 in
  let sim = Tiling_trace.Run.simulate nest cache1k in
  let engine = Tiling_cme.Engine.create nest cache1k in
  let est = Tiling_cme.Estimator.exact engine in
  Alcotest.(check int) "compulsory = lines touched"
    sim.Tiling_trace.Run.lines_touched est.Tiling_cme.Estimator.compulsory

let test_compulsory_invariant_under_tiling () =
  let nest = Tiling_kernels.Kernels.t2d 16 in
  let comp nest =
    let engine = Tiling_cme.Engine.create nest cache1k in
    (Tiling_cme.Estimator.exact engine).Tiling_cme.Estimator.compulsory
  in
  let base = comp nest in
  List.iter
    (fun tiles ->
      Alcotest.(check int) "tiling keeps compulsory" base
        (comp (Transform.tile nest tiles)))
    [ [| 4; 4 |]; [| 5; 3 |]; [| 16; 1 |] ]

let test_classify_point_directly () =
  (* Hand-checked case: MM n=4 with a 128-byte cache; the very first access
     of each reference at (1,1,1) is a compulsory miss. *)
  let nest = Tiling_kernels.Kernels.mm 4 in
  let cache = Tiling_cache.Config.make ~size:128 ~line:32 () in
  let engine = Tiling_cme.Engine.create nest cache in
  Alcotest.(check bool) "first a load compulsory" true
    (Tiling_cme.Engine.classify engine [| 1; 1; 1 |] 0
     = Tiling_cme.Engine.Compulsory_miss);
  (* The same-iteration store reuses the load: never compulsory. *)
  Alcotest.(check bool) "store not compulsory" true
    (Tiling_cme.Engine.classify engine [| 1; 1; 1 |] 3
     <> Tiling_cme.Engine.Compulsory_miss)

let test_memo_grows_and_counts () =
  let nest = Transform.tile (Tiling_kernels.Kernels.mm 16) [| 4; 4; 4 |] in
  let engine = Tiling_cme.Engine.create nest cache1k in
  ignore (Tiling_cme.Estimator.exact engine);
  Alcotest.(check bool) "memo used" true (Tiling_cme.Engine.memo_size engine > 0);
  Alcotest.(check int) "no fallbacks on small kernels" 0
    (Tiling_cme.Engine.fallback_count engine)

let prop_random_tiles_match_simulator =
  QCheck.Test.make ~name:"CME matches simulator on random MM tilings" ~count:12
    QCheck.(triple (int_range 1 12) (int_range 1 12) (int_range 1 12))
    (fun (t1, t2, t3) ->
      let nest = Transform.tile (Tiling_kernels.Kernels.mm 12) [| t1; t2; t3 |] in
      let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
      let sim = Tiling_trace.Run.simulate nest cache in
      let engine = Tiling_cme.Engine.create nest cache in
      let est = Tiling_cme.Estimator.exact engine in
      abs_float
        (Tiling_cache.Sim.miss_ratio sim.Tiling_trace.Run.total
        -. est.Tiling_cme.Estimator.miss_ratio.Tiling_util.Stats.center)
      < 0.01)

let prop_random_t2d_caches =
  QCheck.Test.make ~name:"CME matches simulator across cache geometries"
    ~count:10
    (QCheck.make
       QCheck.Gen.(
         let* size_log = int_range 8 11 in
         let* assoc = oneofl [ 1; 2 ] in
         let* t1 = int_range 1 10 in
         let* t2 = int_range 1 10 in
         return (1 lsl size_log, assoc, t1, t2)))
    (fun (size, assoc, t1, t2) ->
      let cache = Tiling_cache.Config.make ~size ~line:32 ~assoc () in
      let nest = Transform.tile (Tiling_kernels.Kernels.t2d 10) [| t1; t2 |] in
      let sim = Tiling_trace.Run.simulate nest cache in
      let engine = Tiling_cme.Engine.create nest cache in
      let est = Tiling_cme.Estimator.exact engine in
      abs_float
        (Tiling_cache.Sim.replacement_ratio sim.Tiling_trace.Run.total
        -. est.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center)
      < 0.01)

let suite =
  [
    Alcotest.test_case "MM exact vs simulator" `Quick test_mm_exact;
    Alcotest.test_case "T2D exact vs simulator" `Quick test_t2d_exact;
    Alcotest.test_case "3D transposes vs simulator" `Quick test_transposes;
    Alcotest.test_case "stencil vs simulator" `Quick test_stencil;
    Alcotest.test_case "set-associative vs simulator" `Quick test_associative;
    Alcotest.test_case "matvec vs simulator" `Quick test_matvec;
    Alcotest.test_case "compulsory = lines touched" `Quick
      test_compulsory_matches_lines;
    Alcotest.test_case "compulsory invariant under tiling" `Quick
      test_compulsory_invariant_under_tiling;
    Alcotest.test_case "point classification" `Quick test_classify_point_directly;
    Alcotest.test_case "memoisation & fallbacks" `Quick test_memo_grows_and_counts;
    qcheck prop_random_tiles_match_simulator;
    qcheck prop_random_t2d_caches;
  ]

let test_reuse_sources_api () =
  (* a(i,j) load in MM at an interior point has (at least) the previous-k
     self source and the previous-k store source, both on the same line and
     both strictly earlier. *)
  let nest = Tiling_kernels.Kernels.mm 8 in
  let engine = Tiling_cme.Engine.create nest cache1k in
  let p = [| 3; 4; 5 |] in
  let sources = Tiling_cme.Engine.reuse_sources engine p 0 in
  Alcotest.(check bool) "has sources" true (List.length sources >= 1);
  let f = Tiling_ir.Nest.address_form nest nest.Tiling_ir.Nest.refs.(0) in
  let line_a = Tiling_ir.Affine.eval f p / 32 in
  List.iter
    (fun (src, src_ref) ->
      if Tiling_ir.Nest.lex_compare src p > 0 then
        Alcotest.fail "source after destination";
      if Tiling_ir.Nest.lex_compare src p = 0 && src_ref >= 0 then ();
      let g = Tiling_ir.Nest.address_form nest nest.Tiling_ir.Nest.refs.(src_ref) in
      Alcotest.(check int) "source on the same line" line_a
        (Tiling_ir.Affine.eval g src / 32);
      if not (Tiling_ir.Nest.mem_point nest src) then
        Alcotest.fail "source outside the space")
    sources

let test_reuse_sources_first_touch_empty () =
  (* The very first access of the execution can have no source. *)
  let nest = Tiling_kernels.Kernels.t2d 8 in
  let engine = Tiling_cme.Engine.create nest cache1k in
  Alcotest.(check int) "first access has no sources" 0
    (List.length (Tiling_cme.Engine.reuse_sources engine [| 1; 1 |] 0))

let test_normalisation_pushes_source_late () =
  (* b(i,k) in MM reuses across j; the normalised source must sit at the
     top of the k-range the address allows, i.e. have j = U_j (free dim
     maxed), not merely j-1. *)
  let nest = Tiling_kernels.Kernels.mm 8 in
  let engine = Tiling_cme.Engine.create nest cache1k in
  let p = [| 4; 5; 6 |] in
  let sources = Tiling_cme.Engine.reuse_sources engine p 1 in
  Alcotest.(check bool) "some source has j maxed to 8" true
    (List.exists (fun (src, _) -> src.(1) = 8 && src.(0) = 3) sources
     || List.exists (fun (src, _) -> src.(0) = 4 && src.(1) = 4) sources)

let suite =
  suite
  @ [
      Alcotest.test_case "reuse_sources API" `Quick test_reuse_sources_api;
      Alcotest.test_case "first touch has no sources" `Quick
        test_reuse_sources_first_touch_empty;
      Alcotest.test_case "normalisation maxes free dims" `Quick
        test_normalisation_pushes_source_late;
    ]

let test_four_deep_vs_simulator () =
  let spec = Tiling_kernels.Kernels.find "ADD" in
  let nest = spec.Tiling_kernels.Kernels.build 6 in
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  compare_with_sim ~tol:0.005 nest cache;
  (* Tiled, the 40-byte m-run wraps lines across three layout dimensions at
     once; the hit/miss decisions stay within a point, the
     compulsory/replacement attribution drifts ~1pp (documented
     over-approximation of compulsory). *)
  compare_with_sim ~tol:0.02 (Transform.tile nest [| 2; 3; 6; 2 |]) cache

let suite =
  suite
  @ [
      Alcotest.test_case "4-deep ADD vs simulator" `Quick
        test_four_deep_vs_simulator;
    ]

(* --- shared residue cache -------------------------------------------- *)

let est_center (e : Tiling_cme.Estimator.report) =
  ( e.Tiling_cme.Estimator.miss_ratio.Tiling_util.Stats.center,
    e.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center )

let test_shared_residues_cross_engine () =
  Tiling_cme.Engine.set_shared_residue_capacity 4096;
  Tiling_cme.Engine.clear_shared_residues ();
  let nest = Tiling_kernels.Kernels.mm 16 in
  let r1 =
    est_center (Tiling_cme.Estimator.exact (Tiling_cme.Engine.create nest cache1k))
  in
  let after_first = Tiling_cme.Engine.shared_residue_size () in
  Alcotest.(check bool) "first engine populates the shared cache" true
    (after_first > 0);
  (* A brand-new engine over the same nest re-derives the same generator
     signatures, so it must hit the shared cache instead of growing it. *)
  let r2 =
    est_center (Tiling_cme.Estimator.exact (Tiling_cme.Engine.create nest cache1k))
  in
  Alcotest.(check int) "second engine adds no entries" after_first
    (Tiling_cme.Engine.shared_residue_size ());
  Alcotest.(check bool) "identical estimates" true (r1 = r2)

let test_shared_residues_eviction_correct () =
  let nest = Transform.tile (Tiling_kernels.Kernels.mm 12) [| 4; 6; 3 |] in
  Fun.protect
    ~finally:(fun () ->
      Tiling_cme.Engine.set_shared_residue_capacity 4096;
      Tiling_cme.Engine.clear_shared_residues ())
    (fun () ->
      Tiling_cme.Engine.set_shared_residue_capacity 4096;
      Tiling_cme.Engine.clear_shared_residues ();
      let full =
        est_center
          (Tiling_cme.Estimator.exact (Tiling_cme.Engine.create nest cache1k))
      in
      (* A pathologically tiny capacity forces constant eviction; results
         must not change, only the hit rate. *)
      Tiling_cme.Engine.set_shared_residue_capacity 1;
      Tiling_cme.Engine.clear_shared_residues ();
      let tiny =
        est_center
          (Tiling_cme.Estimator.exact (Tiling_cme.Engine.create nest cache1k))
      in
      Alcotest.(check bool) "eviction does not change results" true
        (full = tiny);
      Alcotest.(check bool) "capacity bound respected" true
        (Tiling_cme.Engine.shared_residue_size () <= 16))

let suite =
  suite
  @ [
      Alcotest.test_case "shared residues cross-engine" `Quick
        test_shared_residues_cross_engine;
      Alcotest.test_case "shared residues eviction-correct" `Quick
        test_shared_residues_eviction_correct;
    ]
