(* The symbolic (polyhedra-based) CME solver is the paper's "first
   principles" method; it must agree with the fast residue-set engine point
   by point, and with the simulator in aggregate.  Tiny kernels only: the
   whole point of section 2.3 is that this method does not scale. *)

open Tiling_ir
open Tiling_cme

let qcheck = QCheck_alcotest.to_alcotest

let small_cache = Tiling_cache.Config.make ~size:256 ~line:32 ()

let agree_on nest cache =
  let engine = Engine.create nest cache in
  let mism = ref 0 and total = ref 0 in
  Nest.iter_points nest (fun p ->
      Array.iteri
        (fun r _ ->
          incr total;
          let fast = Engine.classify engine p r in
          let slow = Symbolic.classify nest cache p r in
          let same =
            match (fast, slow) with
            | Engine.Hit, Symbolic.Hit
            | Engine.Compulsory_miss, Symbolic.Compulsory_miss
            | Engine.Replacement_miss, Symbolic.Replacement_miss ->
                true
            | _ -> false
          in
          if not same then incr mism)
        nest.Nest.refs);
  (!mism, !total)

let test_mm_agreement () =
  let nest = Tiling_kernels.Kernels.mm 6 in
  let mism, total = agree_on nest small_cache in
  Alcotest.(check int) (Printf.sprintf "0 of %d disagree" total) 0 mism

let test_t2d_agreement () =
  let nest = Tiling_kernels.Kernels.t2d 8 in
  let mism, _ = agree_on nest small_cache in
  Alcotest.(check int) "no disagreements" 0 mism

let test_tiled_agreement () =
  let nest = Transform.tile (Tiling_kernels.Kernels.t2d 8) [| 3; 5 |] in
  let mism, _ = agree_on nest small_cache in
  Alcotest.(check int) "no disagreements (tiled, ragged)" 0 mism

let test_against_simulator () =
  let nest = Tiling_kernels.Kernels.mm 6 in
  let sim = Tiling_trace.Run.simulate nest small_cache in
  let misses = ref 0 in
  Nest.iter_points nest (fun p ->
      Array.iteri
        (fun r _ ->
          match Symbolic.classify nest small_cache p r with
          | Symbolic.Hit -> ()
          | _ -> incr misses)
        nest.Nest.refs);
  Alcotest.(check int) "symbolic misses = simulator misses"
    sim.Tiling_trace.Run.total.Tiling_cache.Sim.misses !misses

let test_associative_agreement () =
  (* The associativity lattice: distinct wrap values = distinct interfering
     lines, so a 2-way cache needs two of them to evict.  Must agree with
     the fast engine's own k-way counting. *)
  let c2 = Tiling_cache.Config.make ~size:256 ~line:32 ~assoc:2 () in
  let nest = Tiling_kernels.Kernels.mm 6 in
  let mism, total = agree_on nest c2 in
  Alcotest.(check int) (Printf.sprintf "0 of %d disagree (2-way)" total) 0 mism

let test_associative_distinct_lines_cap () =
  (* The cap never changes the decision threshold: capped at k, the count
     is min k (true count). *)
  let c2 = Tiling_cache.Config.make ~size:256 ~line:32 ~assoc:2 () in
  let nest = Tiling_kernels.Kernels.mm 6 in
  let src = [| 3; 2; 1 |] and dst = [| 3; 2; 2 |] in
  let full =
    Symbolic.distinct_interfering_lines nest c2 ~src ~src_ref:0 ~dst ~dst_ref:0
  in
  let capped =
    Symbolic.distinct_interfering_lines ~cap:2 nest c2 ~src ~src_ref:0 ~dst
      ~dst_ref:0
  in
  Alcotest.(check int) "capped = min cap full" (min 2 full) capped

let test_polyhedra_structure () =
  (* For a same-iteration reuse edge in MM the path is two references at
     one point: the polyhedra are 1-dimensional (wrap variable only). *)
  let nest = Tiling_kernels.Kernels.mm 6 in
  let ps =
    Symbolic.replacement_polyhedra nest small_cache ~src:[| 2; 3; 4 |]
      ~src_ref:0 ~dst:[| 2; 3; 4 |] ~dst_ref:3
  in
  Alcotest.(check int) "two refs x two halves" 4 (List.length ps);
  List.iter
    (fun (p : Tiling_polyhedra.Polyhedron.t) ->
      Alcotest.(check int) "wrap variable only" 1 p.Tiling_polyhedra.Polyhedron.dim)
    ps

let test_interference_counting () =
  (* Counting integer points in the replacement polyhedra: the b and c
     rows/columns swept between consecutive k iterations of MM contain a
     known number of set-conflicting accesses; spot-check it is finite,
     non-negative, and consistent with emptiness. *)
  let nest = Tiling_kernels.Kernels.mm 6 in
  let src = [| 3; 2; 1 |] and dst = [| 3; 2; 2 |] in
  let n =
    Symbolic.count_interference_points nest small_cache ~src ~src_ref:0 ~dst
      ~dst_ref:0
  in
  let any =
    List.exists Tiling_polyhedra.Polyhedron.has_integer_point
      (Symbolic.replacement_polyhedra nest small_cache ~src ~src_ref:0 ~dst
         ~dst_ref:0)
  in
  Alcotest.(check bool) "count consistent with emptiness" any (n > 0)

let prop_random_tilings_agree =
  QCheck.Test.make ~name:"fast and symbolic solvers agree on random tilings"
    ~count:6
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (t1, t2) ->
      let nest = Transform.tile (Tiling_kernels.Kernels.t2d 8) [| t1; t2 |] in
      let mism, _ = agree_on nest small_cache in
      mism = 0)

let suite =
  [
    Alcotest.test_case "MM agreement" `Slow test_mm_agreement;
    Alcotest.test_case "T2D agreement" `Slow test_t2d_agreement;
    Alcotest.test_case "tiled agreement" `Slow test_tiled_agreement;
    Alcotest.test_case "matches simulator" `Slow test_against_simulator;
    Alcotest.test_case "associative agreement (2-way)" `Slow
      test_associative_agreement;
    Alcotest.test_case "distinct-lines cap" `Quick
      test_associative_distinct_lines_cap;
    Alcotest.test_case "polyhedra structure" `Quick test_polyhedra_structure;
    Alcotest.test_case "interference counting" `Quick test_interference_counting;
    qcheck prop_random_tilings_agree;
  ]

let test_symbolic_on_bigger_cache () =
  (* A second geometry for the symbolic/fast agreement. *)
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  let nest = Transform.tile (Tiling_kernels.Kernels.mm 6) [| 2; 3; 6 |] in
  let mism, total = agree_on nest cache in
  Alcotest.(check int) (Printf.sprintf "0 of %d" total) 0 mism

let test_interference_monotone_in_path () =
  (* Extending the reuse path can only add interference points. *)
  let nest = Tiling_kernels.Kernels.mm 6 in
  let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
  let count src dst =
    Symbolic.count_interference_points nest cache ~src ~src_ref:1 ~dst
      ~dst_ref:1
  in
  let short = count [| 2; 2; 1 |] [| 2; 2; 2 |] in
  let long = count [| 2; 2; 1 |] [| 2; 3; 2 |] in
  Alcotest.(check bool)
    (Printf.sprintf "monotone (%d <= %d)" short long)
    true (short <= long)

let suite =
  suite
  @ [
      Alcotest.test_case "second geometry" `Slow test_symbolic_on_bigger_cache;
      Alcotest.test_case "interference monotone in path" `Quick
        test_interference_monotone_in_path;
    ]
