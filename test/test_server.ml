(* The tiling daemon: store persistence and crash-safety, scheduler
   admission control and deadlines, and one end-to-end socket session
   against a live server. *)

module Json = Tiling_obs.Json
module Store = Tiling_server.Store
module Scheduler = Tiling_server.Scheduler
module Protocol = Tiling_server.Protocol
module Server = Tiling_server.Server
module Client = Tiling_server.Client
module Netio = Tiling_util.Netio
module Memo = Tiling_search.Memo
module Eval = Tiling_search.Eval

let get path json =
  List.fold_left
    (fun acc key -> match acc with Some j -> Json.member key j | None -> None)
    (Some json) path

let get_int path json =
  match get path json with
  | Some (Json.Int i) -> i
  | _ -> Alcotest.failf "missing int at %s" (String.concat "." path)

let temp_path suffix =
  let f = Filename.temp_file "tiling_server_test" suffix in
  Sys.remove f;
  f

let key values = Memo.Key.of_values values

(* ------------------------------------------------------------------ *)
(* Store                                                                *)

let test_store_roundtrip () =
  let path = temp_path ".store" in
  let fp_plain = "tile|mm|32|8192:32:1|cme-sample|7" in
  let fp_hostile = "weird fp\nwith spaces\tand%percent" in
  (match Store.open_ ~path () with
  | Error m -> Alcotest.fail m
  | Ok s ->
      Store.append s ~fingerprint:fp_plain (key [| 1; 2; 3 |]) 42.5;
      Store.append s ~fingerprint:fp_plain (key [| -4; 0; 9 |]) 0x1.fp-3;
      Store.append s ~fingerprint:fp_hostile (key [| 7 |]) 1e300;
      Store.sync s;
      Store.close s);
  match Store.open_ ~path () with
  | Error m -> Alcotest.fail m
  | Ok s ->
      Alcotest.(check int) "no skipped lines" 0 (Store.skipped_on_load s);
      Alcotest.(check int) "3 live entries" 3 (Store.entries s);
      Alcotest.(check int) "2 fingerprints" 2 (Store.fingerprints s);
      Alcotest.(check (option (float 0.))) "exact float back"
        (Some 42.5)
        (Store.find s ~fingerprint:fp_plain (key [| 1; 2; 3 |]));
      Alcotest.(check (option (float 0.))) "negative key values"
        (Some 0x1.fp-3)
        (Store.find s ~fingerprint:fp_plain (key [| -4; 0; 9 |]));
      Alcotest.(check (option (float 0.))) "hostile fingerprint"
        (Some 1e300)
        (Store.find s ~fingerprint:fp_hostile (key [| 7 |]));
      Alcotest.(check (option (float 0.))) "absent key"
        None
        (Store.find s ~fingerprint:fp_plain (key [| 9; 9; 9 |]));
      Store.close s;
      Sys.remove path

let test_store_tolerates_truncation () =
  let path = temp_path ".store" in
  (match Store.open_ ~path () with
  | Error m -> Alcotest.fail m
  | Ok s ->
      Store.append s ~fingerprint:"fp" (key [| 1 |]) 1.0;
      Store.append s ~fingerprint:"fp" (key [| 2 |]) 2.0;
      Store.sync s;
      Store.close s);
  (* simulate a crash mid-append: a final half-written line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "r fp 3,3";
  close_out oc;
  (match Store.open_ ~path () with
  | Error m -> Alcotest.fail m
  | Ok s ->
      Alcotest.(check int) "truncated line skipped" 1 (Store.skipped_on_load s);
      Alcotest.(check int) "intact records survive" 2 (Store.entries s);
      Alcotest.(check (option (float 0.))) "value intact" (Some 2.0)
        (Store.find s ~fingerprint:"fp" (key [| 2 |]));
      Store.close s);
  Sys.remove path

let test_store_refuses_foreign_file () =
  let path = temp_path ".store" in
  let oc = open_out path in
  output_string oc "this is not a tiling store\n";
  close_out oc;
  (match Store.open_ ~path () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "opened a foreign file as a store");
  Sys.remove path

let test_store_compaction () =
  let path = temp_path ".store" in
  (match Store.open_ ~compact_min_dead:4 ~path () with
  | Error m -> Alcotest.fail m
  | Ok s ->
      (* 6 appends, 2 distinct keys: 4 dead records trigger compaction *)
      for i = 1 to 3 do
        Store.append s ~fingerprint:"fp" (key [| 1 |]) (float_of_int i);
        Store.append s ~fingerprint:"fp" (key [| 2 |]) (float_of_int (10 * i))
      done;
      Alcotest.(check int) "6 records before sync" 6 (Store.records s);
      Store.sync s;
      Alcotest.(check int) "compaction ran" 1 (Store.compactions s);
      Alcotest.(check int) "log rewritten to live set" 2 (Store.records s);
      Store.close s);
  (match Store.open_ ~path () with
  | Error m -> Alcotest.fail m
  | Ok s ->
      Alcotest.(check int) "compacted log loads clean" 0 (Store.skipped_on_load s);
      Alcotest.(check (option (float 0.))) "last write wins" (Some 3.0)
        (Store.find s ~fingerprint:"fp" (key [| 1 |]));
      Alcotest.(check (option (float 0.))) "other key too" (Some 30.0)
        (Store.find s ~fingerprint:"fp" (key [| 2 |]));
      Store.close s);
  Sys.remove path

(* Save -> restart -> identical fitness, across every paper kernel: a
   fresh evaluation service backed only by the reloaded store must
   reproduce each candidate's objective bit-for-bit with zero fresh
   backend evaluations. *)
let test_memo_roundtrip_all_kernels () =
  let kernels = Tiling_kernels.Kernels.all in
  Alcotest.(check int) "the paper's 17 kernels" 17 (List.length kernels);
  let n = 8 in
  let cache = Tiling_cache.Config.make ~size:1024 ~line:32 ~assoc:1 () in
  let backend = Tiling_search.Backend.sim in
  let fp (spec : Tiling_kernels.Kernels.spec) =
    Store.fingerprint ~method_:"memo-test" ~kernel:spec.name ~n ~cache
      ~backend:backend.Tiling_search.Backend.name ~seed:42
  in
  let candidates (spec : Tiling_kernels.Kernels.spec) =
    (* valid tile vectors for any loop bounds: fractions of each span *)
    let spans = Tiling_ir.Transform.tile_spans (spec.build n) in
    [
      Array.map (fun s -> max 1 (s / 2)) spans;
      Array.map (fun s -> max 1 (s / 3)) spans;
      spans;
    ]
  in
  let eval_with store (spec : Tiling_kernels.Kernels.spec) =
    let nest = spec.build n in
    let eval =
      Eval.create ~backend ~cache
        ~prepare:(fun tiles ->
          (Tiling_ir.Transform.tile nest (Array.copy tiles), [||]))
        ()
    in
    Memo.set_tier (Eval.memo eval) (Some (Store.tier store ~fingerprint:(fp spec)));
    eval
  in
  let path = temp_path ".store" in
  let first =
    match Store.open_ ~path () with
    | Error m -> Alcotest.fail m
    | Ok store ->
        let values =
          List.map
            (fun spec ->
              let eval = eval_with store spec in
              let vs = List.map (Eval.objective eval) (candidates spec) in
              Alcotest.(check bool)
                (spec.name ^ ": first run computes fresh")
                true
                (Eval.fresh eval > 0);
              (spec.name, vs))
            kernels
        in
        Store.sync store;
        Store.close store;
        values
  in
  match Store.open_ ~path () with
  | Error m -> Alcotest.fail m
  | Ok store ->
      List.iter2
        (fun spec (name, saved) ->
          let eval = eval_with store spec in
          let again = List.map (Eval.objective eval) (candidates spec) in
          List.iter2
            (fun a b ->
              if a <> b then
                Alcotest.failf "%s: fitness drifted across restart (%h vs %h)"
                  name a b)
            saved again;
          Alcotest.(check int)
            (name ^ ": zero fresh evaluations after restart")
            0 (Eval.fresh eval))
        kernels first;
      Store.close store;
      Sys.remove path

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)

let drain_error_code = function
  | Ok _ -> Alcotest.fail "expected an error result"
  | Error e -> e.Protocol.code

let test_scheduler_backpressure () =
  let sched = Scheduler.create ~workers:1 ~capacity:1 () in
  let release = Atomic.make false in
  let delivered = Atomic.make 0 in
  let blocker ~cancelled:_ =
    while not (Atomic.get release) do
      Thread.yield ()
    done;
    Json.Null
  in
  let deliver ~coalesced:_ _ = Atomic.incr delivered in
  (* first job occupies the worker... *)
  (match Scheduler.submit sched ~work:blocker ~deliver () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first job rejected");
  (* give the worker time to pick it up, then fill the one queue slot *)
  let rec wait_pickup tries =
    if Scheduler.depth sched > 0 && tries > 0 then (
      Thread.yield ();
      Thread.delay 0.01;
      wait_pickup (tries - 1))
  in
  wait_pickup 200;
  (match Scheduler.submit sched ~work:blocker ~deliver () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "queued job rejected");
  (* ...and the next submission must bounce with a retry hint *)
  (match Scheduler.submit sched ~work:blocker ~deliver () with
  | Ok () -> Alcotest.fail "over-capacity job admitted"
  | Error (Scheduler.Overloaded retry) ->
      Alcotest.(check bool) "positive retry hint" true (retry > 0.)
  | Error Scheduler.Draining -> Alcotest.fail "not draining yet");
  Alcotest.(check int) "one admission reject" 1 (Scheduler.rejected sched);
  Atomic.set release true;
  Scheduler.drain sched;
  Alcotest.(check int) "both admitted jobs delivered" 2 (Atomic.get delivered);
  Alcotest.(check int) "completed counter" 2 (Scheduler.completed sched);
  (* after drain: immediate Draining *)
  match Scheduler.submit sched ~work:blocker ~deliver () with
  | Error Scheduler.Draining -> ()
  | _ -> Alcotest.fail "post-drain submission not refused"

let test_scheduler_retry_hint_tracks_depth () =
  let sched = Scheduler.create ~workers:1 ~capacity:8 () in
  let deliver ~coalesced:_ _ = () in
  (* seed the latency ring with one completion of measurable duration so
     the hint formula has a p50 to work from *)
  (match
     Scheduler.submit sched
       ~work:(fun ~cancelled:_ ->
         Thread.delay 0.2;
         Json.Null)
       ~deliver ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "warm-up job rejected");
  let rec wait_done tries =
    if Scheduler.completed sched < 1 && tries > 0 then (
      Thread.delay 0.01;
      wait_done (tries - 1))
  in
  wait_done 500;
  Alcotest.(check int) "warm-up completed" 1 (Scheduler.completed sched);
  let hint_empty = Scheduler.retry_after sched in
  (* occupy the worker... *)
  let release = Atomic.make false in
  let blocker ~cancelled:_ =
    while not (Atomic.get release) do
      Thread.yield ()
    done;
    Json.Null
  in
  (match Scheduler.submit sched ~work:blocker ~deliver () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "blocker rejected");
  let rec wait_pickup tries =
    if Scheduler.depth sched > 0 && tries > 0 then (
      Thread.delay 0.01;
      wait_pickup (tries - 1))
  in
  wait_pickup 200;
  (* ...then grow the backlog and watch the hint grow with it.  The old
     bug multiplied p50 by the configured capacity, so the hint sat at
     the same (inflated) value at every depth. *)
  let hint_at_depth d =
    while Scheduler.depth sched < d do
      match Scheduler.submit sched ~work:blocker ~deliver () with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "queued job rejected"
    done;
    Scheduler.retry_after sched
  in
  let h1 = hint_at_depth 1 in
  let h3 = hint_at_depth 3 in
  Alcotest.(check bool) "hint grows with backlog" true (h3 > h1);
  Alcotest.(check bool) "deep hint above empty-queue hint" true
    (h3 > hint_empty);
  (* capacity 8 x p50 ~0.2s would put the buggy hint at ~1.6s even with
     nothing queued; the depth-based hint stays near p50 *)
  Alcotest.(check bool) "empty-queue hint is small" true (hint_empty < 0.5);
  Atomic.set release true;
  Scheduler.drain sched;
  (* drain clears the roster before joining: report no crew, not a dead one *)
  Alcotest.(check int) "no workers after drain" 0 (Scheduler.workers sched)

let test_scheduler_deadlines () =
  let sched = Scheduler.create ~workers:1 ~capacity:8 () in
  let results = Atomic.make [] in
  let deliver ~coalesced:_ r = Atomic.set results (r :: Atomic.get results) in
  let ran = Atomic.make false in
  (* already expired: must fail without running *)
  (match
     Scheduler.submit sched
       ~deadline_s:(Unix.gettimeofday () -. 1.)
       ~work:(fun ~cancelled:_ ->
         Atomic.set ran true;
         Json.Null)
       ~deliver ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "expired job rejected at admission");
  (* cooperative cancellation: the work polls its probe and bails *)
  (match
     Scheduler.submit sched
       ~deadline_s:(Unix.gettimeofday () +. 0.1)
       ~work:(fun ~cancelled ->
         while not (cancelled ()) do
           Thread.delay 0.005
         done;
         raise Eval.Cancelled)
       ~deliver ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "cancellable job rejected at admission");
  Scheduler.drain sched;
  Alcotest.(check bool) "expired job never ran" false (Atomic.get ran);
  Alcotest.(check int) "both count as timeouts" 2 (Scheduler.timeouts sched);
  List.iter
    (fun r ->
      match drain_error_code r with
      | Protocol.Deadline_exceeded -> ()
      | c -> Alcotest.failf "wrong code %s" (Protocol.code_to_string c))
    (Atomic.get results)

let test_scheduler_survives_handler_crash () =
  let sched = Scheduler.create ~workers:1 ~capacity:8 () in
  let got = Atomic.make None in
  (match
     Scheduler.submit sched
       ~work:(fun ~cancelled:_ -> failwith "handler bug")
       ~deliver:(fun ~coalesced:_ r -> Atomic.set got (Some r))
       ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rejected");
  Scheduler.drain sched;
  match Atomic.get got with
  | Some (Error e) when e.Protocol.code = Protocol.Internal -> ()
  | _ -> Alcotest.fail "handler exception not mapped to internal error"

(* ------------------------------------------------------------------ *)
(* End-to-end over a Unix socket                                        *)

let call_ok client ~meth ~params =
  match Client.call client ~meth ~params with
  | Error m -> Alcotest.failf "%s: transport error: %s" meth m
  | Ok envelope -> (
      match Client.result_of_response envelope with
      | Ok result -> result
      | Error e ->
          Alcotest.failf "%s: server error %s: %s" meth
            (Protocol.code_to_string e.Protocol.code)
            e.Protocol.message)

let call_err client ~meth ~params =
  match Client.call client ~meth ~params with
  | Error m -> Alcotest.failf "%s: transport error: %s" meth m
  | Ok envelope -> (
      match Client.result_of_response envelope with
      | Ok _ -> Alcotest.failf "%s: expected a server error" meth
      | Error e -> e)

let test_end_to_end () =
  let sock = temp_path ".sock" in
  let store = temp_path ".store" in
  let cfg =
    {
      Server.default_config with
      addr = Netio.Unix_sock sock;
      store_path = Some store;
      workers = 2;
    }
  in
  let server = Thread.create (fun () -> Server.run cfg) () in
  let rec await_socket tries =
    if Sys.file_exists sock then ()
    else if tries = 0 then Alcotest.fail "server never bound its socket"
    else (
      Thread.delay 0.05;
      await_socket (tries - 1))
  in
  await_socket 100;
  let client =
    match Client.connect (Netio.Unix_sock sock) with
    | Ok c -> c
    | Error m -> Alcotest.failf "connect: %s" m
  in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      Thread.join server;
      if Sys.file_exists store then Sys.remove store)
  @@ fun () ->
  let params =
    [
      ("kernel", Json.String "mm");
      ("n", Json.Int 12);
      ("seed", Json.Int 11);
    ]
  in
  (* the daemon must agree with the one-shot CLI path, same seed *)
  let served = call_ok client ~meth:"tile" ~params in
  let direct =
    let nest = (Tiling_kernels.Kernels.find "mm").build 12 in
    let cache = Tiling_cache.Config.make ~size:8192 ~line:32 ~assoc:1 () in
    let opts = { Tiling_core.Tiler.default_opts with seed = 11 } in
    (Tiling_core.Tiler.optimize ~opts nest cache).Tiling_core.Tiler.tiles
  in
  (match get [ "outcome"; "tiles" ] served with
  | Some (Json.List tiles) ->
      let tiles =
        List.map (function Json.Int i -> i | _ -> Alcotest.fail "tile") tiles
      in
      Alcotest.(check (list int))
        "served tiles match the one-shot optimizer"
        (Array.to_list direct) tiles
  | _ -> Alcotest.fail "no tiles in tile result");
  (* repeat request: answered from the persistent store *)
  ignore (call_ok client ~meth:"tile" ~params);
  let stats = call_ok client ~meth:"stats" ~params:[] in
  Alcotest.(check int) "two requests completed" 2
    (get_int [ "requests"; "completed" ] stats);
  Alcotest.(check bool) "store warmed the repeat request" true
    (get_int [ "store"; "hits" ] stats > 0);
  Alcotest.(check bool) "store persisted evaluations" true
    (get_int [ "store"; "appends" ] stats > 0);
  (* error paths stay structured *)
  let e = call_err client ~meth:"frobnicate" ~params:[] in
  Alcotest.(check string) "unknown method" "unknown_method"
    (Protocol.code_to_string e.Protocol.code);
  let e =
    call_err client ~meth:"tile" ~params:[ ("kernel", Json.String "zzz") ]
  in
  Alcotest.(check string) "bad kernel is bad_request" "bad_request"
    (Protocol.code_to_string e.Protocol.code);
  (* raw garbage on a second connection neither kills the daemon nor
     goes unanswered *)
  (match Netio.connect (Netio.Unix_sock sock) with
  | Error m -> Alcotest.fail m
  | Ok fd ->
      (match Netio.write_line fd "this is not json" with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      let r = Netio.reader fd in
      (match Netio.read_line ~max_bytes:65536 r with
      | `Line l -> (
          match Json.of_string l with
          | Ok j ->
              Alcotest.(check bool) "structured bad_request" true
                (get [ "error"; "code" ] j = Some (Json.String "bad_request"))
          | Error m -> Alcotest.fail m)
      | _ -> Alcotest.fail "no reply to garbage");
      Unix.close fd);
  (* graceful shutdown over the wire *)
  let r = call_ok client ~meth:"shutdown" ~params:[] in
  Alcotest.(check bool) "acknowledged" true
    (Json.member "stopping" r = Some (Json.Bool true));
  Thread.join server;
  Alcotest.(check bool) "socket unlinked on drain" false (Sys.file_exists sock)

(* ------------------------------------------------------------------ *)
(* Telemetry: inflight tracking, metrics export, traces and progress    *)

let test_scheduler_inflight () =
  let sched = Scheduler.create ~workers:1 ~capacity:4 () in
  let release = Atomic.make false in
  let started = Atomic.make false in
  (match
     Scheduler.submit sched ~label:"blocker"
       ~work:(fun ~cancelled:_ ->
         Atomic.set started true;
         while not (Atomic.get release) do
           Thread.yield ()
         done;
         Json.Null)
       ~deliver:(fun ~coalesced:_ _ -> ())
       ()
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rejected");
  let rec await tries =
    if (not (Atomic.get started)) && tries > 0 then (
      Thread.delay 0.01;
      await (tries - 1))
  in
  await 200;
  (match Scheduler.inflight sched with
  | [ (label, queued_s, running_s) ] ->
      Alcotest.(check string) "label is the wire method" "blocker" label;
      Alcotest.(check bool) "sane queue/run times" true
        (queued_s >= 0. && running_s >= 0.)
  | l -> Alcotest.failf "expected 1 inflight job, got %d" (List.length l));
  Atomic.set release true;
  Scheduler.drain sched;
  Alcotest.(check int) "idle after drain" 0
    (List.length (Scheduler.inflight sched))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* One daemon exercising every PR-6 telemetry surface: the [metrics]
   wire method in both formats, the HTTP scrape listener, the stats
   histogram/inflight extensions (including the no-samples case), a
   traced request whose span tree decomposes its latency, and progress
   events streamed ahead of the final response. *)
let test_telemetry_end_to_end () =
  let sock = temp_path ".sock" in
  let msock = temp_path ".msock" in
  let store = temp_path ".store" in
  Tiling_obs.Metrics.reset ();
  Tiling_obs.Metrics.set_enabled true;
  Tiling_obs.Events.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Tiling_obs.Metrics.set_enabled false;
      Tiling_obs.Events.set_enabled false;
      Tiling_obs.Events.clear ();
      Tiling_obs.Metrics.reset ())
  @@ fun () ->
  let cfg =
    {
      Server.default_config with
      addr = Netio.Unix_sock sock;
      store_path = Some store;
      workers = 2;
      metrics_addr = Some (Netio.Unix_sock msock);
    }
  in
  let server = Thread.create (fun () -> Server.run cfg) () in
  let rec await_socket tries =
    if Sys.file_exists sock then ()
    else if tries = 0 then Alcotest.fail "server never bound its socket"
    else (
      Thread.delay 0.05;
      await_socket (tries - 1))
  in
  await_socket 100;
  let client =
    match Client.connect (Netio.Unix_sock sock) with
    | Ok c -> c
    | Error m -> Alcotest.failf "connect: %s" m
  in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      Thread.join server;
      if Sys.file_exists store then Sys.remove store)
  @@ fun () ->
  (* stats before any scheduled request: the latency histogram exports
     its stable empty shape (no samples ever observed) *)
  let stats = call_ok client ~meth:"stats" ~params:[] in
  Alcotest.(check int) "no latency samples yet" 0
    (get_int [ "latency_ns_histogram"; "count" ] stats);
  (match get [ "latency_ns_histogram"; "buckets" ] stats with
  | Some (Json.List []) -> ()
  | _ -> Alcotest.fail "empty histogram should have no buckets");
  (match get [ "inflight" ] stats with
  | Some (Json.List []) -> ()
  | _ -> Alcotest.fail "nothing should be in flight");
  (* a traced, progress-streaming tile request *)
  let progress = ref [] in
  let envelope =
    match
      Client.call client
        ~on_progress:(fun ev -> progress := ev :: !progress)
        ~meth:"tile"
        ~params:
          [
            ("kernel", Json.String "mm");
            ("n", Json.Int 12);
            ("seed", Json.Int 11);
            ("trace", Json.Bool true);
            ("progress", Json.Bool true);
          ]
    with
    | Ok e -> e
    | Error m -> Alcotest.failf "traced tile: %s" m
  in
  let result =
    match Client.result_of_response envelope with
    | Ok r -> r
    | Error e -> Alcotest.failf "traced tile: %s" e.Protocol.message
  in
  (* progress notifications preceded the final response on the wire (the
     client consumed them from the same stream before the envelope) *)
  Alcotest.(check bool) "per-generation progress arrived" true
    (List.exists
       (fun ev -> get [ "kind" ] ev = Some (Json.String "ga.generation"))
       !progress);
  (* the span tree decomposes the request's latency: queue + run account
     for the total wall clock within 5% *)
  let trace =
    match get [ "trace" ] result with
    | Some t -> t
    | None -> Alcotest.fail "no trace in result"
  in
  let fnum path j =
    match get path j with
    | Some v -> Option.get (Json.to_float v)
    | None -> Alcotest.failf "missing %s" (String.concat "." path)
  in
  let total_us = fnum [ "total_us" ] trace in
  let spans =
    match get [ "spans" ] trace with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no spans"
  in
  let dur name =
    match
      List.find_opt
        (fun s -> Json.member "name" s = Some (Json.String name))
        spans
    with
    | Some s -> fnum [ "dur_us" ] s
    | None -> Alcotest.failf "span %s missing" name
  in
  let accounted = dur "request.queue" +. dur "request.run" in
  Alcotest.(check bool)
    (Printf.sprintf "queue+run (%.0fus) within 5%% of total (%.0fus)"
       accounted total_us)
    true
    (total_us > 0. && accounted >= 0.95 *. total_us
   && accounted <= 1.05 *. total_us);
  (* stats with the events param returns journal entries *)
  let stats =
    call_ok client ~meth:"stats" ~params:[ ("events", Json.Int 16) ]
  in
  (match get [ "events" ] stats with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "stats returned no events");
  Alcotest.(check int) "one latency sample now" 1
    (get_int [ "latency_ns_histogram"; "count" ] stats);
  (* the metrics wire method, both formats *)
  let om = call_ok client ~meth:"metrics" ~params:[] in
  (match get [ "body" ] om with
  | Some (Json.String body) ->
      Alcotest.(check bool) "openmetrics body has requests counter" true
        (contains body "tiling_server_requests_ok_total");
      Alcotest.(check bool) "openmetrics body has request histogram" true
        (contains body "tiling_server_request_ns_bucket");
      Alcotest.(check bool) "openmetrics body terminates" true
        (contains body "# EOF")
  | _ -> Alcotest.fail "metrics: no body");
  let js =
    call_ok client ~meth:"metrics" ~params:[ ("format", Json.String "json") ]
  in
  (match get [ "snapshot"; "counters"; "server.requests.ok" ] js with
  | Some (Json.Int n) -> Alcotest.(check bool) "ok counter moved" true (n >= 1)
  | _ -> Alcotest.fail "metrics json: no snapshot");
  let e =
    call_err client ~meth:"metrics" ~params:[ ("format", Json.String "xml") ]
  in
  Alcotest.(check string) "unknown format is bad_request" "bad_request"
    (Protocol.code_to_string e.Protocol.code);
  (* the HTTP scrape listener on its own socket *)
  (match Netio.connect (Netio.Unix_sock msock) with
  | Error m -> Alcotest.failf "metrics listener: %s" m
  | Ok fd ->
      (match Netio.write_all fd "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n" with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      let r = Netio.reader fd in
      let buf = Buffer.create 4096 in
      let rec slurp () =
        match Netio.read_line ~max_bytes:(1 lsl 20) r with
        | `Line l ->
            Buffer.add_string buf l;
            Buffer.add_char buf '\n';
            slurp ()
        | `Eof | `Too_long -> ()
      in
      slurp ();
      Unix.close fd;
      let body = Buffer.contents buf in
      Alcotest.(check bool) "HTTP 200" true (contains body "200 OK");
      Alcotest.(check bool) "openmetrics content type" true
        (contains body "application/openmetrics-text");
      Alcotest.(check bool) "scrape body present" true
        (contains body "tiling_server_requests_ok_total");
      Alcotest.(check bool) "scrape terminates with EOF" true
        (contains body "# EOF"));
  (* shutdown also stops the HTTP listener and unlinks its socket *)
  ignore (call_ok client ~meth:"shutdown" ~params:[]);
  Thread.join server;
  Alcotest.(check bool) "metrics socket unlinked" false (Sys.file_exists msock)

(* ------------------------------------------------------------------ *)
(* Address parsing                                                      *)

let test_addr_parsing () =
  let ok s expect =
    match Netio.addr_of_string s with
    | Ok a -> Alcotest.(check string) s expect (Netio.addr_to_string a)
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  ok "unix:/tmp/t.sock" "unix:/tmp/t.sock";
  ok "tcp:localhost:7070" "tcp:localhost:7070";
  ok "localhost:7070" "tcp:localhost:7070";
  ok "./relative.sock" "unix:./relative.sock";
  ok "/abs/path.sock" "unix:/abs/path.sock";
  match Netio.addr_of_string "tcp:nohost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tcp:nohost parsed"

let suite =
  [
    Alcotest.test_case "store round-trips exactly" `Quick test_store_roundtrip;
    Alcotest.test_case "store tolerates a truncated tail" `Quick
      test_store_tolerates_truncation;
    Alcotest.test_case "store refuses foreign files" `Quick
      test_store_refuses_foreign_file;
    Alcotest.test_case "store compacts dead records" `Quick test_store_compaction;
    Alcotest.test_case "memo save/restart/identical fitness on all 17 kernels"
      `Quick test_memo_roundtrip_all_kernels;
    Alcotest.test_case "scheduler backpressure and drain" `Quick
      test_scheduler_backpressure;
    Alcotest.test_case "retry hint tracks queue depth, drain clears roster"
      `Quick test_scheduler_retry_hint_tracks_depth;
    Alcotest.test_case "scheduler deadlines, queued and cooperative" `Quick
      test_scheduler_deadlines;
    Alcotest.test_case "handler crash maps to internal error" `Quick
      test_scheduler_survives_handler_crash;
    Alcotest.test_case "end-to-end daemon session over a Unix socket" `Quick
      test_end_to_end;
    Alcotest.test_case "scheduler tracks in-flight jobs" `Quick
      test_scheduler_inflight;
    Alcotest.test_case "telemetry end-to-end: metrics, traces, progress" `Quick
      test_telemetry_end_to_end;
    Alcotest.test_case "address parsing" `Quick test_addr_parsing;
  ]
