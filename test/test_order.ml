open Tiling_core

let fast_opts seed =
  {
    Tiler.ga =
      {
        Tiling_ga.Engine.default_params with
        Tiling_ga.Engine.min_generations = 8;
        max_generations = 12;
      };
    seed;
    sample_points = Some 64;
    restarts = 2;
    domains = 1;
    backend = Tiling_search.Backend.default;
    on_eval = ignore;
  }

let repl (r : Tiling_cme.Estimator.report) =
  r.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center

let test_order_is_permutation () =
  let nest = Tiling_kernels.Kernels.mm 40 in
  let o = Tiler.optimize_with_order ~opts:(fast_opts 1) nest Tiling_cache.Config.dm8k in
  Alcotest.(check (list int)) "permutation of 0..2" [ 0; 1; 2 ]
    (List.sort compare (Array.to_list o.Tiler.order));
  Array.iter
    (fun t -> if t < 1 || t > 40 then Alcotest.failf "tile %d out of range" t)
    o.Tiler.otiles

let test_order_at_least_as_good () =
  (* The identity permutation is in the search space, so with the same
     seed/budget order search should not end up much worse than tiles-only;
     on transposes it can do better. *)
  let nest = Tiling_kernels.Kernels.t3djik 60 in
  let cache = Tiling_cache.Config.dm8k in
  let t = Tiler.optimize ~opts:(fast_opts 2) nest cache in
  let w = Tiler.optimize_with_order ~opts:(fast_opts 2) nest cache in
  Alcotest.(check bool)
    (Printf.sprintf "order search %.3f vs tiles-only %.3f" (repl w.Tiler.oafter)
       (repl t.Tiler.after))
    true
    (repl w.Tiler.oafter <= repl t.Tiler.after +. 0.03)

let test_order_deterministic () =
  let nest = Tiling_kernels.Kernels.t2d 50 in
  let a = Tiler.optimize_with_order ~opts:(fast_opts 3) nest Tiling_cache.Config.dm8k in
  let b = Tiler.optimize_with_order ~opts:(fast_opts 3) nest Tiling_cache.Config.dm8k in
  Alcotest.(check (array int)) "same order" a.Tiler.order b.Tiler.order;
  Alcotest.(check (array int)) "same tiles" a.Tiler.otiles b.Tiler.otiles

let suite =
  [
    Alcotest.test_case "order is a permutation" `Slow test_order_is_permutation;
    Alcotest.test_case "order at least as good" `Slow test_order_at_least_as_good;
    Alcotest.test_case "deterministic" `Slow test_order_deterministic;
  ]
