open Tiling_util

let qcheck = QCheck_alcotest.to_alcotest

let close ?(eps = 1e-3) msg expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let test_z_quantiles () =
  (* Standard normal two-sided critical values. *)
  close ~eps:5e-3 "z(0.90)" 1.6449 (Stats.z_for_confidence 0.90);
  close ~eps:5e-3 "z(0.95)" 1.9600 (Stats.z_for_confidence 0.95);
  close ~eps:5e-3 "z(0.99)" 2.5758 (Stats.z_for_confidence 0.99);
  close ~eps:5e-3 "z(0.80)" 1.2816 (Stats.z_for_confidence 0.80)

let test_paper_sample_size () =
  (* Section 2.3: width 0.1 at 90 % confidence => 164 points. *)
  Alcotest.(check int) "paper's 164" 164
    (Stats.required_sample_size ~width:0.1 ~confidence:0.9)

let test_sample_size_monotone () =
  let n1 = Stats.required_sample_size ~width:0.1 ~confidence:0.9 in
  let n2 = Stats.required_sample_size ~width:0.05 ~confidence:0.9 in
  let n3 = Stats.required_sample_size ~width:0.1 ~confidence:0.99 in
  Alcotest.(check bool) "narrower needs more" true (n2 > n1);
  Alcotest.(check bool) "higher confidence needs more" true (n3 > n1)

let test_proportion_interval () =
  let iv = Stats.proportion_interval ~hits:50 ~n:100 ~confidence:0.9 in
  close "center" 0.5 iv.Stats.center;
  close ~eps:2e-3 "half width at p=1/2, n=100"
    (1.6449 *. sqrt (0.25 /. 100.))
    iv.Stats.half_width;
  let iv0 = Stats.proportion_interval ~hits:0 ~n:100 ~confidence:0.9 in
  close "degenerate p=0" 0. iv0.Stats.half_width;
  let iv1 = Stats.proportion_interval ~hits:100 ~n:100 ~confidence:0.9 in
  close "degenerate p=1" 0. iv1.Stats.half_width

let test_proportion_interval_empty () =
  (* n = 0 must yield a degenerate interval, not an assertion failure. *)
  let iv = Stats.proportion_interval ~hits:0 ~n:0 ~confidence:0.9 in
  close "empty center" 0. iv.Stats.center;
  close "empty half width" 0. iv.Stats.half_width;
  close "confidence preserved" 0.9 iv.Stats.confidence

let test_proportion_interval_confidence_monotone () =
  (* Regression: the requested confidence must widen the interval, not be
     relabelled onto the default-confidence half-width. *)
  let at c = Stats.proportion_interval ~hits:30 ~n:100 ~confidence:c in
  Alcotest.(check bool) "95 % wider than 90 %" true
    ((at 0.95).Stats.half_width > (at 0.9).Stats.half_width);
  Alcotest.(check bool) "99 % wider than 95 %" true
    ((at 0.99).Stats.half_width > (at 0.95).Stats.half_width)

let test_exact_interval () =
  let iv = Stats.exact_interval ~center:0.25 in
  close "center" 0.25 iv.Stats.center;
  close "zero width" 0. iv.Stats.half_width;
  close "full confidence" 1. iv.Stats.confidence

let test_summarize_known () =
  let s = Stats.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.(check int) "count" 8 s.Stats.count;
  close "mean" 5.0 s.Stats.mean;
  close "unbiased variance" (32. /. 7.) s.Stats.variance

let test_summarize_edge () =
  let s0 = Stats.summarize [||] in
  Alcotest.(check int) "empty count" 0 s0.Stats.count;
  let s1 = Stats.summarize [| 42. |] in
  close "singleton mean" 42. s1.Stats.mean;
  close "singleton variance" 0. s1.Stats.variance

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"Welford matches two-pass mean/variance" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let a = Array.of_list xs in
      let n = float_of_int (Array.length a) in
      let mean = Array.fold_left ( +. ) 0. a /. n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a /. (n -. 1.)
      in
      let s = Stats.summarize a in
      abs_float (s.Stats.mean -. mean) < 1e-6
      && abs_float (s.Stats.variance -. var) < 1e-6 *. (1. +. var))

let prop_interval_contains_center =
  QCheck.Test.make ~name:"interval half-width non-negative and bounded"
    ~count:300
    QCheck.(pair (int_range 0 1000) (int_range 1 1000))
    (fun (h, n) ->
      QCheck.assume (h <= n);
      let iv = Stats.proportion_interval ~hits:h ~n ~confidence:0.9 in
      iv.Stats.half_width >= 0. && iv.Stats.half_width <= 1.
      && iv.Stats.center >= 0. && iv.Stats.center <= 1.)

let suite =
  [
    Alcotest.test_case "normal quantiles" `Quick test_z_quantiles;
    Alcotest.test_case "paper sample size (164)" `Quick test_paper_sample_size;
    Alcotest.test_case "sample size monotone" `Quick test_sample_size_monotone;
    Alcotest.test_case "proportion interval" `Quick test_proportion_interval;
    Alcotest.test_case "proportion interval, empty sample" `Quick
      test_proportion_interval_empty;
    Alcotest.test_case "proportion interval, confidence monotone" `Quick
      test_proportion_interval_confidence_monotone;
    Alcotest.test_case "exact interval" `Quick test_exact_interval;
    Alcotest.test_case "summarize known data" `Quick test_summarize_known;
    Alcotest.test_case "summarize edge cases" `Quick test_summarize_edge;
    qcheck prop_welford_matches_naive;
    qcheck prop_interval_contains_center;
  ]
