open Tiling_ga

let run_on ?params ~seed ~uppers objective =
  let encoding = Encoding.make uppers in
  let rng = Tiling_util.Prng.create ~seed in
  Engine.run ?params ~encoding ~objective ~rng ()

let test_optimizes_separable () =
  (* Minimise sum |v_i - 17| over [1,64]^3: smooth and separable, the GA
     must land very close to the optimum. *)
  let objective v =
    Array.fold_left (fun acc x -> acc +. float_of_int (abs (x - 17))) 0. v
  in
  let r = run_on ~seed:1 ~uppers:[| 64; 64; 64 |] objective in
  Alcotest.(check bool)
    (Printf.sprintf "best %.0f <= 6" r.Engine.best_objective)
    true
    (r.Engine.best_objective <= 6.)

let test_finds_exact_small () =
  (* Tiny space: 2 variables in [1,16]; optimum at (5, 11). *)
  let objective v =
    float_of_int ((abs (v.(0) - 5) * 3) + (abs (v.(1) - 11) * 2))
  in
  let r = run_on ~seed:2 ~uppers:[| 16; 16 |] objective in
  Alcotest.(check (float 0.01)) "exact optimum" 0. r.Engine.best_objective

let test_generation_limits () =
  let r = run_on ~seed:3 ~uppers:[| 256; 256 |] (fun v -> float_of_int v.(0)) in
  Alcotest.(check bool) "at least min generations" true (r.Engine.generations >= 15);
  Alcotest.(check bool) "at most max generations" true (r.Engine.generations <= 25);
  Alcotest.(check int) "history matches generations" r.Engine.generations
    (List.length r.Engine.history)

let test_constant_objective_converges_immediately () =
  let r = run_on ~seed:4 ~uppers:[| 100 |] (fun _ -> 0.) in
  Alcotest.(check bool) "converged" true r.Engine.converged;
  Alcotest.(check int) "stops right at the minimum generations" 15
    r.Engine.generations

let test_deterministic () =
  let objective v = float_of_int (v.(0) * v.(1)) in
  let r1 = run_on ~seed:5 ~uppers:[| 50; 50 |] objective in
  let r2 = run_on ~seed:5 ~uppers:[| 50; 50 |] objective in
  Alcotest.(check (float 0.) ) "same best" r1.Engine.best_objective r2.Engine.best_objective;
  Alcotest.(check (array int)) "same genes" r1.Engine.best_genes r2.Engine.best_genes

let test_paper_parameters () =
  let p = Engine.default_params in
  Alcotest.(check int) "population 30" 30 p.Engine.population;
  Alcotest.(check (float 1e-9)) "crossover 0.9" 0.9 p.Engine.crossover_p;
  Alcotest.(check (float 1e-9)) "mutation 0.001" 0.001 p.Engine.mutation_p;
  Alcotest.(check int) "min 15" 15 p.Engine.min_generations;
  Alcotest.(check int) "max 25" 25 p.Engine.max_generations;
  Alcotest.(check (float 1e-9)) "convergence 2%" 0.02 p.Engine.convergence_threshold

let test_evaluations_bounded () =
  let count = ref 0 in
  let objective v =
    incr count;
    float_of_int v.(0)
  in
  let r = run_on ~seed:6 ~uppers:[| 512 |] objective in
  Alcotest.(check int) "engine reports its calls" !count r.Engine.evaluations;
  Alcotest.(check bool) "within population * max generations" true
    (!count <= 30 * 25)

let test_best_never_worsens_with_elitism () =
  let objective v = float_of_int (abs (v.(0) - 100)) in
  let r = run_on ~seed:7 ~uppers:[| 512 |] objective in
  let bests = List.map (fun s -> s.Engine.best) r.Engine.history in
  (* With elitism the per-generation best can never regress. *)
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "per-generation best non-increasing" true
    (non_increasing bests)

let test_no_elitism_mode () =
  let params = { Engine.default_params with Engine.elitism = false } in
  let objective v = float_of_int (abs (v.(0) - 9)) in
  let r = run_on ~params ~seed:8 ~uppers:[| 64 |] objective in
  Alcotest.(check bool) "still finds a decent solution" true
    (r.Engine.best_objective <= 5.)

let test_history_stats_consistent () =
  let objective v = float_of_int v.(0) in
  let r = run_on ~seed:9 ~uppers:[| 128 |] objective in
  List.iter
    (fun s ->
      if s.Engine.best > s.Engine.average +. 1e-9 then
        Alcotest.fail "generation best exceeds its average";
      let pop = Engine.default_params.Engine.population in
      if s.Engine.distinct < 1 || s.Engine.distinct > pop then
        Alcotest.failf "distinct genotypes %d outside [1, %d]"
          s.Engine.distinct pop)
    r.Engine.history

let suite =
  [
    Alcotest.test_case "optimizes separable function" `Quick test_optimizes_separable;
    Alcotest.test_case "finds small-space optimum" `Quick test_finds_exact_small;
    Alcotest.test_case "generation limits (fig 7)" `Quick test_generation_limits;
    Alcotest.test_case "constant objective converges" `Quick
      test_constant_objective_converges_immediately;
    Alcotest.test_case "deterministic under seed" `Quick test_deterministic;
    Alcotest.test_case "paper parameters" `Quick test_paper_parameters;
    Alcotest.test_case "evaluation accounting" `Quick test_evaluations_bounded;
    Alcotest.test_case "elitism keeps the best" `Quick
      test_best_never_worsens_with_elitism;
    Alcotest.test_case "no-elitism mode" `Quick test_no_elitism_mode;
    Alcotest.test_case "history consistency" `Quick test_history_stats_consistent;
  ]

let test_selection_pressure_statistics () =
  (* Remainder stochastic selection: over many generations, an individual
     with twice the fitness must be selected about twice as often.  We
     observe it indirectly: on a two-value landscape the better value must
     take over the population within a few generations. *)
  let objective v = if v.(0) <= 32 then 0. else 100. in
  let encoding = Encoding.make [| 64 |] in
  let rng = Tiling_util.Prng.create ~seed:11 in
  let seen_takeover = ref false in
  let r =
    Engine.run ~encoding ~objective ~rng
      ~on_generation:(fun s ->
        if s.Engine.generation >= 10 && s.Engine.average < 20. then
          seen_takeover := true)
      ()
  in
  Alcotest.(check (float 0.01)) "optimum found" 0. r.Engine.best_objective;
  Alcotest.(check bool) "good genes take over the population" true !seen_takeover

let test_mutation_saturated () =
  (* With per-bit mutation probability 1 every gene bit flips each
     generation, so no genotype can persist: the search degenerates to
     noise but must still run to completion within the generation limits
     and report a finite best. *)
  let params =
    { Engine.default_params with Engine.mutation_p = 1.0; elitism = false }
  in
  let encoding = Encoding.make [| 256 |] in
  let rng = Tiling_util.Prng.create ~seed:13 in
  let r =
    Engine.run ~params ~encoding ~objective:(fun v -> float_of_int v.(0)) ~rng ()
  in
  Alcotest.(check bool) "finite best under saturated mutation" true
    (r.Engine.best_objective >= 1. && r.Engine.best_objective <= 256.);
  Alcotest.(check bool) "ran to a limit" true
    (r.Engine.generations >= 15 && r.Engine.generations <= 25)

let test_crossover_disabled_still_works () =
  let params = { Engine.default_params with Engine.crossover_p = 0. } in
  let encoding = Encoding.make [| 64; 64 |] in
  let rng = Tiling_util.Prng.create ~seed:12 in
  let r =
    Engine.run ~params ~encoding
      ~objective:(fun v -> float_of_int (abs (v.(0) - 3) + abs (v.(1) - 60)))
      ~rng ()
  in
  Alcotest.(check bool) "selection+mutation alone still improves" true
    (r.Engine.best_objective < 30.)

let count_copies chosen pop =
  Array.map (fun x -> Array.fold_left (fun n y -> if y = x then n + 1 else n) 0 chosen) pop

let test_select_remainder_bounds () =
  (* Goldberg's remainder stochastic sampling without replacement: with
     expectations e = [1.9; 1.9; 0.1; 0.1] each individual must receive
     between floor(e_i) and ceil(e_i) copies, every run, any seed.  The
     old implementation redrew the fractional part on every fill pass, so
     a lucky individual could exceed ceil(e_i). *)
  let pop = [| 0; 1; 2; 3 |] in
  let fitness = [| 1.9; 1.9; 0.1; 0.1 |] in
  let n = 4 in
  for seed = 1 to 500 do
    let rng = Tiling_util.Prng.create ~seed in
    let chosen = Engine.select rng pop fitness n in
    Alcotest.(check int) "exactly n selected" n (Array.length chosen);
    let counts = count_copies chosen pop in
    Array.iteri
      (fun i c ->
        let lo = int_of_float fitness.(i)
        and hi = int_of_float (Float.ceil fitness.(i)) in
        if c < lo || c > hi then
          Alcotest.failf "seed %d: individual %d got %d copies, expected [%d,%d]"
            seed i c lo hi)
      counts
  done

let test_select_integer_expectations_deterministic () =
  (* All-integer expectations leave nothing to chance: e = [2; 1; 1; 0]
     must produce exactly those copy counts for every seed. *)
  let pop = [| 10; 20; 30; 40 |] in
  let fitness = [| 2.; 1.; 1.; 0. |] in
  for seed = 1 to 100 do
    let rng = Tiling_util.Prng.create ~seed in
    let chosen = Engine.select rng pop fitness 4 in
    Alcotest.(check (array int))
      (Printf.sprintf "seed %d copy counts" seed)
      [| 2; 1; 1; 0 |]
      (count_copies chosen pop)
  done

let test_select_zero_fitness_uniform () =
  (* A zero-total fitness vector cannot divide by the total; it must
     degrade to a uniform draw of the right size. *)
  let pop = [| 1; 2; 3 |] in
  let rng = Tiling_util.Prng.create ~seed:42 in
  let chosen = Engine.select rng pop [| 0.; 0.; 0. |] 6 in
  Alcotest.(check int) "size respected" 6 (Array.length chosen);
  Array.iter
    (fun x ->
      if not (Array.exists (( = ) x) pop) then
        Alcotest.failf "selected %d not in population" x)
    chosen

let suite =
  suite
  @ [
      Alcotest.test_case "selection pressure" `Quick test_selection_pressure_statistics;
      Alcotest.test_case "saturated mutation" `Quick test_mutation_saturated;
      Alcotest.test_case "no-crossover mode" `Quick test_crossover_disabled_still_works;
      Alcotest.test_case "select: remainder copy bounds" `Quick
        test_select_remainder_bounds;
      Alcotest.test_case "select: integer expectations deterministic" `Quick
        test_select_integer_expectations_deterministic;
      Alcotest.test_case "select: zero fitness is uniform" `Quick
        test_select_zero_fitness_uniform;
    ]
