open Tiling_util
open Tiling_cme
open Tiling_fuzz

(* dune runtest executes in the test build directory (where the dep is
   copied); fall back to the source path for `dune exec` from the root. *)
let corpus_file =
  if Sys.file_exists "fuzz_corpus.txt" then "fuzz_corpus.txt"
  else Filename.concat "test" "fuzz_corpus.txt"

(* Every checked-in repro is a once-real solver bug; replay must agree
   exactly (a fallback-masked verdict would also be a regression — these
   cases are tiny and fallback-free). *)
let test_corpus_replays () =
  match Driver.load_corpus corpus_file with
  | Error m -> Alcotest.fail ("corpus did not load: " ^ m)
  | Ok cases ->
      Alcotest.(check bool) "corpus has entries" true (cases <> []);
      List.iter
        (fun case ->
          let r = Oracle.check_case case in
          match r.Oracle.verdict with
          | Oracle.Agree -> ()
          | Oracle.Mismatch _ | Oracle.Inconclusive _ ->
              Alcotest.failf "corpus regression on %s:@ %a"
                (Case.to_string case) Oracle.pp_result r)
        cases

let test_case_round_trip () =
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 50 do
    let case = Driver.draw_case Driver.default_knobs rng in
    match Case.of_string (Case.to_string case) with
    | Error m -> Alcotest.fail ("case did not reparse: " ^ m)
    | Ok back ->
        Alcotest.(check string) "round trip" (Case.to_string case)
          (Case.to_string back)
  done

let test_run_deterministic () =
  let run () = Driver.run ~trials:20 ~seed:42 () in
  let o1 = run () and o2 = run () in
  Alcotest.(check int) "trials" o1.Driver.trials_run o2.Driver.trials_run;
  Alcotest.(check int) "agreed" o1.Driver.agreed o2.Driver.agreed;
  Alcotest.(check int) "accesses" o1.Driver.accesses o2.Driver.accesses;
  Alcotest.(check int) "mismatches" 0 (List.length o1.Driver.mismatches)

let test_smoke_campaign () =
  (* A bounded in-process campaign: the oracle property must hold on fresh
     random cases, not only on the replayed corpus. *)
  let o = Driver.run ~trials:30 ~seed:7 () in
  Alcotest.(check int) "30 trials ran" 30 o.Driver.trials_run;
  List.iter
    (fun (m : Driver.mismatch) ->
      Alcotest.failf "fuzz mismatch (trial %d): shrunk to %s" m.Driver.trial
        (Case.to_string m.Driver.shrunk))
    o.Driver.mismatches

(* The oracle on the paper's own kernels: exact CME counts must equal the
   simulator per reference on every kernel in the rotation — Table 1 plus
   the triangular extras (SOR, LU, Cholesky, syrk) — at two geometries a
   world apart (tiny direct-mapped; larger 4-way). *)
let test_paper_kernels_agree () =
  let geometries =
    [
      Tiling_cache.Config.make ~size:256 ~line:16 ();
      Tiling_cache.Config.make ~size:4096 ~line:32 ~assoc:4 ();
    ]
  in
  List.iter
    (fun (s : Tiling_kernels.Kernels.spec) ->
      let nest = s.build 8 in
      List.iter
        (fun cache ->
          let r = Oracle.check nest cache in
          match r.Oracle.verdict with
          | Oracle.Agree | Oracle.Inconclusive _ -> ()
          | Oracle.Mismatch _ ->
              Alcotest.failf "%s disagrees:@ %a" s.name Oracle.pp_result r)
        geometries)
    Tiling_kernels.Kernels.rotation

let test_triangular_smoke_campaign () =
  (* The triangular generator under the oracle: with tri=100 most drawn
     cases carry affine bounds, driving the latest-source solver path. *)
  let knobs =
    match Driver.knobs_of_string "tri=100" with
    | Ok k -> k
    | Error m -> Alcotest.fail m
  in
  let o = Driver.run ~knobs ~trials:40 ~seed:13 () in
  Alcotest.(check int) "40 trials ran" 40 o.Driver.trials_run;
  List.iter
    (fun (m : Driver.mismatch) ->
      Alcotest.failf "triangular fuzz mismatch (trial %d): shrunk to %s"
        m.Driver.trial
        (Case.to_string m.Driver.shrunk))
    o.Driver.mismatches

let test_tri_knob_off_preserves_streams () =
  (* tri=0 must not consume generator draws: the drawn cases are the exact
     cases a pre-triangular build drew, so old campaign seeds and corpus
     shrinks stay reproducible. *)
  let rng = Prng.create ~seed:29 in
  let with_default = List.init 20 (fun _ -> Driver.draw_case Driver.default_knobs rng) in
  let knobs =
    match Driver.knobs_of_string "tri=0" with
    | Ok k -> k
    | Error m -> Alcotest.fail m
  in
  let rng' = Prng.create ~seed:29 in
  let with_explicit_zero = List.init 20 (fun _ -> Driver.draw_case knobs rng') in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "identical case" (Case.to_string a)
        (Case.to_string b))
    with_default with_explicit_zero;
  List.iter
    (fun c ->
      Alcotest.(check (float 0.)) "tri_ratio stays 0" 0.
        c.Case.spec.Tiling_kernels.Random_kernel.tri_ratio)
    with_default

let test_shrinker_only_shrinks () =
  (* On an agreeing case the shrinker must return it unchanged after one
     probe (nothing to minimize). *)
  let rng = Prng.create ~seed:3 in
  let case = Driver.draw_case Driver.default_knobs rng in
  let shrunk, checks = Shrink.minimize case in
  Alcotest.(check string) "agreeing case unchanged" (Case.to_string case)
    (Case.to_string shrunk);
  Alcotest.(check int) "one oracle probe" 1 checks

let test_knobs_parse () =
  (match Driver.knobs_of_string "depth=2,extent=8,line=32" with
  | Error m -> Alcotest.fail m
  | Ok k ->
      Alcotest.(check int) "depth" 2 k.Driver.max_depth;
      Alcotest.(check int) "extent" 8 k.Driver.max_extent;
      Alcotest.(check (list int)) "line pinned" [ 32 ] k.Driver.lines);
  (match Driver.knobs_of_string "depth=2,tri=45" with
  | Error m -> Alcotest.fail m
  | Ok k -> Alcotest.(check int) "tri percent" 45 k.Driver.max_tri_pct);
  (match Driver.knobs_of_string "line=33" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-power-of-two line accepted");
  (match Driver.knobs_of_string "tri=101" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tri > 100 accepted");
  match Driver.knobs_of_string "bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown knob accepted"

(* Satellite regressions: the estimator's interval plumbing. *)

let mm_engine () =
  let nest = Tiling_kernels.Kernels.mm 10 in
  let cache = Tiling_cache.Config.make ~size:512 ~line:32 () in
  Engine.create nest cache

let test_sample_honours_confidence () =
  (* Regression: a non-default [confidence] used to be relabelled onto the
     default-confidence half-width.  On the same point set, a 95 % interval
     must be strictly wider than a 90 % one. *)
  let engine = mm_engine () in
  let pts = Array.init 40 (fun i -> [| 1 + (i mod 10); 1 + (i mod 7); 1 |]) in
  let width c =
    (Estimator.sample_at ~confidence:c engine pts).Estimator.miss_ratio
      .Stats.half_width
  in
  let w90 = width 0.9 and w95 = width 0.95 in
  Alcotest.(check bool) "95 % interval wider than 90 %" true (w95 > w90)

let test_sample_at_empty () =
  let r = Estimator.sample_at (mm_engine ()) [||] in
  Alcotest.(check int) "no points" 0 r.Estimator.points;
  Alcotest.(check int) "no accesses" 0 r.Estimator.accesses;
  Alcotest.(check (float 0.)) "degenerate interval" 0.
    r.Estimator.miss_ratio.Stats.half_width

let test_exact_reports_certainty () =
  let r = Estimator.exact (mm_engine ()) in
  Alcotest.(check (float 0.)) "exact interval has zero width" 0.
    r.Estimator.miss_ratio.Stats.half_width;
  Alcotest.(check (float 0.)) "exact interval is certain" 1.
    r.Estimator.miss_ratio.Stats.confidence

let suite =
  [
    Alcotest.test_case "corpus replays clean" `Quick test_corpus_replays;
    Alcotest.test_case "case round-trips" `Quick test_case_round_trip;
    Alcotest.test_case "run is deterministic" `Quick test_run_deterministic;
    Alcotest.test_case "smoke campaign agrees" `Slow test_smoke_campaign;
    Alcotest.test_case "triangular smoke campaign agrees" `Slow
      test_triangular_smoke_campaign;
    Alcotest.test_case "tri=0 preserves rectangular streams" `Quick
      test_tri_knob_off_preserves_streams;
    Alcotest.test_case "paper kernels agree" `Slow test_paper_kernels_agree;
    Alcotest.test_case "shrinker no-op on agreement" `Quick
      test_shrinker_only_shrinks;
    Alcotest.test_case "knob parsing" `Quick test_knobs_parse;
    Alcotest.test_case "sample honours confidence" `Quick
      test_sample_honours_confidence;
    Alcotest.test_case "sample_at on empty points" `Quick test_sample_at_empty;
    Alcotest.test_case "exact reports certainty" `Quick
      test_exact_reports_certainty;
  ]
