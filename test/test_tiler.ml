open Tiling_core

(* Small, fast GA settings for tests. *)
let fast_opts seed =
  {
    Tiler.ga =
      {
        Tiling_ga.Engine.default_params with
        Tiling_ga.Engine.min_generations = 8;
        max_generations = 12;
      };
    seed;
    sample_points = Some 64;
    restarts = 2;
    domains = 1;
    backend = Tiling_search.Backend.default;
    on_eval = ignore;
  }

let test_t2d_removes_replacement () =
  (* The paper's headline: transposition tiling wipes out replacement
     misses (table 2: 36.4 % -> 0.9 %). *)
  let nest = Tiling_kernels.Kernels.t2d 500 in
  let o = Tiler.optimize ~opts:(fast_opts 1) nest Tiling_cache.Config.dm8k in
  let before = o.Tiler.before.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center in
  let after = o.Tiler.after.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center in
  Alcotest.(check bool) "before is substantial" true (before > 0.2);
  Alcotest.(check bool) "after is near zero" true (after < 0.05)

let test_tiles_within_bounds () =
  let nest = Tiling_kernels.Kernels.mm 60 in
  let o = Tiler.optimize ~opts:(fast_opts 2) nest Tiling_cache.Config.dm8k in
  Array.iteri
    (fun l t ->
      if t < 1 || t > 60 then Alcotest.failf "tile %d of loop %d out of bounds" t l)
    o.Tiler.tiles

let test_never_worse_than_untiled () =
  let nest = Tiling_kernels.Kernels.mm 60 in
  let cache = Tiling_cache.Config.dm8k in
  let opts = fast_opts 3 in
  let o = Tiler.optimize ~opts nest cache in
  let sample = Sample.create ?n:opts.Tiler.sample_points ~seed:opts.Tiler.seed nest in
  let untiled = Tiler.objective_on sample nest cache (Tiling_ir.Transform.tile_spans nest) in
  Alcotest.(check bool) "GA <= untiled objective" true
    (o.Tiler.ga.Tiling_ga.Engine.best_objective <= untiled)

let test_compulsory_unchanged () =
  let nest = Tiling_kernels.Kernels.t2d 200 in
  let o = Tiler.optimize ~opts:(fast_opts 4) nest Tiling_cache.Config.dm8k in
  (* Same sample before and after: compulsory misses are invariant. *)
  Alcotest.(check int) "compulsory invariant"
    o.Tiler.before.Tiling_cme.Estimator.compulsory
    o.Tiler.after.Tiling_cme.Estimator.compulsory

let test_deterministic () =
  let nest = Tiling_kernels.Kernels.t2d 100 in
  let o1 = Tiler.optimize ~opts:(fast_opts 5) nest Tiling_cache.Config.dm8k in
  let o2 = Tiler.optimize ~opts:(fast_opts 5) nest Tiling_cache.Config.dm8k in
  Alcotest.(check (array int)) "same tiles" o1.Tiler.tiles o2.Tiler.tiles

let test_objective_on_matches_report () =
  let nest = Tiling_kernels.Kernels.mm 40 in
  let cache = Tiling_cache.Config.dm8k in
  let sample = Sample.create ~n:50 ~seed:6 nest in
  let tiles = [| 10; 5; 8 |] in
  let obj = Tiler.objective_on sample nest cache tiles in
  Alcotest.(check bool) "objective is a non-negative count" true
    (obj >= 0. && Float.is_integer obj)

let suite =
  [
    Alcotest.test_case "T2D replacement removed" `Slow test_t2d_removes_replacement;
    Alcotest.test_case "tiles within bounds" `Slow test_tiles_within_bounds;
    Alcotest.test_case "never worse than untiled" `Slow test_never_worse_than_untiled;
    Alcotest.test_case "compulsory invariant" `Slow test_compulsory_unchanged;
    Alcotest.test_case "deterministic" `Slow test_deterministic;
    Alcotest.test_case "objective sanity" `Quick test_objective_on_matches_report;
  ]
