open Tiling_cache

let l1 = Config.make ~size:512 ~line:32 ()
let l2 = Config.make ~size:4096 ~line:32 ()

let test_basic_propagation () =
  let h = Hierarchy.create [ l1; l2 ] in
  (* cold: misses both levels *)
  Alcotest.(check int) "cold access misses both" 2 (Hierarchy.access h ~ref_id:0 ~addr:0);
  (* immediately after: L1 hit *)
  Alcotest.(check int) "L1 hit" 0 (Hierarchy.access h ~ref_id:0 ~addr:8);
  (* evict line 0 from tiny L1 (512B/32B = 16 sets direct-mapped) *)
  Alcotest.(check int) "conflict in L1 only" 2 (Hierarchy.access h ~ref_id:0 ~addr:512);
  (* line 0: L1 miss (evicted), L2 hit *)
  Alcotest.(check int) "L1 miss, L2 hit" 1 (Hierarchy.access h ~ref_id:0 ~addr:0)

let test_level_counts () =
  let h = Hierarchy.create [ l1; l2 ] in
  List.iter (fun a -> ignore (Hierarchy.access h ~ref_id:0 ~addr:a)) [ 0; 512; 0; 512 ];
  let counts = Hierarchy.level_counts h in
  Alcotest.(check int) "L1 sees all" 4 counts.(0).Sim.accesses;
  Alcotest.(check int) "L1 misses all (ping-pong)" 4 counts.(0).Sim.misses;
  Alcotest.(check int) "L2 sees L1 misses" 4 counts.(1).Sim.accesses;
  Alcotest.(check int) "L2 misses only cold" 2 counts.(1).Sim.misses

let test_reset () =
  let h = Hierarchy.create [ l1; l2 ] in
  ignore (Hierarchy.access h ~ref_id:0 ~addr:0);
  Hierarchy.reset h;
  Alcotest.(check int) "cold again" 2 (Hierarchy.access h ~ref_id:0 ~addr:0)

let test_empty_rejected () =
  try
    ignore (Hierarchy.create []);
    Alcotest.fail "empty hierarchy accepted"
  with Invalid_argument _ -> ()

let test_stack_property_on_kernel () =
  (* The justification for analysing levels independently: L2 misses under
     the filtered stream track misses of the full stream against L2 alone.
     Exact equality is not guaranteed for set-associative levels, so allow
     a small relative slack. *)
  List.iter
    (fun nest ->
      let counts = Tiling_trace.Run.simulate_hierarchy nest [ l1; l2 ] in
      let solo = Tiling_trace.Run.simulate nest l2 in
      let filtered = counts.(1).Sim.misses in
      let full = solo.Tiling_trace.Run.total.Sim.misses in
      let deviation =
        abs (filtered - full) |> float_of_int |> fun d ->
        d /. float_of_int (max 1 full)
      in
      if deviation > 0.02 then
        Alcotest.failf "%s: filtered %d vs full %d" nest.Tiling_ir.Nest.name
          filtered full)
    [
      Tiling_kernels.Kernels.mm 16;
      Tiling_kernels.Kernels.t2d 24;
      Tiling_ir.Transform.tile (Tiling_kernels.Kernels.mm 16) [| 4; 8; 4 |];
    ]

let test_cme_predicts_both_levels () =
  (* Independent CME analyses of L1 and L2 match the hierarchy simulation. *)
  let nest = Tiling_kernels.Kernels.mm 16 in
  let counts = Tiling_trace.Run.simulate_hierarchy nest [ l1; l2 ] in
  let check level cfg =
    let est = Tiling_cme.Estimator.exact (Tiling_cme.Engine.create nest cfg) in
    let total_accesses = counts.(0).Sim.accesses in
    let sim_ratio = float_of_int counts.(level).Sim.misses /. float_of_int total_accesses in
    let cme_ratio = est.Tiling_cme.Estimator.miss_ratio.Tiling_util.Stats.center in
    if abs_float (sim_ratio -. cme_ratio) > 0.02 then
      Alcotest.failf "level %d: sim %.4f vs cme %.4f" level sim_ratio cme_ratio
  in
  check 0 l1;
  check 1 l2

let suite =
  [
    Alcotest.test_case "miss propagation" `Quick test_basic_propagation;
    Alcotest.test_case "level counts" `Quick test_level_counts;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "LRU stack property" `Quick test_stack_property_on_kernel;
    Alcotest.test_case "CME per level" `Quick test_cme_predicts_both_levels;
  ]

let test_three_levels () =
  let l3 = Config.make ~size:16384 ~line:32 ~assoc:2 () in
  let h = Hierarchy.create [ l1; l2; l3 ] in
  Alcotest.(check int) "cold misses all three" 3 (Hierarchy.access h ~ref_id:0 ~addr:0);
  Alcotest.(check int) "then hits L1" 0 (Hierarchy.access h ~ref_id:0 ~addr:0);
  let counts = Hierarchy.level_counts h in
  Alcotest.(check int) "L3 saw one access" 1 counts.(2).Sim.accesses

let suite =
  suite @ [ Alcotest.test_case "three levels" `Quick test_three_levels ]

(* Satellite of the daemon PR: a multi-level cost model exercised through
   the shared evaluation service.  The backend aggregates per-level miss
   counts into one scalar (10-cycle L2 probes, 100-cycle memory); Eval
   must report exactly the directly-computed aggregate for every
   candidate, deduplicate batches, and memoize repeats. *)

let hier_cost levels nest =
  let counts = Tiling_trace.Run.simulate_hierarchy nest levels in
  float_of_int ((10 * counts.(0).Sim.misses) + (100 * counts.(1).Sim.misses))

let test_hierarchy_cost_through_eval () =
  let base = Tiling_kernels.Kernels.mm 12 in
  let levels = [ l1; l2 ] in
  let backend =
    {
      Tiling_search.Backend.name = "sim-hier";
      cost = (fun _cache nest ~points:_ -> hier_cost levels nest);
    }
  in
  let eval =
    Tiling_search.Eval.create ~backend ~cache:l1
      ~prepare:(fun tiles -> (Tiling_ir.Transform.tile base (Array.copy tiles), [||]))
      ()
  in
  let direct tiles = hier_cost levels (Tiling_ir.Transform.tile base tiles) in
  let cands = [| [| 4; 4; 4 |]; [| 2; 8; 4 |]; [| 12; 1; 6 |]; [| 4; 4; 4 |] |] in
  let got = Tiling_search.Eval.evaluate_all eval cands in
  Array.iteri
    (fun i c ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "candidate %d aggregates both levels" i)
        (direct c) got.(i))
    cands;
  Alcotest.(check int) "4 individuals, 3 distinct" 3
    (Tiling_search.Eval.distinct eval);
  Alcotest.(check int) "each distinct costed once" 3
    (Tiling_search.Eval.fresh eval);
  let v = Tiling_search.Eval.objective eval [| 4; 4; 4 |] in
  Alcotest.(check (float 1e-9)) "objective agrees with evaluate_all" got.(0) v;
  Alcotest.(check int) "repeat served from the memo" 3
    (Tiling_search.Eval.fresh eval);
  (* the aggregate really is hierarchical: it differs from L1-only cost
     for at least one candidate, so the test cannot pass vacuously *)
  let l1_only tiles =
    let counts =
      Tiling_trace.Run.simulate_hierarchy (Tiling_ir.Transform.tile base tiles) [ l1 ]
    in
    float_of_int (10 * counts.(0).Sim.misses)
  in
  Alcotest.(check bool) "L2 term contributes" true
    (Array.exists (fun c -> direct c <> l1_only c) cands)

let suite =
  suite
  @ [
      Alcotest.test_case "hierarchy cost aggregation through Eval" `Quick
        test_hierarchy_cost_through_eval;
    ]
