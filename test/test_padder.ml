open Tiling_ir
open Tiling_core

let fast_opts seed =
  {
    Padder.ga =
      {
        Tiling_ga.Engine.default_params with
        Tiling_ga.Engine.min_generations = 8;
        max_generations = 12;
      };
    seed;
    sample_points = Some 64;
    max_intra = 8;
    max_inter = 16;
    restarts = 2;
    domains = 1;
    backend = Tiling_search.Backend.default;
    on_eval = ignore;
  }

let repl r = r.Tiling_cme.Estimator.replacement_ratio.Tiling_util.Stats.center

let test_vpenta_conflicts_removed () =
  (* All VPENTA planes are a multiple of the cache size apart: padding must
     break the alignment (table 3: 78.3 % -> 52.4 % for the paper; our
     layout responds even more strongly). *)
  let nest = Tiling_kernels.Kernels.vpenta1 128 in
  let o = Padder.optimize ~opts:(fast_opts 1) nest Tiling_cache.Config.dm8k in
  Alcotest.(check bool) "before is conflict-dominated" true (repl o.Padder.before > 0.5);
  Alcotest.(check bool) "padding removes most of it" true
    (repl o.Padder.after < repl o.Padder.before /. 2.)

let test_state_restored () =
  let nest = Tiling_kernels.Kernels.vpenta1 128 in
  let bases () =
    List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest.Nest.arrays
  in
  let layouts () =
    List.map (fun (a : Array_decl.t) -> Array.to_list a.Array_decl.layout) nest.Nest.arrays
  in
  let b0 = bases () and l0 = layouts () in
  ignore (Padder.optimize ~opts:(fast_opts 2) nest Tiling_cache.Config.dm8k);
  Alcotest.(check (list int)) "bases restored" b0 (bases ());
  Alcotest.(check bool) "layouts restored" true (l0 = layouts ())

let test_with_padding_restores_on_exception () =
  let nest = Tiling_kernels.Kernels.mm 10 in
  let b0 = List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest.Nest.arrays in
  let pad = { Transform.inter = [| 8; 16; 24 |]; intra = [| 1; 2; 3 |] } in
  (try Padder.with_padding nest pad (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check (list int)) "bases restored after exception" b0
    (List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest.Nest.arrays)

let test_padding_within_search_space () =
  let nest = Tiling_kernels.Kernels.vpenta2 128 in
  let opts = fast_opts 3 in
  let o = Padder.optimize ~opts nest Tiling_cache.Config.dm8k in
  Array.iter
    (fun p ->
      if p < 0 || p > opts.Padder.max_intra then
        Alcotest.failf "intra pad %d out of space" p)
    o.Padder.padding.Transform.intra;
  Array.iter
    (fun p ->
      if p < 0 || p > opts.Padder.max_inter * 8 then
        Alcotest.failf "inter pad %d out of space" p)
    o.Padder.padding.Transform.inter

let test_pad_then_tile_pipeline () =
  let nest = Tiling_kernels.Kernels.vpenta2 128 in
  let topts =
    { Tiler.default_opts with Tiler.sample_points = Some 64; seed = 4; restarts = 2 }
  in
  let c = Optimizer.pad_then_tile ~topts ~popts:(fast_opts 4) nest Tiling_cache.Config.dm8k in
  Alcotest.(check bool) "padded+tiled beats original" true
    (repl c.Optimizer.padded_tiled < repl c.Optimizer.original);
  Alcotest.(check bool) "padded+tiled near zero" true
    (repl c.Optimizer.padded_tiled < 0.05);
  (* pipeline must leave the canonical placement behind *)
  let nest2 = Tiling_kernels.Kernels.vpenta2 128 in
  Alcotest.(check (list int)) "canonical placement restored"
    (List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest2.Nest.arrays)
    (List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest.Nest.arrays)

let test_joint_search () =
  (* Future-work extension: one GA over tiles and padding together must do
     at least as well as padding-only on a conflict kernel. *)
  let nest = Tiling_kernels.Kernels.vpenta1 128 in
  let topts =
    { Tiler.default_opts with Tiler.sample_points = Some 64; seed = 5; restarts = 2 }
  in
  let j = Optimizer.pad_and_tile ~topts ~popts:(fast_opts 5) nest Tiling_cache.Config.dm8k in
  Alcotest.(check bool) "joint search removes conflicts" true
    (repl j.Optimizer.optimized < 0.1);
  let spans = Transform.tile_spans nest in
  Array.iteri
    (fun l t ->
      if t < 1 || t > spans.(l) then Alcotest.failf "joint tile %d out of range" t)
    j.Optimizer.tiles

let suite =
  [
    Alcotest.test_case "VPENTA conflicts removed" `Slow test_vpenta_conflicts_removed;
    Alcotest.test_case "arrays restored" `Slow test_state_restored;
    Alcotest.test_case "with_padding exception safety" `Quick
      test_with_padding_restores_on_exception;
    Alcotest.test_case "padding within space" `Slow test_padding_within_search_space;
    Alcotest.test_case "pad-then-tile pipeline" `Slow test_pad_then_tile_pipeline;
    Alcotest.test_case "joint pad+tile search" `Slow test_joint_search;
  ]

let test_padding_under_fixed_tiling () =
  (* Padding evaluated under a fixed tiling (the paper applies padding
     before tiling; the evaluator also supports the reverse order). *)
  let nest = Tiling_kernels.Kernels.vpenta1 128 in
  let tiles = [| 16; 32 |] in
  let o =
    Padder.optimize ~opts:(fast_opts 6) ~tiles nest Tiling_cache.Config.dm8k
  in
  Alcotest.(check bool) "padding helps under tiling too" true
    (repl o.Padder.after < repl o.Padder.before);
  (* and the canonical placement is restored afterwards *)
  let fresh = Tiling_kernels.Kernels.vpenta1 128 in
  Alcotest.(check (list int)) "placement restored"
    (List.map (fun (a : Array_decl.t) -> a.Array_decl.base) fresh.Nest.arrays)
    (List.map (fun (a : Array_decl.t) -> a.Array_decl.base) nest.Nest.arrays)

let suite =
  suite
  @ [
      Alcotest.test_case "padding under fixed tiling" `Slow
        test_padding_under_fixed_tiling;
    ]
