open Tiling_util

let test_map_matches_sequential () =
  let xs = Array.init 1000 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "%d domains" domains)
        (Array.map f xs)
        (Par.map ~domains f xs))
    [ 1; 2; 3; 8 ]

let test_map_edge_sizes () =
  Alcotest.(check (array int)) "empty" [||] (Par.map ~domains:4 succ [||]);
  Alcotest.(check (array int)) "singleton" [| 2 |] (Par.map ~domains:4 succ [| 1 |]);
  Alcotest.(check (array int)) "fewer items than domains" [| 2; 3 |]
    (Par.map ~domains:8 succ [| 1; 2 |])

let test_exceptions_propagate () =
  try
    ignore (Par.map ~domains:3 (fun x -> if x = 7 then failwith "boom" else x)
              (Array.init 20 Fun.id));
    Alcotest.fail "exception swallowed"
  with Failure m -> Alcotest.(check string) "original exception" "boom" m

let test_parallel_tiler_equivalent () =
  (* The search must be bit-identical regardless of the domain count. *)
  let nest = Tiling_kernels.Kernels.t2d 100 in
  let cache = Tiling_cache.Config.dm8k in
  let opts domains =
    {
      Tiling_core.Tiler.ga =
        {
          Tiling_ga.Engine.default_params with
          Tiling_ga.Engine.min_generations = 6;
          max_generations = 8;
        };
      seed = 21;
      sample_points = Some 64;
      restarts = 1;
      domains;
      backend = Tiling_search.Backend.default;
      on_eval = ignore;
    }
  in
  let seq = Tiling_core.Tiler.optimize ~opts:(opts 1) nest cache in
  let par = Tiling_core.Tiler.optimize ~opts:(opts 4) nest cache in
  Alcotest.(check (array int)) "same tiles" seq.Tiling_core.Tiler.tiles
    par.Tiling_core.Tiler.tiles;
  Alcotest.(check (float 0.)) "same objective"
    seq.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective
    par.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective

let test_recommended_domains () =
  let d = Par.recommended_domains () in
  Alcotest.(check bool) "in [1, 8]" true (d >= 1 && d <= 8)

(* [Pool.run] clamps its helper count to the hardware unless TILING_DOMAINS
   overrides it, so on a small CI machine the pool tests below force real
   worker domains by setting the override for their duration. *)
let with_domains_env v f =
  let old = Sys.getenv_opt "TILING_DOMAINS" in
  Unix.putenv "TILING_DOMAINS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "TILING_DOMAINS" (Option.value old ~default:""))
    f

let test_pool_worker_exception () =
  with_domains_env "4" (fun () ->
      Pool.shutdown ();
      (try
         ignore
           (Par.map ~domains:4
              (fun x -> if x = 13 then failwith "pool-boom" else x)
              (Array.init 64 Fun.id));
         Alcotest.fail "exception swallowed"
       with Failure m ->
         Alcotest.(check string) "original exception" "pool-boom" m);
      Alcotest.(check bool) "workers survived the failure" true
        (Pool.size () >= 1);
      (* The pool is still usable after a failed batch. *)
      Alcotest.(check (array int)) "next batch is clean"
        (Array.init 64 succ)
        (Par.map ~domains:4 succ (Array.init 64 Fun.id)))

let test_nested_map_runs_inline () =
  with_domains_env "4" (fun () ->
      let expected =
        Array.init 16 (fun i -> Array.init 8 (fun j -> ((i * 8) + j) * 2))
      in
      let got =
        Par.map ~domains:4
          (fun i -> Par.map ~domains:4 (fun j -> ((i * 8) + j) * 2)
                      (Array.init 8 Fun.id))
          (Array.init 16 Fun.id)
      in
      Alcotest.(check bool) "nested map matches sequential" true
        (got = expected))

let test_pool_shutdown_idempotent () =
  with_domains_env "3" (fun () ->
      ignore (Par.map ~domains:3 succ (Array.init 32 Fun.id));
      Alcotest.(check bool) "workers live" true (Pool.size () > 0);
      Pool.shutdown ();
      Alcotest.(check int) "no workers after shutdown" 0 (Pool.size ());
      Pool.shutdown ();
      Alcotest.(check int) "shutdown is idempotent" 0 (Pool.size ());
      Alcotest.(check (array int)) "map restarts the pool lazily"
        [| 1; 2; 3; 4 |]
        (Par.map ~domains:3 succ [| 0; 1; 2; 3 |]);
      Alcotest.(check bool) "workers respawned" true (Pool.size () > 0))

let test_domains_env_override () =
  with_domains_env "5" (fun () ->
      Alcotest.(check int) "override honoured" 5 (Par.recommended_domains ()));
  with_domains_env "nope" (fun () ->
      Alcotest.check_raises "invalid override rejected"
        (Invalid_argument
           "TILING_DOMAINS: expected an integer in [1, 128], got \"nope\"")
        (fun () -> ignore (Par.recommended_domains ())));
  with_domains_env "" (fun () ->
      Alcotest.(check bool) "empty override ignored" true
        (Par.recommended_domains () >= 1))

let test_spawn_strategy_equivalent () =
  let xs = Array.init 500 Fun.id in
  let f x = (x * 3) lxor 7 in
  Fun.protect
    ~finally:(fun () -> Par.set_strategy Par.Pool)
    (fun () ->
      Par.set_strategy Par.Spawn;
      Alcotest.(check bool) "strategy switched" true
        (Par.strategy () = Par.Spawn);
      let spawn = Par.map ~domains:4 f xs in
      Par.set_strategy Par.Pool;
      Alcotest.(check (array int)) "spawn = pool = sequential" (Array.map f xs)
        spawn;
      Alcotest.(check (array int)) "pool agrees" (Array.map f xs)
        (Par.map ~domains:4 f xs))

let test_evaluate_all_domains_equivalent () =
  (* The full candidate-evaluation service must be byte-identical whether
     the batch runs sequentially or fanned out over eight pool workers. *)
  with_domains_env "8" (fun () ->
      let nest = Tiling_kernels.Kernels.t2d 32 in
      let cache = Tiling_cache.Config.dm8k in
      let sample = Tiling_core.Sample.create ~n:64 ~seed:5 nest in
      let mk domains =
        Tiling_search.Eval.create ~domains ~cache
          ~prepare:(fun tiles ->
            ( Tiling_ir.Transform.tile nest tiles,
              Tiling_core.Sample.embed sample ~tiles ))
          ()
      in
      let rng = Prng.create ~seed:42 in
      let batch =
        Array.init 40 (fun _ ->
            [| Prng.int_in rng ~lo:1 ~hi:32; Prng.int_in rng ~lo:1 ~hi:32 |])
      in
      let seq = Tiling_search.Eval.evaluate_all (mk 1) batch in
      let par = Tiling_search.Eval.evaluate_all (mk 8) batch in
      Alcotest.(check (array (float 0.))) "identical costs" seq par)

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
    Alcotest.test_case "edge sizes" `Quick test_map_edge_sizes;
    Alcotest.test_case "exception propagation" `Quick test_exceptions_propagate;
    Alcotest.test_case "parallel tiler equivalence" `Slow test_parallel_tiler_equivalent;
    Alcotest.test_case "recommended domains" `Quick test_recommended_domains;
    Alcotest.test_case "pool worker exception" `Quick test_pool_worker_exception;
    Alcotest.test_case "nested map runs inline" `Quick test_nested_map_runs_inline;
    Alcotest.test_case "pool shutdown idempotent" `Quick
      test_pool_shutdown_idempotent;
    Alcotest.test_case "TILING_DOMAINS override" `Quick test_domains_env_override;
    Alcotest.test_case "spawn strategy equivalence" `Quick
      test_spawn_strategy_equivalent;
    Alcotest.test_case "evaluate_all domain invariance" `Quick
      test_evaluate_all_domains_equivalent;
  ]
