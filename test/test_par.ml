open Tiling_util

let test_map_matches_sequential () =
  let xs = Array.init 1000 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "%d domains" domains)
        (Array.map f xs)
        (Par.map ~domains f xs))
    [ 1; 2; 3; 8 ]

let test_map_edge_sizes () =
  Alcotest.(check (array int)) "empty" [||] (Par.map ~domains:4 succ [||]);
  Alcotest.(check (array int)) "singleton" [| 2 |] (Par.map ~domains:4 succ [| 1 |]);
  Alcotest.(check (array int)) "fewer items than domains" [| 2; 3 |]
    (Par.map ~domains:8 succ [| 1; 2 |])

let test_exceptions_propagate () =
  try
    ignore (Par.map ~domains:3 (fun x -> if x = 7 then failwith "boom" else x)
              (Array.init 20 Fun.id));
    Alcotest.fail "exception swallowed"
  with Failure m -> Alcotest.(check string) "original exception" "boom" m

let test_parallel_tiler_equivalent () =
  (* The search must be bit-identical regardless of the domain count. *)
  let nest = Tiling_kernels.Kernels.t2d 100 in
  let cache = Tiling_cache.Config.dm8k in
  let opts domains =
    {
      Tiling_core.Tiler.ga =
        {
          Tiling_ga.Engine.default_params with
          Tiling_ga.Engine.min_generations = 6;
          max_generations = 8;
        };
      seed = 21;
      sample_points = Some 64;
      restarts = 1;
      domains;
      backend = Tiling_search.Backend.default;
    }
  in
  let seq = Tiling_core.Tiler.optimize ~opts:(opts 1) nest cache in
  let par = Tiling_core.Tiler.optimize ~opts:(opts 4) nest cache in
  Alcotest.(check (array int)) "same tiles" seq.Tiling_core.Tiler.tiles
    par.Tiling_core.Tiler.tiles;
  Alcotest.(check (float 0.)) "same objective"
    seq.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective
    par.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective

let test_recommended_domains () =
  let d = Par.recommended_domains () in
  Alcotest.(check bool) "in [1, 8]" true (d >= 1 && d <= 8)

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
    Alcotest.test_case "edge sizes" `Quick test_map_edge_sizes;
    Alcotest.test_case "exception propagation" `Quick test_exceptions_propagate;
    Alcotest.test_case "parallel tiler equivalence" `Slow test_parallel_tiler_equivalent;
    Alcotest.test_case "recommended domains" `Quick test_recommended_domains;
  ]
