open Tiling_ir
open Tiling_baselines

let nest_small () = Tiling_kernels.Kernels.t2d 24
let cache_small = Tiling_cache.Config.make ~size:1024 ~line:32 ()

let test_exhaustive_is_optimal_small () =
  (* On a 24x24 transpose the full 24*24 grid is enumerable: nothing may
     beat the exhaustive optimum on the same objective. *)
  let nest = nest_small () in
  let sample = Tiling_core.Sample.create ~n:64 ~seed:1 nest in
  let ex = Search.exhaustive ~per_dim:24 sample nest cache_small in
  let rnd = Search.random ~evals:100 ~seed:1 sample nest cache_small in
  let hc = Search.hill_climb ~evals:100 ~seed:1 sample nest cache_small in
  Alcotest.(check bool) "exhaustive <= random" true
    (ex.Search.objective <= rnd.Search.objective);
  Alcotest.(check bool) "exhaustive <= hill-climb" true
    (ex.Search.objective <= hc.Search.objective);
  Alcotest.(check int) "full grid evaluated" (24 * 24) ex.Search.evaluations

let test_searches_respect_budget () =
  let nest = Tiling_kernels.Kernels.mm 30 in
  let sample = Tiling_core.Sample.create ~n:32 ~seed:2 nest in
  let rnd = Search.random ~evals:50 ~seed:2 sample nest cache_small in
  Alcotest.(check bool) "random stops at budget" true (rnd.Search.evaluations <= 51);
  let hc = Search.hill_climb ~evals:50 ~seed:2 sample nest cache_small in
  Alcotest.(check bool) "hill-climb stops at budget" true (hc.Search.evaluations <= 51)

let valid_tiles nest tiles =
  let spans = Transform.tile_spans nest in
  Array.length tiles = Array.length spans
  && Array.for_all2 (fun t s -> t >= 1 && t <= s) tiles spans

let test_analytic_produce_valid_tiles () =
  List.iter
    (fun nest ->
      List.iter
        (fun cache ->
          Alcotest.(check bool) "lrw valid" true
            (valid_tiles nest (Analytic.lrw nest cache));
          Alcotest.(check bool) "cm valid" true
            (valid_tiles nest (Analytic.coleman_mckinley nest cache));
          Alcotest.(check bool) "sm valid" true
            (valid_tiles nest (Analytic.sarkar_megiddo nest cache)))
        [ Tiling_cache.Config.dm8k; Tiling_cache.Config.dm32k ])
    [
      Tiling_kernels.Kernels.mm 100;
      Tiling_kernels.Kernels.t2d 100;
      Tiling_kernels.Kernels.jacobi3d 50;
      Tiling_kernels.Kernels.matmul 100;
    ]

let test_footprint_lines () =
  (* A unit-stride run of 16 doubles = 128 bytes = 4 lines of 32B. *)
  let f = Affine.make ~const:0 [| 8 |] in
  Alcotest.(check int) "contiguous" 5 (Analytic.footprint_lines ~line:32 f ~elem:8 [| 16 |]);
  (* 4 rows x 16-double columns of a 100-column array: strides merge only
     within a column. *)
  let g = Affine.make ~const:0 [| 8; 800 |] in
  Alcotest.(check int) "2D tile" (4 * 5)
    (Analytic.footprint_lines ~line:32 g ~elem:8 [| 16; 4 |]);
  (* Zero-coefficient loops do not multiply the footprint. *)
  let h = Affine.make ~const:0 [| 8; 0 |] in
  Alcotest.(check int) "invariant dim" 5
    (Analytic.footprint_lines ~line:32 h ~elem:8 [| 16; 50 |])

let test_euclid_heights () =
  let hs = Analytic.euclid_heights ~cache_elems:1024 ~column:300 in
  (* gcd chain of (1024, 300): 300, 124, 52, 20, 12, 8, 4 *)
  Alcotest.(check bool) "contains the column" true (List.mem 300 hs);
  Alcotest.(check bool) "contains gcd-chain values" true
    (List.mem 124 hs && List.mem 4 hs);
  List.iter (fun h -> if h <= 0 then Alcotest.fail "non-positive height") hs

let test_sm_respects_capacity () =
  let nest = Tiling_kernels.Kernels.mm 500 in
  let cache = Tiling_cache.Config.dm8k in
  let tiles = Analytic.sarkar_megiddo nest cache in
  let lines =
    Array.fold_left
      (fun acc (r : Nest.reference) ->
        acc
        + Analytic.footprint_lines ~line:32 (Nest.address_form nest r) ~elem:8 tiles)
      0 nest.Nest.refs
  in
  Alcotest.(check bool) "working set fits" true (lines <= 8192 / 32)

let test_ga_beats_or_ties_analytic_on_mm () =
  (* The paper's claim: searching with an exact model finds tiles at least
     as good as closed-form capacity models. *)
  let nest = Tiling_kernels.Kernels.mm 60 in
  let cache = Tiling_cache.Config.dm8k in
  let sample = Tiling_core.Sample.create ~n:64 ~seed:3 nest in
  let eval = Tiling_core.Tiler.objective_on sample nest cache in
  let opts =
    { Tiling_core.Tiler.default_opts with seed = 3; sample_points = Some 64 }
  in
  let ga = Tiling_core.Tiler.optimize ~opts nest cache in
  let ga_obj = ga.Tiling_core.Tiler.ga.Tiling_ga.Engine.best_objective in
  List.iter
    (fun tiles ->
      Alcotest.(check bool) "GA <= analytic" true (ga_obj <= eval tiles +. 1e-9))
    [
      Analytic.lrw nest cache;
      Analytic.coleman_mckinley nest cache;
      Analytic.sarkar_megiddo nest cache;
    ]

let test_oblivious_fits_and_is_valid () =
  List.iter
    (fun nest ->
      List.iter
        (fun (cache : Tiling_cache.Config.t) ->
          let plan = Oblivious.plan nest cache in
          Alcotest.(check bool) "valid tiles" true (valid_tiles nest plan.Oblivious.tiles);
          (* The recursion stops exactly when the base case fits (or cannot
             shrink further); a fitting base case with zero splits means the
             whole space already fit. *)
          let fits = plan.Oblivious.working_set <= cache.Tiling_cache.Config.size in
          let collapsed = Array.for_all (fun t -> t = 1) plan.Oblivious.tiles in
          Alcotest.(check bool) "fits or fully collapsed" true (fits || collapsed);
          if plan.Oblivious.splits = 0 then
            Alcotest.(check (array int)) "no splits = untiled"
              (Transform.tile_spans nest) plan.Oblivious.tiles)
        [
          Tiling_cache.Config.dm8k;
          Tiling_cache.Config.dm32k;
          Tiling_cache.Config.make ~size:256 ~line:32 ();
        ])
    [
      Tiling_kernels.Kernels.mm 100;
      Tiling_kernels.Kernels.t2d 64;
      Tiling_kernels.Kernels.lu 60;
      Tiling_kernels.Kernels.cholesky 48;
    ]

let test_oblivious_halving_sequence () =
  (* mm 64 with 3 arrays of 64x64 doubles: each halving of the longest
     dimension must at least weakly shrink the modeled working set, and the
     final vector is reachable from the spans by longest-first halvings. *)
  let nest = Tiling_kernels.Kernels.mm 64 in
  let cache = Tiling_cache.Config.make ~size:2048 ~line:32 () in
  let plan = Oblivious.plan nest cache in
  let spans = Transform.tile_spans nest in
  let simulated = Array.copy spans in
  for _ = 1 to plan.Oblivious.splits do
    let l = ref 0 in
    Array.iteri
      (fun i t -> if t > simulated.(!l) then l := i)
      simulated;
    simulated.(!l) <- (simulated.(!l) + 1) / 2
  done;
  Alcotest.(check (array int)) "longest-first halvings" simulated
    plan.Oblivious.tiles

let suite =
  [
    Alcotest.test_case "exhaustive is optimal" `Slow test_exhaustive_is_optimal_small;
    Alcotest.test_case "budgets respected" `Slow test_searches_respect_budget;
    Alcotest.test_case "analytic tiles valid" `Quick test_analytic_produce_valid_tiles;
    Alcotest.test_case "footprint model" `Quick test_footprint_lines;
    Alcotest.test_case "euclid heights" `Quick test_euclid_heights;
    Alcotest.test_case "S&M capacity constraint" `Quick test_sm_respects_capacity;
    Alcotest.test_case "GA beats analytic on MM" `Slow
      test_ga_beats_or_ties_analytic_on_mm;
    Alcotest.test_case "cache-oblivious base case fits" `Quick
      test_oblivious_fits_and_is_valid;
    Alcotest.test_case "cache-oblivious halving sequence" `Quick
      test_oblivious_halving_sequence;
  ]

let test_sa_and_tabu () =
  let nest = Tiling_kernels.Kernels.mm 40 in
  let cache = Tiling_cache.Config.make ~size:2048 ~line:32 () in
  let sample = Tiling_core.Sample.create ~n:48 ~seed:9 nest in
  let untiled =
    Tiling_core.Tiler.objective_on sample nest cache
      (Transform.tile_spans nest)
  in
  let sa =
    Annealing.simulated_annealing
      ~params:{ Annealing.default_params with Annealing.evals = 200 }
      ~seed:9 sample nest cache
  in
  Alcotest.(check bool) "SA improves on untiled" true
    (sa.Search.objective <= untiled);
  Alcotest.(check bool) "SA within budget" true (sa.Search.evaluations <= 201);
  let tb =
    Annealing.tabu
      ~params:{ Annealing.default_tabu_params with Annealing.tabu_evals = 200 }
      ~seed:9 sample nest cache
  in
  Alcotest.(check bool) "tabu improves on untiled" true
    (tb.Search.objective <= untiled);
  Alcotest.(check bool) "tabu within budget" true (tb.Search.evaluations <= 201);
  let spans = Transform.tile_spans nest in
  Array.iteri
    (fun l t ->
      if t < 1 || t > spans.(l) then Alcotest.failf "SA tile %d invalid" t)
    sa.Search.tiles

let test_sa_deterministic () =
  let nest = Tiling_kernels.Kernels.t2d 30 in
  let cache = Tiling_cache.Config.make ~size:1024 ~line:32 () in
  let sample = Tiling_core.Sample.create ~n:32 ~seed:4 nest in
  let p = { Annealing.default_params with Annealing.evals = 100 } in
  let a = Annealing.simulated_annealing ~params:p ~seed:4 sample nest cache in
  let b = Annealing.simulated_annealing ~params:p ~seed:4 sample nest cache in
  Alcotest.(check (float 0.)) "same objective" a.Search.objective b.Search.objective

let suite =
  suite
  @ [
      Alcotest.test_case "simulated annealing & tabu" `Slow test_sa_and_tabu;
      Alcotest.test_case "SA deterministic" `Quick test_sa_deterministic;
    ]

let test_searches_terminate_on_tiny_spaces () =
  (* The memo makes revisits free: when the budget exceeds the whole space
     the searches must still terminate (regression for a tabu livelock). *)
  let nest = Tiling_kernels.Kernels.t2d 4 in
  let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
  let sample = Tiling_core.Sample.create ~n:16 ~seed:5 nest in
  let tb =
    Annealing.tabu
      ~params:{ Annealing.tabu_evals = 500; tenure = 4 }
      ~seed:5 sample nest cache
  in
  Alcotest.(check bool) "tabu terminates with <= 16 evals" true
    (tb.Search.evaluations <= 16);
  let hc = Search.hill_climb ~evals:500 ~seed:5 sample nest cache in
  Alcotest.(check bool) "hill-climb terminates" true (hc.Search.evaluations <= 16)

let test_random_terminates_on_tiny_spaces () =
  (* Regression: [random] only advanced its budget on memo misses, so a
     span with fewer distinct tile vectors than [evals] spun forever.  On a
     2x2 transpose (4 candidates) a 100-eval budget must return. *)
  let nest = Tiling_kernels.Kernels.t2d 2 in
  let cache = Tiling_cache.Config.make ~size:256 ~line:32 () in
  let sample = Tiling_core.Sample.create ~n:4 ~seed:6 nest in
  let r = Search.random ~evals:100 ~seed:6 sample nest cache in
  Alcotest.(check bool) "terminates within the space" true
    (r.Search.evaluations <= 4);
  Alcotest.(check bool) "tiles valid" true
    (Array.for_all (fun t -> t >= 1 && t <= 2) r.Search.tiles);
  let sa =
    Annealing.simulated_annealing
      ~params:{ Annealing.default_params with Annealing.evals = 100 }
      ~seed:6 sample nest cache
  in
  Alcotest.(check bool) "SA terminates too" true (sa.Search.evaluations <= 4)

let test_candidates_per_dim_degenerate () =
  (* Regression: [per_dim = 1] with a wide span divided by [per_dim - 1]. *)
  Alcotest.(check (list int)) "per_dim 1, wide span" [ 1; 19 ]
    (Search.candidates_per_dim ~per_dim:1 19);
  Alcotest.(check (list int)) "per_dim 0, wide span" [ 1; 19 ]
    (Search.candidates_per_dim ~per_dim:0 19);
  Alcotest.(check (list int)) "per_dim 1, unit span" [ 1 ]
    (Search.candidates_per_dim ~per_dim:1 1);
  Alcotest.(check (list int)) "small span enumerated" [ 1; 2; 3 ]
    (Search.candidates_per_dim ~per_dim:8 3);
  let lattice = Search.candidates_per_dim ~per_dim:5 100 in
  Alcotest.(check int) "lattice size" 5 (List.length lattice);
  Alcotest.(check bool) "lattice has extremes" true
    (List.mem 1 lattice && List.mem 100 lattice)

let test_exhaustive_parallel_matches_serial () =
  (* The grid is scored as one batch, so the result must not depend on the
     domain count. *)
  let nest = nest_small () in
  let sample = Tiling_core.Sample.create ~n:32 ~seed:7 nest in
  let a = Search.exhaustive ~per_dim:8 ~domains:1 sample nest cache_small in
  let b = Search.exhaustive ~per_dim:8 ~domains:4 sample nest cache_small in
  Alcotest.(check (array int)) "tiles" a.Search.tiles b.Search.tiles;
  Alcotest.(check (float 0.)) "objective" a.Search.objective b.Search.objective;
  Alcotest.(check int) "evaluations" a.Search.evaluations b.Search.evaluations

let suite =
  suite
  @ [
      Alcotest.test_case "termination on tiny spaces" `Quick
        test_searches_terminate_on_tiny_spaces;
      Alcotest.test_case "random terminates on tiny spaces" `Quick
        test_random_terminates_on_tiny_spaces;
      Alcotest.test_case "candidates_per_dim degenerate budgets" `Quick
        test_candidates_per_dim_degenerate;
      Alcotest.test_case "exhaustive domain invariance" `Quick
        test_exhaustive_parallel_matches_serial;
    ]
