(* The observability layer: metrics registry under concurrency, span
   tracer output well-formedness, and the CLI's --json contract. *)

module Json = Tiling_obs.Json
module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span

let get path json =
  List.fold_left
    (fun acc key ->
      match acc with Some j -> Json.member key j | None -> None)
    (Some json) path

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)

let test_counters_concurrent () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  let c = Metrics.counter "test.obs.concurrent" in
  let per_domain = 10_000 in
  let work () =
    for _ = 1 to per_domain do
      Metrics.incr c
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn work) in
  Array.iter Domain.join domains;
  Alcotest.(check int)
    "4 domains x 10k increments sum exactly" (4 * per_domain)
    (Metrics.counter_value c)

let test_disabled_is_inert () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let c = Metrics.counter "test.obs.disabled" in
  Metrics.incr c;
  Metrics.add c 42;
  Alcotest.(check int) "disabled counter never moves" 0 (Metrics.counter_value c);
  Metrics.reset ()

let test_snapshot_shape () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  let c = Metrics.counter "test.obs.snap" in
  Metrics.add c 7;
  let h = Metrics.histogram "test.obs.hist" in
  Metrics.observe h 100;
  Metrics.observe h 100_000;
  let snap = Metrics.snapshot () in
  (match get [ "counters"; "test.obs.snap" ] snap with
  | Some (Json.Int 7) -> ()
  | _ -> Alcotest.fail "counter missing from snapshot");
  (match get [ "histograms"; "test.obs.hist"; "count" ] snap with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "histogram count missing from snapshot");
  (* the snapshot itself must round-trip through the printer/parser *)
  match Json.of_string (Json.to_string snap) with
  | Ok reparsed -> Alcotest.(check bool) "round-trip" true (reparsed = snap)
  | Error m -> Alcotest.fail ("snapshot did not reparse: " ^ m)

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

let test_span_nesting_chrome_json () =
  Span.clear ();
  Span.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Span.set_enabled false;
      Span.clear ())
  @@ fun () ->
  Span.with_ "outer" (fun () ->
      Span.with_ "inner" ~attrs:[ ("k", Json.Int 1) ] (fun () -> ignore (Sys.opaque_identity 0));
      Span.instant "tick");
  let doc = Span.to_chrome_json () in
  let reparsed =
    match Json.of_string (Json.to_string doc) with
    | Ok j -> j
    | Error m -> Alcotest.fail ("chrome trace did not reparse: " ^ m)
  in
  let events =
    match Json.member "traceEvents" reparsed with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let find name =
    List.find_opt
      (fun e -> Json.member "name" e = Some (Json.String name))
      events
  in
  let span_bounds e =
    match (get [ "ts" ] e, get [ "dur" ] e) with
    | Some ts, Some dur ->
        let ts = Option.get (Json.to_float ts) in
        let dur = Option.get (Json.to_float dur) in
        (ts, ts +. dur)
    | _ -> Alcotest.fail "span without ts/dur"
  in
  match (find "outer", find "inner", find "tick") with
  | Some outer, Some inner, Some tick ->
      Alcotest.(check bool)
        "outer is a complete event" true
        (Json.member "ph" outer = Some (Json.String "X"));
      Alcotest.(check bool)
        "tick is an instant event" true
        (Json.member "ph" tick = Some (Json.String "i"));
      let o0, o1 = span_bounds outer and i0, i1 = span_bounds inner in
      Alcotest.(check bool) "inner nested inside outer" true
        (o0 <= i0 && i1 <= o1);
      Alcotest.(check bool) "inner keeps its attrs" true
        (get [ "args"; "k" ] inner = Some (Json.Int 1))
  | _ -> Alcotest.fail "expected outer/inner/tick events in the trace"

let test_span_disabled_records_nothing () =
  Span.clear ();
  Span.set_enabled false;
  let r = Span.with_ "ghost" (fun () -> 17) in
  Alcotest.(check int) "with_ is transparent" 17 r;
  Alcotest.(check int) "nothing recorded" 0 (Span.events_recorded ())

(* ------------------------------------------------------------------ *)
(* Parser hardening: every malformed input is a structured [Error],     *)
(* never an exception, and the resource caps actually bite.             *)

let check_rejects name input =
  match Json.of_string input with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: %S parsed but should not" name input

let test_json_rejects_malformed () =
  check_rejects "unterminated string" {|{"a": "xyz|};
  check_rejects "unterminated object" {|{"a": 1|};
  check_rejects "unterminated array" "[1,2";
  check_rejects "missing colon" {|{"a" 1}|};
  check_rejects "trailing garbage" "{} x";
  check_rejects "bare word" "nul";
  check_rejects "lonely escape" {|"\|};
  check_rejects "bad unicode escape" {|"\uZZZZ"|};
  check_rejects "truncated unicode escape" {|"\u00|};
  check_rejects "control char in string" "\"a\nb\"";
  check_rejects "empty input" "";
  (* and the errors really are values, not escaping exceptions *)
  match Json.of_string {|"\uD8|} with Error _ -> () | Ok _ -> Alcotest.fail "parsed"

let test_json_accepts_escapes () =
  match Json.of_string {|"A\t\"\\"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "decoded" "A\t\"\\" s
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error m -> Alcotest.fail m

let test_json_depth_cap () =
  let nested d = String.make d '[' ^ String.make d ']' in
  (match Json.of_string ~max_depth:10 (nested 10) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "depth 10 under cap 10 rejected: %s" m);
  (match Json.of_string ~max_depth:10 (nested 11) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth 11 over cap 10 accepted");
  (* objects count too *)
  match Json.of_string ~max_depth:3 {|{"a":{"b":{"c":{"d":1}}}}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "object nesting over cap accepted"

let test_json_size_cap () =
  let big = Printf.sprintf {|{"k":%S}|} (String.make 100 'x') in
  (match Json.of_string ~max_size:32 big with
  | Error m ->
      Alcotest.(check bool) "error has a message" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "oversized input accepted");
  match Json.of_string ~max_size:(String.length big) big with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "input at the cap rejected: %s" m

let test_json_default_depth_survives () =
  (* a hostile 100k-deep input must neither parse nor blow the stack *)
  let d = 100_000 in
  let hostile = String.make d '[' in
  match Json.of_string hostile with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated 100k-deep input accepted"

(* ------------------------------------------------------------------ *)
(* CLI --json contract                                                  *)

let tiler_exe = Filename.concat (Filename.concat ".." "bin") "tiler.exe"

let run_capture argv =
  let out = Filename.temp_file "tiler_out" ".txt" in
  let err = Filename.temp_file "tiler_err" ".txt" in
  let cmd =
    Printf.sprintf "%s > %s 2> %s"
      (String.concat " " (List.map Filename.quote argv))
      (Filename.quote out) (Filename.quote err)
  in
  let status = Sys.command cmd in
  let slurp f =
    let ic = open_in_bin f in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove f;
    s
  in
  (status, slurp out, slurp err)

let test_cli_json () =
  if not (Sys.file_exists tiler_exe) then
    Alcotest.skip ()
  else begin
    let status, stdout, stderr =
      run_capture [ tiler_exe; "analyze"; "MM"; "-n"; "24"; "--json" ]
    in
    Alcotest.(check int) "exit status" 0 status;
    let doc =
      match Json.of_string (String.trim stdout) with
      | Ok j -> j
      | Error m -> Alcotest.fail ("stdout is not valid JSON: " ^ m)
    in
    Alcotest.(check bool) "command field" true
      (Json.member "command" doc = Some (Json.String "analyze"));
    Alcotest.(check bool) "kernel field" true
      (Json.member "kernel" doc = Some (Json.String "MM"));
    let center =
      match get [ "result"; "miss_ratio"; "center" ] doc with
      | Some j -> Option.get (Json.to_float j)
      | None -> Alcotest.fail "result.miss_ratio.center missing"
    in
    Alcotest.(check bool) "miss ratio in (0,1)" true (center > 0. && center < 1.);
    (* the human text (now on stderr) quotes the same ratio to 2 decimals *)
    let human_pct = Printf.sprintf "miss=%.2f%%" (100. *. center) in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "stderr mentions %s" human_pct)
      true (contains stderr human_pct)
  end

let suite =
  [
    Alcotest.test_case "counters sum exactly under 4 domains" `Quick
      test_counters_concurrent;
    Alcotest.test_case "disabled metrics are inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "snapshot shape and round-trip" `Quick test_snapshot_shape;
    Alcotest.test_case "span nesting produces well-formed Chrome JSON" `Quick
      test_span_nesting_chrome_json;
    Alcotest.test_case "disabled spans record nothing" `Quick
      test_span_disabled_records_nothing;
    Alcotest.test_case "parser rejects malformed input as values" `Quick
      test_json_rejects_malformed;
    Alcotest.test_case "parser decodes escapes" `Quick test_json_accepts_escapes;
    Alcotest.test_case "nesting depth cap" `Quick test_json_depth_cap;
    Alcotest.test_case "payload size cap" `Quick test_json_size_cap;
    Alcotest.test_case "hostile deep input cannot blow the stack" `Quick
      test_json_default_depth_survives;
    Alcotest.test_case "tiler analyze --json parses and matches human output"
      `Quick test_cli_json;
  ]
