(* The observability layer: metrics registry under concurrency, span
   tracer output well-formedness, trace contexts, the events journal,
   the OpenMetrics encoder, and the CLI's --json contract. *)

module Json = Tiling_obs.Json
module Metrics = Tiling_obs.Metrics
module Span = Tiling_obs.Span
module Events = Tiling_obs.Events
module Openmetrics = Tiling_obs.Openmetrics

let get path json =
  List.fold_left
    (fun acc key ->
      match acc with Some j -> Json.member key j | None -> None)
    (Some json) path

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)

let test_counters_concurrent () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  let c = Metrics.counter "test.obs.concurrent" in
  let per_domain = 10_000 in
  let work () =
    for _ = 1 to per_domain do
      Metrics.incr c
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn work) in
  Array.iter Domain.join domains;
  Alcotest.(check int)
    "4 domains x 10k increments sum exactly" (4 * per_domain)
    (Metrics.counter_value c)

let test_disabled_is_inert () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let c = Metrics.counter "test.obs.disabled" in
  Metrics.incr c;
  Metrics.add c 42;
  Alcotest.(check int) "disabled counter never moves" 0 (Metrics.counter_value c);
  Metrics.reset ()

let test_snapshot_shape () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  let c = Metrics.counter "test.obs.snap" in
  Metrics.add c 7;
  let h = Metrics.histogram "test.obs.hist" in
  Metrics.observe h 100;
  Metrics.observe h 100_000;
  let snap = Metrics.snapshot () in
  (match get [ "counters"; "test.obs.snap" ] snap with
  | Some (Json.Int 7) -> ()
  | _ -> Alcotest.fail "counter missing from snapshot");
  (match get [ "histograms"; "test.obs.hist"; "count" ] snap with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "histogram count missing from snapshot");
  (* the snapshot itself must round-trip through the printer/parser *)
  match Json.of_string (Json.to_string snap) with
  | Ok reparsed -> Alcotest.(check bool) "round-trip" true (reparsed = snap)
  | Error m -> Alcotest.fail ("snapshot did not reparse: " ^ m)

let buckets_of h =
  match Json.member "buckets" (Metrics.histogram_snapshot h) with
  | Some (Json.List l) ->
      List.map
        (fun b ->
          ( (match Json.member "le" b with Some (Json.Int le) -> le | _ -> -1),
            match Json.member "count" b with Some (Json.Int c) -> c | _ -> -1
          ))
        l
  | _ -> []

let test_histogram_boundaries () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  let h = Metrics.histogram "test.obs.bounds" in
  (* Bucket upper bounds are 2^k - 1: observations at the powers of two
     themselves must land in the next bucket up, 0 in the le=0 bucket. *)
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 1024 ];
  Alcotest.(check (list (pair int int)))
    "bucket boundaries at powers of two"
    [ (0, 1); (1, 1); (3, 2); (7, 1); (2047, 1) ]
    (buckets_of h);
  match
    ( Json.member "count" (Metrics.histogram_snapshot h),
      Json.member "sum" (Metrics.histogram_snapshot h) )
  with
  | Some (Json.Int 6), Some (Json.Int 1034) -> ()
  | _ -> Alcotest.fail "count/sum mismatch"

let test_histogram_concurrent_observe () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  let h = Metrics.histogram "test.obs.concurrent_hist" in
  let per_domain = 5_000 in
  let observers =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Metrics.observe h ((d * per_domain) + i)
            done))
  in
  (* Snapshots taken mid-storm must be well-formed (monotone occupied
     buckets, count = bucket total) even while observes race. *)
  for _ = 1 to 50 do
    let bs = buckets_of h in
    let counted = List.fold_left (fun acc (_, c) -> acc + c) 0 bs in
    (match Json.member "count" (Metrics.histogram_snapshot h) with
    | Some (Json.Int n) ->
        Alcotest.(check bool) "snapshot count within bounds" true
          (n >= 0 && n <= 4 * per_domain)
    | _ -> Alcotest.fail "count missing");
    Alcotest.(check bool) "bucket total within bounds" true
      (counted >= 0 && counted <= 4 * per_domain);
    ignore
      (List.fold_left
         (fun prev (le, _) ->
           Alcotest.(check bool) "buckets ascending" true (le > prev);
           le)
         (-1) bs)
  done;
  Array.iter Domain.join observers;
  match Json.member "count" (Metrics.histogram_snapshot h) with
  | Some (Json.Int n) ->
      Alcotest.(check int) "all observations land" (4 * per_domain) n
  | _ -> Alcotest.fail "count missing"

let test_snapshot_disabled_stable () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let h = Metrics.histogram "test.obs.disabled_hist" in
  Metrics.observe h 42;
  (* disabled: inert *)
  let snap = Metrics.histogram_snapshot h in
  Alcotest.(check bool) "stable empty shape" true
    (snap
    = Json.Obj
        [ ("count", Json.Int 0); ("sum", Json.Int 0); ("buckets", Json.List []) ]
    );
  let full = Metrics.snapshot () in
  (match
     ( Json.member "counters" full,
       Json.member "gauges" full,
       Json.member "histograms" full )
   with
  | Some (Json.Obj _), Some (Json.Obj _), Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "snapshot loses its three sections when disabled");
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Instrument-name hygiene: the registry and the OpenMetrics inventory   *)
(* agree, and every name is mangle-safe.                                *)

let test_metric_name_hygiene () =
  List.iter
    (fun (name, kind) ->
      ignore kind;
      Alcotest.(check bool)
        (Printf.sprintf "registered name %S matches [a-z0-9_.]+" name)
        true
        (Openmetrics.valid_name name);
      (* every library instrument is documented in the inventory; names
         minted by tests themselves are exempt *)
      if not (String.length name >= 5 && String.sub name 0 5 = "test.") then
        Alcotest.(check bool)
          (Printf.sprintf "registered name %S is in the inventory" name)
          true
          (List.mem_assoc name Openmetrics.inventory))
    (Metrics.names ());
  List.iter
    (fun (name, help) ->
      Alcotest.(check bool)
        (Printf.sprintf "inventory name %S matches [a-z0-9_.]+" name)
        true (Openmetrics.valid_name name);
      Alcotest.(check bool)
        (Printf.sprintf "inventory name %S has HELP text" name)
        true
        (String.length help > 0))
    Openmetrics.inventory;
  (* the inventory is duplicate-free *)
  let names = List.map fst Openmetrics.inventory in
  Alcotest.(check int) "inventory has no duplicates"
    (List.length names)
    (List.length (List.sort_uniq compare names))

(* ------------------------------------------------------------------ *)
(* OpenMetrics encoder                                                  *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_openmetrics_shape () =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
  @@ fun () ->
  let c = Metrics.counter "test.om.requests" in
  Metrics.add c 5;
  let h = Metrics.histogram "test.om.lat" in
  List.iter (Metrics.observe h) [ 3; 900; 1000 ];
  let text = Openmetrics.render () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains text needle))
    [
      "# HELP tiling_test_om_requests ";
      "# TYPE tiling_test_om_requests counter";
      "tiling_test_om_requests_total 5";
      "# TYPE tiling_test_om_lat histogram";
      "tiling_test_om_lat_sum 1903";
      "tiling_test_om_lat_count 3";
    ];
  (* cumulative buckets: grep the le series and check monotonicity and
     the +Inf terminal equal to the count *)
  let lines = String.split_on_char '\n' text in
  let bucket_lines =
    List.filter
      (fun l -> contains l "tiling_test_om_lat_bucket{le=")
      lines
  in
  let values =
    List.map
      (fun l ->
        match String.rindex_opt l ' ' with
        | Some i ->
            int_of_string (String.sub l (i + 1) (String.length l - i - 1))
        | None -> Alcotest.fail ("unparseable bucket line: " ^ l))
      bucket_lines
  in
  Alcotest.(check bool) "at least two buckets" true (List.length values >= 2);
  ignore
    (List.fold_left
       (fun prev v ->
         Alcotest.(check bool) "cumulative buckets never decrease" true
           (v >= prev);
         v)
       0 values);
  let last = List.nth bucket_lines (List.length bucket_lines - 1) in
  Alcotest.(check bool) "last bucket is +Inf" true
    (contains last {|le="+Inf"|});
  Alcotest.(check int) "+Inf equals count" 3
    (List.nth values (List.length values - 1));
  (* exposition ends with the EOF marker *)
  let n = String.length text in
  Alcotest.(check bool) "ends with # EOF" true
    (n >= 6 && String.sub text (n - 6) 6 = "# EOF\n")

(* ------------------------------------------------------------------ *)
(* Events journal                                                       *)

let test_events_ring () =
  Events.clear ();
  Events.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Events.set_enabled false;
      Events.set_capacity 1024;
      Events.clear ())
  @@ fun () ->
  let base = Events.last_seq () in
  for i = 1 to 5 do
    Events.emit "test.ev" ~attrs:[ ("i", Json.Int i) ]
  done;
  let evs = Events.recent ~since:base () in
  Alcotest.(check int) "five buffered" 5 (List.length evs);
  Alcotest.(check bool) "oldest first" true
    (List.for_all2
       (fun ev i -> ev.Events.seq = base + i)
       evs [ 1; 2; 3; 4; 5 ]);
  let last2 = Events.recent ~since:base ~limit:2 () in
  Alcotest.(check int) "limit keeps the newest" 2 (List.length last2);
  Alcotest.(check int) "newest survives the limit" (base + 5)
    ((List.nth last2 1).Events.seq);
  (* shrink the ring: numbering continues, old events fall off *)
  Events.set_capacity 16;
  for i = 1 to 40 do
    Events.emit "test.ev.flood" ~attrs:[ ("i", Json.Int i) ]
  done;
  let evs = Events.recent () in
  Alcotest.(check bool) "ring bounded" true (List.length evs <= 16);
  Alcotest.(check int) "newest kept" (base + 45)
    ((List.nth evs (List.length evs - 1)).Events.seq)

let test_events_subscribers_and_trace_id () =
  Events.clear ();
  (* ring disabled: subscribers still hear events *)
  Events.set_enabled false;
  let got = ref [] in
  let token = Events.subscribe (fun ev -> got := ev :: !got) in
  Fun.protect ~finally:(fun () ->
      Events.unsubscribe token;
      Events.clear ())
  @@ fun () ->
  Events.emit "test.sub" ~attrs:[ ("k", Json.Int 1) ];
  (* emitted under an ambient trace context, the event carries the id *)
  let ctx = Span.start_trace () in
  Span.with_ambient (Some ctx) (fun () -> Events.emit "test.sub.traced");
  Span.discard_trace ctx;
  (match !got with
  | [ traced; plain ] ->
      Alcotest.(check string) "kind" "test.sub" plain.Events.kind;
      Alcotest.(check bool) "no trace id outside a trace" true
        (plain.Events.trace_id = None);
      Alcotest.(check bool) "ambient trace id attached" true
        (traced.Events.trace_id <> None);
      Alcotest.(check bool) "nothing buffered while disabled" true
        (Events.recent () = [])
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
  Events.unsubscribe token;
  Events.emit "test.sub.after";
  Alcotest.(check int) "unsubscribed hears nothing" 2 (List.length !got)

(* ------------------------------------------------------------------ *)
(* Request-scoped trace contexts                                        *)

let test_trace_context_tree () =
  let ctx = Span.start_trace () in
  Alcotest.(check bool) "no ambient context outside with_ambient" true
    (Span.current () = None);
  Span.with_ambient (Some ctx) (fun () ->
      Alcotest.(check bool) "ambient context visible" true
        (Span.current () <> None);
      Span.with_ "outer" (fun () ->
          Span.with_ "inner" ~attrs:[ ("k", Json.Int 7) ] (fun () ->
              ignore (Sys.opaque_identity 0));
          Span.instant "mark"));
  Span.record_at ctx "queue" ~ts_us:1. ~dur_us:2.;
  let tree = Span.finish_trace ctx in
  let spans = match get [ "spans" ] tree with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "spans missing"
  in
  Alcotest.(check int) "two roots: queue and outer" 2 (List.length spans);
  let find name l =
    List.find_opt (fun s -> Json.member "name" s = Some (Json.String name)) l
  in
  (match find "outer" spans with
  | Some outer -> (
      match Json.member "children" outer with
      | Some (Json.List kids) ->
          Alcotest.(check int) "outer has inner and mark" 2 (List.length kids);
          (match find "inner" kids with
          | Some inner ->
              Alcotest.(check bool) "inner keeps attrs" true
                (get [ "attrs"; "k" ] inner = Some (Json.Int 7))
          | None -> Alcotest.fail "inner missing")
      | _ -> Alcotest.fail "outer has no children")
  | None -> Alcotest.fail "outer missing");
  (match find "queue" spans with
  | Some q ->
      Alcotest.(check bool) "record_at keeps its timing" true
        (Json.member "dur_us" q = Some (Json.Float 2.))
  | None -> Alcotest.fail "queue root missing");
  (* a finished trace is gone: finishing again yields the empty shape *)
  match get [ "spans" ] (Span.finish_trace ctx) with
  | Some (Json.List []) -> ()
  | _ -> Alcotest.fail "double finish not empty"

let test_trace_capacity_drops_deep_spans () =
  Span.set_trace_capacity 16;
  Fun.protect ~finally:(fun () -> Span.set_trace_capacity 8192)
  @@ fun () ->
  let ctx = Span.start_trace () in
  let rec nest d =
    if d > 0 then Span.with_ "deep" (fun () -> nest (d - 1))
  in
  Span.with_ambient (Some ctx) (fun () -> nest 30);
  let tree = Span.finish_trace ctx in
  (* 30 nested spans against a 16-slot cap: deep spans beyond the cap are
     dropped and counted, the shallow skeleton (depth <= 4) survives. *)
  (match get [ "dropped" ] tree with
  | Some (Json.Int d) -> Alcotest.(check bool) "some spans dropped" true (d > 0)
  | _ -> Alcotest.fail "dropped missing");
  let rec depth_of j =
    match Json.member "children" j with
    | Some (Json.List (_ :: _ as kids)) ->
        1 + List.fold_left (fun acc k -> max acc (depth_of k)) 0 kids
    | _ -> 1
  in
  match get [ "spans" ] tree with
  | Some (Json.List (root :: _)) ->
      Alcotest.(check bool) "shallow skeleton retained" true
        (depth_of root >= 4)
  | _ -> Alcotest.fail "spans missing"

let test_trace_ambient_propagates_to_pool () =
  let ctx = Span.start_trace () in
  Span.with_ambient (Some ctx) (fun () ->
      ignore
        (Tiling_util.Par.map ~domains:2
           (fun x -> x * x)
           (Array.init 64 Fun.id)));
  let tree = Span.finish_trace ctx in
  (* the pool's helper domains inherit the submitter's context, so the
     par.chunk spans land inside this trace *)
  let rec count_named name j =
    let self =
      if Json.member "name" j = Some (Json.String name) then 1 else 0
    in
    match Json.member "children" j with
    | Some (Json.List kids) ->
        self + List.fold_left (fun acc k -> acc + count_named name k) 0 kids
    | _ -> self
  in
  match get [ "spans" ] tree with
  | Some (Json.List spans) ->
      let chunks =
        List.fold_left (fun acc s -> acc + count_named "par.chunk" s) 0 spans
      in
      Alcotest.(check bool) "par.chunk spans joined the trace" true (chunks > 0)
  | _ -> Alcotest.fail "spans missing"

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

let test_span_nesting_chrome_json () =
  Span.clear ();
  Span.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Span.set_enabled false;
      Span.clear ())
  @@ fun () ->
  Span.with_ "outer" (fun () ->
      Span.with_ "inner" ~attrs:[ ("k", Json.Int 1) ] (fun () -> ignore (Sys.opaque_identity 0));
      Span.instant "tick");
  let doc = Span.to_chrome_json () in
  let reparsed =
    match Json.of_string (Json.to_string doc) with
    | Ok j -> j
    | Error m -> Alcotest.fail ("chrome trace did not reparse: " ^ m)
  in
  let events =
    match Json.member "traceEvents" reparsed with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let find name =
    List.find_opt
      (fun e -> Json.member "name" e = Some (Json.String name))
      events
  in
  let span_bounds e =
    match (get [ "ts" ] e, get [ "dur" ] e) with
    | Some ts, Some dur ->
        let ts = Option.get (Json.to_float ts) in
        let dur = Option.get (Json.to_float dur) in
        (ts, ts +. dur)
    | _ -> Alcotest.fail "span without ts/dur"
  in
  match (find "outer", find "inner", find "tick") with
  | Some outer, Some inner, Some tick ->
      Alcotest.(check bool)
        "outer is a complete event" true
        (Json.member "ph" outer = Some (Json.String "X"));
      Alcotest.(check bool)
        "tick is an instant event" true
        (Json.member "ph" tick = Some (Json.String "i"));
      let o0, o1 = span_bounds outer and i0, i1 = span_bounds inner in
      Alcotest.(check bool) "inner nested inside outer" true
        (o0 <= i0 && i1 <= o1);
      Alcotest.(check bool) "inner keeps its attrs" true
        (get [ "args"; "k" ] inner = Some (Json.Int 1))
  | _ -> Alcotest.fail "expected outer/inner/tick events in the trace"

let test_span_disabled_records_nothing () =
  Span.clear ();
  Span.set_enabled false;
  let r = Span.with_ "ghost" (fun () -> 17) in
  Alcotest.(check int) "with_ is transparent" 17 r;
  Alcotest.(check int) "nothing recorded" 0 (Span.events_recorded ())

(* ------------------------------------------------------------------ *)
(* Parser hardening: every malformed input is a structured [Error],     *)
(* never an exception, and the resource caps actually bite.             *)

let check_rejects name input =
  match Json.of_string input with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: %S parsed but should not" name input

let test_json_rejects_malformed () =
  check_rejects "unterminated string" {|{"a": "xyz|};
  check_rejects "unterminated object" {|{"a": 1|};
  check_rejects "unterminated array" "[1,2";
  check_rejects "missing colon" {|{"a" 1}|};
  check_rejects "trailing garbage" "{} x";
  check_rejects "bare word" "nul";
  check_rejects "lonely escape" {|"\|};
  check_rejects "bad unicode escape" {|"\uZZZZ"|};
  check_rejects "truncated unicode escape" {|"\u00|};
  check_rejects "control char in string" "\"a\nb\"";
  check_rejects "empty input" "";
  (* and the errors really are values, not escaping exceptions *)
  match Json.of_string {|"\uD8|} with Error _ -> () | Ok _ -> Alcotest.fail "parsed"

let test_json_accepts_escapes () =
  match Json.of_string {|"A\t\"\\"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "decoded" "A\t\"\\" s
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error m -> Alcotest.fail m

let test_json_depth_cap () =
  let nested d = String.make d '[' ^ String.make d ']' in
  (match Json.of_string ~max_depth:10 (nested 10) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "depth 10 under cap 10 rejected: %s" m);
  (match Json.of_string ~max_depth:10 (nested 11) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth 11 over cap 10 accepted");
  (* objects count too *)
  match Json.of_string ~max_depth:3 {|{"a":{"b":{"c":{"d":1}}}}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "object nesting over cap accepted"

let test_json_size_cap () =
  let big = Printf.sprintf {|{"k":%S}|} (String.make 100 'x') in
  (match Json.of_string ~max_size:32 big with
  | Error m ->
      Alcotest.(check bool) "error has a message" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "oversized input accepted");
  match Json.of_string ~max_size:(String.length big) big with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "input at the cap rejected: %s" m

let test_json_default_depth_survives () =
  (* a hostile 100k-deep input must neither parse nor blow the stack *)
  let d = 100_000 in
  let hostile = String.make d '[' in
  match Json.of_string hostile with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated 100k-deep input accepted"

(* ------------------------------------------------------------------ *)
(* CLI --json contract                                                  *)

let tiler_exe = Filename.concat (Filename.concat ".." "bin") "tiler.exe"

let run_capture argv =
  let out = Filename.temp_file "tiler_out" ".txt" in
  let err = Filename.temp_file "tiler_err" ".txt" in
  let cmd =
    Printf.sprintf "%s > %s 2> %s"
      (String.concat " " (List.map Filename.quote argv))
      (Filename.quote out) (Filename.quote err)
  in
  let status = Sys.command cmd in
  let slurp f =
    let ic = open_in_bin f in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove f;
    s
  in
  (status, slurp out, slurp err)

let test_cli_json () =
  if not (Sys.file_exists tiler_exe) then
    Alcotest.skip ()
  else begin
    let status, stdout, stderr =
      run_capture [ tiler_exe; "analyze"; "MM"; "-n"; "24"; "--json" ]
    in
    Alcotest.(check int) "exit status" 0 status;
    let doc =
      match Json.of_string (String.trim stdout) with
      | Ok j -> j
      | Error m -> Alcotest.fail ("stdout is not valid JSON: " ^ m)
    in
    Alcotest.(check bool) "command field" true
      (Json.member "command" doc = Some (Json.String "analyze"));
    Alcotest.(check bool) "kernel field" true
      (Json.member "kernel" doc = Some (Json.String "MM"));
    let center =
      match get [ "result"; "miss_ratio"; "center" ] doc with
      | Some j -> Option.get (Json.to_float j)
      | None -> Alcotest.fail "result.miss_ratio.center missing"
    in
    Alcotest.(check bool) "miss ratio in (0,1)" true (center > 0. && center < 1.);
    (* the human text (now on stderr) quotes the same ratio to 2 decimals *)
    let human_pct = Printf.sprintf "miss=%.2f%%" (100. *. center) in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "stderr mentions %s" human_pct)
      true (contains stderr human_pct)
  end

let suite =
  [
    Alcotest.test_case "counters sum exactly under 4 domains" `Quick
      test_counters_concurrent;
    Alcotest.test_case "disabled metrics are inert" `Quick test_disabled_is_inert;
    Alcotest.test_case "snapshot shape and round-trip" `Quick test_snapshot_shape;
    Alcotest.test_case "histogram bucket boundaries at powers of two" `Quick
      test_histogram_boundaries;
    Alcotest.test_case "histogram snapshot under concurrent observe" `Quick
      test_histogram_concurrent_observe;
    Alcotest.test_case "snapshot while disabled keeps a stable empty shape"
      `Quick test_snapshot_disabled_stable;
    Alcotest.test_case "instrument names match the inventory and convention"
      `Quick test_metric_name_hygiene;
    Alcotest.test_case "OpenMetrics exposition is well-formed" `Quick
      test_openmetrics_shape;
    Alcotest.test_case "events ring buffers, bounds and numbers" `Quick
      test_events_ring;
    Alcotest.test_case "events subscribers and ambient trace ids" `Quick
      test_events_subscribers_and_trace_id;
    Alcotest.test_case "trace context builds a span tree" `Quick
      test_trace_context_tree;
    Alcotest.test_case "full trace buffer drops deep spans, keeps skeleton"
      `Quick test_trace_capacity_drops_deep_spans;
    Alcotest.test_case "ambient trace context crosses the domain pool" `Quick
      test_trace_ambient_propagates_to_pool;
    Alcotest.test_case "span nesting produces well-formed Chrome JSON" `Quick
      test_span_nesting_chrome_json;
    Alcotest.test_case "disabled spans record nothing" `Quick
      test_span_disabled_records_nothing;
    Alcotest.test_case "parser rejects malformed input as values" `Quick
      test_json_rejects_malformed;
    Alcotest.test_case "parser decodes escapes" `Quick test_json_accepts_escapes;
    Alcotest.test_case "nesting depth cap" `Quick test_json_depth_cap;
    Alcotest.test_case "payload size cap" `Quick test_json_size_cap;
    Alcotest.test_case "hostile deep input cannot blow the stack" `Quick
      test_json_default_depth_survives;
    Alcotest.test_case "tiler analyze --json parses and matches human output"
      `Quick test_cli_json;
  ]
