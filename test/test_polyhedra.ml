open Tiling_polyhedra

let qcheck = QCheck_alcotest.to_alcotest

let test_box_contains () =
  let p = Polyhedron.of_box ~lo:[| 0; -2 |] ~hi:[| 3; 2 |] in
  Alcotest.(check bool) "inside" true (Polyhedron.contains p [| 1; 0 |]);
  Alcotest.(check bool) "corner" true (Polyhedron.contains p [| 3; -2 |]);
  Alcotest.(check bool) "outside" false (Polyhedron.contains p [| 4; 0 |])

let test_box_count () =
  let p = Polyhedron.of_box ~lo:[| 0; 0 |] ~hi:[| 3; 4 |] in
  Alcotest.(check int) "4*5 points" 20 (Polyhedron.count_integer_points p);
  Alcotest.(check bool) "has point" true (Polyhedron.has_integer_point p)

let test_triangle () =
  (* x >= 0, y >= 0, x + y <= 3: 10 integer points. *)
  let p =
    Polyhedron.of_constraints ~dim:2
      [
        Polyhedron.ge ~coeffs:[| 1; 0 |] ~const:0;
        Polyhedron.ge ~coeffs:[| 0; 1 |] ~const:0;
        Polyhedron.le ~coeffs:[| 1; 1 |] ~const:(-3);
      ]
  in
  Alcotest.(check int) "triangle count" 10 (Polyhedron.count_integer_points p)

let test_equality_plane () =
  (* x + y = 4 in the box [0,4]^2: 5 points. *)
  let p =
    Polyhedron.add
      (Polyhedron.of_box ~lo:[| 0; 0 |] ~hi:[| 4; 4 |])
      [ Polyhedron.eq ~coeffs:[| 1; 1 |] ~const:(-4) ]
  in
  Alcotest.(check int) "diagonal" 5 (Polyhedron.count_integer_points p);
  let pts = Polyhedron.integer_points p in
  List.iter
    (fun q -> Alcotest.(check int) "on the plane" 4 (q.(0) + q.(1)))
    pts

let test_rational_but_not_integer () =
  (* 2x = 1 in [0, 3]: rationally non-empty, no integer point. *)
  let p =
    Polyhedron.add
      (Polyhedron.of_box ~lo:[| 0 |] ~hi:[| 3 |])
      [ Polyhedron.eq ~coeffs:[| 2 |] ~const:(-1) ]
  in
  Alcotest.(check bool) "no integer point" false (Polyhedron.has_integer_point p);
  Alcotest.(check int) "count 0" 0 (Polyhedron.count_integer_points p)

let test_empty () =
  let p =
    Polyhedron.of_constraints ~dim:1
      [
        Polyhedron.ge ~coeffs:[| 1 |] ~const:(-5);
        Polyhedron.le ~coeffs:[| 1 |] ~const:(-3);
      ]
  in
  (* x >= 5 and x <= 3 *)
  Alcotest.(check bool) "rationally empty" true (Polyhedron.is_rationally_empty p);
  Alcotest.(check bool) "no integer point" false (Polyhedron.has_integer_point p)

let test_eliminate_projection () =
  (* Project the triangle onto x: [0, 3]. *)
  let p =
    Polyhedron.of_constraints ~dim:2
      [
        Polyhedron.ge ~coeffs:[| 1; 0 |] ~const:0;
        Polyhedron.ge ~coeffs:[| 0; 1 |] ~const:0;
        Polyhedron.le ~coeffs:[| 1; 1 |] ~const:(-3);
      ]
  in
  (match Polyhedron.var_bounds p 0 with
  | Some (lo, hi) ->
      Alcotest.(check int) "x lower" 0 lo;
      Alcotest.(check int) "x upper" 3 hi
  | None -> Alcotest.fail "triangle should project to [0,3]")

let test_var_bounds_with_equality () =
  let p =
    Polyhedron.add
      (Polyhedron.of_box ~lo:[| 0; 0 |] ~hi:[| 10; 10 |])
      [ Polyhedron.eq ~coeffs:[| 1; -2 |] ~const:0 ]
  in
  (* x = 2y, x in [0,10] => x in [0,10], y in [0,5] *)
  (match Polyhedron.var_bounds p 1 with
  | Some (lo, hi) ->
      Alcotest.(check int) "y lower" 0 lo;
      Alcotest.(check int) "y upper" 5 hi
  | None -> Alcotest.fail "should be bounded")

(* Differential: FM-based counting vs brute force over a box. *)
let gen_random_poly =
  QCheck.Gen.(
    let* dim = int_range 1 3 in
    let* ncons = int_range 0 4 in
    let* cons =
      list_size (return ncons)
        (let* coeffs = array_size (return dim) (int_range (-3) 3) in
         let* const = int_range (-10) 10 in
         let* is_eq = frequency [ (4, return false); (1, return true) ] in
         return (coeffs, const, is_eq))
    in
    return (dim, cons))

let prop_count_matches_bruteforce =
  QCheck.Test.make ~name:"integer counting matches brute force" ~count:300
    (QCheck.make gen_random_poly) (fun (dim, cons) ->
      let lo = Array.make dim (-4) and hi = Array.make dim 4 in
      let p =
        Polyhedron.add
          (Polyhedron.of_box ~lo ~hi)
          (List.map
             (fun (coeffs, const, is_eq) ->
               if is_eq then Polyhedron.eq ~coeffs ~const
               else Polyhedron.ge ~coeffs ~const)
             cons)
      in
      let brute = ref 0 in
      let point = Array.make dim 0 in
      let rec go v =
        if v = dim then begin
          if Polyhedron.contains p point then incr brute
        end
        else
          for x = -4 to 4 do
            point.(v) <- x;
            go (v + 1)
          done
      in
      go 0;
      Polyhedron.count_integer_points p = !brute
      && Polyhedron.has_integer_point p = (!brute > 0))

let prop_elimination_sound =
  QCheck.Test.make ~name:"eliminated polyhedron contains all projections"
    ~count:200 (QCheck.make gen_random_poly) (fun (dim, cons) ->
      QCheck.assume (dim >= 2);
      let lo = Array.make dim (-3) and hi = Array.make dim 3 in
      let p =
        Polyhedron.add
          (Polyhedron.of_box ~lo ~hi)
          (List.map
             (fun (coeffs, const, is_eq) ->
               if is_eq then Polyhedron.eq ~coeffs ~const
               else Polyhedron.ge ~coeffs ~const)
             cons)
      in
      let q = Polyhedron.eliminate p (dim - 1) in
      List.for_all (fun pt -> Polyhedron.contains q pt) (Polyhedron.integer_points p))

(* ------------------------------------------------------------------ *)
(* Region decomposition of iteration spaces (paper section 2.3)         *)

let test_region_rectangular_single () =
  let nest = Tiling_kernels.Kernels.matmul 6 in
  let regions = Region.of_nest nest in
  Alcotest.(check int) "one region" 1 (List.length regions);
  Alcotest.(check int)
    "covers the space"
    (Tiling_ir.Nest.trip_count nest)
    (Polyhedron.count_integer_points (List.hd regions))

let check_partition name nest =
  let regions = Region.of_nest nest in
  let total =
    List.fold_left (fun s r -> s + Polyhedron.count_integer_points r) 0 regions
  in
  Alcotest.(check int)
    (name ^ ": regions partition the space")
    (Tiling_ir.Nest.trip_count nest)
    total;
  (* Disjointness: no iteration point may fall in two regions, or the
     per-region CME counts would double-count its accesses. *)
  Tiling_ir.Nest.iter_points nest (fun p ->
      let owners =
        List.fold_left
          (fun n r -> if Polyhedron.contains r p then n + 1 else n)
          0 regions
      in
      Alcotest.(check int) (name ^ ": each point in one region") 1 owners);
  Alcotest.(check int)
    (name ^ ": whole space is convex")
    (Tiling_ir.Nest.trip_count nest)
    (Polyhedron.count_integer_points (Region.space_of nest))

let test_region_partition_triangular () =
  check_partition "lu" (Tiling_kernels.Kernels.lu 8);
  check_partition "cholesky" (Tiling_kernels.Kernels.cholesky 8);
  check_partition "syrk" (Tiling_kernels.Kernels.syrk 7)

let test_region_rejects_tiled () =
  let nest = Tiling_kernels.Kernels.matmul 8 in
  let tiled = Tiling_ir.Transform.tile nest [| 4; 4; 4 |] in
  Alcotest.check_raises "tiled nests rejected"
    (Invalid_argument "Region.of_nest: tiled nests are not supported")
    (fun () -> ignore (Region.of_nest tiled))

let suite =
  [
    Alcotest.test_case "box membership" `Quick test_box_contains;
    Alcotest.test_case "box counting" `Quick test_box_count;
    Alcotest.test_case "triangle" `Quick test_triangle;
    Alcotest.test_case "equality plane" `Quick test_equality_plane;
    Alcotest.test_case "rational but not integer" `Quick
      test_rational_but_not_integer;
    Alcotest.test_case "empty system" `Quick test_empty;
    Alcotest.test_case "projection bounds" `Quick test_eliminate_projection;
    Alcotest.test_case "bounds through equality" `Quick
      test_var_bounds_with_equality;
    qcheck prop_count_matches_bruteforce;
    qcheck prop_elimination_sound;
    Alcotest.test_case "region: rectangular nest is one region" `Quick
      test_region_rectangular_single;
    Alcotest.test_case "region: triangular kernels partition" `Quick
      test_region_partition_triangular;
    Alcotest.test_case "region: tiled nests rejected" `Quick
      test_region_rejects_tiled;
  ]
