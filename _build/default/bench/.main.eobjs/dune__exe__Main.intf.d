bench/main.mli:
