bench/main.ml: Array Experiments Fmt List String Sys Timing
