(* Benchmark and experiment driver.

     dune exec bench/main.exe            -- regenerate every table and figure
     dune exec bench/main.exe -- TARGET  -- one of: table2 fig8 fig9 table3
                                            table4 ga-convergence
                                            solver-accuracy equations timing *)

let targets : (string * (unit -> unit)) list =
  [
    ("table2", Experiments.table2);
    ("fig8", Experiments.fig8);
    ("fig9", Experiments.fig9);
    ("table3", Experiments.table3);
    ("table4", Experiments.table4);
    ("joint", Experiments.joint);
    ("order", Experiments.order);
    ("assoc", Experiments.associativity);
    ("ga-convergence", Experiments.ga_convergence);
    ("solver-accuracy", Experiments.solver_accuracy);
    ("equations", Experiments.equations);
    ("timing", Timing.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      Fmt.pr "Reproducing every table and figure (see EXPERIMENTS.md).@.";
      List.iter (fun (_, f) -> f ()) targets
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name targets with
          | Some f -> f ()
          | None ->
              Fmt.epr "unknown target %s; available: %s@." name
                (String.concat " " (List.map fst targets));
              exit 1)
        names
