lib/trace/run.mli: Fmt Tiling_cache Tiling_ir
