lib/trace/gen.mli: Tiling_ir
