lib/trace/gen.ml: Affine Array Nest Tiling_ir
