lib/trace/run.ml: Array Fmt Gen Tiling_cache Tiling_ir
