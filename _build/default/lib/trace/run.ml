type report = {
  total : Tiling_cache.Sim.counts;
  per_ref : Tiling_cache.Sim.counts array;
  lines_touched : int;
  writebacks : int;
}

let simulate nest config =
  let sim =
    Tiling_cache.Sim.create ~num_refs:(Array.length nest.Tiling_ir.Nest.refs) config
  in
  Gen.iter nest (fun ev ->
      Tiling_cache.Sim.access
        ~write:(ev.Gen.access = Tiling_ir.Nest.Write)
        sim ~ref_id:ev.Gen.ref_id ~addr:ev.Gen.addr);
  {
    total = Tiling_cache.Sim.total sim;
    per_ref = Tiling_cache.Sim.per_ref sim;
    lines_touched = Tiling_cache.Sim.lines_touched sim;
    writebacks = Tiling_cache.Sim.writebacks sim;
  }

let pp_report ppf r =
  let open Tiling_cache.Sim in
  Fmt.pf ppf
    "accesses=%d misses=%d (%.2f%%) compulsory=%d replacement=%d (%.2f%%) writebacks=%d"
    r.total.accesses r.total.misses
    (100. *. miss_ratio r.total)
    r.total.compulsory (replacement r.total)
    (100. *. replacement_ratio r.total)
    r.writebacks

let simulate_hierarchy nest configs =
  let h = Tiling_cache.Hierarchy.create configs in
  Gen.iter nest (fun ev ->
      ignore (Tiling_cache.Hierarchy.access h ~ref_id:ev.Gen.ref_id ~addr:ev.Gen.addr));
  Tiling_cache.Hierarchy.level_counts h
