open Tiling_ir

type event = { ref_id : int; addr : int; access : Nest.access }

let iter nest f =
  let forms = Array.map (fun r -> Nest.address_form nest r) nest.Nest.refs in
  let accesses = Array.map (fun (r : Nest.reference) -> r.access) nest.Nest.refs in
  let nrefs = Array.length forms in
  Nest.iter_points nest (fun point ->
      for k = 0 to nrefs - 1 do
        f { ref_id = k; addr = Affine.eval forms.(k) point; access = accesses.(k) }
      done)

let length nest = Nest.trip_count nest * Array.length nest.Nest.refs

let events_at nest point =
  Array.to_list
    (Array.map
       (fun (r : Nest.reference) ->
         { ref_id = r.ref_id; addr = Affine.eval (Nest.address_form nest r) point;
           access = r.access })
       nest.Nest.refs)
