(** Address-trace generation: replay a loop nest's memory references.

    The generator walks the iteration space in execution order and emits one
    event per reference per iteration point, in program order, with the
    byte address computed from the flattened affine address function under
    the arrays' current layout. *)

type event = { ref_id : int; addr : int; access : Tiling_ir.Nest.access }

val iter : Tiling_ir.Nest.t -> (event -> unit) -> unit
(** Full trace, in execution order.  The [event] record is reused between
    callbacks. *)

val length : Tiling_ir.Nest.t -> int
(** Number of events ([trip_count * number of references]). *)

val events_at : Tiling_ir.Nest.t -> int array -> event list
(** The body's events for one iteration point, in program order (fresh
    records). *)
