(** Glue: simulate a loop nest end-to-end and report miss statistics. *)

type report = {
  total : Tiling_cache.Sim.counts;
  per_ref : Tiling_cache.Sim.counts array;
  lines_touched : int;
  writebacks : int;  (** dirty lines evicted (write-back traffic) *)
}

val simulate : Tiling_ir.Nest.t -> Tiling_cache.Config.t -> report
(** Replays the whole trace through a cold cache. *)

val pp_report : report Fmt.t

val simulate_hierarchy :
  Tiling_ir.Nest.t -> Tiling_cache.Config.t list -> Tiling_cache.Sim.counts array
(** Replays the trace through a multi-level hierarchy; per-level counts
    (level [i] only sees level [i-1]'s misses). *)
