open Tiling_ir

type t = { nest : Nest.t; points : int array array; los : int array }

let create ?n ~seed nest =
  let n = match n with Some n -> n | None -> Tiling_cme.Estimator.default_points () in
  let rng = Tiling_util.Prng.create ~seed in
  let los =
    Array.map
      (fun (l : Nest.loop) ->
        match l.shape with
        | Nest.Range { lo; _ } -> lo
        | _ -> invalid_arg "Sample.create: nest must be untiled")
      nest.Nest.loops
  in
  let points = Array.init n (fun _ -> Nest.random_point nest rng) in
  { nest; points; los }

let points t = t.points

let size t = Array.length t.points

let embed t ~tiles =
  let d = Nest.depth t.nest in
  assert (Array.length tiles = d);
  Array.map
    (fun p ->
      let q = Array.make (2 * d) 0 in
      for l = 0 to d - 1 do
        q.(l) <- t.los.(l) + ((p.(l) - t.los.(l)) / tiles.(l) * tiles.(l));
        q.(d + l) <- p.(l)
      done;
      q)
    t.points
