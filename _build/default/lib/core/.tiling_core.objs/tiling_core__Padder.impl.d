lib/core/padder.ml: Array Array_decl Fmt Fun Hashtbl List Nest Sample Tiling_cme Tiling_ga Tiling_ir Tiling_util Transform
