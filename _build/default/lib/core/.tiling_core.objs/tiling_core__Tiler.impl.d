lib/core/tiler.ml: Array Fmt Fun Hashtbl List Logs Mutex Nest Sample String Tiling_cme Tiling_ga Tiling_ir Tiling_util Transform
