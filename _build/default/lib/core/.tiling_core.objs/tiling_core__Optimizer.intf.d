lib/core/optimizer.mli: Fmt Padder Tiler Tiling_cache Tiling_cme Tiling_ga Tiling_ir
