lib/core/padder.mli: Fmt Tiling_cache Tiling_cme Tiling_ga Tiling_ir
