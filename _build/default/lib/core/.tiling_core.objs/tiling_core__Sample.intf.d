lib/core/sample.mli: Tiling_ir
