lib/core/tiler.mli: Fmt Sample Tiling_cache Tiling_cme Tiling_ga Tiling_ir
