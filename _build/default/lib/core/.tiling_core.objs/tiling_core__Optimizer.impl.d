lib/core/optimizer.ml: Array Array_decl Fmt Hashtbl List Nest Padder Sample Tiler Tiling_cme Tiling_ga Tiling_ir Tiling_util Transform
