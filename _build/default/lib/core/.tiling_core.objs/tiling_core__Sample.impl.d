lib/core/sample.ml: Array Nest Tiling_cme Tiling_ir Tiling_util
