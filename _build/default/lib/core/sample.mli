(** Common-random-number sampling across candidate tilings.

    The genetic algorithm compares hundreds of candidate tile vectors.  To
    make their objective values directly comparable (and the search
    deterministic), one set of iteration points is drawn once from the
    *original* nest; for each candidate it is embedded into the tiled
    space — tiling is a bijection on iteration points, so the embedded
    sample is exactly as uniform as the original one. *)

type t

val create : ?n:int -> seed:int -> Tiling_ir.Nest.t -> t
(** [create ~seed nest] draws [n] points (default: the paper's 164) from
    the original, untiled nest. *)

val points : t -> int array array
(** The sample in original coordinates. *)

val size : t -> int

val embed : t -> tiles:int array -> int array array
(** The sample in the coordinates of [Transform.tile nest tiles]: control
    coordinates first (the tile containing each original value), then the
    original values. *)
