lib/ga/engine.mli: Encoding Tiling_util
