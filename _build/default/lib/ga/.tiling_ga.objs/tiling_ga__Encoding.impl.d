lib/ga/encoding.ml: Array Intmath Prng Tiling_util
