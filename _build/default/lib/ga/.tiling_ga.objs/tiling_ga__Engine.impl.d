lib/ga/engine.ml: Array Encoding Float Fun List Option Prng Tiling_util
