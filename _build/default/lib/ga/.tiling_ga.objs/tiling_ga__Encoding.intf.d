lib/ga/encoding.mli: Tiling_util
