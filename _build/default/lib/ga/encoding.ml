open Tiling_util

type t = {
  uppers : int array;
  bits : int array;
  gene_offsets : int array;
  total_genes : int;
}

let bits_for u =
  assert (u >= 1);
  let k = max 1 (Intmath.ceil_log2 u) in
  if k land 1 = 1 then k + 1 else k

let make uppers =
  assert (Array.length uppers > 0);
  let bits = Array.map bits_for uppers in
  let gene_offsets = Array.make (Array.length uppers) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i k ->
      gene_offsets.(i) <- !total;
      total := !total + (k / 2))
    bits;
  { uppers; bits; gene_offsets; total_genes = !total }

let decode_value ~bits ~upper x =
  assert (x >= 0 && x < Intmath.pow 2 bits);
  (x * (upper - 1) / (Intmath.pow 2 bits - 1)) + 1

let encode_value ~bits ~upper value =
  assert (value >= 1 && value <= upper);
  if upper = 1 then 0
  else begin
    (* Smallest x with g(x) = value: ceil ((value - 1) * (2^k - 1)
       / (upper - 1)); adjust upward past truncation boundaries. *)
    let m = Intmath.pow 2 bits - 1 in
    let x = ref (Intmath.ceil_div ((value - 1) * m) (upper - 1)) in
    while decode_value ~bits ~upper !x < value do
      incr x
    done;
    assert (decode_value ~bits ~upper !x = value);
    !x
  end

let chromosome_value t genes i =
  let ngenes = t.bits.(i) / 2 in
  let off = t.gene_offsets.(i) in
  let v = ref 0 in
  for g = 0 to ngenes - 1 do
    v := (!v * 4) + genes.(off + g)
  done;
  !v

let decode t genes =
  assert (Array.length genes = t.total_genes);
  Array.mapi
    (fun i upper ->
      decode_value ~bits:t.bits.(i) ~upper (chromosome_value t genes i))
    t.uppers

let encode t values =
  assert (Array.length values = Array.length t.uppers);
  let genes = Array.make t.total_genes 0 in
  Array.iteri
    (fun i value ->
      let x = encode_value ~bits:t.bits.(i) ~upper:t.uppers.(i) value in
      let ngenes = t.bits.(i) / 2 in
      let off = t.gene_offsets.(i) in
      for g = 0 to ngenes - 1 do
        genes.(off + g) <- (x lsr (2 * (ngenes - 1 - g))) land 3
      done)
    values;
  genes

let random_genes t rng = Array.init t.total_genes (fun _ -> Prng.int rng 4)
