(** The paper's chromosome encoding (section 3.3).

    An individual is a sequence of chromosomes, one per decision variable
    (tile size, padding amount, ...).  A chromosome for a variable ranging
    over [\[1, u\]] is a string of genes over the alphabet {00, 01, 10, 11}
    (i.e. base-4 digits): its bit width is [k = ceil (log2 u)], rounded up
    to the next even number so it splits into whole genes.  The chromosome's
    integer value [x in [0, 2^k - 1]] maps to the variable value by
    equation (2) of the paper:

    [g x = (x * (u - 1)) / (2^k - 1) + 1]  (integer division)

    Every value in [\[1, u\]] has at least one representation. *)

type t = private {
  uppers : int array;       (** upper bound [u] of each variable *)
  bits : int array;         (** bit width [k] of each chromosome (even) *)
  gene_offsets : int array; (** first gene index of each chromosome *)
  total_genes : int;        (** genes in a whole individual *)
}

val make : int array -> t
(** [make uppers] lays out one chromosome per variable.  Variables with
    [u = 1] still get one gene (their decoded value is always 1). *)

val bits_for : int -> int
(** [bits_for u] is [ceil (log2 u)] rounded up to even (minimum 2). *)

val decode_value : bits:int -> upper:int -> int -> int
(** Equation (2): chromosome integer value to variable value. *)

val encode_value : bits:int -> upper:int -> int -> int
(** A chromosome value that decodes to the given variable value (the
    smallest one).  Inverse of {!decode_value} up to the many-to-one
    mapping. *)

val decode : t -> int array -> int array
(** [decode t genes] maps a whole individual (base-4 gene array, most
    significant gene first within each chromosome) to variable values. *)

val encode : t -> int array -> int array
(** [encode t values] builds a gene array representing the values. *)

val random_genes : t -> Tiling_util.Prng.t -> int array
(** A uniformly random individual. *)
