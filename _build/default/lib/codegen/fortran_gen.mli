(** Fortran 77 code generation for (possibly tiled, padded) loop nests.

    Arrays are declared with their *layout* dimensions (so intra-array
    padding shows up as an enlarged leading dimension) and laid out in a
    single COMMON block in placement order, with explicit filler arrays for
    inter-array padding gaps — the classic way Fortran programmers
    controlled relative placement, and exactly the memory image the
    analysis assumed. *)

val emit_subroutine : ?name:string -> Tiling_ir.Nest.t -> string
(** A complete SUBROUTINE (fixed-form, 72-column-safe bodies are not
    guaranteed for very deep nests; modern compilers accept
    [-ffixed-line-length-none]). *)
