lib/codegen/fortran_gen.mli: Tiling_ir
