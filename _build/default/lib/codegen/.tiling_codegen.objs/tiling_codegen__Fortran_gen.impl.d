lib/codegen/fortran_gen.ml: Affine Array Array_decl Buffer List Nest Printf String Tiling_ir
