lib/codegen/c_gen.mli: Tiling_ir
