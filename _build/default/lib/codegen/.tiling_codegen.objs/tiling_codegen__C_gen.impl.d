lib/codegen/c_gen.ml: Affine Array Array_decl Buffer Int64 List Nest Printf String Tiling_ir
