(** C code generation for (possibly tiled, possibly padded) loop nests.

    The emitted function reproduces the nest's memory behaviour exactly:
    arrays live in one flat allocation at the same byte offsets the analysis
    used (so padding decisions carry over verbatim), loops follow the
    shapes — including the [min] upper bounds of tile element loops — and
    the body performs one read or write per reference in program order.

    Two flavours:
    - {!emit_function}: a library-style function over a caller-provided
      buffer, the thing a compiler pass would splice in;
    - {!emit_trace_program}: a standalone program that walks the nest and
      prints a hash of the (reference, element-offset) access stream; the
      test suite compiles it with the system C compiler and checks the hash
      against {!Tiling_trace.Gen}, closing the loop between the analysis
      and real compiled code. *)

val emit_function : ?name:string -> Tiling_ir.Nest.t -> string
(** [emit_function nest] is a self-contained C translation unit defining
    [void <name>(double *mem)] (default name: the nest's name, lowercased
    and sanitised). *)

val emit_trace_program : Tiling_ir.Nest.t -> string
(** A complete C program whose [main] prints the decimal FNV-1a hash of the
    access stream [(ref_id, byte_address)] in execution order. *)

val access_stream_hash : Tiling_ir.Nest.t -> int64
(** The same hash computed by {!Tiling_trace.Gen} — what the emitted
    program must print. *)
