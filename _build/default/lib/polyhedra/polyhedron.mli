(** Integer polyhedra with exact Fourier–Motzkin elimination.

    This is the machinery the paper's section 2 talks about directly: Cache
    Miss Equations are conjunctions of linear equalities and inequalities
    (over iteration variables and auxiliary "wrap" variables), and deciding
    a miss means deciding whether such a polyhedron contains an integer
    point.  The production solver ({!Tiling_cme.Engine}) answers those
    queries with specialised residue arithmetic; this module provides the
    general-purpose reference implementation used by the symbolic CME layer
    and by differential tests:

    - constraints are stored with integer coefficients
      ([sum coeffs.x + const >= 0] and [= 0]);
    - {!eliminate} removes a variable by Fourier–Motzkin combination (exact
      over the rationals; gcd-normalised to keep coefficients small);
    - {!is_rationally_empty} decides emptiness over the rationals;
    - {!integer_points} enumerates integer solutions by bounding-box
      backtracking with per-level constraint propagation — exponential in
      general (the paper's point: "counting the points [...] is an NP
      problem"), fine for the small systems the tests build. *)

type constr = {
  coeffs : int array;  (** length = dimension *)
  const : int;
  kind : [ `Ge | `Eq ];  (** [sum + const >= 0] or [= 0] *)
}

type t = private { dim : int; cons : constr list }

val universe : int -> t
(** No constraints over [dim] variables. *)

val of_constraints : dim:int -> constr list -> t

val ge : coeffs:int array -> const:int -> constr
(** [sum coeffs.x + const >= 0]. *)

val le : coeffs:int array -> const:int -> constr
(** [sum coeffs.x + const <= 0] (normalised to [`Ge]). *)

val eq : coeffs:int array -> const:int -> constr
(** [sum coeffs.x + const = 0]. *)

val add : t -> constr list -> t

val of_box : lo:int array -> hi:int array -> t
(** The box [prod [lo_l, hi_l]]. *)

val contains : t -> int array -> bool

val eliminate : t -> int -> t
(** [eliminate p v] projects away variable [v] (Fourier-Motzkin; the
    result's dimension is unchanged, but no constraint mentions [v]).
    Equalities involving [v] are used for exact substitution first. *)

val is_rationally_empty : t -> bool
(** Emptiness over the rationals (eliminate everything, check constants).
    Rational non-emptiness does NOT imply an integer point exists. *)

val var_bounds : t -> int -> (int * int) option
(** [var_bounds p v] is the tightest integer interval containing the
    projections of all rational solutions onto variable [v]; [None] when
    the polyhedron is rationally empty or the variable is unbounded. *)

val integer_points : ?cap:int -> t -> int array list
(** All integer solutions (at most [cap], default 100_000; raises
    [Invalid_argument] if a variable is unbounded).  Order: lexicographic. *)

val count_integer_points : ?cap:int -> t -> int
(** [List.length (integer_points p)] without materialising the list. *)

val has_integer_point : t -> bool
(** Backtracking search for one integer solution. *)

val pp : t Fmt.t
