lib/polyhedra/polyhedron.mli: Fmt
