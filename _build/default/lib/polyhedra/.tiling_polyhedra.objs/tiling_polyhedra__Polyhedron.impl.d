lib/polyhedra/polyhedron.ml: Array Fmt Hashtbl Intmath List Tiling_util
