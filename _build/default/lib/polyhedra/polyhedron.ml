open Tiling_util

type constr = { coeffs : int array; const : int; kind : [ `Ge | `Eq ] }

type t = { dim : int; cons : constr list }

let universe dim =
  assert (dim >= 0);
  { dim; cons = [] }

let normalise c =
  let g =
    Array.fold_left (fun acc x -> Intmath.gcd acc x) (abs c.const) c.coeffs
  in
  if g <= 1 then c
  else
    {
      c with
      coeffs = Array.map (fun x -> x / g) c.coeffs;
      const = c.const / g;
    }

let of_constraints ~dim cons =
  List.iter (fun c -> assert (Array.length c.coeffs = dim)) cons;
  { dim; cons = List.map normalise cons }

let ge ~coeffs ~const = { coeffs; const; kind = `Ge }

let le ~coeffs ~const =
  { coeffs = Array.map (fun x -> -x) coeffs; const = -const; kind = `Ge }

let eq ~coeffs ~const = { coeffs; const; kind = `Eq }

let add t cons =
  List.iter (fun c -> assert (Array.length c.coeffs = t.dim)) cons;
  { t with cons = List.map normalise cons @ t.cons }

let of_box ~lo ~hi =
  let dim = Array.length lo in
  assert (Array.length hi = dim);
  let unit v k =
    let coeffs = Array.make dim 0 in
    coeffs.(v) <- k;
    coeffs
  in
  let cons =
    List.concat
      (List.init dim (fun v ->
           [ ge ~coeffs:(unit v 1) ~const:(-lo.(v));
             ge ~coeffs:(unit v (-1)) ~const:hi.(v) ]))
  in
  { dim; cons }

let eval c point =
  let acc = ref c.const in
  Array.iteri (fun i a -> if a <> 0 then acc := !acc + (a * point.(i))) c.coeffs;
  !acc

let holds c point =
  let v = eval c point in
  match c.kind with `Ge -> v >= 0 | `Eq -> v = 0

let contains t point =
  Array.length point = t.dim && List.for_all (fun c -> holds c point) t.cons

(* Linear combination [lam * a + mu * b] (lam, mu chosen by callers so the
   result's kind is sound). *)
let combine ~lam a ~mu b kind =
  normalise
    {
      coeffs = Array.init (Array.length a.coeffs) (fun i -> (lam * a.coeffs.(i)) + (mu * b.coeffs.(i)));
      const = (lam * a.const) + (mu * b.const);
      kind;
    }

let dedup cons =
  let tbl = Hashtbl.create 64 in
  List.filter
    (fun c ->
      let key = (Array.to_list c.coeffs, c.const, c.kind) in
      if Hashtbl.mem tbl key then false
      else begin
        Hashtbl.replace tbl key ();
        true
      end)
    cons

(* Drop constraints that are trivially true; detect trivially false. *)
exception Empty

let simplify cons =
  List.filter
    (fun c ->
      if Array.for_all (fun x -> x = 0) c.coeffs then begin
        (match c.kind with
        | `Ge -> if c.const < 0 then raise Empty
        | `Eq -> if c.const <> 0 then raise Empty);
        false
      end
      else true)
    cons

let eliminate t v =
  assert (0 <= v && v < t.dim);
  try
    let cons = simplify t.cons in
    (* Exact substitution through an equality if one mentions [v]. *)
    let eq_with_v =
      List.find_opt (fun c -> c.kind = `Eq && c.coeffs.(v) <> 0) cons
    in
    let cons =
      match eq_with_v with
      | Some e ->
          let c = e.coeffs.(v) in
          let s = if c > 0 then 1 else -1 in
          List.filter_map
            (fun o ->
              if o == e then None
              else
                let d = o.coeffs.(v) in
                if d = 0 then Some o
                else Some (combine ~lam:(abs c) o ~mu:(-d * s) e o.kind))
            cons
      | None ->
          (* Split equalities mentioning v into two inequalities first. *)
          let cons =
            List.concat_map
              (fun c ->
                if c.kind = `Eq && c.coeffs.(v) <> 0 then
                  [ { c with kind = `Ge };
                    { coeffs = Array.map (fun x -> -x) c.coeffs;
                      const = -c.const; kind = `Ge } ]
                else [ c ])
              cons
          in
          let pos, neg, zero =
            List.fold_left
              (fun (p, n, z) c ->
                if c.coeffs.(v) > 0 then (c :: p, n, z)
                else if c.coeffs.(v) < 0 then (p, c :: n, z)
                else (p, n, c :: z))
              ([], [], []) cons
          in
          let combined =
            List.concat_map
              (fun p ->
                List.map
                  (fun n -> combine ~lam:(-n.coeffs.(v)) p ~mu:p.coeffs.(v) n `Ge)
                  neg)
              pos
          in
          zero @ combined
    in
    { t with cons = dedup (simplify cons) }
  with Empty ->
    (* Represent emptiness canonically: 0 >= 1. *)
    { t with cons = [ { coeffs = Array.make t.dim 0; const = -1; kind = `Ge } ] }

let is_rationally_empty t =
  let rec go t v =
    if List.exists
         (fun c ->
           Array.for_all (fun x -> x = 0) c.coeffs
           && (match c.kind with `Ge -> c.const < 0 | `Eq -> c.const <> 0))
         t.cons
    then true
    else if v = t.dim then false
    else go (eliminate t v) (v + 1)
  in
  go t 0

let substitute t v value =
  {
    t with
    cons =
      List.map
        (fun c ->
          if c.coeffs.(v) = 0 then c
          else
            let coeffs = Array.copy c.coeffs in
            let d = coeffs.(v) in
            coeffs.(v) <- 0;
            { c with coeffs; const = c.const + (d * value) })
        t.cons;
  }

let var_bounds t v =
  (* Project away every other variable, then read off the 1-D bounds. *)
  let p = ref t in
  for u = 0 to t.dim - 1 do
    if u <> v then p := eliminate !p u
  done;
  let lo = ref None and hi = ref None and empty = ref false in
  let tighten_lo x = match !lo with None -> lo := Some x | Some y -> if x > y then lo := Some x in
  let tighten_hi x = match !hi with None -> hi := Some x | Some y -> if x < y then hi := Some x in
  List.iter
    (fun c ->
      let a = c.coeffs.(v) in
      if Array.exists (fun x -> x <> 0) c.coeffs && a = 0 then ()
      else if a = 0 then begin
        match c.kind with
        | `Ge -> if c.const < 0 then empty := true
        | `Eq -> if c.const <> 0 then empty := true
      end
      else begin
        match c.kind with
        | `Eq ->
            (* v = -const / a *)
            if c.const mod a = 0 then begin
              let x = -c.const / a in
              tighten_lo x;
              tighten_hi x
            end
            else begin
              (* rational value, no integer point on this line; still keep
                 the rational bound *)
              let x = Intmath.floor_div (-c.const) a in
              tighten_lo x;
              tighten_hi x
            end
        | `Ge ->
            if a > 0 then tighten_lo (Intmath.ceil_div (-c.const) a)
            else tighten_hi (Intmath.floor_div c.const (-a))
      end)
    !p.cons;
  if !empty then None
  else
    match (!lo, !hi) with
    | Some l, Some h -> if l <= h then Some (l, h) else None
    | _ -> None

let fold_integer_points ?(cap = 100_000) t f init =
  let acc = ref init in
  let count = ref 0 in
  let point = Array.make t.dim 0 in
  let rec go p v =
    if v = t.dim then begin
      (* Bounds pruning is rational: re-verify the point exactly. *)
      if contains t point then begin
        incr count;
        if !count > cap then invalid_arg "integer_points: cap exceeded";
        acc := f !acc (Array.copy point)
      end
    end
    else
      match var_bounds p v with
      | None -> ()
      | Some (lo, hi) ->
          if hi - lo > 10_000_000 then invalid_arg "integer_points: unbounded-ish";
          for x = lo to hi do
            point.(v) <- x;
            go (substitute p v x) (v + 1)
          done
  in
  go t 0;
  !acc

let integer_points ?cap t =
  List.rev (fold_integer_points ?cap t (fun acc p -> p :: acc) [])

let count_integer_points ?cap t =
  fold_integer_points ?cap t (fun acc _ -> acc + 1) 0

exception Found

let has_integer_point t =
  let point = Array.make t.dim 0 in
  let rec go p v =
    if v = t.dim then begin
      if contains t point then raise Found
    end
    else
      match var_bounds p v with
      | None -> ()
      | Some (lo, hi) ->
          if hi - lo > 10_000_000 then invalid_arg "has_integer_point: unbounded-ish";
          for x = lo to hi do
            point.(v) <- x;
            go (substitute p v x) (v + 1)
          done
  in
  try
    go t 0;
    false
  with Found -> true

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun c ->
      let first = ref true in
      Array.iteri
        (fun i a ->
          if a <> 0 then begin
            if !first then Fmt.pf ppf "%dx%d" a i else Fmt.pf ppf " + %dx%d" a i;
            first := false
          end)
        c.coeffs;
      if !first then Fmt.pf ppf "0";
      Fmt.pf ppf " %+d %s 0@ " c.const (match c.kind with `Ge -> ">=" | `Eq -> "=")
    )
    t.cons;
  Fmt.pf ppf "@]"
