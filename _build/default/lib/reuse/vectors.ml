open Tiling_ir

type t = { delta : int array; spatial : bool; leader : int option }

let lex_sign delta =
  let rec go l =
    if l = Array.length delta then 0
    else if delta.(l) > 0 then 1
    else if delta.(l) < 0 then -1
    else go (l + 1)
  in
  go 0

(* Per-loop step, trip count and overall value span.  For a tile-element
   loop the span is the original loop's full extent: reuse may come from a
   different tile (the point solver re-derives the tile coordinates). *)
let loop_info (nest : Nest.t) =
  Array.map
    (fun (l : Nest.loop) ->
      match l.shape with
      | Nest.Range { lo; hi; step } ->
          let trip = Tiling_util.Intmath.range_count ~lo ~hi ~step in
          (step, trip, trip)
      | Nest.Tile_ctrl { lo; hi; tile } ->
          let trip = Tiling_util.Intmath.range_count ~lo ~hi ~step:tile in
          (tile, trip, trip)
      | Nest.Tile_elem { ctrl; tile; hi } ->
          let lo =
            match nest.loops.(ctrl).shape with
            | Nest.Tile_ctrl { lo; _ } -> lo
            | _ -> assert false
          in
          (1, tile, hi - lo + 1))
    nest.Nest.loops

let round_div a b = Tiling_util.Intmath.floor_div ((2 * a) + abs b) (2 * b)

let of_reference (nest : Nest.t) ~line (r : Nest.reference) =
  let d = Nest.depth nest in
  let info = loop_info nest in
  let f = Nest.address_form nest r in
  let c l = Affine.coeff f l in
  let is_ctrl l =
    match nest.Nest.loops.(l).shape with Nest.Tile_ctrl _ -> true | _ -> false
  in
  let has_tiles =
    Array.exists
      (fun (l : Nest.loop) ->
        match l.shape with Nest.Tile_elem _ -> true | _ -> false)
      nest.Nest.loops
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let emit ?leader ~spatial delta =
    (* On tiled nests the point solver re-derives tile coordinates, so a
       lexicographically negative delta can still reach an earlier point;
       validity is then decided per point.  On plain nests the static sign
       is decisive. *)
    let valid =
      match (lex_sign delta, leader) with
      | 1, _ -> true
      | -1, _ -> has_tiles
      | 0, Some b -> b < r.ref_id (* same iteration, earlier reference *)
      | 0, None -> false
      | _ -> assert false
    in
    if valid then begin
      let key = (Array.to_list delta, spatial, leader) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := { delta; spatial; leader } :: !out
      end
    end
  in
  (* Candidate deltas with at most two non-zero components that bring the
     source address within a cache line of the destination address:
     [|gap - sum_l stride_l * k_l| < line].  Temporal reuse is the exact
     case (difference 0); same-line spatial reuse is re-checked per point. *)
  let candidates ~leader ~gap =
    (* zero-dimensional *)
    if abs gap < line then emit ?leader ~spatial:(gap <> 0) (Array.make d 0);
    (* one-dimensional *)
    for l = 0 to d - 1 do
      if not (is_ctrl l) then begin
        let step, _, span = info.(l) in
        let stride = c l * step in
        let try_k k =
          if k <> 0 && abs k < span then begin
            let rem = gap - (stride * k) in
            if abs rem < line then begin
              let delta = Array.make d 0 in
              delta.(l) <- k * step;
              emit ?leader ~spatial:(rem <> 0) delta
            end
          end
        in
        if stride = 0 then begin
          if abs gap < line then begin
            try_k 1;
            try_k (-1)
          end
        end
        else begin
          let k0 = round_div gap stride in
          for k = k0 - 3 to k0 + 3 do
            try_k k
          done
        end
      end
    done;
    (* two-dimensional: a coarse dimension moves a small number of steps
       while a finer dimension compensates, e.g. reuse across a column seam
       of a column-major array. *)
    for lf = 0 to d - 1 do
      let step_f, _, span_f = info.(lf) in
      let cf = c lf * step_f in
      if cf <> 0 && not (is_ctrl lf) then
        for lc = 0 to d - 1 do
          let step_c, _, span_c = info.(lc) in
          let cc = c lc * step_c in
          if lc <> lf && cc <> 0 && abs cc > abs cf && not (is_ctrl lc) then
            List.iter
              (fun b ->
                if abs b < span_c then begin
                  let a0 = round_div (gap - (cc * b)) cf in
                  for a = a0 - 3 to a0 + 3 do
                    if a <> 0 && abs a < span_f then begin
                      let rem = gap - ((cf * a) + (cc * b)) in
                      if abs rem < line then begin
                        let delta = Array.make d 0 in
                        delta.(lf) <- a * step_f;
                        delta.(lc) <- b * step_c;
                        emit ?leader ~spatial:(rem <> 0) delta
                      end
                    end
                  done
                end)
              [ -2; -1; 1; 2 ]
        done
    done
  in
  (* Exact group deltas: for uniformly generated references the temporal
     reuse vector solves [subscript_B (p - delta) = subscript_A p] one array
     dimension at a time.  When every subscript row involves a single loop
     variable (the common Fortran case) the solution is immediate; the
     contiguous dimension may keep a sub-line remainder, yielding spatial
     variants.  This covers reuse that moves several loop variables at
     once, which 1-/2-dimensional gap bridging cannot reach. *)
  let exact_group_deltas (b : Nest.reference) =
    if b.ref_id <> r.ref_id && b.array == r.array then begin
      let uniform =
        let ok = ref true in
        Array.iteri
          (fun dim row ->
            for l = 0 to d - 1 do
              if Affine.coeff row l <> Affine.coeff b.idx.(dim) l then ok := false
            done)
          r.idx;
        !ok
      in
      if uniform then begin
        let elem = r.array.Array_decl.elem_size in
        let delta = Array.make d 0 in
        let assigned = Array.make d false in
        let feasible = ref true in
        (* Dimensions 1.. must match exactly (their strides exceed a line);
           solve them first. *)
        Array.iteri
          (fun dim (row : Affine.t) ->
            if dim > 0 && !feasible then begin
              let gd = b.idx.(dim).Affine.const - row.Affine.const in
              let vars =
                List.filter (fun l -> Affine.coeff row l <> 0) (List.init d Fun.id)
              in
              match vars with
              | [] -> if gd <> 0 then feasible := false
              | [ l ] ->
                  let cl = Affine.coeff row l in
                  if gd mod cl <> 0 then feasible := false
                  else begin
                    let q = gd / cl in
                    if assigned.(l) then begin
                      if delta.(l) <> q then feasible := false
                    end
                    else begin
                      assigned.(l) <- true;
                      delta.(l) <- q
                    end
                  end
              | _ -> feasible := false (* multi-variable subscript row *)
            end)
          r.idx;
        if !feasible then begin
          (* Dimension 0 is contiguous: besides the exact solution, any
             delta landing within a cache line of the target element is a
             spatial candidate (the per-point line check filters). *)
          let row = r.idx.(0) in
          let gd = b.idx.(0).Affine.const - row.Affine.const in
          let vars =
            List.filter (fun l -> Affine.coeff row l <> 0) (List.init d Fun.id)
          in
          match vars with
          | [] -> if gd = 0 then emit ~leader:b.ref_id ~spatial:false (Array.copy delta)
          | [ l ] ->
              let cl = Affine.coeff row l in
              let q0 = Tiling_util.Intmath.floor_div gd cl in
              let kmax =
                max 1 ((line - 1) / max 1 (abs (cl * elem)))
              in
              if assigned.(l) then begin
                (* var pinned by an outer dimension: accept if within a line *)
                let rem = gd - (cl * delta.(l)) in
                if abs (rem * elem) < line then
                  emit ~leader:b.ref_id ~spatial:(rem <> 0) (Array.copy delta)
              end
              else
                for k = -kmax to kmax do
                  let dl = q0 + k in
                  let rem = gd - (cl * dl) in
                  if abs (rem * elem) < line then begin
                    let d2 = Array.copy delta in
                    d2.(l) <- dl;
                    emit ~leader:b.ref_id ~spatial:(rem <> 0) d2
                  end
                done
          | _ -> ()
        end
      end
    end
  in
  Array.iter
    (fun (b : Nest.reference) ->
      exact_group_deltas b;
      let fb = Nest.address_form nest b in
      let same_linear =
        let ok = ref true in
        for l = 0 to d - 1 do
          if Affine.coeff fb l <> c l then ok := false
        done;
        !ok
      in
      if same_linear then begin
        let leader = if b.ref_id = r.ref_id then None else Some b.ref_id in
        candidates ~leader ~gap:(fb.Affine.const - f.Affine.const)
      end)
    nest.Nest.refs;
  (* Nearest sources first: shorter deltas are closer in execution order (a
     heuristic ordering; the hit/miss outcome does not depend on it). *)
  let magnitude v = Array.fold_left (fun acc k -> acc + abs k) 0 v.delta in
  List.sort
    (fun a b ->
      let cm = compare (magnitude a) (magnitude b) in
      if cm <> 0 then cm
      else
        let cd = Nest.lex_compare a.delta b.delta in
        if cd <> 0 then cd else compare (a.spatial, a.leader) (b.spatial, b.leader))
    !out

let of_nest nest ~line =
  Array.map (fun r -> of_reference nest ~line r) nest.Nest.refs

let pp ~names ppf t =
  ignore names;
  Fmt.pf ppf "(%a)%s%s"
    Fmt.(array ~sep:(any ",") int)
    t.delta
    (if t.spatial then "s" else "t")
    (match t.leader with None -> "" | Some b -> Printf.sprintf "<-r%d" b)
