lib/reuse/vectors.ml: Affine Array Array_decl Fmt Fun Hashtbl List Nest Printf Tiling_ir Tiling_util
