lib/reuse/vectors.mli: Fmt Tiling_ir
