(** Reuse vectors (Wolf & Lam) for references of a (possibly tiled) nest.

    A reuse vector [delta] says that the data accessed by a reference at
    iteration point [p] was potentially accessed before at point
    [p - delta] — by the same reference (self reuse) or by a [leader]
    reference (group reuse).  [spatial = false] means the source touches the
    same array element (temporal); [spatial = true] means it merely lands on
    the same memory line with high probability, which the CME point test
    re-checks exactly at every point.

    Vectors are expressed as deltas of loop-variable values, so the source
    point is literally [p - delta]; a delta is valid only when the source
    access precedes the destination access in program order
    (lexicographically positive, or zero with an earlier-in-body leader).

    For tiled nests the generator also emits cross-tile vectors
    [T * (e_ctrl + e_elem)], which carry reuse from the same relative
    position in the previous tile — these are what make the CMEs "see"
    the locality that tiling creates. *)

type t = {
  delta : int array;  (** source point = destination point - delta *)
  spatial : bool;     (** same line (to be confirmed per point) vs same element *)
  leader : int option; (** [Some id]: group reuse from reference [id] *)
}

val of_reference : Tiling_ir.Nest.t -> line:int -> Tiling_ir.Nest.reference -> t list
(** Candidate reuse vectors for one reference, ordered by increasing reuse
    distance (innermost, shortest vectors first).  [line] is the cache line
    size in bytes, used to decide which strides can yield spatial reuse. *)

val of_nest : Tiling_ir.Nest.t -> line:int -> t list array
(** [of_reference] for every reference, indexed by [ref_id]. *)

val pp : names:string array -> t Fmt.t
