type entry = { targets : (int * int) list; count : int }

type t = { origin : int array; entries : entry list }

let points t = List.fold_left (fun acc e -> acc * e.count) 1 t.entries

let point_at t ts =
  let p = Array.copy t.origin in
  List.iteri
    (fun i e ->
      List.iter (fun (var, inc) -> p.(var) <- p.(var) + (inc * ts.(i))) e.targets)
    t.entries;
  p

let iter_points t f =
  let entries = Array.of_list t.entries in
  let n = Array.length entries in
  let ts = Array.make n 0 in
  let rec go i =
    if i = n then f (point_at t ts)
    else
      for v = 0 to entries.(i).count - 1 do
        ts.(i) <- v;
        go (i + 1)
      done
  in
  go 0

let eval_form f box =
  let const = Tiling_ir.Affine.eval f box.origin in
  let gens =
    List.filter_map
      (fun e ->
        let step =
          List.fold_left
            (fun acc (var, inc) -> acc + (Tiling_ir.Affine.coeff f var * inc))
            0 e.targets
        in
        if step = 0 || e.count = 1 then None else Some (step, e.count))
      box.entries
  in
  (const, gens)

let value_range const gens =
  List.fold_left
    (fun (mn, mx) (step, count) ->
      let span = step * (count - 1) in
      if span >= 0 then (mn, mx + span) else (mn + span, mx))
    (const, const) gens

let pp ppf t =
  Fmt.pf ppf "box{origin=%a; %a}"
    Fmt.(array ~sep:(any ",") int)
    t.origin
    Fmt.(
      list ~sep:(any "; ")
        (fun ppf e ->
          pf ppf "%a x%d"
            (list ~sep:(any "+") (fun ppf (v, i) -> pf ppf "%d*v%d" i v))
            e.targets e.count))
    t.entries
