lib/cme/estimator.ml: Array Engine Fmt Prng Stats Tiling_ir Tiling_util
