lib/cme/path.mli: Box Tiling_ir
