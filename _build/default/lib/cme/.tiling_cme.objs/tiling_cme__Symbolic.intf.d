lib/cme/symbolic.mli: Tiling_cache Tiling_ir Tiling_polyhedra
