lib/cme/path.ml: Array Box Fun List Nest Option Tiling_ir Tiling_util
