lib/cme/engine.mli: Tiling_cache Tiling_ir Tiling_reuse
