lib/cme/box.mli: Fmt Tiling_ir
