lib/cme/equations.ml: Array Fmt List Path Tiling_ir Tiling_reuse
