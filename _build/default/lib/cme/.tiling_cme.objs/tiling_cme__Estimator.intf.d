lib/cme/estimator.mli: Engine Fmt Tiling_ir Tiling_util
