lib/cme/equations.mli: Fmt Tiling_ir
