lib/cme/symbolic.ml: Affine Array Box Engine List Nest Path Polyhedron Tiling_cache Tiling_ir Tiling_polyhedra Tiling_util
