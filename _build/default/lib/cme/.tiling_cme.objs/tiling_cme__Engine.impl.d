lib/cme/engine.ml: Affine Array Box Fun Hashtbl Intmath List Logs Nest Path Residue_set Tiling_cache Tiling_ir Tiling_reuse Tiling_util
