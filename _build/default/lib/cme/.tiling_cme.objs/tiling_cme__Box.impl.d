lib/cme/box.ml: Array Fmt List Tiling_ir
