(** Symbolic census of the Cache Miss Equations of a nest.

    The point solver never materialises the equations, but their number
    drives the paper's complexity discussion (section 2.4): with [n] convex
    regions, compulsory equations multiply by [n] and replacement equations
    by [n^2].  This module reports those counts so the effect of tiling on
    the equation system is observable and testable. *)

type summary = {
  regions : int;               (** convex regions of the iteration space *)
  references : int;
  reuse_vectors : int;         (** total over all references *)
  compulsory_equations : int;  (** one per reference, reuse vector and region *)
  replacement_equations : int;
      (** one per reference, reuse vector, interfering reference and region
          pair *)
}

val summarize : Tiling_ir.Nest.t -> line:int -> summary

val pp : summary Fmt.t
