(** Constant-shape integer boxes over a nest's loop variables.

    A box describes a set of iteration points as an affine lattice product:
    every point is [origin + sum_e inc_e * t_e] with [t_e in [0, count_e)],
    where each entry [e] increments one or more variables (a tile-control
    variable and its element variable move together, which is how the
    coupling [i in [ii, ii + T - 1]] is linearised).  Boxes are the convex
    regions of section 2.4: the path slicer emits one box per region.

    Evaluating an affine address function over a box yields a constant plus
    one generator (step, count) per entry — the exact input shape of the
    replacement-polyhedra engine. *)

type entry = {
  targets : (int * int) list;  (** (variable, per-step increment) pairs *)
  count : int;                 (** number of lattice steps, >= 1 *)
}

type t = {
  origin : int array;  (** value of every variable at [t = 0] *)
  entries : entry list;
}

val points : t -> int
(** Number of points ([product of counts]). *)

val point_at : t -> int array -> int array
(** [point_at box ts] materialises the point for entry coordinates [ts]
    (mostly for tests). *)

val iter_points : t -> (int array -> unit) -> unit
(** Enumerates all points (tests only; exponential). *)

val eval_form : Tiling_ir.Affine.t -> t -> int * (int * int) list
(** [eval_form f box] is [(const, generators)]: the image of [f] over the
    box is [{ const + sum (step_g * t_g) }] with independent
    [t_g in [0, count_g)].  Zero-step generators are dropped. *)

val value_range : int -> (int * int) list -> int * int
(** [value_range const gens] is the (min, max) of the image. *)

val pp : t Fmt.t
