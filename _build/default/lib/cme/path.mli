(** Decomposition of reuse paths into constant-shape boxes.

    Given a source and a destination iteration point, [between] covers every
    iteration point that executes strictly between them with disjoint
    {!Box.t} values.  The decomposition is the classic prefix splitting of a
    lexicographic interval (at most [2*depth - 1] slices); on tiled nests
    each slice additionally splits per tiled dimension into full-tile and
    partial-tile variants — these are exactly the multiple convex regions of
    section 2.4 of the paper. *)

val between : Tiling_ir.Nest.t -> src:int array -> dst:int array -> Box.t list
(** Points [p] with [src < p < dst] in execution (lexicographic) order.
    Requires [src <= dst]; both must be valid iteration points.  Returns
    disjoint non-empty boxes. *)

val full_space : Tiling_ir.Nest.t -> Box.t list
(** The whole iteration space as boxes (one per convex region). *)
