type t = { m : int; words : int array }
(* Bit [r] of the vector (word [r/62], bit [r mod 62]) records membership of
   residue [r].  We use 62 payload bits per OCaml int to keep everything in
   immediate integers. *)

let bits_per_word = 62

let modulus t = t.m

let nwords m = ((m + bits_per_word - 1) / bits_per_word)

let create m =
  assert (m > 0);
  { m; words = Array.make (nwords m) 0 }

let all_bits = (1 lsl bits_per_word) - 1

let tail_mask m =
  let rem = m mod bits_per_word in
  if rem = 0 then all_bits else (1 lsl rem) - 1

let full m =
  let t = create m in
  Array.fill t.words 0 (Array.length t.words) all_bits;
  t.words.(Array.length t.words - 1) <- tail_mask m;
  t

let copy t = { m = t.m; words = Array.copy t.words }

let add t r =
  let r = Intmath.pos_mod r t.m in
  let w = r / bits_per_word and b = r mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let singleton m r =
  let t = create m in
  add t r;
  t

let mem t r =
  let r = Intmath.pos_mod r t.m in
  let w = r / bits_per_word and b = r mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec loop acc x = if x = 0 then acc else loop (acc + 1) (x land (x - 1)) in
  loop 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let is_full t =
  let n = Array.length t.words in
  let ok = ref true in
  for i = 0 to n - 2 do
    if t.words.(i) <> all_bits then ok := false
  done;
  !ok && t.words.(n - 1) = tail_mask t.m

let equal a b = a.m = b.m && a.words = b.words

let union_into ~dst src =
  assert (dst.m = src.m);
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let inter a b =
  assert (a.m = b.m);
  let t = create a.m in
  for i = 0 to Array.length t.words - 1 do
    t.words.(i) <- a.words.(i) land b.words.(i)
  done;
  t

(* Rotation by [k] positions.  Residue [r] of the source lands at
   [(r + k) mod m].  We walk destination words and gather the source bits;
   with 62-bit packing a destination word spans at most three source words
   once the wrap at position [m] is taken into account, so we fall back to a
   simple per-bit gather only for tiny moduli. *)
let rotate t k =
  let m = t.m in
  let k = Intmath.pos_mod k m in
  if k = 0 then copy t
  else begin
    let dst = create m in
    if m <= 4 * bits_per_word then begin
      (* Small modulus: per-bit copy is cheap and obviously correct. *)
      for r = 0 to m - 1 do
        if mem t r then add dst (r + k)
      done;
      dst
    end
    else begin
      (* Split the source into [0, m-k) -> shifted up by k, and
         [m-k, m) -> wrapped down to [0, k).  Copy bit ranges with word ops. *)
      let blit_range ~src_lo ~dst_lo ~len =
        (* Copy [len] bits starting at source bit [src_lo] to destination bit
           [dst_lo]. *)
        let i = ref 0 in
        while !i < len do
          let s = src_lo + !i and d = dst_lo + !i in
          let sw = s / bits_per_word and sb = s mod bits_per_word in
          let dw = d / bits_per_word and db = d mod bits_per_word in
          (* How many bits can we move in one word operation? *)
          let chunk =
            min (len - !i) (min (bits_per_word - sb) (bits_per_word - db))
          in
          let mask = if chunk = bits_per_word then all_bits else (1 lsl chunk) - 1 in
          let bits = (t.words.(sw) lsr sb) land mask in
          dst.words.(dw) <- dst.words.(dw) lor (bits lsl db);
          i := !i + chunk
        done
      in
      blit_range ~src_lo:0 ~dst_lo:k ~len:(m - k);
      blit_range ~src_lo:(m - k) ~dst_lo:0 ~len:k;
      dst
    end
  end

(* Union of [shift(t, i * step)] for [0 <= i < count], by binary doubling:
   the union over [2n] shifts is the union over [n] shifts, unioned with its
   own rotation by [n * step]. *)
let rec union_shifts t ~step ~count =
  assert (count >= 1);
  if count = 1 then copy t
  else
    let half = count / 2 in
    let u = union_shifts t ~step ~count:half in
    let u2 = rotate u (half * step mod t.m) in
    union_into ~dst:u2 u;
    if count land 1 = 0 then u2
    else begin
      let last = rotate t ((count - 1) * (step mod t.m) mod t.m) in
      union_into ~dst:u2 last;
      u2
    end

let sum_progression t ~step ~count =
  assert (count > 0);
  let m = t.m in
  let step = Intmath.pos_mod step m in
  if step = 0 || count = 1 then copy t
  else begin
    let g = Intmath.gcd step m in
    let period = m / g in
    if count >= period then
      (* Full coset of the subgroup <g>: smear by g over one whole period. *)
      union_shifts t ~step:g ~count:period
    else union_shifts t ~step ~count
  end

let hits_window t ~lo ~len =
  if len <= 0 then false
  else begin
    let m = t.m in
    if len >= m then not (is_empty t)
    else begin
      let lo = Intmath.pos_mod lo m in
      let probe_range a b =
        (* any member in [a, b) with 0 <= a <= b <= m *)
        let found = ref false in
        let r = ref a in
        while (not !found) && !r < b do
          let w = !r / bits_per_word and bit = !r mod bits_per_word in
          if t.words.(w) lsr bit = 0 then
            (* No bits at or above [bit] in this word: jump to next word. *)
            r := (w + 1) * bits_per_word
          else if t.words.(w) land (1 lsl bit) <> 0 then found := true
          else incr r
        done;
        !found
      in
      if lo + len <= m then probe_range lo (lo + len)
      else probe_range lo m || probe_range 0 (lo + len - m)
    end
  end

let count_window t ~lo ~len =
  if len <= 0 then 0
  else begin
    let m = t.m in
    let len = min len m in
    let lo = Intmath.pos_mod lo m in
    let count_range a b =
      let acc = ref 0 in
      for r = a to b - 1 do
        if mem t r then incr acc
      done;
      !acc
    in
    if lo + len <= m then count_range lo (lo + len)
    else count_range lo m + count_range 0 (lo + len - m)
  end

let iter f t =
  for r = 0 to t.m - 1 do
    if mem t r then f r
  done

let elements t =
  let acc = ref [] in
  for r = t.m - 1 downto 0 do
    if mem t r then acc := r :: !acc
  done;
  !acc
