type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix64 (Int64.of_int seed) }

let copy g = { state = g.state }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g = { state = bits64 g }

let int g n =
  assert (n > 0);
  (* Rejection sampling on the top 62 bits keeps the result exactly uniform. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let bound = mask - (mask mod n) in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
    if v >= bound then draw () else v mod n
  in
  draw ()

let int_in g ~lo ~hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let float g =
  let v = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int v *. 0x1.0p-53

let bool g = Int64.logand (bits64 g) 1L = 1L

let bernoulli g ~p = if p <= 0. then false else if p >= 1. then true else float g < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement g ~n ~k =
  assert (0 <= k && k <= n);
  (* Floyd's algorithm: O(k) draws, no O(n) storage. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let pos = ref 0 in
  for j = n - k to n - 1 do
    let t = int g (j + 1) in
    let v = if Hashtbl.mem seen t then j else t in
    Hashtbl.replace seen v ();
    out.(!pos) <- v;
    incr pos
  done;
  out
