(** Deterministic pseudo-random number generator.

    A small, fast, splittable SplitMix64 generator.  Every stochastic
    component of the library (genetic algorithm, iteration-space sampling,
    baseline searches) threads an explicit [t] so that whole experiments are
    reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 64-bit seed. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    decorrelated from [g]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)].  [n] must be positive.  Uses rejection
    sampling, so the distribution is exactly uniform. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in g ~lo ~hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float
(** [float g] is uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli g ~p] is true with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> n:int -> k:int -> int array
(** [sample_without_replacement g ~n ~k] draws [k] distinct indices from
    [\[0, n)], in no particular order.  Requires [0 <= k <= n].  Uses
    Floyd's algorithm, so it is efficient even when [n] is huge. *)
