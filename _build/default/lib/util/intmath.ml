let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let egcd a b =
  (* Invariants: a*x0 + b*y0 = r0 and a*x1 + b*y1 = r1. *)
  let rec loop r0 x0 y0 r1 x1 y1 =
    if r1 = 0 then (r0, x0, y0)
    else
      let q = r0 / r1 in
      loop r1 x1 y1 (r0 - (q * r1)) (x0 - (q * x1)) (y0 - (q * y1))
  in
  let g, x, y = loop a 1 0 b 0 1 in
  if g < 0 then (-g, -x, -y) else (g, x, y)

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && r lxor b < 0 then q - 1 else q

let ceil_div a b = -floor_div (-a) b

let pos_mod a m =
  assert (m > 0);
  let r = a mod m in
  if r < 0 then r + m else r

let is_pow2 n = n > 0 && n land (n - 1) = 0

let ceil_log2 n =
  assert (n >= 1);
  let rec loop k p = if p >= n then k else loop (k + 1) (p * 2) in
  loop 0 1

let pow b e =
  assert (e >= 0);
  let rec loop acc b e =
    if e = 0 then acc
    else loop (if e land 1 = 1 then acc * b else acc) (b * b) (e asr 1)
  in
  loop 1 b e

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let range_count ~lo ~hi ~step =
  assert (step > 0);
  if hi < lo then 0 else ((hi - lo) / step) + 1

let multiples_in ~lo ~hi m =
  assert (m > 0);
  if hi < lo then 0 else floor_div hi m - floor_div (lo - 1) m

let crt (a, m) (b, n) =
  assert (m > 0 && n > 0);
  let g, p, _ = egcd m n in
  if (b - a) mod g <> 0 then None
  else
    let l = m / g * n in
    (* x = a + m * t with m*t = b - a (mod n), i.e. t = p*(b-a)/g (mod n/g) *)
    let t = pos_mod (p * ((b - a) / g)) (n / g) in
    Some (pos_mod (a + (m * t)) l, l)
