lib/util/stats.mli:
