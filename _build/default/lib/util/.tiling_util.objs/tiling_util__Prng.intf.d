lib/util/prng.mli:
