lib/util/par.mli:
