lib/util/prng.ml: Array Hashtbl Int64
