lib/util/par.ml: Array Atomic Domain
