lib/util/residue_set.mli:
