lib/util/residue_set.ml: Array Intmath
