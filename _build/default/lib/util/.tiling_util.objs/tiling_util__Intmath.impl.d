lib/util/intmath.ml:
