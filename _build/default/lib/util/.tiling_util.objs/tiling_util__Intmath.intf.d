lib/util/intmath.mli:
