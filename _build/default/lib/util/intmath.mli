(** Exact integer arithmetic helpers used throughout the CME solver.

    All functions operate on native [int]s.  Addresses and iteration counts in
    this code base stay well below [max_int] on 64-bit platforms; functions
    that could overflow document their preconditions. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor.  [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the non-negative least common multiple.  [lcm 0 _ = 0]. *)

val egcd : int -> int -> int * int * int
(** [egcd a b] is [(g, x, y)] with [a*x + b*y = g] and [g = gcd a b] >= 0. *)

val floor_div : int -> int -> int
(** [floor_div a b] rounds the quotient towards negative infinity.
    [b] must be non-zero. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] rounds the quotient towards positive infinity.
    [b] must be non-zero. *)

val pos_mod : int -> int -> int
(** [pos_mod a m] is the representative of [a] modulo [m] in [\[0, m)].
    [m] must be positive. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is true iff [n] is a positive power of two. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the smallest [k] with [2^k >= n].  [n] must be >= 1. *)

val pow : int -> int -> int
(** [pow b e] is [b^e] for [e >= 0], by repeated squaring.  No overflow
    checking. *)

val clamp : lo:int -> hi:int -> int -> int
(** [clamp ~lo ~hi x] limits [x] to the inclusive range [\[lo, hi\]].
    Requires [lo <= hi]. *)

val range_count : lo:int -> hi:int -> step:int -> int
(** [range_count ~lo ~hi ~step] is the number of points of the arithmetic
    progression [lo, lo+step, ...] that are <= [hi].  [step] must be
    positive; the count is 0 when [hi < lo]. *)

val multiples_in : lo:int -> hi:int -> int -> int
(** [multiples_in ~lo ~hi m] counts the multiples of [m > 0] inside the
    inclusive interval [\[lo, hi\]] (0 when the interval is empty). *)

val crt : (int * int) -> (int * int) -> (int * int) option
(** [crt (a, m) (b, n)] solves [x = a (mod m)], [x = b (mod n)] by the
    Chinese remainder theorem for possibly non-coprime moduli.  Returns
    [Some (c, lcm m n)] such that solutions are exactly [c (mod lcm m n)],
    or [None] when the system is infeasible.  [m, n] must be positive. *)
