open Tiling_ir

type spec = {
  depth : int;
  extent : int;
  narrays : int;
  nrefs : int;
  max_offset : int;
}

let default_spec =
  { depth = 3; extent = 12; narrays = 2; nrefs = 4; max_offset = 1 }

let generate ?(spec = default_spec) ~seed () =
  assert (spec.depth >= 1 && spec.extent >= 1 && spec.narrays >= 1 && spec.nrefs >= 1);
  let rng = Tiling_util.Prng.create ~seed in
  let extents = Array.make spec.depth (spec.extent + (2 * spec.max_offset) + 2) in
  let arrays =
    List.init spec.narrays (fun i ->
        Array_decl.create (Printf.sprintf "arr%d" i) extents)
  in
  Array_decl.place arrays;
  let var_names = Array.init spec.depth (fun l -> Printf.sprintf "v%d" l) in
  let loops =
    Array.to_list
      (Array.map (fun v -> (v, 1 + spec.max_offset, spec.extent + spec.max_offset)) var_names)
  in
  (* One subscript permutation per array keeps references uniformly
     generated. *)
  let orders =
    List.map
      (fun _ ->
        let order = Array.init spec.depth Fun.id in
        Tiling_util.Prng.shuffle rng order;
        order)
      arrays
  in
  let body =
    List.init spec.nrefs (fun _ ->
        let ai = Tiling_util.Prng.int rng spec.narrays in
        let a = List.nth arrays ai in
        let order = List.nth orders ai in
        let subs =
          List.init spec.depth (fun d ->
              let off =
                Tiling_util.Prng.int_in rng ~lo:(-spec.max_offset)
                  ~hi:spec.max_offset
              in
              Dsl.(v var_names.(order.(d)) +! i off))
        in
        if Tiling_util.Prng.bool rng then Dsl.store a subs else Dsl.load a subs)
  in
  Dsl.nest ~name:(Printf.sprintf "random_%d" seed) ~loops ~body ()
