lib/kernels/kernels.mli: Tiling_ir
