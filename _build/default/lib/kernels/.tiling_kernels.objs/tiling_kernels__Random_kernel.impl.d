lib/kernels/random_kernel.ml: Array Array_decl Dsl Fun List Printf Tiling_ir Tiling_util
