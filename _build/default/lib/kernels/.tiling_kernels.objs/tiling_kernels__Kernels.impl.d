lib/kernels/kernels.ml: Array_decl Dsl List Nest String Tiling_ir
