lib/kernels/random_kernel.mli: Tiling_ir
