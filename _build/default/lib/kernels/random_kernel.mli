(** Random affine kernels inside the CME framework's domain.

    Generates perfectly nested loops over a handful of arrays whose
    references are uniformly generated (identical linear subscripts per
    array, constant offsets differ) — the class of programs both the paper
    and this library analyse.  Used by the differential test suite to fuzz
    the solver against the simulator, and useful for benchmarking tile
    search on programs with no hand-tuned structure. *)

type spec = {
  depth : int;          (** loop nesting depth, >= 1 *)
  extent : int;         (** per-loop trip count (loops run [2..extent+1]) *)
  narrays : int;        (** number of arrays, >= 1 *)
  nrefs : int;          (** number of references, >= 1 *)
  max_offset : int;     (** subscript offsets drawn from [-max..max] *)
}

val default_spec : spec
(** depth 3, extent 12, 2 arrays, 4 references, offsets within 1. *)

val generate : ?spec:spec -> seed:int -> unit -> Tiling_ir.Nest.t
(** A fresh nest (arrays placed consecutively).  Deterministic in
    [seed]. *)
