type t = { sims : Sim.t array }

let create configs =
  if configs = [] then invalid_arg "Hierarchy.create: no levels";
  { sims = Array.of_list (List.map (fun c -> Sim.create c) configs) }

let access t ~ref_id ~addr =
  let missed = ref 0 in
  (try
     Array.iter
       (fun sim ->
         let before = (Sim.total sim).Sim.misses in
         Sim.access sim ~ref_id ~addr;
         if (Sim.total sim).Sim.misses = before then raise Exit else incr missed)
       t.sims
   with Exit -> ());
  !missed

let level_counts t = Array.map Sim.total t.sims

let reset t = Array.iter Sim.reset t.sims
