type latencies = { hit : float; memory : float }

let default_latencies = { hit = 1.; memory = 100. }

let amat ?(lat = default_latencies) ~miss_ratio () =
  assert (miss_ratio >= 0. && miss_ratio <= 1.);
  lat.hit +. (miss_ratio *. lat.memory)

let speedup ?(lat = default_latencies) ~before ~after () =
  amat ~lat ~miss_ratio:before () /. amat ~lat ~miss_ratio:after ()

let amat_hierarchy lats ~miss_ratios =
  if lats = [] || List.length lats <> List.length miss_ratios then
    invalid_arg "amat_hierarchy: level mismatch";
  (* AMAT = hit_0 + sum_i global_miss_i * (hit_{i+1} or memory). *)
  let rec go lats ratios =
    match (lats, ratios) with
    | [ last ], [ m ] -> m *. last.memory
    | l :: (next :: _ as lrest), m :: mrest ->
        ignore l;
        (m *. next.hit) +. go lrest mrest
    | _ -> assert false
  in
  (List.hd lats).hit +. go lats miss_ratios
