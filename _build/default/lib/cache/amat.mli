(** Average memory access time: turning miss ratios into estimated cycles.

    The paper motivates tiling with the latency gap between hierarchy
    levels (1–2 cycles for L1, ~100 for memory).  This model converts the
    analysis' miss ratios into the standard AMAT figure so before/after
    comparisons can be stated in cycles and projected speedups. *)

type latencies = {
  hit : float;     (** cycles on a hit at this level *)
  memory : float;  (** cycles to serve a miss from the next level down *)
}

val default_latencies : latencies
(** The introduction's numbers: 1-cycle hits, 100-cycle memory. *)

val amat : ?lat:latencies -> miss_ratio:float -> unit -> float
(** [amat ~miss_ratio ()] = [hit + miss_ratio * memory]. *)

val speedup :
  ?lat:latencies -> before:float -> after:float -> unit -> float
(** Memory-time speedup implied by reducing the miss ratio from [before]
    to [after] (both in [\[0,1\]]). *)

val amat_hierarchy : latencies list -> miss_ratios:float list -> float
(** Multi-level AMAT: [lat_i.hit] is level [i]'s hit time and
    [miss_ratios] are *global* miss ratios (misses at level [i] over all
    accesses); the last level's [memory] latency closes the recursion.
    Lists must have equal non-zero length. *)
