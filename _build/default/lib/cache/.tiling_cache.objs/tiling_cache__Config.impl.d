lib/cache/config.ml: Fmt Printf Tiling_util
