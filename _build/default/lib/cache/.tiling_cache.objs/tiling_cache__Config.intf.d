lib/cache/config.mli: Fmt
