lib/cache/sim.ml: Array Config Hashtbl
