lib/cache/amat.mli:
