lib/cache/hierarchy.mli: Config Sim
