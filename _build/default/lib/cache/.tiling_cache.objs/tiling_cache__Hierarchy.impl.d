lib/cache/hierarchy.ml: Array List Sim
