lib/cache/amat.ml: List
