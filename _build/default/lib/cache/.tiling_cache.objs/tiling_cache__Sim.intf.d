lib/cache/sim.mli: Config
