(** Multi-level cache hierarchies.

    The paper's introduction motivates tiling by the growing gap between
    hierarchy levels; its evaluation analyses one level at a time.  This
    module simulates a whole hierarchy (an access that misses level [i] is
    forwarded to level [i+1]), so the single-level CME analyses can be
    checked against a realistic memory system.

    For LRU caches with equal line sizes, the misses of level [i+1] under
    the *filtered* stream it actually receives closely track the misses of
    the *full* stream run against level [i+1] alone (the LRU stack
    property; exact for fully-associative levels, near-exact for
    set-associative ones).  That is what justifies analysing each level
    independently with CMEs — and it is asserted by the test suite. *)

type t

val create : Config.t list -> t
(** [create configs] builds a hierarchy, first level first.  The list must
    be non-empty. *)

val access : t -> ref_id:int -> addr:int -> int
(** Simulates one access; returns the number of levels missed (0 = L1 hit,
    [List.length configs] = missed everywhere). *)

val level_counts : t -> Sim.counts array
(** Per-level totals.  Level [i]'s [accesses] counts only the requests that
    reached it (i.e. level [i-1] misses). *)

val reset : t -> unit
