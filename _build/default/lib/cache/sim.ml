type counts = { accesses : int; misses : int; compulsory : int }

let replacement c = c.misses - c.compulsory

let miss_ratio c =
  if c.accesses = 0 then 0. else float_of_int c.misses /. float_of_int c.accesses

let replacement_ratio c =
  if c.accesses = 0 then 0. else float_of_int (replacement c) /. float_of_int c.accesses

type t = {
  config : Config.t;
  tags : int array;
      (* [sets * assoc] line numbers, most-recently-used first within each
         set; -1 = invalid. *)
  dirty : bool array;           (* parallel to [tags] *)
  seen : (int, unit) Hashtbl.t; (* memory lines ever brought in *)
  mutable wb : int;             (* dirty evictions *)
  mutable acc : int array;      (* per-ref accesses *)
  mutable mis : int array;      (* per-ref misses *)
  mutable cmp : int array;      (* per-ref compulsory misses *)
}

let create ?(num_refs = 8) config =
  {
    config;
    tags = Array.make (config.Config.sets * config.Config.assoc) (-1);
    dirty = Array.make (config.Config.sets * config.Config.assoc) false;
    seen = Hashtbl.create 65536;
    wb = 0;
    acc = Array.make num_refs 0;
    mis = Array.make num_refs 0;
    cmp = Array.make num_refs 0;
  }

let ensure t ref_id =
  let n = Array.length t.acc in
  if ref_id >= n then begin
    let n' = max (ref_id + 1) (2 * n) in
    let grow a = Array.append a (Array.make (n' - n) 0) in
    t.acc <- grow t.acc;
    t.mis <- grow t.mis;
    t.cmp <- grow t.cmp
  end

let access ?(write = false) t ~ref_id ~addr =
  ensure t ref_id;
  let cfg = t.config in
  let line = Config.line_of cfg addr in
  let set = Config.set_of_line cfg line in
  let a = cfg.Config.assoc in
  let base = set * a in
  t.acc.(ref_id) <- t.acc.(ref_id) + 1;
  (* Find the line among the set's ways (MRU-first order). *)
  let way = ref (-1) in
  (try
     for w = 0 to a - 1 do
       if t.tags.(base + w) = line then begin
         way := w;
         raise Exit
       end
     done
   with Exit -> ());
  if !way >= 0 then begin
    (* Hit: move to front, merging the dirty bit. *)
    let w = !way in
    let was_dirty = t.dirty.(base + w) in
    for k = w downto 1 do
      t.tags.(base + k) <- t.tags.(base + k - 1);
      t.dirty.(base + k) <- t.dirty.(base + k - 1)
    done;
    t.tags.(base) <- line;
    t.dirty.(base) <- was_dirty || write
  end
  else begin
    t.mis.(ref_id) <- t.mis.(ref_id) + 1;
    if not (Hashtbl.mem t.seen line) then begin
      Hashtbl.replace t.seen line ();
      t.cmp.(ref_id) <- t.cmp.(ref_id) + 1
    end;
    (* Insert at MRU, evicting the LRU way (write back if dirty). *)
    if t.tags.(base + a - 1) >= 0 && t.dirty.(base + a - 1) then t.wb <- t.wb + 1;
    for k = a - 1 downto 1 do
      t.tags.(base + k) <- t.tags.(base + k - 1);
      t.dirty.(base + k) <- t.dirty.(base + k - 1)
    done;
    t.tags.(base) <- line;
    t.dirty.(base) <- write
  end

let sum a = Array.fold_left ( + ) 0 a

let total t = { accesses = sum t.acc; misses = sum t.mis; compulsory = sum t.cmp }

let per_ref t =
  Array.init (Array.length t.acc) (fun i ->
      { accesses = t.acc.(i); misses = t.mis.(i); compulsory = t.cmp.(i) })

let lines_touched t = Hashtbl.length t.seen

let writebacks t = t.wb

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  t.wb <- 0;
  Hashtbl.reset t.seen;
  Array.fill t.acc 0 (Array.length t.acc) 0;
  Array.fill t.mis 0 (Array.length t.mis) 0;
  Array.fill t.cmp 0 (Array.length t.cmp) 0
