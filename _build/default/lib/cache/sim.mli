(** Trace-driven cache simulator with miss classification.

    The simulator is the ground-truth oracle of this reproduction: it
    replays a byte-address trace through an LRU set-associative cache and
    classifies every miss as *compulsory* (first touch of the memory line in
    the whole execution) or *replacement* (the line was cached before and
    has been evicted) — the paper's capacity + conflict misses.  Counts are
    kept per reference so kernels' per-reference behaviour can be compared
    with the CME predictions. *)

type counts = { accesses : int; misses : int; compulsory : int }

val replacement : counts -> int
(** Misses that are not compulsory. *)

val miss_ratio : counts -> float
(** Misses over accesses (0 when there are no accesses). *)

val replacement_ratio : counts -> float
(** Replacement misses over accesses, the paper's headline metric. *)

type t
(** Mutable simulator state. *)

val writebacks : t -> int
(** Dirty lines evicted so far (write-back, write-allocate policy): the
    store traffic a real memory system would see below this level. *)

val create : ?num_refs:int -> Config.t -> t
(** [create config] starts with a cold cache and empty history.
    [num_refs] sizes the per-reference counters (grown on demand). *)

val access : ?write:bool -> t -> ref_id:int -> addr:int -> unit
(** Simulate one access of [addr] issued by reference [ref_id] (>= 0).
    [write] (default false) marks the line dirty for write-back
    accounting; hit/miss behaviour is identical for loads and stores
    (write-allocate). *)

val total : t -> counts
val per_ref : t -> counts array

val lines_touched : t -> int
(** Number of distinct memory lines seen so far (= total compulsory
    misses). *)

val reset : t -> unit
(** Cold cache, zero counters, empty first-touch history. *)
