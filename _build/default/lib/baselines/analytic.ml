open Tiling_ir

let footprint_lines ~line form ~elem tiles =
  (* Merge per-dimension strides in increasing order: a dimension whose
     stride does not exceed the extent accumulated so far densifies the
     footprint; a larger stride multiplies the number of disjoint chunks. *)
  let dims =
    Array.to_list (Array.mapi (fun l t -> (abs (Affine.coeff form l), t)) tiles)
  in
  let dims =
    List.sort compare (List.filter (fun (c, t) -> c > 0 && t > 1) dims)
  in
  let extent, chunks =
    List.fold_left
      (fun (extent, chunks) (c, t) ->
        if c <= extent then (extent + (c * (t - 1)), chunks)
        else (extent, chunks * t))
      (elem, 1) dims
  in
  chunks * Tiling_util.Intmath.ceil_div (extent + line - 1) line

let euclid_heights ~cache_elems ~column =
  assert (cache_elems > 0 && column > 0);
  let rec go acc a b = if b = 0 then List.rev acc else go (b :: acc) b (a mod b) in
  let seq = go [] cache_elems (column mod cache_elems) in
  List.filter (fun h -> h > 0) (column :: seq)

(* The loops a baseline may tile: original unit-step Range loops.  The two
   innermost ones carry the inner kernel in all the evaluated nests. *)
let innermost_two (nest : Nest.t) =
  let d = Nest.depth nest in
  if d < 2 then invalid_arg "baseline: nest depth < 2";
  (d - 2, d - 1)

(* The reference with the largest per-iteration footprint owns the tile
   shape decisions (its array's column length drives self-interference). *)
let dominant_column (nest : Nest.t) =
  let best = ref 0 in
  Array.iter
    (fun (r : Nest.reference) ->
      let col = r.Nest.array.Array_decl.layout.(0) in
      if col > !best then best := col)
    nest.Nest.refs;
  max 1 !best

let untiled_vector nest = Transform.tile_spans nest

let clamp_tile spans l t = Tiling_util.Intmath.clamp ~lo:1 ~hi:spans.(l) t

let lrw (nest : Nest.t) (cache : Tiling_cache.Config.t) =
  let spans = untiled_vector nest in
  let elem = 8 in
  let cache_elems = cache.Tiling_cache.Config.size / elem in
  let column = dominant_column nest in
  let limit = int_of_float (sqrt (float_of_int cache_elems)) in
  let side =
    List.fold_left
      (fun acc h -> if h <= limit && h > acc then h else acc)
      1
      (euclid_heights ~cache_elems ~column)
  in
  let l1, l2 = innermost_two nest in
  let tiles = Array.copy spans in
  tiles.(l1) <- clamp_tile spans l1 side;
  tiles.(l2) <- clamp_tile spans l2 side;
  tiles

let coleman_mckinley (nest : Nest.t) (cache : Tiling_cache.Config.t) =
  let spans = untiled_vector nest in
  let line = cache.Tiling_cache.Config.line in
  let cache_bytes = cache.Tiling_cache.Config.size in
  let elem = 8 in
  let cache_elems = cache_bytes / elem in
  let column = dominant_column nest in
  let l1, l2 = innermost_two nest in
  let forms = Array.map (fun r -> Nest.address_form nest r) nest.Nest.refs in
  let working_set tiles =
    Array.fold_left
      (fun acc form -> acc + (line * footprint_lines ~line form ~elem tiles))
      0 forms
  in
  let eval h w =
    let tiles = Array.copy spans in
    tiles.(l1) <- clamp_tile spans l1 w;
    tiles.(l2) <- clamp_tile spans l2 h;
    let ws = working_set tiles in
    if ws > cache_bytes then None
    else begin
      (* Cross-interference estimate: how much of the cache the other
         footprints occupy, scaled against the tile's own payoff. *)
      let ci = float_of_int ws /. float_of_int cache_bytes in
      Some (float_of_int (tiles.(l1) * tiles.(l2)) *. (1.2 -. ci), tiles)
    end
  in
  let best = ref (1., Array.copy spans) in
  let found = ref false in
  List.iter
    (fun h ->
      if h >= 1 && h <= spans.(l2) then begin
        (* Grow the width while the working set fits. *)
        let w = ref 1 in
        let cont = ref true in
        while !cont && !w <= spans.(l1) do
          (match eval h !w with
          | Some (score, tiles) ->
              if (not !found) || score > fst !best then begin
                best := (score, tiles);
                found := true
              end
          | None -> cont := false);
          w := !w * 2
        done
      end)
    (euclid_heights ~cache_elems ~column);
  if !found then snd !best
  else begin
    (* Nothing fits: fall back to a single line's worth of elements. *)
    let tiles = Array.copy spans in
    tiles.(l1) <- clamp_tile spans l1 (line / elem);
    tiles.(l2) <- clamp_tile spans l2 (line / elem);
    tiles
  end

let sarkar_megiddo (nest : Nest.t) (cache : Tiling_cache.Config.t) =
  let spans = untiled_vector nest in
  let line = cache.Tiling_cache.Config.line in
  let cache_lines = cache.Tiling_cache.Config.size / line in
  let elem = 8 in
  let d = Array.length spans in
  let forms = Array.map (fun r -> Nest.address_form nest r) nest.Nest.refs in
  let cost tiles =
    let lines =
      Array.fold_left
        (fun acc form -> acc + footprint_lines ~line form ~elem tiles)
        0 forms
    in
    if lines > cache_lines then None
    else begin
      let iterations = Array.fold_left ( * ) 1 tiles in
      Some (float_of_int lines /. float_of_int iterations)
    end
  in
  let lattice span =
    let xs = ref [] in
    let v = ref 1 in
    while !v < span do
      xs := !v :: !xs;
      v := max (!v + 1) (!v * 5 / 4)
    done;
    List.sort_uniq compare (span :: !xs)
  in
  let best = ref (infinity, Array.map (fun _ -> 1) spans) in
  let current = Array.make d 1 in
  let rec go l =
    if l = d then begin
      match cost current with
      | Some c when c < fst !best -> best := (c, Array.copy current)
      | _ -> ()
    end
    else
      List.iter
        (fun t ->
          current.(l) <- t;
          go (l + 1))
        (lattice spans.(l))
  in
  go 0;
  snd !best
